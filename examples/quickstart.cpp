// Quickstart: spin up a small DataFlasks deployment in the simulator, wait
// for the epidemic substrate to converge, write a few objects and read them
// back — the smallest end-to-end tour of the public API.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "harness/cluster.hpp"

int main() {
  using namespace dataflasks;

  // 1. A 60-node cluster, 4 slices, default gossip settings.
  harness::ClusterOptions options;
  options.node_count = 60;
  options.seed = 7;
  options.node.slice_config = {4, 1};
  harness::Cluster cluster(options);

  std::printf("starting %zu nodes with %u slices...\n", options.node_count,
              options.node.slice_config.slice_count);
  cluster.start_all();

  // 2. Let the Peer Sampling Service and the slicing protocol converge:
  //    after this every node knows a slice and some slice-mates.
  cluster.run_for(60 * kSeconds);
  std::printf("slice populations after convergence:\n");
  for (const auto& [slice, count] : cluster.slice_histogram()) {
    std::printf("  slice %u: %zu nodes\n", slice, count);
  }

  // 3. A client with the paper's random load balancer.
  auto& client = cluster.add_client();

  // 4. Write three versioned objects. DataFlasks routes each put to the
  //    slice owning the key; the first slice member to receive it stores
  //    it, acks us and replicates to its slice-mates.
  for (int i = 1; i <= 3; ++i) {
    const Key key = "greeting" + std::to_string(i);
    const std::string text = "hello world #" + std::to_string(i);
    client.put(key, Bytes(text.begin(), text.end()), /*version=*/1,
               [key](const client::PutResult& result) {
                 std::printf("put %-12s -> %s (replica n%llu, %.0f ms)\n",
                             key.c_str(), result.ok ? "ACK" : "FAILED",
                             static_cast<unsigned long long>(
                                 result.replica.value),
                             result.latency / static_cast<double>(kMillis));
               });
  }
  cluster.run_for(10 * kSeconds);

  // 5. Read them back — possibly answered by a different replica each time.
  for (int i = 1; i <= 3; ++i) {
    const Key key = "greeting" + std::to_string(i);
    client.get(key, std::nullopt, [key](const client::GetResult& result) {
      if (result.ok) {
        const std::string text(result.object.value.begin(),
                               result.object.value.end());
        std::printf("get %-12s -> \"%s\" v%llu (from n%llu)\n", key.c_str(),
                    text.c_str(),
                    static_cast<unsigned long long>(result.object.version),
                    static_cast<unsigned long long>(result.replica.value));
      } else {
        std::printf("get %-12s -> MISS\n", key.c_str());
      }
    });
  }
  cluster.run_for(10 * kSeconds);

  // 6. Replication converges epidemically in the background: after a few
  //    anti-entropy rounds every slice member holds the object.
  cluster.run_for(30 * kSeconds);
  std::printf("replicas of greeting1: %zu (slice coverage %.0f%%)\n",
              cluster.replica_count("greeting1", 1),
              100.0 * cluster.slice_coverage("greeting1", 1));
  return 0;
}
