// YCSB workbench: run any of the standard YCSB workload mixes against a
// DataFlasks cluster and print a benchmark-style report (throughput is
// virtual-time ops/s; latencies are virtual milliseconds). A miniature of
// the paper's evaluation setup ("we ran YCSB ... as its direct client"),
// usable for quick what-if exploration.
//
//   $ ./examples/ycsb_workbench workload=a nodes=120 records=200 ops=400
//   workload = a|b|c|d|f|write-only|delete-heavy; other knobs: slices=
//   clients= balancer=random|slice-cache seed= deletes=<fraction>
//   batch=<N: ops pipelined per envelope>
#include <cstdio>

#include "common/config.hpp"
#include "harness/cluster.hpp"
#include "harness/runner.hpp"

namespace {

dataflasks::workload::WorkloadSpec spec_by_name(const std::string& name) {
  using dataflasks::workload::WorkloadSpec;
  if (name == "a") return WorkloadSpec::A();
  if (name == "b") return WorkloadSpec::B();
  if (name == "c") return WorkloadSpec::C();
  if (name == "d") return WorkloadSpec::D();
  if (name == "f") return WorkloadSpec::F();
  if (name == "delete-heavy") return WorkloadSpec::delete_heavy();
  return WorkloadSpec::write_only();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dataflasks;

  std::vector<std::string> args(argv + 1, argv + argc);
  auto parsed = Config::from_args(args);
  if (!parsed.ok()) {
    std::fprintf(stderr, "usage: ycsb_workbench [workload=a] [nodes=120] "
                         "[slices=6] [clients=8] [records=200] [ops=400] "
                         "[balancer=random|slice-cache] [seed=42]\n");
    return 1;
  }
  const Config cfg = std::move(parsed).value();

  const std::string workload = cfg.get_string("workload", "a");
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 120));
  const auto slices = static_cast<std::uint32_t>(cfg.get_int("slices", 6));
  const auto clients = static_cast<std::size_t>(cfg.get_int("clients", 8));
  const auto records = static_cast<std::size_t>(cfg.get_int("records", 200));
  const auto ops = static_cast<std::size_t>(cfg.get_int("ops", 400));
  const std::string balancer = cfg.get_string("balancer", "random");
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  const double deletes = cfg.get_double("deletes", 0.0);
  const auto batch =
      static_cast<std::size_t>(std::max<long long>(1, cfg.get_int("batch", 1)));

  workload::WorkloadSpec spec = spec_by_name(workload);
  if (deletes > 0.0) spec = spec.with_deletes(deletes);
  spec.record_count = records;
  spec.operation_count = ops / std::max<std::size_t>(1, clients);

  std::printf("ycsb-workbench: workload=%s nodes=%zu slices=%u clients=%zu "
              "records=%zu ops=%zu balancer=%s deletes=%.2f batch=%zu\n",
              spec.name.c_str(), nodes, slices, clients, records,
              spec.operation_count * clients, balancer.c_str(),
              spec.delete_proportion, batch);

  harness::ClusterOptions copts;
  copts.node_count = nodes;
  copts.seed = seed;
  copts.node.slice_config = {slices, 1};
  harness::Cluster cluster(copts);
  cluster.start_all();
  cluster.run_for(90 * kSeconds);

  client::ClientOptions client_options;
  if (balancer == "slice-cache") client_options.slice_count_hint = slices;

  std::vector<client::Client*> cluster_clients;
  for (std::size_t i = 0; i < clients; ++i) {
    cluster_clients.push_back(&cluster.add_client(client_options, balancer));
  }

  // Load phase: client 0 inserts every record.
  workload::WorkloadGenerator loader(spec, Rng(seed ^ 0x10ad));
  harness::Runner load(cluster, {cluster_clients[0]}, {loader.load_phase()});
  const SimTime load_start = cluster.simulator().now();
  if (!load.run(load_start + 3600 * kSeconds)) {
    std::fprintf(stderr, "load phase did not finish\n");
    return 1;
  }
  std::printf("load phase: %llu inserts in %.1f s virtual\n",
              static_cast<unsigned long long>(load.stats().puts_succeeded),
              static_cast<double>(cluster.simulator().now() - load_start) /
                  kSeconds);

  // Transaction phase across all clients.
  std::vector<std::vector<workload::Op>> streams;
  Rng stream_rng(seed ^ 0x7bc);
  for (std::size_t i = 0; i < clients; ++i) {
    workload::WorkloadGenerator gen(spec, stream_rng.fork(i));
    streams.push_back(gen.transaction_phase());
  }
  harness::Runner txn(cluster, cluster_clients, std::move(streams), batch);
  const SimTime txn_start = cluster.simulator().now();
  txn.run(txn_start + 3600 * kSeconds);
  const double seconds =
      static_cast<double>(cluster.simulator().now() - txn_start) / kSeconds;

  const auto& stats = txn.stats();
  std::printf("\ntransaction phase (%.1f s virtual):\n", seconds);
  std::printf("  throughput:    %.1f ops/s (virtual)\n",
              static_cast<double>(stats.ops_completed()) / seconds);
  std::printf("  reads:  %6llu ok / %llu failed, p50 %.0f ms, p99 %.0f ms\n",
              static_cast<unsigned long long>(stats.gets_succeeded),
              static_cast<unsigned long long>(stats.gets_failed),
              stats.get_latency.quantile(0.5) / kMillis,
              stats.get_latency.quantile(0.99) / kMillis);
  std::printf("  writes: %6llu ok / %llu failed, p50 %.0f ms, p99 %.0f ms\n",
              static_cast<unsigned long long>(stats.puts_succeeded),
              static_cast<unsigned long long>(stats.puts_failed),
              stats.put_latency.quantile(0.5) / kMillis,
              stats.put_latency.quantile(0.99) / kMillis);
  if (stats.dels_issued > 0) {
    std::printf("  deletes: %5llu ok / %llu failed, p50 %.0f ms, "
                "p99 %.0f ms\n",
                static_cast<unsigned long long>(stats.dels_succeeded),
                static_cast<unsigned long long>(stats.dels_failed),
                stats.del_latency.quantile(0.5) / kMillis,
                stats.del_latency.quantile(0.99) / kMillis);
  }
  if (batch > 1) {
    std::printf("  batch envelopes: %llu (%.1f ops/envelope)\n",
                static_cast<unsigned long long>(stats.batches_issued),
                stats.batches_issued > 0
                    ? static_cast<double>(stats.ops_completed()) /
                          static_cast<double>(stats.batches_issued)
                    : 0.0);
  }
  std::printf("  request msgs/node: %.1f, anti-entropy msgs/node: %.1f\n",
              cluster.mean_messages_per_node(net::MsgCategory::kRequest),
              cluster.mean_messages_per_node(net::MsgCategory::kAntiEntropy));
  return 0;
}
