// Capacity-aware slicing: the paper slices the system by node storage
// capacity so weaker nodes store less (§IV-A). This example builds a
// cluster with three capacity classes, shows that the autonomous slicing
// protocol orders nodes by capacity without any global knowledge, and then
// re-shards the live system (dynamic k, §IV-C) with an epidemic config
// epoch.
//
//   $ ./examples/capacity_slicing
#include <cstdio>

#include <map>

#include "harness/cluster.hpp"

int main() {
  using namespace dataflasks;

  // Heterogeneous fleet: capacities drawn uniformly from [1.0, 3.0). The
  // slicing protocol gossips this attribute and orders the system by it —
  // no node ever sees more than its partial view.
  harness::ClusterOptions options;
  options.node_count = 90;
  options.seed = 5;
  options.node.slice_config = {3, 1};
  options.capacity_min = 1.0;
  options.capacity_max = 3.0;
  harness::Cluster cluster(options);
  cluster.start_all();
  cluster.run_for(120 * kSeconds);

  // Verify the slicing invariant: slices partition nodes such that every
  // node in a higher slice has (estimated-rank-wise) higher capacity. We
  // check the aggregate: mean capacity must be increasing per slice.
  std::map<SliceId, std::pair<double, std::size_t>> by_slice;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto& node = cluster.node(i);
    auto& [sum, count] = by_slice[node.slice()];
    sum += node.capacity();
    ++count;
  }
  std::printf("slice -> members, mean capacity (should increase):\n");
  double previous_mean = 0.0;
  bool ordered = true;
  for (const auto& [slice, agg] : by_slice) {
    const double mean = agg.first / static_cast<double>(agg.second);
    std::printf("  slice %u: %3zu nodes, mean capacity %.3f\n", slice,
                agg.second, mean);
    if (mean < previous_mean) ordered = false;
    previous_mean = mean;
  }
  std::printf("capacity ordering across slices: %s\n",
              ordered ? "OK" : "VIOLATED");

  // Live re-shard: 3 -> 9 slices proposed by one node, spread epidemically.
  std::printf("\nre-sharding the live system 3 -> 9 slices...\n");
  cluster.node(0).propose_slice_count(9);
  cluster.run_for(120 * kSeconds);

  std::map<SliceId, std::size_t> histogram;
  std::size_t adopted = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto& node = cluster.node(i);
    if (node.slice_config().slice_count == 9) ++adopted;
    ++histogram[node.slice()];
  }
  std::printf("nodes on the new config: %zu/%zu\n", adopted, cluster.size());
  std::printf("new slice populations:");
  for (const auto& [slice, count] : histogram) {
    std::printf(" s%u=%zu", slice, count);
  }
  std::printf("\n");
  std::printf("(state transfer re-homed stored objects in the background; "
              "see tests/test_integration.cpp DynamicReshard*)\n");
  return 0;
}
