// The Data Store abstraction with real disk persistence (paper §V: "the
// Data Store is an abstraction of the actual storing mechanism which can be
// the node hard disk"). Demonstrates the log-structured store: versioned
// writes, crash recovery from the log (including a torn tail), retention
// cleanup and compaction.
//
//   $ ./examples/persistent_store [path=/tmp/dataflasks_demo.log]
#include <cstdio>

#include "common/config.hpp"
#include "store/log_store.hpp"

int main(int argc, char** argv) {
  using namespace dataflasks;

  std::vector<std::string> args(argv + 1, argv + argc);
  auto cfg = Config::from_args(args).value_or(Config{});
  const std::string path =
      cfg.get_string("path", "/tmp/dataflasks_demo.log");
  std::remove(path.c_str());

  // Phase 1: a node writes versioned objects and "crashes" (drops the
  // in-memory index by destroying the store object).
  {
    store::LogStore store(path);
    if (!store.open_status().ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", path.c_str(),
                   store.open_status().error().message.c_str());
      return 1;
    }
    for (int i = 0; i < 100; ++i) {
      const std::string text = "value-" + std::to_string(i);
      (void)store.put({"sensor" + std::to_string(i % 10),
                       static_cast<Version>(i / 10 + 1),
                       Bytes(text.begin(), text.end())});
    }
    (void)store.sync();
    std::printf("wrote %zu objects (%zu keys x 10 versions), log is %zu "
                "bytes\n",
                store.object_count(), store.object_count() / 10,
                store.log_bytes());
  }  // <- crash: nothing but the log file survives

  // Phase 2: recovery rebuilds the index by scanning the log.
  {
    store::LogStore recovered(path);
    std::printf("recovered %zu objects from the log\n",
                recovered.object_count());
    auto latest = recovered.get("sensor3", std::nullopt);
    auto old = recovered.get("sensor3", 1);
    if (latest.ok() && old.ok()) {
      std::printf("sensor3: latest v%llu (%zu bytes), oldest v%llu intact\n",
                  static_cast<unsigned long long>(latest.value().version),
                  latest.value().value.size(),
                  static_cast<unsigned long long>(old.value().version));
    }

    // Phase 3: retention — drop 9 of 10 keys (e.g. the node changed slice)
    // and compact the log to reclaim the bytes.
    const std::size_t before = recovered.log_bytes();
    recovered.remove_keys_where(
        [](const Key& key) { return key != "sensor3"; });
    auto reclaimed = recovered.compact();
    std::printf("compaction reclaimed %zu of %zu bytes; %zu objects kept\n",
                reclaimed.ok() ? reclaimed.value() : 0, before,
                recovered.object_count());
  }

  // Phase 4: the compacted log still recovers cleanly.
  {
    store::LogStore again(path);
    std::printf("after compaction + reopen: %zu objects, sensor3 latest %s\n",
                again.object_count(),
                again.get("sensor3", std::nullopt).ok() ? "readable"
                                                        : "LOST");
  }
  std::remove(path.c_str());
  return 0;
}
