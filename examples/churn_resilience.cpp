// Churn resilience: the paper's thesis ("faults and churn become the rule
// instead of the exception", §I) made visible. A cluster keeps serving
// writes and reads while a third of its nodes crash and rejoin on a
// continuous schedule; a final audit shows no acknowledged write was lost.
//
//   $ ./examples/churn_resilience
#include <cstdio>

#include "harness/cluster.hpp"

int main() {
  using namespace dataflasks;

  harness::ClusterOptions options;
  options.node_count = 120;
  options.seed = 21;
  options.node.slice_config = {6, 1};
  harness::Cluster cluster(options);
  cluster.start_all();
  cluster.run_for(90 * kSeconds);
  std::printf("cluster of %zu nodes converged (6 slices)\n",
              options.node_count);

  // Continuous churn for 3 simulated minutes: one crash/restart event per
  // second across the system, 10-30 s downtime each.
  Rng churn_rng(99);
  sim::ChurnPlanOptions churn;
  churn.start = cluster.simulator().now();
  churn.end = churn.start + 180 * kSeconds;
  churn.events_per_second = 1.0;
  churn.downtime_min = 10 * kSeconds;
  churn.downtime_max = 30 * kSeconds;
  const auto plan = sim::make_churn_plan(cluster.node_ids(), churn, churn_rng);
  cluster.apply_churn_plan(plan);
  std::printf("scheduled %zu churn events over 180 s\n", plan.size());

  auto& client = cluster.add_client();
  int acked = 0, failed = 0;
  constexpr int kWrites = 60;

  for (int i = 0; i < kWrites; ++i) {
    client.put("log-entry-" + std::to_string(i), Bytes{static_cast<uint8_t>(i)},
               1, [&](const client::PutResult& result) {
                 result.ok ? ++acked : ++failed;
               });
    cluster.run_for(3 * kSeconds);
    if ((i + 1) % 20 == 0) {
      std::size_t down = 0;
      for (std::size_t n = 0; n < cluster.size(); ++n) {
        if (!cluster.node(n).running()) ++down;
      }
      std::printf("t=%3llds: %d writes issued, %d acked, %zu nodes down\n",
                  static_cast<long long>(cluster.simulator().now() / kSeconds),
                  i + 1, acked, down);
    }
  }

  // Let the churn window close and anti-entropy repair the damage.
  cluster.run_for(120 * kSeconds);

  int durable = 0;
  double coverage_total = 0.0;
  for (int i = 0; i < kWrites; ++i) {
    const Key key = "log-entry-" + std::to_string(i);
    if (cluster.replica_count(key, 1) > 0) ++durable;
    coverage_total += cluster.slice_coverage(key, 1);
  }

  std::printf("\nresults under churn:\n");
  std::printf("  writes acked:        %d/%d\n", acked, kWrites);
  std::printf("  writes durable:      %d/%d\n", durable, kWrites);
  std::printf("  mean slice coverage: %.0f%%\n",
              100.0 * coverage_total / kWrites);
  std::printf("  (the structured-DHT comparison lives in "
              "bench/churn_comparison)\n");
  return 0;
}
