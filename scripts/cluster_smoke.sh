#!/usr/bin/env bash
# Real-cluster smoke test: launches 3 dataflasks_server processes on
# localhost UDP ports, writes a key through dataflasks_cli, reads it back,
# and asserts the value round-tripped. Used by the CI `cluster-smoke` job
# and runnable locally:
#
#   ./scripts/cluster_smoke.sh [build-dir]
#
# Exits non-zero on any failure; always tears the servers down. The caller
# should still wrap it in `timeout` as a hang guard (CI does).
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/src/server/dataflasks_server"
CLI="$BUILD_DIR/src/server/dataflasks_cli"
BASE_PORT="${DATAFLASKS_SMOKE_PORT:-7411}"
LOG_DIR="$(mktemp -d)"

[[ -x "$SERVER" && -x "$CLI" ]] || {
  echo "cluster_smoke: build dataflasks_server / dataflasks_cli first" >&2
  exit 1
}

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$LOG_DIR"
}
trap cleanup EXIT

PEERS=()
for i in 0 1 2; do
  PEERS+=("--peer" "$i@127.0.0.1:$((BASE_PORT + i))")
done

echo "== launching 3-node cluster on ports $BASE_PORT-$((BASE_PORT + 2))"
for i in 0 1 2; do
  # Each node's peer list is the other two.
  node_peers=()
  for j in 0 1 2; do
    [[ "$i" == "$j" ]] || node_peers+=("--peer" "$j@127.0.0.1:$((BASE_PORT + j))")
  done
  "$SERVER" --id "$i" --listen "127.0.0.1:$((BASE_PORT + i))" \
    --gossip-ms 100 --ae-ms 500 "${node_peers[@]}" \
    > "$LOG_DIR/server$i.log" 2>&1 &
  PIDS+=($!)
done

# Wait for every server to print its ready line.
for i in 0 1 2; do
  for _ in $(seq 1 50); do
    grep -q "ready on" "$LOG_DIR/server$i.log" 2>/dev/null && break
    sleep 0.1
  done
  grep -q "ready on" "$LOG_DIR/server$i.log" || {
    echo "cluster_smoke: server $i did not become ready" >&2
    cat "$LOG_DIR/server$i.log" >&2
    exit 1
  }
done

echo "== put"
"$CLI" "${PEERS[@]}" --timeout-ms 5000 put smoke-key "hello-from-real-cluster"

echo "== get"
OUT="$("$CLI" "${PEERS[@]}" --timeout-ms 5000 get smoke-key)"
echo "$OUT"
grep -q "hello-from-real-cluster" <<< "$OUT" || {
  echo "cluster_smoke: get did not return the stored value" >&2
  exit 1
}

echo "== letting anti-entropy replicate (2s), then killing node 0"
sleep 2
kill "${PIDS[0]}"
wait "${PIDS[0]}" 2>/dev/null || true
SURVIVOR_PEERS=("--peer" "1@127.0.0.1:$((BASE_PORT + 1))"
                "--peer" "2@127.0.0.1:$((BASE_PORT + 2))")
OUT2="$("$CLI" "${SURVIVOR_PEERS[@]}" --timeout-ms 8000 get smoke-key)"
echo "$OUT2"
grep -q "hello-from-real-cluster" <<< "$OUT2" || {
  echo "cluster_smoke: replicas did not serve the value after a crash" >&2
  exit 1
}

echo "cluster_smoke: PASS"
