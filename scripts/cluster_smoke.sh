#!/usr/bin/env bash
# Real-cluster smoke test: launches 3 dataflasks_server processes (durable
# log-structured stores) on localhost UDP ports and drives the full
# operation API through dataflasks_cli:
#
#   put -> get -> crash-survivor get        (replication)
#   batch (pipelined puts + get)            (OpEnvelope batching)
#   1 MiB put -> get from ANOTHER node       (TCP stream transport)
#   mixed fleet small put/get                (UDP fallback, stream-less node)
#   del -> get-miss                          (epidemic tombstones)
#   restart node -> get still missing        (tombstone durability + AE)
#   seed-only join (--seed host:port)        (gossip-learned membership)
#   restart on a NEW port -> still served    (gossip-healed addresses)
#
# Node 1 runs with --shards 4 (shared-nothing multi-shard server: four
# runtime threads, SO_REUSEPORT ingress, cross-shard mailbox) while the
# rest pin --shards 1, so every phase above also exercises a mixed fleet
# where a sharded process gossips, replicates and serves with classics.
# Nodes 0 and 1 listen for streams (--stream-port 0, ephemeral); node 2 is
# deliberately stream-less, so small traffic to and from it proves the
# UDP-fallback path against a stream-capable fleet.
#
# Used by the CI `cluster-smoke` job and runnable locally:
#
#   ./scripts/cluster_smoke.sh [build-dir]
#
# Exits non-zero on any failure; always tears the servers down. The caller
# should still wrap it in `timeout` as a hang guard (CI does).
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/src/server/dataflasks_server"
CLI="$BUILD_DIR/src/server/dataflasks_cli"
BASE_PORT="${DATAFLASKS_SMOKE_PORT:-7411}"
LOG_DIR="$(mktemp -d)"

[[ -x "$SERVER" && -x "$CLI" ]] || {
  echo "cluster_smoke: build dataflasks_server / dataflasks_cli first" >&2
  exit 1
}

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$LOG_DIR"
}
trap cleanup EXIT

PEERS=()
for i in 0 1 2; do
  PEERS+=("--peer" "$i@127.0.0.1:$((BASE_PORT + i))")
done

# start_server <id>: launches one node (durable store in $LOG_DIR) and
# records its pid in PIDS[id].
start_server() {
  local i="$1"
  local node_peers=()
  for j in 0 1 2; do
    [[ "$i" == "$j" ]] || node_peers+=("--peer" "$j@127.0.0.1:$((BASE_PORT + j))")
  done
  # Node 1 is the multi-shard process; everything else pins the classic
  # single-runtime wiring so both server shapes interoperate in one fleet.
  local shards=1
  [[ "$i" == "1" ]] && shards=4
  # Node 2 stays stream-less on purpose: the mixed-fleet phase proves UDP
  # fallback against it.
  local stream_flags=(--stream-port 0)
  [[ "$i" == "2" ]] && stream_flags=()
  # --compact-interval-sec 1: checkpoints run throughout, so the restart
  # phase below genuinely recovers snapshot + tail, not an empty journal.
  "$SERVER" --id "$i" --listen "127.0.0.1:$((BASE_PORT + i))" \
    --gossip-ms 100 --ae-ms 500 --store durable --data-dir "$LOG_DIR" \
    --compact-interval-sec 1 \
    --shards "$shards" --log-level warn "${stream_flags[@]}" \
    "${node_peers[@]}" \
    >> "$LOG_DIR/server$i.log" 2>&1 &
  PIDS[$i]=$!
}

wait_ready() {
  local i="$1"
  local want="$2"   # how many ready lines the log should contain
  for _ in $(seq 1 50); do
    [[ "$(grep -c "ready on" "$LOG_DIR/server$i.log" 2>/dev/null || true)" -ge "$want" ]] && return 0
    sleep 0.1
  done
  echo "cluster_smoke: server $i did not become ready" >&2
  cat "$LOG_DIR/server$i.log" >&2
  exit 1
}

echo "== launching 3-node durable cluster on ports $BASE_PORT-$((BASE_PORT + 2))"
for i in 0 1 2; do
  start_server "$i"
done
for i in 0 1 2; do
  wait_ready "$i" 1
done
grep -q "4 shards" "$LOG_DIR/server1.log" || {
  echo "cluster_smoke: node 1 did not come up with 4 shards" >&2
  cat "$LOG_DIR/server1.log" >&2
  exit 1
}
for i in 0 1; do
  grep -q "streams on" "$LOG_DIR/server$i.log" || {
    echo "cluster_smoke: node $i did not announce its stream listener" >&2
    cat "$LOG_DIR/server$i.log" >&2
    exit 1
  }
done
! grep -q "streams on" "$LOG_DIR/server2.log" || {
  echo "cluster_smoke: node 2 must stay stream-less for the fallback phase" >&2
  exit 1
}

echo "== put"
"$CLI" "${PEERS[@]}" --timeout-ms 5000 put smoke-key "hello-from-real-cluster"

echo "== get"
OUT="$("$CLI" "${PEERS[@]}" --timeout-ms 5000 get smoke-key)"
echo "$OUT"
grep -q "hello-from-real-cluster" <<< "$OUT" || {
  echo "cluster_smoke: get did not return the stored value" >&2
  exit 1
}

echo "== batch (pipelined envelope: 2 puts + 1 get)"
OUT_BATCH="$(printf 'put batch-a alpha\nput batch-b beta\nget batch-a\n' | \
  "$CLI" "${PEERS[@]}" --timeout-ms 5000 batch)"
echo "$OUT_BATCH"
grep -q "OK get batch-a" <<< "$OUT_BATCH" || {
  echo "cluster_smoke: batch get did not return the batched put" >&2
  exit 1
}
grep -q "3 ops, 1 envelope" <<< "$OUT_BATCH" || {
  echo "cluster_smoke: batch did not pipeline into one envelope" >&2
  exit 1
}

# ---- stream transport: a 1 MiB value, seventeen datagram budgets wide ------
# The put goes through node 0 and the get through node 1 ONLY: the value
# must have replicated node-to-node (an oversized push that itself needs a
# stream) and node 1 — the 4-shard server — must serve it back down the
# CLI's dialed TCP connection. argv would cap a value at 128 KiB, so the
# put rides a batch envelope from stdin.
echo "== 1 MiB put via node 0 (streamed envelope)"
BIG_VALUE="$(head -c $((1024 * 1024)) /dev/zero | tr '\0' 'A')BIGVALEND"
OUT_BIG="$(printf 'put big-key %s\n' "$BIG_VALUE" | \
  "$CLI" --peer "0@127.0.0.1:$BASE_PORT" --timeout-ms 10000 batch)"
grep -q "OK put big-key" <<< "$OUT_BIG" || {
  echo "cluster_smoke: 1 MiB put did not succeed" >&2
  echo "$OUT_BIG" >&2
  exit 1
}

echo "== 1 MiB get from node 1 only (streamed reply after replication)"
OUT_BIG_GET=""
for _ in $(seq 1 30); do
  OUT_BIG_GET="$("$CLI" --peer "1@127.0.0.1:$((BASE_PORT + 1))" \
    --timeout-ms 5000 get big-key)" || true
  grep -q "BIGVALEND" <<< "$OUT_BIG_GET" && break
  sleep 0.5
done
grep -q "BIGVALEND" <<< "$OUT_BIG_GET" || {
  echo "cluster_smoke: 1 MiB value never became readable on another node" >&2
  echo "${OUT_BIG_GET:0:300}" >&2
  exit 1
}
[[ "${#OUT_BIG_GET}" -gt 1000000 ]] || {
  echo "cluster_smoke: big-key reply is too small to be the 1 MiB value" >&2
  exit 1
}

# ---- mixed fleet: the stream-less node serves and replicates over UDP ------
echo "== mixed fleet: small put through stream-less node 2, get via node 0"
"$CLI" --peer "2@127.0.0.1:$((BASE_PORT + 2))" --timeout-ms 5000 \
  put mixed-key "udp-fallback-value"
OUT_MIXED=""
for _ in $(seq 1 30); do
  OUT_MIXED="$("$CLI" --peer "0@127.0.0.1:$BASE_PORT" --timeout-ms 3000 \
    get mixed-key)" || true
  grep -q "udp-fallback-value" <<< "$OUT_MIXED" && break
  sleep 0.5
done
echo "$OUT_MIXED"
grep -q "udp-fallback-value" <<< "$OUT_MIXED" || {
  echo "cluster_smoke: value put via the stream-less node never replicated" >&2
  exit 1
}

echo "== letting anti-entropy replicate (2s), then killing node 0"
sleep 2
kill "${PIDS[0]}"
wait "${PIDS[0]}" 2>/dev/null || true
SURVIVOR_PEERS=("--peer" "1@127.0.0.1:$((BASE_PORT + 1))"
                "--peer" "2@127.0.0.1:$((BASE_PORT + 2))")
OUT2="$("$CLI" "${SURVIVOR_PEERS[@]}" --timeout-ms 8000 get smoke-key)"
echo "$OUT2"
grep -q "hello-from-real-cluster" <<< "$OUT2" || {
  echo "cluster_smoke: replicas did not serve the value after a crash" >&2
  exit 1
}

echo "== delete smoke-key through the survivors"
"$CLI" "${SURVIVOR_PEERS[@]}" --timeout-ms 5000 del smoke-key

echo "== get after delete must be an authoritative miss"
OUT3="$("$CLI" "${SURVIVOR_PEERS[@]}" --timeout-ms 5000 get smoke-key)" || true
echo "$OUT3"
grep -q "deleted" <<< "$OUT3" || {
  echo "cluster_smoke: get after delete did not report the tombstone" >&2
  exit 1
}

echo "== restarting node 0 (durable log, missed the delete) "
start_server 0
wait_ready 0 2

echo "== restart must recover through the checkpointed path (snapshot + tail)"
RECOVERY_LINE="$(grep "recovered snapshot+tail" "$LOG_DIR/server0.log" | tail -1)"
echo "$RECOVERY_LINE"
[[ -n "$RECOVERY_LINE" ]] || {
  echo "cluster_smoke: restarted node printed no snapshot+tail recovery line" >&2
  cat "$LOG_DIR/server0.log" >&2
  exit 1
}
# Node 0 was up for many --compact-interval-sec periods before the kill, so
# the restart must load a checkpointed generation (>= 2) holding objects —
# anything else means it silently fell back to a full-history replay.
grep -qE "generation ([2-9]|[1-9][0-9]+): [1-9][0-9]* snapshot objects" \
    <<< "$RECOVERY_LINE" || {
  echo "cluster_smoke: restart did not load a checkpointed snapshot" >&2
  exit 1
}

echo "== get from the restarted node only: tombstone must win"
# Node 0 recovers smoke-key's VALUE from its log (it was down for the
# delete); anti-entropy must hand it the tombstone, not resurrect the
# value. Poll until the tombstone lands (bounded by the loop, not a sleep).
OUT4=""
for _ in $(seq 1 20); do
  OUT4="$("$CLI" --peer "0@127.0.0.1:$BASE_PORT" --timeout-ms 4000 get smoke-key)" || true
  grep -q "deleted" <<< "$OUT4" && break
  sleep 0.5
done
echo "$OUT4"
grep -q "deleted" <<< "$OUT4" || {
  echo "cluster_smoke: restarted node resurrected a deleted key" >&2
  exit 1
}

echo "== restarted node still serves live data"
OUT5="$("$CLI" "${PEERS[@]}" --timeout-ms 8000 get batch-b)"
echo "$OUT5"
grep -q "beta" <<< "$OUT5" || {
  echo "cluster_smoke: live key lost after restart" >&2
  exit 1
}

# ---- seed-only join: one --seed host:port, zero --peer flags ---------------
# Node 3 knows only node 0's ADDRESS; the node id behind it is discovered by
# the transport probe and the rest of the membership (and every address) is
# learned through gossip. Data must replicate onto it via anti-entropy.
NODE3_PORT=$((BASE_PORT + 3))
start_seed_node() {
  local port="$1"
  "$SERVER" --id 3 --listen "127.0.0.1:$port" \
    --seed "127.0.0.1:$BASE_PORT" \
    --gossip-ms 100 --ae-ms 500 --store durable --data-dir "$LOG_DIR" \
    --shards 1 --log-level warn --stream-port 0 \
    >> "$LOG_DIR/server3.log" 2>&1 &
  PIDS[3]=$!
}

echo "== node 3 joins from a single seed address (no --peer, no id)"
start_seed_node "$NODE3_PORT"
wait_ready 3 1

echo "== node 3 converges onto existing data via gossip + anti-entropy"
OUT6=""
for _ in $(seq 1 30); do
  OUT6="$("$CLI" --peer "3@127.0.0.1:$NODE3_PORT" --timeout-ms 3000 get batch-b)" || true
  grep -q "beta" <<< "$OUT6" && break
  sleep 0.5
done
echo "$OUT6"
grep -q "beta" <<< "$OUT6" || {
  echo "cluster_smoke: seed-joined node never served replicated data" >&2
  exit 1
}

# ---- address healing: restart node 3 on a DIFFERENT port -------------------
# Nobody tells the other nodes about the new port; their address tables must
# heal from node 3's fresher-stamped gossip endpoint alone.
NODE3_NEW_PORT=$((BASE_PORT + 13))
echo "== killing node 3; restarting on new port $NODE3_NEW_PORT (seed-only)"
kill "${PIDS[3]}"
wait "${PIDS[3]}" 2>/dev/null || true
start_seed_node "$NODE3_NEW_PORT"
wait_ready 3 2

echo "== put through node 0 only; must replicate to node 3's NEW address"
"$CLI" --peer "0@127.0.0.1:$BASE_PORT" --timeout-ms 5000 put heal-key "post-restart-value"
OUT7=""
for _ in $(seq 1 30); do
  OUT7="$("$CLI" --peer "3@127.0.0.1:$NODE3_NEW_PORT" --timeout-ms 3000 get heal-key)" || true
  grep -q "post-restart-value" <<< "$OUT7" && break
  sleep 0.5
done
echo "$OUT7"
grep -q "post-restart-value" <<< "$OUT7" || {
  echo "cluster_smoke: addresses did not heal after restart on a new port" >&2
  exit 1
}

echo "cluster_smoke: PASS"
