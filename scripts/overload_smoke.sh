#!/usr/bin/env bash
# Overload smoke test: drives ONE dataflasks_server well past its admission
# knee and asserts the overload contract end to end:
#
#   * the node ENTERS overload and sheds client work with explicit
#     kOverloaded answers (admission.client_ops_shed moves, and the load
#     generator reports overloaded/shed ops — backpressure, not silence);
#   * the observability surfaces keep answering WHILE the node is shedding:
#     the --metrics-port TCP scrape and `dataflasks_cli stats` (the admin
#     class is never shed);
#   * the node EXITS overload once the load stops, and a post-overload
#     workload succeeds against the same process.
#
# The server runs with deliberately aggressive shedding thresholds
# (--shed-lag-high-ms 1) so a closed-loop hammer from several client
# threads reliably saturates the single poll loop even on fast machines.
#
#   ./scripts/overload_smoke.sh [build-dir]
#
# The server runs multi-shard (--shards 4 unless SMOKE_SHARDS overrides):
# each shard judges admission on its own runtime, overload is reported for
# the worst-pressure shard, and the shed/overload counters asserted below
# are the per-shard counters merged at scrape time — so this smoke also
# gates the sharded admission plumbing.
#
# Tunables (environment): SMOKE_HAMMER_MS (default 8000), SMOKE_THREADS
# (4), SMOKE_CONCURRENCY (16), SMOKE_BATCH (16), SMOKE_PORT (7481),
# SMOKE_SHARDS (4).
# Exits non-zero on any failure; always tears the server down. Wrap in
# `timeout` as a hang guard (CI does).
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/src/server/dataflasks_server"
CLI="$BUILD_DIR/src/server/dataflasks_cli"
LOADGEN="$BUILD_DIR/src/server/dataflasks_loadgen"

HAMMER_MS="${SMOKE_HAMMER_MS:-8000}"
THREADS="${SMOKE_THREADS:-4}"
CONCURRENCY="${SMOKE_CONCURRENCY:-16}"
BATCH="${SMOKE_BATCH:-16}"
PORT="${SMOKE_PORT:-7481}"
SHARDS="${SMOKE_SHARDS:-4}"
LOG_DIR="$(mktemp -d)"

[[ -x "$SERVER" && -x "$CLI" && -x "$LOADGEN" ]] || {
  echo "overload_smoke: build dataflasks_server, dataflasks_cli and" \
       "dataflasks_loadgen first" >&2
  exit 1
}

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$LOG_DIR"
}
trap cleanup EXIT

scrape() {
  exec 3<>"/dev/tcp/127.0.0.1/$METRICS_PORT" \
    && printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3 && cat <&3
}

echo "== launching 1-node cluster on port $PORT with aggressive shedding ($SHARDS shards)"
"$SERVER" --id 0 --listen "127.0.0.1:$PORT" \
  --gossip-ms 200 --ae-ms 1000 --log-level warn \
  --metrics-port 0 --shards "$SHARDS" \
  --max-inflight-ops 256 --shed-lag-high-ms 1 --shed-lag-low-ms 1 \
  > "$LOG_DIR/server.log" 2>&1 &
PIDS[0]=$!
for _ in $(seq 1 50); do
  grep -q "ready on" "$LOG_DIR/server.log" 2>/dev/null && break
  sleep 0.1
done
grep -q "ready on" "$LOG_DIR/server.log" || {
  echo "overload_smoke: server did not become ready" >&2
  cat "$LOG_DIR/server.log" >&2
  exit 1
}
METRICS_PORT="$(grep -oE 'metrics on 127.0.0.1:[0-9]+' "$LOG_DIR/server.log" \
  | head -1 | grep -oE '[0-9]+$')"
[[ -n "$METRICS_PORT" ]] || {
  echo "overload_smoke: server printed no metrics port" >&2
  exit 1
}

echo "== hammering past the knee: $THREADS threads x $CONCURRENCY streams, batch $BATCH, ${HAMMER_MS}ms"
"$LOADGEN" --peer "0@127.0.0.1:$PORT" \
  --workload A --threads "$THREADS" --concurrency "$CONCURRENCY" \
  --batch "$BATCH" --records 500 --duration-ms "$HAMMER_MS" \
  --timeout-ms 500 --out "$LOG_DIR/hammer.json" \
  > "$LOG_DIR/hammer.log" 2>&1 &
HAMMER_PID=$!
PIDS+=("$HAMMER_PID")

# While the hammer runs: both observability surfaces must keep answering.
sleep 3
echo "== scraping /metrics during overload"
MID_SCRAPE="$(scrape)"
grep -q "df_admission_overloaded" <<< "$MID_SCRAPE" || {
  echo "overload_smoke: mid-load scrape missing admission gauges" >&2
  echo "$MID_SCRAPE" >&2
  exit 1
}
echo "== cli stats during overload (admin class is never shed)"
MID_STATS="$("$CLI" --peer "0@127.0.0.1:$PORT" --timeout-ms 5000 stats)"
grep -q "df_ops_total" <<< "$MID_STATS" || {
  echo "overload_smoke: cli stats did not answer during overload" >&2
  echo "$MID_STATS" >&2
  exit 1
}

# Exit 2 means "no op succeeded" — acceptable here: a node shedding the
# entire hammer is exactly the behavior under test. Anything else is a
# harness failure.
HAMMER_RC=0
wait "$HAMMER_PID" || HAMMER_RC=$?
[[ "$HAMMER_RC" -eq 0 || "$HAMMER_RC" -eq 2 ]] || {
  echo "overload_smoke: load generator failed (rc=$HAMMER_RC)" >&2
  cat "$LOG_DIR/hammer.log" >&2
  exit 1
}
cat "$LOG_DIR/hammer.log"

echo "== shed counters must have moved"
POST_SCRAPE="$(scrape)"
SHED="$(grep -oE 'df_node_events_total\{counter="admission\.client_ops_shed"\} [0-9]+' \
  <<< "$POST_SCRAPE" | grep -oE '[0-9]+$' || echo 0)"
ENTERED="$(grep -oE 'df_node_events_total\{counter="admission\.overload_entered"\} [0-9]+' \
  <<< "$POST_SCRAPE" | grep -oE '[0-9]+$' || echo 0)"
echo "   overload_entered=$ENTERED client_ops_shed=$SHED"
[[ "$ENTERED" -ge 1 && "$SHED" -ge 1 ]] || {
  echo "overload_smoke: the hammer never tripped admission control" >&2
  grep -E 'df_admission|admission\.' <<< "$POST_SCRAPE" >&2 || true
  exit 1
}
grep -q '"overloaded": [1-9]' "$LOG_DIR/hammer.json" \
  || grep -q '"shed_ops": [1-9]' "$LOG_DIR/hammer.json" \
  || grep -q '"failures": [1-9]' "$LOG_DIR/hammer.json" || {
  echo "overload_smoke: client side saw no backpressure at all" >&2
  cat "$LOG_DIR/hammer.json" >&2
  exit 1
}

echo "== post-overload: the node must recover and serve again"
# The lag EWMA decays tick by tick once the loop is idle; poll the gauge
# until the controller exits (bounded — a stuck node fails the test).
RECOVERED=0
for _ in $(seq 1 60); do
  if grep -q 'df_admission_overloaded 0' <<< "$(scrape)"; then
    RECOVERED=1
    break
  fi
  sleep 0.5
done
[[ "$RECOVERED" -eq 1 ]] || {
  echo "overload_smoke: node never exited overload after the load stopped" >&2
  scrape | grep -E 'df_admission' >&2 || true
  exit 1
}
"$CLI" --peer "0@127.0.0.1:$PORT" --timeout-ms 5000 --version 1 \
  put recovered-key recovered-value > "$LOG_DIR/put.log" || {
  echo "overload_smoke: post-overload put failed" >&2
  cat "$LOG_DIR/put.log" >&2
  exit 1
}
GOT="$("$CLI" --peer "0@127.0.0.1:$PORT" --timeout-ms 5000 get recovered-key)"
grep -q "recovered-value" <<< "$GOT" || {
  echo "overload_smoke: post-overload get did not return the value" >&2
  echo "$GOT" >&2
  exit 1
}
FINAL_SCRAPE="$(scrape)"
grep -q 'df_admission_overloaded 0' <<< "$FINAL_SCRAPE" || {
  echo "overload_smoke: node still reports overloaded after the load stopped" >&2
  grep -E 'df_admission' <<< "$FINAL_SCRAPE" >&2 || true
  exit 1
}

echo "overload_smoke: PASS"
