#!/usr/bin/env bash
# Recovery benchmark: restart cost of the checkpointed StorageEngine
# (--store durable, snapshot + journal tail) against the legacy full-replay
# LogStore (--store log), on the SAME cache-shaped workload.
#
# One single-node server is loaded with RECORDS plain inserts and then a
# TTL'd update stream (every run-phase write expires TTL_MS after it is
# stored). After the expiry deadline plus a few reap/checkpoint periods the
# server is killed and restarted, and the restart is measured two ways:
#
#   * "store recovery took X ms" — the server's own wall clock around store
#     assembly (the number that matters), and
#   * the recovery counters from the boot line — how many records each
#     engine had to decode to get there.
#
# The legacy log must replay its entire history (every expired update is
# still a record on disk); the engine loads the last snapshot — written
# AFTER the reaper dropped the expired objects — plus a short tail. The
# report asserts the work ratio (records decoded) and records both times.
#
#   ./scripts/bench_recovery.sh [build-dir] [out.json]
#
# Tunables (environment): RECOV_RECORDS (default 4000), RECOV_DURATION_MS
# (default 15000), RECOV_TTL_MS (2000), RECOV_THREADS (2),
# RECOV_CONCURRENCY (8), RECOV_PORT (7471).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_recovery.json}"
SERVER="$BUILD_DIR/src/server/dataflasks_server"
LOADGEN="$BUILD_DIR/src/server/dataflasks_loadgen"

RECORDS="${RECOV_RECORDS:-4000}"
DURATION_MS="${RECOV_DURATION_MS:-15000}"
TTL_MS="${RECOV_TTL_MS:-2000}"
THREADS="${RECOV_THREADS:-2}"
CONCURRENCY="${RECOV_CONCURRENCY:-8}"
PORT="${RECOV_PORT:-7471}"
LOG_DIR="$(mktemp -d)"

[[ -x "$SERVER" && -x "$LOADGEN" ]] || {
  echo "bench_recovery: build dataflasks_server and dataflasks_loadgen first" >&2
  exit 1
}

SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$LOG_DIR"
}
trap cleanup EXIT

# start_server <kind> <log-file> [extra flags...]: one standalone node.
start_server() {
  local kind="$1" log="$2"
  shift 2
  "$SERVER" --id 0 --listen "127.0.0.1:$PORT" --shards 1 \
    --store "$kind" --data-dir "$LOG_DIR/$kind" --reap-ms 250 \
    --log-level warn "$@" > "$log" 2>&1 &
  SERVER_PID=$!
}

wait_ready() {
  local log="$1"
  # Generous: the legacy leg's full-history replay IS the slow path under
  # measurement here.
  for _ in $(seq 1 600); do
    grep -q "ready on" "$log" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "bench_recovery: server did not become ready" >&2
  cat "$log" >&2
  exit 1
}

stop_server() {
  kill "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
}

# run_leg <kind> [extra server flags...]: load, settle, restart, measure.
# Leaves LEG_RECOVERY_MS, LEG_DISK_BYTES and LEG_BOOT_LINE set.
run_leg() {
  local kind="$1"
  shift
  mkdir -p "$LOG_DIR/$kind"

  echo "== [$kind] loading: $RECORDS records + ${DURATION_MS}ms of TTL'd updates (ttl ${TTL_MS}ms)"
  start_server "$kind" "$LOG_DIR/$kind-load.log" "$@"
  wait_ready "$LOG_DIR/$kind-load.log"
  "$LOADGEN" --peer "0@127.0.0.1:$PORT" --workload A \
    --threads "$THREADS" --concurrency "$CONCURRENCY" \
    --records "$RECORDS" --duration-ms "$DURATION_MS" --ttl-ms "$TTL_MS" \
    --out "$LOG_DIR/$kind-load.json" >/dev/null

  # Let every TTL'd update expire and be reaped (and, for the engine, let a
  # checkpoint capture the shrunken live set).
  sleep "$(( (TTL_MS / 1000) + 4 ))"
  stop_server

  LEG_DISK_BYTES="$(du -sb "$LOG_DIR/$kind" | cut -f1)"

  echo "== [$kind] restarting against $LEG_DISK_BYTES bytes on disk"
  start_server "$kind" "$LOG_DIR/$kind-restart.log" "$@"
  wait_ready "$LOG_DIR/$kind-restart.log"
  LEG_RECOVERY_MS="$(grep -oE 'store recovery took [0-9.]+ ms' \
    "$LOG_DIR/$kind-restart.log" | grep -oE '[0-9.]+' | head -1)"
  [[ -n "$LEG_RECOVERY_MS" ]] || {
    echo "bench_recovery: [$kind] restart printed no recovery time" >&2
    cat "$LOG_DIR/$kind-restart.log" >&2
    exit 1
  }
  LEG_BOOT_LINE="$(grep -E 'recovered snapshot\+tail|objects recovered' \
    "$LOG_DIR/$kind-restart.log" | head -1)"
  echo "   $LEG_BOOT_LINE"
  echo "   recovery: ${LEG_RECOVERY_MS} ms"
  stop_server
}

run_leg log
LOG_MS="$LEG_RECOVERY_MS"
LOG_DISK="$LEG_DISK_BYTES"
LOG_REPLAYED="$(grep -oE '[0-9]+ objects recovered' <<< "$LEG_BOOT_LINE" \
  | grep -oE '^[0-9]+')"

run_leg durable --compact-interval-sec 1
DUR_MS="$LEG_RECOVERY_MS"
DUR_DISK="$LEG_DISK_BYTES"
DUR_SNAP="$(grep -oE '[0-9]+ snapshot objects' <<< "$LEG_BOOT_LINE" \
  | grep -oE '^[0-9]+')"
DUR_TAIL="$(grep -oE '[0-9]+ journal records' <<< "$LEG_BOOT_LINE" \
  | grep -oE '^[0-9]+')"
DUR_LIVE="$(grep -oE '[0-9]+ live' <<< "$LEG_BOOT_LINE" | grep -oE '^[0-9]+')"

DUR_DECODED=$((DUR_SNAP + DUR_TAIL))
echo "== legacy log replayed $LOG_REPLAYED records in ${LOG_MS} ms;" \
     "engine decoded $DUR_DECODED (snapshot $DUR_SNAP + tail $DUR_TAIL)" \
     "in ${DUR_MS} ms"

# The structural claim this PR makes: the checkpointed restart is bounded by
# the live set, not the history. The TTL'd updates vastly outnumber the
# surviving records, so the engine must have decoded strictly less than the
# log replayed (times are recorded as evidence but not asserted — CI wall
# clocks are noisy).
[[ "$DUR_DECODED" -lt "$LOG_REPLAYED" ]] || {
  echo "bench_recovery: engine decoded $DUR_DECODED records but the legacy" \
       "log replayed only $LOG_REPLAYED — checkpointing bought nothing" >&2
  exit 1
}

{
  printf '{\n'
  printf '  "bench": "recovery",\n'
  printf '  "config": {"records": %s, "duration_ms": %s, "ttl_ms": %s,\n' \
    "$RECORDS" "$DURATION_MS" "$TTL_MS"
  printf '             "threads": %s, "concurrency": %s, "workload": "A"},\n' \
    "$THREADS" "$CONCURRENCY"
  printf '  "log_store": {"restart_ms": %s, "records_replayed": %s, "disk_bytes": %s},\n' \
    "$LOG_MS" "$LOG_REPLAYED" "$LOG_DISK"
  printf '  "storage_engine": {"restart_ms": %s, "snapshot_objects": %s,\n' \
    "$DUR_MS" "$DUR_SNAP"
  printf '                     "tail_records": %s, "live_objects": %s, "disk_bytes": %s},\n' \
    "$DUR_TAIL" "$DUR_LIVE" "$DUR_DISK"
  printf '  "records_decoded_ratio": %s\n' \
    "$(awk -v a="$DUR_DECODED" -v b="$LOG_REPLAYED" \
        'BEGIN { printf (b > 0 ? "%.4f" : "0"), a / b }')"
  printf '}\n'
} > "$OUT"
echo "== report written to $OUT"
echo "bench_recovery: PASS"
