#!/usr/bin/env bash
# Real-cluster benchmark: launches a localhost UDP fleet of
# dataflasks_server processes and drives it with dataflasks_loadgen
# (YCSB-style workload through the client library), producing a
# machine-readable BENCH_real_cluster.json plus two observability
# assertions along the way:
#
#   * the --metrics-port TCP endpoint answers a scrape with Prometheus
#     text containing the per-op counters the load just incremented, and
#   * `dataflasks_cli stats` (the v2 Stats admin op over UDP) returns the
#     same exposition.
#
# Used by the CI `bench-real-smoke` job (quick settings via env) and
# runnable locally at full size:
#
#   ./scripts/bench_real_cluster.sh [build-dir] [out.json]
#
# Tunables (environment): BENCH_NODES (default 3), BENCH_DURATION_MS
# (default 20000), BENCH_THREADS (4), BENCH_CONCURRENCY (4),
# BENCH_RECORDS (2000), BENCH_WORKLOAD (A), BENCH_BASE_PORT (7431),
# BENCH_SWEEP (comma-separated offered loads in ops/sec; default a
# 4k..128k ladder — each step runs for BENCH_DURATION_MS and the report
# gains "sweep" and "knee" sections locating the throughput knee; set
# BENCH_SWEEP="" for a single closed-loop run without the sweep).
# Exits non-zero on any failure; always tears the servers down. Wrap in
# `timeout` as a hang guard (CI does).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_real_cluster.json}"
SERVER="$BUILD_DIR/src/server/dataflasks_server"
CLI="$BUILD_DIR/src/server/dataflasks_cli"
LOADGEN="$BUILD_DIR/src/server/dataflasks_loadgen"

NODES="${BENCH_NODES:-3}"
DURATION_MS="${BENCH_DURATION_MS:-20000}"
THREADS="${BENCH_THREADS:-4}"
CONCURRENCY="${BENCH_CONCURRENCY:-4}"
RECORDS="${BENCH_RECORDS:-2000}"
WORKLOAD="${BENCH_WORKLOAD:-A}"
BASE_PORT="${BENCH_BASE_PORT:-7431}"
SWEEP="${BENCH_SWEEP-4000,8000,16000,32000,64000,128000}"
LOG_DIR="$(mktemp -d)"

[[ -x "$SERVER" && -x "$CLI" && -x "$LOADGEN" ]] || {
  echo "bench_real_cluster: build dataflasks_server, dataflasks_cli and" \
       "dataflasks_loadgen first" >&2
  exit 1
}

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$LOG_DIR"
}
trap cleanup EXIT

PEER_FLAGS=()
for ((i = 0; i < NODES; i++)); do
  PEER_FLAGS+=("--peer" "$i@127.0.0.1:$((BASE_PORT + i))")
done

echo "== launching $NODES-node cluster on ports $BASE_PORT-$((BASE_PORT + NODES - 1))"
for ((i = 0; i < NODES; i++)); do
  node_peers=()
  for ((j = 0; j < NODES; j++)); do
    [[ "$i" == "$j" ]] || node_peers+=("--peer" "$j@127.0.0.1:$((BASE_PORT + j))")
  done
  metrics=()
  [[ "$i" == 0 ]] && metrics=("--metrics-port" "0")  # ephemeral, printed at boot
  "$SERVER" --id "$i" --listen "127.0.0.1:$((BASE_PORT + i))" \
    --gossip-ms 100 --ae-ms 500 --log-level warn \
    "${metrics[@]}" "${node_peers[@]}" \
    > "$LOG_DIR/server$i.log" 2>&1 &
  PIDS[$i]=$!
done
for ((i = 0; i < NODES; i++)); do
  for _ in $(seq 1 50); do
    grep -q "ready on" "$LOG_DIR/server$i.log" 2>/dev/null && break
    sleep 0.1
  done
  grep -q "ready on" "$LOG_DIR/server$i.log" || {
    echo "bench_real_cluster: server $i did not become ready" >&2
    cat "$LOG_DIR/server$i.log" >&2
    exit 1
  }
done

SWEEP_FLAGS=()
if [[ -n "$SWEEP" ]]; then
  # Offered-load sweep: one open-loop step per rate against the shared
  # preloaded records; the report locates the throughput knee (peak
  # goodput) and the shed fraction past it.
  SWEEP_FLAGS=("--sweep" "$SWEEP")
  echo "== loadgen sweep: workload $WORKLOAD, rates $SWEEP ops/sec, ${DURATION_MS}ms per step"
else
  echo "== loadgen: workload $WORKLOAD, $THREADS threads x $CONCURRENCY streams, ${DURATION_MS}ms"
fi
"$LOADGEN" "${PEER_FLAGS[@]}" \
  --workload "$WORKLOAD" --threads "$THREADS" --concurrency "$CONCURRENCY" \
  --records "$RECORDS" --duration-ms "$DURATION_MS" \
  "${SWEEP_FLAGS[@]}" --out "$OUT"
echo "== report written to $OUT"

grep -q '"bench": "real_cluster"' "$OUT" || {
  echo "bench_real_cluster: report missing or malformed" >&2
  exit 1
}
if [[ -n "$SWEEP" ]]; then
  grep -q '"knee"' "$OUT" || {
    echo "bench_real_cluster: sweep ran but the report has no knee" >&2
    exit 1
  }
  echo "== knee: $(grep -oE '"knee": \{[^}]*\}' "$OUT")"
fi

echo "== scraping node 0's TCP metrics endpoint"
METRICS_PORT="$(grep -oE 'metrics on 127.0.0.1:[0-9]+' "$LOG_DIR/server0.log" \
  | head -1 | grep -oE '[0-9]+$')"
[[ -n "$METRICS_PORT" ]] || {
  echo "bench_real_cluster: node 0 printed no metrics port" >&2
  cat "$LOG_DIR/server0.log" >&2
  exit 1
}
SCRAPE="$(exec 3<>"/dev/tcp/127.0.0.1/$METRICS_PORT" \
  && printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3 && cat <&3)"
grep -q "df_ops_total" <<< "$SCRAPE" || {
  echo "bench_real_cluster: scrape did not expose the op counters" >&2
  echo "$SCRAPE" >&2
  exit 1
}
grep -q 'df_ops_total{op="put"} [1-9]' <<< "$SCRAPE" || {
  echo "bench_real_cluster: put counter did not move under load" >&2
  exit 1
}
echo "   $(grep -c '^df_' <<< "$SCRAPE") metric samples served"

echo "== dataflasks_cli stats (v2 Stats op over UDP) must match the exposition"
STATS="$("$CLI" "${PEER_FLAGS[@]}" --timeout-ms 5000 stats)"
grep -q "df_ops_total" <<< "$STATS" || {
  echo "bench_real_cluster: cli stats did not return the exposition" >&2
  echo "$STATS" >&2
  exit 1
}

echo "bench_real_cluster: PASS"
