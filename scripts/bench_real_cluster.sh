#!/usr/bin/env bash
# Real-cluster benchmark: launches a localhost UDP fleet of
# dataflasks_server processes and drives it with dataflasks_loadgen
# (YCSB-style workload through the client library), producing a
# machine-readable BENCH_real_cluster.json plus two observability
# assertions along the way:
#
#   * the --metrics-port TCP endpoint answers a scrape with Prometheus
#     text containing the per-op counters the load just incremented, and
#   * `dataflasks_cli stats` (the v2 Stats admin op over UDP) returns the
#     same exposition.
#
# Used by the CI `bench-real-smoke` job (quick settings via env) and
# runnable locally at full size:
#
#   ./scripts/bench_real_cluster.sh [build-dir] [out.json]
#
# Tunables (environment): BENCH_NODES (default 3), BENCH_DURATION_MS
# (default 20000), BENCH_THREADS (4), BENCH_CONCURRENCY (4),
# BENCH_RECORDS (2000), BENCH_WORKLOAD (A), BENCH_BASE_PORT (7431),
# BENCH_SWEEP (comma-separated offered loads in ops/sec; default a
# 4k..128k ladder — each step runs for BENCH_DURATION_MS and the report
# gains "sweep" and "knee" sections locating the throughput knee; set
# BENCH_SWEEP="" for a single closed-loop run without the sweep).
#
# Cache-mode leg (single-fleet runs only): after the main load, the fleet
# is relaunched with --max-store-bytes BENCH_CACHE_MAX_BYTES (default
# 65536) and driven with TTL'd writes (--ttl-ms BENCH_CACHE_TTL_MS,
# default 2000); the report gains a "cache_mode" section with the
# expiry/eviction counters node 0 reported. Set BENCH_CACHE_TTL_MS=""
# to skip the leg.
#
# Shard-ladder mode (the multi-core scaling curve): set BENCH_SHARDS to a
# comma-separated list of shard counts, e.g.
#
#   BENCH_SHARDS=1,2,4,8 ./scripts/bench_real_cluster.sh build
#
# and the script runs one full fleet + sweep per shard count (every node
# launched with --shards N), extracts each rung's knee, and writes a
# combined report whose "shard_ladder" array holds one knee per shard
# count plus "host_cores" — the scaling numbers are only meaningful
# relative to how many hardware threads the host actually has. Per-rung
# full reports land next to the combined one as <out>.shardsN.json.
#
# Exits non-zero on any failure; always tears the servers down. Wrap in
# `timeout` as a hang guard (CI does).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_real_cluster.json}"
SERVER="$BUILD_DIR/src/server/dataflasks_server"
CLI="$BUILD_DIR/src/server/dataflasks_cli"
LOADGEN="$BUILD_DIR/src/server/dataflasks_loadgen"

NODES="${BENCH_NODES:-3}"
DURATION_MS="${BENCH_DURATION_MS:-20000}"
THREADS="${BENCH_THREADS:-4}"
CONCURRENCY="${BENCH_CONCURRENCY:-4}"
RECORDS="${BENCH_RECORDS:-2000}"
WORKLOAD="${BENCH_WORKLOAD:-A}"
BASE_PORT="${BENCH_BASE_PORT:-7431}"
SWEEP="${BENCH_SWEEP-4000,8000,16000,32000,64000,128000}"
SHARD_LADDER="${BENCH_SHARDS:-}"
LOG_DIR="$(mktemp -d)"

[[ -x "$SERVER" && -x "$CLI" && -x "$LOADGEN" ]] || {
  echo "bench_real_cluster: build dataflasks_server, dataflasks_cli and" \
       "dataflasks_loadgen first" >&2
  exit 1
}

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$LOG_DIR"
}
trap cleanup EXIT

PEER_FLAGS=()
for ((i = 0; i < NODES; i++)); do
  PEER_FLAGS+=("--peer" "$i@127.0.0.1:$((BASE_PORT + i))")
done

# launch_fleet <shards> [extra server flags...]: boots the $NODES-node
# fleet; empty <shards> leaves the server's own default (--shards 0 = one
# shard per hardware thread).
launch_fleet() {
  local shards="${1:-}"
  shift || true
  local shard_flags=()
  [[ -n "$shards" ]] && shard_flags=("--shards" "$shards")
  for ((i = 0; i < NODES; i++)); do
    local node_peers=()
    for ((j = 0; j < NODES; j++)); do
      [[ "$i" == "$j" ]] || node_peers+=("--peer" "$j@127.0.0.1:$((BASE_PORT + j))")
    done
    local metrics=()
    [[ "$i" == 0 ]] && metrics=("--metrics-port" "0")  # ephemeral, printed at boot
    "$SERVER" --id "$i" --listen "127.0.0.1:$((BASE_PORT + i))" \
      --gossip-ms 100 --ae-ms 500 --log-level warn \
      "${metrics[@]}" "${shard_flags[@]}" "$@" "${node_peers[@]}" \
      > "$LOG_DIR/server$i.log" 2>&1 &
    PIDS[$i]=$!
  done
  for ((i = 0; i < NODES; i++)); do
    for _ in $(seq 1 50); do
      grep -q "ready on" "$LOG_DIR/server$i.log" 2>/dev/null && break
      sleep 0.1
    done
    grep -q "ready on" "$LOG_DIR/server$i.log" || {
      echo "bench_real_cluster: server $i did not become ready" >&2
      cat "$LOG_DIR/server$i.log" >&2
      exit 1
    }
  done
}

teardown_fleet() {
  for ((i = 0; i < NODES; i++)); do
    kill "${PIDS[$i]}" 2>/dev/null || true
    wait "${PIDS[$i]}" 2>/dev/null || true
  done
  PIDS=()
  rm -f "$LOG_DIR"/server*.log
}

# run_load <out.json>: drives the running fleet (sweep when configured).
run_load() {
  local out="$1"
  local sweep_flags=()
  if [[ -n "$SWEEP" ]]; then
    sweep_flags=("--sweep" "$SWEEP")
    echo "== loadgen sweep: workload $WORKLOAD, rates $SWEEP ops/sec, ${DURATION_MS}ms per step"
  else
    echo "== loadgen: workload $WORKLOAD, $THREADS threads x $CONCURRENCY streams, ${DURATION_MS}ms"
  fi
  "$LOADGEN" "${PEER_FLAGS[@]}" \
    --workload "$WORKLOAD" --threads "$THREADS" --concurrency "$CONCURRENCY" \
    --records "$RECORDS" --duration-ms "$DURATION_MS" \
    "${sweep_flags[@]}" --out "$out"
  grep -q '"bench": "real_cluster"' "$out" || {
    echo "bench_real_cluster: report missing or malformed" >&2
    exit 1
  }
  if [[ -n "$SWEEP" ]]; then
    grep -q '"knee"' "$out" || {
      echo "bench_real_cluster: sweep ran but the report has no knee" >&2
      exit 1
    }
    echo "== knee: $(grep -oE '"knee": \{[^}]*\}' "$out")"
  fi
}

# scrape_node0: fetches node 0's /metrics exposition into $SCRAPE.
scrape_node0() {
  METRICS_PORT="$(grep -oE 'metrics on 127.0.0.1:[0-9]+' "$LOG_DIR/server0.log" \
    | head -1 | grep -oE '[0-9]+$')"
  [[ -n "$METRICS_PORT" ]] || {
    echo "bench_real_cluster: node 0 printed no metrics port" >&2
    cat "$LOG_DIR/server0.log" >&2
    exit 1
  }
  SCRAPE="$(exec 3<>"/dev/tcp/127.0.0.1/$METRICS_PORT" \
    && printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3 && cat <&3)"
}

# check_observability: node 0's TCP scrape + the Stats op must answer and
# show the op counters the load just incremented.
check_observability() {
  echo "== scraping node 0's TCP metrics endpoint"
  scrape_node0
  grep -q "df_ops_total" <<< "$SCRAPE" || {
    echo "bench_real_cluster: scrape did not expose the op counters" >&2
    echo "$SCRAPE" >&2
    exit 1
  }
  grep -q 'df_ops_total{op="put"} [1-9]' <<< "$SCRAPE" || {
    echo "bench_real_cluster: put counter did not move under load" >&2
    exit 1
  }
  echo "   $(grep -c '^df_' <<< "$SCRAPE") metric samples served"

  echo "== dataflasks_cli stats (v2 Stats op over UDP) must match the exposition"
  STATS="$("$CLI" "${PEER_FLAGS[@]}" --timeout-ms 5000 stats)"
  grep -q "df_ops_total" <<< "$STATS" || {
    echo "bench_real_cluster: cli stats did not return the exposition" >&2
    echo "$STATS" >&2
    exit 1
  }
}

# run_cache_leg: relaunches the fleet in cache mode (every run-phase write
# carries a TTL, every node runs under a --max-store-bytes budget), waits
# out the expiry deadline, and splices the df_store_* expiry/eviction
# counters the fleet actually reported into the main JSON report. Skipped
# when BENCH_CACHE_TTL_MS is set empty.
run_cache_leg() {
  [[ -n "$CACHE_TTL_MS" ]] || return 0
  echo "== cache-mode leg: ttl ${CACHE_TTL_MS}ms, --max-store-bytes $CACHE_MAX_BYTES"
  teardown_fleet
  launch_fleet 1 --max-store-bytes "$CACHE_MAX_BYTES" --reap-ms 250
  "$LOADGEN" "${PEER_FLAGS[@]}" \
    --workload "$WORKLOAD" --threads "$THREADS" --concurrency "$CONCURRENCY" \
    --records "$RECORDS" --duration-ms "$DURATION_MS" \
    --ttl-ms "$CACHE_TTL_MS" --out "$LOG_DIR/cache.json"
  # Every TTL'd write crosses its deadline; the 250ms reapers collect them.
  sleep "$(( (CACHE_TTL_MS / 1000) + 2 ))"
  scrape_node0
  CACHE_EXPIRED="$(grep -E '^df_store_keys_expired_total ' <<< "$SCRAPE" \
    | awk '{print $2}')"
  CACHE_EVICTED="$(grep -E '^df_store_keys_evicted_total ' <<< "$SCRAPE" \
    | awk '{print $2}')"
  [[ -n "$CACHE_EXPIRED" && -n "$CACHE_EVICTED" ]] || {
    echo "bench_real_cluster: cache leg scrape lacks the df_store counters" >&2
    echo "$SCRAPE" >&2
    exit 1
  }
  [[ "$CACHE_EXPIRED" -gt 0 ]] || {
    echo "bench_real_cluster: TTL'd load ran but nothing expired" >&2
    exit 1
  }
  [[ "$CACHE_EVICTED" -gt 0 ]] || {
    echo "bench_real_cluster: the store budget was oversubscribed but nothing evicted" >&2
    exit 1
  }
  echo "   node 0: keys_expired=$CACHE_EXPIRED keys_evicted=$CACHE_EVICTED"
  # Splice a "cache_mode" section into the report, before the closing brace.
  sed -i '$ d' "$OUT"
  {
    printf ',\n  "cache_mode": {\n'
    printf '    "ttl_ms": %s,\n' "$CACHE_TTL_MS"
    printf '    "max_store_bytes": %s,\n' "$CACHE_MAX_BYTES"
    printf '    "node0_keys_expired": %s,\n' "$CACHE_EXPIRED"
    printf '    "node0_keys_evicted": %s\n' "$CACHE_EVICTED"
    printf '  }\n}\n'
  } >> "$OUT"
}

CACHE_TTL_MS="${BENCH_CACHE_TTL_MS-2000}"
CACHE_MAX_BYTES="${BENCH_CACHE_MAX_BYTES:-65536}"

if [[ -z "$SHARD_LADDER" ]]; then
  echo "== launching $NODES-node cluster on ports $BASE_PORT-$((BASE_PORT + NODES - 1))"
  launch_fleet ""
  run_load "$OUT"
  check_observability
  run_cache_leg
  echo "== report written to $OUT"
  echo "bench_real_cluster: PASS"
  exit 0
fi

# ---- shard-ladder mode: one fleet + sweep per shard count ------------------
[[ -n "$SWEEP" ]] || {
  echo "bench_real_cluster: BENCH_SHARDS needs BENCH_SWEEP (the ladder compares knees)" >&2
  exit 1
}
HOST_CORES="$(nproc 2>/dev/null || echo 1)"
echo "== shard ladder: counts [$SHARD_LADDER] on a ${HOST_CORES}-core host"
LADDER_ENTRIES=()
LAST_SHARDS=""
IFS=',' read -ra LADDER <<< "$SHARD_LADDER"
for shards in "${LADDER[@]}"; do
  echo "== rung: $NODES nodes x --shards $shards on ports $BASE_PORT-$((BASE_PORT + NODES - 1))"
  launch_fleet "$shards"
  grep -q "$shards shards" "$LOG_DIR/server0.log" || {
    echo "bench_real_cluster: node 0 did not come up with $shards shards" >&2
    cat "$LOG_DIR/server0.log" >&2
    exit 1
  }
  RUNG_OUT="${OUT%.json}.shards${shards}.json"
  run_load "$RUNG_OUT"
  KNEE="$(grep -oE '"knee": \{[^}]*\}' "$RUNG_OUT" | sed 's/^"knee": //')"
  [[ -n "$KNEE" ]] || {
    echo "bench_real_cluster: rung $shards produced no knee" >&2
    exit 1
  }
  LADDER_ENTRIES+=("    {\"shards\": $shards, \"knee\": $KNEE}")
  LAST_SHARDS="$shards"
  check_observability
  teardown_fleet
done

{
  printf '{\n'
  printf '  "bench": "real_cluster_shard_ladder",\n'
  printf '  "host_cores": %s,\n' "$HOST_CORES"
  printf '  "nodes": %s,\n' "$NODES"
  printf '  "workload": "%s",\n' "$WORKLOAD"
  printf '  "sweep_rates": "%s",\n' "$SWEEP"
  printf '  "duration_ms_per_step": %s,\n' "$DURATION_MS"
  printf '  "shard_ladder": [\n'
  for ((i = 0; i < ${#LADDER_ENTRIES[@]}; i++)); do
    sep=','
    [[ "$i" == $((${#LADDER_ENTRIES[@]} - 1)) ]] && sep=''
    printf '%s%s\n' "${LADDER_ENTRIES[$i]}" "$sep"
  done
  printf '  ]\n'
  printf '}\n'
} > "$OUT"
echo "== shard-ladder report written to $OUT (rungs: ${SHARD_LADDER}, last=$LAST_SHARDS)"
echo "bench_real_cluster: PASS"
