// Ablation (paper §VII): the Load Balancer optimization path. "If the Load
// Balancer was able to know exactly which node to contact for each request,
// dissemination mechanisms would be reduced to the minimum. As this is not
// feasible in practice, cache mechanisms should be studied."
//
// Compares three policies at fixed N, k:
//   random       — the paper's baseline (random contact node)
//   slice-cache  — client remembers one replica per slice (our §VII cache)
//   directory    — nodes additionally shortcut sprays via their slice
//                  directory (gossip-learned contact per slice)
//
// Run: ablation_loadbalancer [nodes=600 slices=12 ops_per_node=2 seed=42]
#include <cstdio>
#include <string>

#include "bench_util.hpp"

namespace {

using namespace dataflasks;

struct LbPoint {
  double msgs_request;
  double ack_rate;
  double p50_ms;
};

LbPoint run_policy(const std::string& policy, std::size_t nodes,
                   std::uint32_t slices, std::size_t clients_count,
                   std::size_t ops, std::uint64_t seed) {
  harness::ClusterOptions copts;
  copts.node_count = nodes;
  copts.seed = seed;
  copts.node.slice_config = {slices, 1};
  if (policy == "directory") {
    copts.node.request.spray.use_directory = true;
  }
  harness::Cluster cluster(copts);
  cluster.start_all();
  cluster.run_for(90 * kSeconds);
  cluster.transport().reset_stats();

  // Few long-lived clients, many ops each: the regime where a client-side
  // cache can actually warm up (a one-shot client learns nothing).
  workload::WorkloadSpec spec = workload::WorkloadSpec::write_only();
  spec.record_count = nodes;
  spec.operation_count = ops;

  const std::string balancer =
      policy == "random" ? "random" : "slice-cache";
  client::ClientOptions client_options;
  if (policy != "random") client_options.slice_count_hint = slices;

  std::vector<client::Client*> clients;
  std::vector<std::vector<workload::Op>> streams;
  Rng stream_rng(seed ^ 0x1b);
  for (std::size_t i = 0; i < clients_count; ++i) {
    clients.push_back(&cluster.add_client(client_options, balancer));
    workload::WorkloadGenerator gen(spec, stream_rng.fork(i));
    streams.push_back(gen.transaction_phase());
  }
  harness::Runner runner(cluster, clients, std::move(streams));
  runner.run(cluster.simulator().now() + 1200 * kSeconds);
  cluster.run_for(20 * kSeconds);

  LbPoint point;
  point.msgs_request =
      cluster.mean_messages_per_node(net::MsgCategory::kRequest);
  point.ack_rate = runner.stats().put_success_rate();
  point.p50_ms = runner.stats().put_latency.quantile(0.5) /
                 static_cast<double>(kMillis);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dataflasks::bench;

  const dataflasks::Config cfg = parse_bench_args(argc, argv);
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 600));
  const auto slices = static_cast<std::uint32_t>(cfg.get_int("slices", 12));
  const auto clients = static_cast<std::size_t>(cfg.get_int("clients", 20));
  const auto ops = static_cast<std::size_t>(cfg.get_int("ops_per_client", 30));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  std::printf(
      "# Ablation: load balancer / routing cache (N=%zu, k=%u, %zu clients "
      "x %zu ops)\n",
      nodes, slices, clients, ops);
  std::printf("%14s %14s %10s %10s\n", "policy", "request/node", "ack_rate",
              "p50_ms");
  for (const char* policy : {"random", "slice-cache", "directory"}) {
    const auto p = run_policy(policy, nodes, slices, clients, ops, seed);
    std::printf("%14s %14.1f %10.3f %10.1f\n", policy, p.msgs_request,
                p.ack_rate, p.p50_ms);
    std::fflush(stdout);
  }
  std::printf(
      "\nexpected: caches cut request dissemination cost and latency versus "
      "the random policy while keeping reliability (paper SVII's 'as close "
      "as possible to the ideal' direction).\n");
  return 0;
}
