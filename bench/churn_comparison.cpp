// Motivation experiment (paper §I): "as the system size grows, the
// assumption of a moderately stable environment becomes unrealistic ...
// faults and churn become the rule instead of the exception. We posit that
// an unstructured but resilient approach to data management is more
// appropriate."
//
// Loads the same data into DataFlasks and the Chord-DHT baseline, then
// subjects both to increasing churn rates and measures read availability
// and durability over the churn window.
//
// Run: churn_comparison [nodes=300 slices=6 objects=120 seed=42]
#include <cstdio>

#include "baseline/dht_kv.hpp"
#include "bench_util.hpp"

namespace {

using namespace dataflasks;

struct ChurnPoint {
  double read_success = 0.0;
  double survivors = 0.0;  ///< fraction of objects with >= 1 replica at end
};

ChurnPoint run_dataflasks(std::size_t nodes, std::uint32_t slices,
                          std::size_t objects, double churn_rate,
                          std::uint64_t seed) {
  harness::ClusterOptions copts;
  copts.node_count = nodes;
  copts.seed = seed;
  copts.node.slice_config = {slices, 1};
  harness::Cluster cluster(copts);
  cluster.start_all();
  cluster.run_for(90 * kSeconds);

  auto& client = cluster.add_client();
  for (std::size_t i = 0; i < objects; ++i) {
    client.put("obj" + std::to_string(i), Bytes{1, 2, 3}, 1, nullptr);
  }
  cluster.run_for(60 * kSeconds);  // replicate across slices

  // Churn window.
  Rng churn_rng(seed ^ 0xc4);
  sim::ChurnPlanOptions churn;
  churn.start = cluster.simulator().now();
  churn.end = churn.start + 120 * kSeconds;
  churn.events_per_second = churn_rate;
  churn.downtime_min = 10 * kSeconds;
  churn.downtime_max = 40 * kSeconds;
  cluster.apply_churn_plan(
      sim::make_churn_plan(cluster.node_ids(), churn, churn_rng));

  // Reads during churn.
  std::size_t attempted = 0, succeeded = 0;
  Rng pick(seed ^ 0x9d);
  for (int round = 0; round < 24; ++round) {
    cluster.run_for(5 * kSeconds);
    const Key key = "obj" + std::to_string(pick.next_below(objects));
    ++attempted;
    bool ok = false;
    client.get(key, std::nullopt,
               [&ok](const client::GetResult& r) { ok = r.ok; });
    cluster.run_for(10 * kSeconds);
    if (ok) ++succeeded;
  }
  cluster.run_for(60 * kSeconds);  // repair window

  ChurnPoint point;
  point.read_success =
      static_cast<double>(succeeded) / static_cast<double>(attempted);
  std::size_t alive_objects = 0;
  for (std::size_t i = 0; i < objects; ++i) {
    if (cluster.replica_count("obj" + std::to_string(i), 1) > 0) {
      ++alive_objects;
    }
  }
  point.survivors =
      static_cast<double>(alive_objects) / static_cast<double>(objects);
  return point;
}

ChurnPoint run_dht(std::size_t nodes, std::size_t objects, double churn_rate,
                   std::uint64_t seed) {
  sim::Simulator simulator(seed);
  sim::NetworkModel model(sim::LatencyModel{5 * kMillis, 50 * kMillis});
  net::SimTransport transport(simulator, model);

  baseline::DhtKvOptions options;
  options.replication = 3;
  std::vector<std::unique_ptr<baseline::DhtNode>> ring;
  Rng seeder(seed ^ 0x7);
  for (std::size_t i = 0; i < nodes; ++i) {
    ring.push_back(std::make_unique<baseline::DhtNode>(
        NodeId(i), simulator, transport, Rng(seeder.next_u64()), options));
  }
  ring[0]->start(NodeId());
  for (std::size_t i = 1; i < nodes; ++i) ring[i]->start(NodeId(0));
  // Sequential joins through one bootstrap need O(N) stabilize rounds to
  // settle every successor pointer; give the ring ample time so the
  // comparison measures churn response, not residual join transients.
  simulator.run_until(simulator.now() + 420 * kSeconds);

  Rng pick(seed ^ 0x9d);
  for (std::size_t i = 0; i < objects; ++i) {
    ring[pick.next_below(nodes)]->put("obj" + std::to_string(i),
                                      Bytes{1, 2, 3}, 1, nullptr);
  }
  simulator.run_until(simulator.now() + 30 * kSeconds);

  // Same churn process as the DataFlasks run.
  Rng churn_rng(seed ^ 0xc4);
  sim::ChurnPlanOptions churn;
  churn.start = simulator.now();
  churn.end = churn.start + 120 * kSeconds;
  churn.events_per_second = churn_rate;
  churn.downtime_min = 10 * kSeconds;
  churn.downtime_max = 40 * kSeconds;
  std::vector<NodeId> ids;
  for (const auto& n : ring) ids.push_back(n->id());
  for (const auto& event :
       sim::make_churn_plan(ids, churn, churn_rng)) {
    const auto index = static_cast<std::size_t>(event.node.value);
    simulator.schedule_at(event.at, [&ring, &model, event, index]() {
      if (event.kind == sim::ChurnEventKind::kCrash) {
        if (ring[index]->running()) {
          model.set_node_up(event.node, false);
          ring[index]->crash();
        }
      } else if (!ring[index]->running()) {
        model.set_node_up(event.node, true);
        // Rejoin through node 0 (or any running node).
        NodeId contact;
        for (const auto& n : ring) {
          if (n->running()) {
            contact = n->id();
            break;
          }
        }
        ring[index]->start(contact);
      }
    });
  }

  std::size_t attempted = 0, succeeded = 0;
  for (int round = 0; round < 24; ++round) {
    simulator.run_until(simulator.now() + 5 * kSeconds);
    const Key key = "obj" + std::to_string(pick.next_below(objects));
    baseline::DhtNode* coordinator = nullptr;
    for (const auto& n : ring) {
      if (n->running()) {
        coordinator = n.get();
        break;
      }
    }
    if (coordinator == nullptr) continue;
    ++attempted;
    bool ok = false;
    coordinator->get(key, std::nullopt,
                     [&ok](const baseline::DhtGetResult& r) { ok = r.ok; });
    simulator.run_until(simulator.now() + 10 * kSeconds);
    if (ok) ++succeeded;
  }
  simulator.run_until(simulator.now() + 60 * kSeconds);

  ChurnPoint point;
  point.read_success = attempted == 0
                           ? 0.0
                           : static_cast<double>(succeeded) /
                                 static_cast<double>(attempted);
  std::size_t alive_objects = 0;
  for (std::size_t i = 0; i < objects; ++i) {
    const Key key = "obj" + std::to_string(i);
    for (const auto& n : ring) {
      if (n->running() && n->store().contains(key, 1)) {
        ++alive_objects;
        break;
      }
    }
  }
  point.survivors =
      static_cast<double>(alive_objects) / static_cast<double>(objects);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dataflasks::bench;

  const dataflasks::Config cfg = parse_bench_args(argc, argv);
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 300));
  const auto slices = static_cast<std::uint32_t>(cfg.get_int("slices", 6));
  const auto objects = static_cast<std::size_t>(cfg.get_int("objects", 120));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  std::printf(
      "# Churn comparison: DataFlasks vs Chord DHT baseline (N=%zu)\n",
      nodes);
  std::printf("%12s %22s %22s\n", "", "DataFlasks", "Chord-DHT");
  std::printf("%12s %11s %10s %11s %10s\n", "churn(ev/s)", "read_ok",
              "durable", "read_ok", "durable");

  for (const double rate : {0.0, 0.5, 1.0, 2.0}) {
    const auto df = run_dataflasks(nodes, slices, objects, rate, seed);
    const auto dht = run_dht(nodes, objects, rate, seed);
    std::printf("%12.1f %11.3f %10.3f %11.3f %10.3f\n", rate,
                df.read_success, df.survivors, dht.read_success,
                dht.survivors);
    std::fflush(stdout);
  }
  std::printf(
      "\nexpected: both near 1.0 when stable; as churn grows the DHT's "
      "availability/durability degrade faster (ring repair lags, no replica "
      "regeneration), while DataFlasks' slice replication + anti-entropy "
      "hold — the paper's SI motivation.\n");
  return 0;
}
