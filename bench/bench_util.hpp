// Shared benchmark harness: builds a DataFlasks deployment with co-located
// YCSB clients (one per node, as a Minha whole-system run drives load),
// executes the write-only workload and reports per-node message counts by
// traffic category — the quantity Figures 3 and 4 of the paper plot.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "harness/cluster.hpp"
#include "harness/runner.hpp"

namespace dataflasks::bench {

struct FigureRow {
  std::size_t nodes = 0;
  std::uint32_t slices = 0;
  std::uint64_t ops_issued = 0;
  std::uint64_t ops_acked = 0;
  double msgs_request = 0.0;       ///< request dissemination + replies + pushes
  double msgs_anti_entropy = 0.0;  ///< batched replication repair
  double msgs_counted = 0.0;       ///< request + anti-entropy (the figure's y)
  double msgs_maintenance = 0.0;   ///< PSS + slicing + adverts (reported aside)
  double put_p50_ms = 0.0;
  double put_p99_ms = 0.0;
};

struct FigureOptions {
  std::size_t ops_per_node = 1;    ///< YCSB write ops issued per node
  SimTime warmup = 90 * kSeconds;  ///< PSS + slicing convergence
  SimTime drain = 40 * kSeconds;   ///< post-load window for anti-entropy
  std::uint64_t seed = 42;
  std::size_t value_size = 100;    ///< YCSB default record payload
  core::PssKind pss = core::PssKind::kCyclon;
  core::SlicerKind slicer = core::SlicerKind::kSliver;
};

/// Reads pss=cyclon|newscast and slicer=sliver|ordered overrides.
inline void apply_protocol_args(const Config& cfg, FigureOptions& options) {
  if (cfg.get_string("pss", "cyclon") == "newscast") {
    options.pss = core::PssKind::kNewscast;
  }
  if (cfg.get_string("slicer", "sliver") == "ordered") {
    options.slicer = core::SlicerKind::kOrdered;
  }
}

/// One experiment point: N nodes, k slices, write-only workload.
inline FigureRow run_message_experiment(std::size_t nodes,
                                        std::uint32_t slices,
                                        const FigureOptions& options) {
  harness::ClusterOptions copts;
  copts.node_count = nodes;
  copts.seed = options.seed + nodes;  // distinct but reproducible per point
  copts.node.slice_config = {slices, 1};
  copts.node.pss_kind = options.pss;
  copts.node.slicer_kind = options.slicer;
  harness::Cluster cluster(copts);
  cluster.start_all();
  cluster.run_for(options.warmup);

  // Exclude convergence traffic from the measurement, as the paper measures
  // messages "to perform the YCSB requests".
  cluster.transport().reset_stats();

  // Co-located clients: one per node, closed loop, ops_per_node writes each
  // over a shared record space (YCSB write-only).
  workload::WorkloadSpec spec = workload::WorkloadSpec::write_only();
  spec.record_count = std::max<std::size_t>(nodes, 16);
  spec.operation_count = options.ops_per_node;
  spec.value_size = options.value_size;

  std::vector<client::Client*> clients;
  std::vector<std::vector<workload::Op>> streams;
  Rng stream_rng(options.seed ^ 0xf19);
  for (std::size_t i = 0; i < nodes; ++i) {
    clients.push_back(&cluster.add_client());
    workload::WorkloadGenerator gen(spec, stream_rng.fork(i));
    streams.push_back(gen.transaction_phase());
  }

  harness::Runner runner(cluster, clients, std::move(streams));
  runner.run(cluster.simulator().now() + 600 * kSeconds);
  cluster.run_for(options.drain);

  FigureRow row;
  row.nodes = nodes;
  row.slices = slices;
  row.ops_issued = runner.stats().puts_issued;
  row.ops_acked = runner.stats().puts_succeeded;
  row.msgs_request =
      cluster.mean_messages_per_node(net::MsgCategory::kRequest);
  row.msgs_anti_entropy =
      cluster.mean_messages_per_node(net::MsgCategory::kAntiEntropy);
  row.msgs_counted = row.msgs_request + row.msgs_anti_entropy;
  row.msgs_maintenance =
      cluster.mean_messages_per_node(net::MsgCategory::kPeerSampling) +
      cluster.mean_messages_per_node(net::MsgCategory::kSlicing);
  row.put_p50_ms =
      runner.stats().put_latency.quantile(0.5) / static_cast<double>(kMillis);
  row.put_p99_ms =
      runner.stats().put_latency.quantile(0.99) / static_cast<double>(kMillis);
  return row;
}

inline void print_figure_header(const char* title) {
  std::printf("# %s\n", title);
  std::printf(
      "%8s %8s %10s %10s %12s %10s %12s %12s %10s %10s\n", "nodes", "slices",
      "ops", "acked", "msgs/node", "request", "anti_entropy", "maintenance",
      "p50_ms", "p99_ms");
}

inline void print_figure_row(const FigureRow& row) {
  std::printf(
      "%8zu %8u %10llu %10llu %12.1f %10.1f %12.1f %12.1f %10.1f %10.1f\n",
      row.nodes, row.slices,
      static_cast<unsigned long long>(row.ops_issued),
      static_cast<unsigned long long>(row.ops_acked), row.msgs_counted,
      row.msgs_request, row.msgs_anti_entropy, row.msgs_maintenance,
      row.put_p50_ms, row.put_p99_ms);
  std::fflush(stdout);
}

/// Parses trailing key=value command line arguments.
inline Config parse_bench_args(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  auto cfg = Config::from_args(args);
  if (!cfg.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", cfg.error().message.c_str());
    return Config{};
  }
  return std::move(cfg).value();
}

/// The paper's node-count sweep (Figures 3 and 4): 500..3000 step 500.
/// Overridable for quick runs: nodes_min/nodes_max/nodes_step.
inline std::vector<std::size_t> node_sweep(const Config& cfg) {
  const auto min = static_cast<std::size_t>(cfg.get_int("nodes_min", 500));
  const auto max = static_cast<std::size_t>(cfg.get_int("nodes_max", 3000));
  const auto step = static_cast<std::size_t>(cfg.get_int("nodes_step", 500));
  std::vector<std::size_t> sweep;
  for (std::size_t n = min; n <= max; n += step) sweep.push_back(n);
  return sweep;
}

}  // namespace dataflasks::bench
