// Figure 3 (paper §VI): average number of messages per node for a YCSB
// write-only workload, N = 500..3000 nodes, slice count FIXED at 10.
//
// Paper result: the curve is roughly flat (~250-350 msgs/node) — adding
// nodes at constant slice count only raises the replication factor, not the
// per-node message load.
//
// Run: fig3_constant_slices [nodes_min=500 nodes_max=3000 nodes_step=500
//                            ops_per_node=1 slices=10 seed=42]
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dataflasks;
  using namespace dataflasks::bench;

  const Config cfg = parse_bench_args(argc, argv);
  const auto slices =
      static_cast<std::uint32_t>(cfg.get_int("slices", 10));
  FigureOptions options;
  options.ops_per_node =
      static_cast<std::size_t>(cfg.get_int("ops_per_node", 1));
  options.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  apply_protocol_args(cfg, options);

  print_figure_header(
      "Figure 3: avg messages per node, constant slice count (k=10), "
      "YCSB write-only");

  std::vector<FigureRow> rows;
  for (const std::size_t nodes : node_sweep(cfg)) {
    rows.push_back(run_message_experiment(nodes, slices, options));
    print_figure_row(rows.back());
  }

  // Shape check: the paper reports the per-node message count "remains
  // roughly the same" across the sweep. Report the max/min ratio.
  double lo = rows.front().msgs_counted, hi = lo;
  for (const auto& row : rows) {
    lo = std::min(lo, row.msgs_counted);
    hi = std::max(hi, row.msgs_counted);
  }
  std::printf("\nflatness ratio (max/min msgs per node): %.2f  "
              "[paper: ~1.4 (roughly flat)]\n",
              lo > 0 ? hi / lo : 0.0);
  return 0;
}
