// Saturation throughput bench: drives whole-system deployments of
// N ∈ {100, 500, 1000} nodes with an open-loop put/get load whose rate
// doubles per rung until the simulated-events-per-second of *wall* time
// plateaus — i.e. until the harness itself, not the workload, is the
// bottleneck. This is the repo's perf trajectory anchor: the paper's claim
// is flat per-node load at scale, so the number of simulated events one
// wall-second buys directly caps how many nodes and how much traffic a
// single evaluation run can drive.
//
// A counting global allocator reports bytes allocated per operation, making
// copy regressions on the dissemination hot path visible without a profiler.
//
// Output: a human-readable table on stdout and machine-readable JSON in
// BENCH_saturation.json (override with out=<path>). `quick=1` runs only the
// smallest deployment at two rungs — the CI smoke configuration.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/cluster.hpp"

// ---- counting allocator -----------------------------------------------------
// Disabled under ASan: the sanitizer owns operator new/delete there, and the
// smoke job only needs the bench to run, not to report allocation counts.
#if defined(__SANITIZE_ADDRESS__)
#define DF_BENCH_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DF_BENCH_COUNT_ALLOCS 0
#else
#define DF_BENCH_COUNT_ALLOCS 1
#endif
#else
#define DF_BENCH_COUNT_ALLOCS 1
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

#if DF_BENCH_COUNT_ALLOCS
namespace {
void* counted_alloc(std::size_t n) {
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // DF_BENCH_COUNT_ALLOCS

namespace dataflasks::bench {
namespace {

struct RungResult {
  std::uint64_t rate = 0;  ///< scheduled ops per simulated second
  std::uint64_t ops_issued = 0;
  std::uint64_t ops_acked = 0;
  std::uint64_t sim_events = 0;
  double wall_seconds = 0.0;
  double sim_events_per_wall_sec = 0.0;
  double ops_per_sim_sec = 0.0;
  std::uint64_t bytes_allocated = 0;
  std::uint64_t allocs = 0;
  double bytes_per_op = 0.0;
};

struct RunResult {
  std::size_t nodes = 0;
  std::vector<RungResult> rungs;
  double peak_sim_events_per_wall_sec = 0.0;
  double peak_bytes_per_op = 0.0;  ///< at the peak-throughput rung
};

struct SaturationOptions {
  bool anti_entropy = true;  ///< ae=0 isolates the dissemination path
  SimTime warmup = 60 * kSeconds;
  std::size_t record_count = 512;
  std::size_t value_size = 256;
  std::size_t clients = 16;
  std::size_t ops_cap = 20'000;   ///< per rung; bounds wall time per rung
  std::size_t max_rungs = 6;
  double read_fraction = 0.5;
  /// Ops pipelined per OpEnvelope (batch=N knob). 1 = one op per
  /// round-trip, the pre-batching behavior.
  std::size_t batch = 1;
  std::uint64_t seed = 42;
};

/// One leg of the batched-put comparison: `total_ops` puts issued either
/// one per envelope or `batch_size` per envelope, same cluster shape.
struct BatchCompareResult {
  std::size_t batch_size = 1;
  std::uint64_t ops = 0;
  std::uint64_t acked = 0;
  std::uint64_t envelopes = 0;         ///< client envelopes incl. retries
  double ops_per_envelope = 0.0;       ///< ops per simulated round-trip
  double request_msgs_per_op = 0.0;    ///< whole-system request traffic
};

RunResult run_saturation(std::size_t nodes, const SaturationOptions& opts) {
  harness::ClusterOptions copts;
  copts.node_count = nodes;
  copts.seed = opts.seed + nodes;
  copts.node.anti_entropy_enabled = opts.anti_entropy;
  harness::Cluster cluster(copts);
  cluster.start_all();
  cluster.simulator().run_until(opts.warmup);

  std::vector<client::Client*> clients;
  for (std::size_t i = 0; i < opts.clients; ++i) {
    clients.push_back(&cluster.add_client());
  }

  auto key_of = [](std::size_t i) { return "sat-key-" + std::to_string(i); };

  // Preload the keyspace so measurement-phase gets mostly hit.
  std::uint64_t preload_acked = 0;
  for (std::size_t i = 0; i < opts.record_count; ++i) {
    clients[i % clients.size()]->put_auto(
        key_of(i), Bytes(opts.value_size, static_cast<std::uint8_t>(i)),
        [&preload_acked](const client::PutResult& r) {
          if (r.ok) ++preload_acked;
        });
  }
  cluster.simulator().run_until(cluster.simulator().now() + 30 * kSeconds);
  std::printf("# nodes=%zu preloaded %llu/%zu keys\n", nodes,
              static_cast<unsigned long long>(preload_acked),
              opts.record_count);

  RunResult result;
  result.nodes = nodes;

  Rng rng(opts.seed ^ 0x5a7);
  std::uint64_t rate = nodes;  // 1 op per node-second to start
  for (std::size_t rung = 0; rung < opts.max_rungs; ++rung, rate *= 2) {
    // Window sized so each rung issues at most ops_cap operations.
    const std::uint64_t ops_target =
        std::min<std::uint64_t>(opts.ops_cap, rate * 8);
    const SimTime window =
        static_cast<SimTime>(ops_target * kSeconds / rate);
    const SimTime start = cluster.simulator().now();

    RungResult r;
    r.rate = rate;
    // Shared-ownership counter: a straggling op (client retries) can resolve
    // after this rung's drain deadline, so its completion callback must not
    // dangle into a dead stack frame. post_at (not schedule_at) keeps the
    // measured window free of harness-side cancellation-flag allocations.
    const auto acked = std::make_shared<std::uint64_t>(0);
    const std::size_t value_size = opts.value_size;
    const std::size_t batch = std::max<std::size_t>(1, opts.batch);
    for (std::uint64_t i = 0; i < ops_target; i += batch) {
      const SimTime at = start + static_cast<SimTime>(
          (static_cast<double>(i) / static_cast<double>(rate)) * kSeconds);
      client::Client* c = clients[(i / batch) % clients.size()];
      // Op mix drawn at schedule time so the stream is seed-deterministic;
      // `batch` consecutive ops share one envelope at issue time.
      const std::size_t n =
          std::min<std::size_t>(batch, ops_target - i);
      std::vector<std::pair<std::string, bool>> mix;  // (key, is_get)
      mix.reserve(n);
      for (std::size_t j = 0; j < n; ++j) {
        mix.emplace_back(key_of(rng.next_below(opts.record_count)),
                         rng.next_double() < opts.read_fraction);
      }
      cluster.simulator().post_at(at, [c, mix = std::move(mix), acked,
                                       value_size]() {
        std::vector<core::Operation> ops;
        ops.reserve(mix.size());
        for (const auto& [key, is_get] : mix) {
          if (is_get) {
            ops.push_back(core::Operation::get(key));
          } else {
            ops.push_back(core::Operation::put(key, c->stamp_version(key),
                                               Bytes(value_size, 0x5a)));
          }
        }
        c->execute(std::move(ops),
                   [acked](const std::vector<client::OpResult>& results) {
                     for (const client::OpResult& r : results) {
                       if (r.ok) ++*acked;
                     }
                   });
      });
    }
    r.ops_issued = ops_target;

    g_alloc_bytes.store(0, std::memory_order_relaxed);
    g_alloc_count.store(0, std::memory_order_relaxed);
    const auto wall_start = std::chrono::steady_clock::now();
    // Drain past the window end so in-flight requests resolve inside the
    // measured region; 4s covers the client timeout plus replication pushes.
    r.sim_events =
        cluster.simulator().run_until(start + window + 4 * kSeconds);
    const auto wall_end = std::chrono::steady_clock::now();

    r.wall_seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    r.bytes_allocated = g_alloc_bytes.load(std::memory_order_relaxed);
    r.allocs = g_alloc_count.load(std::memory_order_relaxed);
    r.ops_acked = *acked;
    r.sim_events_per_wall_sec =
        r.wall_seconds > 0.0
            ? static_cast<double>(r.sim_events) / r.wall_seconds
            : 0.0;
    r.ops_per_sim_sec =
        static_cast<double>(r.ops_issued) /
        (static_cast<double>(window + 4 * kSeconds) / kSeconds);
    r.bytes_per_op = r.ops_issued > 0
                         ? static_cast<double>(r.bytes_allocated) /
                               static_cast<double>(r.ops_issued)
                         : 0.0;

    std::printf(
        "  rung %zu: rate=%8llu ops/s  issued=%7llu acked=%7llu  "
        "events=%9llu  wall=%6.2fs  events/s=%10.0f  bytes/op=%9.0f\n",
        rung, static_cast<unsigned long long>(r.rate),
        static_cast<unsigned long long>(r.ops_issued),
        static_cast<unsigned long long>(r.ops_acked),
        static_cast<unsigned long long>(r.sim_events), r.wall_seconds,
        r.sim_events_per_wall_sec, r.bytes_per_op);
    std::fflush(stdout);

    const bool plateaued =
        !result.rungs.empty() &&
        r.sim_events_per_wall_sec <
            1.05 * result.rungs.back().sim_events_per_wall_sec;
    result.rungs.push_back(r);
    if (plateaued && rung + 1 < opts.max_rungs) break;
  }

  for (const RungResult& r : result.rungs) {
    if (r.sim_events_per_wall_sec > result.peak_sim_events_per_wall_sec) {
      result.peak_sim_events_per_wall_sec = r.sim_events_per_wall_sec;
      result.peak_bytes_per_op = r.bytes_per_op;
    }
  }
  return result;
}

/// Batched-put mode: same cluster, same total put count, either one op per
/// envelope or `batch_size` ops per envelope. The headline number is ops
/// per simulated client round-trip (envelope), the batching lever the
/// operation API redesign exists to pull.
BatchCompareResult run_batched_put(std::size_t nodes, std::size_t batch_size,
                                   std::size_t total_ops,
                                   const SaturationOptions& opts) {
  harness::ClusterOptions copts;
  copts.node_count = nodes;
  copts.seed = opts.seed + nodes + batch_size;
  copts.node.anti_entropy_enabled = opts.anti_entropy;
  harness::Cluster cluster(copts);
  cluster.start_all();
  cluster.simulator().run_until(opts.warmup);

  client::Client& client = cluster.add_client();
  const auto acked = std::make_shared<std::uint64_t>(0);
  const SimTime start = cluster.simulator().now();
  // Paced at 500 ops/simulated-second: far below saturation, so envelope
  // counts reflect batching, not retry storms.
  const double op_gap = static_cast<double>(kSeconds) / 500.0;
  std::size_t issued = 0;
  while (issued < total_ops) {
    const std::size_t n = std::min(batch_size, total_ops - issued);
    const SimTime at =
        start + static_cast<SimTime>(op_gap * static_cast<double>(issued));
    cluster.simulator().post_at(at, [&client, n, issued, acked,
                                     value_size = opts.value_size]() {
      std::vector<core::Operation> ops;
      ops.reserve(n);
      for (std::size_t j = 0; j < n; ++j) {
        const std::string key = "bp-" + std::to_string(issued + j);
        ops.push_back(core::Operation::put(key, client.stamp_version(key),
                                           Bytes(value_size, 0x42)));
      }
      client.execute(std::move(ops),
                     [acked](const std::vector<client::OpResult>& results) {
                       for (const client::OpResult& r : results) {
                         if (r.ok) ++*acked;
                       }
                     });
    });
    issued += n;
  }
  const SimTime window =
      static_cast<SimTime>(op_gap * static_cast<double>(total_ops));
  cluster.simulator().run_until(start + window + 10 * kSeconds);

  BatchCompareResult result;
  result.batch_size = batch_size;
  result.ops = total_ops;
  result.acked = *acked;
  result.envelopes =
      client.metrics().counter_value("client.envelopes_sent");
  result.ops_per_envelope =
      result.envelopes > 0
          ? static_cast<double>(result.ops) /
                static_cast<double>(result.envelopes)
          : 0.0;
  result.request_msgs_per_op =
      cluster.mean_messages_per_node(net::MsgCategory::kRequest) *
      static_cast<double>(nodes) / static_cast<double>(total_ops);
  std::printf("# batched_put: batch=%zu ops=%llu acked=%llu envelopes=%llu "
              "ops/envelope=%.2f req-msgs/op=%.1f\n",
              result.batch_size,
              static_cast<unsigned long long>(result.ops),
              static_cast<unsigned long long>(result.acked),
              static_cast<unsigned long long>(result.envelopes),
              result.ops_per_envelope, result.request_msgs_per_op);
  return result;
}

void write_json(const std::string& path, const std::vector<RunResult>& runs,
                const BatchCompareResult& single,
                const BatchCompareResult& batched, bool quick) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"saturation_throughput\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"alloc_counting\": %s,\n",
               DF_BENCH_COUNT_ALLOCS ? "true" : "false");
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& run = runs[i];
    std::fprintf(f, "    {\n      \"nodes\": %zu,\n", run.nodes);
    std::fprintf(f, "      \"peak_sim_events_per_wall_sec\": %.1f,\n",
                 run.peak_sim_events_per_wall_sec);
    std::fprintf(f, "      \"bytes_allocated_per_op\": %.1f,\n",
                 run.peak_bytes_per_op);
    std::fprintf(f, "      \"rungs\": [\n");
    for (std::size_t j = 0; j < run.rungs.size(); ++j) {
      const RungResult& r = run.rungs[j];
      std::fprintf(
          f,
          "        {\"rate_ops_per_sim_sec\": %llu, \"ops_issued\": %llu, "
          "\"ops_acked\": %llu, \"ops_per_sim_sec\": %.1f, "
          "\"sim_events\": %llu, \"wall_seconds\": %.3f, "
          "\"sim_events_per_wall_sec\": %.1f, \"bytes_allocated\": %llu, "
          "\"allocs\": %llu, \"bytes_per_op\": %.1f}%s\n",
          static_cast<unsigned long long>(r.rate),
          static_cast<unsigned long long>(r.ops_issued),
          static_cast<unsigned long long>(r.ops_acked), r.ops_per_sim_sec,
          static_cast<unsigned long long>(r.sim_events), r.wall_seconds,
          r.sim_events_per_wall_sec,
          static_cast<unsigned long long>(r.bytes_allocated),
          static_cast<unsigned long long>(r.allocs), r.bytes_per_op,
          j + 1 < run.rungs.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  const auto emit_leg = [f](const char* name, const BatchCompareResult& leg,
                            bool trailing_comma) {
    std::fprintf(
        f,
        "    \"%s\": {\"batch_size\": %zu, \"ops\": %llu, \"acked\": %llu, "
        "\"envelopes\": %llu, \"ops_per_envelope\": %.2f, "
        "\"request_msgs_per_op\": %.2f}%s\n",
        name, leg.batch_size, static_cast<unsigned long long>(leg.ops),
        static_cast<unsigned long long>(leg.acked),
        static_cast<unsigned long long>(leg.envelopes), leg.ops_per_envelope,
        leg.request_msgs_per_op, trailing_comma ? "," : "");
  };
  const double ratio = single.ops_per_envelope > 0.0
                           ? batched.ops_per_envelope / single.ops_per_envelope
                           : 0.0;
  std::fprintf(f, "  \"batched_put\": {\n");
  emit_leg("single_op", single, true);
  emit_leg("batched", batched, true);
  std::fprintf(f, "    \"ops_per_round_trip_ratio\": %.2f\n  }\n}\n", ratio);
  std::fclose(f);
  std::printf("# wrote %s (batched-put ops/round-trip ratio: %.2fx)\n",
              path.c_str(), ratio);
}

}  // namespace
}  // namespace dataflasks::bench

int main(int argc, char** argv) {
  using namespace dataflasks;
  using namespace dataflasks::bench;

  const Config cfg = parse_bench_args(argc, argv);
  const bool quick = cfg.get_int("quick", 0) != 0;
  const std::string out = cfg.get_string("out", "BENCH_saturation.json");

  SaturationOptions opts;
  opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  opts.value_size = static_cast<std::size_t>(cfg.get_int("value_size", 256));
  opts.read_fraction = cfg.get_double("read_fraction", 0.5);
  opts.anti_entropy = cfg.get_int("ae", 1) != 0;
  opts.batch =
      std::max<std::size_t>(1, static_cast<std::size_t>(cfg.get_int("batch", 1)));
  if (quick) {
    opts.ops_cap = 4'000;
    opts.max_rungs = 2;
  }

  std::vector<std::size_t> node_counts;
  if (const auto n = cfg.get_int("nodes", 0); n > 0) {
    node_counts.push_back(static_cast<std::size_t>(n));
  } else if (quick) {
    node_counts = {100};
  } else {
    node_counts = {100, 500, 1000};
  }

  std::printf("# saturation_throughput: nodes x open-loop put/get ladder "
              "(batch=%zu)\n", opts.batch);
  std::vector<RunResult> runs;
  for (const std::size_t nodes : node_counts) {
    runs.push_back(run_saturation(nodes, opts));
  }

  std::printf("\n%8s %24s %16s\n", "nodes", "peak_sim_events/wall_s",
              "bytes/op@peak");
  for (const RunResult& run : runs) {
    std::printf("%8zu %24.0f %16.0f\n", run.nodes,
                run.peak_sim_events_per_wall_sec, run.peak_bytes_per_op);
  }

  // Batched-put mode: ops per simulated round-trip, one-op envelopes vs
  // 8-op envelopes on the smallest deployment.
  const std::size_t compare_nodes = node_counts.front();
  const std::size_t compare_ops = quick ? 800 : 2'000;
  const BatchCompareResult single =
      run_batched_put(compare_nodes, 1, compare_ops, opts);
  const BatchCompareResult batched =
      run_batched_put(compare_nodes, 8, compare_ops, opts);

  write_json(out, runs, single, batched, quick);
  return 0;
}
