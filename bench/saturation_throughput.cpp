// Saturation throughput bench: drives whole-system deployments of
// N ∈ {100, 500, 1000} nodes with an open-loop put/get load whose rate
// doubles per rung until the simulated-events-per-second of *wall* time
// plateaus — i.e. until the harness itself, not the workload, is the
// bottleneck. This is the repo's perf trajectory anchor: the paper's claim
// is flat per-node load at scale, so the number of simulated events one
// wall-second buys directly caps how many nodes and how much traffic a
// single evaluation run can drive.
//
// A counting global allocator reports bytes allocated per operation, making
// copy regressions on the dissemination hot path visible without a profiler.
//
// Output: a human-readable table on stdout and machine-readable JSON in
// BENCH_saturation.json (override with out=<path>). `quick=1` runs only the
// smallest deployment at two rungs — the CI smoke configuration.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/cluster.hpp"

// ---- counting allocator -----------------------------------------------------
// Disabled under ASan: the sanitizer owns operator new/delete there, and the
// smoke job only needs the bench to run, not to report allocation counts.
#if defined(__SANITIZE_ADDRESS__)
#define DF_BENCH_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DF_BENCH_COUNT_ALLOCS 0
#else
#define DF_BENCH_COUNT_ALLOCS 1
#endif
#else
#define DF_BENCH_COUNT_ALLOCS 1
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

#if DF_BENCH_COUNT_ALLOCS
namespace {
void* counted_alloc(std::size_t n) {
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // DF_BENCH_COUNT_ALLOCS

namespace dataflasks::bench {
namespace {

struct RungResult {
  std::uint64_t rate = 0;  ///< scheduled ops per simulated second
  std::uint64_t ops_issued = 0;
  std::uint64_t ops_acked = 0;
  std::uint64_t sim_events = 0;
  double wall_seconds = 0.0;
  double sim_events_per_wall_sec = 0.0;
  double ops_per_sim_sec = 0.0;
  std::uint64_t bytes_allocated = 0;
  std::uint64_t allocs = 0;
  double bytes_per_op = 0.0;
};

struct RunResult {
  std::size_t nodes = 0;
  std::vector<RungResult> rungs;
  double peak_sim_events_per_wall_sec = 0.0;
  double peak_bytes_per_op = 0.0;  ///< at the peak-throughput rung
};

struct SaturationOptions {
  bool anti_entropy = true;  ///< ae=0 isolates the dissemination path
  SimTime warmup = 60 * kSeconds;
  std::size_t record_count = 512;
  std::size_t value_size = 256;
  std::size_t clients = 16;
  std::size_t ops_cap = 20'000;   ///< per rung; bounds wall time per rung
  std::size_t max_rungs = 6;
  double read_fraction = 0.5;
  std::uint64_t seed = 42;
};

RunResult run_saturation(std::size_t nodes, const SaturationOptions& opts) {
  harness::ClusterOptions copts;
  copts.node_count = nodes;
  copts.seed = opts.seed + nodes;
  copts.node.anti_entropy_enabled = opts.anti_entropy;
  harness::Cluster cluster(copts);
  cluster.start_all();
  cluster.simulator().run_until(opts.warmup);

  std::vector<client::Client*> clients;
  for (std::size_t i = 0; i < opts.clients; ++i) {
    clients.push_back(&cluster.add_client());
  }

  auto key_of = [](std::size_t i) { return "sat-key-" + std::to_string(i); };

  // Preload the keyspace so measurement-phase gets mostly hit.
  std::uint64_t preload_acked = 0;
  for (std::size_t i = 0; i < opts.record_count; ++i) {
    clients[i % clients.size()]->put_auto(
        key_of(i), Bytes(opts.value_size, static_cast<std::uint8_t>(i)),
        [&preload_acked](const client::PutResult& r) {
          if (r.ok) ++preload_acked;
        });
  }
  cluster.simulator().run_until(cluster.simulator().now() + 30 * kSeconds);
  std::printf("# nodes=%zu preloaded %llu/%zu keys\n", nodes,
              static_cast<unsigned long long>(preload_acked),
              opts.record_count);

  RunResult result;
  result.nodes = nodes;

  Rng rng(opts.seed ^ 0x5a7);
  std::uint64_t rate = nodes;  // 1 op per node-second to start
  for (std::size_t rung = 0; rung < opts.max_rungs; ++rung, rate *= 2) {
    // Window sized so each rung issues at most ops_cap operations.
    const std::uint64_t ops_target =
        std::min<std::uint64_t>(opts.ops_cap, rate * 8);
    const SimTime window =
        static_cast<SimTime>(ops_target * kSeconds / rate);
    const SimTime start = cluster.simulator().now();

    RungResult r;
    r.rate = rate;
    // Shared-ownership counter: a straggling op (client retries) can resolve
    // after this rung's drain deadline, so its completion callback must not
    // dangle into a dead stack frame. post_at (not schedule_at) keeps the
    // measured window free of harness-side cancellation-flag allocations.
    const auto acked = std::make_shared<std::uint64_t>(0);
    const std::size_t value_size = opts.value_size;
    for (std::uint64_t i = 0; i < ops_target; ++i) {
      const SimTime at = start + static_cast<SimTime>(
          (static_cast<double>(i) / static_cast<double>(rate)) * kSeconds);
      client::Client* c = clients[i % clients.size()];
      const std::string key = key_of(rng.next_below(opts.record_count));
      const bool is_get = rng.next_double() < opts.read_fraction;
      cluster.simulator().post_at(at, [c, key, is_get, acked, value_size]() {
        if (is_get) {
          c->get(key, std::nullopt, [acked](const client::GetResult& gr) {
            if (gr.ok) ++*acked;
          });
        } else {
          c->put_auto(key, Bytes(value_size, 0x5a),
                      [acked](const client::PutResult& pr) {
                        if (pr.ok) ++*acked;
                      });
        }
      });
    }
    r.ops_issued = ops_target;

    g_alloc_bytes.store(0, std::memory_order_relaxed);
    g_alloc_count.store(0, std::memory_order_relaxed);
    const auto wall_start = std::chrono::steady_clock::now();
    // Drain past the window end so in-flight requests resolve inside the
    // measured region; 4s covers the client timeout plus replication pushes.
    r.sim_events =
        cluster.simulator().run_until(start + window + 4 * kSeconds);
    const auto wall_end = std::chrono::steady_clock::now();

    r.wall_seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    r.bytes_allocated = g_alloc_bytes.load(std::memory_order_relaxed);
    r.allocs = g_alloc_count.load(std::memory_order_relaxed);
    r.ops_acked = *acked;
    r.sim_events_per_wall_sec =
        r.wall_seconds > 0.0
            ? static_cast<double>(r.sim_events) / r.wall_seconds
            : 0.0;
    r.ops_per_sim_sec =
        static_cast<double>(r.ops_issued) /
        (static_cast<double>(window + 4 * kSeconds) / kSeconds);
    r.bytes_per_op = r.ops_issued > 0
                         ? static_cast<double>(r.bytes_allocated) /
                               static_cast<double>(r.ops_issued)
                         : 0.0;

    std::printf(
        "  rung %zu: rate=%8llu ops/s  issued=%7llu acked=%7llu  "
        "events=%9llu  wall=%6.2fs  events/s=%10.0f  bytes/op=%9.0f\n",
        rung, static_cast<unsigned long long>(r.rate),
        static_cast<unsigned long long>(r.ops_issued),
        static_cast<unsigned long long>(r.ops_acked),
        static_cast<unsigned long long>(r.sim_events), r.wall_seconds,
        r.sim_events_per_wall_sec, r.bytes_per_op);
    std::fflush(stdout);

    const bool plateaued =
        !result.rungs.empty() &&
        r.sim_events_per_wall_sec <
            1.05 * result.rungs.back().sim_events_per_wall_sec;
    result.rungs.push_back(r);
    if (plateaued && rung + 1 < opts.max_rungs) break;
  }

  for (const RungResult& r : result.rungs) {
    if (r.sim_events_per_wall_sec > result.peak_sim_events_per_wall_sec) {
      result.peak_sim_events_per_wall_sec = r.sim_events_per_wall_sec;
      result.peak_bytes_per_op = r.bytes_per_op;
    }
  }
  return result;
}

void write_json(const std::string& path, const std::vector<RunResult>& runs,
                bool quick) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"saturation_throughput\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"alloc_counting\": %s,\n",
               DF_BENCH_COUNT_ALLOCS ? "true" : "false");
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& run = runs[i];
    std::fprintf(f, "    {\n      \"nodes\": %zu,\n", run.nodes);
    std::fprintf(f, "      \"peak_sim_events_per_wall_sec\": %.1f,\n",
                 run.peak_sim_events_per_wall_sec);
    std::fprintf(f, "      \"bytes_allocated_per_op\": %.1f,\n",
                 run.peak_bytes_per_op);
    std::fprintf(f, "      \"rungs\": [\n");
    for (std::size_t j = 0; j < run.rungs.size(); ++j) {
      const RungResult& r = run.rungs[j];
      std::fprintf(
          f,
          "        {\"rate_ops_per_sim_sec\": %llu, \"ops_issued\": %llu, "
          "\"ops_acked\": %llu, \"ops_per_sim_sec\": %.1f, "
          "\"sim_events\": %llu, \"wall_seconds\": %.3f, "
          "\"sim_events_per_wall_sec\": %.1f, \"bytes_allocated\": %llu, "
          "\"allocs\": %llu, \"bytes_per_op\": %.1f}%s\n",
          static_cast<unsigned long long>(r.rate),
          static_cast<unsigned long long>(r.ops_issued),
          static_cast<unsigned long long>(r.ops_acked), r.ops_per_sim_sec,
          static_cast<unsigned long long>(r.sim_events), r.wall_seconds,
          r.sim_events_per_wall_sec,
          static_cast<unsigned long long>(r.bytes_allocated),
          static_cast<unsigned long long>(r.allocs), r.bytes_per_op,
          j + 1 < run.rungs.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace dataflasks::bench

int main(int argc, char** argv) {
  using namespace dataflasks;
  using namespace dataflasks::bench;

  const Config cfg = parse_bench_args(argc, argv);
  const bool quick = cfg.get_int("quick", 0) != 0;
  const std::string out = cfg.get_string("out", "BENCH_saturation.json");

  SaturationOptions opts;
  opts.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  opts.value_size = static_cast<std::size_t>(cfg.get_int("value_size", 256));
  opts.read_fraction = cfg.get_double("read_fraction", 0.5);
  opts.anti_entropy = cfg.get_int("ae", 1) != 0;
  if (quick) {
    opts.ops_cap = 4'000;
    opts.max_rungs = 2;
  }

  std::vector<std::size_t> node_counts;
  if (const auto n = cfg.get_int("nodes", 0); n > 0) {
    node_counts.push_back(static_cast<std::size_t>(n));
  } else if (quick) {
    node_counts = {100};
  } else {
    node_counts = {100, 500, 1000};
  }

  std::printf("# saturation_throughput: nodes x open-loop put/get ladder\n");
  std::vector<RunResult> runs;
  for (const std::size_t nodes : node_counts) {
    runs.push_back(run_saturation(nodes, opts));
  }

  std::printf("\n%8s %24s %16s\n", "nodes", "peak_sim_events/wall_s",
              "bytes/op@peak");
  for (const RunResult& run : runs) {
    std::printf("%8zu %24.0f %16.0f\n", run.nodes,
                run.peak_sim_events_per_wall_sec, run.peak_bytes_per_op);
  }
  write_json(out, runs, quick);
  return 0;
}
