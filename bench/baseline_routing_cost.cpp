// Honest trade-off bench: message cost of serving the same write workload
// on DataFlasks (epidemic dissemination) vs the Chord DHT baseline
// (O(log N) routing) in a STABLE network. The paper's §I argument is not
// that epidemics are cheaper — they are not — but that they keep working
// under churn (see churn_comparison). This bench quantifies the stable-state
// price DataFlasks pays for that dependability.
//
// Methodology: both systems run maintenance continuously, so the workload
// cost is measured as the MARGINAL traffic — messages during a fixed window
// with the workload minus messages during the same window without it.
//
// Run: baseline_routing_cost [slices=10 ops=200 seed=42
//                             nodes_min=200 nodes_max=1000 nodes_step=400]
#include <cstdio>

#include "baseline/dht_kv.hpp"
#include "bench_util.hpp"

namespace {

using namespace dataflasks;

constexpr SimTime kMeasureWindow = 60 * kSeconds;

/// Mean per-node messages over a fixed window, running `ops` writes paced
/// through the window (ops == 0 measures pure maintenance).
double dataflasks_window_msgs(std::size_t nodes, std::uint32_t slices,
                              std::size_t ops, std::uint64_t seed) {
  harness::ClusterOptions copts;
  copts.node_count = nodes;
  copts.seed = seed;
  copts.node.slice_config = {slices, 1};
  harness::Cluster cluster(copts);
  cluster.start_all();
  cluster.run_for(90 * kSeconds);
  cluster.transport().reset_stats();

  auto& client = cluster.add_client();
  const SimTime gap = ops > 0 ? kMeasureWindow / static_cast<SimTime>(ops + 1)
                              : kMeasureWindow;
  for (std::size_t i = 0; i < ops; ++i) {
    client.put("obj" + std::to_string(i), Bytes(100, 1), 1, nullptr);
    cluster.run_for(gap);
  }
  const SimTime elapsed =
      ops > 0 ? gap * static_cast<SimTime>(ops) : SimTime{0};
  cluster.run_for(kMeasureWindow - elapsed);
  return cluster.mean_messages_per_node();
}

double dht_window_msgs(std::size_t nodes, std::size_t ops,
                       std::uint64_t seed) {
  sim::Simulator simulator(seed);
  sim::NetworkModel model(sim::LatencyModel{5 * kMillis, 50 * kMillis});
  net::SimTransport transport(simulator, model);

  baseline::DhtKvOptions options;
  options.replication = 3;
  std::vector<std::unique_ptr<baseline::DhtNode>> ring;
  Rng seeder(seed ^ 0x77);
  for (std::size_t i = 0; i < nodes; ++i) {
    ring.push_back(std::make_unique<baseline::DhtNode>(
        NodeId(i), simulator, transport, Rng(seeder.next_u64()), options));
  }
  ring[0]->start(NodeId());
  for (std::size_t i = 1; i < nodes; ++i) ring[i]->start(NodeId(0));
  simulator.run_until(simulator.now() + 240 * kSeconds);  // stabilize

  transport.reset_stats();
  Rng pick(seed ^ 0x3);
  const SimTime gap = ops > 0 ? kMeasureWindow / static_cast<SimTime>(ops + 1)
                              : kMeasureWindow;
  for (std::size_t i = 0; i < ops; ++i) {
    ring[pick.next_below(nodes)]->put("obj" + std::to_string(i),
                                      Bytes(100, 1), 1, nullptr);
    simulator.run_until(simulator.now() + gap);
  }
  const SimTime elapsed =
      ops > 0 ? gap * static_cast<SimTime>(ops) : SimTime{0};
  simulator.run_until(simulator.now() + (kMeasureWindow - elapsed));

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    total += transport.stats(NodeId(i)).total_messages();
  }
  return static_cast<double>(total) / static_cast<double>(nodes);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dataflasks::bench;

  const dataflasks::Config cfg = parse_bench_args(argc, argv);
  const auto slices = static_cast<std::uint32_t>(cfg.get_int("slices", 10));
  const auto ops = static_cast<std::size_t>(cfg.get_int("ops", 200));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  const auto nodes_min =
      static_cast<std::size_t>(cfg.get_int("nodes_min", 200));
  const auto nodes_max =
      static_cast<std::size_t>(cfg.get_int("nodes_max", 1000));
  const auto nodes_step =
      static_cast<std::size_t>(cfg.get_int("nodes_step", 400));

  std::printf(
      "# Stable-network marginal routing cost: DataFlasks vs Chord DHT "
      "(%zu writes over a %llds window, k=%u)\n",
      ops, static_cast<long long>(kMeasureWindow / kSeconds), slices);
  std::printf("%8s %22s %18s %8s\n", "nodes", "dataflasks msgs/node",
              "dht msgs/node", "ratio");

  for (std::size_t n = nodes_min; n <= nodes_max; n += nodes_step) {
    const double df = dataflasks_window_msgs(n, slices, ops, seed) -
                      dataflasks_window_msgs(n, slices, 0, seed);
    const double dht =
        dht_window_msgs(n, ops, seed) - dht_window_msgs(n, 0, seed);
    std::printf("%8zu %22.1f %18.1f %8.1f\n", n, df, dht,
                dht > 0 ? df / dht : 0.0);
    std::fflush(stdout);
  }
  std::printf(
      "\nexpected: the DHT routes each op in O(log N) point-to-point hops "
      "and is far cheaper in a stable network; DataFlasks pays an epidemic "
      "premium for churn-proof dissemination (see churn_comparison for the "
      "other side of the trade).\n");
  return 0;
}
