// Extension experiment (paper §VII open problem): "maintaining replication
// level in face of churn or faults ... there is no centralized way of
// knowing if every object has, in fact, at least r replicas."
//
// Measures how fast intra-slice anti-entropy restores full-slice coverage
// after a correlated failure of half of one slice, as a function of the
// anti-entropy period, and the message cost of the repair.
//
// Run: antientropy_convergence [nodes=300 slices=6 objects=60 seed=42]
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dataflasks;
  using namespace dataflasks::bench;

  const Config cfg = parse_bench_args(argc, argv);
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 300));
  const auto slices = static_cast<std::uint32_t>(cfg.get_int("slices", 6));
  const auto objects = static_cast<std::size_t>(cfg.get_int("objects", 60));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  std::printf(
      "# Anti-entropy convergence after correlated slice failure "
      "(N=%zu, k=%u, kill half of slice 0's members)\n",
      nodes, slices);
  std::printf("%12s %16s %16s %14s %16s\n", "ae_period_s", "coverage_drop",
              "recovery_s", "coverage_end", "ae_msgs/node");

  for (const SimTime ae_period :
       {2 * kSeconds, 5 * kSeconds, 10 * kSeconds, 20 * kSeconds}) {
    harness::ClusterOptions copts;
    copts.node_count = nodes;
    copts.seed = seed;
    copts.node.slice_config = {slices, 1};
    copts.node.ae_period = ae_period;
    harness::Cluster cluster(copts);
    cluster.start_all();
    cluster.run_for(90 * kSeconds);

    // Load objects targeting slice 0 only (so the failure is correlated
    // with the data) plus background objects elsewhere.
    auto& client = cluster.add_client();
    std::vector<Key> tracked;
    for (std::size_t i = 0; tracked.size() < objects; ++i) {
      const Key key = "obj" + std::to_string(i);
      if (slicing::key_to_slice(key, slices) == 0) tracked.push_back(key);
    }
    for (const Key& key : tracked) client.put(key, Bytes{7}, 1, nullptr);
    cluster.run_for(90 * kSeconds);  // converge coverage to ~1.0

    // Correlated failure: crash half of slice 0's members, then bring them
    // back with EMPTY stores. Coverage over the slice drops to ~50% and
    // only replica regeneration (state transfer + anti-entropy) restores
    // it — the paper's §VII open problem.
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (cluster.node(i).running() && cluster.node(i).slice() == 0) {
        members.push_back(i);
      }
    }
    for (std::size_t i = 0; i < members.size() / 2; ++i) {
      cluster.crash(members[i]);
    }
    cluster.run_for(5 * kSeconds);
    for (std::size_t i = 0; i < members.size() / 2; ++i) {
      cluster.restart(members[i]);
    }
    cluster.transport().reset_stats();

    // Track time until mean coverage over tracked objects returns to >=90%.
    auto mean_coverage = [&]() {
      double total = 0.0;
      for (const Key& key : tracked) {
        total += cluster.slice_coverage(key, 1);
      }
      return tracked.empty() ? 0.0
                             : total / static_cast<double>(tracked.size());
    };

    // Restarted nodes re-enter their slice with empty stores over the next
    // seconds; track the coverage minimum (the true replication dip) and
    // the time until the slice is whole again.
    const SimTime start = cluster.simulator().now();
    double coverage_after_failure = mean_coverage();
    SimTime recovered_at = -1;
    for (int step = 0; step < 240; ++step) {
      cluster.run_for(2 * kSeconds);
      const double now_coverage = mean_coverage();
      coverage_after_failure = std::min(coverage_after_failure, now_coverage);
      if (step > 5 && now_coverage >= 0.95) {
        recovered_at = cluster.simulator().now() - start;
        break;
      }
    }

    std::printf("%12lld %16.3f %16.0f %14.3f %16.1f\n",
                static_cast<long long>(ae_period / kSeconds),
                coverage_after_failure,
                recovered_at < 0
                    ? -1.0
                    : static_cast<double>(recovered_at) / kSeconds,
                mean_coverage(),
                cluster.mean_messages_per_node(
                    net::MsgCategory::kAntiEntropy));
    std::fflush(stdout);
  }
  std::printf(
      "\nexpected: recovery time scales with the anti-entropy period "
      "(a few periods to re-cover the slice); repair cost per node stays "
      "bounded because digests are batched.\n");
  return 0;
}
