// Ablation (paper §IV-C): the slice-count trade-off at fixed system size.
// "For the same system size, a smaller number of slices increases the
// replication factor but lowers system capacity. Conversely, increasing
// [the number of slices] increases ... system capacity."
//
// Sweeps k at fixed N and reports: replication factor (slice size),
// effective system capacity (distinct objects storable), request cost and
// read fan-in.
//
// Run: ablation_slices [nodes=600 ops_per_node=1 seed=42]
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dataflasks;
  using namespace dataflasks::bench;

  const Config cfg = parse_bench_args(argc, argv);
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 600));
  const auto ops = static_cast<std::size_t>(cfg.get_int("ops_per_node", 1));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  std::printf("# Ablation: slice count trade-off at N=%zu (paper SIV-C)\n",
              nodes);
  std::printf("%8s %12s %14s %14s %12s %14s\n", "slices", "repl.factor",
              "capacity(x)", "request/node", "ack_rate", "coverage");

  for (const std::uint32_t slices : {2u, 5u, 10u, 20u, 40u}) {
    FigureOptions options;
    options.ops_per_node = ops;
    options.seed = seed;

    harness::ClusterOptions copts;
    copts.node_count = nodes;
    copts.seed = seed + slices;
    copts.node.slice_config = {slices, 1};
    harness::Cluster cluster(copts);
    cluster.start_all();
    cluster.run_for(90 * kSeconds);
    cluster.transport().reset_stats();

    workload::WorkloadSpec spec = workload::WorkloadSpec::write_only();
    spec.record_count = nodes;
    spec.operation_count = ops;

    std::vector<client::Client*> clients;
    std::vector<std::vector<workload::Op>> streams;
    std::vector<workload::Op> all_ops;
    Rng stream_rng(seed ^ 0x51c);
    for (std::size_t i = 0; i < nodes; ++i) {
      clients.push_back(&cluster.add_client());
      workload::WorkloadGenerator gen(spec, stream_rng.fork(i));
      streams.push_back(gen.transaction_phase());
      for (const auto& op : streams.back()) all_ops.push_back(op);
    }
    harness::Runner runner(cluster, clients, std::move(streams));
    runner.run(cluster.simulator().now() + 600 * kSeconds);
    cluster.run_for(60 * kSeconds);  // let anti-entropy converge

    // Replication factor = mean slice population; capacity multiplier = k
    // (each slice stores a disjoint 1/k of the key space).
    const auto histogram = cluster.slice_histogram();
    double mean_slice = 0.0;
    for (const auto& [slice, count] : histogram) {
      mean_slice += static_cast<double>(count);
    }
    mean_slice /= histogram.empty() ? 1.0 : histogram.size();

    // Mean fraction of an object's slice holding it after convergence.
    double coverage = 0.0;
    std::size_t sampled = 0;
    for (std::size_t i = 0; i < all_ops.size() && sampled < 50; i += 37) {
      // put_auto stamps versions internally, so discover a stored version
      // of the sampled key by scanning replicas.
      const auto& key = all_ops[i].key;
      std::optional<Version> version;
      for (std::size_t n = 0; n < cluster.size() && !version; ++n) {
        auto got = cluster.node(n).store().get(key, std::nullopt);
        if (got.ok()) version = got.value().version;
      }
      if (!version) continue;
      coverage += cluster.slice_coverage(key, *version);
      ++sampled;
    }
    if (sampled > 0) coverage /= static_cast<double>(sampled);

    std::printf("%8u %12.1f %14u %14.1f %12.3f %14.3f\n", slices, mean_slice,
                slices,
                cluster.mean_messages_per_node(net::MsgCategory::kRequest) +
                    cluster.mean_messages_per_node(
                        net::MsgCategory::kAntiEntropy),
                runner.stats().put_success_rate(), coverage);
    std::fflush(stdout);
  }
  std::printf(
      "\nexpected: replication factor ~N/k falls as k rises while capacity "
      "(disjoint key ranges) rises with k — the paper's stated trade-off.\n");
  return 0;
}
