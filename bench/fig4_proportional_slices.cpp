// Figure 4 (paper §VI): average number of messages per node for a YCSB
// write-only workload, N = 500..3000, slice count PROPORTIONAL to N
// (k = N / slice_size, slice_size defaulting to 50 => constant replication
// factor; at N=500 this matches Figure 3's k=10).
//
// Paper result: messages per node grow "gracefully" (sub-linearly), from
// ~200 at 500 nodes to ~1200 at 3000 nodes: a randomly chosen contact node
// hits the target slice with probability 1/k, so discovery dissemination
// must reach ~beta*k nodes per request and k grows with N.
//
// Run: fig4_proportional_slices [nodes_min=500 nodes_max=3000
//                                nodes_step=500 slice_size=50
//                                ops_per_node=1 seed=42]
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dataflasks;
  using namespace dataflasks::bench;

  const Config cfg = parse_bench_args(argc, argv);
  const auto slice_size =
      static_cast<std::size_t>(cfg.get_int("slice_size", 50));
  FigureOptions options;
  options.ops_per_node =
      static_cast<std::size_t>(cfg.get_int("ops_per_node", 1));
  options.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  apply_protocol_args(cfg, options);

  print_figure_header(
      "Figure 4: avg messages per node, slices proportional to N "
      "(constant replication factor), YCSB write-only");

  std::vector<FigureRow> rows;
  for (const std::size_t nodes : node_sweep(cfg)) {
    const auto slices = static_cast<std::uint32_t>(
        std::max<std::size_t>(1, nodes / slice_size));
    rows.push_back(run_message_experiment(nodes, slices, options));
    print_figure_row(rows.back());
  }

  // Shape checks: growth across the sweep (paper: ~6x from 500 to 3000
  // nodes) and sub-linearity (growth ratio below the node-count ratio).
  const double first = rows.front().msgs_counted;
  const double last = rows.back().msgs_counted;
  const double node_ratio = static_cast<double>(rows.back().nodes) /
                            static_cast<double>(rows.front().nodes);
  std::printf("\ngrowth ratio (msgs at %zu / msgs at %zu nodes): %.2f  "
              "[paper: grows ~6x; sub-linear iff < node ratio %.1f]\n",
              rows.back().nodes, rows.front().nodes,
              first > 0 ? last / first : 0.0, node_ratio);
  return 0;
}
