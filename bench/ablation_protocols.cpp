// Ablation: substrate protocol choices. The paper names Cyclon/Newscast as
// Peer Sampling candidates (§II) and uses DSlead for slicing (§V); this
// bench runs the Figure-3 workload over every PSS x slicer combination to
// show the substrate choice's effect on cost and reliability.
//
// Run: ablation_protocols [nodes=600 slices=10 ops_per_node=1 seed=42]
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dataflasks;
  using namespace dataflasks::bench;

  const Config cfg = parse_bench_args(argc, argv);
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 600));
  const auto slices = static_cast<std::uint32_t>(cfg.get_int("slices", 10));

  std::printf("# Ablation: PSS x slicing protocol matrix (N=%zu, k=%u)\n",
              nodes, slices);
  std::printf("%10s %10s %12s %12s %12s %10s\n", "pss", "slicer",
              "msgs/node", "maintenance", "ack_rate", "p50_ms");

  struct Combo {
    const char* pss_name;
    core::PssKind pss;
    const char* slicer_name;
    core::SlicerKind slicer;
  };
  const Combo combos[] = {
      {"cyclon", core::PssKind::kCyclon, "sliver", core::SlicerKind::kSliver},
      {"cyclon", core::PssKind::kCyclon, "ordered",
       core::SlicerKind::kOrdered},
      {"newscast", core::PssKind::kNewscast, "sliver",
       core::SlicerKind::kSliver},
      {"newscast", core::PssKind::kNewscast, "ordered",
       core::SlicerKind::kOrdered},
  };

  for (const Combo& combo : combos) {
    FigureOptions options;
    options.ops_per_node =
        static_cast<std::size_t>(cfg.get_int("ops_per_node", 1));
    options.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
    options.pss = combo.pss;
    options.slicer = combo.slicer;
    const FigureRow row = run_message_experiment(nodes, slices, options);
    const double ack_rate =
        row.ops_issued == 0
            ? 1.0
            : static_cast<double>(row.ops_acked) /
                  static_cast<double>(row.ops_issued);
    std::printf("%10s %10s %12.1f %12.1f %12.3f %10.1f\n", combo.pss_name,
                combo.slicer_name, row.msgs_counted, row.msgs_maintenance,
                ack_rate, row.put_p50_ms);
    std::fflush(stdout);
  }
  std::printf(
      "\nexpected: request cost is substrate-insensitive once views are "
      "random enough; Newscast costs more maintenance bytes (full-view "
      "exchanges) and Sliver converges slicing faster than ordered "
      "swapping (fewer early misroutes).\n");
  return 0;
}
