// Substrate validation (paper §II): epidemic dissemination assumes views
// are "a uniformly random sample of nodes". Measures, for Cyclon and
// Newscast: in-degree dispersion, clustering coefficient and view freshness
// over time — the properties that make ln(N)+c dissemination work.
//
// Run: pss_quality [nodes=500 cycles=120 seed=42]
#include <cmath>
#include <cstdio>

#include <map>
#include <memory>
#include <set>

#include "bench_util.hpp"
#include "pss/cyclon.hpp"
#include "pss/newscast.hpp"

namespace {

using namespace dataflasks;

struct OverlayStats {
  double in_degree_mean = 0.0;
  double in_degree_cv = 0.0;  ///< coefficient of variation (stddev/mean)
  double clustering = 0.0;    ///< mean local clustering coefficient
  double reachable = 0.0;     ///< BFS coverage from node 0
};

OverlayStats measure(const std::vector<std::unique_ptr<pss::PeerSampling>>&
                         protos) {
  const std::size_t n = protos.size();
  std::map<std::uint64_t, int> in_degree;
  std::vector<std::set<std::uint64_t>> adjacency(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const NodeId peer : protos[i]->view().ids()) {
      ++in_degree[peer.value];
      adjacency[i].insert(peer.value);
    }
  }

  OverlayStats stats;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = in_degree.find(i);
    const double d = it == in_degree.end() ? 0.0 : it->second;
    sum += d;
    sum_sq += d * d;
  }
  stats.in_degree_mean = sum / static_cast<double>(n);
  const double var =
      sum_sq / static_cast<double>(n) - stats.in_degree_mean * stats.in_degree_mean;
  stats.in_degree_cv =
      stats.in_degree_mean > 0 ? std::sqrt(std::max(0.0, var)) /
                                     stats.in_degree_mean
                               : 0.0;

  // Local clustering: fraction of a node's neighbour pairs that are
  // themselves neighbours (sampled).
  double clustering_total = 0.0;
  std::size_t clustering_nodes = 0;
  for (std::size_t i = 0; i < n; i += 7) {
    const auto& neigh = adjacency[i];
    if (neigh.size() < 2) continue;
    std::size_t links = 0, pairs = 0;
    for (auto a = neigh.begin(); a != neigh.end(); ++a) {
      for (auto b = std::next(a); b != neigh.end(); ++b) {
        ++pairs;
        if (adjacency[static_cast<std::size_t>(*a)].contains(*b) ||
            adjacency[static_cast<std::size_t>(*b)].contains(*a)) {
          ++links;
        }
      }
    }
    clustering_total += static_cast<double>(links) /
                        static_cast<double>(pairs);
    ++clustering_nodes;
  }
  stats.clustering = clustering_nodes > 0
                         ? clustering_total /
                               static_cast<double>(clustering_nodes)
                         : 0.0;

  // Reachability from node 0.
  std::set<std::uint64_t> visited{0};
  std::vector<std::uint64_t> frontier{0};
  while (!frontier.empty()) {
    const auto at = frontier.back();
    frontier.pop_back();
    for (const auto peer : adjacency[static_cast<std::size_t>(at)]) {
      if (visited.insert(peer).second) frontier.push_back(peer);
    }
  }
  stats.reachable =
      static_cast<double>(visited.size()) / static_cast<double>(n);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dataflasks::bench;

  const Config cfg = parse_bench_args(argc, argv);
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 500));
  const auto cycles = static_cast<std::size_t>(cfg.get_int("cycles", 120));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  std::printf("# PSS overlay quality (N=%zu): random-graph-like views are "
              "the epidemic premise (paper SII)\n",
              nodes);
  std::printf("%10s %8s %12s %12s %12s %12s\n", "protocol", "cycle",
              "in_deg_mean", "in_deg_cv", "clustering", "reachable");

  for (const char* kind : {"cyclon", "newscast"}) {
    sim::Simulator simulator(seed);
    sim::NetworkModel model(sim::LatencyModel{5 * kMillis, 50 * kMillis});
    net::SimTransport transport(simulator, model);

    std::vector<std::unique_ptr<pss::PeerSampling>> protos;
    Rng seeder(seed ^ 0x955);
    for (std::size_t i = 0; i < nodes; ++i) {
      if (std::string(kind) == "cyclon") {
        protos.push_back(std::make_unique<pss::Cyclon>(
            NodeId(i), transport, Rng(seeder.next_u64()),
            pss::CyclonOptions{}));
      } else {
        protos.push_back(std::make_unique<pss::Newscast>(
            NodeId(i), transport, Rng(seeder.next_u64()),
            pss::NewscastOptions{}));
      }
    }
    for (std::size_t i = 0; i < nodes; ++i) {
      protos[i]->bootstrap({NodeId((i + 1) % nodes), NodeId((i + 2) % nodes)});
      auto* proto = protos[i].get();
      transport.register_handler(
          NodeId(i),
          [proto](const net::Message& msg) { proto->handle(msg); });
      simulator.schedule_periodic(simulator.rng().next_in(0, kSeconds),
                                  kSeconds, [proto]() { proto->tick(); });
    }

    for (const std::size_t checkpoint : {10ul, 30ul, cycles}) {
      simulator.run_until(static_cast<SimTime>(checkpoint) * kSeconds);
      const auto stats = measure(protos);
      std::printf("%10s %8zu %12.1f %12.3f %12.4f %12.3f\n", kind,
                  checkpoint, stats.in_degree_mean, stats.in_degree_cv,
                  stats.clustering, stats.reachable);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nexpected: Cyclon's in-degree CV stays low (~random graph, "
      "clustering ~ view/N); Newscast trades higher skew for faster "
      "self-healing. Both keep the overlay connected (reachable ~1.0).\n");
  return 0;
}
