// Google-benchmark micro benchmarks for the hot paths underneath the
// simulation: RNG, hashing, serialization, store operations, view
// manipulation, dedup cache and the event queue.
#include <benchmark/benchmark.h>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "dissemination/dedup_cache.hpp"
#include "pss/view.hpp"
#include "runtime/event_queue.hpp"
#include "store/memstore.hpp"
#include "store/object.hpp"
#include "workload/distributions.hpp"

namespace dataflasks {
namespace {

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngNextBelow(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_below(1000));
  }
}
BENCHMARK(BM_RngNextBelow);

void BM_StableKeyHash(benchmark::State& state) {
  const std::string key = "user8517097267634966620";
  for (auto _ : state) {
    benchmark::DoNotOptimize(stable_key_hash(key));
  }
}
BENCHMARK(BM_StableKeyHash);

void BM_Crc32(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ObjectEncodeDecode(benchmark::State& state) {
  const store::Object obj{"user12345678901234567", 42,
                          Bytes(static_cast<std::size_t>(state.range(0)), 7)};
  for (auto _ : state) {
    Writer w;
    store::encode(w, obj);
    Reader r(w.view());
    benchmark::DoNotOptimize(store::decode_object(r));
  }
}
BENCHMARK(BM_ObjectEncodeDecode)->Arg(100)->Arg(1024);

void BM_MemStorePut(benchmark::State& state) {
  store::MemStore store;
  std::uint64_t i = 0;
  const Bytes value(100, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.put({"key" + std::to_string(i++ % 10000), 1, value}));
  }
}
BENCHMARK(BM_MemStorePut);

void BM_MemStoreGetLatest(benchmark::State& state) {
  store::MemStore store;
  for (int i = 0; i < 10000; ++i) {
    (void)store.put({"key" + std::to_string(i), 1, Bytes(100, 1)});
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.get("key" + std::to_string(i++ % 10000), std::nullopt));
  }
}
BENCHMARK(BM_MemStoreGetLatest);

void BM_MemStoreDigest(benchmark::State& state) {
  store::MemStore store;
  for (int i = 0; i < state.range(0); ++i) {
    (void)store.put({"key" + std::to_string(i), 1, Bytes(16, 1)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.digest());
  }
}
BENCHMARK(BM_MemStoreDigest)->Arg(100)->Arg(1000);

void BM_ViewShuffleSample(benchmark::State& state) {
  pss::View view(20);
  for (int i = 0; i < 20; ++i) {
    view.insert({NodeId(static_cast<std::uint64_t>(i)), 0});
  }
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.sample(rng, 8));
  }
}
BENCHMARK(BM_ViewShuffleSample);

void BM_DedupCache(benchmark::State& state) {
  dissemination::DedupCache cache(1 << 15);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.seen_or_insert(i++ % (1 << 16)));
  }
}
BENCHMARK(BM_DedupCache);

void BM_EventQueuePushPop(benchmark::State& state) {
  runtime::EventQueue queue;
  Rng rng(42);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.push(static_cast<SimTime>(rng.next_below(1 << 20)), []() {});
    }
    while (!queue.empty()) {
      auto fn = queue.pop();
      benchmark::DoNotOptimize(fn);
    }
  }
}
BENCHMARK(BM_EventQueuePushPop);

void BM_ZipfianNext(benchmark::State& state) {
  workload::ZipfianDistribution zipf(
      static_cast<std::uint64_t>(state.range(0)));
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.next(rng));
  }
}
BENCHMARK(BM_ZipfianNext)->Arg(1000)->Arg(1000000);

}  // namespace
}  // namespace dataflasks

BENCHMARK_MAIN();
