// Ablation (paper §IV-B): "it is sufficient to reach only the percentage of
// system nodes that guarantees that some nodes of the target slice are
// reached". Sweeps the spray's global fanout and the TTL coverage target
// beta, reporting request cost vs. delivery reliability — the efficiency /
// reliability trade-off the optimization navigates.
//
// Run: ablation_fanout [nodes=600 slices=10 ops_per_node=1 seed=42]
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace dataflasks;

struct AblationPoint {
  std::size_t fanout;
  double beta;
  double msgs_request;
  double ack_rate;
  double retry_rate;
};

AblationPoint run_point(std::size_t nodes, std::uint32_t slices,
                        std::size_t fanout, double beta, std::size_t ops,
                        std::uint64_t seed) {
  harness::ClusterOptions copts;
  copts.node_count = nodes;
  copts.seed = seed;
  copts.node.slice_config = {slices, 1};
  copts.node.request.spray.global_fanout = fanout;
  copts.node.request.ttl_beta = beta;
  harness::Cluster cluster(copts);
  cluster.start_all();
  cluster.run_for(90 * kSeconds);
  cluster.transport().reset_stats();

  workload::WorkloadSpec spec = workload::WorkloadSpec::write_only();
  spec.record_count = nodes;
  spec.operation_count = ops;

  std::vector<client::Client*> clients;
  std::vector<std::vector<workload::Op>> streams;
  Rng stream_rng(seed ^ 0xab1);
  for (std::size_t i = 0; i < nodes; ++i) {
    clients.push_back(&cluster.add_client());
    workload::WorkloadGenerator gen(spec, stream_rng.fork(i));
    streams.push_back(gen.transaction_phase());
  }
  harness::Runner runner(cluster, clients, std::move(streams));
  runner.run(cluster.simulator().now() + 600 * kSeconds);
  cluster.run_for(20 * kSeconds);

  std::uint64_t retries = 0;
  for (auto* cli : clients) {
    retries += cli->metrics().counter_value("client.put_retries");
  }

  AblationPoint point;
  point.fanout = fanout;
  point.beta = beta;
  point.msgs_request =
      cluster.mean_messages_per_node(net::MsgCategory::kRequest);
  point.ack_rate = runner.stats().put_success_rate();
  point.retry_rate = static_cast<double>(retries) /
                     static_cast<double>(runner.stats().puts_issued);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dataflasks::bench;

  const dataflasks::Config cfg = parse_bench_args(argc, argv);
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 600));
  const auto slices =
      static_cast<std::uint32_t>(cfg.get_int("slices", 10));
  const auto ops = static_cast<std::size_t>(cfg.get_int("ops_per_node", 1));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  std::printf("# Ablation: spray fanout x coverage target (N=%zu, k=%u)\n",
              nodes, slices);
  std::printf("%8s %8s %14s %10s %12s\n", "fanout", "beta", "request/node",
              "ack_rate", "retry_rate");

  for (const std::size_t fanout : {2, 3, 4}) {
    for (const double beta : {1.0, 3.0, 6.0}) {
      const auto p = run_point(nodes, slices, fanout, beta, ops, seed);
      std::printf("%8zu %8.1f %14.1f %10.3f %12.3f\n", p.fanout, p.beta,
                  p.msgs_request, p.ack_rate, p.retry_rate);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nexpected: cost rises with fanout and beta; reliability saturates "
      "near 1.0 beyond beta~3 — reaching a bounded percentage suffices "
      "(paper §IV-B).\n");
  return 0;
}
