// Node-level durability semantics: a node on a volatile MemStore loses its
// data across crash/restart (replicas elsewhere carry it), while a node on
// the log-structured store recovers its data from disk — the paper's "node
// hard disk" Data Store variant (§V).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "store/log_store.hpp"
#include "test_util.hpp"
#include "core/node.hpp"

namespace dataflasks::core {
namespace {

using testing::SimBundle;

std::string temp_log(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("dataflasks_node_" + tag + "_" + std::to_string(::getpid()) +
           ".log"))
      .string();
}

TEST(NodeDurability, VolatileStoreIsWipedOnCrash) {
  SimBundle bundle(91);
  NodeOptions options;
  options.slice_config = {1, 1};
  Node node(NodeId(0), 1.0, bundle.simulator, *bundle.transport, options,
            /*seed=*/7);
  node.start({});
  ASSERT_TRUE(node.store().put({"k", 1, Bytes{1}}).ok());
  EXPECT_EQ(node.store().object_count(), 1u);

  node.crash();
  node.start({});
  EXPECT_EQ(node.store().object_count(), 0u);
}

TEST(NodeDurability, LogStoreSurvivesCrashRestart) {
  const std::string path = temp_log("durable");
  std::remove(path.c_str());

  SimBundle bundle(92);
  NodeOptions options;
  options.slice_config = {1, 1};
  {
    Node node(NodeId(0), 1.0, bundle.simulator, *bundle.transport, options,
              /*seed=*/7, std::make_unique<store::LogStore>(path));
    node.start({});
    ASSERT_TRUE(node.store().put({"k", 1, Bytes{0xCD}}).ok());

    node.crash();
    node.start({});
    // Same Node object, same injected durable store: data still there.
    EXPECT_TRUE(node.store().contains("k", 1));
  }  // clean shutdown closes (and flushes) the log

  // A brand-new Node over the same path recovers from the log alone.
  Node reincarnation(NodeId(0), 1.0, bundle.simulator, *bundle.transport,
                     options, /*seed=*/8,
                     std::make_unique<store::LogStore>(path));
  reincarnation.start({});
  EXPECT_TRUE(reincarnation.store().contains("k", 1));
  EXPECT_EQ(reincarnation.store().get("k", 1).value().value, Bytes{0xCD});
  reincarnation.crash();
  std::remove(path.c_str());
}

TEST(NodeDurability, DurableNodeServesRecoveredDataToClients) {
  const std::string path = temp_log("serving");
  std::remove(path.c_str());

  SimBundle bundle(93);
  NodeOptions options;
  options.slice_config = {1, 1};

  // Single durable node cluster: it is the whole slice.
  auto node = std::make_unique<Node>(
      NodeId(0), 1.0, bundle.simulator, *bundle.transport, options,
      /*seed=*/7, std::make_unique<store::LogStore>(path));
  node->start({});
  ASSERT_TRUE(node->store().put({"answer", 1, Bytes{42}}).ok());
  node->crash();
  node->start({});

  // A direct get envelope must be answerable from the recovered log.
  bool got = false;
  Payload value;
  bundle.transport->register_handler(
      NodeId(500), [&](const net::Message& msg) {
        if (msg.type == kOpReplyBatch) {
          const auto batch = decode_op_reply_batch(msg.payload);
          if (batch && !batch->replies.empty() &&
              batch->replies.front().status == OpStatus::kOk) {
            got = true;
            value = batch->replies.front().object.value;
          }
        }
      });
  OpEnvelope envelope;
  envelope.ops.push_back(
      RoutedOp{RequestId{500, 1}, Operation::get("answer")});
  bundle.transport->send(
      net::Message{NodeId(500), NodeId(0), kOpEnvelope, encode(envelope)});
  bundle.run_for(5 * kSeconds);

  EXPECT_TRUE(got);
  EXPECT_EQ(value, Bytes{42});
  node->crash();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dataflasks::core
