// Peer Sampling Service tests: View container semantics, then Cyclon and
// Newscast running on the simulator — connectivity, self-exclusion,
// in-degree balance and dead-node eviction (the properties §II relies on).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <queue>
#include <set>

#include "pss/cyclon.hpp"
#include "pss/newscast.hpp"
#include "test_util.hpp"

namespace dataflasks::pss {
namespace {

using testing::SimBundle;
using testing::make_ids;

// ---- View -----------------------------------------------------------------------

TEST(View, InsertDeduplicatesKeepingYoungerAge) {
  View v(4);
  EXPECT_TRUE(v.insert({NodeId(1), 5}));
  EXPECT_TRUE(v.insert({NodeId(1), 2}));  // refresh: younger age wins
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.entries().front().age, 2u);
  EXPECT_TRUE(v.insert({NodeId(1), 9}));  // older age does not regress
  EXPECT_EQ(v.entries().front().age, 2u);
}

TEST(View, InsertFailsWhenFull) {
  View v(2);
  EXPECT_TRUE(v.insert({NodeId(1), 0}));
  EXPECT_TRUE(v.insert({NodeId(2), 0}));
  EXPECT_FALSE(v.insert({NodeId(3), 0}));
  EXPECT_EQ(v.size(), 2u);
}

TEST(View, InsertEvictingOldestReplacesMaxAge) {
  View v(2);
  v.insert({NodeId(1), 9});
  v.insert({NodeId(2), 1});
  v.insert_evicting_oldest({NodeId(3), 0});
  EXPECT_FALSE(v.contains(NodeId(1)));
  EXPECT_TRUE(v.contains(NodeId(2)));
  EXPECT_TRUE(v.contains(NodeId(3)));
}

TEST(View, OldestAndAging) {
  View v(4);
  v.insert({NodeId(1), 3});
  v.insert({NodeId(2), 7});
  ASSERT_TRUE(v.oldest().has_value());
  EXPECT_EQ(v.oldest()->id, NodeId(2));
  v.increase_age();
  EXPECT_EQ(v.oldest()->age, 8u);
}

TEST(View, SampleIsDistinctAndBounded) {
  View v(8);
  for (int i = 0; i < 8; ++i) v.insert({NodeId(i), 0});
  Rng rng(1);
  const auto sample = v.sample(rng, 5);
  ASSERT_EQ(sample.size(), 5u);
  std::set<std::uint64_t> ids;
  for (const auto& d : sample) ids.insert(d.id.value);
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_EQ(v.sample(rng, 100).size(), 8u);
}

TEST(View, RemoveAndContains) {
  View v(4);
  v.insert({NodeId(5), 0});
  EXPECT_TRUE(v.contains(NodeId(5)));
  EXPECT_TRUE(v.remove(NodeId(5)));
  EXPECT_FALSE(v.contains(NodeId(5)));
  EXPECT_FALSE(v.remove(NodeId(5)));
}

TEST(View, DescriptorCodecRoundTrip) {
  Writer w;
  encode(w, NodeDescriptor{NodeId(9), 4});
  Reader r(w.view());
  const auto d = decode_descriptor(r);
  EXPECT_EQ(d.id, NodeId(9));
  EXPECT_EQ(d.age, 4u);
  EXPECT_FALSE(d.endpoint.has_value());
}

TEST(View, DescriptorCodecRoundTripWithEndpoint) {
  const Endpoint endpoint{0x7F000001, 7105, 987654321};
  Writer w;
  encode(w, NodeDescriptor{NodeId(9), 4, endpoint});
  Reader r(w.view());
  const auto d = decode_descriptor(r);
  ASSERT_TRUE(r.finish().ok());
  EXPECT_EQ(d.id, NodeId(9));
  EXPECT_EQ(d.age, 4u);
  ASSERT_TRUE(d.endpoint.has_value());
  EXPECT_EQ(*d.endpoint, endpoint);
}

TEST(View, InsertKeepsFreshestEndpointStamp) {
  View v(4);
  EXPECT_TRUE(v.insert({NodeId(1), 5, Endpoint{0x7F000001, 7000, 10}}));
  // A restarted node's descriptor (fresher stamp) replaces the address even
  // when the incoming age is older.
  EXPECT_TRUE(v.insert({NodeId(1), 9, Endpoint{0x7F000001, 7111, 20}}));
  ASSERT_EQ(v.size(), 1u);
  ASSERT_TRUE(v.entries().front().endpoint.has_value());
  EXPECT_EQ(v.entries().front().endpoint->port, 7111);
  EXPECT_EQ(v.entries().front().age, 5u);  // younger age still wins

  // Stale gossip (older stamp) must not roll the address back, and an
  // endpoint-less descriptor must not erase what we know.
  EXPECT_TRUE(v.insert({NodeId(1), 2, Endpoint{0x7F000001, 7000, 10}}));
  EXPECT_TRUE(v.insert({NodeId(1), 1, std::nullopt}));
  EXPECT_EQ(v.entries().front().endpoint->port, 7111);
  EXPECT_EQ(v.entries().front().endpoint->stamp, 20u);
}

// ---- protocol harness --------------------------------------------------------------

/// Builds `count` PSS instances wired through the bundle's transport with a
/// ring bootstrap (each node initially knows its few ring neighbours, a
/// worst-case weakly connected start).
template <typename Protocol, typename Options>
std::vector<std::unique_ptr<Protocol>> make_overlay(SimBundle& bundle,
                                                    std::size_t count,
                                                    Options options,
                                                    SimTime period) {
  std::vector<std::unique_ptr<Protocol>> protos;
  Rng seeder(777);
  for (std::size_t i = 0; i < count; ++i) {
    protos.push_back(std::make_unique<Protocol>(
        NodeId(i), *bundle.transport, Rng(seeder.next_u64()), options));
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<NodeId> seeds{NodeId((i + 1) % count),
                              NodeId((i + 2) % count)};
    protos[i]->bootstrap(seeds);
    Protocol* proto = protos[i].get();
    bundle.transport->register_handler(
        NodeId(i), [proto](const net::Message& msg) { proto->handle(msg); });
    bundle.simulator.schedule_periodic(
        bundle.simulator.rng().next_in(0, period), period,
        [proto]() { proto->tick(); });
  }
  return protos;
}

/// Fraction of nodes reachable from node 0 over the directed view graph.
template <typename Protocol>
double reachable_fraction(const std::vector<std::unique_ptr<Protocol>>& protos) {
  std::set<std::uint64_t> visited{0};
  std::queue<std::size_t> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    const std::size_t at = frontier.front();
    frontier.pop();
    for (const NodeId peer : protos[at]->view().ids()) {
      if (visited.insert(peer.value).second) {
        frontier.push(static_cast<std::size_t>(peer.value));
      }
    }
  }
  return static_cast<double>(visited.size()) /
         static_cast<double>(protos.size());
}

class PssProtocolTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PssProtocolTest, ConvergesToFullConnectivity) {
  SimBundle bundle(42);
  constexpr std::size_t kNodes = 150;
  std::vector<std::unique_ptr<PeerSampling>> protos;
  if (std::string(GetParam()) == "cyclon") {
    auto built = make_overlay<Cyclon>(bundle, kNodes, CyclonOptions{}, kSeconds);
    for (auto& p : built) protos.push_back(std::move(p));
  } else {
    auto built =
        make_overlay<Newscast>(bundle, kNodes, NewscastOptions{}, kSeconds);
    for (auto& p : built) protos.push_back(std::move(p));
  }

  bundle.run_for(60 * kSeconds);

  // Full views...
  for (const auto& proto : protos) {
    EXPECT_GE(proto->view().size(), proto->view().capacity() - 2);
  }
  // ...that form a strongly connected-ish overlay. Cyclon's shuffle keeps
  // every node referenced at all times; Newscast's freshest-wins merge lets
  // a node transiently drop out of circulation until its next self-insert,
  // so a small instantaneous deficit is expected there (Voulgaris et al.).
  std::set<std::uint64_t> visited{0};
  std::queue<std::size_t> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    const std::size_t at = frontier.front();
    frontier.pop();
    for (const NodeId peer : protos[at]->view().ids()) {
      if (visited.insert(peer.value).second) {
        frontier.push(static_cast<std::size_t>(peer.value));
      }
    }
  }
  if (std::string(GetParam()) == "cyclon") {
    EXPECT_EQ(visited.size(), kNodes);
  } else {
    EXPECT_GE(visited.size(), kNodes * 9 / 10);
  }
}

TEST_P(PssProtocolTest, ViewsNeverContainSelf) {
  SimBundle bundle(43);
  constexpr std::size_t kNodes = 50;
  std::vector<std::unique_ptr<PeerSampling>> protos;
  if (std::string(GetParam()) == "cyclon") {
    auto built = make_overlay<Cyclon>(bundle, kNodes, CyclonOptions{}, kSeconds);
    for (auto& p : built) protos.push_back(std::move(p));
  } else {
    auto built =
        make_overlay<Newscast>(bundle, kNodes, NewscastOptions{}, kSeconds);
    for (auto& p : built) protos.push_back(std::move(p));
  }
  bundle.run_for(30 * kSeconds);
  for (std::size_t i = 0; i < kNodes; ++i) {
    EXPECT_FALSE(protos[i]->view().contains(NodeId(i)))
        << "node " << i << " has itself in its view";
  }
}

TEST_P(PssProtocolTest, InDegreeStaysBalanced) {
  SimBundle bundle(44);
  constexpr std::size_t kNodes = 100;
  std::vector<std::unique_ptr<PeerSampling>> protos;
  if (std::string(GetParam()) == "cyclon") {
    auto built = make_overlay<Cyclon>(bundle, kNodes, CyclonOptions{}, kSeconds);
    for (auto& p : built) protos.push_back(std::move(p));
  } else {
    auto built =
        make_overlay<Newscast>(bundle, kNodes, NewscastOptions{}, kSeconds);
    for (auto& p : built) protos.push_back(std::move(p));
  }
  bundle.run_for(60 * kSeconds);

  std::map<std::uint64_t, int> in_degree;
  for (const auto& proto : protos) {
    for (const NodeId peer : proto->view().ids()) ++in_degree[peer.value];
  }
  int max_in = 0;
  for (const auto& [node, deg] : in_degree) max_in = std::max(max_in, deg);
  if (std::string(GetParam()) == "cyclon") {
    // Cyclon's in-degree concentrates tightly around the view size (20); a
    // star/hub topology would blow way past this band.
    EXPECT_LT(max_in, 60);
    EXPECT_EQ(in_degree.size(), kNodes);  // everyone is known by someone
  } else {
    // Newscast's in-degree distribution is documented to be skewed
    // (freshest-wins merge); bound the skew and instantaneous coverage
    // loosely — it must still not collapse onto a handful of hubs.
    EXPECT_LT(max_in, kNodes);
    EXPECT_GE(in_degree.size(), kNodes * 4 / 5);
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, PssProtocolTest,
                         ::testing::Values("cyclon", "newscast"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---- Cyclon-specific ------------------------------------------------------------

TEST(Cyclon, EvictsDeadNodesOverTime) {
  SimBundle bundle(45);
  constexpr std::size_t kNodes = 60;
  auto protos = make_overlay<Cyclon>(bundle, kNodes, CyclonOptions{}, kSeconds);
  bundle.run_for(30 * kSeconds);

  // Kill a third of the system.
  std::set<std::uint64_t> dead;
  for (std::size_t i = 0; i < kNodes / 3; ++i) {
    dead.insert(i);
    bundle.model.set_node_up(NodeId(i), false);
    bundle.transport->unregister_handler(NodeId(i));
  }
  bundle.run_for(120 * kSeconds);

  // Live nodes should have flushed (almost) all dead entries: shuffling
  // removes the oldest neighbour on every cycle and dead ones never refresh.
  std::size_t dead_refs = 0, total_refs = 0;
  for (std::size_t i = kNodes / 3; i < kNodes; ++i) {
    for (const NodeId peer : protos[i]->view().ids()) {
      ++total_refs;
      if (dead.contains(peer.value)) ++dead_refs;
    }
  }
  EXPECT_LT(static_cast<double>(dead_refs) / static_cast<double>(total_refs),
            0.05);
}

TEST(Cyclon, RejectsBadOptions) {
  SimBundle bundle(1);
  CyclonOptions opts;
  opts.shuffle_length = 0;
  EXPECT_THROW(Cyclon(NodeId(0), *bundle.transport, Rng(1), opts),
               InvariantViolation);
  opts.shuffle_length = 30;
  opts.view_size = 20;
  EXPECT_THROW(Cyclon(NodeId(0), *bundle.transport, Rng(1), opts),
               InvariantViolation);
}

TEST(Cyclon, SampleListenerSeesFreshDescriptors) {
  SimBundle bundle(46);
  auto protos = make_overlay<Cyclon>(bundle, 30, CyclonOptions{}, kSeconds);
  std::size_t observed = 0;
  protos[0]->set_sample_listener(
      [&](const std::vector<NodeDescriptor>& batch) {
        observed += batch.size();
        for (const auto& d : batch) EXPECT_NE(d.id, NodeId(0));
      });
  bundle.run_for(30 * kSeconds);
  EXPECT_GT(observed, 0u);
}

TEST(Cyclon, ShufflesCarryAndRefreshEndpoints) {
  SimBundle bundle(50);
  // Node 1 advertises an endpoint; node 0 must learn it from the shuffle's
  // self-descriptor and surface it through the descriptor listener (the
  // stream the real transport's address book is fed from).
  Cyclon a(NodeId(1), *bundle.transport, Rng(1), {});
  Cyclon b(NodeId(0), *bundle.transport, Rng(2), {});
  a.set_self_endpoint_provider(
      []() { return Endpoint{0x7F000001, 7101, 77}; });
  a.bootstrap({NodeId(0)});
  b.bootstrap({NodeId(1)});
  bundle.transport->register_handler(
      NodeId(1), [&a](const net::Message& msg) { a.handle(msg); });
  bundle.transport->register_handler(
      NodeId(0), [&b](const net::Message& msg) { b.handle(msg); });

  std::vector<NodeDescriptor> seen;
  b.set_descriptor_listener([&](const std::vector<NodeDescriptor>& batch) {
    seen.insert(seen.end(), batch.begin(), batch.end());
  });

  a.tick();  // shuffle request 1 -> 0 carrying a's stamped self-descriptor
  bundle.run_for(2 * kSeconds);

  bool listener_saw_endpoint = false;
  for (const NodeDescriptor& d : seen) {
    if (d.id == NodeId(1) && d.endpoint.has_value() &&
        d.endpoint->port == 7101) {
      listener_saw_endpoint = true;
    }
  }
  EXPECT_TRUE(listener_saw_endpoint);

  bool view_has_endpoint = false;
  for (const NodeDescriptor& d : b.view().entries()) {
    if (d.id == NodeId(1) && d.endpoint.has_value() &&
        d.endpoint->stamp == 77) {
      view_has_endpoint = true;
    }
  }
  EXPECT_TRUE(view_has_endpoint);
}

TEST(Newscast, ExchangesCarryEndpoints) {
  SimBundle bundle(51);
  Newscast a(NodeId(1), *bundle.transport, Rng(1), {});
  Newscast b(NodeId(0), *bundle.transport, Rng(2), {});
  a.set_self_endpoint_provider(
      []() { return Endpoint{0x7F000001, 7201, 88}; });
  a.bootstrap({NodeId(0)});
  b.bootstrap({NodeId(1)});
  bundle.transport->register_handler(
      NodeId(1), [&a](const net::Message& msg) { a.handle(msg); });
  bundle.transport->register_handler(
      NodeId(0), [&b](const net::Message& msg) { b.handle(msg); });

  a.tick();
  bundle.run_for(2 * kSeconds);

  bool view_has_endpoint = false;
  for (const NodeDescriptor& d : b.view().entries()) {
    if (d.id == NodeId(1) && d.endpoint.has_value() &&
        d.endpoint->port == 7201) {
      view_has_endpoint = true;
    }
  }
  EXPECT_TRUE(view_has_endpoint);
}

TEST(Cyclon, MalformedMessageIsDroppedSafely) {
  SimBundle bundle(47);
  Cyclon node(NodeId(0), *bundle.transport, Rng(1), {});
  node.bootstrap({NodeId(1)});
  net::Message bad{NodeId(1), NodeId(0), kCyclonShuffleRequest,
                   Bytes{0xFF, 0xFF, 0xFF, 0xFF, 0x01}};
  EXPECT_TRUE(node.handle(bad));  // consumed (right type) but ignored
  EXPECT_EQ(node.view().size(), 1u);
}

TEST(Cyclon, SamplePeersReturnsDistinctIds) {
  SimBundle bundle(48);
  Cyclon node(NodeId(0), *bundle.transport, Rng(1), {});
  node.bootstrap({NodeId(1), NodeId(2), NodeId(3), NodeId(4)});
  const auto peers = node.sample_peers(3);
  ASSERT_EQ(peers.size(), 3u);
  std::set<std::uint64_t> ids;
  for (const NodeId p : peers) ids.insert(p.value);
  EXPECT_EQ(ids.size(), 3u);
}

// ---- Newscast-specific -----------------------------------------------------------

TEST(Newscast, KeepsFreshestEntries) {
  SimBundle bundle(49);
  NewscastOptions opts;
  opts.view_size = 4;
  Newscast node(NodeId(0), *bundle.transport, Rng(1), opts);
  node.bootstrap({NodeId(1), NodeId(2), NodeId(3), NodeId(4)});

  // Deliver an exchange containing fresher entries than the current view.
  Writer w;
  std::vector<NodeDescriptor> incoming{{NodeId(10), 0}, {NodeId(11), 0}};
  w.vec(incoming, [&w](const NodeDescriptor& d) { encode(w, d); });
  // Age the local entries first so the fresh ones win.
  for (int i = 0; i < 3; ++i) node.tick();
  node.handle(net::Message{NodeId(10), NodeId(0), kNewscastExchangeReply,
                           w.take()});
  EXPECT_TRUE(node.view().contains(NodeId(10)));
  EXPECT_TRUE(node.view().contains(NodeId(11)));
  EXPECT_EQ(node.view().size(), opts.view_size);
}

}  // namespace
}  // namespace dataflasks::pss
