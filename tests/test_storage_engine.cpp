// StorageEngine: snapshot + journal-tail recovery, checkpoint compaction,
// TTL expiry / LRU eviction, and torn-write robustness. The fuzz tests cut
// or flip the on-disk files at every byte position and assert the contract:
// recovery is loud (warnings / open error) and never silently empty.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/log_store.hpp"
#include "store/storage_engine.hpp"

namespace dataflasks::store {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory; removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("df_engine_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }

  [[nodiscard]] std::string base() const {
    return (path / "dataflasks-0").string();
  }

  fs::path path;
};

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

Object live(const std::string& key, Version version, std::uint8_t fill,
            std::size_t size = 8) {
  return Object{key, version, Payload(Bytes(size, fill))};
}

TEST(StorageEngine, FreshDirectoryOpensEmpty) {
  TempDir dir("fresh");
  StorageEngine engine(dir.base());
  ASSERT_TRUE(engine.open_status().ok());
  EXPECT_EQ(engine.object_count(), 0u);
  EXPECT_EQ(engine.generation(), 1u);
  EXPECT_FALSE(engine.recovery().loaded_snapshot);
  EXPECT_TRUE(engine.recovery().warnings.empty());
}

TEST(StorageEngine, JournalTailAloneRecovers) {
  TempDir dir("tail");
  {
    StorageEngine engine(dir.base());
    ASSERT_TRUE(engine.open_status().ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(engine.put(live("k" + std::to_string(i), 1, 0xAA)).ok());
    }
    ASSERT_TRUE(engine.sync().ok());
  }
  StorageEngine reopened(dir.base());
  ASSERT_TRUE(reopened.open_status().ok());
  EXPECT_EQ(reopened.object_count(), 10u);
  EXPECT_FALSE(reopened.recovery().loaded_snapshot);
  EXPECT_EQ(reopened.recovery().records_replayed, 10u);
  EXPECT_TRUE(reopened.contains("k7", 1));
}

TEST(StorageEngine, SnapshotPlusTailRecovers) {
  TempDir dir("snaptail");
  {
    StorageEngine engine(dir.base());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(engine.put(live("snap" + std::to_string(i), 1, 0x01)).ok());
    }
    auto reclaimed = engine.checkpoint();
    ASSERT_TRUE(reclaimed.ok());
    EXPECT_EQ(engine.generation(), 2u);
    // Post-checkpoint writes land in the new journal: the tail.
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(engine.put(live("tail" + std::to_string(i), 1, 0x02)).ok());
    }
    ASSERT_TRUE(engine.sync().ok());
  }
  StorageEngine reopened(dir.base());
  ASSERT_TRUE(reopened.open_status().ok());
  EXPECT_TRUE(reopened.recovery().loaded_snapshot);
  EXPECT_EQ(reopened.recovery().snapshot_seq, 2u);
  EXPECT_EQ(reopened.recovery().snapshot_objects, 20u);
  EXPECT_EQ(reopened.recovery().records_replayed, 5u);
  EXPECT_EQ(reopened.object_count(), 25u);
  EXPECT_TRUE(reopened.contains("snap3", 1));
  EXPECT_TRUE(reopened.contains("tail4", 1));
}

TEST(StorageEngine, CheckpointKeepsTwoGenerationsAndReclaimsOlder) {
  TempDir dir("gens");
  StorageEngine engine(dir.base());
  ASSERT_TRUE(engine.put(live("a", 1, 0x01)).ok());
  ASSERT_TRUE(engine.checkpoint().ok());  // -> gen 2
  ASSERT_TRUE(engine.put(live("b", 1, 0x02)).ok());
  auto second = engine.checkpoint();  // -> gen 3, reclaims gen 1
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second.value(), 0u);
  EXPECT_EQ(engine.generation(), 3u);

  EXPECT_TRUE(fs::exists(dir.base() + ".snap.2"));
  EXPECT_TRUE(fs::exists(dir.base() + ".snap.3"));
  EXPECT_FALSE(fs::exists(dir.base() + ".journal.1"));
  EXPECT_FALSE(fs::exists(dir.base() + ".snap.1"));
}

TEST(StorageEngine, IdempotentRePutIsNotJournaled) {
  TempDir dir("idem");
  StorageEngine engine(dir.base());
  const Object obj = live("same", 3, 0x11);
  ASSERT_TRUE(engine.put(obj).ok());
  const std::size_t after_first = engine.journal_bytes();
  ASSERT_TRUE(engine.put(obj).ok());  // no-op replay (same key+version)
  EXPECT_EQ(engine.journal_bytes(), after_first);
}

TEST(StorageEngine, TombstonesSurviveCheckpointAndRestart) {
  TempDir dir("tomb");
  {
    StorageEngine engine(dir.base());
    ASSERT_TRUE(engine.put(live("gone", 1, 0x01)).ok());
    ASSERT_TRUE(engine.put(Object::make_tombstone("gone", 2, 100)).ok());
    ASSERT_TRUE(engine.checkpoint().ok());
  }
  StorageEngine reopened(dir.base());
  ASSERT_TRUE(reopened.open_status().ok());
  EXPECT_EQ(reopened.tombstone_version("gone"), 2u);
}

// ---- torn-write fuzz ---------------------------------------------------------------

/// Builds one journal with `records` puts and returns its bytes.
Bytes build_journal(TempDir& dir, int records) {
  StorageEngine engine(dir.base());
  for (int i = 0; i < records; ++i) {
    EXPECT_TRUE(engine.put(live("j" + std::to_string(i), 1, 0x33)).ok());
  }
  EXPECT_TRUE(engine.sync().ok());
  return read_file(dir.base() + ".journal.1");
}

TEST(StorageEngineFuzz, JournalTruncatedAtEveryPrefixRecoversLoudly) {
  TempDir dir("trunc");
  const Bytes full = build_journal(dir, 4);
  ASSERT_GT(full.size(), 0u);
  ASSERT_EQ(full.size() % 4, 0u);  // identical keys/values: equal records
  const std::size_t record = full.size() / 4;
  const std::string journal = dir.base() + ".journal.1";

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    write_file(journal, Bytes(full.begin(),
                              full.begin() + static_cast<std::ptrdiff_t>(cut)));
    StorageEngine engine(dir.base());
    ASSERT_TRUE(engine.open_status().ok()) << "cut at " << cut;
    // Exactly the whole records before the cut are recovered; a torn
    // remainder is reported, never swallowed (a cut on a record boundary
    // loses nothing and warns about nothing).
    EXPECT_EQ(engine.object_count(), cut / record) << "cut at " << cut;
    EXPECT_EQ(engine.recovery().warnings.empty(), cut % record == 0)
        << "cut at " << cut;
    // Appends after a truncated tail must land on a valid boundary: a new
    // put followed by reopen sees exactly recovered + 1 objects.
    const std::size_t recovered = engine.object_count();
    ASSERT_TRUE(engine.put(live("fresh", 9, 0x44)).ok());
    ASSERT_TRUE(engine.sync().ok());
    StorageEngine reopened(dir.base());
    ASSERT_TRUE(reopened.open_status().ok()) << "cut at " << cut;
    EXPECT_EQ(reopened.object_count(), recovered + 1) << "cut at " << cut;
    EXPECT_TRUE(reopened.contains("fresh", 9)) << "cut at " << cut;
  }
}

TEST(StorageEngineFuzz, JournalBitFlipAtEveryByteNeverCrashesOrOverReads) {
  TempDir dir("flip");
  const Bytes full = build_journal(dir, 3);
  ASSERT_EQ(full.size() % 3, 0u);
  const std::size_t record = full.size() / 3;
  const std::string journal = dir.base() + ".journal.1";

  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    Bytes mutated = full;
    mutated[pos] ^= 0x80;
    write_file(journal, mutated);
    StorageEngine engine(dir.base());
    // A flipped byte breaks a magic, a CRC or a length: replay stops at the
    // damaged record, recovers every record before it, and warns.
    ASSERT_TRUE(engine.open_status().ok()) << "flip at " << pos;
    EXPECT_EQ(engine.object_count(), pos / record) << "flip at " << pos;
    EXPECT_FALSE(engine.recovery().warnings.empty()) << "flip at " << pos;
  }
}

TEST(StorageEngineFuzz, OnlySnapshotCorruptRefusesToOpenEmpty) {
  TempDir dir("refuse");
  {
    StorageEngine engine(dir.base());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(engine.put(live("s" + std::to_string(i), 1, 0x55)).ok());
    }
    ASSERT_TRUE(engine.checkpoint().ok());
  }
  // The checkpoint rolled the journal: delete it so the snapshot is the only
  // copy, then damage the snapshot at every header byte. With no fallback
  // generation the engine must refuse to open — an empty store would let a
  // wounded replica spread its amnesia through anti-entropy.
  fs::remove(dir.base() + ".journal.2");
  const std::string snap = dir.base() + ".snap.2";
  const Bytes full = read_file(snap);
  const std::size_t header = 4 + 8 + 8 + 8 + 4;
  ASSERT_GT(full.size(), header);

  for (std::size_t cut = 0; cut < header; ++cut) {
    write_file(snap, Bytes(full.begin(),
                           full.begin() + static_cast<std::ptrdiff_t>(cut)));
    StorageEngine engine(dir.base());
    EXPECT_FALSE(engine.open_status().ok()) << "cut at " << cut;
    EXPECT_EQ(engine.object_count(), 0u);
    EXPECT_FALSE(engine.recovery().warnings.empty()) << "cut at " << cut;
  }
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    Bytes mutated = full;
    mutated[pos] ^= 0x01;
    write_file(snap, mutated);
    StorageEngine engine(dir.base());
    EXPECT_FALSE(engine.open_status().ok()) << "flip at " << pos;
    EXPECT_FALSE(engine.recovery().warnings.empty()) << "flip at " << pos;
  }
}

TEST(StorageEngineFuzz, CorruptNewestSnapshotFallsBackOneGeneration) {
  TempDir dir("fallback");
  {
    StorageEngine engine(dir.base());
    ASSERT_TRUE(engine.put(live("old", 1, 0x01)).ok());
    ASSERT_TRUE(engine.checkpoint().ok());  // snap.2 holds {old}
    ASSERT_TRUE(engine.put(live("new", 1, 0x02)).ok());
    ASSERT_TRUE(engine.checkpoint().ok());  // snap.3 holds {old, new}
  }
  // Flip one body byte of the newest snapshot: recovery falls back to
  // snap.2 and replays journal.2 (which also carries "new") — loudly.
  const std::string snap3 = dir.base() + ".snap.3";
  Bytes mutated = read_file(snap3);
  mutated[mutated.size() - 1] ^= 0xFF;
  write_file(snap3, mutated);

  StorageEngine engine(dir.base());
  ASSERT_TRUE(engine.open_status().ok());
  EXPECT_TRUE(engine.recovery().loaded_snapshot);
  EXPECT_EQ(engine.recovery().snapshot_seq, 2u);
  ASSERT_FALSE(engine.recovery().warnings.empty());
  EXPECT_NE(engine.recovery().warnings.front().find(".snap.3"),
            std::string::npos);
  EXPECT_TRUE(engine.contains("old", 1));
  EXPECT_TRUE(engine.contains("new", 1));
}

// ---- TTL / eviction ----------------------------------------------------------------

TEST(StorageEngine, ReapExpiresOnlyPastDeadlines) {
  TempDir dir("ttl");
  StorageEngine engine(dir.base());
  Object soon = live("soon", 1, 0x01);
  soon.expires_at = 100;
  Object later = live("later", 1, 0x02);
  later.expires_at = 1000;
  ASSERT_TRUE(engine.put(soon).ok());
  ASSERT_TRUE(engine.put(later).ok());
  ASSERT_TRUE(engine.put(live("forever", 1, 0x03)).ok());

  EXPECT_EQ(engine.reap(50, 0).expired, 0u);
  const ReapStats stats = engine.reap(500, 0);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_FALSE(engine.contains("soon", 1));
  EXPECT_TRUE(engine.contains("later", 1));
  EXPECT_TRUE(engine.contains("forever", 1));
}

TEST(StorageEngine, EvictionDropsColdestFirstAndSparesTombstones) {
  TempDir dir("lru");
  StorageEngine engine(dir.base());
  ASSERT_TRUE(engine.put(live("cold", 1, 0x01, 100)).ok());
  ASSERT_TRUE(engine.put(live("warm", 1, 0x02, 100)).ok());
  ASSERT_TRUE(engine.put(live("hot", 1, 0x03, 100)).ok());
  ASSERT_TRUE(engine.put(Object::make_tombstone("deleted", 1, 10)).ok());
  // Reads refresh recency: "cold" stays untouched and is evicted first.
  (void)engine.get("warm", std::nullopt);
  (void)engine.get("hot", std::nullopt);

  const ReapStats stats = engine.reap(0, 250);
  EXPECT_EQ(stats.evicted, 1u);
  EXPECT_FALSE(engine.contains("cold", 1));
  EXPECT_TRUE(engine.contains("warm", 1));
  EXPECT_TRUE(engine.contains("hot", 1));
  // Tombstones are deletes, not cache entries: never eviction victims.
  EXPECT_EQ(engine.tombstone_version("deleted"), 1u);
}

TEST(StorageEngine, ReapedRemovalsAreReReapedAfterRestart) {
  TempDir dir("rereap");
  {
    StorageEngine engine(dir.base());
    Object obj = live("transient", 1, 0x01);
    obj.expires_at = 100;
    ASSERT_TRUE(engine.put(obj).ok());
    EXPECT_EQ(engine.reap(200, 0).expired, 1u);
    ASSERT_TRUE(engine.sync().ok());
  }
  // Removals are not journaled: replay resurrects the object in memory,
  // but its absolute deadline has still passed — the next reap (the node
  // runs one every reap period) removes it again before any read path
  // would serve it.
  StorageEngine reopened(dir.base());
  ASSERT_TRUE(reopened.open_status().ok());
  EXPECT_TRUE(reopened.contains("transient", 1));
  EXPECT_EQ(reopened.reap(200, 0).expired, 1u);
  EXPECT_FALSE(reopened.contains("transient", 1));
}

TEST(StorageEngine, CheckpointMakesReapsDurable) {
  TempDir dir("durable_reap");
  {
    StorageEngine engine(dir.base());
    Object obj = live("transient", 1, 0x01);
    obj.expires_at = 100;
    ASSERT_TRUE(engine.put(obj).ok());
    ASSERT_TRUE(engine.put(live("kept", 1, 0x02)).ok());
    EXPECT_EQ(engine.reap(200, 0).expired, 1u);
    ASSERT_TRUE(engine.checkpoint().ok());
  }
  StorageEngine reopened(dir.base());
  ASSERT_TRUE(reopened.open_status().ok());
  EXPECT_FALSE(reopened.contains("transient", 1));
  EXPECT_TRUE(reopened.contains("kept", 1));
  EXPECT_EQ(reopened.recovery().records_replayed, 0u);
}

TEST(StorageEngine, BreakdownCountsLiveAndTombstoneSeparately) {
  TempDir dir("breakdown");
  StorageEngine engine(dir.base());
  ASSERT_TRUE(engine.put(live("a", 1, 0x01, 10)).ok());
  ASSERT_TRUE(engine.put(live("b", 1, 0x02, 20)).ok());
  ASSERT_TRUE(engine.put(Object::make_tombstone("c", 1, 5)).ok());
  const StoreBreakdown b = engine.breakdown();
  EXPECT_EQ(b.live_objects, 2u);
  EXPECT_EQ(b.live_bytes, 30u);
  EXPECT_EQ(b.tombstone_objects, 1u);
}

// Recovery-cost contrast with the legacy full-replay log: once most of a
// cache workload has expired and a checkpoint folded the reaps in, the
// engine recovers from a snapshot holding only the survivors while the
// append-only log retains (and would replay) every historical record.
TEST(StorageEngine, CheckpointBoundsRecoveryWorkUnlikeFullReplay) {
  TempDir dir("contrast");
  const std::string log_path = (dir.path / "legacy.log").string();
  constexpr int kRecords = 500;
  constexpr int kSurvivors = 25;
  {
    StorageEngine engine(dir.base());
    LogStore log(log_path);
    for (int i = 0; i < kRecords; ++i) {
      Object obj = live("k" + std::to_string(i), 1, 0x07, 32);
      if (i >= kSurvivors) obj.expires_at = 100;  // cache-mode churn
      ASSERT_TRUE(engine.put(obj).ok());
      ASSERT_TRUE(log.put(obj).ok());
    }
    EXPECT_EQ(engine.reap(200, 0).expired,
              static_cast<std::size_t>(kRecords - kSurvivors));
    ASSERT_TRUE(engine.checkpoint().ok());
  }
  StorageEngine engine(dir.base());
  ASSERT_TRUE(engine.open_status().ok());
  EXPECT_EQ(engine.recovery().records_replayed, 0u);
  EXPECT_EQ(engine.recovery().snapshot_objects,
            static_cast<std::size_t>(kSurvivors));
  const std::size_t snapshot_bytes = read_file(dir.base() + ".snap.2").size();
  const std::size_t log_bytes = read_file(log_path).size();
  // 25 survivors vs 500 historical records: an order of magnitude less to
  // read (and apply) at the next boot.
  EXPECT_LT(snapshot_bytes * 10, log_bytes);
}

}  // namespace
}  // namespace dataflasks::store
