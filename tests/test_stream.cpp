// Stream transport tests: incremental frame reassembly (arbitrary byte
// windows, poisoning on malformed headers), real TCP loopback through
// StreamListener/StreamConnection/StreamTransport — including a 1 MiB frame
// and the reply-rides-the-connection-back contract — and the DualTransport
// policy layer: oversized sends require streams, preferred types fall back
// to UDP against stream-less peers, maintenance never leaves UDP, and an
// AddressBook eviction closes the evicted peer's cached connection.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>

#include <cstring>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "net/frame.hpp"
#include "net/stream/dual_transport.hpp"
#include "net/stream/stream_frame.hpp"
#include "net/stream/stream_transport.hpp"
#include "net/udp_transport.hpp"
#include "runtime/real_time_runtime.hpp"

namespace dataflasks::net {
namespace {

constexpr std::uint32_t kLoopbackIp = 0x7F000001;  // 127.0.0.1, host order

Message sample_message(std::size_t payload_size = 8) {
  Message msg;
  msg.src = NodeId(7);
  msg.dst = NodeId(11);
  msg.type = 0x0301;
  Bytes bytes(payload_size);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(i * 13 + 1);
  }
  msg.payload = Payload(bytes);
  return msg;
}

/// Drives the runtime in small steps until `done` or the timeout elapses.
void run_until(runtime::RealTimeRuntime& rt, SimTime timeout,
               const std::function<bool()>& done) {
  const SimTime deadline = rt.now() + timeout;
  while (!done() && rt.now() < deadline) {
    rt.run_for(20 * kMillis);
  }
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(kLoopbackIp);
  return addr;
}

// ---- frame decoder ---------------------------------------------------------

TEST(StreamFrame, RoundTripsOneFrame) {
  const Message original = sample_message();
  const Payload wire = encode_stream_frame(original);
  EXPECT_EQ(wire.size(), kStreamHeaderSize + original.payload.size());

  StreamFrameDecoder decoder;
  decoder.feed(wire.view());
  const auto decoded = decoder.poll();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->src, original.src);
  EXPECT_EQ(decoded->dst, original.dst);
  EXPECT_EQ(decoded->type, original.type);
  EXPECT_EQ(decoded->payload, original.payload);
  EXPECT_FALSE(decoder.poll().has_value());
  EXPECT_FALSE(decoder.failed());
  EXPECT_EQ(decoder.partial_bytes(), 0u);
}

TEST(StreamFrame, ReassemblesByteAtATime) {
  const Message original = sample_message(300);
  const Payload wire = encode_stream_frame(original);

  StreamFrameDecoder decoder;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(decoder.poll().has_value())
        << "no frame may complete before byte " << wire.size();
    decoder.feed(ByteView(wire.data() + i, 1));
  }
  const auto decoded = decoder.poll();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, original.payload);
}

TEST(StreamFrame, DecodesBackToBackFramesFromOneWindow) {
  Message a = sample_message(5);
  Message b = sample_message(60 * 1024 + 17);  // over the datagram budget
  b.type = 0x0302;
  Message c = sample_message(0);
  c.payload = Payload();

  Bytes wire;
  for (const Message* m : {&a, &b, &c}) {
    const Payload f = encode_stream_frame(*m);
    wire.insert(wire.end(), f.begin(), f.end());
  }

  StreamFrameDecoder decoder;
  decoder.feed(ByteView(wire.data(), wire.size()));
  const auto da = decoder.poll();
  const auto db = decoder.poll();
  const auto dc = decoder.poll();
  ASSERT_TRUE(da.has_value());
  ASSERT_TRUE(db.has_value());
  ASSERT_TRUE(dc.has_value());
  EXPECT_EQ(da->payload, a.payload);
  EXPECT_EQ(db->payload, b.payload);
  EXPECT_EQ(db->type, 0x0302);
  EXPECT_TRUE(dc->payload.empty());
  EXPECT_FALSE(decoder.poll().has_value());
}

TEST(StreamFrame, HeaderSplitAcrossFeedsStillParses) {
  const Message original = sample_message(40);
  const Payload wire = encode_stream_frame(original);
  // Split inside the header, then inside the payload.
  for (const std::size_t cut : {std::size_t{3}, kStreamHeaderSize - 1,
                                kStreamHeaderSize + 1, wire.size() - 1}) {
    StreamFrameDecoder decoder;
    decoder.feed(ByteView(wire.data(), cut));
    EXPECT_FALSE(decoder.poll().has_value());
    decoder.feed(ByteView(wire.data() + cut, wire.size() - cut));
    const auto decoded = decoder.poll();
    ASSERT_TRUE(decoded.has_value()) << "cut at " << cut;
    EXPECT_EQ(decoded->payload, original.payload);
  }
}

TEST(StreamFrame, BadMagicPoisonsTheDecoder) {
  const Payload wire = encode_stream_frame(sample_message());
  Bytes corrupt(wire.begin(), wire.end());
  corrupt[0] ^= 0xFF;

  StreamFrameDecoder decoder;
  decoder.feed(ByteView(corrupt.data(), corrupt.size()));
  EXPECT_TRUE(decoder.failed());
  EXPECT_FALSE(decoder.poll().has_value());
  // Poisoned: further feeds are no-ops, never a crash or resync attempt.
  decoder.feed(wire.view());
  EXPECT_TRUE(decoder.failed());
  EXPECT_FALSE(decoder.poll().has_value());
}

TEST(StreamFrame, OversizedDeclaredLengthPoisonsTheDecoder) {
  const Payload wire = encode_stream_frame(sample_message());
  Bytes corrupt(wire.begin(), wire.end());
  const std::size_t len_off = kStreamHeaderSize - sizeof(std::uint32_t);
  const auto huge = static_cast<std::uint32_t>(kMaxStreamPayload + 1);
  std::memcpy(corrupt.data() + len_off, &huge, sizeof huge);

  StreamFrameDecoder decoder;
  decoder.feed(ByteView(corrupt.data(), corrupt.size()));
  EXPECT_TRUE(decoder.failed());
  EXPECT_FALSE(decoder.poll().has_value());
}

TEST(StreamFrame, LengthAtTheLimitIsAccepted) {
  Message msg = sample_message(0);
  msg.payload = Payload(Bytes(kMaxStreamPayload, 0x5A));
  const Payload wire = encode_stream_frame(msg);
  StreamFrameDecoder decoder;
  decoder.feed(wire.view());
  const auto decoded = decoder.poll();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload.size(), kMaxStreamPayload);
  EXPECT_FALSE(decoder.failed());
}

TEST(StreamFrame, PartialBytesTracksBufferedPrefix) {
  const Payload wire = encode_stream_frame(sample_message(32));
  StreamFrameDecoder decoder;
  decoder.feed(ByteView(wire.data(), 10));
  EXPECT_EQ(decoder.partial_bytes(), 10u);
  // 26 more bytes: the 26-byte header completes and is consumed, leaving
  // 10 buffered payload bytes as the in-progress prefix.
  decoder.feed(ByteView(wire.data() + 10, kStreamHeaderSize));
  EXPECT_EQ(decoder.partial_bytes(), 10u);
  EXPECT_FALSE(decoder.poll().has_value());
}

// ---- TCP loopback ----------------------------------------------------------

struct StreamPeer {
  StreamPeer(runtime::RealTimeRuntime& rt, bool listen) {
    StreamTransport::Options options;
    options.listen = listen;
    options.listen_ip = kLoopbackIp;
    transport = std::make_unique<StreamTransport>(rt, options);
    transport->set_receiver(
        [this](const Message& msg) { received.push_back(msg); });
  }

  std::unique_ptr<StreamTransport> transport;
  std::vector<Message> received;
};

TEST(StreamTransport, ExchangesFramesAndRepliesRideTheConnectionBack) {
  runtime::RealTimeRuntime rt(1);
  StreamPeer server(rt, /*listen=*/true);
  StreamPeer client(rt, /*listen=*/false);
  ASSERT_NE(server.transport->listen_port(), 0);

  client.transport->dial(NodeId(2),
                         loopback_addr(server.transport->listen_port()));
  run_until(rt, 2 * kSeconds,
            [&] { return client.transport->connected_to(NodeId(2)); });
  ASSERT_TRUE(client.transport->connected_to(NodeId(2)));

  Message request;
  request.src = NodeId(1);
  request.dst = NodeId(2);
  request.type = 0x0301;
  request.payload = Payload(Bytes{1, 2, 3});
  EXPECT_TRUE(client.transport->send(request));
  run_until(rt, 2 * kSeconds, [&] { return !server.received.empty(); });
  ASSERT_EQ(server.received.size(), 1u);
  EXPECT_EQ(server.received[0].payload, request.payload);

  // The inbound connection bound itself to NodeId(1) from the first frame's
  // src: the server can answer with no address exchange at all.
  EXPECT_TRUE(server.transport->connected_to(NodeId(1)));
  Message reply;
  reply.src = NodeId(2);
  reply.dst = NodeId(1);
  reply.type = 0x0302;
  reply.payload = Payload(Bytes{9, 9, 9});
  EXPECT_TRUE(server.transport->send(reply));
  run_until(rt, 2 * kSeconds, [&] { return !client.received.empty(); });
  ASSERT_EQ(client.received.size(), 1u);
  EXPECT_EQ(client.received[0].payload, reply.payload);

  EXPECT_EQ(server.transport->counters().accepted.load(), 1u);
  EXPECT_EQ(client.transport->counters().dialed.load(), 1u);
  EXPECT_GE(client.transport->counters().io.frames_out.load(), 1u);
  EXPECT_GE(server.transport->counters().io.frames_in.load(), 1u);
}

TEST(StreamTransport, CarriesAMebibyteFrame) {
  runtime::RealTimeRuntime rt(1);
  StreamPeer server(rt, /*listen=*/true);
  StreamPeer client(rt, /*listen=*/false);

  client.transport->dial(NodeId(2),
                         loopback_addr(server.transport->listen_port()));

  Bytes big(1024 * 1024 + 137);
  Rng rng(0xABCD);
  for (auto& b : big) b = static_cast<std::uint8_t>(rng.next_below(256));
  Message msg;
  msg.src = NodeId(1);
  msg.dst = NodeId(2);
  msg.type = 0x0303;
  msg.payload = Payload(big);

  // Legal while the handshake is still resolving: frames queue and flush
  // the moment the connect completes.
  EXPECT_TRUE(client.transport->send(msg));
  run_until(rt, 5 * kSeconds, [&] { return !server.received.empty(); });
  ASSERT_EQ(server.received.size(), 1u);
  EXPECT_EQ(server.received[0].payload.size(), big.size());
  EXPECT_EQ(server.received[0].payload, msg.payload);
  EXPECT_GE(server.transport->counters().io.bytes_in.load(), big.size());
}

TEST(StreamTransport, FailedDialCountsAndNotifiesPeerDown) {
  runtime::RealTimeRuntime rt(1);
  StreamPeer client(rt, /*listen=*/false);
  std::vector<NodeId> down;
  client.transport->set_peer_down_listener(
      [&](NodeId node) { down.push_back(node); });

  // Nothing listens on a freshly bound-then-closed ephemeral port; grab one.
  StreamTransport::Options probe_options;
  probe_options.listen = true;
  probe_options.listen_ip = kLoopbackIp;
  std::uint16_t dead_port = 0;
  {
    StreamTransport probe(rt, probe_options);
    dead_port = probe.listen_port();
  }
  ASSERT_NE(dead_port, 0);

  client.transport->dial(NodeId(5), loopback_addr(dead_port));
  run_until(rt, 5 * kSeconds, [&] {
    return client.transport->counters().dial_failures.load() > 0;
  });
  EXPECT_EQ(client.transport->counters().dial_failures.load(), 1u);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0], NodeId(5));
  EXPECT_FALSE(client.transport->connected_to(NodeId(5)));
  EXPECT_FALSE(client.transport->dialing(NodeId(5)));
}

TEST(StreamTransport, SendWithoutRouteReturnsFalse) {
  runtime::RealTimeRuntime rt(1);
  StreamPeer client(rt, /*listen=*/false);
  EXPECT_FALSE(client.transport->send(sample_message()));
}

// ---- DualTransport policy --------------------------------------------------

TEST(DualTransport, OversizedSendWithoutStreamSideIsDroppedAndCounted) {
  runtime::RealTimeRuntime rt(1);
  UdpTransport udp(rt, {});
  DualTransport dual(rt, udp, nullptr, {});
  Message msg;
  msg.src = NodeId(1);
  msg.dst = NodeId(2);
  msg.type = 0x0301;
  msg.payload = Payload(Bytes(kMaxFramePayload + 1, 0xEE));
  dual.send(msg);
  EXPECT_EQ(dual.dropped_no_stream(), 1u);
  EXPECT_EQ(udp.total_sent(), 0u) << "an oversized payload must never be "
                                     "handed to the datagram socket";
}

TEST(DualTransport, PreferredTypeFallsBackToUdpAgainstStreamlessPeer) {
  runtime::RealTimeRuntime rt(1);
  UdpTransport udp_a(rt, {});
  UdpTransport udp_b(rt, {});
  StreamTransport stream_a(rt, {});  // dial-only, never used here
  DualTransport::Options options;
  options.prefer_stream = [](std::uint16_t type) { return type == 0x0301; };
  DualTransport dual_a(rt, udp_a, &stream_a, std::move(options));

  // b is known by UDP address only — no gossiped stream port.
  udp_a.add_peer(NodeId(2), "127.0.0.1", udp_b.local_port());

  std::vector<Message> received;
  udp_b.register_handler(NodeId(2), [&](const Message& msg) {
    received.push_back(msg);
    rt.stop();
  });

  Message msg;
  msg.src = NodeId(1);
  msg.dst = NodeId(2);
  msg.type = 0x0301;
  msg.payload = Payload(Bytes{4, 5, 6});
  dual_a.send(msg);
  rt.run_for(2 * kSeconds);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].payload, msg.payload);
  EXPECT_EQ(stream_a.counters().dialed.load(), 0u)
      << "no stream port advertised, so no dial may be attempted";
}

/// Full dual wiring on both ends, mirroring ShardGroup (server) and the CLI
/// (client): the server listens and advertises its stream port; the client
/// learns it via a gossiped endpoint.
struct DualPeer {
  DualPeer(runtime::RealTimeRuntime& rt, NodeId id, bool listen,
           std::size_t max_learned = 1024) {
    StreamTransport::Options stream_options;
    stream_options.listen = listen;
    stream_options.listen_ip = kLoopbackIp;
    stream = std::make_unique<StreamTransport>(rt, stream_options);

    UdpTransport::Options udp_options;
    udp_options.max_learned_peers = max_learned;
    udp_options.advertise_stream_port = stream->listen_port();
    udp = std::make_unique<UdpTransport>(rt, udp_options);

    DualTransport::Options dual_options;
    dual_options.prefer_stream = [](std::uint16_t type) {
      return type == 0x0310;
    };
    dual = std::make_unique<DualTransport>(rt, *udp, stream.get(),
                                           std::move(dual_options));
    dual->register_handler(id, [this](const Message& msg) {
      received.push_back(msg);
    });
  }

  std::unique_ptr<StreamTransport> stream;
  std::unique_ptr<UdpTransport> udp;
  std::unique_ptr<DualTransport> dual;
  std::vector<Message> received;
};

TEST(DualTransport, OversizedDialsAdvertisedPortAndReplyRidesBack) {
  runtime::RealTimeRuntime rt(1);
  DualPeer server(rt, NodeId(2), /*listen=*/true);
  DualPeer client(rt, NodeId(1), /*listen=*/false);

  // The gossiped endpoint carries both ports; learning it is all the client
  // needs to reach the server over either transport.
  client.udp->learn_endpoint(
      NodeId(2), Endpoint{kLoopbackIp, server.udp->local_port(), 5,
                          server.stream->listen_port()});

  Bytes big(1024 * 1024);
  Rng rng(0x77);
  for (auto& b : big) b = static_cast<std::uint8_t>(rng.next_below(256));
  Message request;
  request.src = NodeId(1);
  request.dst = NodeId(2);
  request.type = 0x0301;
  request.payload = Payload(big);
  client.dual->send(request);  // held while the dial resolves, then flushed

  run_until(rt, 5 * kSeconds, [&] { return !server.received.empty(); });
  ASSERT_EQ(server.received.size(), 1u);
  EXPECT_EQ(server.received[0].payload, request.payload);

  // Oversized reply: the server has no datagram address for the client (the
  // request arrived on a stream), so the reply must ride the same
  // connection back.
  Message reply;
  reply.src = NodeId(2);
  reply.dst = NodeId(1);
  reply.type = 0x0302;
  reply.payload = Payload(Bytes(kMaxFramePayload + 77, 0x42));
  server.dual->send(reply);
  run_until(rt, 5 * kSeconds, [&] { return !client.received.empty(); });
  ASSERT_EQ(client.received.size(), 1u);
  EXPECT_EQ(client.received[0].payload, reply.payload);

  // Connected streams raise the payload ceiling the chunkers consult.
  EXPECT_EQ(client.dual->max_payload(NodeId(2)), kMaxStreamPayload);
  EXPECT_EQ(client.dual->max_payload(NodeId(99)), kMaxFramePayload);
  EXPECT_EQ(client.dual->dropped_no_stream(), 0u);
  EXPECT_EQ(server.dual->dropped_no_stream(), 0u);
}

TEST(DualTransport, MaintenanceStaysOnUdpDespiteOpenStream) {
  runtime::RealTimeRuntime rt(1);
  DualPeer server(rt, NodeId(2), /*listen=*/true);
  DualPeer client(rt, NodeId(1), /*listen=*/false);
  client.udp->learn_endpoint(
      NodeId(2), Endpoint{kLoopbackIp, server.udp->local_port(), 5,
                          server.stream->listen_port()});

  // Open the stream with a preferred-type message first.
  Message envelope;
  envelope.src = NodeId(1);
  envelope.dst = NodeId(2);
  envelope.type = 0x0310;
  envelope.payload = Payload(Bytes{1});
  client.dual->send(envelope);
  run_until(rt, 5 * kSeconds,
            [&] { return client.stream->connected_to(NodeId(2)); });
  ASSERT_TRUE(client.stream->connected_to(NodeId(2)));
  run_until(rt, 5 * kSeconds, [&] { return !server.received.empty(); });

  // A gossip-range message must still travel as a datagram.
  const auto stream_frames_before =
      client.stream->counters().io.frames_out.load();
  Message shuffle;
  shuffle.src = NodeId(1);
  shuffle.dst = NodeId(2);
  shuffle.type = 0x0100;
  shuffle.payload = Payload(Bytes{2, 2});
  client.dual->send(shuffle);
  run_until(rt, 5 * kSeconds, [&] { return server.received.size() >= 2; });
  ASSERT_EQ(server.received.size(), 2u);
  EXPECT_EQ(server.received[1].type, 0x0100);
  EXPECT_EQ(client.stream->counters().io.frames_out.load(),
            stream_frames_before)
      << "maintenance traffic must not ride the stream";
  EXPECT_GE(server.udp->total_delivered(), 1u);
}

TEST(DualTransport, AddressBookEvictionClosesCachedConnection) {
  runtime::RealTimeRuntime rt(1);
  DualPeer server(rt, NodeId(7), /*listen=*/true);
  // A client whose learned-address table holds exactly one entry: learning a
  // second peer must evict the first — and close its stream, or the fd
  // would leak until process exit.
  DualPeer client(rt, NodeId(1), /*listen=*/false, /*max_learned=*/1);
  client.udp->learn_endpoint(
      NodeId(7), Endpoint{kLoopbackIp, server.udp->local_port(), 5,
                          server.stream->listen_port()});

  Message envelope;
  envelope.src = NodeId(1);
  envelope.dst = NodeId(7);
  envelope.type = 0x0310;
  envelope.payload = Payload(Bytes{3});
  client.dual->send(envelope);
  run_until(rt, 5 * kSeconds,
            [&] { return client.stream->connected_to(NodeId(7)); });
  ASSERT_TRUE(client.stream->connected_to(NodeId(7)));
  ASSERT_EQ(client.stream->connection_count(), 1u);

  // Learning an unrelated peer overflows the one-entry table and evicts
  // NodeId(7); the eviction listener must tear the connection down.
  client.udp->learn_endpoint(NodeId(8), Endpoint{kLoopbackIp, 1, 6});
  EXPECT_FALSE(client.stream->connected_to(NodeId(7)));
  EXPECT_EQ(client.stream->connection_count(), 0u)
      << "evicted peer's cached connection must close, not leak its fd";
}

}  // namespace
}  // namespace dataflasks::net
