// Slicing tests: key/rank mapping, config epochs, and convergence of both
// slicing protocols (OrderedSlicing, Sliver) to attribute-ordered slices —
// the property DataFlasks' data distribution rests on (§IV-A).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "pss/cyclon.hpp"
#include "slicing/ordered_slicing.hpp"
#include "slicing/slice_map.hpp"
#include "slicing/sliver.hpp"
#include "test_util.hpp"

namespace dataflasks::slicing {
namespace {

using testing::SimBundle;

// ---- slice mapping -----------------------------------------------------------

TEST(SliceMap, KeyToSliceInRangeAndStable) {
  for (std::uint32_t k : {1u, 2u, 10u, 60u}) {
    for (int i = 0; i < 200; ++i) {
      const Key key = "key" + std::to_string(i);
      const SliceId s = key_to_slice(key, k);
      EXPECT_LT(s, k);
      EXPECT_EQ(s, key_to_slice(key, k));
    }
  }
}

TEST(SliceMap, KeysSpreadAcrossSlices) {
  constexpr std::uint32_t kSlices = 10;
  std::map<SliceId, int> counts;
  for (int i = 0; i < 10000; ++i) {
    ++counts[key_to_slice("user" + std::to_string(i), kSlices)];
  }
  EXPECT_EQ(counts.size(), kSlices);
  for (const auto& [slice, count] : counts) {
    EXPECT_NEAR(count, 1000, 150);
  }
}

TEST(SliceMap, RankToSliceBoundaries) {
  EXPECT_EQ(rank_to_slice(0.0, 10), 0u);
  EXPECT_EQ(rank_to_slice(0.05, 10), 0u);
  EXPECT_EQ(rank_to_slice(0.15, 10), 1u);
  EXPECT_EQ(rank_to_slice(0.95, 10), 9u);
  EXPECT_EQ(rank_to_slice(1.0, 10), 9u);   // clamped to last slice
  EXPECT_EQ(rank_to_slice(-0.5, 10), 0u);  // clamped up
  EXPECT_EQ(rank_to_slice(0.7, 1), 0u);
}

TEST(SliceConfigTest, EpochOrdering) {
  SliceConfig a{10, 1}, b{20, 2}, c{30, 1};
  EXPECT_TRUE(a.superseded_by(b));
  EXPECT_FALSE(b.superseded_by(a));
  EXPECT_FALSE(a.superseded_by(c));  // same epoch: no change
}

// ---- protocol harness ------------------------------------------------------------

struct SlicingNode {
  std::unique_ptr<pss::Cyclon> pss;
  std::unique_ptr<Slicer> slicer;
  double attribute;
};

std::vector<SlicingNode> make_slicing_overlay(SimBundle& bundle,
                                              std::size_t count,
                                              const std::string& kind,
                                              SliceConfig config) {
  std::vector<SlicingNode> nodes(count);
  Rng seeder(99);
  for (std::size_t i = 0; i < count; ++i) {
    // Attribute = node index => ideal slice is index * k / count.
    nodes[i].attribute = static_cast<double>(i);
    nodes[i].pss = std::make_unique<pss::Cyclon>(
        NodeId(i), *bundle.transport, Rng(seeder.next_u64()),
        pss::CyclonOptions{});
    if (kind == "ordered") {
      nodes[i].slicer = std::make_unique<OrderedSlicing>(
          NodeId(i), nodes[i].attribute, *bundle.transport, *nodes[i].pss,
          Rng(seeder.next_u64()), config);
    } else {
      nodes[i].slicer = std::make_unique<Sliver>(
          NodeId(i), nodes[i].attribute, *bundle.transport, *nodes[i].pss,
          Rng(seeder.next_u64()), config);
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    nodes[i].pss->bootstrap({NodeId((i + 1) % count), NodeId((i + 7) % count)});
    auto* node = &nodes[i];
    bundle.transport->register_handler(
        NodeId(i), [node](const net::Message& msg) {
          if (node->pss->handle(msg)) return;
          node->slicer->handle(msg);
        });
    bundle.simulator.schedule_periodic(
        bundle.simulator.rng().next_in(0, kSeconds), kSeconds, [node]() {
          node->pss->tick();
          node->slicer->tick();
        });
  }
  return nodes;
}

/// Mean |rank_estimate - ideal_rank| over all nodes.
double mean_rank_error(const std::vector<SlicingNode>& nodes) {
  double total = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double ideal =
        static_cast<double>(i) / static_cast<double>(nodes.size());
    total += std::abs(nodes[i].slicer->rank_estimate() - ideal);
  }
  return total / static_cast<double>(nodes.size());
}

/// Fraction of nodes whose slice matches the ideal attribute-ordered slice.
double slice_accuracy(const std::vector<SlicingNode>& nodes,
                      std::uint32_t k) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double ideal_rank =
        static_cast<double>(i) / static_cast<double>(nodes.size());
    if (nodes[i].slicer->slice() == rank_to_slice(ideal_rank, k)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(nodes.size());
}

class SlicerConvergenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SlicerConvergenceTest, RanksConvergeTowardIdeal) {
  SimBundle bundle(7);
  auto nodes = make_slicing_overlay(bundle, 100, GetParam(), {10, 1});
  bundle.run_for(120 * kSeconds);
  // Sliver converges tightly; ordered slicing's swap walk is slower/noisier.
  const double tolerance = std::string(GetParam()) == "sliver" ? 0.05 : 0.15;
  EXPECT_LT(mean_rank_error(nodes), tolerance);
}

TEST_P(SlicerConvergenceTest, MajorityLandInCorrectSlice) {
  SimBundle bundle(8);
  constexpr std::uint32_t kSlices = 5;
  auto nodes = make_slicing_overlay(bundle, 100, GetParam(), {kSlices, 1});
  bundle.run_for(120 * kSeconds);
  const double threshold = std::string(GetParam()) == "sliver" ? 0.8 : 0.5;
  EXPECT_GT(slice_accuracy(nodes, kSlices), threshold);
}

TEST_P(SlicerConvergenceTest, SlicesArePopulatedEvenly) {
  SimBundle bundle(9);
  constexpr std::uint32_t kSlices = 4;
  auto nodes = make_slicing_overlay(bundle, 80, GetParam(), {kSlices, 1});
  bundle.run_for(120 * kSeconds);
  std::map<SliceId, int> histogram;
  for (const auto& node : nodes) ++histogram[node.slicer->slice()];
  ASSERT_EQ(histogram.size(), kSlices);
  for (const auto& [slice, count] : histogram) {
    EXPECT_NEAR(count, 20, 10) << "slice " << slice;
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, SlicerConvergenceTest,
                         ::testing::Values("sliver", "ordered"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---- dynamic reconfiguration -------------------------------------------------------

TEST(DynamicConfig, EpochSpreadsEpidemically) {
  SimBundle bundle(10);
  auto nodes = make_slicing_overlay(bundle, 60, "sliver", {10, 1});
  bundle.run_for(60 * kSeconds);

  // One node proposes k=20 with a newer epoch.
  nodes[0].slicer->adopt_config({20, 2});
  bundle.run_for(60 * kSeconds);

  for (const auto& node : nodes) {
    EXPECT_EQ(node.slicer->config().slice_count, 20u);
    EXPECT_EQ(node.slicer->config().epoch, 2u);
  }
}

TEST(DynamicConfig, StaleEpochIsIgnored) {
  SimBundle bundle(11);
  auto nodes = make_slicing_overlay(bundle, 20, "sliver", {10, 5});
  nodes[0].slicer->adopt_config({99, 3});  // older epoch
  EXPECT_EQ(nodes[0].slicer->config().slice_count, 10u);
}

TEST(DynamicConfig, SliceChangeListenerFiresOnReshard) {
  SimBundle bundle(12);
  auto nodes = make_slicing_overlay(bundle, 40, "sliver", {2, 1});
  bundle.run_for(60 * kSeconds);

  int changes = 0;
  for (auto& node : nodes) {
    node.slicer->set_slice_change_listener(
        [&changes](SliceId, SliceId) { ++changes; });
  }
  // Re-shard 2 -> 16: most nodes must move slice.
  nodes[0].slicer->adopt_config({16, 2});
  bundle.run_for(60 * kSeconds);
  EXPECT_GT(changes, 20);
}

// ---- Sliver specifics ----------------------------------------------------------------

TEST(SliverTest, RankWithNoObservationsIsMiddle) {
  SimBundle bundle(13);
  pss::Cyclon pss(NodeId(0), *bundle.transport, Rng(1), {});
  Sliver sliver(NodeId(0), 5.0, *bundle.transport, pss, Rng(2), {10, 1});
  EXPECT_DOUBLE_EQ(sliver.rank_estimate(), 0.5);
}

TEST(SliverTest, EqualAttributesGetDistinctRanksViaIdTiebreak) {
  SimBundle bundle(14);
  // Two nodes, identical attribute: ranks must differ via id ordering.
  pss::Cyclon pss0(NodeId(0), *bundle.transport, Rng(1), {});
  pss::Cyclon pss1(NodeId(1), *bundle.transport, Rng(2), {});
  Sliver s0(NodeId(0), 7.0, *bundle.transport, pss0, Rng(3), {2, 1});
  Sliver s1(NodeId(1), 7.0, *bundle.transport, pss1, Rng(4), {2, 1});
  s0.set_slice_hysteresis(1);  // no damping: observe one slice move directly
  s1.set_slice_hysteresis(1);

  // Hand-feed observations of each other.
  Writer w0;
  w0.node_id(NodeId(1));
  w0.f64(7.0);
  w0.u32(2);
  w0.u64(1);
  s0.handle(net::Message{NodeId(1), NodeId(0), kSliverSampleReply, w0.take()});

  Writer w1;
  w1.node_id(NodeId(0));
  w1.f64(7.0);
  w1.u32(2);
  w1.u64(1);
  s1.handle(net::Message{NodeId(0), NodeId(1), kSliverSampleReply, w1.take()});

  EXPECT_LT(s0.rank_estimate(), s1.rank_estimate());
  EXPECT_NE(s0.slice(), s1.slice());
}

TEST(SliverTest, ObservationWindowIsBounded) {
  SimBundle bundle(15);
  pss::Cyclon pss(NodeId(0), *bundle.transport, Rng(1), {});
  SliverOptions opts;
  opts.window_capacity = 16;
  Sliver sliver(NodeId(0), 5.0, *bundle.transport, pss, Rng(2), {10, 1}, opts);

  for (int i = 1; i <= 100; ++i) {
    Writer w;
    w.node_id(NodeId(i));
    w.f64(static_cast<double>(i));
    w.u32(10);
    w.u64(1);
    sliver.handle(
        net::Message{NodeId(i), NodeId(0), kSliverSampleReply, w.take()});
  }
  sliver.tick();  // triggers expiry/bounding
  EXPECT_LE(sliver.observation_count(), opts.window_capacity);
}

}  // namespace
}  // namespace dataflasks::slicing
