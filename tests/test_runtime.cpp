// Unit tests for the runtime abstraction: the generic scheduling surface
// (shared by Simulator and RealTimeRuntime) and the real-clock event loop —
// timer ordering, periodic re-arming and cancellation, wall-clock
// progression, fd watching through the poll step, and stop() semantics.
// Wall-clock waits are kept to a few milliseconds so the suite stays fast.
#include <gtest/gtest.h>
#include <unistd.h>

#include <vector>

#include "runtime/real_time_runtime.hpp"
#include "runtime/runtime.hpp"

namespace dataflasks::runtime {
namespace {

TEST(RealTimeRuntime, NowAdvancesWithTheWallClock) {
  RealTimeRuntime rt(1);
  const SimTime before = rt.now();
  ::usleep(2000);
  const SimTime after = rt.now();
  EXPECT_GE(after - before, 1 * kMillis);
}

TEST(RealTimeRuntime, TimersFireInOrder) {
  RealTimeRuntime rt(1);
  std::vector<int> order;
  rt.schedule_after(4 * kMillis, [&]() { order.push_back(2); });
  rt.schedule_after(1 * kMillis, [&]() { order.push_back(1); });
  rt.post_after(8 * kMillis, [&]() {
    order.push_back(3);
    rt.stop();
  });
  rt.run_for(500 * kMillis);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RealTimeRuntime, OverdueTimerFiresImmediately) {
  RealTimeRuntime rt(1);
  bool fired = false;
  // Scheduling "at 0" is already in the past by the time run() starts; the
  // real-clock loop must fire it instead of asserting like the simulator.
  rt.schedule_at(0, [&]() {
    fired = true;
    rt.stop();
  });
  rt.run_for(100 * kMillis);
  EXPECT_TRUE(fired);
}

TEST(RealTimeRuntime, CancelledTimerDoesNotFire) {
  RealTimeRuntime rt(1);
  bool fired = false;
  TimerHandle handle =
      rt.schedule_after(1 * kMillis, [&]() { fired = true; });
  EXPECT_TRUE(handle.active());
  handle.cancel();
  EXPECT_FALSE(handle.active());
  rt.run_for(5 * kMillis);
  EXPECT_FALSE(fired);
}

TEST(RealTimeRuntime, PeriodicTimerRearmsUntilCancelled) {
  RealTimeRuntime rt(1);
  int fired = 0;
  TimerHandle handle;
  handle = rt.schedule_periodic(0, 1 * kMillis, [&]() {
    if (++fired == 3) {
      handle.cancel();
      rt.stop();
    }
  });
  rt.run_for(500 * kMillis);
  EXPECT_EQ(fired, 3);
  // The cancelled periodic must not come back.
  rt.run_for(5 * kMillis);
  EXPECT_EQ(fired, 3);
}

TEST(RealTimeRuntime, RunUntilReturnsAtDeadline) {
  RealTimeRuntime rt(1);
  const SimTime start = rt.now();
  rt.run_until(start + 5 * kMillis);
  EXPECT_GE(rt.now(), start + 5 * kMillis);
  // Nothing was scheduled, so no events executed — it just slept.
  EXPECT_EQ(rt.pending_events(), 0u);
}

TEST(RealTimeRuntime, WatchedFdDispatchesOnReadability) {
  RealTimeRuntime rt(1);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int reads = 0;
  rt.watch_fd(fds[0], [&]() {
    char buf[16];
    (void)::read(fds[0], buf, sizeof buf);
    ++reads;
    rt.stop();
  });
  EXPECT_EQ(rt.watched_fds(), 1u);

  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  rt.run_for(500 * kMillis);
  EXPECT_EQ(reads, 1);

  rt.unwatch_fd(fds[0]);
  EXPECT_EQ(rt.watched_fds(), 0u);
  ASSERT_EQ(::write(fds[1], "y", 1), 1);
  rt.run_for(2 * kMillis);
  EXPECT_EQ(reads, 1);  // unwatched: no further dispatch

  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(RealTimeRuntime, TimersInterleaveWithIo) {
  RealTimeRuntime rt(1);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  bool io_seen = false;
  bool timer_seen = false;
  rt.watch_fd(fds[0], [&]() {
    char buf[4];
    (void)::read(fds[0], buf, sizeof buf);
    io_seen = true;
  });
  rt.schedule_after(2 * kMillis, [&]() { timer_seen = true; });
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  rt.run_for(20 * kMillis);
  EXPECT_TRUE(io_seen);
  EXPECT_TRUE(timer_seen);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(RealTimeRuntime, RngForksIndependentStreams) {
  RealTimeRuntime rt(42);
  Rng a = rt.rng().fork(1);
  Rng b = rt.rng().fork(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace dataflasks::runtime
