// AddressBook semantics: the three feed paths (pin / learn / observe) and
// their authority rules — pinned survives datagram-source noise, a fresher
// gossip stamp heals anything, learned entries are LRU-bounded so
// ephemeral-port clients cannot grow the table forever.
#include <arpa/inet.h>
#include <gtest/gtest.h>

#include <vector>

#include "net/address_book.hpp"

namespace dataflasks::net {
namespace {

sockaddr_in addr_of(std::uint32_t ip, std::uint16_t port) {
  return to_sockaddr(Endpoint{ip, port, 0});
}

constexpr std::uint32_t kLoopback = 0x7F000001;  // 127.0.0.1

TEST(AddressBook, EndpointSockaddrRoundTrip) {
  const Endpoint endpoint{kLoopback, 7123, 55};
  const sockaddr_in addr = to_sockaddr(endpoint);
  const Endpoint back = endpoint_of(addr, 55);
  EXPECT_EQ(back, endpoint);
  EXPECT_EQ(to_string(back), "127.0.0.1:7123");
}

TEST(AddressBook, PinThenLookup) {
  AddressBook book;
  EXPECT_FALSE(book.contains(NodeId(1)));
  EXPECT_EQ(book.lookup(NodeId(1)), nullptr);

  book.pin(NodeId(1), addr_of(kLoopback, 7100));
  ASSERT_NE(book.lookup(NodeId(1)), nullptr);
  EXPECT_EQ(book.port_of(NodeId(1)), 7100);
  EXPECT_TRUE(book.pinned(NodeId(1)));
  EXPECT_EQ(book.learned_count(), 0u);
}

TEST(AddressBook, ObserveInsertsAndRefreshesLearnedEntries) {
  AddressBook book;
  book.observe(NodeId(9), addr_of(kLoopback, 5000));
  EXPECT_EQ(book.port_of(NodeId(9)), 5000);
  EXPECT_FALSE(book.pinned(NodeId(9)));

  // Live datagram evidence moves a learned entry.
  book.observe(NodeId(9), addr_of(kLoopback, 5001));
  EXPECT_EQ(book.port_of(NodeId(9)), 5001);
}

TEST(AddressBook, ObserveNeverDisplacesGossipStampedEntries) {
  AddressBook book;
  ASSERT_TRUE(book.learn(NodeId(4), Endpoint{kLoopback, 9000, 30}));
  // A delayed datagram from the node's dead pre-restart socket (or a forged
  // src) must not reroute an address gossip authoritatively set: if it
  // did, gossip at the same stamp could never re-assert the truth.
  book.observe(NodeId(4), addr_of(kLoopback, 9999));
  EXPECT_EQ(book.port_of(NodeId(4)), 9000);
  EXPECT_EQ(book.stamp_of(NodeId(4)), 30u);
  // A strictly fresher stamp still heals it.
  EXPECT_TRUE(book.learn(NodeId(4), Endpoint{kLoopback, 9100, 31}));
  EXPECT_EQ(book.port_of(NodeId(4)), 9100);
}

TEST(AddressBook, ObserveNeverClobbersPinned) {
  AddressBook book;
  book.pin(NodeId(1), addr_of(kLoopback, 7100));
  // A datagram claiming to be node 1 from elsewhere (stale socket,
  // misconfigured process) must not reroute the configured address.
  book.observe(NodeId(1), addr_of(kLoopback, 6666));
  EXPECT_EQ(book.port_of(NodeId(1)), 7100);
  EXPECT_TRUE(book.pinned(NodeId(1)));
}

TEST(AddressBook, FresherStampHealsEvenPinned) {
  AddressBook book;
  book.pin(NodeId(1), addr_of(kLoopback, 7100));
  // The node itself gossips a new address with a boot stamp: authoritative.
  EXPECT_TRUE(book.learn(NodeId(1), Endpoint{kLoopback, 7200, 10}));
  EXPECT_EQ(book.port_of(NodeId(1)), 7200);
  EXPECT_TRUE(book.pinned(NodeId(1)));  // still eviction/observe-immune
  EXPECT_EQ(book.stamp_of(NodeId(1)), 10u);
}

TEST(AddressBook, StaleStampIsIgnored) {
  AddressBook book;
  ASSERT_TRUE(book.learn(NodeId(2), Endpoint{kLoopback, 8000, 20}));
  EXPECT_FALSE(book.learn(NodeId(2), Endpoint{kLoopback, 8100, 20}));
  EXPECT_FALSE(book.learn(NodeId(2), Endpoint{kLoopback, 8200, 5}));
  EXPECT_EQ(book.port_of(NodeId(2)), 8000);
  EXPECT_EQ(book.stamp_of(NodeId(2)), 20u);

  EXPECT_TRUE(book.learn(NodeId(2), Endpoint{kLoopback, 8300, 21}));
  EXPECT_EQ(book.port_of(NodeId(2)), 8300);
}

TEST(AddressBook, InvalidEndpointIsRejected) {
  AddressBook book;
  EXPECT_FALSE(book.learn(NodeId(3), Endpoint{kLoopback, 0, 99}));
  EXPECT_FALSE(book.contains(NodeId(3)));
}

TEST(AddressBook, LearnedEntriesAreLruBounded) {
  AddressBook book(AddressBook::Options{/*max_learned=*/3});
  book.pin(NodeId(100), addr_of(kLoopback, 7100));
  book.pin(NodeId(101), addr_of(kLoopback, 7101));

  // Five ephemeral-port clients roll through; only the three most recently
  // seen survive, and both pinned entries are untouched.
  for (std::uint64_t i = 0; i < 5; ++i) {
    book.observe(NodeId(i), addr_of(kLoopback, static_cast<std::uint16_t>(
                                                   5000 + i)));
  }
  EXPECT_EQ(book.learned_count(), 3u);
  EXPECT_EQ(book.size(), 5u);
  EXPECT_FALSE(book.contains(NodeId(0)));
  EXPECT_FALSE(book.contains(NodeId(1)));
  EXPECT_TRUE(book.contains(NodeId(2)));
  EXPECT_TRUE(book.contains(NodeId(3)));
  EXPECT_TRUE(book.contains(NodeId(4)));
  EXPECT_TRUE(book.contains(NodeId(100)));
  EXPECT_TRUE(book.contains(NodeId(101)));
}

TEST(AddressBook, EvictionPrefersLeastRecentlyRefreshed) {
  AddressBook book(AddressBook::Options{/*max_learned=*/2});
  book.observe(NodeId(1), addr_of(kLoopback, 5001));
  book.observe(NodeId(2), addr_of(kLoopback, 5002));
  // Refresh node 1 so node 2 becomes the LRU victim.
  book.observe(NodeId(1), addr_of(kLoopback, 5001));
  book.observe(NodeId(3), addr_of(kLoopback, 5003));
  EXPECT_TRUE(book.contains(NodeId(1)));
  EXPECT_FALSE(book.contains(NodeId(2)));
  EXPECT_TRUE(book.contains(NodeId(3)));
}

TEST(AddressBook, LearnsGossippedStreamPort) {
  AddressBook book;
  ASSERT_TRUE(book.learn(NodeId(6), Endpoint{kLoopback, 9000, 30, 9500}));
  EXPECT_EQ(book.stream_port_of(NodeId(6)), 9500);

  const auto dial = book.stream_addr_of(NodeId(6));
  ASSERT_TRUE(dial.has_value());
  // The dial address is the entry's IP with the TCP port swapped in.
  EXPECT_EQ(ntohl(dial->sin_addr.s_addr), kLoopback);
  EXPECT_EQ(ntohs(dial->sin_port), 9500);

  // A fresher stamp without a stream port means the node restarted
  // stream-less: the old TCP port must not survive the update.
  EXPECT_TRUE(book.learn(NodeId(6), Endpoint{kLoopback, 9000, 31}));
  EXPECT_EQ(book.stream_port_of(NodeId(6)), 0);
  EXPECT_FALSE(book.stream_addr_of(NodeId(6)).has_value());
}

TEST(AddressBook, StreamAddrAbsentForUdpOnlyOrUnknownPeers) {
  AddressBook book;
  EXPECT_FALSE(book.stream_addr_of(NodeId(404)).has_value());
  EXPECT_EQ(book.stream_port_of(NodeId(404)), 0);

  book.pin(NodeId(1), addr_of(kLoopback, 7100));
  EXPECT_FALSE(book.stream_addr_of(NodeId(1)).has_value())
      << "a pinned UDP address advertises no stream port";
}

TEST(AddressBook, EvictListenerFiresOnLruEviction) {
  AddressBook book(AddressBook::Options{/*max_learned=*/2});
  std::vector<NodeId> evicted;
  book.set_evict_listener([&](NodeId node) { evicted.push_back(node); });

  book.observe(NodeId(1), addr_of(kLoopback, 5001));
  book.observe(NodeId(2), addr_of(kLoopback, 5002));
  EXPECT_TRUE(evicted.empty());

  book.observe(NodeId(3), addr_of(kLoopback, 5003));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], NodeId(1));
  EXPECT_FALSE(book.contains(NodeId(1)))
      << "the listener must observe the entry already gone";

  // Refreshes and pinned inserts never evict, so never fire the listener.
  book.observe(NodeId(2), addr_of(kLoopback, 5002));
  book.pin(NodeId(100), addr_of(kLoopback, 7100));
  EXPECT_EQ(evicted.size(), 1u);
}

}  // namespace
}  // namespace dataflasks::net
