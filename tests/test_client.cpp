// Client library tests: load balancer policies in isolation, then the full
// client against a real cluster — acks, multi-reply deduplication (paper
// §V), timeouts and retries.
#include <gtest/gtest.h>

#include <set>

#include "client/client.hpp"
#include "client/load_balancer.hpp"
#include "client/session.hpp"
#include "harness/cluster.hpp"
#include "test_util.hpp"

namespace dataflasks::client {
namespace {

// ---- load balancers -------------------------------------------------------------

TEST(RandomLB, PicksFromNodeList) {
  RandomLoadBalancer lb({NodeId(1), NodeId(2), NodeId(3)}, Rng(1));
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(lb.pick_contact(std::nullopt).value);
  EXPECT_EQ(seen, (std::set<std::uint64_t>{1, 2, 3}));
}

TEST(RandomLB, EmptyListRejected) {
  EXPECT_THROW(RandomLoadBalancer({}, Rng(1)), InvariantViolation);
}

TEST(SliceCacheLB, UsesCachedReplicaForKnownSlice) {
  SliceCacheLoadBalancer lb({NodeId(1), NodeId(2), NodeId(3)}, Rng(1));
  lb.observe_replica(NodeId(2), /*slice=*/7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(lb.pick_contact(SliceId{7}), NodeId(2));
  }
  EXPECT_EQ(lb.cache_hits(), 20u);
}

TEST(SliceCacheLB, FallsBackToRandomOnMiss) {
  SliceCacheLoadBalancer lb({NodeId(1), NodeId(2)}, Rng(1));
  const NodeId pick = lb.pick_contact(SliceId{9});
  EXPECT_TRUE(pick == NodeId(1) || pick == NodeId(2));
  EXPECT_EQ(lb.cache_misses(), 1u);
}

TEST(SliceCacheLB, UnreachableNodeEvicted) {
  SliceCacheLoadBalancer lb({NodeId(1), NodeId(2)}, Rng(1));
  lb.observe_replica(NodeId(1), 3);
  lb.observe_replica(NodeId(1), 4);
  EXPECT_EQ(lb.cache_size(), 2u);
  lb.node_unreachable(NodeId(1));
  EXPECT_EQ(lb.cache_size(), 0u);
}

// ---- client against a live cluster ------------------------------------------------

harness::ClusterOptions small_cluster_options(std::uint64_t seed = 7) {
  harness::ClusterOptions opts;
  opts.node_count = 60;
  opts.seed = seed;
  opts.node.slice_config = {4, 1};
  return opts;
}

class ClientClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<harness::Cluster>(small_cluster_options());
    cluster_->start_all();
    cluster_->run_for(60 * kSeconds);  // converge PSS + slicing + views
  }

  std::unique_ptr<harness::Cluster> cluster_;
};

TEST_F(ClientClusterTest, PutIsAcknowledged) {
  auto& client = cluster_->add_client();
  PutResult result;
  client.put("hello", Bytes{1, 2, 3}, 1,
             [&](const PutResult& r) { result = r; });
  cluster_->run_for(10 * kSeconds);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.key, "hello");
  EXPECT_EQ(result.version, 1u);
  EXPECT_GT(result.latency, 0);
}

TEST_F(ClientClusterTest, GetReturnsWhatWasPut) {
  auto& client = cluster_->add_client();
  client.put("k1", Bytes{0xAA, 0xBB}, 1, nullptr);
  cluster_->run_for(10 * kSeconds);

  GetResult result;
  client.get("k1", std::nullopt, [&](const GetResult& r) { result = r; });
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.object.value, (Bytes{0xAA, 0xBB}));
  EXPECT_EQ(result.object.version, 1u);
}

TEST_F(ClientClusterTest, GetSpecificVersion) {
  auto& client = cluster_->add_client();
  client.put("multi", Bytes{1}, 1, nullptr);
  client.put("multi", Bytes{2}, 2, nullptr);
  cluster_->run_for(15 * kSeconds);

  GetResult v1, latest;
  client.get("multi", Version{1}, [&](const GetResult& r) { v1 = r; });
  client.get("multi", std::nullopt, [&](const GetResult& r) { latest = r; });
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(v1.ok);
  EXPECT_EQ(v1.object.value, Bytes{1});
  ASSERT_TRUE(latest.ok);
  EXPECT_EQ(latest.object.version, 2u);
}

TEST_F(ClientClusterTest, PutAutoStampsMonotonicVersions) {
  auto& client = cluster_->add_client();
  const Version v1 = client.put_auto("auto", Bytes{1}, nullptr);
  const Version v2 = client.put_auto("auto", Bytes{2}, nullptr);
  EXPECT_LT(v1, v2);
  cluster_->run_for(10 * kSeconds);

  GetResult result;
  client.get("auto", v2, [&](const GetResult& r) { result = r; });
  cluster_->run_for(10 * kSeconds);
  EXPECT_TRUE(result.ok);
}

TEST_F(ClientClusterTest, MissingKeyTimesOutAfterRetries) {
  ClientOptions opts;
  opts.request_timeout = 2 * kSeconds;
  opts.max_attempts = 2;
  auto& client = cluster_->add_client(opts);

  GetResult result;
  result.ok = true;
  client.get("never_written", std::nullopt,
             [&](const GetResult& r) { result = r; });
  cluster_->run_for(30 * kSeconds);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_EQ(client.metrics().counter_value("client.get_failures"), 1u);
}

TEST_F(ClientClusterTest, DuplicateRepliesAreAbsorbed) {
  auto& client = cluster_->add_client();
  // Write, wait for replication so several members hold the object...
  client.put("dup", Bytes{7}, 1, nullptr);
  cluster_->run_for(20 * kSeconds);

  // ...then read repeatedly: epidemic dissemination can produce several
  // replies per request; exactly one callback per get must fire.
  int callbacks = 0;
  for (int i = 0; i < 5; ++i) {
    client.get("dup", std::nullopt, [&](const GetResult&) { ++callbacks; });
  }
  cluster_->run_for(15 * kSeconds);
  EXPECT_EQ(callbacks, 5);
  EXPECT_EQ(client.inflight(), 0u);
}

TEST_F(ClientClusterTest, RetrySucceedsWhenFirstContactIsDead) {
  ClientOptions opts;
  opts.request_timeout = 2 * kSeconds;
  opts.max_attempts = 4;
  auto& client = cluster_->add_client(opts);

  // Kill a third of the cluster: some picks will hit dead contacts and the
  // retry path must find a live one.
  for (std::size_t i = 0; i < 20; ++i) cluster_->crash(i);

  int successes = 0;
  for (int i = 0; i < 10; ++i) {
    client.put("retry_key" + std::to_string(i), Bytes{1}, 1,
               [&](const PutResult& r) {
                 if (r.ok) ++successes;
               });
  }
  cluster_->run_for(60 * kSeconds);
  EXPECT_EQ(successes, 10);
}

// ---- delete / tombstones ----------------------------------------------------

TEST_F(ClientClusterTest, DeleteIsAcknowledgedAndGetsReportDeleted) {
  auto& client = cluster_->add_client();
  client.put("doomed", Bytes{1}, 1, nullptr);
  cluster_->run_for(15 * kSeconds);

  DelResult del;
  client.del("doomed", 2, [&](const DelResult& r) { del = r; });
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(del.ok);
  EXPECT_EQ(del.key, "doomed");
  EXPECT_EQ(del.version, 2u);

  // Let the tombstone replicate slice-wide, then read: the get completes
  // with an authoritative "deleted" instead of timing out.
  cluster_->run_for(30 * kSeconds);
  GetResult get;
  get.ok = true;
  client.get("doomed", std::nullopt, [&](const GetResult& r) { get = r; });
  cluster_->run_for(15 * kSeconds);
  EXPECT_FALSE(get.ok);
  EXPECT_TRUE(get.deleted);
  EXPECT_EQ(client.metrics().counter_value("client.gets_deleted"), 1u);

  // A write below the tombstone's version is rejected honestly — not
  // acked as stored and silently dropped.
  PutResult stale;
  client.put("doomed", Bytes{9}, 1, [&](const PutResult& r) { stale = r; });
  cluster_->run_for(15 * kSeconds);
  EXPECT_FALSE(stale.ok);
  EXPECT_TRUE(stale.superseded);
}

TEST_F(ClientClusterTest, AntiEntropyHealsToTombstoneNotValue) {
  auto& client = cluster_->add_client();
  const Bytes stale_value{0xBE, 0xEF};
  client.put("zombie", stale_value, 1, nullptr);
  cluster_->run_for(20 * kSeconds);
  client.del("zombie", 2, nullptr);
  cluster_->run_for(40 * kSeconds);  // tombstone converges slice-wide

  // Simulate a replica that missed the delete (rejoined from an old disk
  // image): wipe the key on one slice member and plant the stale value.
  core::Node* lagging = nullptr;
  for (std::size_t i = 0; i < cluster_->size(); ++i) {
    auto& node = cluster_->node(i);
    if (node.running() && node.key_slice("zombie") == node.slice()) {
      lagging = &node;
      break;
    }
  }
  ASSERT_NE(lagging, nullptr);
  lagging->store().remove_keys_where(
      [](const Key& k) { return k == "zombie"; });
  ASSERT_TRUE(lagging->store().put({"zombie", 1, stale_value}).ok());
  ASSERT_TRUE(lagging->store().contains("zombie", 1));

  // Anti-entropy must converge the lagging replica to the tombstone — and
  // must NOT spread the stale value back to the healed members.
  cluster_->run_for(60 * kSeconds);
  EXPECT_FALSE(lagging->store().contains("zombie", 1))
      << "stale value survived anti-entropy";
  EXPECT_EQ(lagging->store().tombstone_version("zombie"), 2u)
      << "lagging replica did not converge to the tombstone";
  EXPECT_EQ(cluster_->replica_count("zombie", 1), 0u)
      << "the deleted value resurrected somewhere";
}

// ---- batched operations -----------------------------------------------------

TEST_F(ClientClusterTest, BatchPipelinesOpsInOneEnvelope) {
  auto& client = cluster_->add_client();
  std::vector<core::Operation> ops;
  for (int i = 0; i < 8; ++i) {
    ops.push_back(core::Operation::put("batch" + std::to_string(i), 1,
                                       Bytes{static_cast<std::uint8_t>(i)}));
  }
  std::vector<OpResult> results;
  client.execute(std::move(ops),
                 [&](const std::vector<OpResult>& r) { results = r; });
  cluster_->run_for(15 * kSeconds);

  ASSERT_EQ(results.size(), 8u);
  for (const OpResult& r : results) {
    EXPECT_TRUE(r.ok) << r.key;
    EXPECT_EQ(r.type, core::OpType::kPut);
  }
  // The whole batch went out as one envelope (no retries needed here).
  EXPECT_EQ(client.metrics().counter_value("client.envelopes_sent"), 1u);
  EXPECT_EQ(client.metrics().counter_value("client.batches"), 1u);
  EXPECT_EQ(client.inflight(), 0u);

  // And the writes are individually readable afterwards.
  GetResult got;
  client.get("batch3", std::nullopt, [&](const GetResult& r) { got = r; });
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(got.ok);
  EXPECT_EQ(got.object.value, Bytes{3});
}

TEST_F(ClientClusterTest, MixedBatchResolvesPerOperation) {
  auto& client = cluster_->add_client();
  client.put("mixed-old", Bytes{7}, 1, nullptr);
  cluster_->run_for(15 * kSeconds);

  ClientOptions fail_fast;
  fail_fast.request_timeout = 2 * kSeconds;
  fail_fast.max_attempts = 2;
  auto& batcher = cluster_->add_client(fail_fast);

  std::vector<core::Operation> ops;
  ops.push_back(core::Operation::get("mixed-old"));          // hit
  ops.push_back(core::Operation::put("mixed-new", 1, Bytes{8}));
  ops.push_back(core::Operation::get("mixed-missing"));      // times out
  std::vector<OpResult> results;
  batcher.execute(std::move(ops),
                  [&](const std::vector<OpResult>& r) { results = r; });
  cluster_->run_for(30 * kSeconds);

  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_EQ(results[0].object.value, Bytes{7});
  EXPECT_TRUE(results[1].ok);
  // The missing get fails alone after the retry budget — it does not drag
  // the served ops down with it.
  EXPECT_FALSE(results[2].ok);
  EXPECT_FALSE(results[2].deleted);
  EXPECT_EQ(results[2].attempts, 2u);
}

TEST_F(ClientClusterTest, OversizedBatchSplitsIntoMultipleEnvelopes) {
  auto& client = cluster_->add_client();
  // 5 puts x 20 kB = ~100 kB of ops against a 48 kB per-datagram budget:
  // the batch must ship as several envelopes (a single frame would be
  // dropped by the real UDP transport) and still resolve as one batch.
  std::vector<core::Operation> ops;
  for (int i = 0; i < 5; ++i) {
    ops.push_back(core::Operation::put("big" + std::to_string(i), 1,
                                       Bytes(20 * 1024, 0xAB)));
  }
  std::vector<OpResult> results;
  client.execute(std::move(ops),
                 [&](const std::vector<OpResult>& r) { results = r; });
  cluster_->run_for(15 * kSeconds);

  ASSERT_EQ(results.size(), 5u);
  for (const OpResult& r : results) EXPECT_TRUE(r.ok) << r.key;
  EXPECT_GE(client.metrics().counter_value("client.envelopes_sent"), 3u);
  EXPECT_EQ(client.metrics().counter_value("client.batches"), 1u);
}

// ---- session futures --------------------------------------------------------

TEST_F(ClientClusterTest, SessionFuturesResolveAndChain) {
  auto& client = cluster_->add_client();
  Session session(client);

  auto put = session.put("fut", Bytes{9});
  EXPECT_FALSE(put.ready());
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(put.ready());
  EXPECT_TRUE(put.value().ok);

  auto got = session.get("fut");
  bool chained = false;
  got.then([&](const GetResult& r) { chained = r.ok; });
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(got.ready());
  EXPECT_TRUE(chained);
  EXPECT_EQ(got.value().object.value, Bytes{9});
  // then() after completion fires immediately.
  bool immediate = false;
  got.then([&](const GetResult&) { immediate = true; });
  EXPECT_TRUE(immediate);

  auto gone = session.del("fut");
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(gone.ready());
  EXPECT_TRUE(gone.value().ok);
}

TEST_F(ClientClusterTest, SessionBatchSurfaces) {
  auto& client = cluster_->add_client();
  Session session(client);

  auto batch = session.put_batch({{"sb-a", Bytes{1}}, {"sb-b", Bytes{2}}});
  cluster_->run_for(15 * kSeconds);
  ASSERT_TRUE(batch.ready());
  EXPECT_TRUE(batch.value().all_ok());
  ASSERT_EQ(batch.value().puts.size(), 2u);

  auto many = session.get_many({"sb-a", "sb-b"});
  cluster_->run_for(15 * kSeconds);
  ASSERT_TRUE(many.ready());
  ASSERT_EQ(many.value().size(), 2u);
  EXPECT_TRUE(many.value()[0].ok);
  EXPECT_EQ(many.value()[0].object.value, Bytes{1});
  EXPECT_TRUE(many.value()[1].ok);
  EXPECT_EQ(many.value()[1].object.value, Bytes{2});

  // Empty batches complete immediately instead of tripping the client's
  // non-empty invariant.
  auto none = session.get_many({});
  ASSERT_TRUE(none.ready());
  EXPECT_TRUE(none.value().empty());
  auto no_puts = session.put_batch({});
  ASSERT_TRUE(no_puts.ready());
  EXPECT_TRUE(no_puts.value().all_ok());
}

TEST_F(ClientClusterTest, SliceCacheBalancerLearnsFromAcks) {
  ClientOptions opts;
  opts.slice_count_hint = 4;  // enables client-side slice computation
  auto& client = cluster_->add_client(opts, "slice-cache");

  for (int i = 0; i < 20; ++i) {
    client.put("warm" + std::to_string(i), Bytes{1}, 1, nullptr);
  }
  cluster_->run_for(30 * kSeconds);

  auto& lb = static_cast<SliceCacheLoadBalancer&>(cluster_->balancer(0));
  EXPECT_GT(lb.cache_size(), 0u);

  const auto hits_before = lb.cache_hits();
  for (int i = 0; i < 20; ++i) {
    client.put("warm" + std::to_string(i), Bytes{2}, 2, nullptr);
  }
  cluster_->run_for(30 * kSeconds);
  EXPECT_GT(lb.cache_hits(), hits_before);
}

// ---- compare-and-put (protocol v2) ------------------------------------------

TEST_F(ClientClusterTest, CasCreatesThenGuardsUpdates) {
  auto& client = cluster_->add_client();
  Session session(client);

  // expected == 0: create-only succeeds on a fresh key. Waits between the
  // steps are generous: each CAS may land on any replica of the slice, so
  // the previous write must have reached all of them (per-replica
  // preconditions, like all epidemic-store reads).
  auto created = session.cas("cas-key", 0, Bytes{1});
  cluster_->run_for(40 * kSeconds);
  ASSERT_TRUE(created.ready());
  ASSERT_TRUE(created.value().ok);
  const Version v1 = created.value().version;
  EXPECT_GT(v1, 0u);

  // Correct precondition: the update lands and the version advances.
  auto updated = session.cas("cas-key", v1, Bytes{2});
  cluster_->run_for(40 * kSeconds);
  ASSERT_TRUE(updated.ready());
  ASSERT_TRUE(updated.value().ok);
  EXPECT_GT(updated.value().version, v1);

  // Stale precondition: a definitive kCasFailed naming the current
  // version — not a timeout.
  auto stale = session.cas("cas-key", v1, Bytes{3});
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(stale.ready());
  EXPECT_FALSE(stale.value().ok);
  EXPECT_TRUE(stale.value().cas_failed);
  EXPECT_EQ(stale.value().version, updated.value().version);
  EXPECT_GT(client.metrics().counter_value("client.cas_precondition_failures"),
            0u);

  // The guarded value is what readers see.
  auto got = session.get("cas-key");
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(got.ready());
  ASSERT_TRUE(got.value().ok);
  EXPECT_EQ(got.value().object.value, Bytes{2});
}

TEST_F(ClientClusterTest, CasCreateOnlyFailsOnExistingKey) {
  auto& client = cluster_->add_client();
  Session session(client);
  auto put = session.put("occupied", Bytes{7});
  // Long converge: the conflicting CAS below may be routed to ANY replica
  // of the key's slice, so every replica must hold the value first (the
  // precondition check is per-replica, like all epidemic-store reads).
  cluster_->run_for(40 * kSeconds);
  ASSERT_TRUE(put.ready());
  ASSERT_TRUE(put.value().ok);

  auto create = session.cas("occupied", 0, Bytes{8});
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(create.ready());
  EXPECT_FALSE(create.value().ok);
  EXPECT_TRUE(create.value().cas_failed);
  EXPECT_EQ(create.value().version, put.value().version);
}

TEST_F(ClientClusterTest, CasNeverResurrectsDeletedKey) {
  auto& client = cluster_->add_client();
  Session session(client);
  auto put = session.put("doomed", Bytes{1});
  cluster_->run_for(20 * kSeconds);
  ASSERT_TRUE(put.ready() && put.value().ok);
  auto del = session.del("doomed");
  cluster_->run_for(40 * kSeconds);  // tombstone must reach every replica
  ASSERT_TRUE(del.ready() && del.value().ok);

  // CAS against the tombstone's version still fails: deletes win until an
  // unconditional put recreates the key above the tombstone.
  auto cas = session.cas("doomed", del.value().version, Bytes{2});
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(cas.ready());
  EXPECT_FALSE(cas.value().ok);
  EXPECT_TRUE(cas.value().cas_failed);
  EXPECT_EQ(cas.value().version, del.value().version);

  auto got = session.get("doomed");
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(got.ready());
  EXPECT_FALSE(got.value().ok);
  EXPECT_TRUE(got.value().deleted);
}

// ---- stats admin op (protocol v2) -------------------------------------------

TEST_F(ClientClusterTest, StatsOpReturnsContactNodeSnapshot) {
  auto& client = cluster_->add_client();
  Session session(client);
  client.put("warmup", Bytes{1}, 1, nullptr);
  cluster_->run_for(10 * kSeconds);

  auto stats = session.stats();
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(stats.ready());
  ASSERT_TRUE(stats.value().ok);
  // Sim nodes use the default provider: the node's event counters rendered
  // as one Prometheus family.
  EXPECT_NE(stats.value().text.find("df_node_events_total"),
            std::string::npos);
  EXPECT_NE(stats.value().replica, NodeId(0xFFFFFFFF));
}

// ---- protocol negotiation ---------------------------------------------------

class V1ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto opts = small_cluster_options(11);
    opts.node.request.serve_protocol = core::kOpProtocolMin;  // v1 fleet
    cluster_ = std::make_unique<harness::Cluster>(opts);
    cluster_->start_all();
    cluster_->run_for(60 * kSeconds);
  }

  std::unique_ptr<harness::Cluster> cluster_;
};

TEST_F(V1ClusterTest, ClientNegotiatesDownAndServesV1Ops) {
  // A v2 client against a v1-only fleet: the first envelope is answered
  // with kVersionMismatch, the client adopts v1 and resends — the batch
  // still succeeds without burning a retry attempt.
  auto& client = cluster_->add_client();
  EXPECT_EQ(client.active_protocol(), core::kOpProtocolVersion);

  PutResult put;
  client.put("downgraded", Bytes{9}, 1, [&](const PutResult& r) { put = r; });
  cluster_->run_for(15 * kSeconds);
  ASSERT_TRUE(put.ok);
  EXPECT_EQ(put.attempts, 1u);
  EXPECT_EQ(client.active_protocol(), core::kOpProtocolMin);
  EXPECT_GT(client.metrics().counter_value("client.version_mismatches"), 0u);
  EXPECT_EQ(client.metrics().counter_value("client.protocol_negotiations"),
            1u);

  // Subsequent envelopes go out at v1 directly: no further negotiation.
  GetResult got;
  client.get("downgraded", std::nullopt,
             [&](const GetResult& r) { got = r; });
  cluster_->run_for(15 * kSeconds);
  ASSERT_TRUE(got.ok);
  EXPECT_EQ(got.object.value, Bytes{9});
  EXPECT_EQ(client.metrics().counter_value("client.protocol_negotiations"),
            1u);
}

TEST_F(V1ClusterTest, V2OnlyOpsFailDefinitivelyAgainstV1Fleet) {
  auto& client = cluster_->add_client();
  Session session(client);

  // CAS cannot be expressed at v1: a definitive unsupported failure (fast),
  // not a timeout.
  auto cas = session.cas("nope", 0, Bytes{1});
  cluster_->run_for(15 * kSeconds);
  ASSERT_TRUE(cas.ready());
  EXPECT_FALSE(cas.value().ok);
  EXPECT_TRUE(cas.value().unsupported);

  auto stats = session.stats();
  cluster_->run_for(15 * kSeconds);
  ASSERT_TRUE(stats.ready());
  EXPECT_FALSE(stats.value().ok);
  EXPECT_TRUE(stats.value().unsupported);
  EXPECT_GT(client.metrics().counter_value("client.ops_unsupported"), 0u);

  // Mixed batch: the v1-expressible ops still succeed after negotiation;
  // only the CAS comes back unsupported.
  std::vector<core::Operation> ops;
  ops.push_back(core::Operation::put("mixed", 1, Bytes{1}));
  ops.push_back(core::Operation::cas("mixed", 1, 2, Bytes{2}));
  std::vector<OpResult> results;
  client.execute(std::move(ops),
                 [&](const std::vector<OpResult>& r) { results = r; });
  cluster_->run_for(15 * kSeconds);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_TRUE(results[1].unsupported);
}

TEST_F(ClientClusterTest, V1ConfiguredClientNegotiatesUpToV2) {
  // The reverse direction: a client pinned to v1 meets a v2-serving fleet,
  // adopts the offered version and completes the op.
  ClientOptions opts;
  opts.protocol_version = core::kOpProtocolMin;
  auto& client = cluster_->add_client(opts);
  EXPECT_EQ(client.active_protocol(), core::kOpProtocolMin);

  PutResult put;
  client.put("upgraded", Bytes{4}, 1, [&](const PutResult& r) { put = r; });
  cluster_->run_for(15 * kSeconds);
  ASSERT_TRUE(put.ok);
  EXPECT_EQ(client.active_protocol(), core::kOpProtocolVersion);
}

}  // namespace
}  // namespace dataflasks::client
