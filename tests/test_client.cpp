// Client library tests: load balancer policies in isolation, then the full
// client against a real cluster — acks, multi-reply deduplication (paper
// §V), timeouts and retries.
#include <gtest/gtest.h>

#include <set>

#include "client/client.hpp"
#include "client/load_balancer.hpp"
#include "harness/cluster.hpp"
#include "test_util.hpp"

namespace dataflasks::client {
namespace {

// ---- load balancers -------------------------------------------------------------

TEST(RandomLB, PicksFromNodeList) {
  RandomLoadBalancer lb({NodeId(1), NodeId(2), NodeId(3)}, Rng(1));
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(lb.pick_contact(std::nullopt).value);
  EXPECT_EQ(seen, (std::set<std::uint64_t>{1, 2, 3}));
}

TEST(RandomLB, EmptyListRejected) {
  EXPECT_THROW(RandomLoadBalancer({}, Rng(1)), InvariantViolation);
}

TEST(SliceCacheLB, UsesCachedReplicaForKnownSlice) {
  SliceCacheLoadBalancer lb({NodeId(1), NodeId(2), NodeId(3)}, Rng(1));
  lb.observe_replica(NodeId(2), /*slice=*/7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(lb.pick_contact(SliceId{7}), NodeId(2));
  }
  EXPECT_EQ(lb.cache_hits(), 20u);
}

TEST(SliceCacheLB, FallsBackToRandomOnMiss) {
  SliceCacheLoadBalancer lb({NodeId(1), NodeId(2)}, Rng(1));
  const NodeId pick = lb.pick_contact(SliceId{9});
  EXPECT_TRUE(pick == NodeId(1) || pick == NodeId(2));
  EXPECT_EQ(lb.cache_misses(), 1u);
}

TEST(SliceCacheLB, UnreachableNodeEvicted) {
  SliceCacheLoadBalancer lb({NodeId(1), NodeId(2)}, Rng(1));
  lb.observe_replica(NodeId(1), 3);
  lb.observe_replica(NodeId(1), 4);
  EXPECT_EQ(lb.cache_size(), 2u);
  lb.node_unreachable(NodeId(1));
  EXPECT_EQ(lb.cache_size(), 0u);
}

// ---- client against a live cluster ------------------------------------------------

harness::ClusterOptions small_cluster_options(std::uint64_t seed = 7) {
  harness::ClusterOptions opts;
  opts.node_count = 60;
  opts.seed = seed;
  opts.node.slice_config = {4, 1};
  return opts;
}

class ClientClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<harness::Cluster>(small_cluster_options());
    cluster_->start_all();
    cluster_->run_for(60 * kSeconds);  // converge PSS + slicing + views
  }

  std::unique_ptr<harness::Cluster> cluster_;
};

TEST_F(ClientClusterTest, PutIsAcknowledged) {
  auto& client = cluster_->add_client();
  PutResult result;
  client.put("hello", Bytes{1, 2, 3}, 1,
             [&](const PutResult& r) { result = r; });
  cluster_->run_for(10 * kSeconds);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.key, "hello");
  EXPECT_EQ(result.version, 1u);
  EXPECT_GT(result.latency, 0);
}

TEST_F(ClientClusterTest, GetReturnsWhatWasPut) {
  auto& client = cluster_->add_client();
  client.put("k1", Bytes{0xAA, 0xBB}, 1, nullptr);
  cluster_->run_for(10 * kSeconds);

  GetResult result;
  client.get("k1", std::nullopt, [&](const GetResult& r) { result = r; });
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.object.value, (Bytes{0xAA, 0xBB}));
  EXPECT_EQ(result.object.version, 1u);
}

TEST_F(ClientClusterTest, GetSpecificVersion) {
  auto& client = cluster_->add_client();
  client.put("multi", Bytes{1}, 1, nullptr);
  client.put("multi", Bytes{2}, 2, nullptr);
  cluster_->run_for(15 * kSeconds);

  GetResult v1, latest;
  client.get("multi", Version{1}, [&](const GetResult& r) { v1 = r; });
  client.get("multi", std::nullopt, [&](const GetResult& r) { latest = r; });
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(v1.ok);
  EXPECT_EQ(v1.object.value, Bytes{1});
  ASSERT_TRUE(latest.ok);
  EXPECT_EQ(latest.object.version, 2u);
}

TEST_F(ClientClusterTest, PutAutoStampsMonotonicVersions) {
  auto& client = cluster_->add_client();
  const Version v1 = client.put_auto("auto", Bytes{1}, nullptr);
  const Version v2 = client.put_auto("auto", Bytes{2}, nullptr);
  EXPECT_LT(v1, v2);
  cluster_->run_for(10 * kSeconds);

  GetResult result;
  client.get("auto", v2, [&](const GetResult& r) { result = r; });
  cluster_->run_for(10 * kSeconds);
  EXPECT_TRUE(result.ok);
}

TEST_F(ClientClusterTest, MissingKeyTimesOutAfterRetries) {
  ClientOptions opts;
  opts.request_timeout = 2 * kSeconds;
  opts.max_attempts = 2;
  auto& client = cluster_->add_client(opts);

  GetResult result;
  result.ok = true;
  client.get("never_written", std::nullopt,
             [&](const GetResult& r) { result = r; });
  cluster_->run_for(30 * kSeconds);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_EQ(client.metrics().counter_value("client.get_failures"), 1u);
}

TEST_F(ClientClusterTest, DuplicateRepliesAreAbsorbed) {
  auto& client = cluster_->add_client();
  // Write, wait for replication so several members hold the object...
  client.put("dup", Bytes{7}, 1, nullptr);
  cluster_->run_for(20 * kSeconds);

  // ...then read repeatedly: epidemic dissemination can produce several
  // replies per request; exactly one callback per get must fire.
  int callbacks = 0;
  for (int i = 0; i < 5; ++i) {
    client.get("dup", std::nullopt, [&](const GetResult&) { ++callbacks; });
  }
  cluster_->run_for(15 * kSeconds);
  EXPECT_EQ(callbacks, 5);
  EXPECT_EQ(client.inflight(), 0u);
}

TEST_F(ClientClusterTest, RetrySucceedsWhenFirstContactIsDead) {
  ClientOptions opts;
  opts.request_timeout = 2 * kSeconds;
  opts.max_attempts = 4;
  auto& client = cluster_->add_client(opts);

  // Kill a third of the cluster: some picks will hit dead contacts and the
  // retry path must find a live one.
  for (std::size_t i = 0; i < 20; ++i) cluster_->crash(i);

  int successes = 0;
  for (int i = 0; i < 10; ++i) {
    client.put("retry_key" + std::to_string(i), Bytes{1}, 1,
               [&](const PutResult& r) {
                 if (r.ok) ++successes;
               });
  }
  cluster_->run_for(60 * kSeconds);
  EXPECT_EQ(successes, 10);
}

TEST_F(ClientClusterTest, SliceCacheBalancerLearnsFromAcks) {
  ClientOptions opts;
  opts.slice_count_hint = 4;  // enables client-side slice computation
  auto& client = cluster_->add_client(opts, "slice-cache");

  for (int i = 0; i < 20; ++i) {
    client.put("warm" + std::to_string(i), Bytes{1}, 1, nullptr);
  }
  cluster_->run_for(30 * kSeconds);

  auto& lb = static_cast<SliceCacheLoadBalancer&>(cluster_->balancer(0));
  EXPECT_GT(lb.cache_size(), 0u);

  const auto hits_before = lb.cache_hits();
  for (int i = 0; i < 20; ++i) {
    client.put("warm" + std::to_string(i), Bytes{2}, 2, nullptr);
  }
  cluster_->run_for(30 * kSeconds);
  EXPECT_GT(lb.cache_hits(), hits_before);
}

}  // namespace
}  // namespace dataflasks::client
