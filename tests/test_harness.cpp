// Harness tests: the Cluster builder's audits and churn application, and
// the closed-loop Runner (op sequencing, RMW flow, deadlines, stats).
#include <gtest/gtest.h>

#include "harness/cluster.hpp"
#include "harness/runner.hpp"

namespace dataflasks::harness {
namespace {

ClusterOptions tiny(std::uint64_t seed) {
  ClusterOptions opts;
  opts.node_count = 40;
  opts.seed = seed;
  opts.node.slice_config = {2, 1};
  return opts;
}

TEST(ClusterTest, StartAllBringsEveryNodeUp) {
  Cluster cluster(tiny(1));
  cluster.start_all();
  EXPECT_EQ(cluster.running_node_ids().size(), cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_TRUE(cluster.node(i).running());
  }
}

TEST(ClusterTest, CrashAndRestartAreIdempotent) {
  Cluster cluster(tiny(2));
  cluster.start_all();
  cluster.crash(3);
  cluster.crash(3);  // no-op
  EXPECT_FALSE(cluster.node(3).running());
  EXPECT_EQ(cluster.running_node_ids().size(), cluster.size() - 1);
  cluster.restart(3);
  cluster.restart(3);  // no-op
  EXPECT_TRUE(cluster.node(3).running());
}

TEST(ClusterTest, NodeByIdAndCapacityRange) {
  Cluster cluster(tiny(3));
  EXPECT_EQ(cluster.node_by_id(NodeId(5)), &cluster.node(5));
  EXPECT_EQ(cluster.node_by_id(NodeId(999)), nullptr);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_GE(cluster.node(i).capacity(), cluster.options().capacity_min);
    EXPECT_LT(cluster.node(i).capacity(), cluster.options().capacity_max);
  }
}

TEST(ClusterTest, ChurnPlanIsAppliedOnSchedule) {
  Cluster cluster(tiny(4));
  cluster.start_all();
  std::vector<sim::ChurnEvent> plan{
      {10 * kSeconds, NodeId(1), sim::ChurnEventKind::kCrash},
      {20 * kSeconds, NodeId(1), sim::ChurnEventKind::kRestart},
  };
  cluster.apply_churn_plan(plan);

  cluster.run_for(15 * kSeconds);
  EXPECT_FALSE(cluster.node(1).running());
  cluster.run_for(10 * kSeconds);
  EXPECT_TRUE(cluster.node(1).running());
}

TEST(ClusterTest, ReplicaAuditsCountOnlyRunningNodes) {
  Cluster cluster(tiny(5));
  cluster.start_all();
  cluster.run_for(60 * kSeconds);
  auto& client = cluster.add_client();
  client.put("audited", Bytes{1}, 1, nullptr);
  cluster.run_for(30 * kSeconds);

  const std::size_t before = cluster.replica_count("audited", 1);
  ASSERT_GE(before, 1u);
  // Crash a holder: the audit must drop accordingly.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.node(i).running() &&
        cluster.node(i).store().contains("audited", 1)) {
      cluster.crash(i);
      break;
    }
  }
  EXPECT_EQ(cluster.replica_count("audited", 1), before - 1);
}

TEST(ClusterTest, UnknownBalancerPolicyRejected) {
  Cluster cluster(tiny(6));
  EXPECT_THROW(cluster.add_client({}, "round-robin"), InvariantViolation);
}

// ---- Runner -------------------------------------------------------------------

struct RunnerFixture : public ::testing::Test {
  void SetUp() override {
    cluster = std::make_unique<Cluster>(tiny(7));
    cluster->start_all();
    cluster->run_for(60 * kSeconds);
  }
  std::unique_ptr<Cluster> cluster;
};

TEST_F(RunnerFixture, ExecutesAllOpsAndCountsStats) {
  auto& client = cluster->add_client();
  std::vector<workload::Op> stream{
      {workload::OpKind::kInsert, "a", 50},
      {workload::OpKind::kRead, "a", 0},
      {workload::OpKind::kUpdate, "a", 50},
  };
  Runner runner(*cluster, {&client}, {stream});
  EXPECT_TRUE(runner.run(cluster->simulator().now() + 300 * kSeconds));

  const RunnerStats& stats = runner.stats();
  EXPECT_EQ(stats.puts_issued, 2u);
  EXPECT_EQ(stats.gets_issued, 1u);
  EXPECT_EQ(stats.puts_succeeded, 2u);
  EXPECT_EQ(stats.gets_succeeded, 1u);
  EXPECT_GT(stats.put_latency.count(), 0u);
}

TEST_F(RunnerFixture, ReadModifyWriteIssuesBothOps) {
  auto& client = cluster->add_client();
  std::vector<workload::Op> stream{
      {workload::OpKind::kInsert, "rmw", 20},
      {workload::OpKind::kReadModifyWrite, "rmw", 20},
  };
  Runner runner(*cluster, {&client}, {stream});
  EXPECT_TRUE(runner.run(cluster->simulator().now() + 300 * kSeconds));
  EXPECT_EQ(runner.stats().gets_issued, 1u);
  EXPECT_EQ(runner.stats().puts_issued, 2u);  // insert + the MW of RMW
}

TEST_F(RunnerFixture, DeadlineStopsEarly) {
  auto& client = cluster->add_client();
  std::vector<workload::Op> stream(200,
                                   {workload::OpKind::kInsert, "x", 10});
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i].key = "x" + std::to_string(i);
  }
  Runner runner(*cluster, {&client}, {stream});
  // A deadline far too tight for 200 closed-loop ops.
  EXPECT_FALSE(runner.run(cluster->simulator().now() + 2 * kSeconds));
  EXPECT_LT(runner.stats().puts_issued, 200u);
}

TEST_F(RunnerFixture, MultipleClientsProgressIndependently) {
  std::vector<client::Client*> clients;
  std::vector<std::vector<workload::Op>> streams;
  for (int c = 0; c < 3; ++c) {
    clients.push_back(&cluster->add_client());
    std::vector<workload::Op> stream;
    for (int i = 0; i < 5; ++i) {
      stream.push_back({workload::OpKind::kInsert,
                        "c" + std::to_string(c) + "k" + std::to_string(i),
                        10});
    }
    streams.push_back(std::move(stream));
  }
  Runner runner(*cluster, clients, std::move(streams));
  EXPECT_TRUE(runner.run(cluster->simulator().now() + 300 * kSeconds));
  EXPECT_EQ(runner.stats().puts_succeeded, 15u);
}

TEST(RunnerValue, DeterministicAndSized) {
  const Bytes a = Runner::make_value(64, 7);
  const Bytes b = Runner::make_value(64, 7);
  const Bytes c = Runner::make_value(64, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 64u);
}

TEST(RunnerConstruction, MismatchedStreamsRejected) {
  Cluster cluster(tiny(8));
  cluster.start_all();
  auto& client = cluster.add_client();
  EXPECT_THROW(Runner(cluster, {&client}, {}), InvariantViolation);
}

}  // namespace
}  // namespace dataflasks::harness
