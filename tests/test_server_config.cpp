// Config parsing for the standalone server/CLI binaries: host:port and
// peer-spec grammar, config files, CLI flags overriding file entries, and
// the mapping from wall-clock cadences to NodeOptions.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "net/udp_transport.hpp"
#include "server/config.hpp"

namespace dataflasks::server {
namespace {

TEST(ServerConfig, ParsesHostPort) {
  std::string host;
  std::uint16_t port = 0;
  ASSERT_TRUE(parse_host_port("127.0.0.1:7100", host, port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7100);

  EXPECT_FALSE(parse_host_port("no-port", host, port));
  EXPECT_FALSE(parse_host_port(":7100", host, port));
  EXPECT_FALSE(parse_host_port("h:99999", host, port));
  EXPECT_FALSE(parse_host_port("h:abc", host, port));
}

TEST(ServerConfig, ParsesPeerSpec) {
  PeerSpec peer;
  ASSERT_TRUE(parse_peer_spec("3@10.0.0.2:7103", peer));
  EXPECT_EQ(peer.id, 3u);
  EXPECT_EQ(peer.host, "10.0.0.2");
  EXPECT_EQ(peer.port, 7103);

  EXPECT_FALSE(parse_peer_spec("nohost", peer));
  EXPECT_FALSE(parse_peer_spec("@h:1", peer));
  EXPECT_FALSE(parse_peer_spec("x@h:1", peer));
  EXPECT_FALSE(parse_peer_spec("1@h", peer));
}

TEST(ServerConfig, ParsesFlags) {
  auto parsed = parse_server_args(
      {"--id", "2", "--listen", "0.0.0.0:9000", "--peer", "0@127.0.0.1:7100",
       "--peer", "1@127.0.0.1:7101", "--capacity", "1.5", "--slices", "4",
       "--gossip-ms", "100", "--ae-ms", "500", "--seed", "77"});
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const ServerConfig& config = parsed.value();
  EXPECT_EQ(config.id, 2u);
  EXPECT_EQ(config.listen_host, "0.0.0.0");
  EXPECT_EQ(config.listen_port, 9000);
  ASSERT_EQ(config.peers.size(), 2u);
  EXPECT_EQ(config.peers[1].id, 1u);
  EXPECT_DOUBLE_EQ(config.capacity, 1.5);
  EXPECT_EQ(config.slices, 4u);
  EXPECT_EQ(config.seed, 77u);

  const core::NodeOptions options = config.node_options();
  EXPECT_EQ(options.pss_period, 100 * kMillis);
  EXPECT_EQ(options.ae_period, 500 * kMillis);
  EXPECT_EQ(options.slice_config.slice_count, 4u);
}

TEST(ServerConfig, SeedFlagIsRngIntegerOrJoinContact) {
  // Bare integer: RNG seed, untouched seed-contact list.
  auto rng = parse_server_args({"--seed", "42"});
  ASSERT_TRUE(rng.ok());
  EXPECT_EQ(rng.value().seed, 42u);
  EXPECT_TRUE(rng.value().seeds.empty());

  // host:port: a join contact; the RNG seed keeps its default (a partial
  // integer parse of "127..." must not corrupt it).
  auto contact = parse_server_args(
      {"--seed", "127.0.0.1:7100", "--seed", "other-host:7200"});
  ASSERT_TRUE(contact.ok());
  EXPECT_EQ(contact.value().seed, 0u);
  ASSERT_EQ(contact.value().seeds.size(), 2u);
  EXPECT_EQ(contact.value().seeds[0].host, "127.0.0.1");
  EXPECT_EQ(contact.value().seeds[0].port, 7100);
  EXPECT_EQ(contact.value().seeds[1].host, "other-host");

  EXPECT_FALSE(parse_server_args({"--seed", "not-a-thing"}).ok());
  EXPECT_FALSE(parse_server_args({"--seed", "host:0"}).ok());
}

TEST(ServerConfig, AdvertiseHostFlagAndConfigKey) {
  auto flag = parse_server_args({"--advertise", "10.0.0.5"});
  ASSERT_TRUE(flag.ok());
  EXPECT_EQ(flag.value().advertise_host, "10.0.0.5");
  EXPECT_TRUE(parse_server_args({}).value().advertise_host.empty());
}

TEST(ServerConfig, RejectsBadInput) {
  EXPECT_FALSE(parse_server_args({"--id", "zzz"}).ok());
  EXPECT_FALSE(parse_server_args({"--id"}).ok());
  EXPECT_FALSE(parse_server_args({"--frobnicate", "1"}).ok());
  EXPECT_FALSE(parse_server_args({"--slices", "0"}).ok());
  EXPECT_FALSE(parse_server_args({"stray-positional"}).ok());
  // A trailing --config must error, not boot an all-defaults server.
  EXPECT_FALSE(parse_server_args({"--config"}).ok());
  // Periods are range-checked: absurd values would otherwise overflow the
  // microsecond conversion or go negative at schedule time.
  EXPECT_FALSE(parse_server_args({"--gossip-ms", "9999999999999"}).ok());
  EXPECT_FALSE(parse_server_args({"--ae-ms", "18446744073709551615"}).ok());
}

TEST(ServerConfig, LoadsConfigFileAndFlagsOverrideIt) {
  const std::string path =
      ::testing::TempDir() + "/dataflasks_server_config_test.conf";
  {
    std::ofstream out(path);
    out << "# a 3-node localhost cluster\n"
        << "id = 7\n"
        << "listen = 127.0.0.1:7107   # trailing comment\n"
        << "peer = 8@127.0.0.1:7108\n"
        << "gossip_ms = 250\n";
  }

  auto from_file = parse_server_args({"--config", path});
  ASSERT_TRUE(from_file.ok()) << from_file.error().message;
  EXPECT_EQ(from_file.value().id, 7u);
  EXPECT_EQ(from_file.value().listen_port, 7107);
  EXPECT_EQ(from_file.value().gossip_ms, 250);
  ASSERT_EQ(from_file.value().peers.size(), 1u);

  // Flags override file values regardless of position on the line.
  auto overridden = parse_server_args({"--id", "9", "--config", path});
  ASSERT_TRUE(overridden.ok());
  EXPECT_EQ(overridden.value().id, 9u);
  EXPECT_EQ(overridden.value().listen_port, 7107);

  std::remove(path.c_str());

  EXPECT_FALSE(parse_server_args({"--config", "/nonexistent/x.conf"}).ok());
}

TEST(ServerConfig, PositionalArgumentsAreCollectedWhenRequested) {
  std::vector<std::string> positional;
  auto parsed = parse_server_args({"put", "key", "value"}, &positional);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(positional,
            (std::vector<std::string>{"put", "key", "value"}));
}

TEST(ServerConfig, StoreDataDirAndLogLevelFlags) {
  auto parsed = parse_server_args({"--id", "3", "--store", "durable",
                                   "--data-dir", "/tmp/df", "--log-level",
                                   "debug"});
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().store, StoreKind::kDurable);
  EXPECT_EQ(parsed.value().data_dir, "/tmp/df");
  EXPECT_EQ(parsed.value().log_level, "debug");
  EXPECT_EQ(parsed.value().store_path(), "/tmp/df/dataflasks-3.log");

  // Defaults: volatile memory store, info logs, data in the cwd.
  auto defaults = parse_server_args({});
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults.value().store, StoreKind::kMemory);
  EXPECT_EQ(defaults.value().store_path(), "./dataflasks-0.log");

  EXPECT_FALSE(parse_server_args({"--store", "floppy"}).ok());
  EXPECT_FALSE(parse_server_args({"--log-level", "loud"}).ok());
}

TEST(ServerConfig, MetricsPortFlagAndConfigKey) {
  // Default: endpoint disabled.
  auto defaults = parse_server_args({});
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults.value().metrics_port, -1);

  auto flagged = parse_server_args({"--metrics-port", "9100"});
  ASSERT_TRUE(flagged.ok()) << flagged.error().message;
  EXPECT_EQ(flagged.value().metrics_port, 9100);

  // 0 is meaningful (ephemeral port, printed at boot), not "disabled".
  auto ephemeral = parse_server_args({"--metrics-port", "0"});
  ASSERT_TRUE(ephemeral.ok());
  EXPECT_EQ(ephemeral.value().metrics_port, 0);

  EXPECT_FALSE(parse_server_args({"--metrics-port", "65536"}).ok());
  EXPECT_FALSE(parse_server_args({"--metrics-port", "-5"}).ok());
  EXPECT_FALSE(parse_server_args({"--metrics-port", "web"}).ok());

  const std::string path = "/tmp/dataflasks_test_metrics_port.conf";
  std::ofstream(path) << "metrics_port = 9200\n";
  auto from_file = parse_server_args({"--config", path});
  ASSERT_TRUE(from_file.ok()) << from_file.error().message;
  EXPECT_EQ(from_file.value().metrics_port, 9200);
  std::remove(path.c_str());
}

TEST(ServerConfig, HostnamesAcceptedInPeerAndListenSpecs) {
  // The grammar keeps the host opaque; DNS names parse like addresses.
  PeerSpec peer;
  ASSERT_TRUE(parse_peer_spec("2@node-2.cluster.example:7102", peer));
  EXPECT_EQ(peer.host, "node-2.cluster.example");
  EXPECT_EQ(peer.port, 7102);

  std::string host;
  std::uint16_t port = 0;
  ASSERT_TRUE(parse_host_port("localhost:7100", host, port));
  EXPECT_EQ(host, "localhost");
}

TEST(ServerConfig, ResolveIpv4HandlesNamesAndNumericAddresses) {
  // Numeric addresses pass through untouched.
  EXPECT_EQ(net::resolve_ipv4("10.1.2.3"), std::optional<std::string>("10.1.2.3"));
  // "localhost" resolves via getaddrinfo (/etc/hosts — no network needed).
  const auto localhost = net::resolve_ipv4("localhost");
  ASSERT_TRUE(localhost.has_value());
  EXPECT_EQ(*localhost, "127.0.0.1");
  // Unresolvable names are a clean nullopt, not an abort.
  EXPECT_FALSE(
      net::resolve_ipv4("definitely-not-a-real-host.invalid.").has_value());
}

}  // namespace
}  // namespace dataflasks::server
