// Adversarial end-to-end test: CompareAndPut racing admission-control
// shedding AND node churn. The linearization invariants under attack:
//   - a CAS reported ok is durable — its version survives the churn and
//     is visible (or superseded by a later CAS this client chained after
//     it) once the cluster recovers;
//   - a CAS never double-applies: the final object is exactly ONE of the
//     (version, value) pairs this client stamped, never a blend;
//   - every CAS attempt resolves definitively (ok / cas_failed /
//     overloaded / retries exhausted) — overload never hangs a client.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>

#include "harness/cluster.hpp"

namespace dataflasks {
namespace {

using client::CasResult;
using client::ClientOptions;
using client::GetResult;
using client::PutResult;

constexpr std::size_t kNodes = 30;

harness::ClusterOptions cas_cluster_options() {
  harness::ClusterOptions opts;
  opts.node_count = kNodes;
  opts.seed = 23;
  opts.node.slice_config = {2, 1};
  opts.node.admission.enabled = true;
  return opts;
}

void force_overload(harness::Cluster& cluster, std::size_t index) {
  cluster.node(index).set_load_probe([]() { return std::size_t{1} << 20; });
}

void clear_overload(harness::Cluster& cluster, std::size_t index) {
  cluster.node(index).set_load_probe([]() { return std::size_t{0}; });
}

TEST(CasOverloadChurn, NeverDoubleAppliesAndOkImpliesDurability) {
  harness::Cluster cluster(cas_cluster_options());
  cluster.start_all();
  cluster.run_for(60 * kSeconds);

  ClientOptions copts;
  copts.request_timeout = 2 * kSeconds;
  copts.max_attempts = 4;
  copts.backoff_base = 50 * kMillis;
  auto& client = cluster.add_client(copts);

  const Key key = "cas-guarded";

  // Seed the key while the cluster is healthy.
  std::optional<PutResult> seeded;
  client.put(key, Bytes{0xFF}, 1, [&](const PutResult& r) { seeded = r; });
  cluster.run_for(20 * kSeconds);
  ASSERT_TRUE(seeded.has_value() && seeded->ok);

  // Reads the key's current version, retrying through transient overload.
  const auto read_current = [&](Version& version_out) {
    for (int attempt = 0; attempt < 6; ++attempt) {
      std::optional<GetResult> got;
      client.get(key, std::nullopt, [&](const GetResult& r) { got = r; });
      cluster.run_for(15 * kSeconds);
      EXPECT_TRUE(got.has_value());  // resolved — overload must not hang
      if (got.has_value() && got->ok) {
        version_out = got->object.version;
        return true;
      }
    }
    return false;
  };

  // The CAS chain. Every stamped (version, value) is recorded so the final
  // state can be checked against the set of writes that were ever issued.
  std::map<Version, Bytes> stamped;
  Version expected = 1;
  Version last_ok = 0;
  std::size_t ok_count = 0;
  std::size_t crashed = kNodes;  // sentinel: nothing down

  for (std::uint8_t step = 0; step < 8; ++step) {
    // Rotate saturation across a sliding window of five nodes.
    for (std::size_t i = 0; i < 5; ++i) {
      clear_overload(cluster, ((step + 4) * 3 + i) % kNodes);
      force_overload(cluster, (step * 3 + i) % kNodes);
    }
    // Churn: one node is down during the middle of the chain.
    if (step == 2) {
      crashed = 7;
      cluster.crash(crashed);
    }
    if (step == 5 && crashed != kNodes) {
      cluster.restart(crashed);
      crashed = kNodes;
    }
    cluster.run_for(kSeconds);  // let admission ticks see the new load

    ASSERT_TRUE(read_current(expected)) << "step " << int(step);

    const Bytes value{step};
    std::optional<CasResult> cas;
    const Version version =
        client.cas(key, expected, value, [&](const CasResult& r) { cas = r; });
    stamped[version] = value;
    cluster.run_for(20 * kSeconds);

    // Definitive resolution, always: ok, precondition-failed, or an
    // explicit exhaustion — never a hung callback.
    ASSERT_TRUE(cas.has_value()) << "CAS hung at step " << int(step);
    if (cas->ok) {
      EXPECT_EQ(cas->version, version);
      last_ok = version;
      ++ok_count;
    } else if (cas->cas_failed) {
      // Someone (an earlier timed-out attempt of ours, landing late) got
      // there first; the reply names the actual current version.
      EXPECT_GE(cas->version, expected);
    }
    EXPECT_EQ(client.inflight(), 0u) << "step " << int(step);
  }

  // Recovery: clear all load, heal churn, let anti-entropy converge.
  for (std::size_t i = 0; i < kNodes; ++i) clear_overload(cluster, i);
  if (crashed != kNodes) cluster.restart(crashed);
  cluster.run_for(120 * kSeconds);
  for (std::size_t i = 0; i < kNodes; ++i) {
    ASSERT_NE(cluster.node(i).admission(), nullptr);
    EXPECT_FALSE(cluster.node(i).admission()->overloaded()) << "node " << i;
  }

  // The chain made progress despite shedding and churn.
  EXPECT_GT(ok_count, 0u);

  std::optional<GetResult> fin;
  client.get(key, std::nullopt, [&](const GetResult& r) { fin = r; });
  cluster.run_for(20 * kSeconds);
  ASSERT_TRUE(fin.has_value() && fin->ok);

  // No double-apply / no blend: the surviving object is exactly one of
  // the stamped writes (or the seed), value and version consistent.
  if (fin->object.version != 1) {
    const auto it = stamped.find(fin->object.version);
    ASSERT_NE(it, stamped.end())
        << "final version " << fin->object.version
        << " was never stamped by this client";
    ASSERT_EQ(fin->object.value.size(), it->second.size());
    EXPECT_TRUE(std::equal(fin->object.value.begin(),
                           fin->object.value.end(), it->second.begin()));
  }

  // ok implies durable: a reported-ok CAS can only be superseded by a
  // LATER stamped write (versions are stamped strictly above the chained
  // expected), never silently lost back to an older version.
  EXPECT_GE(fin->object.version, last_ok);

  // And the winning version is actually replicated, not a ghost answer.
  EXPECT_GE(cluster.replica_count(key, fin->object.version), 1u);
}

}  // namespace
}  // namespace dataflasks
