// Admission control and load shedding: unit tests for the controller's
// signals (queue depth, loop lag, Little's-law in-flight estimate,
// hysteresis, maintenance trickle) and cluster tests for the end-to-end
// overload contract — explicit kOverloaded replies, client backoff and
// rerouting, per-request deadlines, and gossip surviving on the trickle.
#include <gtest/gtest.h>

#include <optional>

#include "core/admission_controller.hpp"
#include "harness/cluster.hpp"

namespace dataflasks {
namespace {

using client::ClientOptions;
using client::GetResult;
using client::PutResult;
using core::AdmissionController;
using core::AdmissionOptions;
using core::WorkClass;

// ---- controller units -------------------------------------------------------

AdmissionOptions queue_only_options() {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.queue_high = 100;
  opts.queue_low = 10;
  opts.lag_high = 0;          // signal off
  opts.max_inflight_ops = 0;  // signal off
  return opts;
}

TEST(AdmissionControllerTest, DisabledAdmitsEverything) {
  MetricsRegistry metrics;
  SimTime now = 0;
  AdmissionController adm([&]() { return now; }, AdmissionOptions{}, metrics);
  EXPECT_TRUE(adm.admit(WorkClass::kClientOp).admit);
  EXPECT_TRUE(adm.admit(WorkClass::kMaintenance).admit);
  EXPECT_TRUE(adm.admit(WorkClass::kAdmin).admit);
  adm.tick();
  EXPECT_FALSE(adm.overloaded());
}

TEST(AdmissionControllerTest, QueueDepthEntersAndExitsWithHysteresis) {
  MetricsRegistry metrics;
  SimTime now = 0;
  std::size_t depth = 0;
  AdmissionController adm([&]() { return now; }, queue_only_options(),
                          metrics);
  adm.set_load_probe([&]() { return depth; });

  depth = 500;
  now += 100 * kMillis;
  adm.tick();
  ASSERT_TRUE(adm.overloaded());
  const auto shed = adm.admit(WorkClass::kClientOp);
  EXPECT_FALSE(shed.admit);
  EXPECT_GE(shed.retry_after_ms, adm.options().retry_after_min_ms);

  // Between the watermarks: still overloaded (no flapping at the boundary).
  depth = 50;
  now += 100 * kMillis;
  adm.tick();
  EXPECT_TRUE(adm.overloaded());

  depth = 5;
  now += 100 * kMillis;
  adm.tick();
  EXPECT_FALSE(adm.overloaded());
  EXPECT_TRUE(adm.admit(WorkClass::kClientOp).admit);
  EXPECT_EQ(metrics.counter_value("admission.overload_entered"), 1u);
  EXPECT_EQ(metrics.counter_value("admission.overload_exited"), 1u);
}

TEST(AdmissionControllerTest, AdminAlwaysAdmittedWhileOverloaded) {
  MetricsRegistry metrics;
  SimTime now = 0;
  AdmissionController adm([&]() { return now; }, queue_only_options(),
                          metrics);
  adm.set_load_probe([]() { return std::size_t{10000}; });
  now += 100 * kMillis;
  adm.tick();
  ASSERT_TRUE(adm.overloaded());
  EXPECT_FALSE(adm.admit(WorkClass::kClientOp).admit);
  EXPECT_TRUE(adm.admit(WorkClass::kAdmin).admit);
}

TEST(AdmissionControllerTest, LoopLagEntersOverloadAndDecaysOut) {
  MetricsRegistry metrics;
  SimTime now = 0;
  AdmissionOptions opts;
  opts.enabled = true;
  opts.queue_high = 0;        // signal off
  opts.max_inflight_ops = 0;  // signal off
  opts.lag_high = 100 * kMillis;
  opts.lag_low = 20 * kMillis;
  AdmissionController adm([&]() { return now; }, opts, metrics);

  // On-schedule tick establishes the expectation...
  now = 100 * kMillis;
  adm.tick();
  EXPECT_FALSE(adm.overloaded());
  // ...then the next tick fires 500ms late (a saturated poll loop).
  now += opts.tick_period + 500 * kMillis;
  adm.tick();
  EXPECT_GT(adm.lag_ewma_us(), static_cast<double>(opts.lag_high));
  EXPECT_TRUE(adm.overloaded());

  // Back on schedule, the lag EWMA decays below the low watermark and the
  // controller exits.
  for (int i = 0; i < 20 && adm.overloaded(); ++i) {
    now += opts.tick_period;
    adm.tick();
  }
  EXPECT_FALSE(adm.overloaded());
}

TEST(AdmissionControllerTest, InflightEstimateCapsAdmission) {
  MetricsRegistry metrics;
  SimTime now = 0;
  AdmissionOptions opts;
  opts.enabled = true;
  opts.queue_high = 0;  // signal off
  opts.lag_high = 0;    // signal off
  opts.max_inflight_ops = 4;
  AdmissionController adm([&]() { return now; }, opts, metrics);

  // 1000 admitted ops over a 100ms window at 1ms smoothed service time:
  // Little's law says ~10 concurrently in flight, over the cap of 4.
  adm.note_service(1000);
  EXPECT_TRUE(adm.admit(WorkClass::kClientOp, 1000).admit);
  now += 100 * kMillis;
  adm.tick();
  EXPECT_GT(adm.inflight_estimate(), 4.0);
  EXPECT_TRUE(adm.overloaded());

  // An idle window drops the estimate to zero and the controller exits.
  now += 100 * kMillis;
  adm.tick();
  EXPECT_FALSE(adm.overloaded());
}

TEST(AdmissionControllerTest, RetryAfterScalesWithSeverityAndClamps) {
  MetricsRegistry metrics;
  SimTime now = 0;
  AdmissionController adm([&]() { return now; }, queue_only_options(),
                          metrics);
  // 100x past the queue watermark: the hint saturates at the maximum.
  adm.set_load_probe([]() { return std::size_t{10000}; });
  now += 100 * kMillis;
  adm.tick();
  ASSERT_TRUE(adm.overloaded());
  EXPECT_EQ(adm.admit(WorkClass::kClientOp).retry_after_ms,
            adm.options().retry_after_max_ms);
}

TEST(AdmissionControllerTest, MaintenanceTrickleIsBoundedAndRefills) {
  MetricsRegistry metrics;
  SimTime now = 0;
  AdmissionOptions opts = queue_only_options();
  opts.maintenance_trickle_per_sec = 3;
  AdmissionController adm([&]() { return now; }, opts, metrics);
  adm.set_load_probe([]() { return std::size_t{10000}; });
  now += 100 * kMillis;
  adm.tick();
  ASSERT_TRUE(adm.overloaded());

  // The bucket holds one second's worth: 3 messages pass, the 4th is shed.
  EXPECT_TRUE(adm.admit(WorkClass::kMaintenance).admit);
  EXPECT_TRUE(adm.admit(WorkClass::kMaintenance).admit);
  EXPECT_TRUE(adm.admit(WorkClass::kMaintenance).admit);
  EXPECT_FALSE(adm.admit(WorkClass::kMaintenance).admit);

  // A second of ticks refills the bucket even while still overloaded.
  now += kSeconds;
  adm.tick();
  ASSERT_TRUE(adm.overloaded());
  EXPECT_TRUE(adm.admit(WorkClass::kMaintenance).admit);
  EXPECT_GE(metrics.counter_value("admission.maintenance_trickle"), 4u);
  EXPECT_GE(metrics.counter_value("admission.maintenance_shed"), 1u);
}

// ---- cluster: end-to-end overload contract ----------------------------------

harness::ClusterOptions admission_cluster_options(std::uint64_t seed = 11) {
  harness::ClusterOptions opts;
  opts.node_count = 20;
  opts.seed = seed;
  opts.node.slice_config = {2, 1};
  opts.node.admission.enabled = true;
  return opts;
}

void force_overload(harness::Cluster& cluster, std::size_t index) {
  // A huge queue-depth reading trips the probe signal on the next tick.
  cluster.node(index).set_load_probe([]() { return std::size_t{1} << 20; });
}

void clear_overload(harness::Cluster& cluster, std::size_t index) {
  cluster.node(index).set_load_probe([]() { return std::size_t{0}; });
}

class AdmissionClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ =
        std::make_unique<harness::Cluster>(admission_cluster_options());
    cluster_->start_all();
    cluster_->run_for(60 * kSeconds);
  }

  std::unique_ptr<harness::Cluster> cluster_;
};

TEST_F(AdmissionClusterTest, FullyOverloadedClusterShedsDefinitivelyThenRecovers) {
  for (std::size_t i = 0; i < cluster_->size(); ++i) {
    force_overload(*cluster_, i);
  }
  cluster_->run_for(kSeconds);  // a few admission ticks
  for (std::size_t i = 0; i < cluster_->size(); ++i) {
    ASSERT_NE(cluster_->node(i).admission(), nullptr);
    ASSERT_TRUE(cluster_->node(i).admission()->overloaded()) << "node " << i;
  }

  ClientOptions opts;
  opts.request_timeout = 2 * kSeconds;
  opts.max_attempts = 3;
  opts.backoff_base = 50 * kMillis;
  auto& client = cluster_->add_client(opts);

  // Every contact sheds: the op must resolve definitively as overloaded —
  // an explicit backpressure answer, not a hang and not a plain timeout.
  std::optional<PutResult> put;
  client.put("shed-me", Bytes{1}, 1, [&](const PutResult& r) { put = r; });
  cluster_->run_for(30 * kSeconds);
  ASSERT_TRUE(put.has_value());
  EXPECT_FALSE(put->ok);
  EXPECT_GE(client.metrics().counter_value("client.overload_replies"), 1u);
  EXPECT_GE(client.metrics().counter_value("client.ops_overloaded"), 1u);
  EXPECT_EQ(client.inflight(), 0u);

  // Load gone: the controllers exit on their low watermarks and the same
  // client's next write lands.
  for (std::size_t i = 0; i < cluster_->size(); ++i) {
    clear_overload(*cluster_, i);
  }
  cluster_->run_for(2 * kSeconds);
  for (std::size_t i = 0; i < cluster_->size(); ++i) {
    EXPECT_FALSE(cluster_->node(i).admission()->overloaded()) << "node " << i;
  }
  std::optional<PutResult> recovered;
  client.put("recovered", Bytes{2}, 1,
             [&](const PutResult& r) { recovered = r; });
  cluster_->run_for(20 * kSeconds);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(recovered->ok);
}

TEST_F(AdmissionClusterTest, ClientRoutesAroundHotMinority) {
  // A quarter of the fleet is saturated; the balancer's overload feedback
  // steers retries at the healthy majority, so every op still lands.
  for (std::size_t i = 0; i < 5; ++i) force_overload(*cluster_, i);
  cluster_->run_for(kSeconds);

  ClientOptions opts;
  opts.request_timeout = 2 * kSeconds;
  opts.max_attempts = 4;
  opts.backoff_base = 50 * kMillis;
  auto& client = cluster_->add_client(opts);

  std::size_t ok = 0;
  std::size_t done = 0;
  for (int i = 0; i < 10; ++i) {
    const Key key = "hot-" + std::to_string(i);
    client.put(key, Bytes{static_cast<std::uint8_t>(i)}, 1,
               [&](const PutResult& r) {
                 ++done;
                 if (r.ok) ++ok;
               });
  }
  cluster_->run_for(60 * kSeconds);
  EXPECT_EQ(done, 10u);
  EXPECT_EQ(ok, 10u);
  EXPECT_EQ(client.inflight(), 0u);
}

TEST_F(AdmissionClusterTest, MaintenanceTrickleKeepsGossipAliveUnderOverload) {
  for (std::size_t i = 0; i < cluster_->size(); ++i) {
    force_overload(*cluster_, i);
  }
  cluster_->run_for(30 * kSeconds);

  // Client work is shed, but the guaranteed trickle keeps membership
  // converging: gossip is admitted (not starved) on every node.
  std::uint64_t trickled = 0;
  for (std::size_t i = 0; i < cluster_->size(); ++i) {
    trickled += cluster_->node(i).metrics().counter_value(
        "admission.maintenance_trickle");
    EXPECT_GT(cluster_->node(i).peer_sampling().view().size(), 0u)
        << "node " << i;
  }
  EXPECT_GT(trickled, 0u);
}

// ---- client semantics against a scripted server -----------------------------

/// Fixture with ONE unstarted node slot whose transport handler we script
/// by hand, so tests control exactly what the "server" answers.
class ScriptedServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    harness::ClusterOptions opts;
    opts.node_count = 1;
    opts.seed = 5;
    cluster_ = std::make_unique<harness::Cluster>(opts);
    // Node 0 is never started; tests register their own handler for it.
  }

  std::unique_ptr<harness::Cluster> cluster_;
};

TEST_F(ScriptedServerTest, OverloadReplyBacksOffThenFailsDefinitively) {
  // The scripted contact sheds every envelope with a retry-after hint.
  std::size_t envelopes = 0;
  cluster_->transport().register_handler(
      NodeId(0), [&](const net::Message& msg) {
        if (msg.type != core::kOpEnvelope) return;
        const auto envelope = core::decode_op_envelope(msg.payload);
        ASSERT_TRUE(envelope.has_value());
        ++envelopes;
        cluster_->transport().send(net::Message{
            NodeId(0), msg.src, core::kOverloaded,
            core::encode(
                core::OverloadReply{envelope->ops.front().rid, 100})});
      });

  ClientOptions opts;
  opts.request_timeout = 2 * kSeconds;
  opts.max_attempts = 2;
  opts.backoff_base = 50 * kMillis;
  auto& client = cluster_->add_client(opts);

  std::optional<PutResult> result;
  client.put("k", Bytes{1}, 1, [&](const PutResult& r) { result = r; });
  cluster_->run_for(30 * kSeconds);

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(result->attempts, 2u);
  // One backoff retry happened, then the budget was spent: definitive.
  EXPECT_EQ(envelopes, 2u);
  EXPECT_EQ(client.metrics().counter_value("client.overload_replies"), 2u);
  EXPECT_EQ(client.metrics().counter_value("client.overload_retries"), 1u);
  EXPECT_EQ(client.metrics().counter_value("client.ops_overloaded"), 1u);

  // Regression (explicit-negative vs. silence): the contact ANSWERED, so
  // it must be marked overloaded — not unreachable. node_unreachable would
  // have left the overload map empty.
  auto& balancer =
      static_cast<client::RandomLoadBalancer&>(cluster_->balancer(0));
  EXPECT_EQ(balancer.overloaded_count(), 1u);
}

TEST_F(ScriptedServerTest, SilentContactIsStillMarkedUnreachable) {
  // No handler at all: pure timeout. The failure is generic (not
  // overloaded, not deadline — no deadline configured), after the full
  // retry budget.
  ClientOptions opts;
  opts.request_timeout = kSeconds;
  opts.max_attempts = 2;
  auto& client = cluster_->add_client(opts);

  std::optional<PutResult> result;
  client.put("k", Bytes{1}, 1, [&](const PutResult& r) { result = r; });
  cluster_->run_for(10 * kSeconds);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(result->attempts, 2u);
  EXPECT_EQ(client.metrics().counter_value("client.overload_replies"), 0u);
  auto& balancer =
      static_cast<client::RandomLoadBalancer&>(cluster_->balancer(0));
  EXPECT_EQ(balancer.overloaded_count(), 0u);
}

TEST_F(ScriptedServerTest, DeadlineBoundsASilentRequest) {
  // Generous retry budget, tight deadline: the deadline must win, and the
  // op must resolve as deadline_exceeded within (roughly) the deadline —
  // not after max_attempts x request_timeout.
  ClientOptions opts;
  opts.request_timeout = kSeconds;
  opts.max_attempts = 10;
  opts.op_deadline = 2500 * kMillis;
  auto& client = cluster_->add_client(opts);

  std::optional<client::OpResult> result;
  client.execute({core::Operation::get("k")},
                 [&](const std::vector<client::OpResult>& results) {
                   result = results.front();
                 });
  cluster_->run_for(3 * kSeconds);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_TRUE(result->deadline_exceeded);
  EXPECT_LE(result->latency, 2600 * kMillis);
  EXPECT_EQ(client.metrics().counter_value("client.ops_deadline_exceeded"),
            1u);
}

TEST_F(ScriptedServerTest, DeadlineTrumpsOverloadBackoffWait) {
  // The shed's suggested wait does not fit the remaining budget: fail as
  // overloaded NOW instead of sleeping past the deadline.
  cluster_->transport().register_handler(
      NodeId(0), [&](const net::Message& msg) {
        if (msg.type != core::kOpEnvelope) return;
        const auto envelope = core::decode_op_envelope(msg.payload);
        ASSERT_TRUE(envelope.has_value());
        cluster_->transport().send(net::Message{
            NodeId(0), msg.src, core::kOverloaded,
            core::encode(
                core::OverloadReply{envelope->ops.front().rid, 5000})});
      });

  ClientOptions opts;
  opts.request_timeout = 2 * kSeconds;
  opts.max_attempts = 10;
  opts.op_deadline = kSeconds;
  opts.backoff_max = 10 * kSeconds;
  auto& client = cluster_->add_client(opts);

  std::optional<PutResult> result;
  client.put("k", Bytes{1}, 1, [&](const PutResult& r) { result = r; });
  cluster_->run_for(5 * kSeconds);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(client.metrics().counter_value("client.ops_overloaded"), 1u);
  EXPECT_EQ(result->attempts, 1u);
}

TEST_F(ScriptedServerTest, V1ClientFailsDefinitivelyOnOverloadFrame) {
  // A v1-pinned client still understands the kOverloaded frame (it is not
  // part of the negotiated op encoding): the op fails definitively instead
  // of crashing or hanging.
  cluster_->transport().register_handler(
      NodeId(0), [&](const net::Message& msg) {
        if (msg.type != core::kOpEnvelope) return;
        const auto envelope = core::decode_op_envelope(msg.payload);
        ASSERT_TRUE(envelope.has_value());
        EXPECT_EQ(envelope->protocol, core::kOpProtocolMin);
        cluster_->transport().send(net::Message{
            NodeId(0), msg.src, core::kOverloaded,
            core::encode(
                core::OverloadReply{envelope->ops.front().rid, 100})});
      });

  ClientOptions opts;
  opts.protocol_version = core::kOpProtocolMin;
  opts.request_timeout = 2 * kSeconds;
  opts.max_attempts = 2;
  opts.backoff_base = 50 * kMillis;
  auto& client = cluster_->add_client(opts);

  std::optional<PutResult> result;
  client.put("k", Bytes{1}, 1, [&](const PutResult& r) { result = r; });
  cluster_->run_for(30 * kSeconds);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(client.metrics().counter_value("client.ops_overloaded"), 1u);
  EXPECT_EQ(client.inflight(), 0u);
}

// ---- balancer overload feedback ---------------------------------------------

TEST(LoadBalancerOverload, AvoidsOverloadedContactUntilExpiry) {
  client::RandomLoadBalancer lb({NodeId(1), NodeId(2), NodeId(3)}, Rng(1));
  lb.node_overloaded(NodeId(2), 10 * kSeconds);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(lb.pick_contact(std::nullopt, kSeconds), NodeId(2));
  }
  // Past the window the node is re-admitted (and the entry purged).
  bool seen = false;
  for (int i = 0; i < 100 && !seen; ++i) {
    seen = lb.pick_contact(std::nullopt, 11 * kSeconds) == NodeId(2);
  }
  EXPECT_TRUE(seen);
  EXPECT_EQ(lb.overloaded_count(), 0u);
}

TEST(LoadBalancerOverload, SuccessFeedbackClearsOverload) {
  client::RandomLoadBalancer lb({NodeId(1), NodeId(2)}, Rng(1));
  lb.node_overloaded(NodeId(2), 10 * kSeconds);
  EXPECT_EQ(lb.overloaded_count(), 1u);
  lb.observe_replica(NodeId(2), 0);
  EXPECT_EQ(lb.overloaded_count(), 0u);
}

TEST(LoadBalancerOverload, OverloadedAnswerClearsUnreachable) {
  // An overload reply proves liveness: the node moves from the
  // unreachable set to the (time-bounded) overload set.
  client::RandomLoadBalancer lb({NodeId(1), NodeId(2)}, Rng(1));
  lb.node_unreachable(NodeId(2));
  lb.node_overloaded(NodeId(2), 5 * kSeconds);
  EXPECT_EQ(lb.overloaded_count(), 1u);
  // After expiry it is immediately pickable — the unreachable mark is gone.
  bool seen = false;
  for (int i = 0; i < 100 && !seen; ++i) {
    seen = lb.pick_contact(std::nullopt, 6 * kSeconds) == NodeId(2);
  }
  EXPECT_TRUE(seen);
}

TEST(LoadBalancerOverload, SliceCacheSkipsOverloadedEntryWithoutEvicting) {
  client::SliceCacheLoadBalancer lb({NodeId(1), NodeId(2), NodeId(3)},
                                    Rng(1));
  lb.observe_replica(NodeId(2), 7);
  EXPECT_EQ(lb.pick_contact(SliceId{7}, kSeconds), NodeId(2));
  lb.node_overloaded(NodeId(2), 10 * kSeconds);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(lb.pick_contact(SliceId{7}, kSeconds), NodeId(2));
  }
  // The cache entry survived the avoidance window: once the overload
  // expires the cached replica is used again.
  EXPECT_EQ(lb.pick_contact(SliceId{7}, 11 * kSeconds), NodeId(2));
}

}  // namespace
}  // namespace dataflasks
