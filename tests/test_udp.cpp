// Datagram framing and real UDP transport tests: exact round-trips, the
// fuzz discipline from test_fuzz_codecs applied to the frame codec
// (truncations at every prefix, corrupted bytes, garbage — a decoder must
// reject, never crash), and loopback delivery through real sockets
// including the learned-peer-address reply path.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "net/frame.hpp"
#include "net/udp_transport.hpp"
#include "runtime/real_time_runtime.hpp"

namespace dataflasks::net {
namespace {

Message sample_message() {
  Message msg;
  msg.src = NodeId(7);
  msg.dst = NodeId(11);
  msg.type = 0x0301;
  msg.payload = Payload(Bytes{1, 2, 3, 4, 5, 200, 0, 42});
  return msg;
}

Bytes frame_bytes(const Message& msg) {
  const Payload frame = encode_frame(msg);
  return Bytes(frame.begin(), frame.end());
}

// ---- framing ---------------------------------------------------------------

TEST(Frame, RoundTripsAllFields) {
  const Message original = sample_message();
  const Bytes wire = frame_bytes(original);
  EXPECT_EQ(wire.size(), kFrameHeaderSize + original.payload.size());

  const auto decoded = decode_frame(ByteView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->src, original.src);
  EXPECT_EQ(decoded->dst, original.dst);
  EXPECT_EQ(decoded->type, original.type);
  EXPECT_EQ(decoded->payload, original.payload);
}

TEST(Frame, RoundTripsEmptyPayload) {
  Message msg = sample_message();
  msg.payload = Payload();
  const Bytes wire = frame_bytes(msg);
  EXPECT_EQ(wire.size(), kFrameHeaderSize);
  const auto decoded = decode_frame(ByteView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload.size(), 0u);
}

TEST(Frame, RejectsEveryTruncation) {
  const Bytes wire = frame_bytes(sample_message());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(decode_frame(ByteView(wire.data(), len)).has_value())
        << "prefix of length " << len << " must be rejected";
  }
}

TEST(Frame, RejectsTrailingGarbage) {
  Bytes wire = frame_bytes(sample_message());
  wire.push_back(0xAB);
  EXPECT_FALSE(decode_frame(ByteView(wire.data(), wire.size())).has_value());
}

TEST(Frame, RejectsBadMagic) {
  Bytes wire = frame_bytes(sample_message());
  wire[0] ^= 0xFF;
  EXPECT_FALSE(decode_frame(ByteView(wire.data(), wire.size())).has_value());
}

TEST(Frame, RejectsOversizedDeclaredLength) {
  Bytes wire = frame_bytes(sample_message());
  // The length field sits right before the payload; declare more than the
  // datagram limit while keeping the datagram itself small.
  const std::size_t len_off = kFrameHeaderSize - sizeof(std::uint32_t);
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxFramePayload + 1);
  std::memcpy(wire.data() + len_off, &huge, sizeof huge);
  EXPECT_FALSE(decode_frame(ByteView(wire.data(), wire.size())).has_value());
}

TEST(Frame, RejectsLengthDisagreeingWithDatagram) {
  Bytes wire = frame_bytes(sample_message());
  const std::size_t len_off = kFrameHeaderSize - sizeof(std::uint32_t);
  std::uint32_t declared = 0;
  std::memcpy(&declared, wire.data() + len_off, sizeof declared);
  ++declared;  // claims one byte more than the datagram carries
  std::memcpy(wire.data() + len_off, &declared, sizeof declared);
  EXPECT_FALSE(decode_frame(ByteView(wire.data(), wire.size())).has_value());
}

TEST(Frame, SurvivesSeededRandomCorruption) {
  const Bytes valid = frame_bytes(sample_message());
  Rng rng(0xF4A3);
  for (int round = 0; round < 2000; ++round) {
    Bytes mutated = valid;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    // Must never crash; any result (reject or decode) is acceptable.
    (void)decode_frame(ByteView(mutated.data(), mutated.size()));
  }
}

TEST(Frame, SurvivesPureGarbage) {
  Rng rng(0xBEEF);
  for (int round = 0; round < 2000; ++round) {
    Bytes garbage(rng.next_below(128));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    (void)decode_frame(ByteView(garbage.data(), garbage.size()));
  }
}

// ---- UDP loopback ----------------------------------------------------------

TEST(UdpTransport, DeliversBetweenLoopbackSockets) {
  runtime::RealTimeRuntime rt(1);
  UdpTransport a(rt, {});
  UdpTransport b(rt, {});
  a.add_peer(NodeId(2), "127.0.0.1", b.local_port());

  std::vector<Message> received;
  b.register_handler(NodeId(2), [&](const Message& msg) {
    received.push_back(msg);
    rt.stop();
  });

  Message msg;
  msg.src = NodeId(1);
  msg.dst = NodeId(2);
  msg.type = 0x0301;
  msg.payload = Payload(Bytes{9, 8, 7});
  a.send(msg);

  rt.run_for(2 * kSeconds);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].src, NodeId(1));
  EXPECT_EQ(received[0].type, 0x0301);
  EXPECT_EQ(received[0].payload, msg.payload);
  EXPECT_EQ(b.total_delivered(), 1u);
}

TEST(UdpTransport, LearnsSenderAddressForReplies) {
  runtime::RealTimeRuntime rt(1);
  UdpTransport server(rt, {});
  UdpTransport client(rt, {});
  // Only the client knows the server statically — the reply direction must
  // work purely off the learned source address, as real client acks do.
  client.add_peer(NodeId(10), "127.0.0.1", server.local_port());

  bool reply_seen = false;
  server.register_handler(NodeId(10), [&](const Message& msg) {
    Message reply;
    reply.src = NodeId(10);
    reply.dst = msg.src;
    reply.type = msg.type;
    server.send(reply);
  });
  client.register_handler(NodeId(99), [&](const Message&) {
    reply_seen = true;
    rt.stop();
  });

  Message request;
  request.src = NodeId(99);
  request.dst = NodeId(10);
  request.type = 0x0302;
  client.send(request);

  rt.run_for(2 * kSeconds);
  EXPECT_TRUE(reply_seen);
  EXPECT_TRUE(server.knows_peer(NodeId(99)));
}

TEST(UdpTransport, CountsUnknownPeerAsDrop) {
  runtime::RealTimeRuntime rt(1);
  UdpTransport t(rt, {});
  Message msg;
  msg.src = NodeId(1);
  msg.dst = NodeId(404);
  t.send(msg);
  EXPECT_EQ(t.total_sent(), 1u);
  EXPECT_EQ(t.total_dropped(), 1u);
}

TEST(UdpTransport, DropsOversizedPayloadAtSend) {
  runtime::RealTimeRuntime rt(1);
  UdpTransport a(rt, {});
  UdpTransport b(rt, {});
  a.add_peer(NodeId(2), "127.0.0.1", b.local_port());
  Message msg;
  msg.src = NodeId(1);
  msg.dst = NodeId(2);
  msg.payload = Payload(Bytes(kMaxFramePayload + 1, 0xCC));
  a.send(msg);
  EXPECT_EQ(a.total_dropped(), 1u);
}

TEST(UdpTransport, AdvertisesStampedLocalEndpoint) {
  runtime::RealTimeRuntime rt(1);
  UdpTransport a(rt, {});
  UdpTransport b(rt, {});
  const auto ea = a.local_endpoint();
  const auto eb = b.local_endpoint();
  ASSERT_TRUE(ea.has_value());
  ASSERT_TRUE(eb.has_value());
  EXPECT_EQ(ea->ip, 0x7F000001u);  // 127.0.0.1, host byte order
  EXPECT_EQ(ea->port, a.local_port());
  // Stamps are strictly ordered by creation: a restarted transport always
  // outranks its previous incarnation.
  EXPECT_LT(ea->stamp, eb->stamp);

  UdpTransport::Options wildcard;
  wildcard.bind_host = "0.0.0.0";
  UdpTransport c(rt, wildcard);
  EXPECT_FALSE(c.local_endpoint().has_value())
      << "the wildcard address is not reachable and must not be gossiped";
}

TEST(UdpTransport, GossipLearnedEndpointRoutesSends) {
  runtime::RealTimeRuntime rt(1);
  UdpTransport a(rt, {});
  UdpTransport b(rt, {});
  // No add_peer: a learns b's address purely from a gossiped endpoint.
  a.learn_endpoint(NodeId(2), Endpoint{0x7F000001, b.local_port(), 5});
  EXPECT_TRUE(a.knows_peer(NodeId(2)));

  bool delivered = false;
  b.register_handler(NodeId(2), [&](const Message&) {
    delivered = true;
    rt.stop();
  });
  Message msg;
  msg.src = NodeId(1);
  msg.dst = NodeId(2);
  msg.type = 0x0301;
  a.send(msg);
  rt.run_for(2 * kSeconds);
  EXPECT_TRUE(delivered);
}

TEST(UdpTransport, LearnedPeerTableIsBounded) {
  runtime::RealTimeRuntime rt(1);
  UdpTransport::Options options;
  options.max_learned_peers = 4;
  UdpTransport target(rt, options);
  target.add_peer(NodeId(1000), "127.0.0.1", 7999);  // pinned, exempt
  target.register_handler(NodeId(500), [](const Message&) {});

  // A parade of ephemeral-port clients; each datagram learns an entry, but
  // the table must not grow past the bound (+ the pinned entry).
  std::vector<std::unique_ptr<UdpTransport>> clients;
  for (std::uint64_t i = 0; i < 10; ++i) {
    clients.push_back(std::make_unique<UdpTransport>(rt, UdpTransport::Options{}));
    clients.back()->add_peer(NodeId(500), "127.0.0.1", target.local_port());
    Message msg;
    msg.src = NodeId(i);
    msg.dst = NodeId(500);
    msg.type = 0x0301;
    clients.back()->send(msg);
  }
  const SimTime deadline = rt.now() + 5 * kSeconds;
  while (target.total_delivered() < 10 && rt.now() < deadline) {
    rt.run_for(20 * kMillis);
  }
  ASSERT_EQ(target.total_delivered(), 10u);
  EXPECT_LE(target.peers().learned_count(), 4u);
  EXPECT_TRUE(target.knows_peer(NodeId(1000)));  // pinned survived
}

TEST(UdpTransport, DatagramSourceDoesNotClobberPinnedPeer) {
  runtime::RealTimeRuntime rt(1);
  UdpTransport target(rt, {});
  UdpTransport real_peer(rt, {});
  UdpTransport impostor(rt, {});
  target.register_handler(NodeId(9), [](const Message&) {});
  target.add_peer(NodeId(5), "127.0.0.1", real_peer.local_port());

  // The impostor's datagrams claim src=5 from a different socket; the
  // pinned route must keep pointing at the configured address.
  impostor.add_peer(NodeId(9), "127.0.0.1", target.local_port());
  Message forged;
  forged.src = NodeId(5);
  forged.dst = NodeId(9);
  forged.type = 0x0301;
  impostor.send(forged);

  const SimTime deadline = rt.now() + 5 * kSeconds;
  while (target.total_delivered() < 1 && rt.now() < deadline) {
    rt.run_for(20 * kMillis);
  }
  ASSERT_EQ(target.total_delivered(), 1u);
  EXPECT_EQ(target.peers().port_of(NodeId(5)), real_peer.local_port());

  // Authoritative gossip (fresher stamp) is still allowed to heal it.
  target.learn_endpoint(NodeId(5),
                        Endpoint{0x7F000001, impostor.local_port(), 99});
  EXPECT_EQ(target.peers().port_of(NodeId(5)), impostor.local_port());
}

TEST(UdpTransport, SeedProbeDiscoversNodeIdAndPins) {
  runtime::RealTimeRuntime rt(1);
  UdpTransport server(rt, {});
  server.register_handler(NodeId(7), [](const Message&) {});

  UdpTransport joiner(rt, {});
  NodeId discovered;
  joiner.set_seed_listener([&](NodeId id) {
    discovered = id;
    rt.stop();
  });
  // Only an address, no id: the probe handshake resolves it.
  joiner.add_seed("127.0.0.1", server.local_port());
  EXPECT_EQ(joiner.pending_seeds(), 1u);

  rt.run_for(5 * kSeconds);
  EXPECT_EQ(discovered, NodeId(7));
  EXPECT_EQ(joiner.pending_seeds(), 0u);
  EXPECT_TRUE(joiner.knows_peer(NodeId(7)));
  EXPECT_TRUE(joiner.peers().pinned(NodeId(7)));
  EXPECT_EQ(joiner.peers().port_of(NodeId(7)), server.local_port());
  // The reply carried the server's stamped endpoint.
  EXPECT_GT(joiner.peers().stamp_of(NodeId(7)), 0u);
}

TEST(UdpTransport, SeedProbeRetriesUntilServerRegisters) {
  runtime::RealTimeRuntime rt(1);
  UdpTransport::Options fast_probe;
  fast_probe.seed_probe_period = 50 * kMillis;
  UdpTransport server(rt, {});
  UdpTransport joiner(rt, fast_probe);
  bool resolved = false;
  joiner.set_seed_listener([&](NodeId) {
    resolved = true;
    rt.stop();
  });
  // Probe a server that has not registered its node yet: the first probe
  // gets no answer; a retry after registration must still resolve it.
  joiner.add_seed("127.0.0.1", server.local_port());
  rt.run_for(120 * kMillis);
  EXPECT_FALSE(resolved);

  server.register_handler(NodeId(3), [](const Message&) {});
  rt.run_for(5 * kSeconds);
  EXPECT_TRUE(resolved);
  EXPECT_TRUE(joiner.peers().pinned(NodeId(3)));
}

TEST(UdpTransport, IgnoresGarbageDatagrams) {
  runtime::RealTimeRuntime rt(1);
  UdpTransport target(rt, {});
  bool delivered = false;
  target.register_handler(NodeId(1), [&](const Message&) { delivered = true; });

  // A raw socket throwing noise at the port: must be counted, not crash,
  // and never reach a handler.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(target.local_port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const char noise[] = "definitely not a dataflasks frame";
  ASSERT_GT(::sendto(fd, noise, sizeof noise, 0,
                     reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
            0);
  ::close(fd);

  rt.run_for(50 * kMillis);
  EXPECT_FALSE(delivered);
  EXPECT_EQ(target.decode_failures(), 1u);
}

TEST(UdpTransport, StatsRequestAnsweredBelowProtocolDispatch) {
  // kStatsRequest is handled inside the transport, before protocol
  // dispatch: a scraper needs no node id, no registered handler and no
  // protocol state — just the server's address.
  runtime::RealTimeRuntime rt(1);
  UdpTransport server(rt, {});
  server.register_handler(NodeId(7), [&](const Message&) {});
  server.set_stats_provider([] {
    return std::string("df_test_total 42\n");
  });

  UdpTransport scraper(rt, {});
  scraper.add_peer(NodeId(7), "127.0.0.1", server.local_port());
  std::string body;
  scraper.register_handler(NodeId(0xC0FFEE), [&](const Message& msg) {
    ASSERT_EQ(msg.type, kStatsReply);
    EXPECT_EQ(msg.src, NodeId(7));  // first registered handler's node
    const ByteView view = msg.payload.view();
    body.assign(reinterpret_cast<const char*>(view.data()), view.size());
    rt.stop();
  });

  Message request;
  request.src = NodeId(0xC0FFEE);
  request.dst = NodeId(7);
  request.type = kStatsRequest;
  scraper.send(request);

  rt.run_for(2 * kSeconds);
  EXPECT_EQ(body, "df_test_total 42\n");
}

TEST(UdpTransport, StatsRequestWithoutProviderIsCountedDrop) {
  runtime::RealTimeRuntime rt(1);
  UdpTransport server(rt, {});  // no provider configured
  UdpTransport scraper(rt, {});
  scraper.add_peer(NodeId(7), "127.0.0.1", server.local_port());

  Message request;
  request.src = NodeId(0xC0FFEE);
  request.dst = NodeId(7);
  request.type = kStatsRequest;
  scraper.send(request);

  rt.run_for(100 * kMillis);
  EXPECT_EQ(server.total_dropped(), 1u);
  EXPECT_EQ(server.total_delivered(), 0u);
}

}  // namespace
}  // namespace dataflasks::net
