// Two-round summary anti-entropy: converged pairs exchange O(buckets)
// bytes, small diffs cost a few buckets of per-key fallback, and the whole
// protocol stays an order of magnitude under the legacy full-digest
// exchange — asserted against the ae.bytes_sent counter, not hand-waved.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/anti_entropy.hpp"
#include "obs/metrics.hpp"
#include "store/memstore.hpp"
#include "test_util.hpp"

namespace dataflasks::core {
namespace {

using testing::SimBundle;

Payload value_of(const std::string& text) {
  return Payload(Bytes(text.begin(), text.end()));
}

/// Two stores joined by anti-entropy over the simulated transport (same
/// shape as the AePair in test_core.cpp, with per-node metrics exposed).
struct SummaryPair {
  explicit SummaryPair(SimBundle& bundle, AntiEntropyOptions opts) {
    auto key_slice = [](const Key&) { return SliceId{0}; };
    a = std::make_unique<AntiEntropy>(
        NodeId(0), *bundle.transport, store_a, Rng(1), opts,
        []() { return SliceId{0}; }, key_slice,
        [](std::size_t) { return std::vector<NodeId>{NodeId(1)}; },
        metrics_a);
    b = std::make_unique<AntiEntropy>(
        NodeId(1), *bundle.transport, store_b, Rng(2), opts,
        []() { return SliceId{0}; }, key_slice,
        [](std::size_t) { return std::vector<NodeId>{NodeId(0)}; },
        metrics_b);
    bundle.transport->register_handler(
        NodeId(0), [this](const net::Message& msg) { a->handle(msg); });
    bundle.transport->register_handler(
        NodeId(1), [this](const net::Message& msg) { b->handle(msg); });
  }

  [[nodiscard]] std::uint64_t bytes_sent() const {
    return metrics_a.counter_value("ae.bytes_sent") +
           metrics_b.counter_value("ae.bytes_sent");
  }

  store::MemStore store_a, store_b;
  MetricsRegistry metrics_a, metrics_b;
  std::unique_ptr<AntiEntropy> a, b;
};

void fill(store::MemStore& store, const std::string& prefix, int count) {
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(
        store.put({prefix + std::to_string(i), 1, value_of("v")}).ok());
  }
}

TEST(AeSummary, ConvergedPairCostsOneSummaryAndNothingElse) {
  SimBundle bundle(71);
  SummaryPair pair(bundle, {});
  fill(pair.store_a, "key", 1000);
  fill(pair.store_b, "key", 1000);

  pair.a->tick();
  bundle.run_for(5 * kSeconds);

  EXPECT_EQ(pair.metrics_a.counter_value("ae.summaries_sent"), 1u);
  EXPECT_EQ(pair.metrics_b.counter_value("ae.summaries_converged"), 1u);
  EXPECT_EQ(pair.metrics_b.counter_value("ae.bucket_digests_sent"), 0u);
  EXPECT_EQ(pair.metrics_b.counter_value("ae.pulls_sent"), 0u);
  // The whole round is one summary: well under the 1000-entry digest the
  // legacy protocol would have sent (and nothing flows back).
  EXPECT_LT(pair.metrics_a.counter_value("ae.bytes_sent"), 2048u);
  EXPECT_EQ(pair.metrics_b.counter_value("ae.bytes_sent"), 0u);
}

TEST(AeSummary, TwoRoundExchangeRepairsBothDirections) {
  SimBundle bundle(72);
  AntiEntropyOptions opts;
  opts.digest_cap = 4096;  // bucket fallback covers the diff in one round
  SummaryPair pair(bundle, opts);
  fill(pair.store_a, "shared", 500);
  fill(pair.store_b, "shared", 500);
  fill(pair.store_a, "only_a", 5);
  fill(pair.store_b, "only_b", 5);

  pair.a->tick();
  bundle.run_for(10 * kSeconds);

  EXPECT_EQ(pair.store_a.object_count(), 510u);
  EXPECT_EQ(pair.store_b.object_count(), 510u);
  EXPECT_GE(pair.metrics_b.counter_value("ae.bucket_digests_sent"), 1u);
  EXPECT_GE(pair.metrics_a.counter_value("ae.bucket_digests_sent"), 1u);
  EXPECT_GE(pair.metrics_a.counter_value("ae.objects_repaired"), 5u);
  EXPECT_GE(pair.metrics_b.counter_value("ae.objects_repaired"), 5u);
}

TEST(AeSummary, SmallStoresFallBackToLegacyDigests) {
  SimBundle bundle(73);
  SummaryPair pair(bundle, {});  // summary_min_entries = 64 default
  fill(pair.store_a, "tiny", 10);

  pair.a->tick();
  bundle.run_for(5 * kSeconds);

  EXPECT_EQ(pair.metrics_a.counter_value("ae.summaries_sent"), 0u);
  EXPECT_GE(pair.metrics_a.counter_value("ae.digests_sent"), 1u);
  EXPECT_EQ(pair.store_b.object_count(), 10u);
}

// The tentpole O(diff) claim: a 10k-key pair disagreeing on 10 keys must
// exchange less than 10% of what the per-key digest protocol costs for the
// same repair. Both runs use a digest cap large enough to converge in one
// exchange, so the comparison is bytes-for-the-same-work.
TEST(AeSummary, TenKeyDiffOnTenThousandKeysCostsUnderTenPercentOfLegacy) {
  constexpr int kShared = 10000;
  constexpr int kDiff = 10;

  const auto run = [](bool summary_protocol) {
    SimBundle bundle(74);
    AntiEntropyOptions opts;
    opts.summary_protocol = summary_protocol;
    opts.digest_cap = 2 * kShared;  // one-exchange convergence, both modes
    opts.push_cap = 2 * kDiff;
    auto pair = std::make_unique<SummaryPair>(bundle, opts);
    fill(pair->store_a, "key", kShared);
    fill(pair->store_b, "key", kShared);
    fill(pair->store_a, "fresh", kDiff);

    pair->a->tick();
    bundle.run_for(10 * kSeconds);
    EXPECT_EQ(pair->store_b.object_count(),
              static_cast<std::size_t>(kShared + kDiff))
        << (summary_protocol ? "summary" : "legacy") << " did not converge";
    return pair->bytes_sent();
  };

  const std::uint64_t summary_bytes = run(true);
  const std::uint64_t legacy_bytes = run(false);
  EXPECT_GT(summary_bytes, 0u);
  EXPECT_LT(summary_bytes * 10, legacy_bytes)
      << "summary protocol sent " << summary_bytes << " bytes vs legacy "
      << legacy_bytes;
}

}  // namespace
}  // namespace dataflasks::core
