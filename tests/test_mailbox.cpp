// Cross-shard mailbox: the Vyukov MPSC queue under multi-producer stress
// (run under ASan/TSan in CI), plus the RealTimeRuntime door built on it —
// post_from_any_thread must execute closures on the loop thread promptly,
// and stop() must wake a sleeping loop from another thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/mailbox.hpp"
#include "runtime/real_time_runtime.hpp"

namespace dataflasks::runtime {
namespace {

TEST(Mailbox, SingleThreadPushDrainFifo) {
  Mailbox mailbox;
  std::vector<int> seen;
  for (int i = 0; i < 100; ++i) {
    mailbox.push([&seen, i]() { seen.push_back(i); });
  }
  EXPECT_TRUE(mailbox.likely_nonempty());
  const std::size_t drained =
      mailbox.drain([](UniqueFunction fn) { fn(); });
  EXPECT_EQ(drained, 100u);
  ASSERT_EQ(seen.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(seen[i], i);
  EXPECT_FALSE(mailbox.likely_nonempty());
}

TEST(Mailbox, DrainOnEmptyIsZero) {
  Mailbox mailbox;
  EXPECT_EQ(mailbox.drain([](UniqueFunction fn) { fn(); }), 0u);
}

TEST(Mailbox, DestructorFreesUndrainedClosures) {
  // ASan is the real assertion here: captured payloads must be released.
  auto payload = std::make_shared<int>(42);
  {
    Mailbox mailbox;
    for (int i = 0; i < 10; ++i) {
      mailbox.push([payload]() { (void)*payload; });
    }
    EXPECT_EQ(payload.use_count(), 11);
  }
  EXPECT_EQ(payload.use_count(), 1);
}

// The shape the shard router produces: several ingress shards pushing
// concurrently while one owner shard drains. Every closure must run
// exactly once, and each producer's own closures must stay in order.
TEST(Mailbox, MultiProducerStressLosesNothingKeepsPerProducerOrder) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;

  Mailbox mailbox;
  std::atomic<std::uint64_t> executed{0};
  std::vector<std::uint64_t> last_seen(kProducers, 0);
  std::atomic<bool> order_violated{false};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p]() {
      for (std::uint64_t i = 1; i <= kPerProducer; ++i) {
        mailbox.push([&, p, i]() {
          if (last_seen[p] >= i) order_violated.store(true);
          last_seen[p] = i;
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }

  // Single consumer, like a shard loop: drain until everything arrived.
  const std::uint64_t total = kProducers * kPerProducer;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (executed.load(std::memory_order_relaxed) < total &&
         std::chrono::steady_clock::now() < deadline) {
    if (mailbox.drain([](UniqueFunction fn) { fn(); }) == 0) {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  mailbox.drain([](UniqueFunction fn) { fn(); });

  EXPECT_EQ(executed.load(), total);
  EXPECT_FALSE(order_violated.load()) << "per-producer FIFO order broke";
}

TEST(RealTimeRuntimeMailbox, PostFromAnyThreadRunsOnLoopPromptly) {
  RealTimeRuntime rt(0x3B);
  std::atomic<std::uint64_t> ran{0};

  // Producers hammer the door while the loop runs on this thread; the
  // eventfd wake must keep latency bounded with NO polling timer armed.
  constexpr std::uint64_t kPosts = 2'000;
  std::thread producer([&]() {
    for (std::uint64_t i = 0; i < kPosts; ++i) {
      rt.post_from_any_thread(
          [&ran]() { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    rt.post_from_any_thread([&rt]() { rt.stop(); });
  });

  rt.run_for(10 * kSeconds);  // exits early via the posted stop
  producer.join();
  rt.run_for(10 * kMillis);  // drain any stragglers
  EXPECT_EQ(ran.load(), kPosts);
  EXPECT_GE(rt.mailbox_drained(), kPosts);
}

TEST(RealTimeRuntimeMailbox, CrossThreadStopWakesSleepingLoop) {
  RealTimeRuntime rt(0x3C);
  // Nothing scheduled: the loop would sleep its full poll timeout. A
  // cross-thread stop must wake it well before the 2s run_for deadline.
  std::thread stopper([&rt]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    rt.stop();
  });
  const auto start = std::chrono::steady_clock::now();
  rt.run_for(10 * kSeconds);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  stopper.join();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000)
      << "stop() from another thread failed to wake the poll loop";
}

}  // namespace
}  // namespace dataflasks::runtime
