// ShardGroup end-to-end: a 4-shard shared-nothing server process serving
// the full operation API over real loopback UDP, with a client whose single
// socket forces one ingress shard — so serving keys across all four store
// partitions exercises the cross-shard mailbox path, not just local
// execution. The single-shard test pins the degenerate case: --shards 1
// must be the classic node wiring (no router, counters in the node
// registry), which is what keeps the pre-refactor behavior reachable.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "client/load_balancer.hpp"
#include "net/udp_transport.hpp"
#include "runtime/real_time_runtime.hpp"
#include "server/shard_group.hpp"
#include "store/memstore.hpp"
#include "store/sharded_store.hpp"

namespace dataflasks::server {
namespace {

constexpr std::uint64_t kServerId = 1;

ShardGroupOptions fast_group_options(std::size_t shards) {
  ShardGroupOptions options;
  options.id = NodeId(kServerId);
  options.seed = 0xE2E0 + shards;
  options.shards = shards;
  options.node.pss_period = 30 * kMillis;
  options.node.slicing_period = 30 * kMillis;
  options.node.advert_period = 30 * kMillis;
  options.node.ae_period = 100 * kMillis;
  options.node.st_tick_period = 60 * kMillis;
  options.node.handoff_period = 60 * kMillis;
  options.node.slice_config = {1, 1};
  options.snapshot_period = 50 * kMillis;
  return options;
}

std::unique_ptr<store::Store> make_partitions(std::size_t count) {
  std::vector<std::unique_ptr<store::Store>> parts;
  for (std::size_t i = 0; i < count; ++i) {
    parts.push_back(std::make_unique<store::MemStore>());
  }
  return std::make_unique<store::ShardedStore>(std::move(parts));
}

/// Client-side fixture: its own runtime + socket, the group's port pinned.
struct TestClient {
  explicit TestClient(std::uint16_t server_port)
      : rt(0xC11E),
        transport(rt, {}),
        balancer({NodeId(kServerId)}, Rng(7)),
        client(NodeId(9000), transport, rt, balancer, Rng(8), options()) {
    transport.add_peer(NodeId(kServerId), "127.0.0.1", server_port);
  }

  static client::ClientOptions options() {
    client::ClientOptions options;
    options.request_timeout = 500 * kMillis;
    options.max_attempts = 4;
    return options;
  }

  runtime::RealTimeRuntime rt;
  net::UdpTransport transport;
  client::RandomLoadBalancer balancer;
  client::Client client;

  /// Runs the client loop until `done` flips (the callback stops it).
  void wait(const bool& done) {
    const SimTime deadline = rt.now() + 10 * kSeconds;
    while (!done && rt.now() < deadline) rt.run_for(20 * kMillis);
  }
};

/// 16 keys guaranteed to cover every one of the 4 store partitions.
std::vector<Key> covering_keys() {
  std::vector<Key> keys;
  bool covered[4] = {false, false, false, false};
  for (int i = 0; keys.size() < 16; ++i) {
    const Key key = "sg-key-" + std::to_string(i);
    covered[store::ShardedStore::partition_of(key, 4)] = true;
    keys.push_back(key);
  }
  EXPECT_TRUE(covered[0] && covered[1] && covered[2] && covered[3]);
  return keys;
}

TEST(ShardGroup, FourShardsServeOpsAcrossPartitionsOverRealUdp) {
  ShardGroup group(fast_group_options(4), make_partitions(4));
  ASSERT_EQ(group.shard_count(), 4u);
  group.start({});
  group.start_workers();
  std::thread loop([&group]() { group.run(); });

  TestClient tc(group.local_port());
  const std::vector<Key> keys = covering_keys();

  // ---- puts across every partition ------------------------------------
  for (std::size_t i = 0; i < keys.size(); ++i) {
    bool done = false;
    client::PutResult result;
    tc.client.put(keys[i], Payload(Bytes{static_cast<std::uint8_t>(i)}),
                  /*version=*/5, [&](const client::PutResult& r) {
                    result = r;
                    done = true;
                    tc.rt.stop();
                  });
    tc.wait(done);
    ASSERT_TRUE(done) << keys[i];
    ASSERT_TRUE(result.ok) << keys[i] << " failed after " << result.attempts
                           << " attempts";
  }

  // ---- gets come back with the stored value ---------------------------
  for (std::size_t i = 0; i < keys.size(); ++i) {
    bool done = false;
    client::GetResult result;
    tc.client.get(keys[i], std::nullopt, [&](const client::GetResult& r) {
      result = r;
      done = true;
      tc.rt.stop();
    });
    tc.wait(done);
    ASSERT_TRUE(done) << keys[i];
    ASSERT_TRUE(result.ok) << keys[i];
    EXPECT_EQ(result.object.version, 5u);
    EXPECT_EQ(result.object.value,
              Bytes{static_cast<std::uint8_t>(i)});
  }

  // ---- delete answers authoritatively through its owner shard ---------
  {
    bool done = false;
    client::DelResult result;
    tc.client.del(keys[0], /*version=*/9, [&](const client::DelResult& r) {
      result = r;
      done = true;
      tc.rt.stop();
    });
    tc.wait(done);
    ASSERT_TRUE(done);
    ASSERT_TRUE(result.ok);
  }
  {
    bool done = false;
    client::GetResult result;
    tc.client.get(keys[0], std::nullopt, [&](const client::GetResult& r) {
      result = r;
      done = true;
      tc.rt.stop();
    });
    tc.wait(done);
    ASSERT_TRUE(done);
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(result.deleted) << "tombstone must answer, not time out";
  }

  group.stop();
  loop.join();
  group.shutdown();

  // Every key (plus one tombstone) landed in the shared store.
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_TRUE(group.node().store().contains(keys[i], 5)) << keys[i];
  }
  EXPECT_EQ(group.node().store().tombstone_version(keys[0]), 9u);

  // The merged counters must account for every op — and because the
  // client's single socket hashes to ONE ingress shard while the keys
  // cover all four partitions, some ops MUST have crossed shards.
  MetricsRegistry merged;
  group.merge_counters(merged);
  EXPECT_EQ(merged.counter_value("rh.puts_stored"), keys.size());
  EXPECT_EQ(merged.counter_value("rh.deletes_stored"), 1u);
  EXPECT_GE(merged.counter_value("rh.gets_served"), keys.size() - 1);
  EXPECT_GE(merged.counter_value("shard.ops_cross_shard"), 1u)
      << "cross-shard mailbox path never engaged";
  EXPECT_GE(group.totals().mailbox_drained, 1u);
}

TEST(ShardGroup, SingleShardIsTheClassicNodeWiring) {
  ShardGroup group(fast_group_options(1), nullptr);
  ASSERT_EQ(group.shard_count(), 1u);
  group.start({});
  group.start_workers();  // no-op: no worker threads with one shard
  std::thread loop([&group]() { group.run(); });

  TestClient tc(group.local_port());
  bool put_done = false;
  client::PutResult put_result;
  tc.client.put("classic-key", Payload(Bytes{0x01}), 3,
                [&](const client::PutResult& r) {
                  put_result = r;
                  put_done = true;
                  tc.rt.stop();
                });
  tc.wait(put_done);
  ASSERT_TRUE(put_done);
  ASSERT_TRUE(put_result.ok);

  bool get_done = false;
  client::GetResult get_result;
  tc.client.get("classic-key", std::nullopt,
                [&](const client::GetResult& r) {
                  get_result = r;
                  get_done = true;
                  tc.rt.stop();
                });
  tc.wait(get_done);
  ASSERT_TRUE(get_done);
  ASSERT_TRUE(get_result.ok);
  EXPECT_EQ(get_result.object.version, 3u);

  group.stop();
  loop.join();
  group.shutdown();

  // Classic path: the node's own RequestHandler executed the ops, so its
  // counters live in the node registry and NO shard-router counter moved.
  EXPECT_EQ(group.node().metrics().counter_value("rh.puts_stored"), 1u);
  MetricsRegistry merged;
  group.merge_counters(merged);
  EXPECT_EQ(merged.counter_value("rh.puts_stored"), 0u);
  EXPECT_EQ(merged.counter_value("shard.ops_cross_shard"), 0u);
}

}  // namespace
}  // namespace dataflasks::server
