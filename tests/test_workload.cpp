// Unit tests for the YCSB-style workload generators.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/distributions.hpp"
#include "workload/ycsb.hpp"

namespace dataflasks::workload {
namespace {

// ---- distributions ------------------------------------------------------------

TEST(Distributions, UniformCoversRange) {
  Rng rng(1);
  UniformDistribution d(100);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = d.next(rng);
    ASSERT_LT(v, 100u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Distributions, ZipfianIsSkewedTowardZero) {
  Rng rng(2);
  ZipfianDistribution d(1000);
  std::map<std::uint64_t, int> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[d.next(rng)];
  // Item 0 is the most popular; YCSB zipf(0.99) gives it ~7-10% of traffic.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], kSamples / 25);
  // And the tail still gets hit.
  int tail_hits = 0;
  for (const auto& [item, count] : counts) {
    if (item > 500) tail_hits += count;
  }
  EXPECT_GT(tail_hits, 0);
}

TEST(Distributions, ZipfianStaysInRange) {
  Rng rng(3);
  for (std::uint64_t n : {1ULL, 2ULL, 10ULL, 12345ULL}) {
    ZipfianDistribution d(n);
    for (int i = 0; i < 1000; ++i) ASSERT_LT(d.next(rng), n);
  }
}

TEST(Distributions, ScrambledZipfianSpreadsHotKeys) {
  Rng rng(4);
  ScrambledZipfianDistribution d(1000);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[d.next(rng)];
  // The hottest item should NOT be item 0 (hash-scrambled placement) —
  // or rather, the hot spots should be spread: check that the top item is
  // hot but its neighbours are not automatically hot too.
  auto hottest = counts.begin();
  for (auto it = counts.begin(); it != counts.end(); ++it) {
    if (it->second > hottest->second) hottest = it;
  }
  EXPECT_GT(hottest->second, 1000);
  const auto neighbour = counts.find(hottest->first + 1);
  if (neighbour != counts.end()) {
    EXPECT_LT(neighbour->second, hottest->second / 2);
  }
}

TEST(Distributions, LatestFavoursRecentItems) {
  Rng rng(5);
  LatestDistribution d(1000);
  std::uint64_t recent_hits = 0, old_hits = 0;
  for (int i = 0; i < 100000; ++i) {
    const auto v = d.next(rng);
    ASSERT_LT(v, 1000u);
    if (v >= 900) ++recent_hits;
    if (v < 100) ++old_hits;
  }
  EXPECT_GT(recent_hits, old_hits * 3);
}

TEST(Distributions, GrowExtendsRange) {
  Rng rng(6);
  UniformDistribution d(10);
  d.grow(20);
  bool saw_new = false;
  for (int i = 0; i < 10000; ++i) {
    if (d.next(rng) >= 10) saw_new = true;
  }
  EXPECT_TRUE(saw_new);
  EXPECT_EQ(d.item_count(), 20u);
}

// ---- workload specs -------------------------------------------------------------

TEST(WorkloadSpec, PresetProportionsSumToOne) {
  for (const auto& spec :
       {WorkloadSpec::A(), WorkloadSpec::B(), WorkloadSpec::C(),
        WorkloadSpec::D(), WorkloadSpec::F(), WorkloadSpec::write_only()}) {
    const double total = spec.read_proportion + spec.update_proportion +
                         spec.insert_proportion + spec.rmw_proportion;
    EXPECT_NEAR(total, 1.0, 1e-9) << spec.name;
  }
}

TEST(WorkloadSpec, WriteOnlyHasNoReads) {
  const auto spec = WorkloadSpec::write_only();
  EXPECT_EQ(spec.read_proportion, 0.0);
  EXPECT_EQ(spec.update_proportion, 1.0);
}

// ---- generator ---------------------------------------------------------------------

TEST(WorkloadGenerator, LoadPhaseInsertsEveryRecordOnce) {
  WorkloadSpec spec = WorkloadSpec::write_only();
  spec.record_count = 100;
  WorkloadGenerator gen(spec, Rng(1));
  const auto ops = gen.load_phase();
  ASSERT_EQ(ops.size(), 100u);
  std::set<Key> keys;
  for (const auto& op : ops) {
    EXPECT_EQ(static_cast<int>(op.kind), static_cast<int>(OpKind::kInsert));
    keys.insert(op.key);
  }
  EXPECT_EQ(keys.size(), 100u);
}

TEST(WorkloadGenerator, TransactionPhaseHonoursMix) {
  WorkloadSpec spec = WorkloadSpec::A();  // 50/50 read/update
  spec.record_count = 100;
  spec.operation_count = 10000;
  WorkloadGenerator gen(spec, Rng(2));
  int reads = 0, updates = 0;
  for (const auto& op : gen.transaction_phase()) {
    if (op.kind == OpKind::kRead) ++reads;
    if (op.kind == OpKind::kUpdate) ++updates;
  }
  EXPECT_NEAR(reads / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(updates / 10000.0, 0.5, 0.03);
}

TEST(WorkloadGenerator, InsertsCreateFreshKeys) {
  WorkloadSpec spec;
  spec.name = "insert-only";
  spec.insert_proportion = 1.0;
  spec.record_count = 10;
  spec.operation_count = 50;
  WorkloadGenerator gen(spec, Rng(3));
  const auto load = gen.load_phase();
  std::set<Key> loaded;
  for (const auto& op : load) loaded.insert(op.key);

  for (const auto& op : gen.transaction_phase()) {
    EXPECT_EQ(static_cast<int>(op.kind), static_cast<int>(OpKind::kInsert));
    EXPECT_FALSE(loaded.contains(op.key)) << "insert reused key " << op.key;
  }
}

TEST(WorkloadGenerator, DeterministicForSameSeed) {
  WorkloadSpec spec = WorkloadSpec::B();
  spec.operation_count = 100;
  WorkloadGenerator a(spec, Rng(7));
  WorkloadGenerator b(spec, Rng(7));
  const auto ops_a = a.transaction_phase();
  const auto ops_b = b.transaction_phase();
  ASSERT_EQ(ops_a.size(), ops_b.size());
  for (std::size_t i = 0; i < ops_a.size(); ++i) {
    EXPECT_EQ(ops_a[i].key, ops_b[i].key);
    EXPECT_EQ(static_cast<int>(ops_a[i].kind),
              static_cast<int>(ops_b[i].kind));
  }
}

TEST(WorkloadGenerator, KeyForIsStableAndSpread) {
  EXPECT_EQ(WorkloadGenerator::key_for(5), WorkloadGenerator::key_for(5));
  EXPECT_NE(WorkloadGenerator::key_for(5), WorkloadGenerator::key_for(6));
  EXPECT_TRUE(WorkloadGenerator::key_for(0).starts_with("user"));
}

TEST(WorkloadGenerator, RejectsBadProportions) {
  WorkloadSpec spec;
  spec.read_proportion = 0.5;  // sums to 0.5
  EXPECT_THROW(WorkloadGenerator(spec, Rng(1)), InvariantViolation);
}

}  // namespace
}  // namespace dataflasks::workload
