// Whole-system integration tests: a full DataFlasks deployment in the
// simulator — slicing convergence, write replication across the slice,
// durability under churn and correlated failure, dynamic re-sharding, and
// crash-restart state transfer. These are the paper's dependability claims
// exercised end to end.
#include <gtest/gtest.h>

#include <memory>

#include "harness/cluster.hpp"
#include "harness/runner.hpp"

namespace dataflasks::harness {
namespace {

ClusterOptions default_options(std::size_t nodes, std::uint32_t slices,
                               std::uint64_t seed) {
  ClusterOptions opts;
  opts.node_count = nodes;
  opts.seed = seed;
  opts.node.slice_config = {slices, 1};
  return opts;
}

TEST(Integration, SlicingPopulatesAllSlices) {
  Cluster cluster(default_options(100, 5, 11));
  cluster.start_all();
  cluster.run_for(90 * kSeconds);

  const auto histogram = cluster.slice_histogram();
  ASSERT_EQ(histogram.size(), 5u);
  for (const auto& [slice, count] : histogram) {
    EXPECT_NEAR(count, 20, 12) << "slice " << slice;
  }
}

TEST(Integration, WriteReplicatesAcrossItsSlice) {
  Cluster cluster(default_options(80, 4, 12));
  cluster.start_all();
  cluster.run_for(90 * kSeconds);

  auto& client = cluster.add_client();
  client.put("replicated", Bytes{1, 2, 3}, 1, nullptr);
  cluster.run_for(5 * kSeconds);

  // Immediately: the storing member + direct pushes.
  EXPECT_GE(cluster.replica_count("replicated", 1), 1u);

  // After anti-entropy rounds: (nearly) the whole slice.
  cluster.run_for(60 * kSeconds);
  EXPECT_GE(cluster.slice_coverage("replicated", 1), 0.8);
}

TEST(Integration, DataSurvivesMinorityCrash) {
  Cluster cluster(default_options(80, 4, 13));
  cluster.start_all();
  cluster.run_for(90 * kSeconds);

  auto& client = cluster.add_client();
  for (int i = 0; i < 10; ++i) {
    client.put("key" + std::to_string(i), Bytes{static_cast<uint8_t>(i)}, 1,
               nullptr);
  }
  cluster.run_for(60 * kSeconds);  // replicate fully

  // Crash a quarter of the system (volatile stores: data on them is lost).
  for (std::size_t i = 0; i < 20; ++i) cluster.crash(i);
  cluster.run_for(30 * kSeconds);

  // Every object still readable.
  int recovered = 0;
  for (int i = 0; i < 10; ++i) {
    client::GetResult result;
    client.get("key" + std::to_string(i), std::nullopt,
               [&](const client::GetResult& r) { result = r; });
    cluster.run_for(15 * kSeconds);
    if (result.ok) ++recovered;
  }
  EXPECT_EQ(recovered, 10);
}

TEST(Integration, AntiEntropyRestoresReplicationAfterCorrelatedFailure) {
  Cluster cluster(default_options(80, 4, 14));
  cluster.start_all();
  cluster.run_for(90 * kSeconds);

  auto& client = cluster.add_client();
  client.put("precious", Bytes{42}, 1, nullptr);
  cluster.run_for(60 * kSeconds);
  const double coverage_before = cluster.slice_coverage("precious", 1);
  ASSERT_GE(coverage_before, 0.8);

  // Kill half the members of the object's slice (paper §IV-A scenario).
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto& node = cluster.node(i);
    if (node.running() && node.key_slice("precious") == node.slice() &&
        node.store().contains("precious", 1)) {
      members.push_back(i);
    }
  }
  ASSERT_GE(members.size(), 4u);
  for (std::size_t i = 0; i < members.size() / 2; ++i) {
    cluster.crash(members[i]);
  }

  // Replicas drop, then anti-entropy pulls the object back onto surviving
  // and newly arrived slice members.
  cluster.run_for(120 * kSeconds);
  EXPECT_GE(cluster.slice_coverage("precious", 1), 0.8);
  EXPECT_GE(cluster.replica_count("precious", 1), 2u);
}

TEST(Integration, CrashedNodeRejoinsAndPullsSliceState) {
  Cluster cluster(default_options(60, 3, 15));
  cluster.start_all();
  cluster.run_for(90 * kSeconds);

  auto& client = cluster.add_client();
  for (int i = 0; i < 20; ++i) {
    client.put("st" + std::to_string(i), Bytes{1}, 1, nullptr);
  }
  cluster.run_for(60 * kSeconds);

  // Crash one node, let the system move on, restart it empty.
  cluster.crash(7);
  cluster.run_for(30 * kSeconds);
  EXPECT_EQ(cluster.node(7).store().object_count(), 0u);
  cluster.restart(7);
  cluster.run_for(120 * kSeconds);

  // The rejoined node holds its slice's objects again (via state transfer
  // and anti-entropy).
  auto& node = cluster.node(7);
  std::size_t mine = 0, held = 0;
  for (int i = 0; i < 20; ++i) {
    const Key key = "st" + std::to_string(i);
    if (node.key_slice(key) == node.slice()) {
      ++mine;
      if (node.store().contains(key, 1)) ++held;
    }
  }
  if (mine > 0) {
    EXPECT_GE(static_cast<double>(held) / static_cast<double>(mine), 0.7);
  }
}

TEST(Integration, SurvivesContinuousChurnDuringWrites) {
  Cluster cluster(default_options(100, 5, 16));
  cluster.start_all();
  cluster.run_for(90 * kSeconds);

  // Continuous churn: ~1 event/2s across the run window.
  Rng churn_rng(99);
  sim::ChurnPlanOptions churn;
  churn.start = cluster.simulator().now();
  churn.end = churn.start + 120 * kSeconds;
  churn.events_per_second = 0.5;
  churn.downtime_min = 5 * kSeconds;
  churn.downtime_max = 20 * kSeconds;
  cluster.apply_churn_plan(
      sim::make_churn_plan(cluster.node_ids(), churn, churn_rng));

  auto& client = cluster.add_client();
  int acked = 0;
  constexpr int kWrites = 30;
  for (int i = 0; i < kWrites; ++i) {
    client.put("churn" + std::to_string(i), Bytes{1}, 1,
               [&](const client::PutResult& r) {
                 if (r.ok) ++acked;
               });
    cluster.run_for(4 * kSeconds);
  }
  cluster.run_for(30 * kSeconds);

  // Writes keep succeeding under churn...
  EXPECT_GE(acked, kWrites * 9 / 10);

  // ...and acknowledged data remains durable after the churn window.
  cluster.run_for(60 * kSeconds);
  int durable = 0;
  for (int i = 0; i < kWrites; ++i) {
    if (cluster.replica_count("churn" + std::to_string(i), 1) > 0) ++durable;
  }
  EXPECT_GE(durable, acked * 9 / 10);
}

TEST(Integration, DynamicReshardPropagatesAndDataStaysReadable) {
  Cluster cluster(default_options(60, 3, 17));
  cluster.start_all();
  cluster.run_for(90 * kSeconds);

  auto& client = cluster.add_client();
  for (int i = 0; i < 10; ++i) {
    client.put("rs" + std::to_string(i), Bytes{1}, 1, nullptr);
  }
  cluster.run_for(60 * kSeconds);

  // Re-shard 3 -> 6 slices from one node; config spreads epidemically.
  cluster.node(0).propose_slice_count(6);
  cluster.run_for(120 * kSeconds);

  std::size_t adopted = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.node(i).running() &&
        cluster.node(i).slice_config().slice_count == 6) {
      ++adopted;
    }
  }
  EXPECT_GE(adopted, cluster.size() * 9 / 10);

  // Data written under the old config is still readable (state transfer +
  // anti-entropy re-homed it).
  cluster.run_for(120 * kSeconds);
  int readable = 0;
  for (int i = 0; i < 10; ++i) {
    client::GetResult result;
    client.get("rs" + std::to_string(i), std::nullopt,
               [&](const client::GetResult& r) { result = r; });
    cluster.run_for(15 * kSeconds);
    if (result.ok) ++readable;
  }
  EXPECT_GE(readable, 8);
}

TEST(Integration, YcsbWorkloadThroughRunner) {
  Cluster cluster(default_options(60, 3, 18));
  cluster.start_all();
  cluster.run_for(90 * kSeconds);

  workload::WorkloadSpec spec = workload::WorkloadSpec::A();
  spec.record_count = 30;
  spec.operation_count = 60;

  // Load phase through one client, then run the mixed phase on three.
  std::vector<client::Client*> clients;
  for (int i = 0; i < 3; ++i) clients.push_back(&cluster.add_client());

  workload::WorkloadGenerator gen(spec, Rng(5));
  Runner load(cluster, {clients[0]}, {gen.load_phase()});
  ASSERT_TRUE(load.run(cluster.simulator().now() + 300 * kSeconds));
  EXPECT_EQ(load.stats().puts_succeeded, 30u);

  std::vector<std::vector<workload::Op>> streams;
  for (int i = 0; i < 3; ++i) streams.push_back(gen.transaction_phase());
  Runner txn(cluster, clients, std::move(streams));
  ASSERT_TRUE(txn.run(cluster.simulator().now() + 600 * kSeconds));

  const auto& stats = txn.stats();
  EXPECT_GT(stats.puts_issued + stats.gets_issued, 0u);
  EXPECT_GE(stats.put_success_rate(), 0.95);
  EXPECT_GE(stats.get_success_rate(), 0.95);
  EXPECT_GT(stats.get_latency.count(), 0u);
}

TEST(Integration, NodesEstimateSystemSizeByGossip) {
  auto opts = default_options(150, 3, 20);
  opts.node.size_estimation = true;
  Cluster cluster(opts);
  cluster.start_all();
  cluster.run_for(100 * kSeconds);  // two estimation epochs

  double total = 0.0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    total += cluster.node(i).estimated_system_size();
  }
  const double mean = total / static_cast<double>(cluster.size());
  EXPECT_NEAR(mean, 150.0, 35.0);

  // Disabled estimation reports 0 (feature flag respected).
  Cluster plain(default_options(10, 2, 21));
  plain.start_all();
  plain.run_for(5 * kSeconds);
  EXPECT_EQ(plain.node(0).estimated_system_size(), 0.0);
}

TEST(Integration, MessageAccountingSeparatesCategories) {
  Cluster cluster(default_options(40, 2, 19));
  cluster.start_all();
  cluster.run_for(30 * kSeconds);

  // Maintenance traffic exists before any request.
  EXPECT_GT(cluster.mean_messages_per_node(net::MsgCategory::kPeerSampling),
            0.0);
  EXPECT_GT(cluster.mean_messages_per_node(net::MsgCategory::kSlicing), 0.0);
  const double requests_before =
      cluster.mean_messages_per_node(net::MsgCategory::kRequest);

  auto& client = cluster.add_client();
  client.put("acct", Bytes{1}, 1, nullptr);
  cluster.run_for(10 * kSeconds);

  EXPECT_GT(cluster.mean_messages_per_node(net::MsgCategory::kRequest),
            requests_before);
}

}  // namespace
}  // namespace dataflasks::harness
