// Baseline (Chord DHT) tests: ring arithmetic, overlay stabilization,
// routing correctness, KV replication, and behaviour when the ring is
// churned — the failure mode the DataFlasks paper builds its case on.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "baseline/chord.hpp"
#include "baseline/dht_kv.hpp"
#include "test_util.hpp"

namespace dataflasks::baseline {
namespace {

using testing::SimBundle;

// ---- ring arithmetic -----------------------------------------------------------

TEST(RingMath, InRangeNormalAndWrapped) {
  EXPECT_TRUE(in_ring_range(5, 1, 10));
  EXPECT_FALSE(in_ring_range(15, 1, 10));
  EXPECT_TRUE(in_ring_range(10, 1, 10));  // inclusive upper bound
  EXPECT_FALSE(in_ring_range(1, 1, 10));  // exclusive lower bound
  // Wrapped interval (from > to).
  EXPECT_TRUE(in_ring_range(2, 100, 10));
  EXPECT_TRUE(in_ring_range(200, 100, 10));
  EXPECT_FALSE(in_ring_range(50, 100, 10));
  // Full circle.
  EXPECT_TRUE(in_ring_range(7, 3, 3));
}

TEST(RingMath, RingIdsAreStableAndSpread) {
  EXPECT_EQ(chord_ring_id(NodeId(1)), chord_ring_id(NodeId(1)));
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) ids.insert(chord_ring_id(NodeId(i)));
  EXPECT_EQ(ids.size(), 100u);  // no collisions among small ids
}

// ---- cluster harness -------------------------------------------------------------

struct DhtCluster {
  DhtCluster(SimBundle& bundle, std::size_t count, DhtKvOptions options = {})
      : bundle_(bundle) {
    Rng seeder(17);
    for (std::size_t i = 0; i < count; ++i) {
      nodes.push_back(std::make_unique<DhtNode>(
          NodeId(i), bundle.simulator, *bundle.transport,
          Rng(seeder.next_u64()), options));
    }
    // Sequential join through node 0, the classic bootstrap pattern.
    nodes[0]->start(NodeId());
    for (std::size_t i = 1; i < count; ++i) nodes[i]->start(NodeId(0));
  }

  /// True when successor pointers form a single cycle covering all nodes.
  [[nodiscard]] bool ring_is_consistent() const {
    std::vector<const DhtNode*> alive;
    for (const auto& n : nodes) {
      if (n->running()) alive.push_back(n.get());
    }
    if (alive.empty()) return true;

    // Sort by ring id; node i's successor must be node (i+1) mod n.
    std::vector<const DhtNode*> sorted = alive;
    std::sort(sorted.begin(), sorted.end(),
              [](const DhtNode* a, const DhtNode* b) {
                return chord_ring_id(a->id()) < chord_ring_id(b->id());
              });
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const DhtNode* expected = sorted[(i + 1) % sorted.size()];
      if (const_cast<DhtNode*>(sorted[i])->chord().successor() !=
          expected->id()) {
        return false;
      }
    }
    return true;
  }

  SimBundle& bundle_;
  std::vector<std::unique_ptr<DhtNode>> nodes;
};

// ---- stabilization ------------------------------------------------------------------

TEST(Chord, RingStabilizesFromSequentialJoins) {
  SimBundle bundle(81);
  DhtCluster cluster(bundle, 30);
  bundle.run_for(120 * kSeconds);
  EXPECT_TRUE(cluster.ring_is_consistent());
}

TEST(Chord, SuccessorListsFillUp) {
  SimBundle bundle(82);
  DhtKvOptions opts;
  opts.chord.successor_list_size = 4;
  DhtCluster cluster(bundle, 20, opts);
  bundle.run_for(120 * kSeconds);
  for (const auto& node : cluster.nodes) {
    EXPECT_GE(node->chord().successor_list().size(), 3u)
        << "node " << node->id().value;
  }
}

TEST(Chord, PredecessorsConverge) {
  SimBundle bundle(83);
  DhtCluster cluster(bundle, 25);
  bundle.run_for(120 * kSeconds);
  int with_pred = 0;
  for (const auto& node : cluster.nodes) {
    if (node->chord().predecessor().has_value()) ++with_pred;
  }
  EXPECT_GE(with_pred, 23);
}

TEST(Chord, RingHealsAfterCrashes) {
  SimBundle bundle(84);
  DhtCluster cluster(bundle, 30);
  bundle.run_for(120 * kSeconds);
  ASSERT_TRUE(cluster.ring_is_consistent());

  // Crash 5 non-adjacent nodes.
  for (std::size_t i : {3u, 9u, 15u, 21u, 27u}) {
    bundle.model.set_node_up(NodeId(i), false);
    cluster.nodes[i]->crash();
  }
  bundle.run_for(120 * kSeconds);
  EXPECT_TRUE(cluster.ring_is_consistent());
}

// ---- KV over the ring ------------------------------------------------------------------

TEST(DhtKv, PutThenGetThroughAnyCoordinator) {
  SimBundle bundle(85);
  DhtCluster cluster(bundle, 25);
  bundle.run_for(120 * kSeconds);

  DhtPutResult put_result;
  cluster.nodes[3]->put("alpha", Bytes{1, 2}, 1,
                        [&](const DhtPutResult& r) { put_result = r; });
  bundle.run_for(10 * kSeconds);
  ASSERT_TRUE(put_result.ok);

  // Read through a different coordinator.
  DhtGetResult get_result;
  cluster.nodes[11]->get("alpha", std::nullopt,
                         [&](const DhtGetResult& r) { get_result = r; });
  bundle.run_for(10 * kSeconds);
  ASSERT_TRUE(get_result.ok);
  EXPECT_EQ(get_result.object.value, (Bytes{1, 2}));
}

TEST(DhtKv, ReplicatesToSuccessors) {
  SimBundle bundle(86);
  DhtKvOptions opts;
  opts.replication = 3;
  DhtCluster cluster(bundle, 20, opts);
  bundle.run_for(120 * kSeconds);

  DhtPutResult result;
  cluster.nodes[0]->put("replicated", Bytes{7}, 1,
                        [&](const DhtPutResult& r) { result = r; });
  bundle.run_for(10 * kSeconds);
  ASSERT_TRUE(result.ok);

  int copies = 0;
  for (const auto& node : cluster.nodes) {
    if (node->store().contains("replicated", 1)) ++copies;
  }
  EXPECT_GE(copies, 2);
  EXPECT_LE(copies, 4);
}

TEST(DhtKv, VersionedReads) {
  SimBundle bundle(87);
  DhtCluster cluster(bundle, 15);
  bundle.run_for(120 * kSeconds);

  cluster.nodes[0]->put("v", Bytes{1}, 1, nullptr);
  cluster.nodes[0]->put("v", Bytes{2}, 2, nullptr);
  bundle.run_for(10 * kSeconds);

  DhtGetResult v1, latest;
  cluster.nodes[5]->get("v", Version{1},
                        [&](const DhtGetResult& r) { v1 = r; });
  cluster.nodes[5]->get("v", std::nullopt,
                        [&](const DhtGetResult& r) { latest = r; });
  bundle.run_for(10 * kSeconds);
  ASSERT_TRUE(v1.ok);
  EXPECT_EQ(v1.object.value, Bytes{1});
  ASSERT_TRUE(latest.ok);
  EXPECT_EQ(latest.object.version, 2u);
}

TEST(DhtKv, MissingKeyTimesOut) {
  SimBundle bundle(88);
  DhtKvOptions opts;
  opts.request_timeout = 1 * kSeconds;
  opts.max_attempts = 2;
  DhtCluster cluster(bundle, 15, opts);
  bundle.run_for(120 * kSeconds);

  DhtGetResult result;
  result.ok = true;
  cluster.nodes[2]->get("ghost", std::nullopt,
                        [&](const DhtGetResult& r) { result = r; });
  bundle.run_for(30 * kSeconds);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts, 2u);
}

TEST(DhtKv, AvailabilityDegradesWhenOwnerAndReplicasCrash) {
  SimBundle bundle(89);
  DhtKvOptions opts;
  opts.replication = 2;
  DhtCluster cluster(bundle, 20, opts);
  bundle.run_for(120 * kSeconds);

  cluster.nodes[0]->put("fragile", Bytes{9}, 1, nullptr);
  bundle.run_for(10 * kSeconds);

  // Crash every node holding the object; no repair protocol exists in the
  // baseline, so the data is simply gone (DataFlasks' anti-entropy is the
  // contrast benched in churn_comparison).
  for (auto& node : cluster.nodes) {
    if (node->running() && node->store().contains("fragile", 1)) {
      bundle.model.set_node_up(node->id(), false);
      node->crash();
    }
  }
  bundle.run_for(60 * kSeconds);

  DhtGetResult result;
  result.ok = true;
  bool done = false;
  // Pick a live coordinator.
  for (auto& node : cluster.nodes) {
    if (node->running()) {
      node->get("fragile", std::nullopt, [&](const DhtGetResult& r) {
        result = r;
        done = true;
      });
      break;
    }
  }
  bundle.run_for(60 * kSeconds);
  EXPECT_TRUE(done);
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace dataflasks::baseline
