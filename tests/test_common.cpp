// Unit tests for the common kit: rng, hashing, serialization, config,
// histogram, result types.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/config.hpp"
#include "common/ensure.hpp"
#include "common/hash.hpp"
#include "common/histogram.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"
#include "common/unique_function.hpp"

namespace dataflasks {
namespace {

// ---- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  // Chi-squared with 9 dof: 99.9th percentile ~ 27.9.
  double chi2 = 0.0;
  const double expected = kSamples / static_cast<double>(kBuckets);
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    min = std::min(min, v);
    max = std::max(max, v);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.next_bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.next_bernoulli(0.0));
  EXPECT_TRUE(rng.next_bernoulli(1.0));
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(42);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(1);  // same salt, later state: still distinct
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ShuffleKeepsAllElements) {
  Rng rng(1);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto copy = v;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Rng, SampleReturnsDistinctElements) {
  Rng rng(2);
  std::vector<int> pool(100);
  for (int i = 0; i < 100; ++i) pool[i] = i;
  const auto sample = rng.sample(pool, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleLargerThanPoolReturnsAll) {
  Rng rng(2);
  std::vector<int> pool{1, 2, 3};
  EXPECT_EQ(rng.sample(pool, 10).size(), 3u);
}

TEST(Rng, PickOnEmptyThrows) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(empty), InvariantViolation);
}

// ---- hashing ----------------------------------------------------------------

TEST(Hash, Fnv1aKnownVector) {
  // FNV-1a 64 of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  // Standard test vector.
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Hash, StableKeyHashIsStable) {
  EXPECT_EQ(stable_key_hash("user42"), stable_key_hash("user42"));
  EXPECT_NE(stable_key_hash("user42"), stable_key_hash("user43"));
}

TEST(Hash, BucketsAreUniform) {
  constexpr std::uint32_t kBuckets = 16;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < 160000; ++i) {
    ++counts[hash_to_bucket(stable_key_hash("key" + std::to_string(i)),
                            kBuckets)];
  }
  const double expected = 160000.0 / kBuckets;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.1);
}

TEST(Hash, BucketInRange) {
  for (std::uint32_t buckets : {1u, 2u, 7u, 64u}) {
    for (int i = 0; i < 100; ++i) {
      EXPECT_LT(hash_to_bucket(stable_key_hash(std::to_string(i)), buckets),
                buckets);
    }
  }
}

TEST(Hash, Crc32KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const char data[] = "123456789";
  EXPECT_EQ(crc32(data, 9), 0xCBF43926u);
  EXPECT_EQ(crc32(data, 0), 0u);
}

// ---- serialization -----------------------------------------------------------

TEST(Serialize, ScalarRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.25);
  w.boolean(true);
  w.boolean(false);

  Reader r(w.view());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.finish().ok());
}

TEST(Serialize, StringAndBytesRoundTrip) {
  Writer w;
  w.str("hello world");
  w.str("");
  w.bytes(Bytes{1, 2, 3});
  Reader r(w.view());
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.finish().ok());
}

TEST(Serialize, VectorRoundTrip) {
  Writer w;
  std::vector<std::uint64_t> values{1, 2, 3, 42};
  w.vec(values, [&w](std::uint64_t v) { w.u64(v); });
  Reader r(w.view());
  const auto decoded = r.vec<std::uint64_t>([&r]() { return r.u64(); });
  EXPECT_EQ(decoded, values);
  EXPECT_TRUE(r.finish().ok());
}

TEST(Serialize, TruncatedInputFails) {
  Writer w;
  w.u64(42);
  Bytes buf = w.take();
  buf.resize(4);  // cut in half
  Reader r(buf);
  (void)r.u64();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.finish().ok());
}

TEST(Serialize, TrailingBytesDetected) {
  Writer w;
  w.u32(1);
  w.u32(2);
  Reader r(w.view());
  (void)r.u32();
  EXPECT_FALSE(r.finish().ok());  // one u32 left unread
}

TEST(Serialize, MaliciousVectorLengthRejected) {
  // A length prefix promising 2^31 elements with a 1-byte body must fail
  // cleanly instead of allocating.
  Writer w;
  w.u32(0x80000000u);
  w.u8(7);
  Reader r(w.view());
  const auto decoded = r.vec<std::uint8_t>([&r]() { return r.u8(); });
  EXPECT_TRUE(decoded.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, NodeAndRequestIdRoundTrip) {
  Writer w;
  w.node_id(NodeId(77));
  w.request_id(RequestId{5, 9});
  Reader r(w.view());
  EXPECT_EQ(r.node_id(), NodeId(77));
  const RequestId rid = r.request_id();
  EXPECT_EQ(rid.client, 5u);
  EXPECT_EQ(rid.seq, 9u);
  EXPECT_TRUE(r.finish().ok());
}

// ---- Payload ---------------------------------------------------------------

TEST(Payload, EmptyByDefault) {
  const Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.data(), nullptr);
  EXPECT_EQ(p.use_count(), 0);
  EXPECT_EQ(p, Bytes{});
}

TEST(Payload, WrapsBytesWithoutFurtherCopies) {
  Payload::reset_alloc_stats();
  const Payload a(Bytes{1, 2, 3, 4});
  EXPECT_EQ(Payload::alloc_stats().buffers, 1u);
  EXPECT_EQ(Payload::alloc_stats().bytes, 4u);

  // Copying / moving Payloads shares the buffer: no new allocations.
  const Payload b = a;
  Payload c;
  c = b;
  EXPECT_EQ(Payload::alloc_stats().buffers, 1u);
  EXPECT_TRUE(a.shares_buffer_with(b));
  EXPECT_TRUE(a.shares_buffer_with(c));
  EXPECT_EQ(a.use_count(), 3);
  EXPECT_EQ(b, (Bytes{1, 2, 3, 4}));
}

TEST(Payload, AliasingMessagesObserveImmutableBytes) {
  // Two "messages" sharing one buffer: the view each one sees never changes,
  // because nothing can mutate a wrapped buffer.
  const Payload original(Bytes{10, 20, 30});
  const Payload aliased = original;
  EXPECT_EQ(original, aliased);
  EXPECT_EQ(original.data(), aliased.data());
  // The accessors only hand out const bytes; content checks stay stable
  // however many holders exist.
  EXPECT_EQ(original[1], 20);
  EXPECT_EQ(aliased[1], 20);
}

TEST(Payload, SubviewSharesBufferAtOffset) {
  Payload::reset_alloc_stats();
  const Payload whole(Bytes{0, 1, 2, 3, 4, 5, 6, 7});
  const Payload mid = whole.subview(2, 4);
  EXPECT_EQ(Payload::alloc_stats().buffers, 1u);  // views allocate nothing
  EXPECT_EQ(mid.size(), 4u);
  EXPECT_EQ(mid, (Bytes{2, 3, 4, 5}));
  EXPECT_TRUE(mid.shares_buffer_with(whole));
  EXPECT_EQ(mid.offset(), 2u);
  EXPECT_EQ(mid.data(), whole.data() + 2);

  const Payload empty = whole.subview(8, 0);
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW((void)whole.subview(5, 4), InvariantViolation);
}

TEST(Payload, SubviewKeepsBufferAliveAfterParentDies) {
  Payload view;
  {
    const Payload whole(Bytes{9, 8, 7, 6});
    view = whole.subview(1, 2);
  }
  EXPECT_EQ(view, (Bytes{8, 7}));
  EXPECT_EQ(view.use_count(), 1);
}

TEST(Payload, DeepEqualityAcrossDistinctBuffers) {
  const Payload a(Bytes{1, 2, 3});
  const Payload b(Bytes{0, 1, 2, 3, 4});
  EXPECT_EQ(a, b.subview(1, 3));  // same bytes, different buffers
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == Payload(Bytes{1, 2, 9}));
}

TEST(Payload, ReaderHandsOutZeroCopySubviews) {
  Writer w;
  w.u16(7);
  w.bytes(Bytes{5, 6, 7});
  const Payload frame = w.take_payload();

  Payload::reset_alloc_stats();
  Reader r(frame);
  EXPECT_EQ(r.u16(), 7);
  const Payload inner = r.payload();
  EXPECT_TRUE(r.finish().ok());
  EXPECT_EQ(inner, (Bytes{5, 6, 7}));
  // The inner payload is a view into the frame, not a copy.
  EXPECT_TRUE(inner.shares_buffer_with(frame));
  EXPECT_EQ(Payload::alloc_stats().buffers, 0u);

  // Without an owning Payload, payload() falls back to copying.
  Reader copy_reader(frame.view());
  (void)copy_reader.u16();
  const Payload copied = copy_reader.payload();
  EXPECT_EQ(copied, (Bytes{5, 6, 7}));
  EXPECT_EQ(Payload::alloc_stats().buffers, 1u);
}

TEST(Payload, WriterReserveDoesSingleAllocation) {
  Payload::reset_alloc_stats();
  Writer w(64);
  EXPECT_EQ(Payload::alloc_stats().buffers, 1u);
  const auto* before = w.view().data();
  for (int i = 0; i < 8; ++i) w.u64(static_cast<std::uint64_t>(i));
  EXPECT_EQ(w.view().data(), before);  // no regrow within the reservation
  EXPECT_EQ(w.size(), 64u);
  // Handing the buffer to a Payload is pointer surgery, not an allocation.
  const Payload p = w.take_payload();
  EXPECT_EQ(Payload::alloc_stats().buffers, 1u);
  EXPECT_EQ(p.data(), before);
}

// ---- UniqueFunction --------------------------------------------------------

TEST(UniqueFunction, SmallCapturesStayInline) {
  int hits = 0;
  int* p = &hits;
  UniqueFunction f([p]() { ++*p; });
  EXPECT_TRUE(f.is_inline());
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, LargeCapturesSpillToHeap) {
  struct Big {
    char blob[UniqueFunction::kInlineSize + 8];
  };
  Big big{};
  big.blob[0] = 42;
  int out = 0;
  UniqueFunction f([big, &out]() { out = big.blob[0]; });
  EXPECT_FALSE(f.is_inline());
  f();
  EXPECT_EQ(out, 42);
}

TEST(UniqueFunction, MovesMoveOnlyCaptures) {
  auto flag = std::make_unique<int>(7);
  int seen = 0;
  UniqueFunction f([flag = std::move(flag), &seen]() { seen = *flag; });
  UniqueFunction g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));
  ASSERT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(seen, 7);
}

TEST(UniqueFunction, DestroysTargetExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  {
    UniqueFunction f([counter]() {});
    UniqueFunction g = std::move(f);
    UniqueFunction h;
    h = std::move(g);
    EXPECT_EQ(counter.use_count(), 2);  // exactly one live closure copy
  }
  EXPECT_EQ(counter.use_count(), 1);
}

// ---- Result / Status -----------------------------------------------------------

TEST(Result, ValueAndError) {
  Result<int> ok_result(42);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);
  EXPECT_EQ(ok_result.value_or(-1), 42);

  Result<int> err_result(Error::not_found("missing"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.error().code, Error::Code::kNotFound);
  EXPECT_EQ(err_result.value_or(-1), -1);
  EXPECT_THROW((void)err_result.value(), InvariantViolation);
}

TEST(Status, OkAndError) {
  Status ok = Status::ok_status();
  EXPECT_TRUE(ok.ok());
  EXPECT_THROW((void)ok.error(), InvariantViolation);

  Status err = Error::io("disk on fire");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, Error::Code::kIo);
}

// ---- Config ----------------------------------------------------------------------

TEST(Config, ParsesKeyValues) {
  auto cfg = Config::parse("nodes=100 slices=10\nseed=42 name=test");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg.value().get_int("nodes", 0), 100);
  EXPECT_EQ(cfg.value().get_int("slices", 0), 10);
  EXPECT_EQ(cfg.value().get_string("name", ""), "test");
  EXPECT_EQ(cfg.value().get_int("missing", -7), -7);
}

TEST(Config, CommentsAndBlankLines) {
  auto cfg = Config::parse("# a comment\n\na=1 # trailing comment\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg.value().get_int("a", 0), 1);
  EXPECT_FALSE(cfg.value().has("#"));
}

TEST(Config, RejectsMalformedTokens) {
  EXPECT_FALSE(Config::parse("novalue").ok());
  EXPECT_FALSE(Config::from_args({"=x"}).ok());
}

TEST(Config, TypedGetters) {
  auto cfg = Config::from_args({"f=2.5", "b=true", "n=-3", "junk=abc"});
  ASSERT_TRUE(cfg.ok());
  EXPECT_DOUBLE_EQ(cfg.value().get_double("f", 0.0), 2.5);
  EXPECT_TRUE(cfg.value().get_bool("b", false));
  EXPECT_EQ(cfg.value().get_int("n", 0), -3);
  EXPECT_EQ(cfg.value().get_int("junk", 9), 9);      // not a number
  EXPECT_EQ(cfg.value().get_double("junk", 1.5), 1.5);
}

TEST(Config, MergeOverrides) {
  auto base = Config::from_args({"a=1", "b=2"}).value();
  auto overlay = Config::from_args({"b=3", "c=4"}).value();
  base.merge(overlay);
  EXPECT_EQ(base.get_int("a", 0), 1);
  EXPECT_EQ(base.get_int("b", 0), 3);
  EXPECT_EQ(base.get_int("c", 0), 4);
}

// ---- Histogram -----------------------------------------------------------------

TEST(Histogram, BasicStatistics) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  EXPECT_NEAR(h.stddev(), 29.0, 0.5);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, ReservoirKeepsDistributionShape) {
  Histogram h(1000, 7);
  for (int i = 0; i < 100000; ++i) h.record(i % 1000);
  // Median of uniform 0..999 should stay near 500 despite sampling.
  EXPECT_NEAR(h.quantile(0.5), 500.0, 60.0);
  EXPECT_EQ(h.count(), 100000u);
}

// ---- types ------------------------------------------------------------------------

TEST(Types, NodeIdValidity) {
  EXPECT_FALSE(NodeId().valid());
  EXPECT_TRUE(NodeId(0).valid());
  EXPECT_EQ(to_string(NodeId(7)), "n7");
}

TEST(Types, RequestIdHashAndEquality) {
  const RequestId a{1, 2}, b{1, 2}, c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<RequestId>{}(a), std::hash<RequestId>{}(b));
}

}  // namespace
}  // namespace dataflasks
