// Size-estimator tests: extrema-propagation accuracy across system sizes
// (TEST_P sweep), epoch synchronisation, churn adaptivity and the derived
// ln(N)+c fanout.
#include <gtest/gtest.h>

#include <memory>

#include "aggregation/size_estimator.hpp"
#include "pss/cyclon.hpp"
#include "test_util.hpp"

namespace dataflasks::aggregation {
namespace {

using testing::SimBundle;

struct EstimatorNode {
  std::unique_ptr<pss::Cyclon> pss;
  std::unique_ptr<SizeEstimator> estimator;
};

std::vector<EstimatorNode> make_overlay(SimBundle& bundle, std::size_t count,
                                        SizeEstimatorOptions options = {}) {
  std::vector<EstimatorNode> nodes(count);
  Rng seeder(1234);
  for (std::size_t i = 0; i < count; ++i) {
    nodes[i].pss = std::make_unique<pss::Cyclon>(
        NodeId(i), *bundle.transport, Rng(seeder.next_u64()),
        pss::CyclonOptions{});
    nodes[i].estimator = std::make_unique<SizeEstimator>(
        NodeId(i), *bundle.transport, *nodes[i].pss, Rng(seeder.next_u64()),
        options);
  }
  for (std::size_t i = 0; i < count; ++i) {
    nodes[i].pss->bootstrap({NodeId((i + 1) % count), NodeId((i + 5) % count)});
    auto* node = &nodes[i];
    bundle.transport->register_handler(
        NodeId(i), [node](const net::Message& msg) {
          if (node->pss->handle(msg)) return;
          node->estimator->handle(msg);
        });
    bundle.simulator.schedule_periodic(
        bundle.simulator.rng().next_in(0, kSeconds), kSeconds, [node]() {
          node->pss->tick();
          node->estimator->tick();
        });
  }
  return nodes;
}

class SizeEstimatorSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SizeEstimatorSweep, EstimatesWithinTwentyPercent) {
  const std::size_t n = GetParam();
  SimBundle bundle(0x51 + n);
  auto nodes = make_overlay(bundle, n);
  // Two full epochs (epoch_length=32 ticks at 1s) plus settling.
  bundle.run_for(100 * kSeconds);

  double total = 0.0;
  for (const auto& node : nodes) total += node.estimator->estimate();
  const double mean = total / static_cast<double>(n);
  EXPECT_NEAR(mean, static_cast<double>(n), 0.2 * static_cast<double>(n))
      << "mean estimate " << mean << " for true size " << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeEstimatorSweep,
                         ::testing::Values(30, 100, 300),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(SizeEstimatorTest, NodesAgreeWithEachOther) {
  SimBundle bundle(0x52);
  auto nodes = make_overlay(bundle, 100);
  bundle.run_for(100 * kSeconds);

  // Extrema propagation converges every node to the same minima vector, so
  // estimates across nodes should be near-identical within an epoch.
  double lo = 1e18, hi = 0.0;
  for (const auto& node : nodes) {
    lo = std::min(lo, node.estimator->estimate());
    hi = std::max(hi, node.estimator->estimate());
  }
  EXPECT_LT(hi / lo, 1.5);
}

TEST(SizeEstimatorTest, FanoutMatchesLnN) {
  SimBundle bundle(0x53);
  auto nodes = make_overlay(bundle, 200);
  bundle.run_for(100 * kSeconds);

  // ln(200) ~ 5.3; with c = 1, fanout should land on ceil(5.3+1) = 7 (+-1
  // for estimation error).
  const std::size_t fanout = nodes[0].estimator->estimated_fanout(1.0);
  EXPECT_GE(fanout, 6u);
  EXPECT_LE(fanout, 8u);
}

TEST(SizeEstimatorTest, TracksShrinkingSystem) {
  SimBundle bundle(0x54);
  auto nodes = make_overlay(bundle, 200);
  bundle.run_for(100 * kSeconds);
  const double before = nodes[0].estimator->estimate();
  EXPECT_NEAR(before, 200.0, 50.0);

  // Kill three quarters of the system; epoch restarts flush the dead
  // nodes' minima and the estimate tracks the survivors.
  for (std::size_t i = 50; i < 200; ++i) {
    bundle.model.set_node_up(NodeId(i), false);
    bundle.transport->unregister_handler(NodeId(i));
  }
  bundle.run_for(150 * kSeconds);

  double total = 0.0;
  for (std::size_t i = 0; i < 50; ++i) {
    total += nodes[i].estimator->estimate();
  }
  const double after = total / 50.0;
  EXPECT_LT(after, 100.0);  // clearly tracking the shrink
  EXPECT_GT(after, 20.0);
}

TEST(SizeEstimatorTest, MalformedAndMismatchedGossipIgnored) {
  SimBundle bundle(0x55);
  pss::Cyclon pss(NodeId(0), *bundle.transport, Rng(1), {});
  SizeEstimator estimator(NodeId(0), *bundle.transport, pss, Rng(2), {});
  const double before = estimator.estimate();

  EXPECT_TRUE(estimator.handle(
      net::Message{NodeId(1), NodeId(0), kSizeGossip, Bytes{1, 2, 3}}));

  // Wrong vector size (different K config) must also be ignored.
  Writer w;
  w.u64(0);
  std::vector<double> wrong_k{0.1, 0.2};
  w.vec(wrong_k, [&w](double v) { w.f64(v); });
  EXPECT_TRUE(estimator.handle(
      net::Message{NodeId(1), NodeId(0), kSizeGossip, w.take()}));

  EXPECT_DOUBLE_EQ(estimator.estimate(), before);
}

TEST(SizeEstimatorTest, RejectsTinyVectors) {
  SimBundle bundle(0x56);
  pss::Cyclon pss(NodeId(0), *bundle.transport, Rng(1), {});
  SizeEstimatorOptions opts;
  opts.vector_size = 2;
  EXPECT_THROW(SizeEstimator(NodeId(0), *bundle.transport, pss, Rng(2), opts),
               InvariantViolation);
}

}  // namespace
}  // namespace dataflasks::aggregation
