// Deterministic fuzzing of every wire codec: truncations at every prefix
// length and seeded random byte mutations must never crash a decoder —
// malformed network input is a normal condition, handled by returning
// nullopt (or a failed Reader), never by UB or exceptions.
#include <gtest/gtest.h>

#include <functional>

#include "common/rng.hpp"
#include "core/messages.hpp"
#include "pss/view.hpp"

namespace dataflasks {
namespace {

struct CodecCase {
  const char* name;
  std::function<Payload()> make_valid;  ///< encoders emit immutable Payloads
  std::function<void(const Bytes&)> decode;  ///< must not throw / crash
};

/// A mixed envelope: put + latest-get + versioned-get + delete, so the
/// truncation sweep crosses every per-type field layout, and a tombstone
/// object so the flags/deleted_at path is fuzzed too.
Payload valid_envelope() {
  core::OpEnvelope envelope;
  envelope.ops.push_back(core::RoutedOp{
      RequestId{1, 2},
      core::Operation::put("some-key", 7, Bytes{1, 2, 3, 4, 5})});
  envelope.ops.push_back(
      core::RoutedOp{RequestId{1, 3}, core::Operation::get("latest-key")});
  envelope.ops.push_back(core::RoutedOp{
      RequestId{1, 4}, core::Operation::get("versioned-key", Version{2})});
  envelope.ops.push_back(
      core::RoutedOp{RequestId{1, 5}, core::Operation::del("dead-key", 9)});
  return core::encode(envelope);
}

std::vector<CodecCase> all_codecs() {
  return {
      {"op_envelope", valid_envelope,
       [](const Bytes& b) { (void)core::decode_op_envelope(b); }},
      {"ops_inner",
       []() {
         core::OpsRequest ops;
         ops.ops.push_back(core::RoutedOp{
             RequestId{4, 5}, core::Operation::put("key", 2, Bytes{8})});
         ops.ops.push_back(
             core::RoutedOp{RequestId{4, 6}, core::Operation::del("gone", 3)});
         return core::encode_inner(ops);
       },
       [](const Bytes& b) { (void)core::decode_ops(b); }},
      {"handoff",
       []() {
         return core::encode_inner(
             core::HandoffRequest{store::Object{"k", 1, Bytes{9}}});
       },
       [](const Bytes& b) { (void)core::decode_handoff(b); }},
      {"op_reply_batch",
       []() {
         core::OpReplyBatch batch;
         batch.replica = NodeId(2);
         batch.slice = 3;
         batch.replies.push_back(
             core::OpReply{RequestId{1, 1}, core::OpType::kPut,
                           core::OpStatus::kOk, store::Object{"key", 4, {}}});
         batch.replies.push_back(core::OpReply{
             RequestId{1, 2}, core::OpType::kGet, core::OpStatus::kOk,
             store::Object{"key", 9, Bytes{1, 2}}});
         batch.replies.push_back(core::OpReply{
             RequestId{1, 3}, core::OpType::kGet, core::OpStatus::kDeleted,
             store::Object{"gone", 11, {}}});
         return core::encode(batch);
       },
       [](const Bytes& b) { (void)core::decode_op_reply_batch(b); }},
      {"replicate_push",
       []() {
         core::ReplicatePush push;
         push.objects.push_back(store::Object{"key", 1, Bytes{7}});
         push.objects.push_back(
             store::Object::make_tombstone("dead", 2, 777));
         return core::encode(push);
       },
       [](const Bytes& b) { (void)core::decode_replicate_push(b); }},
      {"slice_advert",
       []() {
         return core::encode(core::SliceAdvert{
             NodeId(1), 5, {10, 3}, Endpoint{0x7F000001, 7100, 99}});
       },
       [](const Bytes& b) { (void)core::decode_slice_advert(b); }},
      {"ae_digest",
       []() {
         return core::encode(
             core::AeDigest{false, {{"a", 1}, {"b", 2}, {"c", 3}}});
       },
       [](const Bytes& b) { (void)core::decode_ae_digest(b); }},
      {"ae_pull",
       []() { return core::encode(core::AePull{{{"a", 1}}}); },
       [](const Bytes& b) { (void)core::decode_ae_pull(b); }},
      {"ae_push",
       []() {
         return core::encode(core::AePush{
             {store::Object{"k", 1, Bytes{1, 2, 3}},
              store::Object::make_tombstone("dead", 4, 99)}});
       },
       [](const Bytes& b) { (void)core::decode_ae_push(b); }},
      {"st_request",
       []() { return core::encode(core::StRequest{7, {"cursor", 3}}); },
       [](const Bytes& b) { (void)core::decode_st_request(b); }},
      {"st_reply",
       []() {
         return core::encode(
             core::StReply{7, true, {store::Object{"k", 1, Bytes{5}}}});
       },
       [](const Bytes& b) { (void)core::decode_st_reply(b); }},
  };
}

class CodecFuzzTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodecFuzzTest, EveryTruncationIsHandled) {
  const auto codec = all_codecs()[GetParam()];
  // Mutation needs a private mutable copy of the immutable encoding.
  const Bytes valid = codec.make_valid().to_bytes();
  for (std::size_t len = 0; len < valid.size(); ++len) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<long>(len));
    ASSERT_NO_THROW(codec.decode(truncated))
        << codec.name << " crashed at truncation length " << len;
  }
}

TEST_P(CodecFuzzTest, RandomMutationsAreHandled) {
  const auto codec = all_codecs()[GetParam()];
  // Mutation needs a private mutable copy of the immutable encoding.
  const Bytes valid = codec.make_valid().to_bytes();
  Rng rng(0xF022 + GetParam());
  for (int round = 0; round < 500; ++round) {
    Bytes mutated = valid;
    // 1-4 byte flips anywhere in the message (length prefixes included).
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips && !mutated.empty(); ++f) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<std::uint8_t>(rng.next_below(256));
    }
    ASSERT_NO_THROW(codec.decode(mutated))
        << codec.name << " crashed on mutation round " << round;
  }
}

TEST_P(CodecFuzzTest, RandomGarbageIsHandled) {
  const auto codec = all_codecs()[GetParam()];
  Rng rng(0xBAD + GetParam());
  for (int round = 0; round < 200; ++round) {
    Bytes garbage(rng.next_below(256));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    }
    ASSERT_NO_THROW(codec.decode(garbage))
        << codec.name << " crashed on garbage round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecFuzzTest,
                         ::testing::Range<std::size_t>(0, 11),
                         [](const auto& info) {
                           return std::string(all_codecs()[info.param].name);
                         });

TEST(CodecFuzz, PssDescriptorTruncations) {
  // Both the endpoint-less and endpoint-carrying layouts must reject every
  // proper prefix.
  const std::vector<pss::NodeDescriptor> variants{
      {NodeId(5), 9, std::nullopt},
      {NodeId(5), 9, Endpoint{0x7F000001, 7105, 1234}},
  };
  for (const auto& descriptor : variants) {
    Writer w;
    pss::encode(w, descriptor);
    const Bytes valid = w.take();
    for (std::size_t len = 0; len < valid.size(); ++len) {
      Bytes truncated(valid.begin(), valid.begin() + static_cast<long>(len));
      Reader r(truncated);
      ASSERT_NO_THROW((void)pss::decode_descriptor(r));
      EXPECT_FALSE(r.finish().ok());
    }
  }
}

}  // namespace
}  // namespace dataflasks
