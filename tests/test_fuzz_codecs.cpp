// Deterministic fuzzing of every wire codec: truncations at every prefix
// length and seeded random byte mutations must never crash a decoder —
// malformed network input is a normal condition, handled by returning
// nullopt (or a failed Reader), never by UB or exceptions.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>

#include "common/rng.hpp"
#include "core/messages.hpp"
#include "net/stream/stream_frame.hpp"
#include "pss/view.hpp"

namespace dataflasks {
namespace {

struct CodecCase {
  const char* name;
  std::function<Payload()> make_valid;  ///< encoders emit immutable Payloads
  std::function<void(const Bytes&)> decode;  ///< must not throw / crash
};

/// A mixed current-protocol envelope: put + TTL'd put + latest-get +
/// versioned-get + delete + compare-and-put + stats, so the truncation
/// sweep crosses every per-type field layout (v2's expected-version field,
/// v3's ttl_ms field), and a tombstone object so the flags/deleted_at path
/// is fuzzed too.
Payload valid_envelope() {
  core::OpEnvelope envelope;
  envelope.ops.push_back(core::RoutedOp{
      RequestId{1, 2},
      core::Operation::put("some-key", 7, Bytes{1, 2, 3, 4, 5})});
  envelope.ops.push_back(core::RoutedOp{
      RequestId{1, 8},
      core::Operation::put("ttl-key", 8, Bytes{6}, /*ttl_ms=*/30'000)});
  envelope.ops.push_back(
      core::RoutedOp{RequestId{1, 3}, core::Operation::get("latest-key")});
  envelope.ops.push_back(core::RoutedOp{
      RequestId{1, 4}, core::Operation::get("versioned-key", Version{2})});
  envelope.ops.push_back(
      core::RoutedOp{RequestId{1, 5}, core::Operation::del("dead-key", 9)});
  envelope.ops.push_back(core::RoutedOp{
      RequestId{1, 6},
      core::Operation::cas("guarded-key", 7, 12, Bytes{6, 7})});
  envelope.ops.push_back(
      core::RoutedOp{RequestId{1, 7}, core::Operation::stats()});
  return core::encode(envelope);
}

/// A v1 envelope (no v2 op kinds): the downgrade path clients re-encode on
/// after negotiation must stay fuzz-clean too.
Payload valid_envelope_v1() {
  core::OpEnvelope envelope;
  envelope.protocol = core::kOpProtocolMin;
  envelope.ops.push_back(core::RoutedOp{
      RequestId{2, 1}, core::Operation::put("k", 3, Bytes{1, 2})});
  envelope.ops.push_back(
      core::RoutedOp{RequestId{2, 2}, core::Operation::get("k")});
  return core::encode(envelope);
}

std::vector<CodecCase> all_codecs() {
  return {
      {"op_envelope", valid_envelope,
       [](const Bytes& b) { (void)core::decode_op_envelope(b); }},
      {"op_envelope_v1", valid_envelope_v1,
       [](const Bytes& b) { (void)core::decode_op_envelope(b); }},
      {"version_mismatch",
       []() {
         return core::encode(core::VersionMismatch{RequestId{9, 1}, 1, 2});
       },
       [](const Bytes& b) { (void)core::decode_version_mismatch(b); }},
      {"overload_reply",
       []() {
         return core::encode(core::OverloadReply{RequestId{9, 2}, 250});
       },
       [](const Bytes& b) { (void)core::decode_overload_reply(b); }},
      {"ops_inner",
       []() {
         core::OpsRequest ops;
         ops.ops.push_back(core::RoutedOp{
             RequestId{4, 5}, core::Operation::put("key", 2, Bytes{8})});
         ops.ops.push_back(
             core::RoutedOp{RequestId{4, 6}, core::Operation::del("gone", 3)});
         return core::encode_inner(ops);
       },
       [](const Bytes& b) { (void)core::decode_ops(b); }},
      {"handoff",
       []() {
         return core::encode_inner(
             core::HandoffRequest{store::Object{"k", 1, Bytes{9}}});
       },
       [](const Bytes& b) { (void)core::decode_handoff(b); }},
      {"op_reply_batch",
       []() {
         core::OpReplyBatch batch;
         batch.replica = NodeId(2);
         batch.slice = 3;
         batch.replies.push_back(
             core::OpReply{RequestId{1, 1}, core::OpType::kPut,
                           core::OpStatus::kOk, store::Object{"key", 4, {}}});
         batch.replies.push_back(core::OpReply{
             RequestId{1, 2}, core::OpType::kGet, core::OpStatus::kOk,
             store::Object{"key", 9, Bytes{1, 2}}});
         batch.replies.push_back(core::OpReply{
             RequestId{1, 3}, core::OpType::kGet, core::OpStatus::kDeleted,
             store::Object{"gone", 11, {}}});
         batch.replies.push_back(core::OpReply{
             RequestId{1, 4}, core::OpType::kCompareAndPut,
             core::OpStatus::kCasFailed, store::Object{"key", 9, {}}});
         batch.replies.push_back(core::OpReply{
             RequestId{1, 5}, core::OpType::kStats, core::OpStatus::kOk,
             store::Object{Key{}, 0, Bytes{'m', 'x', '\n'}}});
         return core::encode(batch);
       },
       [](const Bytes& b) { (void)core::decode_op_reply_batch(b); }},
      {"replicate_push",
       []() {
         core::ReplicatePush push;
         push.objects.push_back(store::Object{"key", 1, Bytes{7}});
         push.objects.push_back(
             store::Object::make_tombstone("dead", 2, 777));
         return core::encode(push);
       },
       [](const Bytes& b) { (void)core::decode_replicate_push(b); }},
      {"slice_advert",
       []() {
         return core::encode(core::SliceAdvert{
             NodeId(1), 5, {10, 3}, Endpoint{0x7F000001, 7100, 99}});
       },
       [](const Bytes& b) { (void)core::decode_slice_advert(b); }},
      {"ae_digest",
       []() {
         return core::encode(
             core::AeDigest{false, {{"a", 1}, {"b", 2}, {"c", 3}}});
       },
       [](const Bytes& b) { (void)core::decode_ae_digest(b); }},
      {"ae_pull",
       []() { return core::encode(core::AePull{{{"a", 1}}}); },
       [](const Bytes& b) { (void)core::decode_ae_pull(b); }},
      // Summary-protocol frames: mutations hit the bucket_count field, so
      // the decoder's allocation guard (kMaxSummaryBuckets, ids < count) is
      // what stands between a flipped bit and a giant allocation.
      {"ae_summary",
       []() {
         core::AeSummary summary;
         summary.bucket_count = 16;
         summary.entry_count = 42;
         summary.fingerprints.assign(16, 0x0123456789ABCDEFULL);
         return core::encode(summary);
       },
       [](const Bytes& b) { (void)core::decode_ae_summary(b); }},
      {"ae_bucket_digest",
       []() {
         core::AeBucketDigest digest;
         digest.is_reply = true;
         digest.bucket_count = 16;
         digest.buckets = {1, 5, 9};
         digest.entries = {{"a", 1}, {"b", 2}};
         return core::encode(digest);
       },
       [](const Bytes& b) { (void)core::decode_ae_bucket_digest(b); }},
      {"ae_push",
       []() {
         return core::encode(core::AePush{
             {store::Object{"k", 1, Bytes{1, 2, 3}},
              store::Object::make_tombstone("dead", 4, 99)}});
       },
       [](const Bytes& b) { (void)core::decode_ae_push(b); }},
      {"st_request",
       []() { return core::encode(core::StRequest{7, {"cursor", 3}}); },
       [](const Bytes& b) { (void)core::decode_st_request(b); }},
      {"st_reply",
       []() {
         return core::encode(core::StReply{
             7, true, false, {store::Object{"k", 1, Bytes{5}}}});
       },
       [](const Bytes& b) { (void)core::decode_st_reply(b); }},
      // A slice advert whose endpoint gossips a TCP stream port: the tag-2
      // endpoint layout crossing a real message codec.
      {"slice_advert_streamed",
       []() {
         return core::encode(core::SliceAdvert{
             NodeId(1), 5, {10, 3}, Endpoint{0x7F000001, 7100, 99, 7200}});
       },
       [](const Bytes& b) { (void)core::decode_slice_advert(b); }},
      // The stream framing layer: feed() must absorb any byte sequence
      // without crashing — a malformed header poisons the decoder, a
      // truncated one just waits for more bytes.
      {"stream_frame",
       []() {
         net::Message msg;
         msg.src = NodeId(3);
         msg.dst = NodeId(4);
         msg.type = 0x0301;
         msg.payload = Payload(Bytes{1, 2, 3, 4, 5, 6, 7, 8, 9});
         return net::encode_stream_frame(msg);
       },
       [](const Bytes& b) {
         net::StreamFrameDecoder decoder;
         decoder.feed(ByteView(b.data(), b.size()));
         while (decoder.poll().has_value()) {
         }
       }},
  };
}

class CodecFuzzTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodecFuzzTest, EveryTruncationIsHandled) {
  const auto codec = all_codecs()[GetParam()];
  // Mutation needs a private mutable copy of the immutable encoding.
  const Bytes valid = codec.make_valid().to_bytes();
  for (std::size_t len = 0; len < valid.size(); ++len) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<long>(len));
    ASSERT_NO_THROW(codec.decode(truncated))
        << codec.name << " crashed at truncation length " << len;
  }
}

TEST_P(CodecFuzzTest, RandomMutationsAreHandled) {
  const auto codec = all_codecs()[GetParam()];
  // Mutation needs a private mutable copy of the immutable encoding.
  const Bytes valid = codec.make_valid().to_bytes();
  Rng rng(0xF022 + GetParam());
  for (int round = 0; round < 500; ++round) {
    Bytes mutated = valid;
    // 1-4 byte flips anywhere in the message (length prefixes included).
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips && !mutated.empty(); ++f) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<std::uint8_t>(rng.next_below(256));
    }
    ASSERT_NO_THROW(codec.decode(mutated))
        << codec.name << " crashed on mutation round " << round;
  }
}

TEST_P(CodecFuzzTest, RandomGarbageIsHandled) {
  const auto codec = all_codecs()[GetParam()];
  Rng rng(0xBAD + GetParam());
  for (int round = 0; round < 200; ++round) {
    Bytes garbage(rng.next_below(256));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    }
    ASSERT_NO_THROW(codec.decode(garbage))
        << codec.name << " crashed on garbage round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecFuzzTest,
                         ::testing::Range<std::size_t>(0, 16),
                         [](const auto& info) {
                           return std::string(all_codecs()[info.param].name);
                         });

TEST(CodecRoundTrip, CurrentEnvelopeCarriesCasStatsAndTtl) {
  const auto decoded = core::decode_op_envelope(valid_envelope());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->protocol, core::kOpProtocolVersion);
  ASSERT_EQ(decoded->ops.size(), 7u);
  EXPECT_EQ(decoded->ops[0].op.ttl_ms, 0u);
  EXPECT_EQ(decoded->ops[1].op.ttl_ms, 30'000u);
  const core::Operation& cas = decoded->ops[5].op;
  EXPECT_EQ(cas.type, core::OpType::kCompareAndPut);
  EXPECT_EQ(cas.key, "guarded-key");
  EXPECT_EQ(cas.expected, 7u);
  EXPECT_EQ(cas.version, 12u);
  EXPECT_EQ(cas.value.size(), 2u);
  EXPECT_EQ(decoded->ops[6].op.type, core::OpType::kStats);
}

TEST(CodecRoundTrip, V1EnvelopeStillDecodes) {
  const auto decoded = core::decode_op_envelope(valid_envelope_v1());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->protocol, core::kOpProtocolMin);
  EXPECT_EQ(decoded->ops.size(), 2u);
}

TEST(CodecRoundTrip, VersionMismatch) {
  const core::VersionMismatch msg{RequestId{0xC11E, 42}, 2, 1};
  const auto decoded = core::decode_version_mismatch(core::encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->rid.client, msg.rid.client);
  EXPECT_EQ(decoded->rid.seq, msg.rid.seq);
  EXPECT_EQ(decoded->got, 2);
  EXPECT_EQ(decoded->supported, 1);
}

TEST(CodecRoundTrip, OverloadReply) {
  const core::OverloadReply msg{RequestId{0x10AD, 77}, 1200};
  const auto decoded = core::decode_overload_reply(core::encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->rid.client, msg.rid.client);
  EXPECT_EQ(decoded->rid.seq, msg.rid.seq);
  EXPECT_EQ(decoded->retry_after_ms, 1200u);
}

TEST(CodecRoundTrip, OverloadReplyRejectsTrailingBytes) {
  // A frame longer than the fixed layout is malformed, not "v-next with
  // extra fields": decode must refuse it rather than silently truncate.
  Bytes padded = core::encode(core::OverloadReply{RequestId{1, 1}, 50})
                     .to_bytes();
  padded.push_back(0xEE);
  EXPECT_FALSE(core::decode_overload_reply(padded).has_value());
}

TEST(CodecRoundTrip, MinProtocolForOpTypes) {
  EXPECT_EQ(core::min_protocol_for(core::OpType::kPut), 1);
  EXPECT_EQ(core::min_protocol_for(core::OpType::kGet), 1);
  EXPECT_EQ(core::min_protocol_for(core::OpType::kDelete), 1);
  EXPECT_EQ(core::min_protocol_for(core::OpType::kCompareAndPut), 2);
  EXPECT_EQ(core::min_protocol_for(core::OpType::kStats), 2);
  // Per-operation refinement: only a put that actually carries a TTL
  // needs v3 — plain puts stay expressible all the way down to v1.
  EXPECT_EQ(core::min_protocol_for(core::Operation::put("k", 1, Bytes{1})),
            1);
  EXPECT_EQ(core::min_protocol_for(
                core::Operation::put("k", 1, Bytes{1}, /*ttl_ms=*/500)),
            3);
}

TEST(CodecRoundTrip, V3EnvelopeCarriesTtl) {
  core::OpEnvelope envelope;
  envelope.ops.push_back(core::RoutedOp{
      RequestId{3, 1},
      core::Operation::put("cached", 5, Bytes{1, 2}, /*ttl_ms=*/45'000)});
  const auto decoded = core::decode_op_envelope(core::encode(envelope));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->protocol, core::kOpProtocolVersion);
  ASSERT_EQ(decoded->ops.size(), 1u);
  EXPECT_EQ(decoded->ops[0].op.ttl_ms, 45'000u);
  EXPECT_EQ(decoded->ops[0].op.value, Bytes({1, 2}));
}

TEST(CodecRoundTrip, AeSummaryAndBucketDigest) {
  core::AeSummary summary;
  summary.bucket_count = 32;
  summary.entry_count = 100;
  summary.fingerprints.assign(32, 7);
  const auto sum = core::decode_ae_summary(core::encode(summary));
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(sum->bucket_count, 32u);
  EXPECT_EQ(sum->entry_count, 100u);
  EXPECT_EQ(sum->fingerprints, summary.fingerprints);

  core::AeBucketDigest digest;
  digest.is_reply = true;
  digest.bucket_count = 32;
  digest.buckets = {3, 17};
  digest.entries = {{"x", 9}};
  const auto dig = core::decode_ae_bucket_digest(core::encode(digest));
  ASSERT_TRUE(dig.has_value());
  EXPECT_TRUE(dig->is_reply);
  EXPECT_EQ(dig->buckets, digest.buckets);
  EXPECT_EQ(dig->entries, digest.entries);
}

TEST(CodecRoundTrip, AeSummaryRejectsAbsurdBucketCounts) {
  // A flipped bucket_count must be refused before any allocation sized by
  // it: receivers build bucket_count-long arrays from this field.
  core::AeSummary summary;
  summary.bucket_count = 16;
  summary.entry_count = 1;
  summary.fingerprints.assign(16, 1);
  Bytes bytes = core::encode(summary).to_bytes();
  bytes[0] = 0xFF;  // little-endian low byte of bucket_count
  bytes[1] = 0xFF;
  bytes[2] = 0xFF;
  bytes[3] = 0xFF;
  EXPECT_FALSE(core::decode_ae_summary(bytes).has_value());

  core::AeBucketDigest digest;
  digest.bucket_count = 16;
  digest.buckets = {15};
  const Bytes dig_bytes = core::encode(digest).to_bytes();
  // Layout: is_reply u8 | bucket_count u32 | vec len u32 | bucket ids...
  Bytes absurd_count = dig_bytes;
  absurd_count[1] = 0xFF;
  absurd_count[2] = 0xFF;
  absurd_count[3] = 0xFF;
  absurd_count[4] = 0xFF;
  EXPECT_FALSE(core::decode_ae_bucket_digest(absurd_count).has_value());
  // A bucket id >= bucket_count indexes out of the receiver's arrays.
  Bytes out_of_range = dig_bytes;
  out_of_range[9] = 0xFF;  // id 15 -> 255, beyond the 16-bucket layout
  EXPECT_FALSE(core::decode_ae_bucket_digest(out_of_range).has_value());
}

TEST(CodecFuzz, PssDescriptorTruncations) {
  // The endpoint-less, UDP-only, and stream-port-carrying layouts must all
  // reject every proper prefix.
  const std::vector<pss::NodeDescriptor> variants{
      {NodeId(5), 9, std::nullopt},
      {NodeId(5), 9, Endpoint{0x7F000001, 7105, 1234}},
      {NodeId(5), 9, Endpoint{0x7F000001, 7105, 1234, 9100}},
  };
  for (const auto& descriptor : variants) {
    Writer w;
    pss::encode(w, descriptor);
    const Bytes valid = w.take();
    for (std::size_t len = 0; len < valid.size(); ++len) {
      Bytes truncated(valid.begin(), valid.begin() + static_cast<long>(len));
      Reader r(truncated);
      ASSERT_NO_THROW((void)pss::decode_descriptor(r));
      EXPECT_FALSE(r.finish().ok());
    }
  }
}

// ---- endpoint codec back-compat --------------------------------------------
// The optional-endpoint layout grew a tag-2 variant carrying a stream port.
// Three properties keep old and new nodes interoperable: a stream-less node
// emits bytes identical to the pre-stream layout, those legacy bytes decode
// cleanly, and unknown tags are rejected rather than guessed at.

TEST(EndpointCodec, StreamlessEncodingIsByteIdenticalToLegacyLayout) {
  Writer w;
  encode_endpoint_opt(w, Endpoint{0x0A000001, 7100, 42});
  // The pre-stream layout, built by hand: tag 1, ip, port, stamp.
  Writer legacy;
  legacy.u8(1);
  legacy.u32(0x0A000001);
  legacy.u16(7100);
  legacy.u64(42);
  EXPECT_EQ(w.take(), legacy.take())
      << "a node without a stream port must gossip the exact legacy bytes";
}

TEST(EndpointCodec, DecodesLegacyTagOneBytes) {
  Writer legacy;
  legacy.u8(1);
  legacy.u32(0x0A000001);
  legacy.u16(7100);
  legacy.u64(42);
  const Bytes wire = legacy.take();

  Reader r(wire);
  const auto endpoint = decode_endpoint_opt(r);
  ASSERT_TRUE(endpoint.has_value());
  EXPECT_TRUE(r.finish().ok());
  EXPECT_EQ(endpoint->ip, 0x0A000001u);
  EXPECT_EQ(endpoint->port, 7100);
  EXPECT_EQ(endpoint->stamp, 42u);
  EXPECT_EQ(endpoint->stream_port, 0) << "legacy descriptors are UDP-only";
}

TEST(EndpointCodec, RoundTripsStreamPortViaTagTwo) {
  const Endpoint original{0x7F000001, 7105, 1234, 9100};
  Writer w;
  encode_endpoint_opt(w, original);
  const Bytes wire = w.take();
  EXPECT_EQ(wire[0], 2) << "a stream port selects the tag-2 layout";

  Reader r(wire);
  const auto decoded = decode_endpoint_opt(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(r.finish().ok());
  EXPECT_EQ(*decoded, original);
}

TEST(EndpointCodec, RejectsUnknownTag) {
  Writer w;
  encode_endpoint_opt(w, Endpoint{0x7F000001, 7105, 1234, 9100});
  Bytes wire = w.take();
  wire[0] = 3;  // a tag no encoder emits
  Reader r(wire);
  EXPECT_FALSE(decode_endpoint_opt(r).has_value());
  EXPECT_FALSE(r.ok()) << "an unknown tag is malformed input, not v-next";
}

TEST(EndpointCodec, BothLayoutsRejectEveryTruncation) {
  const std::vector<Endpoint> variants{
      Endpoint{0x0A000001, 7100, 42},
      Endpoint{0x0A000001, 7100, 42, 9100},
  };
  for (const Endpoint& endpoint : variants) {
    Writer w;
    encode_endpoint_opt(w, endpoint);
    const Bytes valid = w.take();
    for (std::size_t len = 1; len < valid.size(); ++len) {
      Bytes truncated(valid.begin(), valid.begin() + static_cast<long>(len));
      Reader r(truncated);
      (void)decode_endpoint_opt(r);
      EXPECT_FALSE(r.finish().ok())
          << "prefix of length " << len << " must fail the reader";
    }
  }
}

// ---- stream framing --------------------------------------------------------
// The parameterized sweep above already feeds the decoder truncations,
// mutations and garbage in one window; these pin down the framing-specific
// contracts the sweep cannot see.

TEST(StreamFrameFuzz, TruncationsNeverCompleteAFrame) {
  net::Message msg;
  msg.src = NodeId(3);
  msg.dst = NodeId(4);
  msg.type = 0x0301;
  msg.payload = Payload(Bytes{10, 20, 30, 40});
  const Bytes valid = net::encode_stream_frame(msg).to_bytes();
  for (std::size_t len = 0; len < valid.size(); ++len) {
    net::StreamFrameDecoder decoder;
    decoder.feed(ByteView(valid.data(), len));
    EXPECT_FALSE(decoder.poll().has_value())
        << "prefix of length " << len << " completed a frame";
    EXPECT_FALSE(decoder.failed())
        << "a truncated valid frame is pending, not malformed";
  }
}

TEST(StreamFrameFuzz, MutatedLengthFieldNeverCrashes) {
  net::Message msg;
  msg.src = NodeId(3);
  msg.dst = NodeId(4);
  msg.type = 0x0301;
  msg.payload = Payload(Bytes{10, 20, 30, 40});
  const Bytes valid = net::encode_stream_frame(msg).to_bytes();
  const std::size_t len_off = net::kStreamHeaderSize - sizeof(std::uint32_t);

  Rng rng(0x57EA);
  for (int round = 0; round < 500; ++round) {
    Bytes mutated = valid;
    const auto length = static_cast<std::uint32_t>(rng.next_u64());
    std::memcpy(mutated.data() + len_off, &length, sizeof length);
    net::StreamFrameDecoder decoder;
    decoder.feed(ByteView(mutated.data(), mutated.size()));
    while (decoder.poll().has_value()) {
    }
    if (length > net::kMaxStreamPayload) {
      EXPECT_TRUE(decoder.failed())
          << "length " << length << " must poison the decoder";
    }
  }
}

TEST(StreamFrameFuzz, OversizedDeclaredLengthIsRejected) {
  net::Message msg;
  msg.src = NodeId(1);
  msg.dst = NodeId(2);
  msg.type = 0x0302;
  msg.payload = Payload(Bytes{1});
  Bytes wire = net::encode_stream_frame(msg).to_bytes();
  const std::size_t len_off = net::kStreamHeaderSize - sizeof(std::uint32_t);
  const auto huge = static_cast<std::uint32_t>(net::kMaxStreamPayload + 1);
  std::memcpy(wire.data() + len_off, &huge, sizeof huge);

  net::StreamFrameDecoder decoder;
  decoder.feed(ByteView(wire.data(), wire.size()));
  EXPECT_TRUE(decoder.failed());
  EXPECT_FALSE(decoder.poll().has_value());
}

TEST(StreamFrameFuzz, GarbageStreamsPoisonWithoutCrashing) {
  Rng rng(0xDF5F);
  for (int round = 0; round < 200; ++round) {
    net::StreamFrameDecoder decoder;
    // Feed garbage in several windows, as a socket would deliver it.
    const std::size_t windows = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < windows; ++i) {
      Bytes garbage(rng.next_below(256));
      for (auto& byte : garbage) {
        byte = static_cast<std::uint8_t>(rng.next_below(256));
      }
      decoder.feed(ByteView(garbage.data(), garbage.size()));
      while (decoder.poll().has_value()) {
      }
    }
  }
}

}  // namespace
}  // namespace dataflasks
