// Tests for the §VII completions: hinted handoff (misrouted replicas are
// re-homed, not dropped) and hedged client reads (tail-latency hedging with
// duplicate-reply absorption).
#include <gtest/gtest.h>

#include "harness/cluster.hpp"

namespace dataflasks {
namespace {

harness::ClusterOptions options_with(std::uint32_t slices,
                                     std::uint64_t seed) {
  harness::ClusterOptions opts;
  opts.node_count = 60;
  opts.seed = seed;
  opts.node.slice_config = {slices, 1};
  return opts;
}

TEST(HintedHandoff, MisroutedPushIsRehomedToItsSlice) {
  harness::Cluster cluster(options_with(4, 31));
  cluster.start_all();
  cluster.run_for(60 * kSeconds);

  // Find a key and a node that is NOT in the key's slice, then push the
  // object at that node directly (simulating a stale-view misroute).
  const Key key = "misrouted";
  core::Node* wrong_node = nullptr;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto& node = cluster.node(i);
    if (node.key_slice(key) != node.slice()) {
      wrong_node = &node;
      break;
    }
  }
  ASSERT_NE(wrong_node, nullptr);

  const core::ReplicatePush push{{store::Object{key, 1, Bytes{0xEE}}}};
  cluster.transport().send(net::Message{NodeId(999999), wrong_node->id(),
                                        core::kReplicatePush,
                                        core::encode(push)});
  // Handoff maintenance re-homes it toward the right slice (directory
  // unicast when a contact is known, discovery spray otherwise).
  cluster.run_for(30 * kSeconds);

  EXPECT_GE(cluster.replica_count(key, 1), 1u);
  EXPECT_GT(cluster.slice_coverage(key, 1), 0.0);
  EXPECT_GE(wrong_node->metrics().counter_value("rh.handoffs_sprayed") +
                wrong_node->metrics().counter_value("rh.handoffs_forwarded"),
            1u);
}

TEST(HintedHandoff, DisabledMeansMisroutesAreDropped) {
  auto opts = options_with(4, 32);
  opts.node.request.hinted_handoff = false;
  harness::Cluster cluster(opts);
  cluster.start_all();
  cluster.run_for(60 * kSeconds);

  const Key key = "dropped";
  core::Node* wrong_node = nullptr;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto& node = cluster.node(i);
    if (node.key_slice(key) != node.slice()) {
      wrong_node = &node;
      break;
    }
  }
  ASSERT_NE(wrong_node, nullptr);

  const core::ReplicatePush push{{store::Object{key, 1, Bytes{0xEE}}}};
  cluster.transport().send(net::Message{NodeId(999999), wrong_node->id(),
                                        core::kReplicatePush,
                                        core::encode(push)});
  cluster.run_for(30 * kSeconds);
  EXPECT_EQ(cluster.replica_count(key, 1), 0u);
}

TEST(HintedHandoff, RepeatedMisroutesAreRehomedOnce) {
  harness::Cluster cluster(options_with(4, 33));
  cluster.start_all();
  cluster.run_for(60 * kSeconds);

  const Key key = "repeated";
  core::Node* wrong_node = nullptr;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto& node = cluster.node(i);
    if (node.key_slice(key) != node.slice()) {
      wrong_node = &node;
      break;
    }
  }
  ASSERT_NE(wrong_node, nullptr);

  // The same misrouted copy arrives several times (duplicated pushes);
  // the fingerprint dedup must re-home it exactly once.
  const core::ReplicatePush push{{store::Object{key, 1, Bytes{0xEE}}}};
  for (int i = 0; i < 5; ++i) {
    cluster.transport().send(net::Message{NodeId(999999), wrong_node->id(),
                                          core::kReplicatePush,
                                          core::encode(push)});
  }
  cluster.run_for(40 * kSeconds);

  EXPECT_GE(cluster.replica_count(key, 1), 1u);
  const auto rehomed =
      wrong_node->metrics().counter_value("rh.handoffs_sprayed") +
      wrong_node->metrics().counter_value("rh.handoffs_forwarded");
  EXPECT_EQ(rehomed, 1u);
}

TEST(HedgedReads, SecondContactAnswersWhenFirstIsDead) {
  harness::Cluster cluster(options_with(4, 34));
  cluster.start_all();
  cluster.run_for(60 * kSeconds);

  client::ClientOptions copts;
  copts.request_timeout = 5 * kSeconds;
  copts.get_hedge_delay = 500 * kMillis;
  auto& client = cluster.add_client(copts);

  client.put("hedged", Bytes{1}, 1, nullptr);
  cluster.run_for(20 * kSeconds);  // replicate

  // Kill a third of the cluster: some gets will pick dead contacts; the
  // hedge (not the slow timeout) should rescue them.
  for (std::size_t i = 0; i < 20; ++i) cluster.crash(i);

  int successes = 0;
  int beat_the_timeout = 0;
  for (int i = 0; i < 20; ++i) {
    client.get("hedged", std::nullopt,
               [&](const client::GetResult& result) {
                 if (result.ok) {
                   ++successes;
                   if (result.latency < copts.request_timeout) {
                     ++beat_the_timeout;
                   }
                 }
               });
    cluster.run_for(8 * kSeconds);
  }

  EXPECT_EQ(successes, 20);
  // A dead first contact normally costs ~hedge_delay extra, not a full
  // timeout. (Both contacts dead is possible with a third of the cluster
  // down; those few requests legitimately take the retry path.)
  EXPECT_GE(beat_the_timeout, 16);
  EXPECT_GT(client.metrics().counter_value("client.get_hedges"), 0u);
}

TEST(HedgedReads, NoHedgeTrafficWhenDisabled) {
  harness::Cluster cluster(options_with(4, 35));
  cluster.start_all();
  cluster.run_for(60 * kSeconds);

  auto& client = cluster.add_client();  // hedge_delay = 0 (off)
  client.put("plain", Bytes{1}, 1, nullptr);
  cluster.run_for(10 * kSeconds);
  client.get("plain", std::nullopt, nullptr);
  cluster.run_for(10 * kSeconds);
  EXPECT_EQ(client.metrics().counter_value("client.get_hedges"), 0u);
}

}  // namespace
}  // namespace dataflasks
