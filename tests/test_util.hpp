// Shared helpers for protocol-level tests: a pre-wired simulator + network
// + transport bundle, and small assertion utilities.
#pragma once

#include <memory>
#include <vector>

#include "net/sim_transport.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace dataflasks::testing {

/// Simulator + network model + transport with low, constant latency:
/// protocol logic tests should not depend on jitter.
struct SimBundle {
  explicit SimBundle(std::uint64_t seed = 1234,
                     SimTime latency = 10 * kMillis)
      : simulator(seed), model(sim::LatencyModel::constant(latency)) {
    transport = std::make_unique<net::SimTransport>(simulator, model);
  }

  sim::Simulator simulator;
  sim::NetworkModel model;
  std::unique_ptr<net::SimTransport> transport;

  void run_for(SimTime duration) {
    simulator.run_until(simulator.now() + duration);
  }
};

/// Dense node ids 0..count-1.
inline std::vector<NodeId> make_ids(std::size_t count) {
  std::vector<NodeId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ids.emplace_back(i);
  return ids;
}

}  // namespace dataflasks::testing
