// Observability layer: log-linear histogram percentile math (error bound,
// bucket boundaries, merge), registry rendering against the Prometheus
// text exposition grammar, the node-counter bridge, and the plain-TCP
// scrape endpoint on a real runtime loop.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_endpoint.hpp"
#include "runtime/real_time_runtime.hpp"

namespace dataflasks::obs {
namespace {

// ---- histogram percentile math ----

TEST(LatencyHistogram, LinearRegionIsExact) {
  // Values below 2^kSubBits = 32 get unit-wide buckets: quantiles exact.
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.quantile(0.5), 15u);   // ceil(0.5*32)=16th value = 15
  EXPECT_EQ(h.quantile(1.0), 31u);
  EXPECT_EQ(h.max(), 31u);
  EXPECT_EQ(h.sum(), 31u * 32 / 2);
}

TEST(LatencyHistogram, QuantileErrorBoundOneToMillion) {
  // The log-linear trade: the reported quantile overestimates the true one
  // by at most one sub-bucket width — 1/2^kSubBits ~ 3.2%.
  LatencyHistogram h;
  constexpr std::uint64_t kN = 100000;
  for (std::uint64_t v = 1; v <= kN; ++v) h.record(v);
  for (const double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    const auto exact = static_cast<std::uint64_t>(q * kN);
    const std::uint64_t reported = h.quantile(q);
    EXPECT_GE(reported, exact) << "q=" << q;
    EXPECT_LE(static_cast<double>(reported),
              static_cast<double>(exact) * 1.033 + 1.0)
        << "q=" << q;
  }
}

TEST(LatencyHistogram, BucketBoundsArePartition) {
  // bucket_upper_bound(i) must be the largest value indexing to bucket i,
  // and bucket i+1 must start right after it — no gaps, no overlaps.
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBucketCount; ++i) {
    const std::uint64_t upper = LatencyHistogram::bucket_upper_bound(i);
    EXPECT_EQ(LatencyHistogram::bucket_index(upper), i);
    EXPECT_EQ(LatencyHistogram::bucket_index(upper + 1), i + 1);
  }
  // Spot values across the range, including extremes.
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{31}, std::uint64_t{32},
        std::uint64_t{1000}, std::uint64_t{1} << 40,
        ~std::uint64_t{0}}) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    ASSERT_LT(i, LatencyHistogram::kBucketCount);
    EXPECT_GE(LatencyHistogram::bucket_upper_bound(i), v);
  }
}

TEST(LatencyHistogram, EmptyAndSingleValue) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  h.record(4242);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.quantile(0.001), h.quantile(1.0));
  EXPECT_GE(h.quantile(0.5), 4242u);
  EXPECT_EQ(h.max(), 4242u);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  // Merging per-worker histograms must equal recording into one — the load
  // generator's aggregation path.
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    ((v % 2 == 0) ? a : b).record(v * 7);
    combined.record(v * 7);
  }
  a.merge_from(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.max(), combined.max());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogram, ConcurrentRecordersLoseNothing) {
  // The histogram is the cross-thread surface of the loadgen and server;
  // hammer it from several threads and require exact totals after join.
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t v = 0; v < kPerThread; ++v) {
        h.record((v % 1000) + static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

// ---- registry + exposition format ----

/// Minimal Prometheus text-format validity check: every non-comment line is
/// `name{labels} value` or `name value`, names legal, braces balanced.
void expect_valid_exposition(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment line: " << line;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    const auto brace = series.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(series.back(), '}') << line;
      series = series.substr(0, brace);
    }
    EXPECT_TRUE(is_valid_metric_name(series)) << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u) << "no samples in exposition";
}

TEST(MetricsRegistry, RegistersAndRenders) {
  MetricsRegistry registry;
  Counter& puts = registry.counter("df_ops_total", "op=\"put\"", "ops");
  Counter& gets = registry.counter("df_ops_total", "op=\"get\"", "ops");
  Gauge& depth = registry.gauge("df_queue_depth", "", "queue depth");
  LatencyHistogram& lat = registry.histogram("df_op_exec_us", "op=\"put\"");
  puts.add(3);
  gets.add();
  depth.set(7.5);
  lat.record(100);
  lat.record(200);

  // Registration is idempotent: same (name, labels) returns the same slot.
  EXPECT_EQ(&registry.counter("df_ops_total", "op=\"put\""), &puts);

  const std::string text = registry.render();
  expect_valid_exposition(text);
  EXPECT_NE(text.find("df_ops_total{op=\"put\"} 3"), std::string::npos);
  EXPECT_NE(text.find("df_ops_total{op=\"get\"} 1"), std::string::npos);
  EXPECT_NE(text.find("df_queue_depth 7.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE df_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE df_queue_depth gauge"), std::string::npos);
  // Histograms render as summaries: quantiles + _sum + _count.
  EXPECT_NE(text.find("# TYPE df_op_exec_us summary"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("df_op_exec_us_count{op=\"put\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("df_op_exec_us_sum{op=\"put\"} 300"),
            std::string::npos);
}

TEST(MetricsRegistry, MetricNameValidity) {
  EXPECT_TRUE(is_valid_metric_name("df_ops_total"));
  EXPECT_TRUE(is_valid_metric_name("a:b_c9"));
  EXPECT_TRUE(is_valid_metric_name("_x"));
  EXPECT_FALSE(is_valid_metric_name(""));
  EXPECT_FALSE(is_valid_metric_name("9abc"));
  EXPECT_FALSE(is_valid_metric_name("has space"));
  EXPECT_FALSE(is_valid_metric_name("has-dash"));
}

TEST(MetricsRegistry, EscapesLabelValues) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
}

TEST(MetricsRegistry, BridgesNodeCounters) {
  // The per-node single-threaded registry joins the exposition as one
  // labeled family — the path CLI stats / UDP / HTTP scrapes all share.
  dataflasks::MetricsRegistry node;
  node.counter("rh.puts_stored").add(17);
  node.counter("pss.rounds").add(4);
  const std::string text = render_node_counters(node, "df_node_events_total");
  expect_valid_exposition(text);
  EXPECT_NE(text.find("df_node_events_total{counter=\"rh.puts_stored\"} 17"),
            std::string::npos);
  EXPECT_NE(text.find("df_node_events_total{counter=\"pss.rounds\"} 4"),
            std::string::npos);
}

// ---- TCP scrape endpoint ----

TEST(MetricsTcpEndpoint, ServesScrapesOnRuntimeLoop) {
  runtime::RealTimeRuntime rt(1);
  MetricsRegistry registry;
  registry.counter("df_test_total", "", "test").add(5);
  MetricsTcpEndpoint endpoint(rt, "127.0.0.1", 0,
                              [&] { return registry.render(); });
  ASSERT_NE(endpoint.port(), 0);

  // Scrape from a helper thread while the runtime loop serves.
  std::string body;
  std::thread scraper([&] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::send(fd, request, sizeof(request) - 1, 0),
              static_cast<ssize_t>(sizeof(request) - 1));
    char buf[4096];
    ssize_t n = 0;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      body.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    rt.stop();
  });
  rt.run_for(2 * kSeconds);
  scraper.join();

  EXPECT_EQ(endpoint.scrapes_served(), 1u);
  EXPECT_NE(body.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(body.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(body.find("df_test_total 5"), std::string::npos);
  // The body after the blank line must be a valid exposition.
  const auto split = body.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  expect_valid_exposition(body.substr(split + 4));
}

}  // namespace
}  // namespace dataflasks::obs
