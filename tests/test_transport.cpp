// SimTransport tests: delivery through the event queue, latency ordering,
// drop semantics (loss, dead nodes, unregistered handlers, crash while in
// flight) and the per-node / per-category traffic accounting that the
// paper-figure benches depend on.
#include <gtest/gtest.h>

#include "core/messages.hpp"
#include "test_util.hpp"

namespace dataflasks::net {
namespace {

using testing::SimBundle;

Message make_msg(std::uint64_t src, std::uint64_t dst, std::uint16_t type,
                 std::size_t payload_size = 4) {
  return Message{NodeId(src), NodeId(dst), type, Bytes(payload_size, 0xAA)};
}

TEST(SimTransport, DeliversAfterLatency) {
  SimBundle bundle(1, /*latency=*/25 * kMillis);
  SimTime delivered_at = -1;
  bundle.transport->register_handler(NodeId(2), [&](const Message&) {
    delivered_at = bundle.simulator.now();
  });
  bundle.transport->send(make_msg(1, 2, kPssTypeBase));
  bundle.run_for(kSeconds);
  EXPECT_EQ(delivered_at, 25 * kMillis);
}

TEST(SimTransport, PayloadArrivesIntact) {
  SimBundle bundle(2);
  Payload received;
  bundle.transport->register_handler(NodeId(2), [&](const Message& msg) {
    received = msg.payload;
  });
  Message msg = make_msg(1, 2, kRequestTypeBase);
  msg.payload = Bytes{1, 2, 3, 4, 5};
  bundle.transport->send(msg);
  bundle.run_for(kSeconds);
  EXPECT_EQ(received, (Bytes{1, 2, 3, 4, 5}));
}

TEST(SimTransport, UnregisteredDestinationDrops) {
  SimBundle bundle(3);
  bundle.transport->send(make_msg(1, 99, kPssTypeBase));
  bundle.run_for(kSeconds);
  EXPECT_EQ(bundle.transport->total_sent(), 1u);
  EXPECT_EQ(bundle.transport->total_delivered(), 0u);
  EXPECT_EQ(bundle.transport->total_dropped(), 1u);
}

TEST(SimTransport, CrashWhileInFlightDrops) {
  SimBundle bundle(4, /*latency=*/50 * kMillis);
  int delivered = 0;
  bundle.transport->register_handler(NodeId(2),
                                     [&](const Message&) { ++delivered; });
  bundle.transport->send(make_msg(1, 2, kPssTypeBase));
  // The destination dies before the packet lands.
  bundle.simulator.schedule_after(10 * kMillis, [&]() {
    bundle.model.set_node_up(NodeId(2), false);
  });
  bundle.run_for(kSeconds);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(bundle.transport->total_dropped(), 1u);
}

TEST(SimTransport, UnregisterStopsDelivery) {
  SimBundle bundle(5);
  int delivered = 0;
  bundle.transport->register_handler(NodeId(2),
                                     [&](const Message&) { ++delivered; });
  bundle.transport->unregister_handler(NodeId(2));
  bundle.transport->send(make_msg(1, 2, kPssTypeBase));
  bundle.run_for(kSeconds);
  EXPECT_EQ(delivered, 0);
}

TEST(SimTransport, LossIsApplied) {
  SimBundle bundle(6);
  bundle.model.set_loss_probability(0.5);
  int delivered = 0;
  bundle.transport->register_handler(NodeId(2),
                                     [&](const Message&) { ++delivered; });
  for (int i = 0; i < 2000; ++i) {
    bundle.transport->send(make_msg(1, 2, kPssTypeBase));
  }
  bundle.run_for(10 * kSeconds);
  EXPECT_NEAR(delivered, 1000, 100);
  EXPECT_EQ(bundle.transport->total_sent(), 2000u);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered),
            bundle.transport->total_delivered());
}

TEST(SimTransport, PerNodeAccountingCountsBothSides) {
  SimBundle bundle(7);
  bundle.transport->register_handler(NodeId(2), [](const Message&) {});
  bundle.transport->send(make_msg(1, 2, kRequestTypeBase, 10));
  bundle.run_for(kSeconds);

  const TrafficStats& sender = bundle.transport->stats(NodeId(1));
  const TrafficStats& receiver = bundle.transport->stats(NodeId(2));
  EXPECT_EQ(sender.sent, 1u);
  EXPECT_EQ(sender.received, 0u);
  EXPECT_EQ(receiver.sent, 0u);
  EXPECT_EQ(receiver.received, 1u);
  EXPECT_EQ(sender.bytes_sent, receiver.bytes_received);
  EXPECT_GT(sender.bytes_sent, 10u);  // payload + envelope header
  EXPECT_EQ(sender.total_messages(), 1u);
}

TEST(SimTransport, SendsCountEvenWhenDropped) {
  SimBundle bundle(8);
  bundle.model.set_node_up(NodeId(2), false);
  bundle.transport->send(make_msg(1, 2, kPssTypeBase));
  bundle.run_for(kSeconds);
  // The sender did the work; the paper's per-node counts include sends.
  EXPECT_EQ(bundle.transport->stats(NodeId(1)).sent, 1u);
  EXPECT_EQ(bundle.transport->stats(NodeId(2)).received, 0u);
}

TEST(SimTransport, CategoryAccountingSeparatesTraffic) {
  SimBundle bundle(9);
  bundle.transport->register_handler(NodeId(2), [](const Message&) {});
  bundle.transport->send(make_msg(1, 2, kPssTypeBase));
  bundle.transport->send(make_msg(1, 2, kSlicingTypeBase));
  bundle.transport->send(make_msg(1, 2, kRequestTypeBase));
  bundle.transport->send(make_msg(1, 2, kRequestTypeBase + 5));
  bundle.transport->send(make_msg(1, 2, kAntiEntropyTypeBase));
  bundle.transport->send(make_msg(1, 2, kBaselineTypeBase));
  bundle.run_for(kSeconds);

  auto sent_in = [&](MsgCategory category) {
    return bundle.transport->stats_for_category(NodeId(1), category).sent;
  };
  EXPECT_EQ(sent_in(MsgCategory::kPeerSampling), 1u);
  EXPECT_EQ(sent_in(MsgCategory::kSlicing), 1u);
  EXPECT_EQ(sent_in(MsgCategory::kRequest), 2u);
  EXPECT_EQ(sent_in(MsgCategory::kAntiEntropy), 1u);
  EXPECT_EQ(sent_in(MsgCategory::kBaseline), 1u);
}

TEST(SimTransport, ResetStatsClearsEverything) {
  SimBundle bundle(10);
  bundle.transport->register_handler(NodeId(2), [](const Message&) {});
  bundle.transport->send(make_msg(1, 2, kPssTypeBase));
  bundle.run_for(kSeconds);
  bundle.transport->reset_stats();
  EXPECT_EQ(bundle.transport->total_sent(), 0u);
  EXPECT_EQ(bundle.transport->stats(NodeId(1)).sent, 0u);
  EXPECT_EQ(bundle.transport
                ->stats_for_category(NodeId(1), MsgCategory::kPeerSampling)
                .sent,
            0u);
}

TEST(MessageEnvelope, WireSizeAndCategories) {
  Message msg = make_msg(1, 2, kRequestTypeBase, 100);
  EXPECT_EQ(msg.wire_size(), 100u + 8 + 8 + 2 + 4);
  EXPECT_EQ(category_of(0x0050), MsgCategory::kOther);
  EXPECT_EQ(std::string(to_string(MsgCategory::kRequest)), "request");
}

TEST(SimTransport, PutFanOutPerformsExactlyOnePayloadAllocation) {
  // Zero-copy regression guard: replicating one put to k slice-mates must
  // encode once and share that buffer through the event queue to every
  // delivery — one payload allocation total, not one per recipient.
  SimBundle bundle(12);
  constexpr std::uint64_t kFanout = 4;

  const Bytes value(64, 0xCD);
  const store::Object object{"fan-out-key", 7, value};

  std::size_t delivered = 0;
  for (std::uint64_t peer = 2; peer <= 1 + kFanout; ++peer) {
    bundle.transport->register_handler(NodeId(peer), [&](const Message& msg) {
      const auto push = core::decode_replicate_push(msg.payload);
      ASSERT_TRUE(push.has_value());
      ASSERT_EQ(push->objects.size(), 1u);
      EXPECT_EQ(push->objects.front(), object);
      ++delivered;
    });
  }

  Payload::reset_alloc_stats();
  const Payload encoded = core::encode(core::ReplicatePush{{object}});
  for (std::uint64_t peer = 2; peer <= 1 + kFanout; ++peer) {
    bundle.transport->send(
        Message{NodeId(1), NodeId(peer), core::kReplicatePush, encoded});
  }
  bundle.run_for(kSeconds);

  EXPECT_EQ(delivered, kFanout);
  // The encode is the one and only payload buffer: Message copies, queued
  // delivery closures and handler-side decoding all share or view it.
  EXPECT_EQ(Payload::alloc_stats().buffers, 1u);
  EXPECT_EQ(Payload::alloc_stats().bytes, encoded.size());
}

TEST(SimTransport, ConcurrentMessagesKeepFifoPerLink) {
  // Constant latency => messages on the same link deliver in send order.
  SimBundle bundle(11, 10 * kMillis);
  std::vector<std::uint8_t> order;
  bundle.transport->register_handler(NodeId(2), [&](const Message& msg) {
    order.push_back(msg.payload.front());
  });
  for (std::uint8_t i = 0; i < 10; ++i) {
    Message msg = make_msg(1, 2, kPssTypeBase);
    msg.payload = Bytes{i};
    bundle.transport->send(msg);
  }
  bundle.run_for(kSeconds);
  ASSERT_EQ(order.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace dataflasks::net
