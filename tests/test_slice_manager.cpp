// SliceManager unit tests: advertisement flow, intra-slice view population,
// directory learning, config propagation and slice-change plumbing —
// exercised against real Cyclon + Sliver instances on the simulator.
#include <gtest/gtest.h>

#include <memory>

#include "core/slice_manager.hpp"
#include "pss/cyclon.hpp"
#include "slicing/sliver.hpp"
#include "test_util.hpp"

namespace dataflasks::core {
namespace {

using testing::SimBundle;

struct ManagedNode {
  std::unique_ptr<pss::Cyclon> pss;
  std::unique_ptr<SliceManager> manager;
};

std::vector<ManagedNode> make_managed(SimBundle& bundle, std::size_t count,
                                      std::uint32_t slices) {
  std::vector<ManagedNode> nodes(count);
  Rng seeder(0x57ab);
  for (std::size_t i = 0; i < count; ++i) {
    nodes[i].pss = std::make_unique<pss::Cyclon>(
        NodeId(i), *bundle.transport, Rng(seeder.next_u64()),
        pss::CyclonOptions{});
    auto slicer = std::make_unique<slicing::Sliver>(
        NodeId(i), static_cast<double>(i), *bundle.transport, *nodes[i].pss,
        Rng(seeder.next_u64()), slicing::SliceConfig{slices, 1});
    nodes[i].manager = std::make_unique<SliceManager>(
        NodeId(i), *bundle.transport, *nodes[i].pss, std::move(slicer),
        Rng(seeder.next_u64()), SliceManagerOptions{});
  }
  for (std::size_t i = 0; i < count; ++i) {
    nodes[i].pss->bootstrap({NodeId((i + 1) % count), NodeId((i + 3) % count)});
    auto* node = &nodes[i];
    bundle.transport->register_handler(
        NodeId(i), [node](const net::Message& msg) {
          if (node->pss->handle(msg)) return;
          node->manager->handle(msg);
        });
    bundle.simulator.schedule_periodic(
        bundle.simulator.rng().next_in(0, kSeconds), kSeconds, [node]() {
          node->pss->tick();
          node->manager->tick_slicing();
          node->manager->tick_advertisement();
        });
  }
  return nodes;
}

TEST(SliceManagerTest, AdvertisementsPopulateSliceViews) {
  SimBundle bundle(0x61);
  auto nodes = make_managed(bundle, 60, 3);
  bundle.run_for(90 * kSeconds);

  // Every node should know several members of its own slice (~20 exist).
  std::size_t with_peers = 0;
  for (const auto& node : nodes) {
    if (node.manager->slice_peers(3).size() >= 2) ++with_peers;
  }
  EXPECT_GE(with_peers, nodes.size() * 9 / 10);
}

TEST(SliceManagerTest, SliceViewContainsOnlySameSliceMembers) {
  SimBundle bundle(0x62);
  auto nodes = make_managed(bundle, 60, 3);
  bundle.run_for(90 * kSeconds);

  for (const auto& node : nodes) {
    const SliceId mine = node.manager->slice();
    for (const NodeId peer : node.manager->all_slice_peers()) {
      // The peer's own current claim should (almost always) match; allow
      // boundary churn by checking against both current and raw slice.
      auto& peer_manager = *nodes[peer.value].manager;
      EXPECT_TRUE(peer_manager.slice() == mine ||
                  peer_manager.slicer().raw_slice() == mine)
          << "node " << node.manager->slice() << " lists peer in slice "
          << peer_manager.slice();
    }
  }
}

TEST(SliceManagerTest, DirectoryLearnsOtherSlices) {
  SimBundle bundle(0x63);
  auto nodes = make_managed(bundle, 60, 3);
  bundle.run_for(90 * kSeconds);

  std::size_t with_full_directory = 0;
  for (const auto& node : nodes) {
    std::size_t known = 0;
    for (SliceId s = 0; s < 3; ++s) {
      if (s == node.manager->slice()) continue;
      if (node.manager->directory_lookup(s)) ++known;
    }
    if (known == 2) ++with_full_directory;
  }
  EXPECT_GE(with_full_directory, nodes.size() / 2);
}

TEST(SliceManagerTest, KeySliceMatchesConfig) {
  SimBundle bundle(0x64);
  auto nodes = make_managed(bundle, 10, 4);
  EXPECT_EQ(nodes[0].manager->key_slice("k"),
            slicing::key_to_slice("k", 4));
}

TEST(SliceManagerTest, ConfigChangeListenerFires) {
  SimBundle bundle(0x65);
  auto nodes = make_managed(bundle, 30, 2);
  bundle.run_for(30 * kSeconds);

  int config_changes = 0;
  nodes[5].manager->set_config_change_listener(
      [&](const slicing::SliceConfig& config) {
        EXPECT_EQ(config.slice_count, 8u);
        ++config_changes;
      });
  nodes[0].manager->adopt_config({8, 2});
  bundle.run_for(60 * kSeconds);
  EXPECT_EQ(config_changes, 1);
  EXPECT_EQ(nodes[5].manager->config().slice_count, 8u);
}

TEST(SliceManagerTest, ObservePeerFeedsViewDirectly) {
  SimBundle bundle(0x66);
  auto nodes = make_managed(bundle, 10, 1);  // k=1: everyone same slice
  nodes[0].manager->observe_peer(NodeId(7), 0);
  const auto peers = nodes[0].manager->all_slice_peers();
  EXPECT_NE(std::find(peers.begin(), peers.end(), NodeId(7)), peers.end());

  nodes[0].manager->forget_peer(NodeId(7));
  const auto after = nodes[0].manager->all_slice_peers();
  EXPECT_EQ(std::find(after.begin(), after.end(), NodeId(7)), after.end());
}

TEST(SliceManagerTest, SliceChangeListenerResetsView) {
  SimBundle bundle(0x67);
  auto nodes = make_managed(bundle, 10, 2);
  int changes = 0;
  nodes[0].manager->set_slice_change_listener(
      [&](SliceId, SliceId) { ++changes; });
  nodes[0].manager->observe_peer(NodeId(3),
                                 nodes[0].manager->slice());
  ASSERT_EQ(nodes[0].manager->all_slice_peers().size(), 1u);

  // Force a slice change through a config bump (k: 2 -> 16 moves nearly
  // every announced slice once hysteresis clears).
  nodes[0].manager->slicer().set_slice_hysteresis(1);
  nodes[0].manager->adopt_config({16, 9});
  if (changes > 0) {
    EXPECT_TRUE(nodes[0].manager->all_slice_peers().empty());
  }
}

}  // namespace
}  // namespace dataflasks::core
