// Failure-injection tests: the whole stack under sustained message loss.
// Epidemic protocols' core selling point is redundancy; these tests pin
// down that puts/gets, slicing and replication all survive a lossy network
// (10-20% drop rates) with only latency/retry degradation.
#include <gtest/gtest.h>

#include "harness/cluster.hpp"

namespace dataflasks {
namespace {

harness::ClusterOptions lossy(double loss, std::uint64_t seed) {
  harness::ClusterOptions opts;
  opts.node_count = 80;
  opts.seed = seed;
  opts.loss_probability = loss;
  opts.node.slice_config = {4, 1};
  return opts;
}

class LossyNetworkTest : public ::testing::TestWithParam<double> {};

TEST_P(LossyNetworkTest, SlicingStillConverges) {
  harness::Cluster cluster(lossy(GetParam(), 41));
  cluster.start_all();
  cluster.run_for(120 * kSeconds);

  const auto histogram = cluster.slice_histogram();
  ASSERT_EQ(histogram.size(), 4u);
  for (const auto& [slice, count] : histogram) {
    EXPECT_NEAR(count, 20, 14) << "slice " << slice;
  }
}

TEST_P(LossyNetworkTest, WritesAndReadsSucceedWithRetries) {
  harness::Cluster cluster(lossy(GetParam(), 42));
  cluster.start_all();
  cluster.run_for(120 * kSeconds);

  client::ClientOptions copts;
  copts.max_attempts = 6;  // loss eats some attempts
  auto& client = cluster.add_client(copts);

  int put_ok = 0;
  for (int i = 0; i < 15; ++i) {
    client.put("lossy" + std::to_string(i), Bytes{1}, 1,
               [&](const client::PutResult& r) { put_ok += r.ok ? 1 : 0; });
    cluster.run_for(5 * kSeconds);
  }
  cluster.run_for(30 * kSeconds);
  EXPECT_GE(put_ok, 14);

  int get_ok = 0;
  for (int i = 0; i < 15; ++i) {
    client.get("lossy" + std::to_string(i), std::nullopt,
               [&](const client::GetResult& r) { get_ok += r.ok ? 1 : 0; });
    cluster.run_for(5 * kSeconds);
  }
  cluster.run_for(30 * kSeconds);
  EXPECT_GE(get_ok, 14);
}

TEST_P(LossyNetworkTest, AntiEntropyStillConvergesReplication) {
  harness::Cluster cluster(lossy(GetParam(), 43));
  cluster.start_all();
  cluster.run_for(120 * kSeconds);

  auto& client = cluster.add_client();
  client.put("replicate_me", Bytes{9}, 1, nullptr);
  cluster.run_for(120 * kSeconds);  // anti-entropy through a lossy network

  EXPECT_GE(cluster.slice_coverage("replicate_me", 1), 0.7);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossyNetworkTest,
                         ::testing::Values(0.10, 0.20),
                         [](const auto& info) {
                           return "loss" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

}  // namespace
}  // namespace dataflasks
