// Core component tests: protocol message codecs, the intra-slice view and
// directory, anti-entropy repair and slice state transfer, each exercised
// in a minimal harness independent of the full node.
#include <gtest/gtest.h>

#include <memory>

#include "core/anti_entropy.hpp"
#include "core/intra_slice_view.hpp"
#include "core/messages.hpp"
#include "core/state_transfer.hpp"
#include "slicing/slice_map.hpp"
#include "store/memstore.hpp"
#include "test_util.hpp"

namespace dataflasks::core {
namespace {

using testing::SimBundle;

Bytes value_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ---- message codecs ---------------------------------------------------------

TEST(Messages, OpEnvelopeRoundTrip) {
  OpEnvelope envelope;
  envelope.ops.push_back(RoutedOp{
      RequestId{1, 2}, Operation::put("key", 4, value_of("value"))});
  envelope.ops.push_back(RoutedOp{RequestId{1, 3}, Operation::get("k2")});
  envelope.ops.push_back(
      RoutedOp{RequestId{1, 4}, Operation::get("k3", Version{42})});
  envelope.ops.push_back(RoutedOp{RequestId{1, 5}, Operation::del("k4", 9)});

  const auto decoded = decode_op_envelope(encode(envelope));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->protocol, kOpProtocolVersion);
  ASSERT_EQ(decoded->ops.size(), 4u);
  EXPECT_EQ(decoded->ops[0].rid, (RequestId{1, 2}));
  EXPECT_EQ(decoded->ops[0].op.type, OpType::kPut);
  EXPECT_EQ(decoded->ops[0].op.key, "key");
  EXPECT_EQ(decoded->ops[0].op.version, Version{4});
  EXPECT_EQ(decoded->ops[0].op.value, value_of("value"));
  EXPECT_EQ(decoded->ops[1].op.type, OpType::kGet);
  EXPECT_FALSE(decoded->ops[1].op.version.has_value());
  EXPECT_EQ(decoded->ops[2].op.version, Version{42});
  EXPECT_EQ(decoded->ops[3].op.type, OpType::kDelete);
  EXPECT_EQ(decoded->ops[3].op.version, Version{9});
}

TEST(Messages, OpEnvelopeRejectsWrongProtocolVersion) {
  OpEnvelope envelope;
  envelope.protocol = kOpProtocolVersion + 1;
  envelope.ops.push_back(RoutedOp{RequestId{1, 1}, Operation::get("k")});
  EXPECT_FALSE(decode_op_envelope(encode(envelope)).has_value());
}

TEST(Messages, OpsRequestRoundTripAndKindMismatch) {
  OpsRequest ops;
  ops.ops.push_back(RoutedOp{RequestId{7, 1},
                             Operation::put("a", 2, value_of("v"))});
  const Payload encoded = encode_inner(ops);
  EXPECT_EQ(peek_inner_kind(encoded), InnerKind::kOps);
  const auto decoded = decode_ops(encoded);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->ops.size(), 1u);
  EXPECT_EQ(decoded->ops[0].op.key, "a");

  const Payload handoff =
      encode_inner(HandoffRequest{store::Object{"k", 1, value_of("v")}});
  EXPECT_EQ(peek_inner_kind(handoff), InnerKind::kHandoff);
  EXPECT_FALSE(decode_ops(handoff).has_value());
  EXPECT_FALSE(decode_handoff(encoded).has_value());
  EXPECT_FALSE(peek_inner_kind(Bytes{}).has_value());
  EXPECT_FALSE(peek_inner_kind(Bytes{0x99}).has_value());
}

TEST(Messages, OpReplyBatchRoundTrip) {
  OpReplyBatch batch;
  batch.replica = NodeId(2);
  batch.slice = 3;
  batch.replies.push_back(OpReply{RequestId{1, 1}, OpType::kPut,
                                  OpStatus::kOk, store::Object{"k", 4, {}}});
  batch.replies.push_back(
      OpReply{RequestId{1, 2}, OpType::kGet, OpStatus::kOk,
              store::Object{"k", 9, value_of("v")}});
  batch.replies.push_back(OpReply{RequestId{1, 3}, OpType::kGet,
                                  OpStatus::kDeleted,
                                  store::Object{"gone", 11, {}}});

  const auto decoded = decode_op_reply_batch(encode(batch));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->replica, NodeId(2));
  EXPECT_EQ(decoded->slice, 3u);
  ASSERT_EQ(decoded->replies.size(), 3u);
  EXPECT_EQ(decoded->replies[0].status, OpStatus::kOk);
  EXPECT_EQ(decoded->replies[0].object.version, 4u);
  EXPECT_EQ(decoded->replies[1].object.value, value_of("v"));
  EXPECT_EQ(decoded->replies[2].status, OpStatus::kDeleted);
}

TEST(Messages, ReplicatePushCarriesBatchesAndTombstones) {
  ReplicatePush push;
  push.objects.push_back(store::Object{"k", 1, value_of("v")});
  push.objects.push_back(store::Object::make_tombstone("gone", 5, 1234));
  auto decoded_push = decode_replicate_push(encode(push));
  ASSERT_TRUE(decoded_push.has_value());
  ASSERT_EQ(decoded_push->objects.size(), 2u);
  EXPECT_EQ(decoded_push->objects[0], push.objects[0]);
  EXPECT_TRUE(decoded_push->objects[1].tombstone);
  EXPECT_EQ(decoded_push->objects[1].deleted_at, 1234);
}

TEST(Messages, AdvertAndAeRoundTrip) {
  const SliceAdvert advert{NodeId(1), 5, {10, 3}, std::nullopt};
  auto decoded = decode_slice_advert(encode(advert));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->slice, 5u);
  EXPECT_EQ(decoded->config.slice_count, 10u);
  EXPECT_FALSE(decoded->endpoint.has_value());

  const SliceAdvert with_endpoint{NodeId(2), 1, {4, 9},
                                  Endpoint{0x7F000001, 7100, 42}};
  auto decoded_ep = decode_slice_advert(encode(with_endpoint));
  ASSERT_TRUE(decoded_ep.has_value());
  ASSERT_TRUE(decoded_ep->endpoint.has_value());
  EXPECT_EQ(decoded_ep->endpoint->ip, 0x7F000001u);
  EXPECT_EQ(decoded_ep->endpoint->port, 7100u);
  EXPECT_EQ(decoded_ep->endpoint->stamp, 42u);

  const AeDigest digest{true, {{"a", 1}, {"b", 2}}};
  auto decoded_digest = decode_ae_digest(encode(digest));
  ASSERT_TRUE(decoded_digest.has_value());
  EXPECT_TRUE(decoded_digest->is_reply);
  EXPECT_EQ(decoded_digest->entries.size(), 2u);

  const AePush push{{store::Object{"k", 1, value_of("v")}}};
  auto decoded_push = decode_ae_push(encode(push));
  ASSERT_TRUE(decoded_push.has_value());
  ASSERT_EQ(decoded_push->objects.size(), 1u);
}

TEST(Messages, StateTransferRoundTrip) {
  const StRequest request{7, {"cursor_key", 3}};
  auto decoded_req = decode_st_request(encode(request));
  ASSERT_TRUE(decoded_req.has_value());
  EXPECT_EQ(decoded_req->slice, 7u);
  EXPECT_EQ(decoded_req->cursor.key, "cursor_key");

  const StReply reply{7, true, false, {store::Object{"k", 1, value_of("v")}}};
  auto decoded_reply = decode_st_reply(encode(reply));
  ASSERT_TRUE(decoded_reply.has_value());
  EXPECT_TRUE(decoded_reply->done);
  EXPECT_FALSE(decoded_reply->continues);

  const StReply burst_page{7, false, true, {}};
  auto decoded_page = decode_st_reply(encode(burst_page));
  ASSERT_TRUE(decoded_page.has_value());
  EXPECT_FALSE(decoded_page->done);
  EXPECT_TRUE(decoded_page->continues);
}

TEST(Messages, MalformedPayloadsReturnNullopt) {
  const Bytes junk{0x01, 0x02, 0x03};
  EXPECT_FALSE(decode_op_envelope(junk).has_value());
  EXPECT_FALSE(decode_ops(junk).has_value());
  EXPECT_FALSE(decode_op_reply_batch(junk).has_value());
  EXPECT_FALSE(decode_slice_advert(junk).has_value());
  EXPECT_FALSE(decode_ae_digest(junk).has_value());
  EXPECT_FALSE(decode_st_reply(junk).has_value());
}

TEST(Messages, CategoryAssignment) {
  EXPECT_EQ(net::category_of(kOpEnvelope), net::MsgCategory::kRequest);
  EXPECT_EQ(net::category_of(kOpReplyBatch), net::MsgCategory::kRequest);
  EXPECT_EQ(net::category_of(kReplicatePush), net::MsgCategory::kRequest);
  EXPECT_EQ(net::category_of(kSliceAdvert), net::MsgCategory::kSlicing);
  EXPECT_EQ(net::category_of(kAeDigest), net::MsgCategory::kAntiEntropy);
  EXPECT_EQ(net::category_of(kStRequest), net::MsgCategory::kAntiEntropy);
}

// ---- IntraSliceView ------------------------------------------------------------

TEST(IntraSliceViewTest, TracksSameSliceMembersOnly) {
  IntraSliceView view(NodeId(0), {}, Rng(1));
  view.observe(NodeId(1), 5, /*my_slice=*/5);
  view.observe(NodeId(2), 6, /*my_slice=*/5);
  EXPECT_EQ(view.size(), 1u);
  const auto peers = view.all_peers();
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers.front(), NodeId(1));
}

TEST(IntraSliceViewTest, DirectoryRemembersOtherSlices) {
  IntraSliceView view(NodeId(0), {}, Rng(1));
  view.observe(NodeId(2), 6, 5);
  view.observe(NodeId(3), 7, 5);
  EXPECT_EQ(view.directory_lookup(6), NodeId(2));
  EXPECT_EQ(view.directory_lookup(7), NodeId(3));
  EXPECT_FALSE(view.directory_lookup(9).has_value());
}

TEST(IntraSliceViewTest, NodeMovingSlicesMigratesStructures) {
  IntraSliceView view(NodeId(0), {}, Rng(1));
  view.observe(NodeId(1), 5, 5);  // slice-mate
  EXPECT_EQ(view.size(), 1u);
  view.observe(NodeId(1), 6, 5);  // moved away
  EXPECT_EQ(view.size(), 0u);
  EXPECT_EQ(view.directory_lookup(6), NodeId(1));
  view.observe(NodeId(1), 5, 5);  // came back
  EXPECT_EQ(view.size(), 1u);
  EXPECT_FALSE(view.directory_lookup(6).has_value());
}

TEST(IntraSliceViewTest, EntriesExpireAfterMaxAge) {
  IntraSliceViewOptions opts;
  opts.max_entry_age = 2;
  IntraSliceView view(NodeId(0), opts, Rng(1));
  view.observe(NodeId(1), 5, 5);
  view.tick();
  view.tick();
  EXPECT_EQ(view.size(), 1u);
  view.tick();  // age 3 > 2: expired
  EXPECT_EQ(view.size(), 0u);
}

TEST(IntraSliceViewTest, RefreshResetsAge) {
  IntraSliceViewOptions opts;
  opts.max_entry_age = 2;
  IntraSliceView view(NodeId(0), opts, Rng(1));
  view.observe(NodeId(1), 5, 5);
  view.tick();
  view.tick();
  view.observe(NodeId(1), 5, 5);  // refresh
  view.tick();
  view.tick();
  EXPECT_EQ(view.size(), 1u);
}

TEST(IntraSliceViewTest, CapacityBoundEvictsOldest) {
  IntraSliceViewOptions opts;
  opts.capacity = 3;
  IntraSliceView view(NodeId(0), opts, Rng(1));
  view.observe(NodeId(1), 5, 5);
  view.tick();  // node 1 now oldest
  view.observe(NodeId(2), 5, 5);
  view.observe(NodeId(3), 5, 5);
  view.observe(NodeId(4), 5, 5);  // evicts node 1
  EXPECT_EQ(view.size(), 3u);
  const auto peers = view.all_peers();
  EXPECT_EQ(std::count(peers.begin(), peers.end(), NodeId(1)), 0);
}

TEST(IntraSliceViewTest, ResetClearsMembersKeepsDirectory) {
  IntraSliceView view(NodeId(0), {}, Rng(1));
  view.observe(NodeId(1), 5, 5);
  view.observe(NodeId(2), 6, 5);
  view.reset_slice_entries();
  EXPECT_EQ(view.size(), 0u);
  EXPECT_TRUE(view.directory_lookup(6).has_value());
}

TEST(IntraSliceViewTest, NeverContainsSelf) {
  IntraSliceView view(NodeId(0), {}, Rng(1));
  view.observe(NodeId(0), 5, 5);
  EXPECT_EQ(view.size(), 0u);
}

TEST(IntraSliceViewTest, PeersSamplesDistinct) {
  IntraSliceView view(NodeId(0), {}, Rng(1));
  for (int i = 1; i <= 10; ++i) view.observe(NodeId(i), 5, 5);
  const auto sample = view.peers(5);
  ASSERT_EQ(sample.size(), 5u);
  std::set<std::uint64_t> unique;
  for (const NodeId p : sample) unique.insert(p.value);
  EXPECT_EQ(unique.size(), 5u);
}

// ---- AntiEntropy ------------------------------------------------------------------

/// Two stores joined by anti-entropy over the simulated transport.
struct AePair {
  explicit AePair(SimBundle& bundle, SliceId slice = 0,
                  std::uint32_t slice_count = 1, AntiEntropyOptions opts = {})
      : slice_count_(slice_count) {
    auto key_slice = [slice_count](const Key& key) {
      return slicing::key_to_slice(key, slice_count);
    };
    a = std::make_unique<AntiEntropy>(
        NodeId(0), *bundle.transport, store_a, Rng(1), opts,
        [slice]() { return slice; }, key_slice,
        [](std::size_t) { return std::vector<NodeId>{NodeId(1)}; },
        metrics_a);
    b = std::make_unique<AntiEntropy>(
        NodeId(1), *bundle.transport, store_b, Rng(2), opts,
        [slice]() { return slice; }, key_slice,
        [](std::size_t) { return std::vector<NodeId>{NodeId(0)}; },
        metrics_b);
    bundle.transport->register_handler(
        NodeId(0), [this](const net::Message& msg) { a->handle(msg); });
    bundle.transport->register_handler(
        NodeId(1), [this](const net::Message& msg) { b->handle(msg); });
  }

  std::uint32_t slice_count_;
  store::MemStore store_a, store_b;
  MetricsRegistry metrics_a, metrics_b;
  std::unique_ptr<AntiEntropy> a, b;
};

TEST(AntiEntropyTest, RepairsMissingObjectsBothWays) {
  SimBundle bundle(61);
  AePair pair(bundle);
  ASSERT_TRUE(pair.store_a.put({"only_a", 1, value_of("va")}).ok());
  ASSERT_TRUE(pair.store_b.put({"only_b", 1, value_of("vb")}).ok());

  pair.a->tick();
  bundle.run_for(5 * kSeconds);

  EXPECT_TRUE(pair.store_a.contains("only_b", 1));
  EXPECT_TRUE(pair.store_b.contains("only_a", 1));
  EXPECT_EQ(pair.store_b.get("only_a", 1).value().value, value_of("va"));
}

TEST(AntiEntropyTest, RepairsMissingVersionsOfSameKey) {
  SimBundle bundle(62);
  AePair pair(bundle);
  ASSERT_TRUE(pair.store_a.put({"k", 1, value_of("v1")}).ok());
  ASSERT_TRUE(pair.store_a.put({"k", 2, value_of("v2")}).ok());
  ASSERT_TRUE(pair.store_b.put({"k", 1, value_of("v1")}).ok());

  pair.b->tick();
  bundle.run_for(5 * kSeconds);
  EXPECT_TRUE(pair.store_b.contains("k", 2));
}

TEST(AntiEntropyTest, IgnoresObjectsOutsideOwnSlice) {
  SimBundle bundle(63);
  // Both nodes in slice 0 of a 4-slice config: only slice-0 keys replicate.
  AePair pair(bundle, 0, 4);
  Key in_slice, out_slice;
  for (int i = 0; i < 100 && (in_slice.empty() || out_slice.empty()); ++i) {
    const Key key = "key" + std::to_string(i);
    if (slicing::key_to_slice(key, 4) == 0) {
      if (in_slice.empty()) in_slice = key;
    } else if (out_slice.empty()) {
      out_slice = key;
    }
  }
  ASSERT_TRUE(pair.store_a.put({in_slice, 1, value_of("in")}).ok());
  ASSERT_TRUE(pair.store_a.put({out_slice, 1, value_of("out")}).ok());

  pair.a->tick();
  pair.b->tick();
  bundle.run_for(5 * kSeconds);

  EXPECT_TRUE(pair.store_b.contains(in_slice, 1));
  EXPECT_FALSE(pair.store_b.contains(out_slice, 1));
}

TEST(AntiEntropyTest, ConvergesIdenticalStores) {
  SimBundle bundle(64);
  AntiEntropyOptions opts;
  opts.digest_cap = 16;  // force multi-round convergence
  opts.push_cap = 8;
  AePair pair(bundle, 0, 1, opts);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(pair.store_a
                    .put({"a" + std::to_string(i), 1, value_of("x")})
                    .ok());
    ASSERT_TRUE(pair.store_b
                    .put({"b" + std::to_string(i), 1, value_of("y")})
                    .ok());
  }
  for (int round = 0; round < 40; ++round) {
    pair.a->tick();
    pair.b->tick();
    bundle.run_for(2 * kSeconds);
  }
  EXPECT_EQ(pair.store_a.object_count(), 120u);
  EXPECT_EQ(pair.store_b.object_count(), 120u);
}

TEST(AntiEntropyTest, NoPartnersMeansNoTraffic) {
  SimBundle bundle(65);
  store::MemStore store;
  MetricsRegistry metrics;
  AntiEntropy ae(
      NodeId(0), *bundle.transport, store, Rng(1), {},
      []() { return SliceId{0}; },
      [](const Key&) { return SliceId{0}; },
      [](std::size_t) { return std::vector<NodeId>{}; }, metrics);
  ae.tick();
  EXPECT_EQ(bundle.transport->total_sent(), 0u);
}

// ---- StateTransfer -----------------------------------------------------------------

struct StPair {
  StPair(SimBundle& bundle, SliceId slice, std::uint32_t slice_count,
         StateTransferOptions opts = {}) {
    auto key_slice = [slice_count](const Key& key) {
      return slicing::key_to_slice(key, slice_count);
    };
    joiner = std::make_unique<StateTransfer>(
        NodeId(0), *bundle.transport, store_joiner, Rng(1), opts,
        [slice]() { return slice; }, key_slice,
        [](std::size_t) { return std::vector<NodeId>{NodeId(1)}; },
        metrics_joiner);
    donor = std::make_unique<StateTransfer>(
        NodeId(1), *bundle.transport, store_donor, Rng(2), opts,
        [slice]() { return slice; }, key_slice,
        [](std::size_t) { return std::vector<NodeId>{NodeId(0)}; },
        metrics_donor);
    bundle.transport->register_handler(
        NodeId(0), [this](const net::Message& msg) { joiner->handle(msg); });
    bundle.transport->register_handler(
        NodeId(1), [this](const net::Message& msg) { donor->handle(msg); });
  }

  store::MemStore store_joiner, store_donor;
  MetricsRegistry metrics_joiner, metrics_donor;
  std::unique_ptr<StateTransfer> joiner, donor;
};

TEST(StateTransferTest, PullsWholeSliceInPages) {
  SimBundle bundle(71);
  StateTransferOptions opts;
  opts.page_size = 10;
  StPair pair(bundle, 0, 1, opts);
  for (int i = 0; i < 45; ++i) {
    ASSERT_TRUE(
        pair.store_donor.put({"k" + std::to_string(i), 1, value_of("v")}).ok());
  }

  bool completed = false;
  pair.joiner->set_completion_listener([&](SliceId) { completed = true; });
  pair.joiner->begin();
  bundle.run_for(10 * kSeconds);

  EXPECT_TRUE(completed);
  EXPECT_FALSE(pair.joiner->active());
  EXPECT_EQ(pair.store_joiner.object_count(), 45u);
  // Paging actually happened: ceil(45/10) + final short page request(s).
  EXPECT_GE(pair.metrics_donor.counter_value("st.pages_served"), 5u);
}

TEST(StateTransferTest, FiltersForeignSliceObjects) {
  SimBundle bundle(72);
  // Joiner in slice 0 of 4; donor holds a mix (e.g. it recently moved).
  StPair pair(bundle, 0, 4);
  int mine = 0;
  for (int i = 0; i < 40; ++i) {
    const Key key = "k" + std::to_string(i);
    ASSERT_TRUE(pair.store_donor.put({key, 1, value_of("v")}).ok());
    if (slicing::key_to_slice(key, 4) == 0) ++mine;
  }
  ASSERT_GT(mine, 0);

  pair.joiner->begin();
  bundle.run_for(10 * kSeconds);
  EXPECT_EQ(pair.store_joiner.object_count(),
            static_cast<std::size_t>(mine));
}

TEST(StateTransferTest, CompletionDropsForeignKeysFromJoiner) {
  SimBundle bundle(73);
  StPair pair(bundle, 0, 4);
  // The joiner still holds leftovers from its previous slice.
  Key foreign;
  for (int i = 0; i < 100 && foreign.empty(); ++i) {
    const Key key = "old" + std::to_string(i);
    if (slicing::key_to_slice(key, 4) != 0) foreign = key;
  }
  ASSERT_TRUE(pair.store_joiner.put({foreign, 1, value_of("stale")}).ok());

  pair.joiner->begin();
  bundle.run_for(10 * kSeconds);
  EXPECT_FALSE(pair.store_joiner.contains(foreign, 1));
}

TEST(StateTransferTest, LargeValuePagesAreChunkedUnderDatagramBudget) {
  SimBundle bundle(75);
  StateTransferOptions opts;
  opts.page_size = 64;
  StPair pair(bundle, 0, 1, opts);

  // One logical page of multi-kB values: 12 x 10 kB = ~120 kB, far over
  // the 48 kB per-datagram budget (and over the ~60 kB frame cap that
  // would silently drop the reply on real UDP, stalling the join forever).
  // The donor must byte-bound each reply and page through the rest.
  const Bytes big(10 * 1024, 0xAB);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(pair.store_donor.put({"big" + std::to_string(i), 1, big}).ok());
  }

  // Observe every StReply payload as it crosses the (simulated) wire.
  std::size_t replies = 0;
  std::size_t max_payload = 0;
  StateTransfer* joiner = pair.joiner.get();
  bundle.transport->register_handler(
      NodeId(0), [&, joiner](const net::Message& msg) {
        if (msg.type == kStReply) {
          ++replies;
          max_payload = std::max(max_payload, msg.payload.size());
        }
        joiner->handle(msg);
      });

  bool completed = false;
  pair.joiner->set_completion_listener([&](SliceId) { completed = true; });
  pair.joiner->begin();
  bundle.run_for(20 * kSeconds);

  EXPECT_TRUE(completed);
  EXPECT_EQ(pair.store_joiner.object_count(), 12u);
  EXPECT_GE(replies, 3u) << "the oversized page must split across replies";
  // Budget plus per-message framing slack: every datagram must fit a frame.
  EXPECT_LE(max_payload, kBatchBytesBudget + 1024);
  EXPECT_GE(pair.metrics_donor.counter_value("st.pages_served"), 3u);
}

TEST(StateTransferTest, DivergentSliceMapsCannotLivelockTheTransfer) {
  SimBundle bundle(76);
  StateTransferOptions opts;
  opts.page_size = 4;

  // The donor's slice map claims every key belongs to slice 0, so it keeps
  // serving keys the joiner (slicing by hash into 4) considers foreign.
  // Before the cursor fix the joiner re-requested the same all-foreign page
  // forever; now the cursor advances over every served object.
  store::MemStore store_joiner, store_donor;
  MetricsRegistry metrics_joiner, metrics_donor;
  const auto joiner_slice = [](const Key& key) {
    return slicing::key_to_slice(key, 4);
  };
  const auto donor_slice = [](const Key&) { return SliceId{0}; };

  StateTransfer joiner(
      NodeId(0), *bundle.transport, store_joiner, Rng(1), opts,
      []() { return SliceId{0}; }, joiner_slice,
      [](std::size_t) { return std::vector<NodeId>{NodeId(1)}; },
      metrics_joiner);
  StateTransfer donor(
      NodeId(1), *bundle.transport, store_donor, Rng(2), opts,
      []() { return SliceId{0}; }, donor_slice,
      [](std::size_t) { return std::vector<NodeId>{NodeId(0)}; },
      metrics_donor);
  bundle.transport->register_handler(
      NodeId(0), [&joiner](const net::Message& msg) { joiner.handle(msg); });
  bundle.transport->register_handler(
      NodeId(1), [&donor](const net::Message& msg) { donor.handle(msg); });

  // Keys named a* sort before z*, so the first pages are entirely foreign
  // to the joiner; its own keys come last.
  std::size_t foreign = 0, mine = 0;
  for (int i = 0; foreign < 8 && i < 1000; ++i) {
    const Key key = "a" + std::to_string(i);
    if (slicing::key_to_slice(key, 4) != 0) {
      ASSERT_TRUE(store_donor.put({key, 1, value_of("v")}).ok());
      ++foreign;
    }
  }
  for (int i = 0; mine < 3 && i < 1000; ++i) {
    const Key key = "z" + std::to_string(i);
    if (slicing::key_to_slice(key, 4) == 0) {
      ASSERT_TRUE(store_donor.put({key, 1, value_of("v")}).ok());
      ++mine;
    }
  }
  ASSERT_EQ(foreign, 8u);
  ASSERT_EQ(mine, 3u);

  bool completed = false;
  joiner.set_completion_listener([&](SliceId) { completed = true; });
  joiner.begin();
  for (int i = 0; i < 10 && !completed; ++i) {
    joiner.tick();
    bundle.run_for(kSeconds);
  }

  EXPECT_TRUE(completed) << "transfer livelocked on foreign-only pages";
  EXPECT_FALSE(joiner.active());
  EXPECT_EQ(store_joiner.object_count(), 3u);  // only its own keys stored
}

TEST(StateTransferTest, RetriesAfterStall) {
  SimBundle bundle(74);
  StateTransferOptions opts;
  opts.stall_ticks = 2;
  StPair pair(bundle, 0, 1, opts);
  ASSERT_TRUE(pair.store_donor.put({"k", 1, value_of("v")}).ok());

  // Drop everything initially: the first request is lost.
  bundle.model.set_node_up(NodeId(1), false);
  pair.joiner->begin();
  bundle.run_for(3 * kSeconds);
  EXPECT_TRUE(pair.joiner->active());

  // Donor comes back; stall detection must re-request.
  bundle.model.set_node_up(NodeId(1), true);
  for (int i = 0; i < 6; ++i) {
    pair.joiner->tick();
    bundle.run_for(kSeconds);
  }
  EXPECT_FALSE(pair.joiner->active());
  EXPECT_TRUE(pair.store_joiner.contains("k", 1));
}

}  // namespace
}  // namespace dataflasks::core
