// The acceptance test for the runtime split: three *unmodified* DataFlasks
// nodes run over the real clock on real 127.0.0.1 UDP sockets — zero
// simulator involvement — serve a put, answer a quorum read, and replicate
// across the whole slice within a wall-clock deadline. A companion test
// pins the other half of the contract: the simulator path stays
// deterministic (same seed ⇒ same event count) after the refactor.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "client/load_balancer.hpp"
#include "core/node.hpp"
#include "harness/cluster.hpp"
#include "net/udp_transport.hpp"
#include "runtime/real_time_runtime.hpp"

namespace dataflasks {
namespace {

/// Gossip cadences compressed to tens of milliseconds so the epidemic
/// substrate converges in well under a second of wall time.
core::NodeOptions fast_real_options() {
  core::NodeOptions options;
  options.pss_period = 30 * kMillis;
  options.slicing_period = 30 * kMillis;
  options.advert_period = 30 * kMillis;
  options.ae_period = 100 * kMillis;
  options.st_tick_period = 60 * kMillis;
  options.handoff_period = 60 * kMillis;
  // One slice: every node replicates every key, so "all 3 stores hold the
  // object" is the full-replication condition.
  options.slice_config = {1, 1};
  return options;
}

struct RealNode {
  std::unique_ptr<net::UdpTransport> transport;
  std::unique_ptr<core::Node> node;
};

TEST(RealCluster, LoopbackPutQuorumGetAndFullReplication) {
  runtime::RealTimeRuntime rt(0xDF);

  // Boot 3 nodes on ephemeral loopback ports, fully meshed via the static
  // peer table (ports are only known after binding, so wire them up after
  // all sockets exist).
  constexpr std::size_t kNodes = 3;
  std::vector<RealNode> nodes(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes[i].transport = std::make_unique<net::UdpTransport>(
        rt, net::UdpTransport::Options{});
    nodes[i].node = std::make_unique<core::Node>(
        NodeId(i), /*capacity=*/1.0, rt, *nodes[i].transport,
        fast_real_options(), /*seed=*/1000 + i);
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    for (std::size_t j = 0; j < kNodes; ++j) {
      if (i == j) continue;
      nodes[i].transport->add_peer(NodeId(j), "127.0.0.1",
                                   nodes[j].transport->local_port());
    }
  }
  std::vector<NodeId> all_ids;
  for (std::size_t i = 0; i < kNodes; ++i) all_ids.emplace_back(i);
  for (std::size_t i = 0; i < kNodes; ++i) {
    std::vector<NodeId> seeds = all_ids;
    std::erase(seeds, NodeId(i));
    nodes[i].node->start(seeds);
  }

  // The client is a fourth process-equivalent: its own UDP socket, knowing
  // the servers statically; replies route back via learned addresses.
  net::UdpTransport client_transport(rt, {});
  for (std::size_t i = 0; i < kNodes; ++i) {
    client_transport.add_peer(NodeId(i), "127.0.0.1",
                              nodes[i].transport->local_port());
  }
  client::RandomLoadBalancer balancer(all_ids, Rng(7));
  client::ClientOptions client_options;
  client_options.request_timeout = 300 * kMillis;
  client_options.max_attempts = 4;
  client::Client client(NodeId(9000), client_transport, rt, balancer, Rng(8),
                        client_options);

  // Let PSS/slicing converge.
  rt.run_for(200 * kMillis);

  const Key key = "real-cluster-key";
  const std::string value = "served-over-real-udp";
  const Version version = 42;

  // ---- put ------------------------------------------------------------
  bool put_done = false;
  client::PutResult put_result;
  client.put(key, Payload(Bytes(value.begin(), value.end())), version,
             [&](const client::PutResult& result) {
               put_result = result;
               put_done = true;
               rt.stop();
             });
  rt.run_for(5 * kSeconds);
  ASSERT_TRUE(put_done) << "put did not complete within the deadline";
  ASSERT_TRUE(put_result.ok) << "put failed after " << put_result.attempts
                             << " attempts";

  // ---- quorum get -----------------------------------------------------
  // Epidemic reads naturally produce multiple replies; the client's
  // request-id dedup returns the first. Issuing the read after the ack
  // asserts at least one live replica serves it within the deadline.
  bool get_done = false;
  client::GetResult get_result;
  client.get(key, std::nullopt, [&](const client::GetResult& result) {
    get_result = result;
    get_done = true;
    rt.stop();
  });
  rt.run_for(5 * kSeconds);
  ASSERT_TRUE(get_done) << "get did not complete within the deadline";
  ASSERT_TRUE(get_result.ok);
  EXPECT_EQ(get_result.object.key, key);
  EXPECT_EQ(get_result.object.version, version);
  EXPECT_EQ(get_result.object.value, Bytes(value.begin(), value.end()));

  // ---- full replication within a deadline ------------------------------
  // Direct replication plus anti-entropy must land the object on every
  // slice member. 10s of wall headroom; typically converges in < 1s.
  const auto replicas = [&]() {
    std::size_t count = 0;
    for (const RealNode& n : nodes) {
      if (n.node->store().contains(key, version)) ++count;
    }
    return count;
  };
  const SimTime deadline = rt.now() + 10 * kSeconds;
  while (replicas() < kNodes && rt.now() < deadline) {
    rt.run_for(50 * kMillis);
  }
  EXPECT_EQ(replicas(), kNodes)
      << "replication did not converge within the deadline";

  for (RealNode& n : nodes) n.node->crash();
}

// The acceptance test for gossip-learned addresses: a 3-node real-UDP
// cluster where node 2 is killed and restarted on a DIFFERENT port, joining
// back through a single seed address (no node id, no static peer list).
// The survivors must relearn its address purely from PSS gossip — their
// old entries are pinned to the dead port, so only the restarted node's
// fresher-stamped self-descriptor can heal them — and a subsequent put
// must replicate onto the restarted node without any add_peer call.
TEST(RealCluster, HealsAddressesAfterRestartOnNewPort) {
  runtime::RealTimeRuntime rt(0xA11);

  constexpr std::size_t kNodes = 3;
  std::vector<RealNode> nodes(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes[i].transport = std::make_unique<net::UdpTransport>(
        rt, net::UdpTransport::Options{});
    nodes[i].node = std::make_unique<core::Node>(
        NodeId(i), /*capacity=*/1.0, rt, *nodes[i].transport,
        fast_real_options(), /*seed=*/2000 + i);
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    for (std::size_t j = 0; j < kNodes; ++j) {
      if (i == j) continue;
      nodes[i].transport->add_peer(NodeId(j), "127.0.0.1",
                                   nodes[j].transport->local_port());
    }
  }
  std::vector<NodeId> all_ids;
  for (std::size_t i = 0; i < kNodes; ++i) all_ids.emplace_back(i);
  for (std::size_t i = 0; i < kNodes; ++i) {
    std::vector<NodeId> seeds = all_ids;
    std::erase(seeds, NodeId(i));
    nodes[i].node->start(seeds);
  }
  const std::uint16_t seed_port = nodes[0].transport->local_port();
  rt.run_for(200 * kMillis);

  // ---- kill node 2; bring it back on a fresh ephemeral port -----------
  const std::uint16_t old_port = nodes[2].transport->local_port();
  nodes[2].node.reset();       // dtor crashes the node
  nodes[2].transport.reset();  // closes the socket, frees the port

  net::UdpTransport::Options rejoin;
  rejoin.seed_probe_period = 50 * kMillis;
  nodes[2].transport = std::make_unique<net::UdpTransport>(rt, rejoin);
  ASSERT_NE(nodes[2].transport->local_port(), old_port)
      << "restart must land on a different port for the test to mean "
         "anything";
  nodes[2].node = std::make_unique<core::Node>(
      NodeId(2), /*capacity=*/1.0, rt, *nodes[2].transport,
      fast_real_options(), /*seed=*/2902);
  // Single-seed join: only node 0's ADDRESS is configured. The node id
  // behind it comes from the discovery probe; node 1's address and the
  // survivors' route back to us are gossip-learned.
  core::Node& rejoined = *nodes[2].node;
  nodes[2].transport->set_seed_listener(
      [&rejoined](NodeId contact) { rejoined.add_contact(contact); });
  nodes[2].transport->add_seed("127.0.0.1", seed_port);
  nodes[2].node->start({});

  // ---- survivors must relearn node 2's address via gossip alone --------
  const std::uint16_t new_port = nodes[2].transport->local_port();
  const auto survivors_healed = [&]() {
    return nodes[0].transport->peers().port_of(NodeId(2)) == new_port &&
           nodes[1].transport->peers().port_of(NodeId(2)) == new_port;
  };
  SimTime deadline = rt.now() + 10 * kSeconds;
  while (!survivors_healed() && rt.now() < deadline) {
    rt.run_for(50 * kMillis);
  }
  EXPECT_TRUE(survivors_healed())
      << "survivors kept routing node 2 to the dead port";
  // The old entries were pinned static config; only the fresher-stamped
  // gossip endpoint may have rerouted them.
  EXPECT_TRUE(nodes[0].transport->peers().pinned(NodeId(2)));
  EXPECT_GT(nodes[0].transport->peers().stamp_of(NodeId(2)), 0u);

  // ---- a fresh put must now converge onto the restarted node -----------
  net::UdpTransport client_transport(rt, {});
  for (std::size_t i = 0; i < 2; ++i) {
    client_transport.add_peer(NodeId(i), "127.0.0.1",
                              nodes[i].transport->local_port());
  }
  client::RandomLoadBalancer balancer({NodeId(0), NodeId(1)}, Rng(7));
  client::ClientOptions client_options;
  client_options.request_timeout = 300 * kMillis;
  client_options.max_attempts = 4;
  client::Client client(NodeId(9001), client_transport, rt, balancer, Rng(8),
                        client_options);

  const Key key = "healed-cluster-key";
  bool put_done = false;
  client::PutResult put_result;
  client.put(key, Payload(Bytes{1, 2, 3}), 7,
             [&](const client::PutResult& result) {
               put_result = result;
               put_done = true;
               rt.stop();
             });
  rt.run_for(5 * kSeconds);
  ASSERT_TRUE(put_done);
  ASSERT_TRUE(put_result.ok);

  deadline = rt.now() + 10 * kSeconds;
  while (!nodes[2].node->store().contains(key, 7) && rt.now() < deadline) {
    rt.run_for(50 * kMillis);
  }
  EXPECT_TRUE(nodes[2].node->store().contains(key, 7))
      << "replication never reached the restarted node's new address";

  for (RealNode& n : nodes) n.node->crash();
}

// Same protocol code, simulator runtime: bit-identical determinism must
// survive the Runtime indirection. Two clusters with one seed must execute
// the same event count and reach the same replica state; a third with a
// different seed almost surely diverges.
TEST(RealCluster, SimulatorPathStaysDeterministic) {
  // The traffic mix deliberately includes the whole operation API: single
  // put, a mixed batch envelope (puts + get), and a delete whose tombstone
  // replicates and is GC-eligible — same seed must still mean same events.
  const auto run_once = [](std::uint64_t seed) {
    harness::ClusterOptions options;
    options.node_count = 40;
    options.seed = seed;
    options.node.slice_config = {4, 1};
    options.node.tombstone_grace = 20 * kSeconds;
    options.node.tombstone_gc_period = 5 * kSeconds;
    harness::Cluster cluster(options);
    cluster.start_all();
    auto& client = cluster.add_client();
    client.put("det-key", Bytes{1, 2, 3}, 5, nullptr);
    client.execute({core::Operation::put("det-batch-a", 1, Bytes{1}),
                    core::Operation::put("det-batch-b", 1, Bytes{2}),
                    core::Operation::get("det-key")},
                   nullptr);
    client.del("det-batch-a", 9, nullptr);
    const std::uint64_t events =
        cluster.simulator().run_until(60 * kSeconds);
    return std::pair<std::uint64_t, std::size_t>(
        events, cluster.replica_count("det-key", 5) +
                    cluster.replica_count("det-batch-b", 1));
  };

  const auto a = run_once(1234);
  const auto b = run_once(1234);
  EXPECT_EQ(a.first, b.first) << "same seed must execute same event count";
  EXPECT_EQ(a.second, b.second);

  const auto c = run_once(99);
  EXPECT_NE(a.first, c.first)
      << "different seeds executing identical event counts is (almost "
         "surely) a frozen RNG, not determinism";
}

}  // namespace
}  // namespace dataflasks
