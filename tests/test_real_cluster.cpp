// The acceptance test for the runtime split: three *unmodified* DataFlasks
// nodes run over the real clock on real 127.0.0.1 UDP sockets — zero
// simulator involvement — serve a put, answer a quorum read, and replicate
// across the whole slice within a wall-clock deadline. A companion test
// pins the other half of the contract: the simulator path stays
// deterministic (same seed ⇒ same event count) after the refactor.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "client/load_balancer.hpp"
#include "common/rng.hpp"
#include "core/messages.hpp"
#include "core/node.hpp"
#include "harness/cluster.hpp"
#include "net/stream/dual_transport.hpp"
#include "net/stream/stream_transport.hpp"
#include "net/udp_transport.hpp"
#include "runtime/real_time_runtime.hpp"

namespace dataflasks {
namespace {

/// Gossip cadences compressed to tens of milliseconds so the epidemic
/// substrate converges in well under a second of wall time.
core::NodeOptions fast_real_options() {
  core::NodeOptions options;
  options.pss_period = 30 * kMillis;
  options.slicing_period = 30 * kMillis;
  options.advert_period = 30 * kMillis;
  options.ae_period = 100 * kMillis;
  options.st_tick_period = 60 * kMillis;
  options.handoff_period = 60 * kMillis;
  // One slice: every node replicates every key, so "all 3 stores hold the
  // object" is the full-replication condition.
  options.slice_config = {1, 1};
  return options;
}

struct RealNode {
  std::unique_ptr<net::UdpTransport> transport;
  std::unique_ptr<core::Node> node;
};

TEST(RealCluster, LoopbackPutQuorumGetAndFullReplication) {
  runtime::RealTimeRuntime rt(0xDF);

  // Boot 3 nodes on ephemeral loopback ports, fully meshed via the static
  // peer table (ports are only known after binding, so wire them up after
  // all sockets exist).
  constexpr std::size_t kNodes = 3;
  std::vector<RealNode> nodes(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes[i].transport = std::make_unique<net::UdpTransport>(
        rt, net::UdpTransport::Options{});
    nodes[i].node = std::make_unique<core::Node>(
        NodeId(i), /*capacity=*/1.0, rt, *nodes[i].transport,
        fast_real_options(), /*seed=*/1000 + i);
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    for (std::size_t j = 0; j < kNodes; ++j) {
      if (i == j) continue;
      nodes[i].transport->add_peer(NodeId(j), "127.0.0.1",
                                   nodes[j].transport->local_port());
    }
  }
  std::vector<NodeId> all_ids;
  for (std::size_t i = 0; i < kNodes; ++i) all_ids.emplace_back(i);
  for (std::size_t i = 0; i < kNodes; ++i) {
    std::vector<NodeId> seeds = all_ids;
    std::erase(seeds, NodeId(i));
    nodes[i].node->start(seeds);
  }

  // The client is a fourth process-equivalent: its own UDP socket, knowing
  // the servers statically; replies route back via learned addresses.
  net::UdpTransport client_transport(rt, {});
  for (std::size_t i = 0; i < kNodes; ++i) {
    client_transport.add_peer(NodeId(i), "127.0.0.1",
                              nodes[i].transport->local_port());
  }
  client::RandomLoadBalancer balancer(all_ids, Rng(7));
  client::ClientOptions client_options;
  client_options.request_timeout = 300 * kMillis;
  client_options.max_attempts = 4;
  client::Client client(NodeId(9000), client_transport, rt, balancer, Rng(8),
                        client_options);

  // Let PSS/slicing converge.
  rt.run_for(200 * kMillis);

  const Key key = "real-cluster-key";
  const std::string value = "served-over-real-udp";
  const Version version = 42;

  // ---- put ------------------------------------------------------------
  bool put_done = false;
  client::PutResult put_result;
  client.put(key, Payload(Bytes(value.begin(), value.end())), version,
             [&](const client::PutResult& result) {
               put_result = result;
               put_done = true;
               rt.stop();
             });
  rt.run_for(5 * kSeconds);
  ASSERT_TRUE(put_done) << "put did not complete within the deadline";
  ASSERT_TRUE(put_result.ok) << "put failed after " << put_result.attempts
                             << " attempts";

  // ---- quorum get -----------------------------------------------------
  // Epidemic reads naturally produce multiple replies; the client's
  // request-id dedup returns the first. Issuing the read after the ack
  // asserts at least one live replica serves it within the deadline.
  bool get_done = false;
  client::GetResult get_result;
  client.get(key, std::nullopt, [&](const client::GetResult& result) {
    get_result = result;
    get_done = true;
    rt.stop();
  });
  rt.run_for(5 * kSeconds);
  ASSERT_TRUE(get_done) << "get did not complete within the deadline";
  ASSERT_TRUE(get_result.ok);
  EXPECT_EQ(get_result.object.key, key);
  EXPECT_EQ(get_result.object.version, version);
  EXPECT_EQ(get_result.object.value, Bytes(value.begin(), value.end()));

  // ---- full replication within a deadline ------------------------------
  // Direct replication plus anti-entropy must land the object on every
  // slice member. 10s of wall headroom; typically converges in < 1s.
  const auto replicas = [&]() {
    std::size_t count = 0;
    for (const RealNode& n : nodes) {
      if (n.node->store().contains(key, version)) ++count;
    }
    return count;
  };
  const SimTime deadline = rt.now() + 10 * kSeconds;
  while (replicas() < kNodes && rt.now() < deadline) {
    rt.run_for(50 * kMillis);
  }
  EXPECT_EQ(replicas(), kNodes)
      << "replication did not converge within the deadline";

  for (RealNode& n : nodes) n.node->crash();
}

// The acceptance test for gossip-learned addresses: a 3-node real-UDP
// cluster where node 2 is killed and restarted on a DIFFERENT port, joining
// back through a single seed address (no node id, no static peer list).
// The survivors must relearn its address purely from PSS gossip — their
// old entries are pinned to the dead port, so only the restarted node's
// fresher-stamped self-descriptor can heal them — and a subsequent put
// must replicate onto the restarted node without any add_peer call.
TEST(RealCluster, HealsAddressesAfterRestartOnNewPort) {
  runtime::RealTimeRuntime rt(0xA11);

  constexpr std::size_t kNodes = 3;
  std::vector<RealNode> nodes(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes[i].transport = std::make_unique<net::UdpTransport>(
        rt, net::UdpTransport::Options{});
    nodes[i].node = std::make_unique<core::Node>(
        NodeId(i), /*capacity=*/1.0, rt, *nodes[i].transport,
        fast_real_options(), /*seed=*/2000 + i);
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    for (std::size_t j = 0; j < kNodes; ++j) {
      if (i == j) continue;
      nodes[i].transport->add_peer(NodeId(j), "127.0.0.1",
                                   nodes[j].transport->local_port());
    }
  }
  std::vector<NodeId> all_ids;
  for (std::size_t i = 0; i < kNodes; ++i) all_ids.emplace_back(i);
  for (std::size_t i = 0; i < kNodes; ++i) {
    std::vector<NodeId> seeds = all_ids;
    std::erase(seeds, NodeId(i));
    nodes[i].node->start(seeds);
  }
  const std::uint16_t seed_port = nodes[0].transport->local_port();
  rt.run_for(200 * kMillis);

  // ---- kill node 2; bring it back on a fresh ephemeral port -----------
  const std::uint16_t old_port = nodes[2].transport->local_port();
  nodes[2].node.reset();       // dtor crashes the node
  nodes[2].transport.reset();  // closes the socket, frees the port

  net::UdpTransport::Options rejoin;
  rejoin.seed_probe_period = 50 * kMillis;
  nodes[2].transport = std::make_unique<net::UdpTransport>(rt, rejoin);
  ASSERT_NE(nodes[2].transport->local_port(), old_port)
      << "restart must land on a different port for the test to mean "
         "anything";
  nodes[2].node = std::make_unique<core::Node>(
      NodeId(2), /*capacity=*/1.0, rt, *nodes[2].transport,
      fast_real_options(), /*seed=*/2902);
  // Single-seed join: only node 0's ADDRESS is configured. The node id
  // behind it comes from the discovery probe; node 1's address and the
  // survivors' route back to us are gossip-learned.
  core::Node& rejoined = *nodes[2].node;
  nodes[2].transport->set_seed_listener(
      [&rejoined](NodeId contact) { rejoined.add_contact(contact); });
  nodes[2].transport->add_seed("127.0.0.1", seed_port);
  nodes[2].node->start({});

  // ---- survivors must relearn node 2's address via gossip alone --------
  const std::uint16_t new_port = nodes[2].transport->local_port();
  const auto survivors_healed = [&]() {
    return nodes[0].transport->peers().port_of(NodeId(2)) == new_port &&
           nodes[1].transport->peers().port_of(NodeId(2)) == new_port;
  };
  SimTime deadline = rt.now() + 10 * kSeconds;
  while (!survivors_healed() && rt.now() < deadline) {
    rt.run_for(50 * kMillis);
  }
  EXPECT_TRUE(survivors_healed())
      << "survivors kept routing node 2 to the dead port";
  // The old entries were pinned static config; only the fresher-stamped
  // gossip endpoint may have rerouted them.
  EXPECT_TRUE(nodes[0].transport->peers().pinned(NodeId(2)));
  EXPECT_GT(nodes[0].transport->peers().stamp_of(NodeId(2)), 0u);

  // ---- a fresh put must now converge onto the restarted node -----------
  net::UdpTransport client_transport(rt, {});
  for (std::size_t i = 0; i < 2; ++i) {
    client_transport.add_peer(NodeId(i), "127.0.0.1",
                              nodes[i].transport->local_port());
  }
  client::RandomLoadBalancer balancer({NodeId(0), NodeId(1)}, Rng(7));
  client::ClientOptions client_options;
  client_options.request_timeout = 300 * kMillis;
  client_options.max_attempts = 4;
  client::Client client(NodeId(9001), client_transport, rt, balancer, Rng(8),
                        client_options);

  const Key key = "healed-cluster-key";
  bool put_done = false;
  client::PutResult put_result;
  client.put(key, Payload(Bytes{1, 2, 3}), 7,
             [&](const client::PutResult& result) {
               put_result = result;
               put_done = true;
               rt.stop();
             });
  rt.run_for(5 * kSeconds);
  ASSERT_TRUE(put_done);
  ASSERT_TRUE(put_result.ok);

  deadline = rt.now() + 10 * kSeconds;
  while (!nodes[2].node->store().contains(key, 7) && rt.now() < deadline) {
    rt.run_for(50 * kMillis);
  }
  EXPECT_TRUE(nodes[2].node->store().contains(key, 7))
      << "replication never reached the restarted node's new address";

  for (RealNode& n : nodes) n.node->crash();
}

// A real-cluster node with the full stream wiring the server binary uses:
// a listening StreamTransport, a UdpTransport advertising its port, and a
// DualTransport routing state transfer (and anything oversized) onto
// streams. When `with_stream` is false the node is UDP-only — the dual
// layer degrades to a pass-through, exactly like a pre-stream build.
struct StreamNode {
  StreamNode(runtime::RealTimeRuntime& rt, NodeId id, bool with_stream,
             std::uint64_t seed) {
    if (with_stream) {
      net::StreamTransport::Options stream_options;
      stream_options.listen = true;
      stream_options.listen_ip = 0x7F000001;
      stream = std::make_unique<net::StreamTransport>(rt, stream_options);
    }
    net::UdpTransport::Options udp_options;
    udp_options.advertise_stream_port =
        stream != nullptr ? stream->listen_port() : 0;
    udp = std::make_unique<net::UdpTransport>(rt, udp_options);

    net::DualTransport::Options dual_options;
    dual_options.prefer_stream = [](std::uint16_t type) {
      return type == core::kStRequest || type == core::kStReply;
    };
    dual = std::make_unique<net::DualTransport>(rt, *udp, stream.get(),
                                                std::move(dual_options));
    node = std::make_unique<core::Node>(id, /*capacity=*/1.0, rt, *dual,
                                        fast_real_options(), seed);
  }

  // Declaration order doubles as teardown order in reverse: the node stops
  // first, then the dual detaches its listeners, then the sockets close.
  std::unique_ptr<net::StreamTransport> stream;
  std::unique_ptr<net::UdpTransport> udp;
  std::unique_ptr<net::DualTransport> dual;
  std::unique_ptr<core::Node> node;
};

// The acceptance test for the stream transport: a ≥1 MiB value — seventeen
// times the datagram budget — round-trips through a real 3-node cluster.
// The envelope reaches the serving node over the client's dialed TCP
// connection, the replica pushes ride node-to-node streams dialed from
// gossip-learned stream ports, and the oversized get reply comes back down
// the client's own connection.
TEST(RealCluster, MebibyteValueRoundTripsOverStreams) {
  runtime::RealTimeRuntime rt(0x57E);

  constexpr std::size_t kNodes = 3;
  std::vector<std::unique_ptr<StreamNode>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<StreamNode>(rt, NodeId(i),
                                                 /*with_stream=*/true,
                                                 /*seed=*/3000 + i));
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    for (std::size_t j = 0; j < kNodes; ++j) {
      if (i == j) continue;
      nodes[i]->udp->add_peer(NodeId(j), "127.0.0.1",
                              nodes[j]->udp->local_port());
    }
  }
  std::vector<NodeId> all_ids;
  for (std::size_t i = 0; i < kNodes; ++i) all_ids.emplace_back(i);
  for (std::size_t i = 0; i < kNodes; ++i) {
    std::vector<NodeId> seeds = all_ids;
    std::erase(seeds, NodeId(i));
    nodes[i]->node->start(seeds);
  }

  // The client mirrors dataflasks_cli: dual wiring with a dial-only stream
  // side, discovering each server's stream port via a directed probe.
  net::UdpTransport client_udp(rt, {});
  net::StreamTransport client_stream(rt, {});
  net::DualTransport::Options client_dual_options;
  client_dual_options.prefer_stream = [](std::uint16_t type) {
    return type == core::kOpEnvelope;
  };
  net::DualTransport client_transport(rt, client_udp, &client_stream,
                                      std::move(client_dual_options));
  for (std::size_t i = 0; i < kNodes; ++i) {
    client_udp.add_peer(NodeId(i), "127.0.0.1", nodes[i]->udp->local_port());
    client_udp.probe_peer(NodeId(i));
  }
  client::RandomLoadBalancer balancer(all_ids, Rng(7));
  client::ClientOptions client_options;
  client_options.request_timeout = 500 * kMillis;
  client_options.max_attempts = 4;
  client::Client client(NodeId(9002), client_transport, rt, balancer, Rng(8),
                        client_options);

  // Convergence covers PSS/slicing AND the probe replies that carry the
  // servers' stream ports back to the client.
  rt.run_for(300 * kMillis);
  for (std::size_t i = 0; i < kNodes; ++i) {
    ASSERT_NE(client_udp.peers().stream_port_of(NodeId(i)), 0)
        << "probe reply did not deliver node " << i << "'s stream port";
  }

  const Key key = "mebibyte-key";
  const Version version = 11;
  Bytes value(1024 * 1024 + 333);
  Rng fill(0xB16);
  for (auto& b : value) b = static_cast<std::uint8_t>(fill.next_below(256));

  bool put_done = false;
  client::PutResult put_result;
  client.put(key, Payload(value), version,
             [&](const client::PutResult& result) {
               put_result = result;
               put_done = true;
               rt.stop();
             });
  rt.run_for(10 * kSeconds);
  ASSERT_TRUE(put_done) << "oversized put did not complete";
  ASSERT_TRUE(put_result.ok) << "oversized put failed after "
                             << put_result.attempts << " attempts";

  // Full replication: every replica push of this object is itself
  // oversized, so convergence proves node-to-node streams work too.
  const auto replicas = [&]() {
    std::size_t count = 0;
    for (const auto& n : nodes) {
      if (n->node->store().contains(key, version)) ++count;
    }
    return count;
  };
  const SimTime deadline = rt.now() + 15 * kSeconds;
  while (replicas() < kNodes && rt.now() < deadline) {
    rt.run_for(50 * kMillis);
  }
  EXPECT_EQ(replicas(), kNodes)
      << "oversized replication did not converge within the deadline";

  bool get_done = false;
  client::GetResult get_result;
  client.get(key, std::nullopt, [&](const client::GetResult& result) {
    get_result = result;
    get_done = true;
    rt.stop();
  });
  rt.run_for(10 * kSeconds);
  ASSERT_TRUE(get_done) << "oversized get did not complete";
  ASSERT_TRUE(get_result.ok);
  EXPECT_EQ(get_result.object.version, version);
  ASSERT_EQ(get_result.object.value.size(), value.size());
  EXPECT_EQ(get_result.object.value, value);

  // The value cannot have traveled any other way: the client dropped
  // nothing (its only oversized sends go to dialed servers), and the get
  // reply really arrived on its stream. Server nodes are NOT asserted
  // drop-free: epidemic reads make every replica that saw the relayed get
  // answer, and a non-ingress replica has no path to a client it never
  // spoke to — the client dedups on the ingress replica's streamed reply.
  EXPECT_EQ(client_transport.dropped_no_stream(), 0u);
  EXPECT_GT(client_stream.counters().io.frames_in.load(), 0u)
      << "the get reply must have arrived on the client's stream";

  for (const auto& n : nodes) n->node->crash();
}

// Mixed fleet: one node runs without any stream transport, as a node from
// a pre-stream build would. Gossip still interoperates — the stream-less
// node emits legacy descriptors, the stream nodes' tag-2 descriptors decode
// cleanly — and small values replicate everywhere over plain UDP.
TEST(RealCluster, MixedFleetFallsBackToUdp) {
  runtime::RealTimeRuntime rt(0xFA11);

  constexpr std::size_t kNodes = 3;
  std::vector<std::unique_ptr<StreamNode>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    const bool with_stream = i != 2;  // node 2 is UDP-only
    nodes.push_back(std::make_unique<StreamNode>(rt, NodeId(i), with_stream,
                                                 /*seed=*/4000 + i));
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    for (std::size_t j = 0; j < kNodes; ++j) {
      if (i == j) continue;
      nodes[i]->udp->add_peer(NodeId(j), "127.0.0.1",
                              nodes[j]->udp->local_port());
    }
  }
  std::vector<NodeId> all_ids;
  for (std::size_t i = 0; i < kNodes; ++i) all_ids.emplace_back(i);
  for (std::size_t i = 0; i < kNodes; ++i) {
    std::vector<NodeId> seeds = all_ids;
    std::erase(seeds, NodeId(i));
    nodes[i]->node->start(seeds);
  }

  // A stream-less client, as any pre-stream build would be.
  net::UdpTransport client_transport(rt, {});
  for (std::size_t i = 0; i < kNodes; ++i) {
    client_transport.add_peer(NodeId(i), "127.0.0.1",
                              nodes[i]->udp->local_port());
  }
  client::RandomLoadBalancer balancer(all_ids, Rng(7));
  client::ClientOptions client_options;
  client_options.request_timeout = 300 * kMillis;
  client_options.max_attempts = 4;
  client::Client client(NodeId(9003), client_transport, rt, balancer, Rng(8),
                        client_options);

  rt.run_for(300 * kMillis);

  // The stream nodes must have learned each other's stream ports from
  // gossip — and learned that node 2 has none.
  EXPECT_EQ(nodes[0]->udp->peers().stream_port_of(NodeId(2)), 0)
      << "a UDP-only node must never gossip a stream port";

  const Key key = "mixed-fleet-key";
  bool put_done = false;
  client::PutResult put_result;
  client.put(key, Payload(Bytes{42, 43, 44}), 5,
             [&](const client::PutResult& result) {
               put_result = result;
               put_done = true;
               rt.stop();
             });
  rt.run_for(5 * kSeconds);
  ASSERT_TRUE(put_done);
  ASSERT_TRUE(put_result.ok);

  const auto replicas = [&]() {
    std::size_t count = 0;
    for (const auto& n : nodes) {
      if (n->node->store().contains(key, 5)) ++count;
    }
    return count;
  };
  const SimTime deadline = rt.now() + 10 * kSeconds;
  while (replicas() < kNodes && rt.now() < deadline) {
    rt.run_for(50 * kMillis);
  }
  EXPECT_EQ(replicas(), kNodes)
      << "small-value replication must reach the UDP-only node";

  bool get_done = false;
  client::GetResult get_result;
  client.get(key, std::nullopt, [&](const client::GetResult& result) {
    get_result = result;
    get_done = true;
    rt.stop();
  });
  rt.run_for(5 * kSeconds);
  ASSERT_TRUE(get_done);
  ASSERT_TRUE(get_result.ok);
  EXPECT_EQ(get_result.object.value, Bytes({42, 43, 44}));

  // Nothing in the small-value workload may have needed a stream.
  for (const auto& n : nodes) {
    EXPECT_EQ(n->dual->dropped_no_stream(), 0u);
  }

  for (const auto& n : nodes) n->node->crash();
}

// Same protocol code, simulator runtime: bit-identical determinism must
// survive the Runtime indirection. Two clusters with one seed must execute
// the same event count and reach the same replica state; a third with a
// different seed almost surely diverges.
TEST(RealCluster, SimulatorPathStaysDeterministic) {
  // The traffic mix deliberately includes the whole operation API: single
  // put, a mixed batch envelope (puts + get), and a delete whose tombstone
  // replicates and is GC-eligible — same seed must still mean same events.
  const auto run_once = [](std::uint64_t seed) {
    harness::ClusterOptions options;
    options.node_count = 40;
    options.seed = seed;
    options.node.slice_config = {4, 1};
    options.node.tombstone_grace = 20 * kSeconds;
    options.node.tombstone_gc_period = 5 * kSeconds;
    harness::Cluster cluster(options);
    cluster.start_all();
    auto& client = cluster.add_client();
    client.put("det-key", Bytes{1, 2, 3}, 5, nullptr);
    client.execute({core::Operation::put("det-batch-a", 1, Bytes{1}),
                    core::Operation::put("det-batch-b", 1, Bytes{2}),
                    core::Operation::get("det-key")},
                   nullptr);
    client.del("det-batch-a", 9, nullptr);
    const std::uint64_t events =
        cluster.simulator().run_until(60 * kSeconds);
    return std::pair<std::uint64_t, std::size_t>(
        events, cluster.replica_count("det-key", 5) +
                    cluster.replica_count("det-batch-b", 1));
  };

  const auto a = run_once(1234);
  const auto b = run_once(1234);
  EXPECT_EQ(a.first, b.first) << "same seed must execute same event count";
  EXPECT_EQ(a.second, b.second);

  const auto c = run_once(99);
  EXPECT_NE(a.first, c.first)
      << "different seeds executing identical event counts is (almost "
         "surely) a frozen RNG, not determinism";
}

}  // namespace
}  // namespace dataflasks
