// Unit tests for the discrete-event simulator, network model and churn
// planner.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/event_queue.hpp"
#include "sim/churn.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace dataflasks::sim {
namespace {

using runtime::EventQueue;

// ---- EventQueue ---------------------------------------------------------------

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&]() { order.push_back(3); });
  q.push(10, [&]() { order.push_back(1); });
  q.push(20, [&]() { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i]() { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeAndSize) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.push(42, []() {});
  q.push(7, []() {});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.next_time(), 7);
  (void)q.pop();
  EXPECT_EQ(q.next_time(), 42);
}

TEST(EventQueue, StressOrdering) {
  EventQueue q;
  Rng rng(9);
  std::vector<SimTime> times;
  for (int i = 0; i < 5000; ++i) {
    const auto t = static_cast<SimTime>(rng.next_below(100000));
    q.push(t, []() {});
    times.push_back(t);
  }
  SimTime prev = -1;
  while (!q.empty()) {
    const SimTime t = q.next_time();
    EXPECT_GE(t, prev);
    prev = t;
    (void)q.pop();
  }
}

// ---- Simulator -------------------------------------------------------------------

TEST(Simulator, AdvancesVirtualTime) {
  Simulator s(1);
  SimTime seen = -1;
  s.schedule_after(100, [&]() { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(s.now(), 100);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s(1);
  int fired = 0;
  s.schedule_at(50, [&]() { ++fired; });
  s.schedule_at(150, [&]() { ++fired; });
  s.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 100);  // clock advanced to the deadline
  s.run_until(200);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelledTimerDoesNotFire) {
  Simulator s(1);
  bool fired = false;
  auto handle = s.schedule_after(10, [&]() { fired = true; });
  handle.cancel();
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, PeriodicFiresUntilCancelled) {
  Simulator s(1);
  int count = 0;
  auto handle = s.schedule_periodic(0, 10, [&]() { ++count; });
  s.run_until(55);
  EXPECT_EQ(count, 6);  // t = 0,10,20,30,40,50
  handle.cancel();
  s.run_until(200);
  EXPECT_EQ(count, 6);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s(1);
  s.schedule_at(100, []() {});
  s.run();
  EXPECT_THROW(s.schedule_at(50, []() {}), InvariantViolation);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s(1);
  std::vector<SimTime> fire_times;
  s.schedule_after(10, [&]() {
    fire_times.push_back(s.now());
    s.schedule_after(10, [&]() { fire_times.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(fire_times, (std::vector<SimTime>{10, 20}));
}

TEST(Simulator, StopHaltsRun) {
  Simulator s(1);
  int fired = 0;
  s.schedule_at(1, [&]() {
    ++fired;
    s.stop();
  });
  s.schedule_at(2, [&]() { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.run();  // resumes with remaining events
  EXPECT_EQ(fired, 2);
}

// ---- LatencyModel / NetworkModel ------------------------------------------------

TEST(LatencyModel, ConstantAndRange) {
  Rng rng(3);
  auto constant = LatencyModel::constant(5 * kMillis);
  EXPECT_EQ(constant.sample(rng), 5 * kMillis);

  LatencyModel range{10, 20};
  for (int i = 0; i < 1000; ++i) {
    const SimTime v = range.sample(rng);
    EXPECT_GE(v, 10);
    EXPECT_LT(v, 20);
  }
}

TEST(NetworkModel, DropsToDownNodes) {
  Rng rng(1);
  NetworkModel m(LatencyModel::constant(1));
  EXPECT_TRUE(m.delivery_delay(NodeId(1), NodeId(2), rng).has_value());
  m.set_node_up(NodeId(2), false);
  EXPECT_FALSE(m.delivery_delay(NodeId(1), NodeId(2), rng).has_value());
  EXPECT_FALSE(m.delivery_delay(NodeId(2), NodeId(1), rng).has_value());
  m.set_node_up(NodeId(2), true);
  EXPECT_TRUE(m.delivery_delay(NodeId(1), NodeId(2), rng).has_value());
}

TEST(NetworkModel, LossProbability) {
  Rng rng(7);
  NetworkModel m(LatencyModel::constant(1), 0.5);
  int delivered = 0;
  for (int i = 0; i < 10000; ++i) {
    if (m.delivery_delay(NodeId(1), NodeId(2), rng)) ++delivered;
  }
  EXPECT_NEAR(delivered / 10000.0, 0.5, 0.03);
}

TEST(NetworkModel, PartitionsSplitTheNetwork) {
  Rng rng(1);
  NetworkModel m(LatencyModel::constant(1));
  m.set_partition_group(NodeId(1), 1);
  m.set_partition_group(NodeId(2), 2);
  // Different groups cannot talk; same group can.
  EXPECT_FALSE(m.delivery_delay(NodeId(1), NodeId(2), rng).has_value());
  m.set_partition_group(NodeId(2), 1);
  EXPECT_TRUE(m.delivery_delay(NodeId(1), NodeId(2), rng).has_value());
  // Partitioned nodes cannot reach the default group either.
  EXPECT_FALSE(m.delivery_delay(NodeId(1), NodeId(3), rng).has_value());
  m.clear_partitions();
  EXPECT_TRUE(m.delivery_delay(NodeId(1), NodeId(3), rng).has_value());
}

// ---- churn plans ------------------------------------------------------------------

TEST(Churn, PlanRespectsWindowAndOrdering) {
  Rng rng(5);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 50; ++i) nodes.emplace_back(i);

  ChurnPlanOptions opts;
  opts.start = 10 * kSeconds;
  opts.end = 100 * kSeconds;
  opts.events_per_second = 2.0;
  const auto plan = make_churn_plan(nodes, opts, rng);

  ASSERT_FALSE(plan.empty());
  SimTime prev = 0;
  for (const auto& event : plan) {
    EXPECT_GE(event.at, opts.start);
    EXPECT_LT(event.at, opts.end);
    EXPECT_GE(event.at, prev);
    prev = event.at;
  }
}

TEST(Churn, CrashThenRestartPerNode) {
  Rng rng(5);
  std::vector<NodeId> nodes{NodeId(0), NodeId(1), NodeId(2)};
  ChurnPlanOptions opts;
  opts.end = 200 * kSeconds;
  opts.events_per_second = 0.5;
  opts.downtime_min = opts.downtime_max = 1 * kSeconds;
  const auto plan = make_churn_plan(nodes, opts, rng);

  // Every node alternates crash/restart when scanned in time order.
  std::map<std::uint64_t, ChurnEventKind> last;
  for (const auto& event : plan) {
    const auto it = last.find(event.node.value);
    if (it != last.end()) {
      EXPECT_NE(static_cast<int>(it->second), static_cast<int>(event.kind))
          << "node " << event.node.value << " repeated "
          << static_cast<int>(event.kind);
    }
    last[event.node.value] = event.kind;
  }
}

TEST(Churn, ZeroRateMakesEmptyPlan) {
  Rng rng(1);
  std::vector<NodeId> nodes{NodeId(0)};
  ChurnPlanOptions opts;
  opts.end = 100 * kSeconds;
  opts.events_per_second = 0.0;
  EXPECT_TRUE(make_churn_plan(nodes, opts, rng).empty());
}

TEST(Churn, CorrelatedFailurePicksDistinctNodes) {
  Rng rng(3);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 20; ++i) nodes.emplace_back(i);
  const auto plan = make_correlated_failure(nodes, 5, 42, rng);
  ASSERT_EQ(plan.size(), 5u);
  std::set<std::uint64_t> unique;
  for (const auto& event : plan) {
    EXPECT_EQ(event.at, 42);
    EXPECT_EQ(static_cast<int>(event.kind),
              static_cast<int>(ChurnEventKind::kCrash));
    unique.insert(event.node.value);
  }
  EXPECT_EQ(unique.size(), 5u);
}

}  // namespace
}  // namespace dataflasks::sim
