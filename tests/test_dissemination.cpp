// Dissemination tests: dedup cache, full epidemic broadcast (atomic
// infection, §II) and slice-targeted spray routing (§IV-B).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dissemination/dedup_cache.hpp"
#include "dissemination/epidemic_broadcast.hpp"
#include "dissemination/spray_router.hpp"
#include "pss/cyclon.hpp"
#include "test_util.hpp"

namespace dataflasks::dissemination {
namespace {

using testing::SimBundle;

// ---- DedupCache -----------------------------------------------------------------

TEST(DedupCache, FirstInsertReturnsFalseThenTrue) {
  DedupCache cache(4);
  EXPECT_FALSE(cache.seen_or_insert(1));
  EXPECT_TRUE(cache.seen_or_insert(1));
  EXPECT_FALSE(cache.seen_or_insert(2));
}

TEST(DedupCache, EvictsOldestAtCapacity) {
  DedupCache cache(3);
  for (std::uint64_t id = 1; id <= 3; ++id) cache.seen_or_insert(id);
  EXPECT_FALSE(cache.seen_or_insert(4));  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(DedupCache, ClearForgetsEverything) {
  DedupCache cache(4);
  cache.seen_or_insert(1);
  cache.clear();
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.seen_or_insert(1));
}

TEST(DedupCache, ZeroCapacityRejected) {
  EXPECT_THROW(DedupCache(0), InvariantViolation);
}

// ---- atomic_fanout ----------------------------------------------------------------

TEST(AtomicFanout, MatchesLnNPlusC) {
  // ln(1000) ~ 6.9 -> ceil(6.9 + 1) = 8.
  EXPECT_EQ(atomic_fanout(1000, 1.0), 8u);
  // ln(3000) ~ 8.0 -> ceil(8.0 + 2) = 11 (8.006 + 2 -> ceil 11).
  EXPECT_EQ(atomic_fanout(3000, 2.0), 11u);
  EXPECT_EQ(atomic_fanout(1, 5.0), 1u);
}

TEST(AdaptiveTtl, GrowsLogarithmicallyWithSliceCount) {
  const auto ttl10 = adaptive_ttl(2, 10, 3.0);
  const auto ttl60 = adaptive_ttl(2, 60, 3.0);
  EXPECT_GT(ttl60, ttl10);
  EXPECT_LE(ttl60, ttl10 + 4);  // log2(6) ~ 2.6 extra hops
  EXPECT_GE(adaptive_ttl(2, 1, 3.0), 1);
}

// ---- harness ----------------------------------------------------------------------

struct OverlayNode {
  std::unique_ptr<pss::Cyclon> pss;
};

/// Pre-converged PSS overlay shared by broadcast/spray tests.
std::vector<OverlayNode> make_pss_overlay(SimBundle& bundle,
                                          std::size_t count) {
  std::vector<OverlayNode> nodes(count);
  Rng seeder(31);
  for (std::size_t i = 0; i < count; ++i) {
    nodes[i].pss = std::make_unique<pss::Cyclon>(
        NodeId(i), *bundle.transport, Rng(seeder.next_u64()),
        pss::CyclonOptions{});
  }
  for (std::size_t i = 0; i < count; ++i) {
    nodes[i].pss->bootstrap({NodeId((i + 1) % count), NodeId((i + 3) % count)});
    auto* node = &nodes[i];
    bundle.transport->register_handler(
        NodeId(i),
        [node](const net::Message& msg) { node->pss->handle(msg); });
    bundle.simulator.schedule_periodic(
        bundle.simulator.rng().next_in(0, kSeconds), kSeconds,
        [node]() { node->pss->tick(); });
  }
  bundle.run_for(40 * kSeconds);
  return nodes;
}

// ---- EpidemicBroadcast ---------------------------------------------------------------

TEST(EpidemicBroadcast, ReachesEveryNodeWithAtomicFanout) {
  SimBundle bundle(21);
  constexpr std::size_t kNodes = 120;
  auto overlay = make_pss_overlay(bundle, kNodes);

  std::set<std::uint64_t> delivered;
  std::vector<std::unique_ptr<EpidemicBroadcast>> broadcasts(kNodes);
  BroadcastOptions opts;
  opts.fanout = atomic_fanout(kNodes, 2.0);
  Rng seeder(32);
  for (std::size_t i = 0; i < kNodes; ++i) {
    broadcasts[i] = std::make_unique<EpidemicBroadcast>(
        NodeId(i), *bundle.transport, *overlay[i].pss, Rng(seeder.next_u64()),
        opts, [&delivered, i](const Payload&, NodeId) { delivered.insert(i); });
    auto* pss = overlay[i].pss.get();
    auto* bc = broadcasts[i].get();
    bundle.transport->register_handler(
        NodeId(i), [pss, bc](const net::Message& msg) {
          if (pss->handle(msg)) return;
          bc->handle(msg);
        });
  }

  broadcasts[0]->broadcast(Bytes{1, 2, 3});
  bundle.run_for(10 * kSeconds);
  // Atomic infection holds with probability e^{-e^{-c}} < 1 (paper §II):
  // with fanout ln(N)+2 a straggler or two is within protocol spec.
  EXPECT_GE(delivered.size(), kNodes - 2);
}

TEST(EpidemicBroadcast, DeliversExactlyOncePerNode) {
  SimBundle bundle(22);
  constexpr std::size_t kNodes = 60;
  auto overlay = make_pss_overlay(bundle, kNodes);

  std::vector<int> deliveries(kNodes, 0);
  std::vector<std::unique_ptr<EpidemicBroadcast>> broadcasts(kNodes);
  Rng seeder(33);
  for (std::size_t i = 0; i < kNodes; ++i) {
    BroadcastOptions opts;
    opts.fanout = atomic_fanout(kNodes, 1.0);
    broadcasts[i] = std::make_unique<EpidemicBroadcast>(
        NodeId(i), *bundle.transport, *overlay[i].pss, Rng(seeder.next_u64()),
        opts,
        [&deliveries, i](const Payload&, NodeId) { ++deliveries[i]; });
    auto* pss = overlay[i].pss.get();
    auto* bc = broadcasts[i].get();
    bundle.transport->register_handler(
        NodeId(i), [pss, bc](const net::Message& msg) {
          if (pss->handle(msg)) return;
          bc->handle(msg);
        });
  }

  broadcasts[5]->broadcast(Bytes{9});
  broadcasts[5]->broadcast(Bytes{10});  // second independent broadcast
  bundle.run_for(10 * kSeconds);
  for (std::size_t i = 0; i < kNodes; ++i) {
    EXPECT_EQ(deliveries[i], 2) << "node " << i;
  }
}

TEST(EpidemicBroadcast, PayloadArrivesIntactWithOrigin) {
  SimBundle bundle(23);
  constexpr std::size_t kNodes = 30;
  auto overlay = make_pss_overlay(bundle, kNodes);

  Payload seen_payload;
  NodeId seen_origin;
  std::vector<std::unique_ptr<EpidemicBroadcast>> broadcasts(kNodes);
  Rng seeder(34);
  for (std::size_t i = 0; i < kNodes; ++i) {
    BroadcastOptions opts;
    opts.fanout = 6;
    broadcasts[i] = std::make_unique<EpidemicBroadcast>(
        NodeId(i), *bundle.transport, *overlay[i].pss, Rng(seeder.next_u64()),
        opts, [&, i](const Payload& payload, NodeId origin) {
          if (i == 17) {
            seen_payload = payload;
            seen_origin = origin;
          }
        });
    auto* pss = overlay[i].pss.get();
    auto* bc = broadcasts[i].get();
    bundle.transport->register_handler(
        NodeId(i), [pss, bc](const net::Message& msg) {
          if (pss->handle(msg)) return;
          bc->handle(msg);
        });
  }

  const Bytes payload{0xDE, 0xAD, 0xBE, 0xEF};
  broadcasts[3]->broadcast(payload);
  bundle.run_for(10 * kSeconds);
  EXPECT_EQ(seen_payload, payload);
  EXPECT_EQ(seen_origin, NodeId(3));
}

// ---- SprayRouter ------------------------------------------------------------------------

struct SprayFixture {
  SprayFixture(SimBundle& bundle, std::size_t node_count,
               std::uint32_t slice_count, SprayOptions options = {})
      : slice_count_(slice_count) {
    overlay_ = make_pss_overlay(bundle, node_count);
    deliveries.assign(node_count, 0);
    routers.resize(node_count);
    options.max_hops = adaptive_ttl(options.global_fanout, slice_count, 3.0);
    Rng seeder(55);
    for (std::size_t i = 0; i < node_count; ++i) {
      // Slice assignment: node i sits in slice i % k (converged slicing).
      const SliceId my_slice = static_cast<SliceId>(i % slice_count);
      routers[i] = std::make_unique<SprayRouter>(
          NodeId(i), *bundle.transport, *overlay_[i].pss,
          Rng(seeder.next_u64()), options,
          /*current_slice=*/[my_slice]() { return my_slice; },
          /*slice_peers=*/
          [this, i, node_count, slice_count](std::size_t count) {
            // Fully known slice membership (ring of same-residue nodes).
            std::vector<NodeId> peers;
            for (std::size_t j = (i + slice_count) % node_count;
                 peers.size() < count && j != i;
                 j = (j + slice_count) % node_count) {
              peers.emplace_back(j);
            }
            return peers;
          },
          /*deliver=*/
          [this, i](const Payload&, SliceId, NodeId) {
            ++deliveries[i];
            return continue_in_slice ? DeliverResult::kContinueInSlice
                                     : DeliverResult::kStop;
          });
      auto* pss = overlay_[i].pss.get();
      auto* router = routers[i].get();
      bundle.transport->register_handler(
          NodeId(i), [pss, router](const net::Message& msg) {
            if (pss->handle(msg)) return;
            router->handle(msg);
          });
    }
  }

  [[nodiscard]] int total_deliveries() const {
    int total = 0;
    for (int d : deliveries) total += d;
    return total;
  }

  [[nodiscard]] bool deliveries_only_in_slice(SliceId slice) const {
    for (std::size_t i = 0; i < deliveries.size(); ++i) {
      if (deliveries[i] > 0 && (i % slice_count_) != slice) return false;
    }
    return true;
  }

  std::uint32_t slice_count_;
  std::vector<OverlayNode> overlay_;
  std::vector<std::unique_ptr<SprayRouter>> routers;
  std::vector<int> deliveries;
  bool continue_in_slice = false;
};

TEST(SprayRouter, ReachesTargetSliceFromOutside) {
  SimBundle bundle(24);
  SprayFixture fix(bundle, 100, 10);

  // Node 0 is in slice 0; target slice 7.
  fix.routers[0]->originate(7, Bytes{1});
  bundle.run_for(10 * kSeconds);

  EXPECT_GE(fix.total_deliveries(), 1);
  EXPECT_TRUE(fix.deliveries_only_in_slice(7));
}

TEST(SprayRouter, LocalOriginDeliversImmediately) {
  SimBundle bundle(25);
  SprayFixture fix(bundle, 50, 5);
  // Node 2 is in slice 2; originating for slice 2 delivers locally.
  fix.routers[2]->originate(2, Bytes{1});
  EXPECT_EQ(fix.deliveries[2], 1);
}

TEST(SprayRouter, ContinueInSliceCoversSliceMembers) {
  SimBundle bundle(26);
  SprayFixture fix(bundle, 100, 10);
  fix.continue_in_slice = true;  // gets that keep relaying

  fix.routers[1]->originate(4, Bytes{1});
  bundle.run_for(15 * kSeconds);

  // With kContinueInSlice the request spreads across slice 4's ~10 members.
  int covered = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    if (i % 10 == 4 && fix.deliveries[i] > 0) ++covered;
  }
  EXPECT_GE(covered, 5);
  EXPECT_TRUE(fix.deliveries_only_in_slice(4));
}

TEST(SprayRouter, DeliversAtMostOncePerNode) {
  SimBundle bundle(27);
  SprayFixture fix(bundle, 80, 8);
  fix.continue_in_slice = true;

  fix.routers[0]->originate(3, Bytes{7});
  bundle.run_for(15 * kSeconds);
  for (int d : fix.deliveries) EXPECT_LE(d, 1);
}

TEST(SprayRouter, HopBudgetBoundsTraffic) {
  SimBundle bundle(28);
  SprayOptions tight;
  tight.global_fanout = 2;
  SprayFixture fix(bundle, 100, 10, tight);

  fix.routers[0]->originate(5, Bytes{1});
  bundle.run_for(15 * kSeconds);

  // TTL for k=10, beta=3, f=2 is ~log2(30)+2 = 7 hops. A fanout-2 spray
  // tree is bounded by 2^(TTL+1) sends; count only request-category
  // traffic (the PSS keeps gossiping underneath).
  std::uint64_t spray_sent = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    spray_sent += bundle.transport
                      ->stats_for_category(NodeId(i),
                                           net::MsgCategory::kRequest)
                      .sent;
  }
  EXPECT_GT(spray_sent, 0u);
  EXPECT_LT(spray_sent, 600u);
}

TEST(SprayRouter, MalformedSprayDropped) {
  SimBundle bundle(29);
  SprayFixture fix(bundle, 20, 2);
  net::Message bad{NodeId(1), NodeId(0), kSprayMsg, Bytes{0x01, 0x02}};
  EXPECT_TRUE(fix.routers[0]->handle(bad));
  EXPECT_EQ(fix.total_deliveries(), 0);
}

}  // namespace
}  // namespace dataflasks::dissemination
