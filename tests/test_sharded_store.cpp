// ShardedStore: the partitioned, per-partition-locked store behind the
// multi-shard server. Single-threaded contract tests live in test_store's
// parameterized suite; here we pin the sharding-specific behavior —
// partition routing, the merged digest cache, constructor rebalance across
// --shards changes, and cross-partition concurrency (ASan/TSan in CI).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "store/memstore.hpp"
#include "store/sharded_store.hpp"

namespace dataflasks::store {
namespace {

Object make_object(const Key& key, Version version, std::uint8_t byte) {
  return Object{key, version, Payload(Bytes{byte})};
}

std::unique_ptr<ShardedStore> make_sharded(std::size_t partitions) {
  std::vector<std::unique_ptr<Store>> parts;
  for (std::size_t i = 0; i < partitions; ++i) {
    parts.push_back(std::make_unique<MemStore>());
  }
  return std::make_unique<ShardedStore>(std::move(parts));
}

TEST(ShardedStore, PartitionOfIsStableAndCoversAllPartitions) {
  bool hit[4] = {false, false, false, false};
  for (int i = 0; i < 64; ++i) {
    const Key key = "key-" + std::to_string(i);
    const std::size_t p = ShardedStore::partition_of(key, 4);
    ASSERT_LT(p, 4u);
    EXPECT_EQ(p, ShardedStore::partition_of(key, 4)) << "must be stable";
    hit[p] = true;
  }
  for (bool h : hit) EXPECT_TRUE(h) << "64 keys must touch all 4 partitions";
  // One partition degenerates to identity routing.
  EXPECT_EQ(ShardedStore::partition_of("anything", 1), 0u);
}

TEST(ShardedStore, OperationsRouteAcrossPartitions) {
  auto store = make_sharded(4);
  for (int i = 0; i < 32; ++i) {
    const Key key = "route-" + std::to_string(i);
    ASSERT_TRUE(store->put(make_object(key, 1, 0xAB)).ok());
  }
  EXPECT_EQ(store->object_count(), 32u);
  for (int i = 0; i < 32; ++i) {
    const Key key = "route-" + std::to_string(i);
    auto found = store->get(key, std::nullopt);
    ASSERT_TRUE(found.ok()) << key;
    EXPECT_EQ(found.value().version, 1u);
    EXPECT_TRUE(store->contains(key, 1));
  }
}

TEST(ShardedStore, TombstonesAndCasBehaveThroughPartitions) {
  auto store = make_sharded(3);
  ASSERT_TRUE(store->put(make_object("cas-key", 1, 0x01)).ok());

  CasOutcome ok = store->compare_and_put(make_object("cas-key", 2, 0x02), 1);
  EXPECT_EQ(ok.status, CasOutcome::Status::kStored);
  CasOutcome stale = store->compare_and_put(make_object("cas-key", 3, 0x03), 1);
  EXPECT_EQ(stale.status, CasOutcome::Status::kMismatch);
  EXPECT_EQ(stale.current, 2u);

  ASSERT_TRUE(store->put(Object::make_tombstone("cas-key", 5, 1000)).ok());
  EXPECT_EQ(store->tombstone_version("cas-key"), 5u);
  auto found = store->get("cas-key", std::nullopt);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found.value().tombstone);
}

TEST(ShardedStore, DigestEntriesMergeAllPartitionsAndTrackMutations) {
  auto store = make_sharded(4);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        store->put(make_object("digest-" + std::to_string(i), 1, 0x11)).ok());
  }
  EXPECT_EQ(store->digest_entries().size(), 16u);
  // The merged digest is cached; a further write must invalidate it.
  ASSERT_TRUE(store->put(make_object("digest-extra", 1, 0x22)).ok());
  EXPECT_EQ(store->digest_entries().size(), 17u);
}

TEST(ShardedStore, ReapInvalidatesDigestCacheAndBumpsRev) {
  // Regression: expiry/eviction remove objects without going through put(),
  // so reap must dirty the merged-digest cache (and bump mutation_rev, which
  // anti-entropy keys its summary cache on) — otherwise a reaped key keeps
  // being advertised and pulled back in.
  auto store = make_sharded(4);
  Object transient = make_object("transient", 1, 0x44);
  transient.expires_at = 100;
  ASSERT_TRUE(store->put(transient).ok());
  ASSERT_TRUE(store->put(make_object("stable", 1, 0x55)).ok());

  ASSERT_EQ(store->digest_entries().size(), 2u);  // warm the cache
  const std::uint64_t rev_before = store->mutation_rev();

  const ReapStats stats = store->reap(200, 0);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(store->digest_entries().size(), 1u);
  EXPECT_GT(store->mutation_rev(), rev_before);

  // A reap that removes nothing must not churn the rev (summary caches
  // would otherwise rebuild every tick).
  const std::uint64_t rev_after = store->mutation_rev();
  EXPECT_EQ(store->reap(300, 0).expired, 0u);
  EXPECT_EQ(store->mutation_rev(), rev_after);
}

TEST(ShardedStore, ConstructorRebalancesAcrossShardCountChange) {
  // Simulate a durable restart with a DIFFERENT --shards: all objects were
  // recovered into partition 0 (the old single log), some now belong to
  // partitions 1..3.
  std::vector<std::unique_ptr<Store>> parts;
  auto legacy = std::make_unique<MemStore>();
  std::size_t misplaced = 0;
  for (int i = 0; i < 32; ++i) {
    const Key key = "re-" + std::to_string(i);
    if (ShardedStore::partition_of(key, 4) != 0) ++misplaced;
    ASSERT_TRUE(legacy->put(make_object(key, 1, 0x33)).ok());
  }
  // A tombstone must migrate like a value (or a late replica copy could
  // resurrect the deleted key after the move).
  ASSERT_TRUE(legacy->put(Object::make_tombstone("re-0", 9, 500)).ok());
  parts.push_back(std::move(legacy));
  for (int i = 1; i < 4; ++i) parts.push_back(std::make_unique<MemStore>());

  ShardedStore store(std::move(parts));
  EXPECT_EQ(store.rebalanced(), misplaced);
  EXPECT_EQ(store.object_count(), 32u);
  for (int i = 0; i < 32; ++i) {
    const Key key = "re-" + std::to_string(i);
    EXPECT_TRUE(store.get(key, std::nullopt).ok()) << key;
  }
  EXPECT_EQ(store.tombstone_version("re-0"), 9u);
}

TEST(ShardedStore, ConcurrentWritersOnDistinctKeysAreSafe) {
  auto store = make_sharded(4);
  constexpr std::size_t kThreads = 4;
  constexpr int kKeysPerThread = 500;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&store, t]() {
      for (int i = 0; i < kKeysPerThread; ++i) {
        const Key key =
            "cc-" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(store->put(Object{key, 1, Payload(Bytes{0x44})}).ok());
        ASSERT_TRUE(store->contains(key, 1));
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(store->object_count(), kThreads * kKeysPerThread);
}

TEST(ShardedStore, ConcurrentMixedOpsOnSharedKeysAreSafe) {
  // Same keys hammered from several threads: per-partition locking must
  // keep every individual op atomic (TSan verifies the absence of races;
  // the content assertions only require version monotonicity).
  auto store = make_sharded(2);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        store->put(make_object("shared-" + std::to_string(i), 1, 0x55)).ok());
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t]() {
      for (int round = 0; round < 200; ++round) {
        const Key key = "shared-" + std::to_string(round % 8);
        (void)store->put(
            Object{key, 2 + t * 200 + round, Payload(Bytes{0x66})});
        (void)store->get(key, std::nullopt);
        (void)store->contains(key, 1);
        (void)store->digest();
      }
    });
  }
  for (auto& th : threads) th.join();
  // The store keeps version history: 8 seeds plus every concurrent put.
  EXPECT_EQ(store->object_count(), 8u + 4 * 200);
  for (int i = 0; i < 8; ++i) {
    auto found = store->get("shared-" + std::to_string(i), std::nullopt);
    ASSERT_TRUE(found.ok());
    EXPECT_GE(found.value().version, 2u);
  }
}

}  // namespace
}  // namespace dataflasks::store
