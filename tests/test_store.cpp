// Unit tests for the Data Store implementations: versioned semantics shared
// by MemStore and LogStore (typed parametrized suite), plus LogStore
// persistence: recovery, torn-write handling, corruption and compaction.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "store/log_store.hpp"
#include "store/memstore.hpp"

namespace dataflasks::store {
namespace {

Bytes value_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string temp_log_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("dataflasks_test_" + tag + "_" + std::to_string(::getpid()) +
           ".log"))
      .string();
}

// ---- shared Store contract ---------------------------------------------------

class StoreFactory {
 public:
  virtual ~StoreFactory() = default;
  virtual std::unique_ptr<Store> make() = 0;
};

class MemStoreFactory : public StoreFactory {
 public:
  std::unique_ptr<Store> make() override {
    return std::make_unique<MemStore>();
  }
};

class LogStoreFactory : public StoreFactory {
 public:
  std::unique_ptr<Store> make() override {
    const auto path = temp_log_path("contract" + std::to_string(counter_++));
    std::remove(path.c_str());
    return std::make_unique<LogStore>(path);
  }

 private:
  int counter_ = 0;
};

class StoreContractTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "mem") {
      factory_ = std::make_unique<MemStoreFactory>();
    } else {
      factory_ = std::make_unique<LogStoreFactory>();
    }
    store_ = factory_->make();
  }

  std::unique_ptr<StoreFactory> factory_;
  std::unique_ptr<Store> store_;
};

TEST_P(StoreContractTest, PutThenGetExactVersion) {
  ASSERT_TRUE(store_->put({"k", 1, value_of("v1")}).ok());
  auto got = store_->get("k", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().value, value_of("v1"));
  EXPECT_EQ(got.value().version, 1u);
}

TEST_P(StoreContractTest, GetLatestReturnsHighestVersion) {
  ASSERT_TRUE(store_->put({"k", 1, value_of("old")}).ok());
  ASSERT_TRUE(store_->put({"k", 3, value_of("newest")}).ok());
  ASSERT_TRUE(store_->put({"k", 2, value_of("mid")}).ok());
  auto got = store_->get("k", std::nullopt);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().version, 3u);
  EXPECT_EQ(got.value().value, value_of("newest"));
}

TEST_P(StoreContractTest, MissingKeyAndVersionAreNotFound) {
  EXPECT_FALSE(store_->get("ghost", std::nullopt).ok());
  ASSERT_TRUE(store_->put({"k", 1, value_of("x")}).ok());
  auto miss = store_->get("k", 9);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.error().code, Error::Code::kNotFound);
}

TEST_P(StoreContractTest, IdempotentRestore) {
  ASSERT_TRUE(store_->put({"k", 1, value_of("same")}).ok());
  ASSERT_TRUE(store_->put({"k", 1, value_of("same")}).ok());
  EXPECT_EQ(store_->object_count(), 1u);
}

TEST_P(StoreContractTest, ConflictingRewriteRejected) {
  ASSERT_TRUE(store_->put({"k", 1, value_of("a")}).ok());
  auto conflict = store_->put({"k", 1, value_of("b")});
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.error().code, Error::Code::kConflict);
  // Original value intact.
  EXPECT_EQ(store_->get("k", 1).value().value, value_of("a"));
}

TEST_P(StoreContractTest, ContainsTracksExactPairs) {
  ASSERT_TRUE(store_->put({"k", 2, value_of("x")}).ok());
  EXPECT_TRUE(store_->contains("k", 2));
  EXPECT_FALSE(store_->contains("k", 1));
  EXPECT_FALSE(store_->contains("other", 2));
}

TEST_P(StoreContractTest, DigestListsEveryVersion) {
  ASSERT_TRUE(store_->put({"a", 1, value_of("1")}).ok());
  ASSERT_TRUE(store_->put({"a", 2, value_of("2")}).ok());
  ASSERT_TRUE(store_->put({"b", 7, value_of("3")}).ok());
  auto digest = store_->digest();
  EXPECT_EQ(digest.size(), 3u);
  EXPECT_EQ(store_->object_count(), 3u);
}

TEST_P(StoreContractTest, AllReturnsStoredObjects) {
  ASSERT_TRUE(store_->put({"a", 1, value_of("va")}).ok());
  ASSERT_TRUE(store_->put({"b", 1, value_of("vb")}).ok());
  auto all = store_->all();
  ASSERT_EQ(all.size(), 2u);
  for (const auto& obj : all) {
    EXPECT_EQ(obj.value, value_of(obj.key == "a" ? "va" : "vb"));
  }
}

TEST_P(StoreContractTest, RemoveKeysWherePredicate) {
  ASSERT_TRUE(store_->put({"keep", 1, value_of("k")}).ok());
  ASSERT_TRUE(store_->put({"drop", 1, value_of("d1")}).ok());
  ASSERT_TRUE(store_->put({"drop", 2, value_of("d2")}).ok());
  const std::size_t removed = store_->remove_keys_where(
      [](const Key& k) { return k == "drop"; });
  EXPECT_EQ(removed, 2u);
  EXPECT_TRUE(store_->contains("keep", 1));
  EXPECT_FALSE(store_->contains("drop", 1));
  EXPECT_EQ(store_->object_count(), 1u);
}

TEST_P(StoreContractTest, ValueBytesAccounting) {
  EXPECT_EQ(store_->value_bytes(), 0u);
  ASSERT_TRUE(store_->put({"k", 1, Bytes(100)}).ok());
  ASSERT_TRUE(store_->put({"k", 2, Bytes(50)}).ok());
  EXPECT_EQ(store_->value_bytes(), 150u);
}

TEST_P(StoreContractTest, EmptyValueSupported) {
  ASSERT_TRUE(store_->put({"k", 1, {}}).ok());
  auto got = store_->get("k", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().value.empty());
}

INSTANTIATE_TEST_SUITE_P(AllStores, StoreContractTest,
                         ::testing::Values("mem", "log"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---- LogStore persistence ------------------------------------------------------

class LogStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_log_path("persist");
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(LogStoreTest, SurvivesReopen) {
  {
    LogStore s(path_);
    ASSERT_TRUE(s.open_status().ok());
    ASSERT_TRUE(s.put({"k1", 1, value_of("v1")}).ok());
    ASSERT_TRUE(s.put({"k2", 5, value_of("v2")}).ok());
    ASSERT_TRUE(s.sync().ok());
  }
  LogStore reopened(path_);
  ASSERT_TRUE(reopened.open_status().ok());
  EXPECT_EQ(reopened.object_count(), 2u);
  EXPECT_EQ(reopened.get("k1", 1).value().value, value_of("v1"));
  EXPECT_EQ(reopened.get("k2", std::nullopt).value().version, 5u);
}

TEST_F(LogStoreTest, TornTailIsDropped) {
  {
    LogStore s(path_);
    ASSERT_TRUE(s.put({"good", 1, value_of("ok")}).ok());
    ASSERT_TRUE(s.sync().ok());
  }
  {
    // Simulate a torn write: append garbage that looks like a header start.
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    const std::uint32_t partial[2] = {0xDF1A5C05, 0xFFFFFFFF};
    std::fwrite(partial, sizeof partial, 1, f);
    std::fclose(f);
  }
  LogStore recovered(path_);
  ASSERT_TRUE(recovered.open_status().ok());
  EXPECT_EQ(recovered.object_count(), 1u);
  EXPECT_TRUE(recovered.contains("good", 1));
  // And the store keeps working after recovery.
  EXPECT_TRUE(recovered.put({"more", 2, value_of("x")}).ok());
}

TEST_F(LogStoreTest, CorruptedRecordStopsRecoveryAtThatPoint) {
  {
    LogStore s(path_);
    ASSERT_TRUE(s.put({"first", 1, value_of("aaaa")}).ok());
    ASSERT_TRUE(s.put({"second", 1, value_of("bbbb")}).ok());
    ASSERT_TRUE(s.sync().ok());
  }
  {
    // Flip a byte inside the second record's body.
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    std::fseek(f, -2, SEEK_END);
    std::fputc(0x5A, f);
    std::fclose(f);
  }
  LogStore recovered(path_);
  ASSERT_TRUE(recovered.open_status().ok());
  EXPECT_TRUE(recovered.contains("first", 1));
  EXPECT_FALSE(recovered.contains("second", 1));
}

TEST_F(LogStoreTest, CompactionReclaimsRemovedData) {
  LogStore s(path_);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        s.put({"key" + std::to_string(i), 1, Bytes(100, 0xAB)}).ok());
  }
  const std::size_t before = s.log_bytes();
  s.remove_keys_where([](const Key& k) { return k != "key0"; });
  auto reclaimed = s.compact();
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_GT(reclaimed.value(), 0u);
  EXPECT_LT(s.log_bytes(), before);
  EXPECT_TRUE(s.contains("key0", 1));
  EXPECT_EQ(s.object_count(), 1u);

  // Reads still work against the compacted file.
  EXPECT_EQ(s.get("key0", 1).value().value, Bytes(100, 0xAB));
}

TEST_F(LogStoreTest, CompactedStoreSurvivesReopen) {
  {
    LogStore s(path_);
    ASSERT_TRUE(s.put({"a", 1, value_of("x")}).ok());
    ASSERT_TRUE(s.put({"b", 1, value_of("y")}).ok());
    s.remove_keys_where([](const Key& k) { return k == "a"; });
    ASSERT_TRUE(s.compact().ok());
  }
  LogStore reopened(path_);
  EXPECT_FALSE(reopened.contains("a", 1));
  EXPECT_TRUE(reopened.contains("b", 1));
}

// ---- object codec -----------------------------------------------------------------

TEST(ObjectCodec, RoundTrip) {
  const Object obj{"key", 42, value_of("payload")};
  Writer w;
  encode(w, obj);
  Reader r(w.view());
  const Object decoded = decode_object(r);
  EXPECT_TRUE(r.finish().ok());
  EXPECT_EQ(decoded, obj);
}

TEST(ObjectCodec, DigestEntryOrdering) {
  const DigestEntry a{"a", 1}, a2{"a", 2}, b{"b", 0};
  EXPECT_LT(a, a2);
  EXPECT_LT(a2, b);  // key dominates
  Writer w;
  encode(w, a);
  Reader r(w.view());
  EXPECT_EQ(decode_digest_entry(r), a);
}

}  // namespace
}  // namespace dataflasks::store
