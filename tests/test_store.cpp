// Unit tests for the Data Store implementations: versioned semantics shared
// by MemStore and LogStore (typed parametrized suite), plus LogStore
// persistence: recovery, torn-write handling, corruption and compaction.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "store/log_store.hpp"
#include "store/memstore.hpp"

namespace dataflasks::store {
namespace {

Bytes value_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string temp_log_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("dataflasks_test_" + tag + "_" + std::to_string(::getpid()) +
           ".log"))
      .string();
}

// ---- shared Store contract ---------------------------------------------------

class StoreFactory {
 public:
  virtual ~StoreFactory() = default;
  virtual std::unique_ptr<Store> make() = 0;
};

class MemStoreFactory : public StoreFactory {
 public:
  std::unique_ptr<Store> make() override {
    return std::make_unique<MemStore>();
  }
};

class LogStoreFactory : public StoreFactory {
 public:
  std::unique_ptr<Store> make() override {
    const auto path = temp_log_path("contract" + std::to_string(counter_++));
    std::remove(path.c_str());
    return std::make_unique<LogStore>(path);
  }

 private:
  int counter_ = 0;
};

class StoreContractTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "mem") {
      factory_ = std::make_unique<MemStoreFactory>();
    } else {
      factory_ = std::make_unique<LogStoreFactory>();
    }
    store_ = factory_->make();
  }

  std::unique_ptr<StoreFactory> factory_;
  std::unique_ptr<Store> store_;
};

TEST_P(StoreContractTest, PutThenGetExactVersion) {
  ASSERT_TRUE(store_->put({"k", 1, value_of("v1")}).ok());
  auto got = store_->get("k", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().value, value_of("v1"));
  EXPECT_EQ(got.value().version, 1u);
}

TEST_P(StoreContractTest, GetLatestReturnsHighestVersion) {
  ASSERT_TRUE(store_->put({"k", 1, value_of("old")}).ok());
  ASSERT_TRUE(store_->put({"k", 3, value_of("newest")}).ok());
  ASSERT_TRUE(store_->put({"k", 2, value_of("mid")}).ok());
  auto got = store_->get("k", std::nullopt);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().version, 3u);
  EXPECT_EQ(got.value().value, value_of("newest"));
}

TEST_P(StoreContractTest, MissingKeyAndVersionAreNotFound) {
  EXPECT_FALSE(store_->get("ghost", std::nullopt).ok());
  ASSERT_TRUE(store_->put({"k", 1, value_of("x")}).ok());
  auto miss = store_->get("k", 9);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.error().code, Error::Code::kNotFound);
}

TEST_P(StoreContractTest, IdempotentRestore) {
  ASSERT_TRUE(store_->put({"k", 1, value_of("same")}).ok());
  ASSERT_TRUE(store_->put({"k", 1, value_of("same")}).ok());
  EXPECT_EQ(store_->object_count(), 1u);
}

TEST_P(StoreContractTest, ConflictingRewriteRejected) {
  ASSERT_TRUE(store_->put({"k", 1, value_of("a")}).ok());
  auto conflict = store_->put({"k", 1, value_of("b")});
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.error().code, Error::Code::kConflict);
  // Original value intact.
  EXPECT_EQ(store_->get("k", 1).value().value, value_of("a"));
}

TEST_P(StoreContractTest, ContainsTracksExactPairs) {
  ASSERT_TRUE(store_->put({"k", 2, value_of("x")}).ok());
  EXPECT_TRUE(store_->contains("k", 2));
  EXPECT_FALSE(store_->contains("k", 1));
  EXPECT_FALSE(store_->contains("other", 2));
}

TEST_P(StoreContractTest, DigestListsEveryVersion) {
  ASSERT_TRUE(store_->put({"a", 1, value_of("1")}).ok());
  ASSERT_TRUE(store_->put({"a", 2, value_of("2")}).ok());
  ASSERT_TRUE(store_->put({"b", 7, value_of("3")}).ok());
  auto digest = store_->digest();
  EXPECT_EQ(digest.size(), 3u);
  EXPECT_EQ(store_->object_count(), 3u);
}

TEST_P(StoreContractTest, AllReturnsStoredObjects) {
  ASSERT_TRUE(store_->put({"a", 1, value_of("va")}).ok());
  ASSERT_TRUE(store_->put({"b", 1, value_of("vb")}).ok());
  auto all = store_->all();
  ASSERT_EQ(all.size(), 2u);
  for (const auto& obj : all) {
    EXPECT_EQ(obj.value, value_of(obj.key == "a" ? "va" : "vb"));
  }
}

TEST_P(StoreContractTest, RemoveKeysWherePredicate) {
  ASSERT_TRUE(store_->put({"keep", 1, value_of("k")}).ok());
  ASSERT_TRUE(store_->put({"drop", 1, value_of("d1")}).ok());
  ASSERT_TRUE(store_->put({"drop", 2, value_of("d2")}).ok());
  const std::size_t removed = store_->remove_keys_where(
      [](const Key& k) { return k == "drop"; });
  EXPECT_EQ(removed, 2u);
  EXPECT_TRUE(store_->contains("keep", 1));
  EXPECT_FALSE(store_->contains("drop", 1));
  EXPECT_EQ(store_->object_count(), 1u);
}

TEST_P(StoreContractTest, ValueBytesAccounting) {
  EXPECT_EQ(store_->value_bytes(), 0u);
  ASSERT_TRUE(store_->put({"k", 1, Bytes(100)}).ok());
  ASSERT_TRUE(store_->put({"k", 2, Bytes(50)}).ok());
  EXPECT_EQ(store_->value_bytes(), 150u);
}

TEST_P(StoreContractTest, EmptyValueSupported) {
  ASSERT_TRUE(store_->put({"k", 1, {}}).ok());
  auto got = store_->get("k", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().value.empty());
}

// ---- tombstones (delete semantics shared by both stores) --------------------

TEST_P(StoreContractTest, TombstoneSupersedesOlderVersions) {
  ASSERT_TRUE(store_->put({"k", 1, value_of("v1")}).ok());
  ASSERT_TRUE(store_->put({"k", 2, value_of("v2")}).ok());
  ASSERT_TRUE(store_->put(Object::make_tombstone("k", 3, 1000)).ok());

  // Older versions are gone; the tombstone is the latest version.
  EXPECT_FALSE(store_->contains("k", 1));
  EXPECT_FALSE(store_->contains("k", 2));
  EXPECT_TRUE(store_->contains("k", 3));
  EXPECT_EQ(store_->tombstone_version("k"), 3u);
  auto latest = store_->get("k", std::nullopt);
  ASSERT_TRUE(latest.ok());
  EXPECT_TRUE(latest.value().tombstone);
  EXPECT_EQ(latest.value().version, 3u);
  EXPECT_EQ(latest.value().deleted_at, 1000);
  EXPECT_EQ(store_->object_count(), 1u);
}

TEST_P(StoreContractTest, LateValueBehindTombstoneIsDiscarded) {
  ASSERT_TRUE(store_->put(Object::make_tombstone("k", 5, 1000)).ok());
  // A replica copy of the deleted value arrives late: discarded, and
  // reported as superseded so write paths don't ack a dropped put.
  const Status stale = store_->put({"k", 2, value_of("stale")});
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error().code, Error::Code::kSuperseded);
  EXPECT_FALSE(store_->contains("k", 2));
  EXPECT_EQ(store_->object_count(), 1u);
  // Digest lists only the tombstone, so anti-entropy spreads the delete.
  const auto digest = store_->digest();
  ASSERT_EQ(digest.size(), 1u);
  EXPECT_EQ(digest.front().version, 5u);
}

TEST_P(StoreContractTest, HigherVersionRecreatesDeletedKey) {
  ASSERT_TRUE(store_->put({"k", 1, value_of("old")}).ok());
  ASSERT_TRUE(store_->put(Object::make_tombstone("k", 2, 1000)).ok());
  ASSERT_TRUE(store_->put({"k", 3, value_of("reborn")}).ok());
  auto latest = store_->get("k", std::nullopt);
  ASSERT_TRUE(latest.ok());
  EXPECT_FALSE(latest.value().tombstone);
  EXPECT_EQ(latest.value().value, value_of("reborn"));
  // The tombstone is still stored (until GC) under its own version.
  EXPECT_EQ(store_->tombstone_version("k"), 2u);
}

TEST_P(StoreContractTest, TombstoneRestoreIsIdempotent) {
  ASSERT_TRUE(store_->put(Object::make_tombstone("k", 2, 1000)).ok());
  ASSERT_TRUE(store_->put(Object::make_tombstone("k", 2, 1000)).ok());
  EXPECT_EQ(store_->object_count(), 1u);
}

// ---- compare-and-put (the CAS operation's storage primitive) ----

TEST_P(StoreContractTest, CasCreateOnlySucceedsOnMissingKey) {
  // expected == 0 means "create only": stores iff the key has no version.
  const auto created = store_->compare_and_put({"k", 5, value_of("v")}, 0);
  EXPECT_EQ(created.status, CasOutcome::Status::kStored);
  EXPECT_EQ(created.current, 5u);
  EXPECT_EQ(store_->get("k", std::nullopt).value().value, value_of("v"));

  // A second create-only against the now-existing key reports its version.
  const auto again = store_->compare_and_put({"k", 9, value_of("w")}, 0);
  EXPECT_EQ(again.status, CasOutcome::Status::kMismatch);
  EXPECT_EQ(again.current, 5u);
  EXPECT_EQ(store_->get("k", std::nullopt).value().value, value_of("v"));
}

TEST_P(StoreContractTest, CasStoresOnMatchingVersion) {
  ASSERT_TRUE(store_->put({"k", 3, value_of("old")}).ok());
  const auto outcome = store_->compare_and_put({"k", 7, value_of("new")}, 3);
  EXPECT_EQ(outcome.status, CasOutcome::Status::kStored);
  EXPECT_EQ(outcome.current, 7u);
  EXPECT_EQ(store_->get("k", std::nullopt).value().version, 7u);
}

TEST_P(StoreContractTest, CasMismatchLeavesStoreUntouchedAndReportsCurrent) {
  ASSERT_TRUE(store_->put({"k", 3, value_of("old")}).ok());
  const auto outcome = store_->compare_and_put({"k", 7, value_of("new")}, 2);
  EXPECT_EQ(outcome.status, CasOutcome::Status::kMismatch);
  EXPECT_EQ(outcome.current, 3u);
  EXPECT_EQ(store_->get("k", std::nullopt).value().version, 3u);
  EXPECT_FALSE(store_->contains("k", 7));
}

TEST_P(StoreContractTest, CasAgainstTombstoneFailsWithoutResurrecting) {
  // CAS never writes through a delete — even when the caller "expects" the
  // tombstone's version. Recreation requires an unconditional put above
  // the tombstone; CAS reports kDeleted with the tombstone's version.
  ASSERT_TRUE(store_->put({"k", 1, value_of("v")}).ok());
  ASSERT_TRUE(store_->put(Object::make_tombstone("k", 4, 1000)).ok());
  for (const Version expected : {Version{0}, Version{1}, Version{4}}) {
    const auto outcome =
        store_->compare_and_put({"k", 9, value_of("zombie")}, expected);
    EXPECT_EQ(outcome.status, CasOutcome::Status::kDeleted);
    EXPECT_EQ(outcome.current, 4u);
  }
  EXPECT_TRUE(store_->get("k", std::nullopt).value().tombstone);
  EXPECT_FALSE(store_->contains("k", 9));
}

TEST_P(StoreContractTest, CasRequiresAdvancingVersion) {
  // Matching precondition but a non-advancing new version is a conflict:
  // storing it would not supersede the current object under the epidemic
  // highest-version-wins rule, so the store refuses.
  ASSERT_TRUE(store_->put({"k", 5, value_of("v")}).ok());
  const auto outcome = store_->compare_and_put({"k", 5, value_of("w")}, 5);
  EXPECT_EQ(outcome.status, CasOutcome::Status::kConflict);
  EXPECT_EQ(outcome.current, 5u);
  EXPECT_EQ(store_->get("k", std::nullopt).value().value, value_of("v"));
}

TEST_P(StoreContractTest, GcRespectsGracePeriod) {
  ASSERT_TRUE(store_->put(Object::make_tombstone("a", 1, 1000)).ok());
  ASSERT_TRUE(store_->put(Object::make_tombstone("b", 1, 5000)).ok());
  ASSERT_TRUE(store_->put({"live", 1, value_of("x")}).ok());

  // now=1999, grace=1000: a (stamped 1000) is not yet past grace.
  EXPECT_EQ(store_->gc_tombstones(1999, 1000), 0u);
  EXPECT_TRUE(store_->contains("a", 1));

  // now=2000: a expires exactly at deleted_at + grace; b survives.
  EXPECT_EQ(store_->gc_tombstones(2000, 1000), 1u);
  EXPECT_FALSE(store_->contains("a", 1));
  EXPECT_EQ(store_->tombstone_version("a"), 0u);
  EXPECT_TRUE(store_->contains("b", 1));
  EXPECT_TRUE(store_->contains("live", 1));
  EXPECT_EQ(store_->object_count(), 2u);

  // Digest no longer lists the collected tombstone.
  for (const auto& entry : store_->digest()) {
    EXPECT_NE(entry.key, "a");
  }
}

TEST_P(StoreContractTest, GcForgetsDeleteEntirely) {
  ASSERT_TRUE(store_->put(Object::make_tombstone("k", 5, 100)).ok());
  EXPECT_EQ(store_->gc_tombstones(10'000, 100), 1u);
  // After GC the delete is forgotten: an old version stores again (this is
  // the documented resurrection window the grace period must outlive).
  ASSERT_TRUE(store_->put({"k", 2, value_of("back")}).ok());
  EXPECT_TRUE(store_->contains("k", 2));
}

INSTANTIATE_TEST_SUITE_P(AllStores, StoreContractTest,
                         ::testing::Values("mem", "log"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---- LogStore persistence ------------------------------------------------------

class LogStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_log_path("persist");
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(LogStoreTest, SurvivesReopen) {
  {
    LogStore s(path_);
    ASSERT_TRUE(s.open_status().ok());
    ASSERT_TRUE(s.put({"k1", 1, value_of("v1")}).ok());
    ASSERT_TRUE(s.put({"k2", 5, value_of("v2")}).ok());
    ASSERT_TRUE(s.sync().ok());
  }
  LogStore reopened(path_);
  ASSERT_TRUE(reopened.open_status().ok());
  EXPECT_EQ(reopened.object_count(), 2u);
  EXPECT_EQ(reopened.get("k1", 1).value().value, value_of("v1"));
  EXPECT_EQ(reopened.get("k2", std::nullopt).value().version, 5u);
}

TEST_F(LogStoreTest, TornTailIsDropped) {
  {
    LogStore s(path_);
    ASSERT_TRUE(s.put({"good", 1, value_of("ok")}).ok());
    ASSERT_TRUE(s.sync().ok());
  }
  {
    // Simulate a torn write: append garbage that looks like a header start.
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    const std::uint32_t partial[2] = {0xDF1A5C06, 0xFFFFFFFF};
    std::fwrite(partial, sizeof partial, 1, f);
    std::fclose(f);
  }
  LogStore recovered(path_);
  ASSERT_TRUE(recovered.open_status().ok());
  EXPECT_EQ(recovered.object_count(), 1u);
  EXPECT_TRUE(recovered.contains("good", 1));
  // And the store keeps working after recovery.
  EXPECT_TRUE(recovered.put({"more", 2, value_of("x")}).ok());
}

TEST_F(LogStoreTest, CorruptedRecordStopsRecoveryAtThatPoint) {
  {
    LogStore s(path_);
    ASSERT_TRUE(s.put({"first", 1, value_of("aaaa")}).ok());
    ASSERT_TRUE(s.put({"second", 1, value_of("bbbb")}).ok());
    ASSERT_TRUE(s.sync().ok());
  }
  {
    // Flip a byte inside the second record's body.
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    std::fseek(f, -2, SEEK_END);
    std::fputc(0x5A, f);
    std::fclose(f);
  }
  LogStore recovered(path_);
  ASSERT_TRUE(recovered.open_status().ok());
  EXPECT_TRUE(recovered.contains("first", 1));
  EXPECT_FALSE(recovered.contains("second", 1));
}

TEST_F(LogStoreTest, CompactionReclaimsRemovedData) {
  LogStore s(path_);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        s.put({"key" + std::to_string(i), 1, Bytes(100, 0xAB)}).ok());
  }
  const std::size_t before = s.log_bytes();
  s.remove_keys_where([](const Key& k) { return k != "key0"; });
  auto reclaimed = s.compact();
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_GT(reclaimed.value(), 0u);
  EXPECT_LT(s.log_bytes(), before);
  EXPECT_TRUE(s.contains("key0", 1));
  EXPECT_EQ(s.object_count(), 1u);

  // Reads still work against the compacted file.
  EXPECT_EQ(s.get("key0", 1).value().value, Bytes(100, 0xAB));
}

TEST_F(LogStoreTest, CompactedStoreSurvivesReopen) {
  {
    LogStore s(path_);
    ASSERT_TRUE(s.put({"a", 1, value_of("x")}).ok());
    ASSERT_TRUE(s.put({"b", 1, value_of("y")}).ok());
    s.remove_keys_where([](const Key& k) { return k == "a"; });
    ASSERT_TRUE(s.compact().ok());
  }
  LogStore reopened(path_);
  EXPECT_FALSE(reopened.contains("a", 1));
  EXPECT_TRUE(reopened.contains("b", 1));
}

TEST_F(LogStoreTest, LegacyFormatLogRejectedLoudly) {
  {
    // A log in the pre-tombstone record format (old magic): opening it
    // must be an explicit error, not a silent zero-object recovery.
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    const std::uint32_t legacy_header[3] = {0xDF1A5C05, 0, 0};
    std::fwrite(legacy_header, sizeof legacy_header, 1, f);
    std::fclose(f);
  }
  LogStore rejected(path_);
  ASSERT_FALSE(rejected.open_status().ok());
  EXPECT_EQ(rejected.open_status().error().code,
            Error::Code::kInvalidArgument);
}

// ---- LogStore tombstone persistence ------------------------------------------

TEST_F(LogStoreTest, TombstoneSurvivesReopen) {
  {
    LogStore s(path_);
    ASSERT_TRUE(s.put({"k", 1, value_of("v1")}).ok());
    ASSERT_TRUE(s.put(Object::make_tombstone("k", 2, 777)).ok());
    ASSERT_TRUE(s.sync().ok());
  }
  LogStore reopened(path_);
  ASSERT_TRUE(reopened.open_status().ok());
  // Recovery replays the tombstone semantics: v1 pruned, delete intact.
  EXPECT_FALSE(reopened.contains("k", 1));
  EXPECT_EQ(reopened.tombstone_version("k"), 2u);
  auto latest = reopened.get("k", std::nullopt);
  ASSERT_TRUE(latest.ok());
  EXPECT_TRUE(latest.value().tombstone);
  EXPECT_EQ(latest.value().deleted_at, 777);
}

TEST_F(LogStoreTest, GcThenCompactReclaimsTombstoneSpace) {
  LogStore s(path_);
  ASSERT_TRUE(s.put({"k", 1, Bytes(200, 0xAB)}).ok());
  ASSERT_TRUE(s.put(Object::make_tombstone("k", 2, 100)).ok());
  ASSERT_TRUE(s.put({"keep", 1, value_of("x")}).ok());
  const std::size_t before = s.log_bytes();

  EXPECT_EQ(s.gc_tombstones(10'000, 100), 1u);
  auto reclaimed = s.compact();
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_LT(s.log_bytes(), before);
  EXPECT_EQ(s.object_count(), 1u);
  EXPECT_TRUE(s.contains("keep", 1));

  // A reopen after GC+compact must not resurrect key or tombstone.
  ASSERT_TRUE(s.sync().ok());
  LogStore reopened(path_);
  EXPECT_FALSE(reopened.contains("k", 1));
  EXPECT_FALSE(reopened.contains("k", 2));
  EXPECT_EQ(reopened.tombstone_version("k"), 0u);
}

// ---- object codec -----------------------------------------------------------------

TEST(ObjectCodec, RoundTrip) {
  const Object obj{"key", 42, value_of("payload")};
  Writer w;
  encode(w, obj);
  Reader r(w.view());
  const Object decoded = decode_object(r);
  EXPECT_TRUE(r.finish().ok());
  EXPECT_EQ(decoded, obj);
}

TEST(ObjectCodec, TombstoneRoundTrip) {
  const Object tomb = Object::make_tombstone("gone", 7, 123456);
  Writer w;
  encode(w, tomb);
  EXPECT_EQ(w.size(), encoded_size(tomb));
  Reader r(w.view());
  const Object decoded = decode_object(r);
  EXPECT_TRUE(r.finish().ok());
  EXPECT_EQ(decoded, tomb);
  EXPECT_TRUE(decoded.tombstone);
  EXPECT_EQ(decoded.deleted_at, 123456);
}

TEST(ObjectCodec, DigestEntryOrdering) {
  const DigestEntry a{"a", 1}, a2{"a", 2}, b{"b", 0};
  EXPECT_LT(a, a2);
  EXPECT_LT(a2, b);  // key dominates
  Writer w;
  encode(w, a);
  Reader r(w.view());
  EXPECT_EQ(decode_digest_entry(r), a);
}

}  // namespace
}  // namespace dataflasks::store
