// TTL / cache-mode semantics end to end: a TTL'd put expires cluster-wide
// at its absolute deadline and stays expired — reads answer it as an
// authoritative miss, replicas reap it, and no epidemic path (anti-entropy,
// state transfer, durable restart) resurrects it for clients. Also covers
// the v3 protocol negotiation: a TTL'd put against an older fleet fails
// definitively as unsupported while plain ops keep working.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>

#include "client/client.hpp"
#include "client/session.hpp"
#include "harness/cluster.hpp"
#include "store/storage_engine.hpp"
#include "test_util.hpp"

namespace dataflasks {
namespace {

using testing::SimBundle;

harness::ClusterOptions cluster_options(std::size_t nodes,
                                        std::uint32_t slices,
                                        std::uint64_t seed) {
  harness::ClusterOptions opts;
  opts.node_count = nodes;
  opts.seed = seed;
  opts.node.slice_config = {slices, 1};
  return opts;
}

TEST(Ttl, ExpiredKeyReadsAsAuthoritativeMissAndIsReaped) {
  harness::Cluster cluster(cluster_options(20, 1, 81));
  cluster.start_all();
  cluster.run_for(60 * kSeconds);

  auto& client = cluster.add_client();
  client::PutResult put;
  client.put("ephemeral", Bytes{7}, 1, /*ttl_ms=*/120'000,
             [&](const client::PutResult& r) { put = r; });
  cluster.run_for(10 * kSeconds);
  ASSERT_TRUE(put.ok);

  // Before the deadline: a normal read.
  client::GetResult before;
  client.get("ephemeral", std::nullopt,
             [&](const client::GetResult& r) { before = r; });
  cluster.run_for(10 * kSeconds);
  ASSERT_TRUE(before.ok);
  EXPECT_EQ(before.object.value, Bytes{7});

  // Past the deadline: the read is an authoritative miss (deleted), never a
  // timeout, and the per-replica reapers empty every store.
  cluster.run_for(150 * kSeconds);
  client::GetResult after;
  client.get("ephemeral", std::nullopt,
             [&](const client::GetResult& r) { after = r; });
  cluster.run_for(15 * kSeconds);
  EXPECT_FALSE(after.ok);
  EXPECT_EQ(cluster.replica_count("ephemeral", 1), 0u);
}

TEST(Ttl, NoResurrectionThroughAntiEntropyOrStateTransfer) {
  harness::Cluster cluster(cluster_options(40, 2, 82));
  cluster.start_all();
  cluster.run_for(90 * kSeconds);

  auto& client = cluster.add_client();
  client::PutResult put;
  client.put("shortlived", Bytes{1, 2}, 1, /*ttl_ms=*/180'000,
             [&](const client::PutResult& r) { put = r; });
  cluster.run_for(60 * kSeconds);  // replicate across the slice
  ASSERT_TRUE(put.ok);
  ASSERT_GE(cluster.replica_count("shortlived", 1), 2u);

  // Cross the deadline, then keep the epidemic machinery busy: anti-entropy
  // rounds, plus a crash/restart that triggers state transfer into the
  // rejoining node. Nothing may bring the object back.
  cluster.run_for(180 * kSeconds);
  cluster.crash(3);
  cluster.run_for(20 * kSeconds);
  cluster.restart(3);
  cluster.run_for(120 * kSeconds);

  EXPECT_EQ(cluster.replica_count("shortlived", 1), 0u);
  client::GetResult got;
  client.get("shortlived", std::nullopt,
             [&](const client::GetResult& r) { got = r; });
  cluster.run_for(15 * kSeconds);
  EXPECT_FALSE(got.ok);

  // A later write of the same key at a higher version is untouched by the
  // old deadline.
  client::PutResult rewrite;
  client.put("shortlived", Bytes{9}, 2,
             [&](const client::PutResult& r) { rewrite = r; });
  cluster.run_for(15 * kSeconds);
  ASSERT_TRUE(rewrite.ok);
  client::GetResult reread;
  client.get("shortlived", std::nullopt,
             [&](const client::GetResult& r) { reread = r; });
  cluster.run_for(15 * kSeconds);
  ASSERT_TRUE(reread.ok);
  EXPECT_EQ(reread.object.value, Bytes{9});
}

TEST(Ttl, DurableRestartReplaysExpiredObjectButNeverServesIt) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("df_ttl_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  const std::string base = dir + "/dataflasks-0";

  SimBundle bundle(83);
  core::NodeOptions options;
  options.slice_config = {1, 1};
  {
    auto engine = std::make_unique<store::StorageEngine>(base);
    ASSERT_TRUE(engine->open_status().ok());
    core::Node node(NodeId(0), 1.0, bundle.simulator, *bundle.transport,
                    options, /*seed=*/7, std::move(engine));
    node.start({});

    // A v3 put with a 5s TTL, straight through the op API.
    core::OpEnvelope envelope;
    envelope.ops.push_back(core::RoutedOp{
        RequestId{500, 1},
        core::Operation::put("ephemeral", 1, Bytes{0xEE}, /*ttl_ms=*/5000)});
    bundle.transport->send(net::Message{NodeId(500), NodeId(0),
                                        core::kOpEnvelope,
                                        core::encode(envelope)});
    bundle.run_for(2 * kSeconds);
    ASSERT_TRUE(node.store().contains("ephemeral", 1));
    node.crash();  // before the deadline: the journal holds a live object
  }
  bundle.run_for(60 * kSeconds);  // the deadline passes while "down"

  // "Process restart" long after the deadline: replay resurrects the object
  // in memory with its original absolute deadline already in the past.
  auto engine = std::make_unique<store::StorageEngine>(base);
  ASSERT_TRUE(engine->open_status().ok());
  ASSERT_TRUE(engine->contains("ephemeral", 1));
  core::Node node(NodeId(0), 1.0, bundle.simulator, *bundle.transport,
                  options, /*seed=*/8, std::move(engine));
  node.start({});

  // A read between replay and the first reap tick is still a miss: the
  // get-path expiry guard answers kDeleted (sim time is already past 5s).
  bool answered = false;
  core::OpStatus status = core::OpStatus::kOk;
  bundle.transport->register_handler(
      NodeId(501), [&](const net::Message& msg) {
        if (msg.type == core::kOpReplyBatch) {
          const auto batch = core::decode_op_reply_batch(msg.payload);
          if (batch && !batch->replies.empty()) {
            answered = true;
            status = batch->replies.front().status;
          }
        }
      });
  core::OpEnvelope get_envelope;
  get_envelope.ops.push_back(
      core::RoutedOp{RequestId{501, 1}, core::Operation::get("ephemeral")});
  bundle.transport->send(net::Message{NodeId(501), NodeId(0),
                                      core::kOpEnvelope,
                                      core::encode(get_envelope)});
  bundle.run_for(5 * kSeconds);
  ASSERT_TRUE(answered);
  EXPECT_EQ(status, core::OpStatus::kDeleted);
  EXPECT_GT(node.metrics().counter_value("rh.gets_expired") +
                node.metrics().counter_value("node.keys_expired"),
            0u);
  // And the reaper has removed it from the recovered store by now.
  EXPECT_FALSE(node.store().contains("ephemeral", 1));

  node.crash();
  std::filesystem::remove_all(dir);
}

// ---- protocol negotiation ----------------------------------------------------------

class V2ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto opts = cluster_options(20, 1, 84);
    opts.node.request.serve_protocol = 2;  // pre-TTL fleet
    cluster_ = std::make_unique<harness::Cluster>(opts);
    cluster_->start_all();
    cluster_->run_for(60 * kSeconds);
  }

  std::unique_ptr<harness::Cluster> cluster_;
};

TEST_F(V2ClusterTest, TtlPutIsUnsupportedButPlainOpsNegotiateDown) {
  auto& client = cluster_->add_client();
  EXPECT_EQ(client.active_protocol(), core::kOpProtocolVersion);

  // The TTL'd put needs v3; the fleet answers kVersionMismatch offering v2,
  // the client adopts it and fails the op definitively — not a timeout.
  client::PutResult ttl_put;
  client.put("cached", Bytes{1}, 1, /*ttl_ms=*/60'000,
             [&](const client::PutResult& r) { ttl_put = r; });
  cluster_->run_for(15 * kSeconds);
  EXPECT_FALSE(ttl_put.ok);
  EXPECT_TRUE(ttl_put.unsupported);
  EXPECT_EQ(client.active_protocol(), 2);

  // Plain ops keep working at the negotiated version.
  client::PutResult plain;
  client.put("plain", Bytes{2}, 1,
             [&](const client::PutResult& r) { plain = r; });
  cluster_->run_for(15 * kSeconds);
  ASSERT_TRUE(plain.ok);
  client::GetResult got;
  client.get("plain", std::nullopt,
             [&](const client::GetResult& r) { got = r; });
  cluster_->run_for(15 * kSeconds);
  ASSERT_TRUE(got.ok);
  EXPECT_EQ(got.object.value, Bytes{2});

  // A zero TTL is exactly the plain put: expressible at v2, no failure.
  client::PutResult zero_ttl;
  client.put("zero", Bytes{3}, 1, /*ttl_ms=*/0,
             [&](const client::PutResult& r) { zero_ttl = r; });
  cluster_->run_for(15 * kSeconds);
  EXPECT_TRUE(zero_ttl.ok);

  // Session sugar surfaces the same signal.
  client::Session session(client);
  auto future = session.put_ttl("sugar", Bytes{4}, /*ttl_ms=*/1000);
  cluster_->run_for(15 * kSeconds);
  ASSERT_TRUE(future.ready());
  EXPECT_FALSE(future.value().ok);
  EXPECT_TRUE(future.value().unsupported);
}

}  // namespace
}  // namespace dataflasks
