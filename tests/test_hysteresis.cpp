// Regression tests for slice-announcement hysteresis: rank-estimate jitter
// at a slice boundary must NOT flap the announced slice (each flap costs a
// state transfer, view reset and handoff churn — the §VII thrashing risk),
// while genuine rank shifts must still be announced promptly.
#include <gtest/gtest.h>

#include "pss/cyclon.hpp"
#include "slicing/sliver.hpp"
#include "test_util.hpp"

namespace dataflasks::slicing {
namespace {

using testing::SimBundle;

/// Feeds a Sliver instance a synthetic observation stream that pins its
/// rank estimate wherever the test wants it.
struct SliverHarness {
  explicit SliverHarness(SimBundle& bundle, std::uint32_t slices)
      : pss(NodeId(0), *bundle.transport, Rng(1), {}),
        sliver(NodeId(0), /*attribute=*/100.0, *bundle.transport, pss,
               Rng(2), SliceConfig{slices, 1}) {}

  /// Installs `below` observations under our attribute and `above` over it,
  /// moving rank_estimate() to ~below/(below+above+1).
  void set_rank(std::size_t below, std::size_t above) {
    // Distinct node ids per call so observe() replaces cleanly.
    std::uint64_t id = 1;
    for (std::size_t i = 0; i < below; ++i) {
      feed(NodeId(id++), 1.0);
    }
    for (std::size_t i = 0; i < above; ++i) {
      feed(NodeId(id++), 200.0);
    }
  }

  void feed(NodeId from, double attribute) {
    Writer w;
    w.node_id(from);
    w.f64(attribute);
    w.u32(sliver.config().slice_count);
    w.u64(sliver.config().epoch);
    sliver.handle(
        net::Message{from, NodeId(0), kSliverSampleReply, w.take()});
  }

  pss::Cyclon pss;
  Sliver sliver;
};

TEST(Hysteresis, BoundaryJitterDoesNotFlapAnnouncedSlice) {
  SimBundle bundle(0x71);
  SliverHarness h(bundle, /*slices=*/10);

  // Park the estimate just inside slice 5, then settle the announcement.
  h.set_rank(52, 48);
  for (int i = 0; i < 50; ++i) h.feed(NodeId(1), 1.0);
  const SliceId settled = h.sliver.slice();

  int changes = 0;
  h.sliver.set_slice_change_listener([&](SliceId, SliceId) { ++changes; });

  // Jitter across the 0.5 boundary: the raw slice flips between 4 and 5,
  // but each excursion stays within the boundary margin, so the announced
  // slice must hold still.
  for (int round = 0; round < 200; ++round) {
    // Flip one observation back and forth across our attribute.
    h.feed(NodeId(9999), round % 2 == 0 ? 1.0 : 200.0);
  }
  EXPECT_EQ(h.sliver.slice(), settled);
  EXPECT_EQ(changes, 0);
}

TEST(Hysteresis, GenuineShiftIsAnnounced) {
  SimBundle bundle(0x72);
  SliverHarness h(bundle, /*slices=*/10);
  h.set_rank(50, 50);
  const SliceId before = h.sliver.slice();

  int changes = 0;
  h.sliver.set_slice_change_listener([&](SliceId, SliceId) { ++changes; });

  // A real shift: most observed attributes now sit above ours, pushing the
  // rank clearly into a lower slice's interior. The estimate migrates
  // gradually as observations accumulate, so the announcement may step
  // through intermediate slices — but each at most once (no flapping), and
  // it must land on the final slice.
  h.set_rank(10, 150);
  for (int i = 0; i < 20; ++i) h.feed(NodeId(7), 200.0);

  EXPECT_NE(h.sliver.slice(), before);
  EXPECT_GE(changes, 1);
  EXPECT_LE(changes, 5);  // one per crossed slice, no oscillation
  EXPECT_LT(h.sliver.rank_estimate(), 0.2);
  EXPECT_EQ(h.sliver.slice(), h.sliver.raw_slice());
}

TEST(Hysteresis, FallbackMovesPersistentBoundarySitter) {
  SimBundle bundle(0x73);
  SliverHarness h(bundle, /*slices=*/2);
  // Rank within the boundary margin of slice 1 (just above 0.5): spatial
  // hysteresis rejects the move, but the long-count fallback must
  // eventually announce it rather than pinning the node forever.
  h.set_rank(30, 70);  // rank ~0.3 -> slice 0, settle there
  for (int i = 0; i < 40; ++i) h.feed(NodeId(2), 200.0);
  ASSERT_EQ(h.sliver.slice(), 0u);

  int changes = 0;
  h.sliver.set_slice_change_listener([&](SliceId, SliceId) { ++changes; });

  h.set_rank(53, 47);  // rank ~0.525: inside slice 1 but near its edge
  for (int i = 0; i < 100; ++i) h.feed(NodeId(3), 1.0);

  EXPECT_EQ(h.sliver.slice(), 1u);
  EXPECT_EQ(changes, 1);
}

TEST(Hysteresis, DisabledWithHysteresisOne) {
  SimBundle bundle(0x74);
  SliverHarness h(bundle, /*slices=*/10);
  h.sliver.set_slice_hysteresis(1);
  h.set_rank(50, 50);

  int changes = 0;
  h.sliver.set_slice_change_listener([&](SliceId, SliceId) { ++changes; });
  // Even with hysteresis 1, the spatial margin still applies; a clear
  // interior move announces on the first evaluation.
  h.set_rank(5, 150);
  h.feed(NodeId(5), 200.0);
  EXPECT_GE(changes, 1);
}

}  // namespace
}  // namespace dataflasks::slicing
