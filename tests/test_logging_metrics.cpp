// Unit tests for the observability kit: leveled logger with custom sinks,
// and the metrics registry the node components report into.
#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/metrics.hpp"

namespace dataflasks {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(global_log_level()) {}
  ~LogLevelGuard() { set_global_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, RespectsGlobalLevel) {
  LogLevelGuard guard;
  set_global_log_level(LogLevel::kWarn);

  std::vector<std::string> lines;
  Logger logger("n1");
  logger.set_sink([&](LogLevel, const std::string& line) {
    lines.push_back(line);
  });

  logger.debug("dropped");
  logger.info("dropped too");
  logger.warn("kept");
  logger.error("kept as well");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("[n1] kept"), std::string::npos);
}

TEST(Logging, OffSilencesEverything) {
  LogLevelGuard guard;
  set_global_log_level(LogLevel::kOff);
  int calls = 0;
  Logger logger;
  logger.set_sink([&](LogLevel, const std::string&) { ++calls; });
  logger.error("nope");
  EXPECT_EQ(calls, 0);
}

TEST(Logging, FormatsMultipleArguments) {
  LogLevelGuard guard;
  set_global_log_level(LogLevel::kTrace);
  std::string captured;
  Logger logger("node");
  logger.set_sink([&](LogLevel, const std::string& line) { captured = line; });
  logger.info("count=", 42, " ratio=", 1.5);
  EXPECT_EQ(captured, "[node] count=42 ratio=1.5");
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
}

TEST(Logging, EnabledMatchesLevel) {
  LogLevelGuard guard;
  set_global_log_level(LogLevel::kInfo);
  Logger logger;
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_TRUE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
}

TEST(Metrics, CountersAccumulateAndReset) {
  MetricsRegistry registry;
  registry.counter("ops").add();
  registry.counter("ops").add(4);
  EXPECT_EQ(registry.counter_value("ops"), 5u);
  EXPECT_EQ(registry.counter_value("missing"), 0u);

  registry.reset_counters();
  EXPECT_EQ(registry.counter_value("ops"), 0u);
}

TEST(Metrics, GaugesHoldLatestValue) {
  MetricsRegistry registry;
  registry.gauge("load").set(0.7);
  registry.gauge("load").set(0.9);
  EXPECT_DOUBLE_EQ(registry.gauge("load").value(), 0.9);
}

TEST(Metrics, AllCountersEnumerates) {
  MetricsRegistry registry;
  registry.counter("a").add(1);
  registry.counter("b").add(2);
  const auto all = registry.all_counters();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "a");
  EXPECT_EQ(all[1].second, 2u);
}

}  // namespace
}  // namespace dataflasks
