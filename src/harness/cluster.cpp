#include "harness/cluster.hpp"

#include <algorithm>

namespace dataflasks::harness {

Cluster::Cluster(ClusterOptions options)
    : options_(options),
      simulator_(options.seed),
      model_(options.latency, options.loss_probability),
      rng_(simulator_.rng().fork(0xc1a5)) {
  ensure(options_.node_count > 0, "Cluster: zero nodes");
  transport_ = std::make_unique<net::SimTransport>(simulator_, model_);

  nodes_.reserve(options_.node_count);
  for (std::size_t i = 0; i < options_.node_count; ++i) {
    const double capacity =
        options_.capacity_min +
        rng_.next_double() * (options_.capacity_max - options_.capacity_min);
    nodes_.push_back(std::make_unique<core::Node>(
        NodeId(i), capacity, simulator_, *transport_, options_.node,
        /*seed=*/rng_.next_u64()));
  }
}

core::Node* Cluster::node_by_id(NodeId id) {
  if (id.value >= nodes_.size()) return nullptr;
  return nodes_[static_cast<std::size_t>(id.value)].get();
}

std::vector<NodeId> Cluster::node_ids() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->id());
  return out;
}

std::vector<NodeId> Cluster::running_node_ids() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (n->running()) out.push_back(n->id());
  }
  return out;
}

void Cluster::start_all() {
  const std::vector<NodeId> ids = node_ids();
  for (auto& n : nodes_) {
    std::vector<NodeId> seeds = rng_.sample(ids, options_.bootstrap_contacts);
    std::erase(seeds, n->id());
    n->start(seeds);
  }
}

void Cluster::run_for(SimTime duration) {
  simulator_.run_until(simulator_.now() + duration);
}

void Cluster::crash(std::size_t index) {
  ensure(index < nodes_.size(), "Cluster::crash: bad index");
  if (!nodes_[index]->running()) return;
  model_.set_node_up(NodeId(index), false);
  nodes_[index]->crash();
}

void Cluster::restart(std::size_t index) {
  ensure(index < nodes_.size(), "Cluster::restart: bad index");
  if (nodes_[index]->running()) return;
  model_.set_node_up(NodeId(index), true);
  // A rejoining node bootstraps from currently running peers when possible.
  std::vector<NodeId> seeds = running_node_ids();
  if (seeds.empty()) seeds = node_ids();
  seeds = rng_.sample(seeds, options_.bootstrap_contacts);
  std::erase(seeds, NodeId(index));
  nodes_[index]->start(seeds);
}

void Cluster::apply_churn_plan(const std::vector<sim::ChurnEvent>& plan) {
  for (const sim::ChurnEvent& event : plan) {
    const auto index = static_cast<std::size_t>(event.node.value);
    ensure(index < nodes_.size(), "churn plan references unknown node");
    simulator_.schedule_at(event.at, [this, event, index]() {
      if (event.kind == sim::ChurnEventKind::kCrash) {
        crash(index);
      } else {
        restart(index);
      }
    });
  }
}

client::Client& Cluster::add_client(client::ClientOptions options,
                                    const std::string& balancer) {
  std::unique_ptr<client::LoadBalancer> lb;
  if (balancer == "slice-cache") {
    lb = std::make_unique<client::SliceCacheLoadBalancer>(
        node_ids(), rng_.fork(next_client_id_));
  } else {
    ensure(balancer == "random", "unknown balancer policy: " + balancer);
    lb = std::make_unique<client::RandomLoadBalancer>(
        node_ids(), rng_.fork(next_client_id_));
  }
  balancers_.push_back(std::move(lb));
  clients_.push_back(std::make_unique<client::Client>(
      NodeId(next_client_id_++), *transport_, simulator_, *balancers_.back(),
      rng_.fork(0xc11e47), options));
  return *clients_.back();
}

std::map<SliceId, std::size_t> Cluster::slice_histogram() const {
  std::map<SliceId, std::size_t> histogram;
  for (const auto& n : nodes_) {
    if (n->running()) ++histogram[n->slice()];
  }
  return histogram;
}

std::size_t Cluster::replica_count(const Key& key, Version version) const {
  std::size_t count = 0;
  for (const auto& n : nodes_) {
    if (n->running() && n->store().contains(key, version)) ++count;
  }
  return count;
}

double Cluster::slice_coverage(const Key& key, Version version) const {
  std::size_t members = 0;
  std::size_t holders = 0;
  for (const auto& n : nodes_) {
    if (!n->running()) continue;
    if (n->key_slice(key) != n->slice()) continue;
    ++members;
    if (n->store().contains(key, version)) ++holders;
  }
  return members == 0 ? 0.0
                      : static_cast<double>(holders) /
                            static_cast<double>(members);
}

double Cluster::mean_messages_per_node() const {
  if (nodes_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += transport_->stats(n->id()).total_messages();
  }
  return static_cast<double>(total) / static_cast<double>(nodes_.size());
}

double Cluster::mean_messages_per_node(net::MsgCategory category) const {
  if (nodes_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += transport_->stats_for_category(n->id(), category).total_messages();
  }
  return static_cast<double>(total) / static_cast<double>(nodes_.size());
}

}  // namespace dataflasks::harness
