// Closed-loop workload runner: drives YCSB-style op streams through a set
// of clients inside the simulation, one outstanding op per client, and
// aggregates success counts and latency distributions.
#pragma once

#include <memory>
#include <vector>

#include "client/client.hpp"
#include "common/histogram.hpp"
#include "harness/cluster.hpp"
#include "workload/ycsb.hpp"

namespace dataflasks::harness {

struct RunnerStats {
  std::uint64_t puts_issued = 0;
  std::uint64_t puts_succeeded = 0;
  std::uint64_t puts_failed = 0;
  std::uint64_t gets_issued = 0;
  std::uint64_t gets_succeeded = 0;
  std::uint64_t gets_failed = 0;
  std::uint64_t dels_issued = 0;
  std::uint64_t dels_succeeded = 0;
  std::uint64_t dels_failed = 0;
  std::uint64_t batches_issued = 0;  ///< envelopes sent in batch mode
  Histogram put_latency;  ///< microseconds of virtual time
  Histogram get_latency;
  Histogram del_latency;

  [[nodiscard]] std::uint64_t ops_completed() const {
    return puts_succeeded + puts_failed + gets_succeeded + gets_failed +
           dels_succeeded + dels_failed;
  }
  [[nodiscard]] double put_success_rate() const {
    const auto total = puts_succeeded + puts_failed;
    return total == 0 ? 1.0
                      : static_cast<double>(puts_succeeded) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double get_success_rate() const {
    const auto total = gets_succeeded + gets_failed;
    return total == 0 ? 1.0
                      : static_cast<double>(gets_succeeded) /
                            static_cast<double>(total);
  }
};

class Runner {
 public:
  /// `clients[i]` executes `streams[i]` sequentially (closed loop).
  /// `batch_size > 1` pipelines up to that many consecutive ops into one
  /// OpEnvelope per round-trip (read-modify-write ops flush the batch and
  /// run alone, since their write depends on their read).
  Runner(Cluster& cluster, std::vector<client::Client*> clients,
         std::vector<std::vector<workload::Op>> streams,
         std::size_t batch_size = 1);

  /// Runs until every stream finishes or virtual `deadline` passes.
  /// Returns true when all ops completed (successfully or not) in time.
  bool run(SimTime deadline);

  [[nodiscard]] const RunnerStats& stats() const { return stats_; }

  /// Convenience: value payload for an op (deterministic filler bytes).
  [[nodiscard]] static Bytes make_value(std::size_t size, std::uint64_t salt);

 private:
  void issue_next(std::size_t client_index);
  void issue_batch(std::size_t client_index);
  void issue_rmw(std::size_t client_index, const workload::Op& op);
  void on_op_done(std::size_t client_index);
  void account(const client::OpResult& result);

  Cluster& cluster_;
  std::vector<client::Client*> clients_;
  std::vector<std::vector<workload::Op>> streams_;
  std::vector<std::size_t> cursors_;
  std::size_t batch_size_ = 1;
  std::size_t active_streams_ = 0;
  RunnerStats stats_;
};

}  // namespace dataflasks::harness
