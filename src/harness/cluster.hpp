// Simulation harness: builds a whole DataFlasks deployment (simulator,
// network, transport, N nodes, clients) from one options struct, applies
// churn plans, and provides whole-system audits (replica counts, slice
// distribution) that tests and benches assert on. Plays the role of the
// Minha test driver in the paper's evaluation.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "client/client.hpp"
#include "core/node.hpp"
#include "net/sim_transport.hpp"
#include "sim/churn.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace dataflasks::harness {

struct ClusterOptions {
  std::size_t node_count = 100;
  core::NodeOptions node;
  sim::LatencyModel latency{5 * kMillis, 50 * kMillis};
  double loss_probability = 0.0;
  std::uint64_t seed = 42;
  /// Bootstrap contacts handed to each starting node (random sample).
  std::size_t bootstrap_contacts = 8;
  /// Node capacities (the slicing attribute) drawn uniformly from this range.
  double capacity_min = 1.0;
  double capacity_max = 2.0;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] net::SimTransport& transport() { return *transport_; }
  [[nodiscard]] sim::NetworkModel& network() { return model_; }
  [[nodiscard]] const ClusterOptions& options() const { return options_; }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] core::Node& node(std::size_t index) { return *nodes_[index]; }
  [[nodiscard]] core::Node* node_by_id(NodeId id);
  [[nodiscard]] std::vector<NodeId> node_ids() const;
  [[nodiscard]] std::vector<NodeId> running_node_ids() const;

  /// Starts every node with random bootstrap contacts.
  void start_all();

  /// Runs the simulation for `duration` of virtual time.
  void run_for(SimTime duration);

  /// Crash / restart by index (applies both the network and node effects).
  void crash(std::size_t index);
  void restart(std::size_t index);

  /// Schedules a churn plan's events onto the simulator.
  void apply_churn_plan(const std::vector<sim::ChurnEvent>& plan);

  /// Creates a client backed by the given balancer ("random" or
  /// "slice-cache"). The cluster owns both.
  client::Client& add_client(client::ClientOptions options = {},
                             const std::string& balancer = "random");
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] client::Client& client(std::size_t index) {
    return *clients_[index];
  }
  [[nodiscard]] client::LoadBalancer& balancer(std::size_t index) {
    return *balancers_[index];
  }

  // ---- audits --------------------------------------------------------------

  /// How many running nodes currently sit in each slice (by their own claim).
  [[nodiscard]] std::map<SliceId, std::size_t> slice_histogram() const;

  /// Copies of (key, version) currently stored across running nodes.
  [[nodiscard]] std::size_t replica_count(const Key& key,
                                          Version version) const;

  /// Fraction of running members of `key`'s slice holding (key, version):
  /// 1.0 means anti-entropy fully converged for this object.
  [[nodiscard]] double slice_coverage(const Key& key, Version version) const;

  /// Mean per-node message count (sent + received), optionally restricted
  /// to one traffic category — the quantity Figures 3-4 plot.
  [[nodiscard]] double mean_messages_per_node() const;
  [[nodiscard]] double mean_messages_per_node(net::MsgCategory category) const;

 private:
  ClusterOptions options_;
  sim::Simulator simulator_;
  sim::NetworkModel model_;
  std::unique_ptr<net::SimTransport> transport_;
  Rng rng_;
  std::vector<std::unique_ptr<core::Node>> nodes_;
  std::vector<std::unique_ptr<client::LoadBalancer>> balancers_;
  std::vector<std::unique_ptr<client::Client>> clients_;
  std::uint64_t next_client_id_ = 1'000'000;
};

}  // namespace dataflasks::harness
