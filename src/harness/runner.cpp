#include "harness/runner.hpp"

#include "common/hash.hpp"

namespace dataflasks::harness {

Runner::Runner(Cluster& cluster, std::vector<client::Client*> clients,
               std::vector<std::vector<workload::Op>> streams)
    : cluster_(cluster),
      clients_(std::move(clients)),
      streams_(std::move(streams)),
      cursors_(clients_.size(), 0) {
  ensure(clients_.size() == streams_.size(),
         "Runner: one op stream per client required");
}

Bytes Runner::make_value(std::size_t size, std::uint64_t salt) {
  Bytes value(size);
  std::uint64_t state = salt;
  for (auto& byte : value) {
    byte = static_cast<std::uint8_t>(splitmix64(state) & 0xff);
  }
  return value;
}

bool Runner::run(SimTime deadline) {
  active_streams_ = 0;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (!streams_[i].empty()) {
      ++active_streams_;
      issue_next(i);
    }
  }
  while (active_streams_ > 0 && cluster_.simulator().now() < deadline &&
         cluster_.simulator().pending_events() > 0) {
    cluster_.simulator().run_until(
        std::min(deadline, cluster_.simulator().now() + 1 * kSeconds));
  }
  return active_streams_ == 0;
}

void Runner::issue_next(std::size_t client_index) {
  auto& cursor = cursors_[client_index];
  const auto& stream = streams_[client_index];
  if (cursor >= stream.size()) {
    --active_streams_;
    return;
  }
  const workload::Op& op = stream[cursor++];
  client::Client& cli = *clients_[client_index];

  switch (op.kind) {
    case workload::OpKind::kRead:
      ++stats_.gets_issued;
      cli.get(op.key, std::nullopt, [this, client_index](
                                        const client::GetResult& result) {
        if (result.ok) {
          ++stats_.gets_succeeded;
          stats_.get_latency.record(static_cast<double>(result.latency));
        } else {
          ++stats_.gets_failed;
        }
        on_op_done(client_index);
      });
      break;

    case workload::OpKind::kUpdate:
    case workload::OpKind::kInsert: {
      ++stats_.puts_issued;
      const Bytes value =
          make_value(op.value_size, stable_key_hash(op.key) + cursor);
      cli.put_auto(op.key, value, [this, client_index](
                                      const client::PutResult& result) {
        if (result.ok) {
          ++stats_.puts_succeeded;
          stats_.put_latency.record(static_cast<double>(result.latency));
        } else {
          ++stats_.puts_failed;
        }
        on_op_done(client_index);
      });
      break;
    }

    case workload::OpKind::kReadModifyWrite: {
      ++stats_.gets_issued;
      // Read, then write a new version of the same key on completion.
      cli.get(op.key, std::nullopt, [this, client_index, op](
                                        const client::GetResult& result) {
        if (result.ok) {
          ++stats_.gets_succeeded;
          stats_.get_latency.record(static_cast<double>(result.latency));
        } else {
          ++stats_.gets_failed;
        }
        ++stats_.puts_issued;
        const Bytes value = make_value(op.value_size, stable_key_hash(op.key));
        clients_[client_index]->put_auto(
            op.key, value,
            [this, client_index](const client::PutResult& put_result) {
              if (put_result.ok) {
                ++stats_.puts_succeeded;
                stats_.put_latency.record(
                    static_cast<double>(put_result.latency));
              } else {
                ++stats_.puts_failed;
              }
              on_op_done(client_index);
            });
      });
      break;
    }
  }
}

void Runner::on_op_done(std::size_t client_index) {
  issue_next(client_index);
}

}  // namespace dataflasks::harness
