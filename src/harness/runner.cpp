#include "harness/runner.hpp"

#include "common/hash.hpp"

namespace dataflasks::harness {

Runner::Runner(Cluster& cluster, std::vector<client::Client*> clients,
               std::vector<std::vector<workload::Op>> streams,
               std::size_t batch_size)
    : cluster_(cluster),
      clients_(std::move(clients)),
      streams_(std::move(streams)),
      cursors_(clients_.size(), 0),
      batch_size_(batch_size == 0 ? 1 : batch_size) {
  ensure(clients_.size() == streams_.size(),
         "Runner: one op stream per client required");
}

Bytes Runner::make_value(std::size_t size, std::uint64_t salt) {
  Bytes value(size);
  std::uint64_t state = salt;
  for (auto& byte : value) {
    byte = static_cast<std::uint8_t>(splitmix64(state) & 0xff);
  }
  return value;
}

bool Runner::run(SimTime deadline) {
  active_streams_ = 0;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (!streams_[i].empty()) {
      ++active_streams_;
      issue_next(i);
    }
  }
  while (active_streams_ > 0 && cluster_.simulator().now() < deadline &&
         cluster_.simulator().pending_events() > 0) {
    cluster_.simulator().run_until(
        std::min(deadline, cluster_.simulator().now() + 1 * kSeconds));
  }
  return active_streams_ == 0;
}

void Runner::account(const client::OpResult& result) {
  switch (result.type) {
    case core::OpType::kGet:
      if (result.ok) {
        ++stats_.gets_succeeded;
        stats_.get_latency.record(static_cast<double>(result.latency));
      } else {
        ++stats_.gets_failed;
      }
      break;
    case core::OpType::kPut:
      if (result.ok) {
        ++stats_.puts_succeeded;
        stats_.put_latency.record(static_cast<double>(result.latency));
      } else {
        ++stats_.puts_failed;
      }
      break;
    case core::OpType::kDelete:
      if (result.ok) {
        ++stats_.dels_succeeded;
        stats_.del_latency.record(static_cast<double>(result.latency));
      } else {
        ++stats_.dels_failed;
      }
      break;
    case core::OpType::kCompareAndPut:
    case core::OpType::kStats:
      // Harness streams are plain put/get/delete; admin and conditional
      // ops don't appear in generated workloads.
      break;
  }
}

void Runner::issue_next(std::size_t client_index) {
  const auto& stream = streams_[client_index];
  if (cursors_[client_index] >= stream.size()) {
    --active_streams_;
    return;
  }
  // Read-modify-write chains a write onto its read, so it cannot ride in a
  // batch envelope; issue it alone (flushing nothing: batches are built
  // fresh per call).
  if (stream[cursors_[client_index]].kind ==
      workload::OpKind::kReadModifyWrite) {
    const workload::Op op = stream[cursors_[client_index]++];
    issue_rmw(client_index, op);
    return;
  }
  issue_batch(client_index);
}

void Runner::issue_batch(std::size_t client_index) {
  auto& cursor = cursors_[client_index];
  const auto& stream = streams_[client_index];
  client::Client& cli = *clients_[client_index];

  // Pack up to batch_size_ consecutive non-RMW ops into one envelope.
  std::vector<core::Operation> ops;
  ops.reserve(batch_size_);
  while (cursor < stream.size() && ops.size() < batch_size_ &&
         stream[cursor].kind != workload::OpKind::kReadModifyWrite) {
    const workload::Op& op = stream[cursor++];
    switch (op.kind) {
      case workload::OpKind::kRead:
        ++stats_.gets_issued;
        ops.push_back(core::Operation::get(op.key));
        break;
      case workload::OpKind::kUpdate:
      case workload::OpKind::kInsert:
        ++stats_.puts_issued;
        ops.push_back(core::Operation::put(
            op.key, cli.stamp_version(op.key),
            make_value(op.value_size, stable_key_hash(op.key) + cursor)));
        break;
      case workload::OpKind::kDelete:
        ++stats_.dels_issued;
        ops.push_back(core::Operation::del(op.key, cli.stamp_version(op.key)));
        break;
      case workload::OpKind::kReadModifyWrite:
        break;  // unreachable: loop condition excludes RMW
    }
  }
  ensure(!ops.empty(), "Runner: empty batch");
  ++stats_.batches_issued;
  cli.execute(std::move(ops), [this, client_index](
                                  const std::vector<client::OpResult>& rs) {
    for (const client::OpResult& r : rs) account(r);
    on_op_done(client_index);
  });
}

void Runner::issue_rmw(std::size_t client_index, const workload::Op& op) {
  ++stats_.gets_issued;
  // Read, then write a new version of the same key on completion.
  clients_[client_index]->get(
      op.key, std::nullopt,
      [this, client_index, op](const client::GetResult& result) {
        if (result.ok) {
          ++stats_.gets_succeeded;
          stats_.get_latency.record(static_cast<double>(result.latency));
        } else {
          ++stats_.gets_failed;
        }
        ++stats_.puts_issued;
        const Bytes value = make_value(op.value_size, stable_key_hash(op.key));
        clients_[client_index]->put_auto(
            op.key, value,
            [this, client_index](const client::PutResult& put_result) {
              if (put_result.ok) {
                ++stats_.puts_succeeded;
                stats_.put_latency.record(
                    static_cast<double>(put_result.latency));
              } else {
                ++stats_.puts_failed;
              }
              on_op_done(client_index);
            });
      });
}

void Runner::on_op_done(std::size_t client_index) {
  issue_next(client_index);
}

}  // namespace dataflasks::harness
