#include "sim/churn.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/ensure.hpp"

namespace dataflasks::sim {

std::vector<ChurnEvent> make_churn_plan(const std::vector<NodeId>& nodes,
                                        const ChurnPlanOptions& options,
                                        Rng& rng) {
  ensure(options.end >= options.start, "churn plan: end before start");
  std::vector<ChurnEvent> plan;
  if (nodes.empty() || options.events_per_second <= 0.0) return plan;

  // Track when each node is next available to crash (it must be up).
  std::unordered_map<NodeId, SimTime> up_again;

  const double mean_gap_us =
      static_cast<double>(kSeconds) / options.events_per_second;

  double t = static_cast<double>(options.start);
  while (true) {
    t += rng.next_exponential(mean_gap_us);
    const auto at = static_cast<SimTime>(t);
    if (at >= options.end) break;

    // Pick an up node; bounded retries keep the generator total even when
    // nearly everyone is down.
    NodeId victim;
    bool found = false;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const NodeId candidate = rng.pick(nodes);
      const auto it = up_again.find(candidate);
      if (it == up_again.end() || it->second <= at) {
        victim = candidate;
        found = true;
        break;
      }
    }
    if (!found) continue;

    plan.push_back({at, victim, ChurnEventKind::kCrash});
    if (options.restart) {
      const SimTime downtime =
          options.downtime_min == options.downtime_max
              ? options.downtime_min
              : rng.next_in(options.downtime_min, options.downtime_max);
      const SimTime back = at + downtime;
      up_again[victim] = back;
      if (back < options.end) {
        plan.push_back({back, victim, ChurnEventKind::kRestart});
      }
    } else {
      up_again[victim] = options.end;  // never crashes again
    }
  }

  std::sort(plan.begin(), plan.end());
  return plan;
}

std::vector<ChurnEvent> make_correlated_failure(
    const std::vector<NodeId>& candidates, std::size_t count, SimTime at,
    Rng& rng) {
  std::vector<ChurnEvent> plan;
  for (const NodeId node : rng.sample(candidates, count)) {
    plan.push_back({at, node, ChurnEventKind::kCrash});
  }
  std::sort(plan.begin(), plan.end());
  return plan;
}

}  // namespace dataflasks::sim
