// Network behaviour model: decides whether and when a packet sent between
// two nodes is delivered. Pure policy — the actual queuing of delivery
// events lives in net::SimTransport, keeping this model reusable and
// independently testable.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace dataflasks::sim {

/// Link latency distribution. Uniform in [min,max) matches wide-area jitter
/// well enough for protocol studies; constant is useful in tests.
struct LatencyModel {
  SimTime min = 5 * kMillis;
  SimTime max = 50 * kMillis;

  [[nodiscard]] static LatencyModel constant(SimTime value) {
    return {value, value};
  }

  [[nodiscard]] SimTime sample(Rng& rng) const;
};

class NetworkModel {
 public:
  NetworkModel() = default;
  explicit NetworkModel(LatencyModel latency, double loss_probability = 0.0)
      : latency_(latency), loss_probability_(loss_probability) {}

  /// Returns the delivery delay for a packet src -> dst, or nullopt when the
  /// packet is dropped (loss, dead endpoint, or partition).
  [[nodiscard]] std::optional<SimTime> delivery_delay(NodeId src, NodeId dst,
                                                      Rng& rng) const;

  void set_latency(LatencyModel latency) { latency_ = latency; }
  void set_loss_probability(double p) { loss_probability_ = p; }
  [[nodiscard]] double loss_probability() const { return loss_probability_; }

  /// Node lifecycle: packets to or from a down node vanish (no error signal,
  /// exactly like UDP into a crashed host).
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const;

  /// Partition groups: nodes assigned different non-zero groups cannot
  /// communicate. Group 0 (default) talks to everyone up.
  void set_partition_group(NodeId node, std::uint32_t group);
  void clear_partitions();

 private:
  LatencyModel latency_;
  double loss_probability_ = 0.0;
  std::unordered_set<NodeId> down_;
  std::unordered_map<NodeId, std::uint32_t> partition_group_;
};

}  // namespace dataflasks::sim
