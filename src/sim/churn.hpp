// Churn plan generation: deterministic schedules of node failures, leaves,
// joins and restarts. The harness applies the plan by killing/restarting
// protocol nodes; plans are pure data so tests can assert on them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace dataflasks::sim {

enum class ChurnEventKind : std::uint8_t {
  kCrash,    ///< node dies without warning; may restart later with empty state
  kRestart,  ///< previously crashed node comes back (fresh state, same id)
};

struct ChurnEvent {
  SimTime at = 0;
  NodeId node;
  ChurnEventKind kind = ChurnEventKind::kCrash;

  friend bool operator<(const ChurnEvent& a, const ChurnEvent& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.node != b.node) return a.node < b.node;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  }
};

struct ChurnPlanOptions {
  SimTime start = 0;          ///< no events before this time
  SimTime end = 0;            ///< no events at/after this time
  double events_per_second = 0.0;  ///< crash arrivals across the whole system
  SimTime downtime_min = 5 * kSeconds;   ///< crashed node restarts after
  SimTime downtime_max = 60 * kSeconds;  ///< uniform in [min,max)
  bool restart = true;        ///< whether crashed nodes come back
};

/// Samples a churn plan: crash arrivals form a Poisson process over the node
/// population; each crash optionally schedules a restart. A node is never
/// double-crashed while down.
[[nodiscard]] std::vector<ChurnEvent> make_churn_plan(
    const std::vector<NodeId>& nodes, const ChurnPlanOptions& options,
    Rng& rng);

/// Correlated failure: crashes `count` distinct nodes drawn from `candidates`
/// at exactly time `at` (the paper's "significant portion of a slice fails"
/// scenario, §IV-A).
[[nodiscard]] std::vector<ChurnEvent> make_correlated_failure(
    const std::vector<NodeId>& candidates, std::size_t count, SimTime at,
    Rng& rng);

}  // namespace dataflasks::sim
