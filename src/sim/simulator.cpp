#include "sim/simulator.hpp"

#include <utility>

#include "common/ensure.hpp"

namespace dataflasks::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

TimerHandle Simulator::schedule_at(SimTime at, UniqueFunction fn) {
  ensure(at >= now_, "Simulator::schedule_at in the past");
  // The cancellation flag rides in the queue slot itself (no wrapper
  // closure), so a cancellable timer costs one shared flag and nothing else.
  auto alive = std::make_shared<bool>(true);
  queue_.push(at, std::move(fn), alive);
  return TimerHandle(std::move(alive));
}

void Simulator::post_at(SimTime at, UniqueFunction fn) {
  ensure(at >= now_, "Simulator::post_at in the past");
  queue_.push(at, std::move(fn));
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    runtime::EventQueue::Event event = queue_.pop();
    ensure(event.at >= now_, "event queue time went backwards");
    now_ = event.at;
    if (event.runnable()) event.fn();
    ++executed;
  }
  if (queue_.empty() || (!stopped_ && queue_.next_time() > deadline)) {
    // Advance the clock to the deadline so back-to-back run_until calls
    // observe contiguous virtual time.
    now_ = std::max(now_, deadline);
  }
  return executed;
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!stopped_ && !queue_.empty()) {
    runtime::EventQueue::Event event = queue_.pop();
    ensure(event.at >= now_, "event queue time went backwards");
    now_ = event.at;
    if (event.runnable()) event.fn();
    ++executed;
  }
  return executed;
}

}  // namespace dataflasks::sim
