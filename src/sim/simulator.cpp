#include "sim/simulator.hpp"

#include <utility>

#include "common/ensure.hpp"

namespace dataflasks::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

TimerHandle Simulator::schedule_at(SimTime at, UniqueFunction fn) {
  ensure(at >= now_, "Simulator::schedule_at in the past");
  // The cancellation flag rides in the queue slot itself (no wrapper
  // closure), so a cancellable timer costs one shared flag and nothing else.
  auto alive = std::make_shared<bool>(true);
  queue_.push(at, std::move(fn), alive);
  return TimerHandle(std::move(alive));
}

TimerHandle Simulator::schedule_after(SimTime delay, UniqueFunction fn) {
  ensure(delay >= 0, "Simulator::schedule_after negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::post_at(SimTime at, UniqueFunction fn) {
  ensure(at >= now_, "Simulator::post_at in the past");
  queue_.push(at, std::move(fn));
}

void Simulator::post_after(SimTime delay, UniqueFunction fn) {
  ensure(delay >= 0, "Simulator::post_after negative delay");
  queue_.push(now_ + delay, std::move(fn));
}

TimerHandle Simulator::schedule_periodic(SimTime initial_delay, SimTime period,
                                         UniqueFunction fn) {
  ensure(period > 0, "Simulator::schedule_periodic non-positive period");
  auto alive = std::make_shared<bool>(true);

  // Each firing re-schedules the next occurrence while the handle is alive.
  // The tick callable holds only a weak reference to itself — the strong
  // references live in the queued events — so cancelled/drained timers are
  // reclaimed instead of leaking through a shared_ptr cycle. The per-firing
  // closure is a single shared_ptr, which lives inline in the queue slot.
  auto tick = std::make_shared<UniqueFunction>();
  std::weak_ptr<UniqueFunction> weak_tick = tick;
  *tick = [this, alive, period, fn = std::move(fn), weak_tick]() mutable {
    if (!*alive) return;
    fn();
    if (*alive) {
      if (auto next = weak_tick.lock()) {
        queue_.push(now_ + period, [next]() { (*next)(); });
      }
    }
  };
  queue_.push(now_ + initial_delay, [tick]() { (*tick)(); });
  return TimerHandle(std::move(alive));
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    EventQueue::Event event = queue_.pop();
    ensure(event.at >= now_, "event queue time went backwards");
    now_ = event.at;
    if (event.runnable()) event.fn();
    ++executed;
  }
  if (queue_.empty() || (!stopped_ && queue_.next_time() > deadline)) {
    // Advance the clock to the deadline so back-to-back run_until calls
    // observe contiguous virtual time.
    now_ = std::max(now_, deadline);
  }
  return executed;
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!stopped_ && !queue_.empty()) {
    EventQueue::Event event = queue_.pop();
    ensure(event.at >= now_, "event queue time went backwards");
    now_ = event.at;
    if (event.runnable()) event.fn();
    ++executed;
  }
  return executed;
}

}  // namespace dataflasks::sim
