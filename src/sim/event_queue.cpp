#include "sim/event_queue.hpp"

#include <utility>

#include "common/ensure.hpp"

namespace dataflasks::sim {

void EventQueue::push(SimTime at, Callback fn) {
  heap_.push_back(Entry{at, next_seq_++, std::move(fn)});
  sift_up(heap_.size() - 1);
}

SimTime EventQueue::next_time() const {
  ensure(!heap_.empty(), "EventQueue::next_time on empty queue");
  return heap_.front().at;
}

EventQueue::Callback EventQueue::pop() {
  ensure(!heap_.empty(), "EventQueue::pop on empty queue");
  Callback fn = std::move(heap_.front().fn);
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return fn;
}

void EventQueue::clear() {
  heap_.clear();
  next_seq_ = 0;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < n && later(heap_[smallest], heap_[left])) smallest = left;
    if (right < n && later(heap_[smallest], heap_[right])) smallest = right;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace dataflasks::sim
