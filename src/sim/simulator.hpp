// Deterministic discrete-event simulation core. Plays the role Minha [25]
// plays in the paper's evaluation: unmodified protocol code runs over
// virtual time, with thousands of nodes in a single process. One of the two
// runtime::Runtime implementations (the other, runtime::RealTimeRuntime,
// drives the same protocol code over the wall clock).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/unique_function.hpp"
#include "runtime/event_queue.hpp"
#include "runtime/runtime.hpp"

namespace dataflasks::sim {

// The scheduling surface lives in runtime::Runtime; these aliases keep
// simulator-centric call sites (tests, benches) reading naturally.
using runtime::Clock;
using runtime::TimerHandle;

class Simulator final : public runtime::Runtime {
 public:
  explicit Simulator(std::uint64_t seed);

  [[nodiscard]] SimTime now() const override { return now_; }

  /// Master RNG; components should fork() their own streams from it.
  [[nodiscard]] Rng& rng() override { return rng_; }

  /// Schedules `fn` to run at absolute virtual time `at` (>= now).
  TimerHandle schedule_at(SimTime at, UniqueFunction fn) override;

  /// Fire-and-forget variant: no cancellation handle, so no cancellation
  /// flag is allocated. The hot path for in-flight messages — a small
  /// closure goes straight into the event-queue slot, allocation-free.
  void post_at(SimTime at, UniqueFunction fn) override;

  /// Runs until the queue drains or virtual time would exceed `deadline`.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline);

  /// Runs until the queue drains. Returns the number of events executed.
  std::uint64_t run();

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  runtime::EventQueue queue_;
  SimTime now_ = 0;
  Rng rng_;
  bool stopped_ = false;
};

}  // namespace dataflasks::sim
