// Deterministic discrete-event simulation core. Plays the role Minha [25]
// plays in the paper's evaluation: unmodified protocol code runs over
// virtual time, with thousands of nodes in a single process.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/unique_function.hpp"
#include "sim/event_queue.hpp"

namespace dataflasks::sim {

/// Read-only clock interface handed to protocol components so they can
/// timestamp without being able to schedule arbitrary events.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual SimTime now() const = 0;
};

/// Cancellable handle for a scheduled event. Destroying the handle does NOT
/// cancel (fire-and-forget is the common case); call cancel() explicitly.
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel() {
    if (alive_) *alive_ = false;
  }
  [[nodiscard]] bool active() const { return alive_ && *alive_; }

 private:
  friend class Simulator;
  explicit TimerHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Simulator : public Clock {
 public:
  explicit Simulator(std::uint64_t seed);

  [[nodiscard]] SimTime now() const override { return now_; }

  /// Master RNG; components should fork() their own streams from it.
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedules `fn` to run at absolute virtual time `at` (>= now).
  TimerHandle schedule_at(SimTime at, UniqueFunction fn);

  /// Schedules `fn` after a relative delay (>= 0).
  TimerHandle schedule_after(SimTime delay, UniqueFunction fn);

  /// Fire-and-forget variants: no cancellation handle, so no cancellation
  /// flag is allocated. The hot path for in-flight messages — a small
  /// closure goes straight into the event-queue slot, allocation-free.
  void post_at(SimTime at, UniqueFunction fn);
  void post_after(SimTime delay, UniqueFunction fn);

  /// Schedules `fn` every `period` starting at now + initial_delay, until the
  /// returned handle is cancelled.
  TimerHandle schedule_periodic(SimTime initial_delay, SimTime period,
                                UniqueFunction fn);

  /// Runs until the queue drains or virtual time would exceed `deadline`.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline);

  /// Runs until the queue drains. Returns the number of events executed.
  std::uint64_t run();

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  Rng rng_;
  bool stopped_ = false;
};

}  // namespace dataflasks::sim
