#include "sim/network.hpp"

#include "common/ensure.hpp"

namespace dataflasks::sim {

SimTime LatencyModel::sample(Rng& rng) const {
  ensure(min >= 0 && min <= max, "LatencyModel: invalid bounds");
  if (min == max) return min;
  return rng.next_in(min, max);
}

std::optional<SimTime> NetworkModel::delivery_delay(NodeId src, NodeId dst,
                                                    Rng& rng) const {
  if (!node_up(src) || !node_up(dst)) return std::nullopt;

  if (!partition_group_.empty()) {
    const auto src_it = partition_group_.find(src);
    const auto dst_it = partition_group_.find(dst);
    const std::uint32_t src_group =
        src_it == partition_group_.end() ? 0 : src_it->second;
    const std::uint32_t dst_group =
        dst_it == partition_group_.end() ? 0 : dst_it->second;
    if (src_group != dst_group && src_group != 0 && dst_group != 0) {
      return std::nullopt;
    }
    // A node in a named partition cannot reach the default group either:
    // partitions split the network fully.
    if ((src_group == 0) != (dst_group == 0)) return std::nullopt;
  }

  if (loss_probability_ > 0.0 && rng.next_bernoulli(loss_probability_)) {
    return std::nullopt;
  }
  return latency_.sample(rng);
}

void NetworkModel::set_node_up(NodeId node, bool up) {
  if (up) {
    down_.erase(node);
  } else {
    down_.insert(node);
  }
}

bool NetworkModel::node_up(NodeId node) const { return !down_.contains(node); }

void NetworkModel::set_partition_group(NodeId node, std::uint32_t group) {
  if (group == 0) {
    partition_group_.erase(node);
  } else {
    partition_group_[node] = group;
  }
}

void NetworkModel::clear_partitions() { partition_group_.clear(); }

}  // namespace dataflasks::sim
