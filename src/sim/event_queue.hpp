// Priority queue of timestamped events. Ties are broken by insertion
// sequence so simulation runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace dataflasks::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at`. Events scheduled for the same
  /// time fire in insertion order.
  void push(SimTime at, Callback fn);

  /// True when no events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest event's callback. Requires !empty().
  [[nodiscard]] Callback pop();

  void clear();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };

  // Min-heap by (at, seq).
  [[nodiscard]] static bool later(const Entry& a, const Entry& b) {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dataflasks::sim
