// Real network transport: one nonblocking IPv4 UDP socket per process,
// integrated with the RealTimeRuntime's poll step. The peer-address table
// maps NodeIds to sockaddrs; entries come from static configuration
// (add_peer, the bootstrap seeds) and are learned dynamically from incoming
// datagrams (so a client on an ephemeral port receives replies without
// pre-registration, exactly as replicas reply to msg.src).
//
// Semantics match SimTransport deliberately: fire-and-forget sends, drops
// are counted not surfaced, and a handler is invoked synchronously on the
// runtime loop thread for every decoded datagram addressed to it.
#pragma once

#include <cstdint>
#include <netinet/in.h>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/transport.hpp"
#include "runtime/real_time_runtime.hpp"

namespace dataflasks::net {

/// Resolves a host to a dotted-quad IPv4 address: numeric addresses pass
/// through, anything else goes through getaddrinfo (DNS, /etc/hosts — so
/// "localhost" and real hostnames both work in --listen/--peer). Returns
/// nullopt when the name does not resolve to an IPv4 address.
[[nodiscard]] std::optional<std::string> resolve_ipv4(const std::string& host);

class UdpTransport final : public Transport {
 public:
  struct Options {
    /// IPv4 address or resolvable hostname to bind ("0.0.0.0" for all
    /// interfaces).
    std::string bind_host = "127.0.0.1";
    /// 0 binds an ephemeral port (read it back via local_port()).
    std::uint16_t port = 0;
  };

  /// Opens and binds the socket and registers it with the runtime's poll
  /// step. Throws via ensure() on socket/bind failure (misconfiguration is
  /// fatal at boot, unlike runtime drops).
  UdpTransport(runtime::RealTimeRuntime& rt, Options options);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Statically maps `node` to host:port. Learned entries for the same node
  /// are overwritten by later datagrams from that node (fresher address).
  void add_peer(NodeId node, const std::string& host, std::uint16_t port);

  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] bool knows_peer(NodeId node) const {
    return peers_.contains(node);
  }

  void send(Message msg) override;
  void register_handler(NodeId node, Handler handler) override;
  void unregister_handler(NodeId node) override;

  // Accounting, mirroring SimTransport's counters.
  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }
  [[nodiscard]] std::uint64_t total_delivered() const {
    return total_delivered_;
  }
  /// Sends dropped for an unknown peer, send errors, datagrams that failed
  /// frame decoding, and deliveries with no registered handler.
  [[nodiscard]] std::uint64_t total_dropped() const { return total_dropped_; }
  [[nodiscard]] std::uint64_t decode_failures() const {
    return decode_failures_;
  }

 private:
  /// Drains the socket: decodes and dispatches every queued datagram.
  void on_readable();

  runtime::RealTimeRuntime& runtime_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::unordered_map<NodeId, sockaddr_in> peers_;
  std::unordered_map<NodeId, Handler> handlers_;
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t total_dropped_ = 0;
  std::uint64_t decode_failures_ = 0;
};

}  // namespace dataflasks::net
