// Real network transport: one nonblocking IPv4 UDP socket per process,
// integrated with the RealTimeRuntime's poll step. Peer routing goes
// through an AddressBook fed from three sources: static configuration
// (add_peer / resolved seeds, pinned), gossip-learned endpoints
// (learn_endpoint, stamped and authoritative), and datagram source
// addresses (so a client on an ephemeral port receives replies without
// pre-registration). Gossip keeps the table healing under churn exactly
// like the membership does: a node that restarts on a new port re-enters
// routing via its fresher-stamped self-descriptor, no reconfiguration.
//
// Single-seed join: add_seed() probes a bare host:port with a transport-
// level discovery frame (retried until answered); the reply carries the
// node id(s) living at that address, which are pinned and handed to the
// seed listener so the owner can bootstrap its PSS from them.
//
// Semantics match SimTransport deliberately: fire-and-forget sends, drops
// are counted not surfaced, and a handler is invoked synchronously on the
// runtime loop thread for every decoded datagram addressed to it.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address_book.hpp"
#include "net/transport.hpp"
#include "runtime/real_time_runtime.hpp"

namespace dataflasks::net {

/// Resolves a host to a dotted-quad IPv4 address: numeric addresses pass
/// through, anything else goes through getaddrinfo (DNS, /etc/hosts — so
/// "localhost" and real hostnames both work in --listen/--peer). Returns
/// nullopt when the name does not resolve to an IPv4 address.
[[nodiscard]] std::optional<std::string> resolve_ipv4(const std::string& host);

/// Transport-level discovery frames (single-seed join). Handled inside
/// UdpTransport, below protocol dispatch: a probe asks "which node ids
/// live at this address?", the reply names one registered node and carries
/// its advertised endpoint. Allocated above every protocol type range, so
/// they classify as MsgCategory::kOther.
constexpr std::uint16_t kAddrProbe = 0x0600;
constexpr std::uint16_t kAddrProbeReply = 0x0601;

/// Transport-level stats scrape: a kStatsRequest frame is answered (when a
/// stats provider is installed) with a kStatsReply whose payload is the
/// provider's text, truncated to one datagram. The UDP twin of the HTTP
/// /metrics endpoint — reachable with nothing but the cluster transport.
/// The reply is addressed to the requesting frame's src and dispatched to
/// that node's registered handler on the requester side.
constexpr std::uint16_t kStatsRequest = 0x0602;
constexpr std::uint16_t kStatsReply = 0x0603;

class UdpTransport final : public Transport {
 public:
  struct Options {
    /// IPv4 address or resolvable hostname to bind ("0.0.0.0" for all
    /// interfaces).
    std::string bind_host = "127.0.0.1";
    /// 0 binds an ephemeral port (read it back via local_port()).
    std::uint16_t port = 0;
    /// Host gossiped to peers in self-descriptors (multi-homed hosts, or
    /// when binding 0.0.0.0). Empty uses bind_host; a transport bound to
    /// 0.0.0.0 with no advertise_host gossips no endpoint at all.
    std::string advertise_host;
    /// Bound on dynamically learned peer addresses; static peers and
    /// resolved seeds are pinned and excluded from the bound.
    std::size_t max_learned_peers = 1024;
    /// Retry cadence for unanswered seed probes.
    SimTime seed_probe_period = 500 * kMillis;
  };

  /// Invoked once per seed whose probe is answered, with the node id that
  /// lives at the seed address (already pinned by then).
  using SeedListener = std::function<void(NodeId)>;

  /// Opens and binds the socket and registers it with the runtime's poll
  /// step. Throws via ensure() on socket/bind failure (misconfiguration is
  /// fatal at boot, unlike runtime drops).
  UdpTransport(runtime::RealTimeRuntime& rt, Options options);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Statically maps `node` to host:port (pinned: immune to eviction and
  /// to datagram-source overwrites; a fresher gossiped stamp still heals).
  void add_peer(NodeId node, const std::string& host, std::uint16_t port);

  /// Single-seed join: probes host:port until the process there answers
  /// with its node id, then pins the address and fires the seed listener.
  void add_seed(const std::string& host, std::uint16_t port);
  void set_seed_listener(SeedListener listener) {
    seed_listener_ = std::move(listener);
  }

  /// Installs the snapshot renderer answering kStatsRequest frames; unset,
  /// such frames are dropped (counted, not answered).
  using StatsProvider = std::function<std::string()>;
  void set_stats_provider(StatsProvider provider) {
    stats_provider_ = std::move(provider);
  }
  [[nodiscard]] std::size_t pending_seeds() const {
    return pending_seeds_.size();
  }

  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] bool knows_peer(NodeId node) const {
    return book_.contains(node);
  }
  [[nodiscard]] const AddressBook& peers() const { return book_; }

  void send(Message msg) override;
  void register_handler(NodeId node, Handler handler) override;
  void unregister_handler(NodeId node) override;

  [[nodiscard]] std::optional<Endpoint> local_endpoint() const override {
    return local_endpoint_;
  }
  void learn_endpoint(NodeId node, const Endpoint& endpoint) override;

  // Accounting, mirroring SimTransport's counters.
  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }
  [[nodiscard]] std::uint64_t total_delivered() const {
    return total_delivered_;
  }
  /// Sends dropped for an unknown peer, send errors, datagrams that failed
  /// frame decoding, and deliveries with no registered handler.
  [[nodiscard]] std::uint64_t total_dropped() const { return total_dropped_; }
  [[nodiscard]] std::uint64_t decode_failures() const {
    return decode_failures_;
  }

 private:
  /// Drains the socket: decodes and dispatches every queued datagram.
  void on_readable();

  void send_frame_to(const Message& msg, const sockaddr_in& to);
  void send_probe(const sockaddr_in& to);
  void probe_pending_seeds();
  void handle_probe(const Message& msg, const sockaddr_in& from);
  void handle_probe_reply(const Message& msg, const sockaddr_in& from);
  void handle_stats_request(const Message& msg, const sockaddr_in& from);

  runtime::RealTimeRuntime& runtime_;
  Options options_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::optional<Endpoint> local_endpoint_;
  AddressBook book_;
  std::unordered_map<NodeId, Handler> handlers_;
  std::vector<sockaddr_in> pending_seeds_;
  runtime::TimerHandle seed_timer_;
  SeedListener seed_listener_;
  StatsProvider stats_provider_;
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t total_dropped_ = 0;
  std::uint64_t decode_failures_ = 0;
};

}  // namespace dataflasks::net
