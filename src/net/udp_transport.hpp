// Real network transport: one nonblocking IPv4 UDP socket per process,
// integrated with the RealTimeRuntime's poll step. Peer routing goes
// through an AddressBook fed from three sources: static configuration
// (add_peer / resolved seeds, pinned), gossip-learned endpoints
// (learn_endpoint, stamped and authoritative), and datagram source
// addresses (so a client on an ephemeral port receives replies without
// pre-registration). Gossip keeps the table healing under churn exactly
// like the membership does: a node that restarts on a new port re-enters
// routing via its fresher-stamped self-descriptor, no reconfiguration.
//
// Single-seed join: add_seed() probes a bare host:port with a transport-
// level discovery frame (retried until answered); the reply carries the
// node id(s) living at that address, which are pinned and handed to the
// seed listener so the owner can bootstrap its PSS from them.
//
// Semantics match SimTransport deliberately: fire-and-forget sends, drops
// are counted not surfaced, and a handler is invoked synchronously on the
// runtime loop thread for every decoded datagram addressed to it.
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address_book.hpp"
#include "net/transport.hpp"
#include "runtime/real_time_runtime.hpp"

namespace dataflasks::net {

/// Resolves a host to a dotted-quad IPv4 address: numeric addresses pass
/// through, anything else goes through getaddrinfo (DNS, /etc/hosts — so
/// "localhost" and real hostnames both work in --listen/--peer). Returns
/// nullopt when the name does not resolve to an IPv4 address.
[[nodiscard]] std::optional<std::string> resolve_ipv4(const std::string& host);

/// Transport-level discovery frames (single-seed join). Handled inside
/// UdpTransport, below protocol dispatch: a probe asks "which node ids
/// live at this address?", the reply names one registered node and carries
/// its advertised endpoint. Allocated above every protocol type range, so
/// they classify as MsgCategory::kOther.
constexpr std::uint16_t kAddrProbe = 0x0600;
constexpr std::uint16_t kAddrProbeReply = 0x0601;

/// Transport-level stats scrape: a kStatsRequest frame is answered (when a
/// stats provider is installed) with a kStatsReply whose payload is the
/// provider's text, truncated to one datagram. The UDP twin of the HTTP
/// /metrics endpoint — reachable with nothing but the cluster transport.
/// The reply is addressed to the requesting frame's src and dispatched to
/// that node's registered handler on the requester side.
constexpr std::uint16_t kStatsRequest = 0x0602;
constexpr std::uint16_t kStatsReply = 0x0603;

class UdpTransport final : public Transport {
 public:
  struct Options {
    /// IPv4 address or resolvable hostname to bind ("0.0.0.0" for all
    /// interfaces).
    std::string bind_host = "127.0.0.1";
    /// 0 binds an ephemeral port (read it back via local_port()).
    std::uint16_t port = 0;
    /// Host gossiped to peers in self-descriptors (multi-homed hosts, or
    /// when binding 0.0.0.0). Empty uses bind_host; a transport bound to
    /// 0.0.0.0 with no advertise_host gossips no endpoint at all.
    std::string advertise_host;
    /// TCP stream port stamped into the advertised endpoint (0 = none).
    /// The stream listener binds before this transport is constructed, so
    /// gossip and discovery probes carry the resolved port from the start.
    std::uint16_t advertise_stream_port = 0;
    /// Bound on dynamically learned peer addresses; static peers and
    /// resolved seeds are pinned and excluded from the bound.
    std::size_t max_learned_peers = 1024;
    /// Retry cadence for unanswered seed probes.
    SimTime seed_probe_period = 500 * kMillis;
    /// Sets SO_REUSEPORT before bind, so N shard transports share one
    /// addr:port and the kernel spreads datagrams across them by source
    /// 4-tuple hash — the sharded server's ingress partitioning.
    bool reuse_port = false;
    /// Batched datagram I/O: recvmmsg on the drain path and sendmmsg with a
    /// same-loop-pass egress buffer, so per-packet syscall overhead stops
    /// dominating the hot path. Single-syscall fallback off-Linux (and when
    /// disabled here, which tests use to pin down behavior differences).
    bool batch_io = true;
  };

  /// Invoked once per seed whose probe is answered, with the node id that
  /// lives at the seed address (already pinned by then).
  using SeedListener = std::function<void(NodeId)>;

  /// Opens and binds the socket and registers it with the runtime's poll
  /// step. Throws via ensure() on socket/bind failure (misconfiguration is
  /// fatal at boot, unlike runtime drops).
  UdpTransport(runtime::RealTimeRuntime& rt, Options options);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Statically maps `node` to host:port (pinned: immune to eviction and
  /// to datagram-source overwrites; a fresher gossiped stamp still heals).
  void add_peer(NodeId node, const std::string& host, std::uint16_t port);

  /// Single-seed join: probes host:port until the process there answers
  /// with its node id, then pins the address and fires the seed listener.
  void add_seed(const std::string& host, std::uint16_t port);
  void set_seed_listener(SeedListener listener) {
    seed_listener_ = std::move(listener);
  }

  /// Installs the snapshot renderer answering kStatsRequest frames; unset,
  /// such frames are dropped (counted, not answered) unless a forwarder is
  /// installed.
  using StatsProvider = std::function<std::string()>;
  void set_stats_provider(StatsProvider provider) {
    stats_provider_ = std::move(provider);
  }

  /// Shard plumbing: a worker transport has no stats provider of its own;
  /// the forwarder hands the request (plus requester address) to the shard
  /// group, which mails it to shard 0 for rendering. Consulted only when no
  /// provider is installed.
  using StatsForwarder = std::function<void(const Message&, const sockaddr_in&)>;
  void set_stats_forwarder(StatsForwarder forwarder) {
    stats_forwarder_ = std::move(forwarder);
  }

  /// Renders via the installed provider and answers to `from` out of this
  /// socket. Public so shard 0 can answer a scrape that arrived on a
  /// sibling shard's socket (with SO_REUSEPORT every socket shares the
  /// same source address, so the requester cannot tell the difference).
  void answer_stats_request(const Message& msg, const sockaddr_in& from) {
    handle_stats_request(msg, from);
  }
  [[nodiscard]] std::size_t pending_seeds() const {
    return pending_seeds_.size();
  }

  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] bool knows_peer(NodeId node) const {
    return book_.contains(node);
  }
  [[nodiscard]] const AddressBook& peers() const { return book_; }
  /// Mutable address table: the DualTransport resolves stream dial
  /// addresses from it and installs the eviction listener that closes an
  /// evicted peer's cached stream connection.
  [[nodiscard]] AddressBook& book() { return book_; }

  /// Directed discovery probe to an already-known peer (clients use it to
  /// learn a server's advertised endpoint — including its stream port —
  /// without joining gossip). The answer is adopted via learn_endpoint;
  /// unknown peers are a no-op.
  void probe_peer(NodeId node);

  void send(Message msg) override;

  /// Sends to an explicit socket address, bypassing the AddressBook. The
  /// shard router uses it for addresses carried in slice snapshots and for
  /// client replies from executor shards (the client's address was observed
  /// on the ingress shard's socket, not this one). Counted like send().
  void send_to(const Message& msg, const sockaddr_in& to);

  /// Feeds a datagram-source observation into this transport's book, as if
  /// the datagram had arrived on this socket. Owner-thread-only like every
  /// other method; the shard router mails it ahead of forwarded messages so
  /// shard 0 can route replies to clients seen on worker sockets.
  void observe_peer(NodeId node, const sockaddr_in& from) {
    book_.observe(node, from);
  }

  void register_handler(NodeId node, Handler handler) override;
  void unregister_handler(NodeId node) override;

  [[nodiscard]] std::optional<Endpoint> local_endpoint() const override {
    return local_endpoint_;
  }
  void learn_endpoint(NodeId node, const Endpoint& endpoint) override;

  // Accounting, mirroring SimTransport's counters. Written only on the
  // owner thread; atomic so shard 0's metrics render may read every shard's
  // totals without synchronizing the loops.
  [[nodiscard]] std::uint64_t total_sent() const {
    return total_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_delivered() const {
    return total_delivered_.load(std::memory_order_relaxed);
  }
  /// Sends dropped for an unknown peer, send errors, datagrams that failed
  /// frame decoding, and deliveries with no registered handler.
  [[nodiscard]] std::uint64_t total_dropped() const {
    return total_dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t decode_failures() const {
    return decode_failures_.load(std::memory_order_relaxed);
  }
  /// Datagrams that traveled inside a batched syscall (0 when batch_io is
  /// off or unsupported) — observability for the mmsg hot path.
  [[nodiscard]] std::uint64_t batched_recv() const {
    return batched_recv_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t batched_send() const {
    return batched_send_.load(std::memory_order_relaxed);
  }

 private:
  /// Drains the socket: decodes and dispatches every queued datagram.
  void on_readable();
  /// Decodes one raw datagram and routes it (discovery frames, handler
  /// dispatch) — shared by the single-syscall and recvmmsg drain paths.
  void process_datagram(ByteView datagram, const sockaddr_in& from);

  void send_frame_to(const Message& msg, const sockaddr_in& to);
  void enqueue_send(Payload frame, const sockaddr_in& to);
  void flush_pending_sends();
  void send_probe(const sockaddr_in& to);
  void probe_pending_seeds();
  void handle_probe(const Message& msg, const sockaddr_in& from);
  void handle_probe_reply(const Message& msg, const sockaddr_in& from);
  void handle_stats_request(const Message& msg, const sockaddr_in& from);

  /// Datagrams per batched syscall. Receive buffers are a member (one
  /// ~61 KB buffer per slot would not fit on the stack).
  static constexpr std::size_t kIoBatch = 16;

  runtime::RealTimeRuntime& runtime_;
  Options options_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::optional<Endpoint> local_endpoint_;
  AddressBook book_;
  std::unordered_map<NodeId, Handler> handlers_;
  std::vector<sockaddr_in> pending_seeds_;
  runtime::TimerHandle seed_timer_;
  SeedListener seed_listener_;
  StatsProvider stats_provider_;
  StatsForwarder stats_forwarder_;

  struct PendingSend {
    Payload frame;  ///< keeps the encoded bytes alive until the syscall
    sockaddr_in to;
  };
  std::vector<PendingSend> pending_sends_;
  runtime::TimerHandle flush_timer_;
  std::vector<std::uint8_t> recv_buffers_;  ///< kIoBatch slots, batch_io only

  std::atomic<std::uint64_t> total_sent_{0};
  std::atomic<std::uint64_t> total_delivered_{0};
  std::atomic<std::uint64_t> total_dropped_{0};
  std::atomic<std::uint64_t> decode_failures_{0};
  std::atomic<std::uint64_t> batched_recv_{0};
  std::atomic<std::uint64_t> batched_send_{0};
};

}  // namespace dataflasks::net
