// Datagram framing for the real (UDP) transport: one net::Message per
// datagram. The frame wraps the exact Writer/Reader wire encodings the
// protocols already produce (core/messages.cpp and friends), adding the
// envelope fields the simulator carried out-of-band — src, dst, type — plus
// a magic/version tag and an explicit payload length so truncated,
// oversized and garbage datagrams are rejected before any protocol decoder
// runs.
//
// Layout (little-endian, matching common/serialize.hpp):
//   u32 magic      "DFK1" — rejects stray traffic on the port
//   u64 src        sending NodeId
//   u64 dst        destination NodeId
//   u16 type       protocol message type tag
//   u32 len        payload byte count; must equal exactly what follows
//   u8[len]        protocol payload (the existing codec encodings)
#pragma once

#include <cstdint>
#include <optional>

#include "net/message.hpp"

namespace dataflasks::net {

/// 'D' 'F' 'K' '1' read little-endian.
constexpr std::uint32_t kFrameMagic = 0x314B4644;

constexpr std::size_t kFrameHeaderSize =
    sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t) + sizeof(std::uint16_t) +
    sizeof(std::uint32_t);

/// Largest payload a frame may carry: comfortably inside the 65,507-byte
/// UDP maximum while leaving room for the header. Oversized messages are
/// dropped at send time (fire-and-forget semantics, counted by the
/// transport) and rejected at decode time (a length field this large is
/// garbage or an attack, not a message).
constexpr std::size_t kMaxFramePayload = 60 * 1024;

/// Encodes `msg` into a single contiguous datagram buffer (one allocation).
/// Requires msg.payload.size() <= kMaxFramePayload.
[[nodiscard]] Payload encode_frame(const Message& msg);

/// Decodes one datagram. Returns nullopt for: short/truncated input, bad
/// magic, a length field disagreeing with the actual datagram size
/// (truncation or trailing garbage), or an oversized length. The returned
/// Message owns a copy of the payload bytes (the caller's recv buffer is
/// reused for the next datagram).
[[nodiscard]] std::optional<Message> decode_frame(ByteView datagram);

}  // namespace dataflasks::net
