#include "net/message.hpp"

namespace dataflasks::net {

MsgCategory category_of(std::uint16_t type) {
  if (type >= kBaselineTypeBase) return MsgCategory::kBaseline;
  if (type >= kAntiEntropyTypeBase) return MsgCategory::kAntiEntropy;
  if (type >= kRequestTypeBase) return MsgCategory::kRequest;
  if (type >= kSlicingTypeBase) return MsgCategory::kSlicing;
  if (type >= kPssTypeBase) return MsgCategory::kPeerSampling;
  return MsgCategory::kOther;
}

const char* to_string(MsgCategory category) {
  switch (category) {
    case MsgCategory::kPeerSampling: return "peer_sampling";
    case MsgCategory::kSlicing: return "slicing";
    case MsgCategory::kRequest: return "request";
    case MsgCategory::kAntiEntropy: return "anti_entropy";
    case MsgCategory::kBaseline: return "baseline";
    case MsgCategory::kOther: return "other";
  }
  return "?";
}

}  // namespace dataflasks::net
