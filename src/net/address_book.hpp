// Peer-address table for the real (UDP) transport: NodeId -> sockaddr with
// provenance. Three sources feed it, in decreasing authority per event:
//
//   pin()     static configuration (--peer flags, resolved seeds). Pinned
//             entries are never evicted and never clobbered by mere
//             datagram source addresses — a stale or spoofed-looking
//             source must not break a configured route.
//   learn()   gossip-learned endpoints (PSS descriptors, slice adverts,
//             discovery probes). Stamped by the owning node at boot, so a
//             fresher stamp updates even a pinned entry: the node itself
//             is the authority on where it now lives.
//   observe() datagram source addresses. Weakest: inserts unknown senders
//             (ephemeral-port clients need replies) and refreshes entries
//             no stronger source has claimed, but never reroutes pinned or
//             gossip-stamped ones — a stray datagram must not displace an
//             address only a fresher stamp is entitled to change.
//
// Learned (unpinned) entries are bounded: beyond `max_learned` the
// least-recently-refreshed one is evicted, so a parade of ephemeral-port
// clients cannot grow the table for the life of the process.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/types.hpp"
#include "common/unique_function.hpp"

namespace dataflasks::net {

/// Converts between the gossip representation (host byte order) and the
/// sockaddr the socket layer wants (network byte order).
[[nodiscard]] sockaddr_in to_sockaddr(const Endpoint& endpoint);
[[nodiscard]] Endpoint endpoint_of(const sockaddr_in& addr,
                                   std::uint64_t stamp = 0);

class AddressBook {
 public:
  struct Options {
    /// Bound on learned (unpinned) entries; pinned entries don't count.
    std::size_t max_learned = 1024;
  };

  AddressBook();
  explicit AddressBook(Options options);

  /// Statically maps `node`, immune to eviction and to observe().
  void pin(NodeId node, const sockaddr_in& addr);

  /// Gossip-learned, stamped address. Adopted when the stamp is strictly
  /// fresher than the entry's (pinned included); inserts unknown nodes.
  /// Returns true when the mapping changed.
  bool learn(NodeId node, const Endpoint& endpoint);

  /// Datagram source address: inserts unknown senders and refreshes
  /// unpinned, never-stamped entries; pinned or gossip-stamped entries
  /// only get their liveness touched.
  void observe(NodeId node, const sockaddr_in& from);

  /// Current route for `node`; nullptr when unknown. Invalidated by any
  /// mutating call.
  [[nodiscard]] const sockaddr_in* lookup(NodeId node) const;

  [[nodiscard]] bool contains(NodeId node) const {
    return entries_.contains(node);
  }
  [[nodiscard]] bool pinned(NodeId node) const;
  /// Freshness stamp of the entry (0 when absent or never stamped).
  [[nodiscard]] std::uint64_t stamp_of(NodeId node) const;
  /// UDP port (host order) the entry routes to; 0 when absent.
  [[nodiscard]] std::uint16_t port_of(NodeId node) const;
  /// Gossip-learned TCP stream port (host order); 0 when the peer is
  /// UDP-only or unknown.
  [[nodiscard]] std::uint16_t stream_port_of(NodeId node) const;
  /// TCP dial address for `node`: the entry's IP with its stream port.
  /// nullopt when the peer is unknown or advertises no stream port.
  [[nodiscard]] std::optional<sockaddr_in> stream_addr_of(NodeId node) const;

  /// Called with the NodeId of every learned entry dropped by LRU eviction,
  /// so layers caching per-peer resources (stream connections) release them
  /// instead of leaking the fd until process exit.
  void set_evict_listener(MoveOnlyFunction<void(NodeId)> listener) {
    evict_listener_ = std::move(listener);
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t learned_count() const {
    return entries_.size() - pinned_count_;
  }

 private:
  struct Entry {
    sockaddr_in addr{};
    std::uint64_t stamp = 0;
    std::uint16_t stream_port = 0;  ///< gossiped TCP port, 0 = UDP-only
    bool pinned = false;
    std::uint64_t touched = 0;  ///< recency, for LRU eviction of learned
  };

  Entry& upsert(NodeId node);
  void touch(Entry& entry) { entry.touched = ++clock_; }
  /// Drops the least-recently-touched learned entry while over the bound.
  /// A linear scan, so inserting an unknown sender costs O(size) once the
  /// table is full — bounded by max_learned, and only paid on the first
  /// datagram from each new source, not on refreshes.
  void evict_excess_learned();

  Options options_;
  std::unordered_map<NodeId, Entry> entries_;
  std::size_t pinned_count_ = 0;
  std::uint64_t clock_ = 0;
  MoveOnlyFunction<void(NodeId)> evict_listener_;
};

}  // namespace dataflasks::net
