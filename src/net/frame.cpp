#include "net/frame.hpp"

#include "common/ensure.hpp"
#include "common/serialize.hpp"

namespace dataflasks::net {

Payload encode_frame(const Message& msg) {
  ensure(msg.payload.size() <= kMaxFramePayload,
         "encode_frame: payload exceeds datagram limit");
  Writer w(kFrameHeaderSize + msg.payload.size());
  w.u32(kFrameMagic);
  w.u64(msg.src.value);
  w.u64(msg.dst.value);
  w.u16(msg.type);
  w.u32(static_cast<std::uint32_t>(msg.payload.size()));
  // Raw append (not Writer::bytes): the length prefix above is the frame's
  // own, so the payload bytes follow it directly.
  if (msg.payload.size() > 0) {
    w.raw(msg.payload);
  }
  return w.take_payload();
}

std::optional<Message> decode_frame(ByteView datagram) {
  if (datagram.size() < kFrameHeaderSize) return std::nullopt;
  Reader r(datagram);
  if (r.u32() != kFrameMagic) return std::nullopt;
  Message msg;
  msg.src = r.node_id();
  msg.dst = r.node_id();
  msg.type = r.u16();
  const std::uint32_t len = r.u32();
  if (!r.ok()) return std::nullopt;
  if (len > kMaxFramePayload) return std::nullopt;
  // The datagram must contain exactly the declared payload: fewer bytes is
  // truncation, more is trailing garbage; both are rejected.
  if (r.remaining() != len) return std::nullopt;
  if (len > 0) {
    msg.payload = Payload::copy_of(
        ByteView(datagram.data() + kFrameHeaderSize, len));
  }
  return msg;
}

}  // namespace dataflasks::net
