// Length-prefixed framing for the TCP stream transport. A stream carries a
// back-to-back sequence of frames, each wrapping one net::Message with the
// same envelope fields the UDP frame carries — src, dst, type — plus a
// distinct magic so a datagram accidentally replayed into a stream (or a
// stray client speaking the wrong protocol) is rejected immediately.
//
// Layout (little-endian, identical shape to net/frame.hpp):
//   u32 magic      "DFS1" — stream framing, not the datagram "DFK1"
//   u64 src        sending NodeId
//   u64 dst        destination NodeId
//   u16 type       protocol message type tag
//   u32 len        payload byte count; up to kMaxStreamPayload
//   u8[len]        protocol payload (the existing codec encodings)
//
// Unlike the datagram path, a stream delivers arbitrary byte windows:
// StreamFrameDecoder reassembles frames across partial reads, buffering the
// payload directly into a Payload-backed Writer so a 1 MiB value costs one
// allocation and one copy off the socket, never a compaction pass.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/serialize.hpp"
#include "net/message.hpp"

namespace dataflasks::net {

/// 'D' 'F' 'S' '1' read little-endian.
constexpr std::uint32_t kStreamMagic = 0x31534644;

/// Same field set as the datagram frame header: 26 bytes.
constexpr std::size_t kStreamHeaderSize =
    sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t) + sizeof(std::uint16_t) +
    sizeof(std::uint32_t);

/// Largest payload a stream frame may carry. Bounds what one malicious or
/// corrupt length field can make a receiver buffer; 16 MiB comfortably fits
/// the big-value and state-transfer-page workloads streams exist for.
constexpr std::size_t kMaxStreamPayload = 16 * 1024 * 1024;

/// Encodes the 26-byte frame header for `msg` (length field =
/// msg.payload.size()). The connection writes the payload bytes after it
/// from the message's own refcounted buffer, so a large value is never
/// copied into a contiguous frame.
[[nodiscard]] Payload encode_stream_header(const Message& msg);

/// Encodes header + payload into one contiguous buffer. Test/fixture path;
/// the connection hot path uses encode_stream_header + the payload view.
[[nodiscard]] Payload encode_stream_frame(const Message& msg);

/// Incremental frame reassembler. feed() accepts whatever byte window the
/// socket produced; poll() yields completed messages in order. A malformed
/// header (bad magic, oversized length) poisons the decoder — framing is
/// unrecoverable once the byte stream desynchronizes, so the owning
/// connection must close.
class StreamFrameDecoder {
 public:
  /// Consumes `bytes`. No-op once poisoned.
  void feed(ByteView bytes);

  /// Next fully reassembled message, if any.
  [[nodiscard]] std::optional<Message> poll();

  /// True once a malformed header was seen; feed() stops consuming.
  [[nodiscard]] bool failed() const { return failed_; }

  /// Bytes of the in-progress frame buffered so far (tests/metrics).
  [[nodiscard]] std::size_t partial_bytes() const {
    return header_have_ + payload_.size();
  }

 private:
  bool parse_header();

  std::uint8_t header_[kStreamHeaderSize]{};
  std::size_t header_have_ = 0;

  // Set once a header parses; payload_ accumulates until payload_want_.
  bool in_payload_ = false;
  Message pending_{};
  std::size_t payload_want_ = 0;
  Writer payload_;

  std::deque<Message> ready_;
  bool failed_ = false;
};

}  // namespace dataflasks::net
