#include "net/stream/dual_transport.hpp"

#include <utility>

#include "net/frame.hpp"
#include "net/stream/stream_frame.hpp"

namespace dataflasks::net {

namespace {
constexpr SimTime kTickPeriod = 250 * kMillis;
}  // namespace

DualTransport::DualTransport(runtime::RealTimeRuntime& rt, UdpTransport& udp,
                             StreamTransport* stream, Options options)
    : rt_(rt), udp_(udp), stream_(stream), options_(std::move(options)) {
  if (stream_ == nullptr) return;
  stream_->set_receiver([this](const Message& msg) { deliver(msg); });
  stream_->set_peer_up_listener([this](NodeId node) { on_peer_up(node); });
  stream_->set_peer_down_listener(
      [this](NodeId node) { on_peer_down(node); });
  // Bugfix ride-along: when the AddressBook LRU-evicts a learned peer, the
  // cached stream connection to it must close too, or the fd leaks for the
  // life of the process.
  udp_.book().set_evict_listener(
      [this](NodeId node) { stream_->close_peer(node); });
  tick_timer_ =
      rt_.schedule_periodic(kTickPeriod, kTickPeriod, [this] { tick(); });
}

DualTransport::~DualTransport() {
  tick_timer_.cancel();
  if (stream_ != nullptr) {
    udp_.book().set_evict_listener({});
    stream_->set_receiver({});
    stream_->set_peer_up_listener({});
    stream_->set_peer_down_listener({});
  }
}

void DualTransport::register_handler(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
  udp_.register_handler(node,
                        [this](const Message& msg) { deliver(msg); });
}

void DualTransport::unregister_handler(NodeId node) {
  handlers_.erase(node);
  udp_.unregister_handler(node);
}

void DualTransport::deliver(const Message& msg) {
  const auto it = handlers_.find(msg.dst);
  if (it != handlers_.end()) it->second(msg);
}

bool DualTransport::prefers_stream(std::uint16_t type) {
  return options_.prefer_stream && options_.prefer_stream(type);
}

std::size_t DualTransport::max_payload(NodeId node) const {
  if (stream_ != nullptr && stream_->connected_to(node)) {
    return kMaxStreamPayload;
  }
  return kMaxFramePayload;
}

void DualTransport::drop_oversized() {
  dropped_no_stream_.fetch_add(1, std::memory_order_relaxed);
}

void DualTransport::send(Message msg) {
  const bool oversized = msg.payload.size() > kMaxFramePayload;
  if (stream_ == nullptr) {
    if (oversized) {
      drop_oversized();
      return;
    }
    udp_.send(std::move(msg));
    return;
  }

  const bool want = oversized || prefers_stream(msg.type);
  if (want && stream_->send(msg)) return;  // routed stream (open or dialing)

  if (!want) {
    // Maintenance and small traffic stays on UDP — except for peers we
    // only know through a stream (a client that dialed us has no datagram
    // source on record): their replies ride the connection back.
    if (udp_.knows_peer(msg.dst)) {
      udp_.send(std::move(msg));
      return;
    }
    if (stream_->send(msg)) return;
    udp_.send(std::move(msg));  // counts the unknown-peer drop
    return;
  }

  // Wants a stream, none routed. Dial if gossip advertised a stream port
  // and the peer is not in dial backoff; hold the message meanwhile.
  const auto addr = udp_.book().stream_addr_of(msg.dst);
  const auto backoff = backoff_until_.find(msg.dst);
  const bool backed_off =
      backoff != backoff_until_.end() && rt_.now() < backoff->second;
  if (addr.has_value() && !backed_off) {
    const NodeId dst = msg.dst;
    // Hold first: a synchronously failed dial spills it back out.
    hold(std::move(msg));
    stream_->dial(dst, *addr);
    return;
  }
  if (oversized) {
    // No stream path right now. Discovery (a probe or gossip round) may
    // still be in flight, so park it until the TTL decides.
    hold(std::move(msg));
    return;
  }
  udp_.send(std::move(msg));  // transparent fallback: peer is UDP-only
}

void DualTransport::hold(Message msg) {
  const std::size_t bytes = msg.payload.size();
  if (held_bytes_ + bytes > options_.max_pending_bytes) {
    if (bytes > kMaxFramePayload) {
      drop_oversized();
    } else {
      udp_.send(std::move(msg));
    }
    return;
  }
  held_bytes_ += bytes;
  held_[msg.dst].push_back(Held{std::move(msg), rt_.now()});
}

void DualTransport::on_peer_up(NodeId node) {
  backoff_until_.erase(node);
  const auto it = held_.find(node);
  if (it == held_.end()) return;
  std::deque<Held> queued = std::move(it->second);
  held_.erase(it);
  for (Held& h : queued) {
    held_bytes_ -= h.msg.payload.size();
    if (!stream_->send(h.msg)) {
      // The connection died while draining; spill what fits back to UDP.
      if (h.msg.payload.size() <= kMaxFramePayload) {
        udp_.send(std::move(h.msg));
      } else {
        drop_oversized();
      }
    }
  }
}

void DualTransport::on_peer_down(NodeId node) {
  backoff_until_[node] = rt_.now() + options_.dial_backoff;
  spill_to_udp(node);
}

void DualTransport::spill_to_udp(NodeId node) {
  const auto it = held_.find(node);
  if (it == held_.end()) return;
  std::deque<Held> queued = std::move(it->second);
  held_.erase(it);
  for (Held& h : queued) {
    held_bytes_ -= h.msg.payload.size();
    if (h.msg.payload.size() <= kMaxFramePayload) {
      udp_.send(std::move(h.msg));
    } else {
      drop_oversized();
    }
  }
}

void DualTransport::tick() {
  const SimTime now = rt_.now();
  for (auto it = held_.begin(); it != held_.end();) {
    const NodeId node = it->first;
    std::deque<Held>& queue = it->second;
    // Expire messages that waited past the TTL: UDP when they fit.
    while (!queue.empty() &&
           now - queue.front().enqueued > options_.pending_ttl) {
      Held h = std::move(queue.front());
      queue.pop_front();
      held_bytes_ -= h.msg.payload.size();
      if (h.msg.payload.size() <= kMaxFramePayload) {
        udp_.send(std::move(h.msg));
      } else {
        drop_oversized();
      }
    }
    if (queue.empty()) {
      it = held_.erase(it);
      continue;
    }
    // Still waiting: re-dial once discovery lands or backoff expires.
    if (!stream_->connected_to(node) && !stream_->dialing(node)) {
      const auto backoff = backoff_until_.find(node);
      const bool backed_off =
          backoff != backoff_until_.end() && now < backoff->second;
      const auto addr = udp_.book().stream_addr_of(node);
      if (addr.has_value() && !backed_off) stream_->dial(node, *addr);
    }
    ++it;
  }
  // Drop stale backoff entries so the map doesn't grow with peer churn.
  for (auto it = backoff_until_.begin(); it != backoff_until_.end();) {
    it = now >= it->second ? backoff_until_.erase(it) : std::next(it);
  }
}

}  // namespace dataflasks::net
