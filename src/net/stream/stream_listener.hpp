// Accepting half of the stream transport: a nonblocking listen socket on
// the runtime poll loop. Mirrors the Dragonfly listener/connection split —
// the listener only accepts and hands raw fds to its owner; per-connection
// state lives entirely in StreamConnection.
#pragma once

#include <netinet/in.h>

#include <cstdint>

#include "common/unique_function.hpp"
#include "runtime/real_time_runtime.hpp"

namespace dataflasks::net {

class StreamListener {
 public:
  using AcceptHandler = MoveOnlyFunction<void(int fd)>;

  /// Binds and listens on `ip`/`port` (host byte order; port 0 picks an
  /// ephemeral port). `on_accept` receives each accepted, nonblocking,
  /// close-on-exec fd; ownership transfers to the handler.
  StreamListener(runtime::RealTimeRuntime& rt, std::uint32_t ip,
                 std::uint16_t port, AcceptHandler on_accept);
  StreamListener(const StreamListener&) = delete;
  StreamListener& operator=(const StreamListener&) = delete;
  ~StreamListener();

  /// False when bind/listen failed; port() is 0 then.
  [[nodiscard]] bool listening() const { return fd_ >= 0; }
  /// The bound port (resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }

 private:
  void on_readable();

  runtime::RealTimeRuntime& rt_;
  AcceptHandler on_accept_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace dataflasks::net
