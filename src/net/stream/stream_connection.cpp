#include "net/stream/stream_connection.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/ensure.hpp"

namespace dataflasks::net {

namespace {
constexpr std::size_t kReadChunk = 64 * 1024;

void bump(std::atomic<std::uint64_t>& counter, std::uint64_t by = 1) {
  counter.fetch_add(by, std::memory_order_relaxed);
}

void raise_watermark(std::atomic<std::uint64_t>& hwm, std::uint64_t value) {
  std::uint64_t seen = hwm.load(std::memory_order_relaxed);
  while (value > seen &&
         !hwm.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}
}  // namespace

StreamConnection::StreamConnection(runtime::RealTimeRuntime& rt,
                                   Events& events, Stats& stats,
                                   const Limits& limits, int fd)
    : rt_(rt), events_(events), stats_(stats), limits_(limits), fd_(fd) {
  ensure(fd_ >= 0, "StreamConnection: bad accepted fd");
  state_ = State::kOpen;
  ever_open_ = true;
  last_activity_ = rt_.now();
  watch_read();
}

StreamConnection::StreamConnection(runtime::RealTimeRuntime& rt,
                                   Events& events, Stats& stats,
                                   const Limits& limits, NodeId peer,
                                   const sockaddr_in& addr)
    : rt_(rt),
      events_(events),
      stats_(stats),
      limits_(limits),
      peer_(peer),
      outbound_(true) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    state_ = State::kClosed;  // owner observes via closed(), no callback
    return;
  }
  const int rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc == 0) {
    state_ = State::kOpen;
    ever_open_ = true;
    last_activity_ = rt_.now();
    watch_read();
    return;
  }
  if (errno != EINPROGRESS) {
    ::close(fd_);
    fd_ = -1;
    state_ = State::kClosed;
    return;
  }
  state_ = State::kConnecting;
  last_activity_ = rt_.now();
  // The handshake resolves as a writability event (POLLOUT on success,
  // POLLERR/POLLHUP on refusal); SO_ERROR disambiguates.
  rt_.watch_fd_writable(fd_, [this] { on_writable(); });
  write_watched_ = true;
  arm_connect_timeout();
}

StreamConnection::~StreamConnection() {
  connect_timer_.cancel();
  if (fd_ >= 0) {
    rt_.unwatch_fd(fd_);
    rt_.unwatch_fd_writable(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void StreamConnection::arm_connect_timeout() {
  connect_timer_ = rt_.schedule_after(limits_.connect_timeout, [this] {
    if (state_ == State::kConnecting) close();
  });
}

void StreamConnection::watch_read() {
  rt_.watch_fd(fd_, [this] { on_readable(); });
}

void StreamConnection::close() {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  connect_timer_.cancel();
  if (fd_ >= 0) {
    rt_.unwatch_fd(fd_);
    rt_.unwatch_fd_writable(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  egress_.clear();
  egress_bytes_ = 0;
  head_offset_ = 0;
  // Last action: the owner may mark this connection for destruction.
  events_.on_stream_closed(*this);
}

bool StreamConnection::send(const Message& msg) {
  if (state_ == State::kClosed) return false;
  if (msg.payload.size() > kMaxStreamPayload) return false;
  const std::size_t frame_bytes = kStreamHeaderSize + msg.payload.size();
  if (egress_bytes_ + frame_bytes > limits_.max_egress_bytes) {
    // The peer is not draining: buffering further would hide the stall and
    // grow without bound. Close; the caller falls back or drops, exactly
    // like a congested datagram path.
    bump(stats_.egress_overflows);
    close();
    return false;
  }
  enqueue(encode_stream_header(msg));
  if (msg.payload.size() > 0) enqueue(msg.payload);
  bump(stats_.frames_out);
  if (state_ == State::kOpen) flush();
  return state_ != State::kClosed;
}

void StreamConnection::enqueue(Payload bytes) {
  egress_bytes_ += bytes.size();
  raise_watermark(stats_.egress_queue_hwm, egress_bytes_);
  egress_.push_back(std::move(bytes));
}

void StreamConnection::flush() {
  while (!egress_.empty()) {
    const Payload& head = egress_.front();
    const std::size_t left = head.size() - head_offset_;
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE,
    // not kill the process.
    const ssize_t n = ::send(fd_, head.data() + head_offset_, left,
                             MSG_NOSIGNAL);
    if (n > 0) {
      bump(stats_.bytes_out, static_cast<std::uint64_t>(n));
      egress_bytes_ -= static_cast<std::size_t>(n);
      head_offset_ += static_cast<std::size_t>(n);
      last_activity_ = rt_.now();
      if (head_offset_ == head.size()) {
        egress_.pop_front();
        head_offset_ = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close();
    return;
  }
  if (egress_.empty()) {
    if (write_watched_) {
      rt_.unwatch_fd_writable(fd_);
      write_watched_ = false;
    }
  } else if (!write_watched_) {
    rt_.watch_fd_writable(fd_, [this] { on_writable(); });
    write_watched_ = true;
  }
}

void StreamConnection::on_writable() {
  if (state_ == State::kConnecting) {
    finish_connect();
    return;
  }
  if (state_ == State::kOpen) flush();
}

void StreamConnection::finish_connect() {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    close();
    return;
  }
  became_open();
}

void StreamConnection::became_open() {
  state_ = State::kOpen;
  ever_open_ = true;
  connect_timer_.cancel();
  last_activity_ = rt_.now();
  watch_read();
  events_.on_stream_open(*this);
  if (state_ != State::kOpen) return;  // the owner may have closed us
  // Frames queued while the handshake was in flight go out now; flush also
  // rights the writable watch (keeps it while data remains, drops it
  // otherwise).
  flush();
}

void StreamConnection::on_readable() {
  std::uint8_t buf[kReadChunk];
  while (state_ == State::kOpen) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      bump(stats_.bytes_in, static_cast<std::uint64_t>(n));
      last_activity_ = rt_.now();
      decoder_.feed(ByteView(buf, static_cast<std::size_t>(n)));
      if (decoder_.failed()) {
        // Framing desynchronized (bad magic / oversized length): nothing
        // after this point can be trusted, so the stream dies.
        bump(stats_.reassembly_errors);
        close();
        return;
      }
      while (auto msg = decoder_.poll()) {
        bump(stats_.frames_in);
        if (!peer_.valid()) peer_ = msg->src;
        events_.on_stream_message(*this, std::move(*msg));
        // The handler may have replied (fine) or closed us (stop).
        if (state_ != State::kOpen) return;
      }
      continue;
    }
    if (n == 0) {  // orderly shutdown by the peer
      close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close();
    return;
  }
}

}  // namespace dataflasks::net
