// One TCP stream to one peer: the per-connection half of the Dragonfly-style
// listener/connection split. A StreamConnection owns its fd, the incremental
// frame decoder for the read side, and a bounded egress queue of Payload
// views for the write side — a queued 1 MiB value is a refcount bump on the
// message's existing buffer, never a copy into a contiguous frame.
//
// Nonblocking throughout: dials resolve via POLLOUT + SO_ERROR, reads drain
// until EAGAIN, and writes flush as far as the socket accepts, parking the
// remainder behind a writable watch. Backpressure is a hard bound: when the
// egress queue would exceed its byte budget the connection closes (the
// DualTransport falls back to UDP or drops, exactly like a congested
// datagram path) rather than buffering without limit.
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <cstdint>
#include <deque>

#include "common/types.hpp"
#include "net/message.hpp"
#include "net/stream/stream_frame.hpp"
#include "runtime/real_time_runtime.hpp"

namespace dataflasks::net {

class StreamConnection {
 public:
  struct Limits {
    /// Egress bytes queued beyond the socket buffer before the connection
    /// is declared wedged and closed.
    std::size_t max_egress_bytes = 64 * 1024 * 1024;
    SimTime connect_timeout = 5 * kSeconds;
    SimTime idle_timeout = 120 * kSeconds;
  };

  /// Owner callbacks. The owner (StreamTransport) outlives every
  /// connection. None fire from inside the constructors (a failed dial is
  /// observed via closed() after construction); on_stream_closed fires at
  /// most once per stored connection, and the owner must defer destruction
  /// of the connection object until the current dispatch unwinds (it may be
  /// called from inside the connection's own read loop).
  struct Events {
    virtual ~Events() = default;
    virtual void on_stream_message(StreamConnection& conn, Message msg) = 0;
    /// An outbound handshake resolved successfully (async path only).
    virtual void on_stream_open(StreamConnection& conn) = 0;
    virtual void on_stream_closed(StreamConnection& conn) = 0;
  };

  /// Counter block shared by every connection of one transport. Atomics:
  /// the metrics endpoint renders them from another thread.
  struct Stats {
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> reassembly_errors{0};
    std::atomic<std::uint64_t> egress_overflows{0};
    std::atomic<std::uint64_t> egress_queue_hwm{0};  ///< high watermark
  };

  /// Wraps an accepted (already connected) fd. `fd` must be nonblocking.
  StreamConnection(runtime::RealTimeRuntime& rt, Events& events, Stats& stats,
                   const Limits& limits, int fd);

  /// Initiates a nonblocking connect to `addr` on behalf of peer `peer`.
  /// open() turns true once the handshake resolves; a refused/timed-out
  /// dial surfaces as on_stream_closed without ever having been open.
  StreamConnection(runtime::RealTimeRuntime& rt, Events& events, Stats& stats,
                   const Limits& limits, NodeId peer, const sockaddr_in& addr);

  StreamConnection(const StreamConnection&) = delete;
  StreamConnection& operator=(const StreamConnection&) = delete;
  ~StreamConnection();

  /// Queues one frame (header + payload view). Returns false when the
  /// connection is closed, or when the enqueue overflowed the egress budget
  /// (which closes the connection). Legal while still connecting: frames
  /// flush the moment the handshake resolves.
  bool send(const Message& msg);

  /// Closes the socket and notifies the owner (once).
  void close();

  [[nodiscard]] bool open() const { return state_ == State::kOpen; }
  /// True once the connection has ever been open (distinguishes a failed
  /// dial from a connection that carried traffic and then closed).
  [[nodiscard]] bool ever_open() const { return ever_open_; }
  [[nodiscard]] bool connecting() const {
    return state_ == State::kConnecting;
  }
  [[nodiscard]] bool closed() const { return state_ == State::kClosed; }
  /// Peer NodeId: set at dial time for outbound connections, adopted from
  /// the first frame's src for inbound ones (invalid until then).
  [[nodiscard]] NodeId peer() const { return peer_; }
  void set_peer(NodeId peer) { peer_ = peer; }
  /// True for connections this end dialed (vs. accepted).
  [[nodiscard]] bool outbound() const { return outbound_; }
  [[nodiscard]] std::size_t egress_bytes() const { return egress_bytes_; }
  [[nodiscard]] SimTime last_activity() const { return last_activity_; }
  [[nodiscard]] int fd() const { return fd_; }

 private:
  enum class State { kConnecting, kOpen, kClosed };

  void watch_read();
  void on_readable();
  void on_writable();
  void finish_connect();
  void became_open();
  void flush();
  void enqueue(Payload bytes);
  void arm_connect_timeout();

  runtime::RealTimeRuntime& rt_;
  Events& events_;
  Stats& stats_;
  Limits limits_;

  int fd_ = -1;
  State state_ = State::kClosed;
  NodeId peer_{};
  bool outbound_ = false;
  bool ever_open_ = false;
  bool write_watched_ = false;

  StreamFrameDecoder decoder_;

  /// Egress: Payload views in write order; head_offset_ tracks the bytes of
  /// the front entry already accepted by the socket.
  std::deque<Payload> egress_;
  std::size_t head_offset_ = 0;
  std::size_t egress_bytes_ = 0;

  SimTime last_activity_ = 0;
  runtime::TimerHandle connect_timer_;
};

}  // namespace dataflasks::net
