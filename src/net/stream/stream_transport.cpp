#include "net/stream/stream_transport.hpp"

#include <algorithm>
#include <utility>

namespace dataflasks::net {

StreamTransport::StreamTransport(runtime::RealTimeRuntime& rt,
                                 Options options)
    : rt_(rt), options_(options) {
  if (options_.listen) {
    listener_ = std::make_unique<StreamListener>(
        rt_, options_.listen_ip, options_.listen_port, [this](int fd) {
          counters_.accepted.fetch_add(1, std::memory_order_relaxed);
          adopt(std::make_unique<StreamConnection>(
              rt_, static_cast<StreamConnection::Events&>(*this),
              counters_.io, options_.limits, fd));
        });
  }
  SimTime period = options_.sweep_period;
  if (period <= 0) {
    period = std::min<SimTime>(options_.limits.idle_timeout / 2, kSeconds);
  }
  if (period <= 0) period = kSeconds;
  sweep_timer_ = rt_.schedule_periodic(period, period, [this] { sweep(); });
}

StreamTransport::~StreamTransport() {
  sweep_timer_.cancel();
  // Destructors close the fds; no callbacks fire from teardown.
  by_peer_.clear();
  conns_.clear();
  graveyard_.clear();
  {
    const std::lock_guard<std::mutex> lock(connected_mutex_);
    connected_peers_.clear();
  }
}

void StreamTransport::adopt(std::unique_ptr<StreamConnection> conn) {
  StreamConnection* raw = conn.get();
  conns_.emplace(raw, std::move(conn));
  counters_.active.fetch_add(1, std::memory_order_relaxed);
}

bool StreamTransport::send(const Message& msg) {
  const auto it = by_peer_.find(msg.dst);
  if (it == by_peer_.end()) return false;
  return it->second->send(msg);
}

void StreamTransport::dial(NodeId node, const sockaddr_in& addr) {
  if (by_peer_.contains(node)) return;  // already routed or in flight
  counters_.dialed.fetch_add(1, std::memory_order_relaxed);
  auto conn = std::make_unique<StreamConnection>(
      rt_, static_cast<StreamConnection::Events&>(*this), counters_.io,
      options_.limits, node, addr);
  if (conn->closed()) {
    // socket()/connect() failed synchronously; nothing was ever watched.
    counters_.dial_failures.fetch_add(1, std::memory_order_relaxed);
    if (peer_down_) peer_down_(node);
    return;
  }
  StreamConnection* raw = conn.get();
  adopt(std::move(conn));
  by_peer_[node] = raw;
  if (raw->open()) {
    // Localhost connects can complete synchronously.
    mark_connected(node);
    if (peer_up_) peer_up_(node);
  }
}

void StreamTransport::close_peer(NodeId node) {
  const auto it = by_peer_.find(node);
  if (it == by_peer_.end()) return;
  it->second->close();  // on_stream_closed does the bookkeeping
}

bool StreamTransport::connected_to(NodeId node) const {
  const auto it = by_peer_.find(node);
  return it != by_peer_.end() && it->second->open();
}

bool StreamTransport::dialing(NodeId node) const {
  const auto it = by_peer_.find(node);
  return it != by_peer_.end() && it->second->connecting();
}

bool StreamTransport::connected_to_any_thread(NodeId node) const {
  const std::lock_guard<std::mutex> lock(connected_mutex_);
  return connected_peers_.contains(node);
}

void StreamTransport::mark_connected(NodeId node) {
  const std::lock_guard<std::mutex> lock(connected_mutex_);
  connected_peers_.insert(node);
}

void StreamTransport::mark_disconnected(NodeId node) {
  const std::lock_guard<std::mutex> lock(connected_mutex_);
  connected_peers_.erase(node);
}

void StreamTransport::on_stream_message(StreamConnection& conn, Message msg) {
  // First frame on an inbound connection binds it to the sender: replies to
  // that NodeId ride this connection from now on (unless an outbound dial
  // already claimed the route).
  if (conn.peer().valid() && !by_peer_.contains(conn.peer())) {
    by_peer_[conn.peer()] = &conn;
    mark_connected(conn.peer());
    if (peer_up_) peer_up_(conn.peer());
  }
  if (receiver_) receiver_(msg);
}

void StreamTransport::on_stream_open(StreamConnection& conn) {
  if (conn.peer().valid() && by_peer_.contains(conn.peer()) &&
      by_peer_[conn.peer()] == &conn) {
    mark_connected(conn.peer());
    if (peer_up_) peer_up_(conn.peer());
  }
}

void StreamTransport::on_stream_closed(StreamConnection& conn) {
  counters_.closed.fetch_add(1, std::memory_order_relaxed);
  if (conn.outbound() && !conn.ever_open()) {
    counters_.dial_failures.fetch_add(1, std::memory_order_relaxed);
  }
  const NodeId peer = conn.peer();
  bool was_route = false;
  if (peer.valid()) {
    const auto route = by_peer_.find(peer);
    if (route != by_peer_.end() && route->second == &conn) {
      by_peer_.erase(route);
      mark_disconnected(peer);
      was_route = true;
    }
  }
  const auto it = conns_.find(&conn);
  if (it != conns_.end()) {
    counters_.active.fetch_sub(1, std::memory_order_relaxed);
    // The connection may be closing from inside its own read handler, so
    // its destruction waits for the sweep; the fd is already closed.
    graveyard_.push_back(std::move(it->second));
    conns_.erase(it);
  }
  if (was_route && peer_down_) peer_down_(peer);
}

void StreamTransport::sweep() {
  graveyard_.clear();
  if (options_.limits.idle_timeout <= 0) return;
  const SimTime cutoff = rt_.now() - options_.limits.idle_timeout;
  std::vector<StreamConnection*> idle;
  for (const auto& [raw, conn] : conns_) {
    if (conn->open() && conn->egress_bytes() == 0 &&
        conn->last_activity() < cutoff) {
      idle.push_back(raw);
    }
  }
  for (StreamConnection* conn : idle) conn->close();
}

}  // namespace dataflasks::net
