#include "net/stream/stream_frame.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/ensure.hpp"

namespace dataflasks::net {

Payload encode_stream_header(const Message& msg) {
  ensure(msg.payload.size() <= kMaxStreamPayload,
         "encode_stream_header: payload exceeds stream limit");
  Writer w(kStreamHeaderSize);
  w.u32(kStreamMagic);
  w.u64(msg.src.value);
  w.u64(msg.dst.value);
  w.u16(msg.type);
  w.u32(static_cast<std::uint32_t>(msg.payload.size()));
  return w.take_payload();
}

Payload encode_stream_frame(const Message& msg) {
  ensure(msg.payload.size() <= kMaxStreamPayload,
         "encode_stream_frame: payload exceeds stream limit");
  Writer w(kStreamHeaderSize + msg.payload.size());
  w.u32(kStreamMagic);
  w.u64(msg.src.value);
  w.u64(msg.dst.value);
  w.u16(msg.type);
  w.u32(static_cast<std::uint32_t>(msg.payload.size()));
  if (msg.payload.size() > 0) w.raw(msg.payload);
  return w.take_payload();
}

bool StreamFrameDecoder::parse_header() {
  Reader r(header_, kStreamHeaderSize);
  if (r.u32() != kStreamMagic) {
    failed_ = true;
    return false;
  }
  pending_ = Message{};
  pending_.src = r.node_id();
  pending_.dst = r.node_id();
  pending_.type = r.u16();
  const std::uint32_t len = r.u32();
  if (len > kMaxStreamPayload) {
    failed_ = true;
    return false;
  }
  payload_want_ = len;
  payload_.reserve(len);
  in_payload_ = true;
  return true;
}

void StreamFrameDecoder::feed(ByteView bytes) {
  const std::uint8_t* cursor = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0 && !failed_) {
    if (!in_payload_) {
      const std::size_t take =
          std::min(left, kStreamHeaderSize - header_have_);
      std::memcpy(header_ + header_have_, cursor, take);
      header_have_ += take;
      cursor += take;
      left -= take;
      if (header_have_ < kStreamHeaderSize) return;  // need more bytes
      header_have_ = 0;
      if (!parse_header()) return;  // poisoned: framing lost
    }
    // Payload accumulation: append straight into the frame's final buffer.
    const std::size_t take =
        std::min(left, payload_want_ - payload_.size());
    if (take > 0) {
      payload_.raw(ByteView(cursor, take));
      cursor += take;
      left -= take;
    }
    if (payload_.size() == payload_want_) {
      pending_.payload = payload_.take_payload();
      ready_.push_back(std::move(pending_));
      in_payload_ = false;
      payload_want_ = 0;
    }
  }
}

std::optional<Message> StreamFrameDecoder::poll() {
  if (ready_.empty()) return std::nullopt;
  Message msg = std::move(ready_.front());
  ready_.pop_front();
  return msg;
}

}  // namespace dataflasks::net
