#include "net/stream/stream_listener.hpp"

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace dataflasks::net {

StreamListener::StreamListener(runtime::RealTimeRuntime& rt, std::uint32_t ip,
                               std::uint16_t port, AcceptHandler on_accept)
    : rt_(rt), on_accept_(std::move(on_accept)) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(ip);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  // Resolve the actual port for ephemeral binds: it is what the server
  // prints and what gossip advertises.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  rt_.watch_fd(fd_, [this] { on_readable(); });
}

StreamListener::~StreamListener() {
  if (fd_ >= 0) {
    rt_.unwatch_fd(fd_);
    ::close(fd_);
  }
}

void StreamListener::on_readable() {
  // Level-triggered: drain the whole backlog.
  while (true) {
    const int conn = ::accept4(fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient accept error: next POLLIN retries
    }
    ++accepted_;
    on_accept_(conn);
  }
}

}  // namespace dataflasks::net
