// The Transport protocols actually talk to on a stream-capable node:
// datagrams for everything small and gossipy, streams for what needs them.
// DualTransport composes the node's UdpTransport (always present — gossip,
// slicing and anti-entropy maintenance never leave UDP) with an optional
// StreamTransport, and decides per message:
//
//   - an open/connecting stream to the destination carries every message
//     addressed to it (replies to a stream client ride its connection back)
//   - payloads over the datagram budget REQUIRE a stream: dial if the
//     AddressBook gossip advertised a stream port, hold briefly while
//     discovery resolves, drop (counted) when the peer is UDP-only
//   - "stream-preferred" types (a policy callback the owner supplies, e.g.
//     client envelopes, state-transfer pulls) dial opportunistically and
//     fall back to UDP transparently when the peer advertises no stream
//   - everything else goes out as a datagram, unchanged
//
// Failed dials back off per-peer; messages held for a peer whose stream
// never materializes are re-sent over UDP when they fit, dropped when not —
// the same fire-and-forget contract every Transport implements.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "net/stream/stream_transport.hpp"
#include "net/transport.hpp"
#include "net/udp_transport.hpp"
#include "runtime/real_time_runtime.hpp"

namespace dataflasks::net {

class DualTransport final : public Transport {
 public:
  struct Options {
    /// Message types worth opening a stream for even when they fit in a
    /// datagram (the owner names protocol types; net/ stays protocol-
    /// agnostic). Empty = only oversized payloads force streams.
    MoveOnlyFunction<bool(std::uint16_t)> prefer_stream;
    /// Per-peer pause after a failed dial before trying again.
    SimTime dial_backoff = 2 * kSeconds;
    /// How long a message may wait for stream discovery/connection before
    /// it falls back to UDP (or is dropped if oversized).
    SimTime pending_ttl = 3 * kSeconds;
    /// Byte bound across all messages held for not-yet-connected peers.
    std::size_t max_pending_bytes = 32 * 1024 * 1024;
  };

  /// `stream` may be null: the node is then UDP-only and DualTransport is a
  /// thin pass-through (oversized sends drop, counted). Both transports
  /// must outlive this object and share `rt`'s loop thread.
  DualTransport(runtime::RealTimeRuntime& rt, UdpTransport& udp,
                StreamTransport* stream, Options options);
  ~DualTransport() override;

  void send(Message msg) override;
  void register_handler(NodeId node, Handler handler) override;
  void unregister_handler(NodeId node) override;
  [[nodiscard]] std::optional<Endpoint> local_endpoint() const override {
    return udp_.local_endpoint();
  }
  void learn_endpoint(NodeId node, const Endpoint& endpoint) override {
    udp_.learn_endpoint(node, endpoint);
  }
  [[nodiscard]] std::size_t max_payload(NodeId node) const override;

  [[nodiscard]] UdpTransport& udp() { return udp_; }
  [[nodiscard]] StreamTransport* stream() { return stream_; }

  /// Oversized messages dropped because no stream path to the destination
  /// exists (peer UDP-only, dial failed, or pending budget exhausted).
  [[nodiscard]] std::uint64_t dropped_no_stream() const {
    return dropped_no_stream_.load(std::memory_order_relaxed);
  }

 private:
  struct Held {
    Message msg;
    SimTime enqueued;
  };

  void deliver(const Message& msg);
  [[nodiscard]] bool prefers_stream(std::uint16_t type);
  void hold(Message msg);
  void drop_oversized();
  void on_peer_up(NodeId node);
  void on_peer_down(NodeId node);
  /// Flushes held messages for `node` over UDP (when they fit) or drops.
  void spill_to_udp(NodeId node);
  void tick();

  runtime::RealTimeRuntime& rt_;
  UdpTransport& udp_;
  StreamTransport* stream_;
  Options options_;

  std::unordered_map<NodeId, Handler> handlers_;
  std::unordered_map<NodeId, std::deque<Held>> held_;
  std::size_t held_bytes_ = 0;
  std::unordered_map<NodeId, SimTime> backoff_until_;
  runtime::TimerHandle tick_timer_;
  std::atomic<std::uint64_t> dropped_no_stream_{0};
};

}  // namespace dataflasks::net
