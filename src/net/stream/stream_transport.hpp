// Connection manager for the stream side of a node: an optional
// StreamListener (servers; dial-only clients skip it) plus the set of live
// StreamConnections, keyed by peer NodeId for routing. Inbound connections
// are anonymous until their first frame — its src NodeId binds them, which
// is how a server answers a client envelope back down the same TCP
// connection without any address exchange.
//
// The transport never decides WHEN to use streams — that policy lives in
// DualTransport. It exposes the mechanics: dial, send-on-existing, close,
// and up/down notifications for fallback logic. Single-threaded on its
// runtime's loop thread, except connected_to_any_thread() (a mutex-guarded
// peer set) which other shards query when choosing a reply path.
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "common/unique_function.hpp"
#include "net/message.hpp"
#include "net/stream/stream_connection.hpp"
#include "net/stream/stream_listener.hpp"
#include "runtime/real_time_runtime.hpp"

namespace dataflasks::net {

class StreamTransport final : private StreamConnection::Events {
 public:
  struct Options {
    /// Accept inbound connections. Clients leave this off and only dial.
    bool listen = false;
    std::uint32_t listen_ip = 0;    ///< host order; 0 = INADDR_ANY
    std::uint16_t listen_port = 0;  ///< 0 = ephemeral
    StreamConnection::Limits limits;
    /// Idle/graveyard sweep period; 0 picks min(idle_timeout / 2, 1s).
    SimTime sweep_period = 0;
  };

  /// df_stream_* counter block (atomics: rendered from the metrics thread).
  struct Counters {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> dialed{0};
    std::atomic<std::uint64_t> dial_failures{0};
    std::atomic<std::uint64_t> closed{0};
    std::atomic<std::uint64_t> active{0};  ///< gauge
    StreamConnection::Stats io;
  };

  StreamTransport(runtime::RealTimeRuntime& rt, Options options);
  StreamTransport(const StreamTransport&) = delete;
  StreamTransport& operator=(const StreamTransport&) = delete;
  ~StreamTransport() override;

  /// Bound stream port; 0 when not listening (or bind failed).
  [[nodiscard]] std::uint16_t listen_port() const {
    return listener_ != nullptr ? listener_->port() : 0;
  }

  /// Every reassembled frame from every connection lands here.
  void set_receiver(MoveOnlyFunction<void(const Message&)> receiver) {
    receiver_ = std::move(receiver);
  }
  /// A stream to the peer became usable (dial resolved, or an inbound
  /// connection identified itself). Queued traffic can drain now.
  void set_peer_up_listener(MoveOnlyFunction<void(NodeId)> listener) {
    peer_up_ = std::move(listener);
  }
  /// The routing stream for the peer went away (failed dial included).
  void set_peer_down_listener(MoveOnlyFunction<void(NodeId)> listener) {
    peer_down_ = std::move(listener);
  }

  /// Queues `msg` on the stream routed to msg.dst (open or still
  /// connecting). False when no such stream exists or the enqueue closed it.
  bool send(const Message& msg);

  /// Starts a connection to `node` at `addr` unless one is already routed.
  void dial(NodeId node, const sockaddr_in& addr);

  /// Closes the routed connection (address-book eviction, shutdown).
  void close_peer(NodeId node);

  [[nodiscard]] bool connected_to(NodeId node) const;
  [[nodiscard]] bool dialing(NodeId node) const;
  /// Thread-safe variant of connected_to for cross-shard reply routing.
  [[nodiscard]] bool connected_to_any_thread(NodeId node) const;

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] std::size_t connection_count() const { return conns_.size(); }

 private:
  void on_stream_message(StreamConnection& conn, Message msg) override;
  void on_stream_open(StreamConnection& conn) override;
  void on_stream_closed(StreamConnection& conn) override;

  void adopt(std::unique_ptr<StreamConnection> conn);
  void mark_connected(NodeId node);
  void mark_disconnected(NodeId node);
  void sweep();

  runtime::RealTimeRuntime& rt_;
  Options options_;
  Counters counters_;
  std::unique_ptr<StreamListener> listener_;

  /// All live connections, keyed by object identity (fds are recycled and
  /// cleared on close, so they make poor keys).
  std::unordered_map<StreamConnection*, std::unique_ptr<StreamConnection>>
      conns_;
  /// Send route per peer: the dialed connection, or the first inbound one
  /// that identified itself.
  std::unordered_map<NodeId, StreamConnection*> by_peer_;
  /// Closed connections awaiting destruction: a connection may close from
  /// inside its own read loop, so the object must outlive the dispatch.
  std::vector<std::unique_ptr<StreamConnection>> graveyard_;

  MoveOnlyFunction<void(const Message&)> receiver_;
  MoveOnlyFunction<void(NodeId)> peer_up_;
  MoveOnlyFunction<void(NodeId)> peer_down_;

  mutable std::mutex connected_mutex_;
  std::unordered_set<NodeId> connected_peers_;

  runtime::TimerHandle sweep_timer_;
};

}  // namespace dataflasks::net
