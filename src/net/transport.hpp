// Transport abstraction consumed by every protocol component. Protocols see
// only send(); delivery happens through the handler they registered. The
// simulator provides the single in-tree implementation (SimTransport); the
// interface keeps protocol code free of simulator details and lets tests
// substitute capture transports.
#pragma once

#include <functional>

#include "net/message.hpp"

namespace dataflasks::net {

class Transport {
 public:
  using Handler = std::function<void(const Message&)>;

  virtual ~Transport() = default;

  /// Fire-and-forget datagram semantics: may be dropped, never errors back.
  virtual void send(Message msg) = 0;

  /// Registers the message handler for `node`. Replaces any previous one.
  virtual void register_handler(NodeId node, Handler handler) = 0;

  /// Removes the handler (e.g. node crash); queued deliveries are dropped.
  virtual void unregister_handler(NodeId node) = 0;
};

}  // namespace dataflasks::net
