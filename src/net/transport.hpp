// Transport abstraction consumed by every protocol component. Protocols see
// only send(); delivery happens through the handler they registered. Two
// in-tree implementations: SimTransport (simulated latency/loss over the
// discrete-event runtime) and UdpTransport (real POSIX datagrams over the
// real-time runtime); tests additionally substitute capture transports. The
// interface keeps protocol code free of transport details either way.
#pragma once

#include "common/unique_function.hpp"
#include "net/message.hpp"

namespace dataflasks::net {

class Transport {
 public:
  /// Move-only handler: capture-heavy delivery closures (a node's dispatch
  /// context) register without a heap allocation, matching the move-only
  /// closure discipline of the event queue.
  using Handler = MoveOnlyFunction<void(const Message&)>;

  virtual ~Transport() = default;

  /// Fire-and-forget datagram semantics: may be dropped, never errors back.
  virtual void send(Message msg) = 0;

  /// Registers the message handler for `node`. Replaces any previous one.
  virtual void register_handler(NodeId node, Handler handler) = 0;

  /// Removes the handler (e.g. node crash); queued deliveries are dropped.
  virtual void unregister_handler(NodeId node) = 0;
};

}  // namespace dataflasks::net
