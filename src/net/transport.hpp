// Transport abstraction consumed by every protocol component. Protocols see
// only send(); delivery happens through the handler they registered. Two
// in-tree implementations: SimTransport (simulated latency/loss over the
// discrete-event runtime) and UdpTransport (real POSIX datagrams over the
// real-time runtime); tests additionally substitute capture transports. The
// interface keeps protocol code free of transport details either way.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "common/unique_function.hpp"
#include "net/message.hpp"

namespace dataflasks::net {

class Transport {
 public:
  /// Move-only handler: capture-heavy delivery closures (a node's dispatch
  /// context) register without a heap allocation, matching the move-only
  /// closure discipline of the event queue.
  using Handler = MoveOnlyFunction<void(const Message&)>;

  virtual ~Transport() = default;

  /// Fire-and-forget datagram semantics: may be dropped, never errors back.
  virtual void send(Message msg) = 0;

  /// Registers the message handler for `node`. Replaces any previous one.
  virtual void register_handler(NodeId node, Handler handler) = 0;

  /// Removes the handler (e.g. node crash); queued deliveries are dropped.
  virtual void unregister_handler(NodeId node) = 0;

  /// The address this transport can be reached at, if it has one worth
  /// advertising. Gossip protocols attach it to self-descriptors so the
  /// cluster learns routing epidemically. Transports that route by NodeId
  /// (the simulator) have none.
  [[nodiscard]] virtual std::optional<Endpoint> local_endpoint() const {
    return std::nullopt;
  }

  /// Applies a gossip-learned address for `node` (from a PSS descriptor or
  /// a slice advert). Transports with an address table adopt it when the
  /// stamp is fresher than what they hold; others ignore it.
  virtual void learn_endpoint(NodeId /*node*/, const Endpoint& /*endpoint*/) {}

  /// Largest payload (bytes) a single Message to `node` can carry. Datagram
  /// transports answer their frame budget; stream-capable transports answer
  /// the stream budget once a stream path to `node` is negotiated. Senders
  /// of bulk data (state transfer, replication) size pages against this.
  [[nodiscard]] virtual std::size_t max_payload(NodeId /*node*/) const {
    return kDefaultMaxPayload;
  }

  /// The UDP frame budget, restated here so protocol code can reason about
  /// page sizes without including net/frame.hpp.
  static constexpr std::size_t kDefaultMaxPayload = 60 * 1024;
};

}  // namespace dataflasks::net
