#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/ensure.hpp"
#include "net/frame.hpp"

namespace dataflasks::net {

std::optional<std::string> resolve_ipv4(const std::string& host) {
  // Fast path: already a numeric IPv4 address.
  in_addr probe{};
  if (::inet_pton(AF_INET, host.c_str(), &probe) == 1) return host;

  addrinfo hints{};
  hints.ai_family = AF_INET;  // the transport is IPv4 UDP
  hints.ai_socktype = SOCK_DGRAM;
  addrinfo* results = nullptr;
  if (::getaddrinfo(host.c_str(), nullptr, &hints, &results) != 0 ||
      results == nullptr) {
    return std::nullopt;
  }
  char dotted[INET_ADDRSTRLEN] = {};
  const auto* addr = reinterpret_cast<const sockaddr_in*>(results->ai_addr);
  const char* ok =
      ::inet_ntop(AF_INET, &addr->sin_addr, dotted, sizeof dotted);
  ::freeaddrinfo(results);
  if (ok == nullptr) return std::nullopt;
  return std::string(dotted);
}

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const auto resolved = resolve_ipv4(host);
  ensure(resolved.has_value(),
         "UdpTransport: cannot resolve host to an IPv4 address");
  ensure(::inet_pton(AF_INET, resolved->c_str(), &addr.sin_addr) == 1,
         "UdpTransport: not a numeric IPv4 address");
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(runtime::RealTimeRuntime& rt, Options options)
    : runtime_(rt) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  ensure(fd_ >= 0, "UdpTransport: socket() failed");

  sockaddr_in addr = make_addr(options.bind_host, options.port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd_);
    fd_ = -1;
    ensure(false, "UdpTransport: bind() failed (port in use?)");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ensure(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound),
                       &bound_len) == 0,
         "UdpTransport: getsockname() failed");
  local_port_ = ntohs(bound.sin_port);

  runtime_.watch_fd(fd_, [this]() { on_readable(); });
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) {
    runtime_.unwatch_fd(fd_);
    ::close(fd_);
  }
}

void UdpTransport::add_peer(NodeId node, const std::string& host,
                            std::uint16_t port) {
  peers_[node] = make_addr(host, port);
}

void UdpTransport::send(Message msg) {
  ++total_sent_;
  const auto it = peers_.find(msg.dst);
  if (it == peers_.end()) {
    ++total_dropped_;  // unknown peer: same fate as a simulated blackhole
    return;
  }
  if (msg.payload.size() > kMaxFramePayload) {
    ++total_dropped_;
    return;
  }
  const Payload frame = encode_frame(msg);
  const ssize_t n = ::sendto(fd_, frame.data(), frame.size(), 0,
                             reinterpret_cast<const sockaddr*>(&it->second),
                             sizeof it->second);
  if (n < 0 || static_cast<std::size_t>(n) != frame.size()) {
    ++total_dropped_;  // EAGAIN/ENOBUFS etc.: fire-and-forget drops it
  }
}

void UdpTransport::on_readable() {
  // Drain everything queued on the socket: the poll step is level-triggered
  // but one wakeup may cover many datagrams.
  std::uint8_t buf[kFrameHeaderSize + kMaxFramePayload + 1024];
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof from;
    const ssize_t n =
        ::recvfrom(fd_, buf, sizeof buf, 0,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      // EAGAIN/EWOULDBLOCK: drained. Anything else: transient; retry on the
      // next poll wakeup.
      return;
    }
    auto msg = decode_frame(ByteView(buf, static_cast<std::size_t>(n)));
    if (!msg) {
      ++decode_failures_;
      ++total_dropped_;
      continue;
    }
    // Learn / refresh the sender's address so replies (and client acks)
    // route without static configuration.
    if (msg->src.valid()) peers_[msg->src] = from;

    const auto it = handlers_.find(msg->dst);
    if (it == handlers_.end()) {
      ++total_dropped_;
      continue;
    }
    ++total_delivered_;
    it->second(*msg);
  }
}

void UdpTransport::register_handler(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void UdpTransport::unregister_handler(NodeId node) { handlers_.erase(node); }

}  // namespace dataflasks::net
