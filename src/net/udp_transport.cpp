#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/ensure.hpp"
#include "net/frame.hpp"

namespace dataflasks::net {

static_assert(Transport::kDefaultMaxPayload == kMaxFramePayload,
              "the interface-level default payload budget restates the UDP "
              "frame limit; keep them in sync");

std::optional<std::string> resolve_ipv4(const std::string& host) {
  // Fast path: already a numeric IPv4 address.
  in_addr probe{};
  if (::inet_pton(AF_INET, host.c_str(), &probe) == 1) return host;

  addrinfo hints{};
  hints.ai_family = AF_INET;  // the transport is IPv4 UDP
  hints.ai_socktype = SOCK_DGRAM;
  addrinfo* results = nullptr;
  if (::getaddrinfo(host.c_str(), nullptr, &hints, &results) != 0 ||
      results == nullptr) {
    return std::nullopt;
  }
  char dotted[INET_ADDRSTRLEN] = {};
  const auto* addr = reinterpret_cast<const sockaddr_in*>(results->ai_addr);
  const char* ok =
      ::inet_ntop(AF_INET, &addr->sin_addr, dotted, sizeof dotted);
  ::freeaddrinfo(results);
  if (ok == nullptr) return std::nullopt;
  return std::string(dotted);
}

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const auto resolved = resolve_ipv4(host);
  ensure(resolved.has_value(),
         "UdpTransport: cannot resolve host to an IPv4 address");
  ensure(::inet_pton(AF_INET, resolved->c_str(), &addr.sin_addr) == 1,
         "UdpTransport: not a numeric IPv4 address");
  return addr;
}

bool same_addr(const sockaddr_in& a, const sockaddr_in& b) {
  return a.sin_addr.s_addr == b.sin_addr.s_addr && a.sin_port == b.sin_port;
}

/// Boot stamp for this transport's advertised endpoint: wall-clock
/// microseconds, forced strictly increasing process-wide so two transports
/// created back-to-back (or a fast in-process restart) still order by
/// creation. Across real restarts the wall clock itself provides the
/// ordering, which is what lets a restarted node's endpoint outrank its
/// previous incarnation everywhere. Like tombstone GC stamps, this assumes
/// loosely synchronized (and roughly monotonic) clocks: a host whose clock
/// steps backwards across a restart gossips a stamp its peers consider
/// stale until real time catches up. Persisting the last stamp in the
/// durable data dir would close that gap; not done yet.
std::uint64_t wall_clock_micros() {
  const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  return static_cast<std::uint64_t>(wall);
}

/// Gossiped stamps further than this ahead of the local wall clock are
/// rejected: one endpoint stamped with (say) UINT64_MAX — a hugely skewed
/// clock or a hostile frame — would otherwise outrank every future honest
/// restart forever, cluster-wide. Rejected endpoints degrade gracefully:
/// the entry stays unstamped, so datagram-source observation still routes
/// the node. Generous enough that loosely synchronized clocks never trip.
constexpr std::uint64_t kMaxStampFutureSkew = 60ull * 60 * 1000 * 1000;

std::uint64_t next_boot_stamp() {
  static std::atomic<std::uint64_t> last{0};
  std::uint64_t now = wall_clock_micros();
  std::uint64_t prev = last.load(std::memory_order_relaxed);
  while (true) {
    const std::uint64_t stamp = std::max(now, prev + 1);
    if (last.compare_exchange_weak(prev, stamp, std::memory_order_relaxed)) {
      return stamp;
    }
  }
}

}  // namespace

UdpTransport::UdpTransport(runtime::RealTimeRuntime& rt, Options options)
    : runtime_(rt),
      options_(std::move(options)),
      book_(AddressBook::Options{options_.max_learned_peers}) {
#if !defined(__linux__)
  options_.batch_io = false;  // recvmmsg/sendmmsg are Linux syscalls
#endif
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  ensure(fd_ >= 0, "UdpTransport: socket() failed");

  if (options_.reuse_port) {
    const int one = 1;
    ensure(::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) == 0,
           "UdpTransport: setsockopt(SO_REUSEPORT) failed");
  }

  sockaddr_in addr = make_addr(options_.bind_host, options_.port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd_);
    fd_ = -1;
    ensure(false, "UdpTransport: bind() failed (port in use?)");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ensure(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound),
                       &bound_len) == 0,
         "UdpTransport: getsockname() failed");
  local_port_ = ntohs(bound.sin_port);

  // What peers should be told: the advertise host when given, else the
  // bind host — unless that is the wildcard, which is not a reachable
  // address and must not be gossiped.
  const std::string& advertise = options_.advertise_host.empty()
                                     ? options_.bind_host
                                     : options_.advertise_host;
  const sockaddr_in reach = make_addr(advertise, local_port_);
  if (reach.sin_addr.s_addr != htonl(INADDR_ANY)) {
    local_endpoint_ = endpoint_of(reach, next_boot_stamp());
    local_endpoint_->stream_port = options_.advertise_stream_port;
  }

  if (options_.batch_io) {
    recv_buffers_.resize(kIoBatch *
                         (kFrameHeaderSize + kMaxFramePayload + 1024));
  }

  runtime_.watch_fd(fd_, [this]() { on_readable(); });
}

UdpTransport::~UdpTransport() {
  seed_timer_.cancel();
  flush_timer_.cancel();
  flush_pending_sends();  // best effort: don't strand queued egress
  if (fd_ >= 0) {
    runtime_.unwatch_fd(fd_);
    ::close(fd_);
  }
}

void UdpTransport::add_peer(NodeId node, const std::string& host,
                            std::uint16_t port) {
  book_.pin(node, make_addr(host, port));
}

void UdpTransport::learn_endpoint(NodeId node, const Endpoint& endpoint) {
  if (endpoint.stamp > wall_clock_micros() + kMaxStampFutureSkew) return;
  book_.learn(node, endpoint);
}

void UdpTransport::add_seed(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_addr(host, port);
  pending_seeds_.push_back(addr);
  send_probe(addr);
  if (!seed_timer_.active()) {
    seed_timer_ = runtime_.schedule_periodic(
        options_.seed_probe_period, options_.seed_probe_period,
        [this]() { probe_pending_seeds(); });
  }
}

void UdpTransport::probe_pending_seeds() {
  for (const sockaddr_in& addr : pending_seeds_) send_probe(addr);
}

void UdpTransport::probe_peer(NodeId node) {
  const sockaddr_in* to = book_.lookup(node);
  if (to == nullptr) return;
  send_probe(*to);
}

void UdpTransport::send_probe(const sockaddr_in& to) {
  Message probe;
  // A joining process may probe before its node registers; an invalid src
  // simply means the responder cannot pre-learn our address from the frame
  // header (it still answers to the datagram's source).
  probe.src = handlers_.empty() ? NodeId() : handlers_.begin()->first;
  probe.dst = NodeId();
  probe.type = kAddrProbe;
  Writer w;
  encode_endpoint_opt(w, local_endpoint_);
  probe.payload = w.take_payload();
  send_frame_to(probe, to);
}

void UdpTransport::send_frame_to(const Message& msg, const sockaddr_in& to) {
  Payload frame = encode_frame(msg);
  if (options_.batch_io) {
    enqueue_send(std::move(frame), to);
    return;
  }
  const ssize_t n = ::sendto(fd_, frame.data(), frame.size(), 0,
                             reinterpret_cast<const sockaddr*>(&to),
                             sizeof to);
  if (n < 0 || static_cast<std::size_t>(n) != frame.size()) {
    total_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void UdpTransport::enqueue_send(Payload frame, const sockaddr_in& to) {
  pending_sends_.push_back(PendingSend{std::move(frame), to});
  if (pending_sends_.size() >= kIoBatch) {
    flush_pending_sends();
    return;
  }
  // One flush per loop pass: every send issued while handling the current
  // batch of events/datagrams shares the syscall. run_until pops all due
  // events before sleeping, so a zero-delay timer fires in this same pass —
  // batching adds no wire latency, only syscall coalescing.
  if (!flush_timer_.active()) {
    flush_timer_ = runtime_.schedule_at(runtime_.now(),
                                        [this]() { flush_pending_sends(); });
  }
}

void UdpTransport::flush_pending_sends() {
  if (pending_sends_.empty()) return;
  flush_timer_.cancel();
#if defined(__linux__)
  std::size_t offset = 0;
  while (offset < pending_sends_.size()) {
    const std::size_t batch =
        std::min(kIoBatch, pending_sends_.size() - offset);
    iovec iovs[kIoBatch];
    mmsghdr msgs[kIoBatch];
    std::memset(msgs, 0, sizeof msgs);
    for (std::size_t i = 0; i < batch; ++i) {
      PendingSend& p = pending_sends_[offset + i];
      iovs[i].iov_base = const_cast<std::uint8_t*>(p.frame.data());
      iovs[i].iov_len = p.frame.size();
      msgs[i].msg_hdr.msg_name = &p.to;
      msgs[i].msg_hdr.msg_namelen = sizeof p.to;
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int sent =
        ::sendmmsg(fd_, msgs, static_cast<unsigned int>(batch), 0);
    if (sent < 0) {
      // EAGAIN/ENOBUFS: fire-and-forget semantics drop the whole remainder
      // rather than block the loop (the datagram contract allows loss).
      total_dropped_.fetch_add(pending_sends_.size() - offset,
                               std::memory_order_relaxed);
      break;
    }
    batched_send_.fetch_add(static_cast<std::uint64_t>(sent),
                            std::memory_order_relaxed);
    offset += static_cast<std::size_t>(sent);
    if (static_cast<std::size_t>(sent) < batch) {
      // Partial batch: the next datagram hit a transient error; drop it and
      // continue with the rest.
      total_dropped_.fetch_add(1, std::memory_order_relaxed);
      ++offset;
    }
  }
#else
  for (const PendingSend& p : pending_sends_) {
    const ssize_t n = ::sendto(fd_, p.frame.data(), p.frame.size(), 0,
                               reinterpret_cast<const sockaddr*>(&p.to),
                               sizeof p.to);
    if (n < 0 || static_cast<std::size_t>(n) != p.frame.size()) {
      total_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
#endif
  pending_sends_.clear();
}

void UdpTransport::send(Message msg) {
  total_sent_.fetch_add(1, std::memory_order_relaxed);
  const sockaddr_in* to = book_.lookup(msg.dst);
  if (to == nullptr) {
    // unknown peer: same fate as a simulated blackhole
    total_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (msg.payload.size() > kMaxFramePayload) {
    total_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  send_frame_to(msg, *to);
}

void UdpTransport::send_to(const Message& msg, const sockaddr_in& to) {
  total_sent_.fetch_add(1, std::memory_order_relaxed);
  if (msg.payload.size() > kMaxFramePayload) {
    total_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  send_frame_to(msg, to);
}

void UdpTransport::handle_probe(const Message& msg, const sockaddr_in& from) {
  if (msg.src.valid()) {
    book_.observe(msg.src, from);
    Reader r(msg.payload);
    if (const auto endpoint = decode_endpoint_opt(r); endpoint && r.ok()) {
      learn_endpoint(msg.src, *endpoint);
    }
  }
  // Answer for every node living on this socket (one per server process).
  // No handler yet means the node is still booting: stay silent and let the
  // prober's retry find us ready.
  for (const auto& [node, handler] : handlers_) {
    Message reply;
    reply.src = node;
    reply.dst = msg.src;
    reply.type = kAddrProbeReply;
    Writer w;
    encode_endpoint_opt(w, local_endpoint_);
    reply.payload = w.take_payload();
    send_frame_to(reply, from);
  }
}

void UdpTransport::handle_probe_reply(const Message& msg,
                                      const sockaddr_in& from) {
  if (!msg.src.valid()) return;
  bool was_pending = false;
  std::erase_if(pending_seeds_, [&](const sockaddr_in& seed) {
    const bool match = same_addr(seed, from);
    was_pending |= match;
    return match;
  });
  if (!was_pending) {
    // Not a seed we are waiting on: a directed probe_peer() answer (or a
    // duplicate). Adopt the advertised endpoint — this is how a client
    // learns a server's stream port — but pin nothing.
    Reader r(msg.payload);
    if (const auto endpoint = decode_endpoint_opt(r); endpoint && r.ok()) {
      learn_endpoint(msg.src, *endpoint);
    }
    return;
  }
  // The seed is configuration: pin it like a static peer, then let its
  // stamped endpoint (if advertised) record freshness for future healing.
  book_.pin(msg.src, from);
  Reader r(msg.payload);
  if (const auto endpoint = decode_endpoint_opt(r); endpoint && r.ok()) {
    learn_endpoint(msg.src, *endpoint);
  }
  if (pending_seeds_.empty()) seed_timer_.cancel();
  if (seed_listener_) seed_listener_(msg.src);
}

void UdpTransport::handle_stats_request(const Message& msg,
                                        const sockaddr_in& from) {
  if (!stats_provider_) {
    if (stats_forwarder_) {
      // Worker shard: shard 0 owns the render; hand the request over.
      stats_forwarder_(msg, from);
      return;
    }
    // no provider: scrape unanswered, like a dead peer
    total_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::string text = stats_provider_();
  if (text.size() > kMaxFramePayload) {
    // One datagram per scrape: better a truncated (still line-oriented)
    // snapshot than a frame the receiving side would drop whole.
    text.resize(kMaxFramePayload);
  }
  Message reply;
  reply.src = handlers_.empty() ? NodeId() : handlers_.begin()->first;
  reply.dst = msg.src;
  reply.type = kStatsReply;
  reply.payload = Payload(ByteView(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  send_frame_to(reply, from);
}

void UdpTransport::on_readable() {
  // Drain everything queued on the socket: the poll step is level-triggered
  // but one wakeup may cover many datagrams.
#if defined(__linux__)
  if (options_.batch_io) {
    const std::size_t slot = kFrameHeaderSize + kMaxFramePayload + 1024;
    for (;;) {
      iovec iovs[kIoBatch];
      mmsghdr msgs[kIoBatch];
      sockaddr_in froms[kIoBatch];
      std::memset(msgs, 0, sizeof msgs);
      for (std::size_t i = 0; i < kIoBatch; ++i) {
        iovs[i].iov_base = recv_buffers_.data() + i * slot;
        iovs[i].iov_len = slot;
        msgs[i].msg_hdr.msg_name = &froms[i];
        msgs[i].msg_hdr.msg_namelen = sizeof froms[i];
        msgs[i].msg_hdr.msg_iov = &iovs[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
      }
      const int received = ::recvmmsg(fd_, msgs, kIoBatch, 0, nullptr);
      if (received <= 0) return;  // EAGAIN: drained
      batched_recv_.fetch_add(static_cast<std::uint64_t>(received),
                              std::memory_order_relaxed);
      for (int i = 0; i < received; ++i) {
        process_datagram(ByteView(recv_buffers_.data() + i * slot,
                                  msgs[i].msg_len),
                         froms[i]);
      }
      if (static_cast<std::size_t>(received) < kIoBatch) return;  // drained
    }
  }
#endif
  std::uint8_t buf[kFrameHeaderSize + kMaxFramePayload + 1024];
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof from;
    const ssize_t n =
        ::recvfrom(fd_, buf, sizeof buf, 0,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      // EAGAIN/EWOULDBLOCK: drained. Anything else: transient; retry on the
      // next poll wakeup.
      return;
    }
    process_datagram(ByteView(buf, static_cast<std::size_t>(n)), from);
  }
}

void UdpTransport::process_datagram(ByteView datagram,
                                    const sockaddr_in& from) {
  auto msg = decode_frame(datagram);
  if (!msg) {
    decode_failures_.fetch_add(1, std::memory_order_relaxed);
    total_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Discovery frames are transport business, not protocol traffic.
  if (msg->type == kAddrProbe) {
    handle_probe(*msg, from);
    return;
  }
  if (msg->type == kAddrProbeReply) {
    handle_probe_reply(*msg, from);
    return;
  }
  if (msg->type == kStatsRequest) {
    handle_stats_request(*msg, from);
    return;
  }
  // Record the sender's address so replies (and client acks) route
  // without static configuration; pinned routes are not clobbered.
  if (msg->src.valid()) book_.observe(msg->src, from);

  const auto it = handlers_.find(msg->dst);
  if (it == handlers_.end()) {
    total_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  total_delivered_.fetch_add(1, std::memory_order_relaxed);
  it->second(*msg);
}

void UdpTransport::register_handler(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void UdpTransport::unregister_handler(NodeId node) { handlers_.erase(node); }

}  // namespace dataflasks::net
