#include "net/address_book.hpp"

#include <arpa/inet.h>

#include "common/ensure.hpp"

namespace dataflasks::net {

sockaddr_in to_sockaddr(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(endpoint.ip);
  addr.sin_port = htons(endpoint.port);
  return addr;
}

Endpoint endpoint_of(const sockaddr_in& addr, std::uint64_t stamp) {
  Endpoint endpoint;
  endpoint.ip = ntohl(addr.sin_addr.s_addr);
  endpoint.port = ntohs(addr.sin_port);
  endpoint.stamp = stamp;
  return endpoint;
}

AddressBook::AddressBook() : AddressBook(Options{}) {}

AddressBook::AddressBook(Options options) : options_(options) {
  ensure(options_.max_learned > 0, "AddressBook: zero learned capacity");
}

AddressBook::Entry& AddressBook::upsert(NodeId node) {
  return entries_[node];
}

void AddressBook::pin(NodeId node, const sockaddr_in& addr) {
  Entry& entry = upsert(node);
  if (!entry.pinned) ++pinned_count_;
  entry.addr = addr;
  entry.pinned = true;
  touch(entry);
}

bool AddressBook::learn(NodeId node, const Endpoint& endpoint) {
  if (!endpoint.valid()) return false;
  const auto it = entries_.find(node);
  if (it == entries_.end()) {
    Entry& entry = upsert(node);
    entry.addr = to_sockaddr(endpoint);
    entry.stamp = endpoint.stamp;
    entry.stream_port = endpoint.stream_port;
    touch(entry);
    evict_excess_learned();
    return true;
  }
  Entry& entry = it->second;
  if (endpoint.stamp <= entry.stamp) return false;  // stale gossip
  entry.addr = to_sockaddr(endpoint);
  entry.stamp = endpoint.stamp;
  entry.stream_port = endpoint.stream_port;
  touch(entry);
  return true;
}

void AddressBook::observe(NodeId node, const sockaddr_in& from) {
  const auto it = entries_.find(node);
  if (it == entries_.end()) {
    Entry& entry = upsert(node);
    entry.addr = from;
    touch(entry);
    evict_excess_learned();
    return;
  }
  Entry& entry = it->second;
  // A datagram source is live evidence only for entries nothing better has
  // claimed: pinned routes are configuration, and a stamped entry was set
  // by the node's own gossiped endpoint — a stray datagram (delayed packet
  // from a dead socket, forged src) must not displace either, or gossip at
  // the same stamp could never re-assert the true address. Both heal
  // exclusively through a strictly fresher stamp.
  if (!entry.pinned && entry.stamp == 0) entry.addr = from;
  touch(entry);
}

const sockaddr_in* AddressBook::lookup(NodeId node) const {
  const auto it = entries_.find(node);
  return it != entries_.end() ? &it->second.addr : nullptr;
}

bool AddressBook::pinned(NodeId node) const {
  const auto it = entries_.find(node);
  return it != entries_.end() && it->second.pinned;
}

std::uint64_t AddressBook::stamp_of(NodeId node) const {
  const auto it = entries_.find(node);
  return it != entries_.end() ? it->second.stamp : 0;
}

std::uint16_t AddressBook::port_of(NodeId node) const {
  const auto it = entries_.find(node);
  return it != entries_.end() ? ntohs(it->second.addr.sin_port) : 0;
}

std::uint16_t AddressBook::stream_port_of(NodeId node) const {
  const auto it = entries_.find(node);
  return it != entries_.end() ? it->second.stream_port : 0;
}

std::optional<sockaddr_in> AddressBook::stream_addr_of(NodeId node) const {
  const auto it = entries_.find(node);
  if (it == entries_.end() || it->second.stream_port == 0) return std::nullopt;
  sockaddr_in addr = it->second.addr;
  addr.sin_port = htons(it->second.stream_port);
  return addr;
}

void AddressBook::evict_excess_learned() {
  while (learned_count() > options_.max_learned) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.pinned) continue;
      if (victim == entries_.end() ||
          it->second.touched < victim->second.touched) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // all pinned (unreachable)
    const NodeId evicted = victim->first;
    entries_.erase(victim);
    if (evict_listener_) evict_listener_(evicted);
  }
}

}  // namespace dataflasks::net
