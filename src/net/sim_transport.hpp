// Simulated transport: routes messages between registered node handlers
// through the runtime's event queue, applying the NetworkModel's latency,
// loss, partition and liveness policy. Also the system's accounting point:
// per-node and per-category counters of messages and bytes.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/metrics.hpp"
#include "net/transport.hpp"
#include "runtime/runtime.hpp"
#include "sim/network.hpp"

namespace dataflasks::net {

/// Per-node traffic totals. `sent`/`received` count message envelopes, which
/// is what the paper's Figures 3-4 report per node.
struct TrafficStats {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  [[nodiscard]] std::uint64_t total_messages() const {
    return sent + received;
  }
};

class SimTransport final : public Transport {
 public:
  /// Works against any Runtime (the harness hands it the Simulator; a
  /// latency-injecting loopback setup could hand it the real-time loop).
  SimTransport(runtime::Runtime& rt, sim::NetworkModel& model);

  void send(Message msg) override;
  void register_handler(NodeId node, Handler handler) override;
  void unregister_handler(NodeId node) override;

  [[nodiscard]] bool has_handler(NodeId node) const {
    return handlers_.contains(node);
  }

  /// Traffic accounting. Sends are counted when the packet leaves (even if
  /// later dropped — the sender did the work); receives when delivered.
  [[nodiscard]] const TrafficStats& stats(NodeId node) const;
  [[nodiscard]] TrafficStats stats_for_category(NodeId node,
                                                MsgCategory category) const;
  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }
  [[nodiscard]] std::uint64_t total_delivered() const {
    return total_delivered_;
  }
  [[nodiscard]] std::uint64_t total_dropped() const { return total_dropped_; }

  /// Resets every counter; used by benches to exclude warm-up traffic.
  void reset_stats();

 private:
  /// Totals and per-category stats share one map entry, so accounting a
  /// message is a single hash lookup per side instead of two.
  struct NodeStats {
    TrafficStats total;
    TrafficStats per_category[6];
  };

  void deliver(const Message& msg);

  runtime::Runtime& runtime_;
  sim::NetworkModel& model_;
  Rng rng_;
  std::unordered_map<NodeId, Handler> handlers_;
  std::unordered_map<NodeId, NodeStats> node_stats_;
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t total_dropped_ = 0;
};

}  // namespace dataflasks::net
