// Wire message envelope. Every protocol interaction in the system crosses
// this type, which makes per-node / per-category message accounting (the
// quantity the paper's Figures 3 and 4 plot) exact rather than estimated.
#pragma once

#include <cstdint>
#include <string>

#include "common/payload.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace dataflasks::net {

/// Message type tags are allocated in per-subsystem ranges so the transport
/// can classify traffic without knowing protocol internals.
enum class MsgCategory : std::uint8_t {
  kPeerSampling,   ///< membership maintenance (Cyclon / Newscast shuffles)
  kSlicing,        ///< slicing protocol gossip
  kRequest,        ///< client request dissemination, replies, replication
  kAntiEntropy,    ///< periodic replica repair traffic
  kBaseline,       ///< structured (Chord) baseline traffic
  kOther,
};

constexpr std::uint16_t kPssTypeBase = 0x0100;
constexpr std::uint16_t kSlicingTypeBase = 0x0200;
constexpr std::uint16_t kRequestTypeBase = 0x0300;
constexpr std::uint16_t kAntiEntropyTypeBase = 0x0400;
constexpr std::uint16_t kBaselineTypeBase = 0x0500;

[[nodiscard]] MsgCategory category_of(std::uint16_t type);
[[nodiscard]] const char* to_string(MsgCategory category);

struct Message {
  NodeId src;
  NodeId dst;
  std::uint16_t type = 0;
  /// Immutable shared payload: copying a Message (e.g. fanning one frame
  /// out to k peers) bumps a refcount instead of duplicating the bytes.
  Payload payload;

  /// Bytes on the wire: payload plus a fixed header estimate
  /// (src + dst + type + length), mirroring a UDP datagram layout.
  [[nodiscard]] std::size_t wire_size() const {
    return payload.size() + 2 * sizeof(std::uint64_t) + sizeof(std::uint16_t) +
           sizeof(std::uint32_t);
  }

  [[nodiscard]] MsgCategory category() const { return category_of(type); }
};

}  // namespace dataflasks::net
