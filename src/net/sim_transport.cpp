#include "net/sim_transport.hpp"

#include <utility>

namespace dataflasks::net {

SimTransport::SimTransport(sim::Simulator& simulator, sim::NetworkModel& model)
    : simulator_(simulator), model_(model), rng_(simulator.rng().fork(0x7a57)) {}

void SimTransport::send(Message msg) {
  const auto category = static_cast<std::size_t>(msg.category());
  auto& sender = node_stats_[msg.src];
  sender.sent += 1;
  sender.bytes_sent += msg.wire_size();
  auto& sender_cat = category_stats_[msg.src].stats[category];
  sender_cat.sent += 1;
  sender_cat.bytes_sent += msg.wire_size();
  ++total_sent_;

  const auto delay = model_.delivery_delay(msg.src, msg.dst, rng_);
  if (!delay) {
    ++total_dropped_;
    return;
  }

  simulator_.schedule_after(*delay, [this, m = std::move(msg)]() {
    deliver(m);
  });
}

void SimTransport::deliver(const Message& msg) {
  // Liveness is re-checked at delivery time: the destination may have
  // crashed while the packet was in flight.
  if (!model_.node_up(msg.dst)) {
    ++total_dropped_;
    return;
  }
  const auto it = handlers_.find(msg.dst);
  if (it == handlers_.end()) {
    ++total_dropped_;
    return;
  }

  const auto category = static_cast<std::size_t>(msg.category());
  auto& receiver = node_stats_[msg.dst];
  receiver.received += 1;
  receiver.bytes_received += msg.wire_size();
  auto& receiver_cat = category_stats_[msg.dst].stats[category];
  receiver_cat.received += 1;
  receiver_cat.bytes_received += msg.wire_size();
  ++total_delivered_;

  it->second(msg);
}

void SimTransport::register_handler(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void SimTransport::unregister_handler(NodeId node) { handlers_.erase(node); }

const TrafficStats& SimTransport::stats(NodeId node) const {
  static const TrafficStats kEmpty;
  const auto it = node_stats_.find(node);
  return it == node_stats_.end() ? kEmpty : it->second;
}

TrafficStats SimTransport::stats_for_category(NodeId node,
                                              MsgCategory category) const {
  const auto it = category_stats_.find(node);
  if (it == category_stats_.end()) return {};
  return it->second.stats[static_cast<std::size_t>(category)];
}

void SimTransport::reset_stats() {
  node_stats_.clear();
  category_stats_.clear();
  total_sent_ = 0;
  total_delivered_ = 0;
  total_dropped_ = 0;
}

}  // namespace dataflasks::net
