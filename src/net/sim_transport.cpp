#include "net/sim_transport.hpp"

#include <utility>

namespace dataflasks::net {

SimTransport::SimTransport(runtime::Runtime& rt, sim::NetworkModel& model)
    : runtime_(rt), model_(model), rng_(rt.rng().fork(0x7a57)) {}

void SimTransport::send(Message msg) {
  const auto category = static_cast<std::size_t>(msg.category());
  NodeStats& sender = node_stats_[msg.src];
  sender.total.sent += 1;
  sender.total.bytes_sent += msg.wire_size();
  sender.per_category[category].sent += 1;
  sender.per_category[category].bytes_sent += msg.wire_size();
  ++total_sent_;

  const auto delay = model_.delivery_delay(msg.src, msg.dst, rng_);
  if (!delay) {
    ++total_dropped_;
    return;
  }

  // Fire-and-forget post: the closure (this + the Message with its shared
  // payload view) is moved into the event-queue slot inline — an in-flight
  // packet costs zero heap allocations.
  runtime_.post_after(*delay, [this, m = std::move(msg)]() {
    deliver(m);
  });
}

void SimTransport::deliver(const Message& msg) {
  // Liveness is re-checked at delivery time: the destination may have
  // crashed while the packet was in flight.
  if (!model_.node_up(msg.dst)) {
    ++total_dropped_;
    return;
  }
  const auto it = handlers_.find(msg.dst);
  if (it == handlers_.end()) {
    ++total_dropped_;
    return;
  }

  const auto category = static_cast<std::size_t>(msg.category());
  NodeStats& receiver = node_stats_[msg.dst];
  receiver.total.received += 1;
  receiver.total.bytes_received += msg.wire_size();
  receiver.per_category[category].received += 1;
  receiver.per_category[category].bytes_received += msg.wire_size();
  ++total_delivered_;

  it->second(msg);
}

void SimTransport::register_handler(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void SimTransport::unregister_handler(NodeId node) { handlers_.erase(node); }

const TrafficStats& SimTransport::stats(NodeId node) const {
  static const TrafficStats kEmpty;
  const auto it = node_stats_.find(node);
  return it == node_stats_.end() ? kEmpty : it->second.total;
}

TrafficStats SimTransport::stats_for_category(NodeId node,
                                              MsgCategory category) const {
  const auto it = node_stats_.find(node);
  if (it == node_stats_.end()) return {};
  return it->second.per_category[static_cast<std::size_t>(category)];
}

void SimTransport::reset_stats() {
  node_stats_.clear();
  total_sent_ = 0;
  total_delivered_ = 0;
  total_dropped_ = 0;
}

}  // namespace dataflasks::net
