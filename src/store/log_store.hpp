// Log-structured persistent Data Store: an append-only record log with an
// in-memory index, CRC-validated recovery and offline compaction. This is
// the "node hard disk" persistence mechanism the paper's Data Store
// abstraction points at (§V).
//
// Record layout (little-endian):
//   u32 magic | u32 crc_of_body | u32 body_len | body
//   body = u32 key_len | key | u64 version | u8 flags
//          | [i64 deleted_at when tombstone] | [i64 expires_at when TTL'd]
//          | u32 value_len | value
// (the same codec as the wire Object). Recovery scans the log, skipping the
// tail after the first corrupt or truncated record (torn write on crash),
// and replays tombstone semantics so a reopened store agrees with the live
// one: a tombstone record prunes superseded versions from the index.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>

#include "store/store.hpp"

namespace dataflasks::store {

class LogStore final : public Store {
 public:
  /// Opens (creating if absent) the log at `path` and rebuilds the index.
  /// Check `open_status()` before use.
  explicit LogStore(std::string path);
  ~LogStore() override;

  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  [[nodiscard]] const Status& open_status() const { return open_status_; }

  Status put(const Object& obj) override;
  [[nodiscard]] Result<Object> get(
      const Key& key, std::optional<Version> version) const override;
  [[nodiscard]] bool contains(const Key& key, Version version) const override;
  [[nodiscard]] Version tombstone_version(const Key& key) const override;
  std::size_t gc_tombstones(SimTime now, SimTime grace) override;
  [[nodiscard]] std::vector<DigestEntry> digest() const override;
  [[nodiscard]] const std::vector<DigestEntry>& digest_entries() const override;
  void for_each(const std::function<void(const Object&)>& fn) const override;
  [[nodiscard]] std::vector<Object> all() const override;
  std::size_t remove_keys_where(
      const std::function<bool(const Key&)>& predicate) override;
  [[nodiscard]] std::size_t object_count() const override {
    return object_count_;
  }
  [[nodiscard]] std::size_t value_bytes() const override {
    return value_bytes_;
  }
  ReapStats reap(SimTime now, std::size_t max_bytes) override;
  [[nodiscard]] std::uint64_t mutation_rev() const override { return rev_; }
  /// Index-only: counts without reading record bodies back from disk.
  [[nodiscard]] StoreBreakdown breakdown() const override;

  /// Rewrites the log keeping only indexed records (drops removed objects
  /// and torn tails). Returns bytes reclaimed.
  Result<std::size_t> compact();
  Result<std::size_t> compact_storage() override { return compact(); }

  /// Flushes buffered appends to the OS.
  Status sync();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t log_bytes() const { return log_end_; }

 private:
  struct Slot {
    std::size_t offset = 0;    ///< file offset of the record body
    std::uint32_t body_len = 0;
    bool tombstone = false;    ///< mirrored from the record, for digest/GC
    SimTime deleted_at = 0;    ///< tombstone deletion stamp
    SimTime expires_at = 0;    ///< TTL deadline (0 = never), for the reaper
  };

  Status recover();
  Status append_record(const Object& obj, Slot& out);
  [[nodiscard]] Result<Object> read_record(const Slot& slot) const;
  /// Applies tombstone-aware index semantics for one object (shared by
  /// put() and recovery replay). Returns false when the object is
  /// superseded by an existing tombstone and must be discarded.
  bool index_insert(const Object& obj, const Slot& slot);
  /// True when a stored tombstone with a strictly higher version
  /// supersedes `version` (equal versions are handled by the existing-entry
  /// conflict check).
  [[nodiscard]] static bool superseded_by_tombstone(
      const std::map<Version, Slot>& versions, Version version);
  /// Value byte count of an indexed record, recovered from the body length.
  [[nodiscard]] static std::size_t value_length(const Key& key,
                                                const Slot& slot);

  std::string path_;
  std::FILE* file_ = nullptr;
  Status open_status_;
  std::unordered_map<Key, std::map<Version, Slot>> index_;
  std::size_t log_end_ = 0;
  std::size_t object_count_ = 0;
  std::size_t value_bytes_ = 0;
  std::uint64_t rev_ = 0;  ///< bumped on every index mutation (mutation_rev())

  // Incrementally maintained digest, mirroring MemStore: appended on put,
  // rebuilt lazily after recovery/removal/compaction.
  mutable std::vector<DigestEntry> digest_cache_;
  mutable bool digest_dirty_ = false;
};

}  // namespace dataflasks::store
