// Checkpointed storage engine: the durable Data Store for v2.
//
// Layout on disk — numbered generations next to a base path:
//
//   <base>.snap.<seq>     one stream of live objects + tombstones behind a
//                         CRC'd header (u32 magic | u64 seq | u64 count |
//                         u64 body_len | u32 body_crc), written atomically
//                         (tmp + fsync + rename) by checkpoint()
//   <base>.journal.<seq>  mutations accepted since snap.<seq>, in LogStore
//                         record framing (u32 magic | u32 crc | u32 len |
//                         body = the wire Object codec)
//
// Restart loads the newest valid snapshot, then replays every journal of
// that generation or later — O(snapshot + tail) instead of O(history).
// A corrupt snapshot falls back to the previous generation *loudly*
// (recovery().warnings); snapshots present but none loadable is an open
// error, never a silently empty store. A torn journal tail is truncated at
// the last whole record, also loudly.
//
// Removals (tombstone GC, expiry, eviction, slice-change drops) are NOT
// journaled: replay may resurrect them in memory, and the same timers that
// removed them remove them again — safe because TTL deadlines and deletion
// stamps are absolute, and cheaper than journaling every reap. checkpoint()
// makes removals durable by rewriting the live set.
//
// TTL and eviction: an expiry wheel (min-heap over deadlines, lazily
// validated) makes reap() proportional to what actually expired, and an
// exact LRU list (touched on put/get) picks eviction victims when
// value bytes exceed the reap budget. Tombstoned keys are never evicted.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <list>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/memstore.hpp"
#include "store/store.hpp"

namespace dataflasks::store {

class StorageEngine final : public Store {
 public:
  /// What recovery found, for the boot log line and tests.
  struct RecoveryInfo {
    bool loaded_snapshot = false;
    std::uint64_t snapshot_seq = 0;
    std::size_t snapshot_objects = 0;
    std::size_t journals_replayed = 0;
    std::size_t records_replayed = 0;
    /// Non-fatal anomalies recovery worked around (corrupt snapshot fell
    /// back a generation, torn journal tail truncated). Loud by contract:
    /// the server prints every line at boot.
    std::vector<std::string> warnings;
  };

  /// Opens (creating if absent) the generation files next to `base_path`
  /// and recovers. Check open_status() before use.
  explicit StorageEngine(std::string base_path);
  ~StorageEngine() override;

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  [[nodiscard]] const Status& open_status() const { return open_status_; }
  [[nodiscard]] const RecoveryInfo& recovery() const { return recovery_; }

  Status put(const Object& obj) override;
  [[nodiscard]] Result<Object> get(
      const Key& key, std::optional<Version> version) const override;
  [[nodiscard]] bool contains(const Key& key, Version version) const override;
  [[nodiscard]] Version tombstone_version(const Key& key) const override;
  std::size_t gc_tombstones(SimTime now, SimTime grace) override;
  [[nodiscard]] std::vector<DigestEntry> digest() const override;
  [[nodiscard]] const std::vector<DigestEntry>& digest_entries()
      const override;
  void for_each(const std::function<void(const Object&)>& fn) const override;
  [[nodiscard]] std::vector<Object> all() const override;
  std::size_t remove_keys_where(
      const std::function<bool(const Key&)>& predicate) override;
  [[nodiscard]] std::size_t object_count() const override {
    return inner_.object_count();
  }
  [[nodiscard]] std::size_t value_bytes() const override {
    return inner_.value_bytes();
  }
  ReapStats reap(SimTime now, std::size_t max_bytes) override;
  [[nodiscard]] std::uint64_t mutation_rev() const override {
    return inner_.mutation_rev();
  }
  [[nodiscard]] StoreBreakdown breakdown() const override {
    return inner_.breakdown();
  }

  /// Writes snapshot generation seq+1 from the live set, starts a fresh
  /// journal, and deletes generations older than the previous one (two are
  /// kept so a corrupt newest snapshot still has a fallback). Returns bytes
  /// reclaimed on disk.
  Result<std::size_t> checkpoint();
  Result<std::size_t> compact_storage() override { return checkpoint(); }

  /// Flushes buffered journal appends to the OS.
  Status sync();

  [[nodiscard]] std::uint64_t generation() const { return seq_; }
  /// Journal-tail length: bytes appended since the last checkpoint.
  /// Atomic load — safe from the metrics thread while a shard appends.
  [[nodiscard]] std::size_t journal_bytes() const {
    return journal_end_.load(std::memory_order_relaxed);
  }
  /// Seconds since the last checkpoint (or since open, before the first).
  /// Also safe cross-thread (atomic timestamp).
  [[nodiscard]] double snapshot_age_seconds() const;

 private:
  struct ExpiryEntry {
    SimTime expires_at = 0;
    Key key;
    Version version = 0;
    /// Min-heap order: the soonest deadline on top.
    friend bool operator>(const ExpiryEntry& a, const ExpiryEntry& b) {
      return a.expires_at > b.expires_at;
    }
  };

  [[nodiscard]] std::string snap_path(std::uint64_t seq) const;
  [[nodiscard]] std::string journal_path(std::uint64_t seq) const;

  Status recover();
  /// Loads a snapshot file into `inner_`; returns the object count.
  Result<std::size_t> load_snapshot(const std::string& path,
                                    std::uint64_t expected_seq);
  /// Replays one journal; returns records applied. A torn tail truncates
  /// the file and appends a warning instead of failing.
  Result<std::size_t> replay_journal(std::uint64_t seq);
  /// Opens (creating if absent) journal.<seq> for appends.
  Status open_journal(std::uint64_t seq);
  Status append_journal(const Object& obj);

  /// Stores into `inner_` and maintains the expiry wheel and LRU list —
  /// everything put() does except journaling; recovery replay uses it too.
  Status apply(const Object& obj);
  // const: reads refresh recency through the Store's const read API.
  void lru_touch(const Key& key) const;
  void lru_forget(const Key& key) const;

  std::string base_;
  Status open_status_;
  RecoveryInfo recovery_;
  MemStore inner_;

  std::uint64_t seq_ = 0;  ///< current generation (journal in progress)
  std::FILE* journal_ = nullptr;
  /// Atomic only so the server's metrics renderer can read journal_bytes()
  /// and snapshot age from another thread; all writes stay on the owner
  /// (the owning shard serializes mutations through ShardedStore's locks).
  std::atomic<std::size_t> journal_end_{0};
  std::atomic<std::int64_t> last_checkpoint_us_{0};

  std::priority_queue<ExpiryEntry, std::vector<ExpiryEntry>,
                      std::greater<ExpiryEntry>>
      expiry_wheel_;
  // Exact LRU over keys: list front = coldest. Mutable because reads
  // (get) refresh recency behind the Store's const read API.
  mutable std::list<Key> lru_list_;
  mutable std::unordered_map<Key, std::list<Key>::iterator> lru_index_;
};

}  // namespace dataflasks::store
