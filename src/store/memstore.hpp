// In-memory versioned store: the default Data Store in simulations, where a
// node crash is expected to lose state (durability then comes from the
// other replicas in the slice, which is exactly what churn benches measure).
#pragma once

#include <map>
#include <unordered_map>

#include "store/store.hpp"

namespace dataflasks::store {

class MemStore final : public Store {
 public:
  MemStore() = default;

  Status put(const Object& obj) override;
  [[nodiscard]] Result<Object> get(
      const Key& key, std::optional<Version> version) const override;
  [[nodiscard]] bool contains(const Key& key, Version version) const override;
  [[nodiscard]] std::vector<DigestEntry> digest() const override;
  [[nodiscard]] std::vector<Object> all() const override;
  std::size_t remove_keys_where(
      const std::function<bool(const Key&)>& predicate) override;
  [[nodiscard]] std::size_t object_count() const override {
    return object_count_;
  }
  [[nodiscard]] std::size_t value_bytes() const override {
    return value_bytes_;
  }

  void clear();

 private:
  // Ordered inner map: "latest version" is rbegin(), and digests come out
  // deterministically ordered for stable tests.
  std::unordered_map<Key, std::map<Version, Bytes>> data_;
  std::size_t object_count_ = 0;
  std::size_t value_bytes_ = 0;
};

}  // namespace dataflasks::store
