// In-memory versioned store: the default Data Store in simulations, where a
// node crash is expected to lose state (durability then comes from the
// other replicas in the slice, which is exactly what churn benches measure).
//
// Values are shared immutable Payloads: storing a replicated object retains
// a view of the frame it arrived in (refcount bump, no byte copy), and gets
// hand the same buffer back out. The digest is maintained incrementally —
// appended on put, rebuilt lazily only after removals — so the per-round
// anti-entropy digest costs O(1) instead of an O(n) walk of the version maps.
//
// Tombstones are stored as regular versions with per-version metadata; a
// tombstone put prunes superseded older versions immediately, and
// gc_tombstones() drops tombstones past their grace period.
#pragma once

#include <unordered_map>
#include <vector>

#include "store/store.hpp"

namespace dataflasks::store {

class MemStore final : public Store {
 public:
  MemStore() = default;

  Status put(const Object& obj) override;
  [[nodiscard]] Result<Object> get(
      const Key& key, std::optional<Version> version) const override;
  [[nodiscard]] bool contains(const Key& key, Version version) const override;
  [[nodiscard]] Version tombstone_version(const Key& key) const override;
  std::size_t gc_tombstones(SimTime now, SimTime grace) override;
  [[nodiscard]] std::vector<DigestEntry> digest() const override;
  [[nodiscard]] const std::vector<DigestEntry>& digest_entries() const override;
  void for_each(const std::function<void(const Object&)>& fn) const override;
  [[nodiscard]] std::vector<Object> all() const override;
  std::size_t remove_keys_where(
      const std::function<bool(const Key&)>& predicate) override;
  [[nodiscard]] std::size_t object_count() const override {
    return object_count_;
  }
  [[nodiscard]] std::size_t value_bytes() const override {
    return value_bytes_;
  }
  ReapStats reap(SimTime now, std::size_t max_bytes) override;
  [[nodiscard]] std::uint64_t mutation_rev() const override { return rev_; }

  /// Targeted removal, for callers that track expiry/eviction candidates
  /// externally (the storage engine's expiry wheel and LRU list). Returns
  /// whether the version existed.
  bool erase_version(const Key& key, Version version);
  /// Removes every version of `key`; returns how many were removed.
  std::size_t erase_key(const Key& key);

  void clear();

 private:
  /// Per-version deletion/expiry metadata, parallel to `versions`/`values`.
  struct Meta {
    bool tombstone = false;
    SimTime deleted_at = 0;
    SimTime expires_at = 0;
  };

  // Versions of one key, kept sorted ascending — "latest" is back(). Puts
  // arrive in near-increasing version order, so insertion is an amortized
  // O(1) push_back; a flat vector beats a std::map here (no per-version
  // tree node allocation, binary-search lookups on contiguous memory).
  struct VersionedValues {
    std::vector<Version> versions;  ///< sorted ascending
    std::vector<Payload> values;    ///< parallel to `versions`
    std::vector<Meta> meta;         ///< parallel to `versions`
    /// Newest tombstone version currently stored for this key (0 = none).
    /// GC of the tombstone forgets the delete entirely — that is the
    /// grace-period contract.
    Version max_tombstone = 0;

    /// Index of `version`, or npos.
    [[nodiscard]] std::size_t find(Version version) const;
    static constexpr std::size_t npos = ~std::size_t{0};
  };

  [[nodiscard]] Object object_at(const Key& key, const VersionedValues& slot,
                                 std::size_t index) const;
  /// Erases entry `index` from `slot`, updating the global counters.
  void erase_entry(VersionedValues& slot, std::size_t index);

  std::unordered_map<Key, VersionedValues> data_;
  std::size_t object_count_ = 0;
  std::size_t value_bytes_ = 0;
  std::uint64_t rev_ = 0;  ///< bumped on every mutation (mutation_rev())

  // Incrementally maintained digest: put() appends; removals mark it dirty
  // and the next digest_entries() call rebuilds. Mutable so the lazily
  // rebuilt cache stays behind a const read API.
  mutable std::vector<DigestEntry> digest_cache_;
  mutable bool digest_dirty_ = false;
};

}  // namespace dataflasks::store
