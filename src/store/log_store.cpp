#include "store/log_store.hpp"

#include <cstring>
#include <vector>

#include "common/hash.hpp"
#include "common/serialize.hpp"

namespace dataflasks::store {

namespace {

// Bumped (…06) when the body grew the tombstone flags/stamp fields: a log
// in the old format must fail loudly at open, not be silently treated as
// one long torn tail.
constexpr std::uint32_t kMagic = 0xDF1A5C06;
constexpr std::uint32_t kLegacyMagic = 0xDF1A5C05;
constexpr std::size_t kHeaderSize = 3 * sizeof(std::uint32_t);

void encode_body(Writer& w, const Object& obj) {
  encode(w, obj);  // record body == the wire Object codec
}

bool decode_body(const Bytes& body, Object& out) {
  Reader r(body);
  out = decode_object(r);
  return r.finish().ok();
}

}  // namespace

LogStore::LogStore(std::string path) : path_(std::move(path)) {
  // "a+b" creates the file when missing but fseek/fread still work.
  file_ = std::fopen(path_.c_str(), "a+b");
  if (file_ == nullptr) {
    open_status_ = Error::io("cannot open log file: " + path_);
    return;
  }
  open_status_ = recover();
}

LogStore::~LogStore() {
  if (file_ != nullptr) std::fclose(file_);
}

bool LogStore::superseded_by_tombstone(const std::map<Version, Slot>& versions,
                                       Version version) {
  // Only strictly-higher versions can supersede, and the map is
  // version-ordered: scan just the range above ours. For the common case —
  // the incoming version is the key's newest — that range is empty, so a
  // version-heavy key costs O(log v) per put instead of a full scan (which
  // made recovery of an update-hot log quadratic).
  for (auto it = versions.upper_bound(version); it != versions.end(); ++it) {
    if (it->second.tombstone) return true;
  }
  return false;
}

bool LogStore::index_insert(const Object& obj, const Slot& slot) {
  auto& versions = index_[obj.key];
  if (!obj.tombstone && superseded_by_tombstone(versions, obj.version)) {
    // Late copy of a version the key's tombstone supersedes (a stale record
    // behind a tombstone in the log): discard so deletes stick.
    return false;
  }
  const auto it = versions.find(obj.version);
  if (it == versions.end()) {
    ++object_count_;
    value_bytes_ += obj.value.size();
  }
  versions[obj.version] = slot;  // later duplicate records win (same data)

  if (obj.tombstone) {
    // The delete supersedes every older version: drop them from the index
    // (the log records linger until compact()).
    for (auto vit = versions.begin(); vit != versions.end();) {
      if (vit->first < obj.version) {
        --object_count_;
        value_bytes_ -= value_length(obj.key, vit->second);
        vit = versions.erase(vit);
        digest_dirty_ = true;
      } else {
        break;  // map is version-ordered
      }
    }
  }
  return true;
}

Status LogStore::recover() {
  std::fseek(file_, 0, SEEK_END);
  const long end = std::ftell(file_);
  if (end < 0) return Error::io("ftell failed on " + path_);

  // One sequential buffered pass: the loop below always consumes exactly
  // header+body per record, so the stream position tracks `pos` by itself —
  // re-seeking per record would flush stdio's read-ahead every iteration.
  std::size_t pos = 0;
  std::fseek(file_, 0, SEEK_SET);
  while (pos + kHeaderSize <= static_cast<std::size_t>(end)) {
    std::uint32_t header[3];
    if (std::fread(header, sizeof header, 1, file_) != 1) break;
    const std::uint32_t magic = header[0];
    const std::uint32_t crc = header[1];
    const std::uint32_t body_len = header[2];
    if (magic == kLegacyMagic) {
      return Error::invalid_argument(
          path_ + " uses the pre-tombstone record format; migrate or remove "
                  "the old log");
    }
    if (magic != kMagic) break;
    if (pos + kHeaderSize + body_len > static_cast<std::size_t>(end)) {
      break;  // torn write: record promises more bytes than exist
    }

    Bytes body(body_len);
    if (body_len > 0 && std::fread(body.data(), body_len, 1, file_) != 1) {
      break;
    }
    if (crc32(body.data(), body.size()) != crc) break;  // corrupt record

    Object obj;
    if (!decode_body(body, obj)) break;

    Slot slot{pos + kHeaderSize, body_len, obj.tombstone, obj.deleted_at,
              obj.expires_at};
    digest_dirty_ = true;
    index_insert(obj, slot);
    pos += kHeaderSize + body_len;
  }
  log_end_ = pos;
  // Position for appends; the torn tail (if any) is overwritten by compact().
  std::fseek(file_, 0, SEEK_END);
  return Status::ok_status();
}

std::size_t LogStore::value_length(const Key& key, const Slot& slot) {
  // Value length = body minus key-length field, key, version, flags,
  // optional deletion/expiry stamps and the value-length field.
  const std::size_t overhead =
      sizeof(std::uint32_t) + key.size() + sizeof(std::uint64_t) + 1 +
      (slot.tombstone ? sizeof(std::int64_t) : 0) +
      (slot.expires_at != 0 ? sizeof(std::int64_t) : 0) +
      sizeof(std::uint32_t);
  return slot.body_len >= overhead ? slot.body_len - overhead : 0;
}

Status LogStore::append_record(const Object& obj, Slot& out) {
  Writer w;
  encode_body(w, obj);
  const ByteView body = w.view();
  const std::uint32_t header[3] = {
      kMagic, crc32(body.data(), body.size()),
      static_cast<std::uint32_t>(body.size())};

  std::fseek(file_, 0, SEEK_END);
  const long at = std::ftell(file_);
  if (at < 0) return Error::io("ftell failed on " + path_);
  if (std::fwrite(header, sizeof header, 1, file_) != 1 ||
      (!body.empty() && std::fwrite(body.data(), body.size(), 1, file_) != 1)) {
    return Error::io("append failed on " + path_);
  }
  out = Slot{static_cast<std::size_t>(at) + kHeaderSize,
             static_cast<std::uint32_t>(body.size()), obj.tombstone,
             obj.deleted_at, obj.expires_at};
  log_end_ = static_cast<std::size_t>(at) + kHeaderSize + body.size();
  return Status::ok_status();
}

Result<Object> LogStore::read_record(const Slot& slot) const {
  Bytes body(slot.body_len);
  std::fseek(file_, static_cast<long>(slot.offset), SEEK_SET);
  if (slot.body_len > 0 &&
      std::fread(body.data(), slot.body_len, 1, file_) != 1) {
    return Error::io("short read at offset " + std::to_string(slot.offset));
  }
  Object obj;
  if (!decode_body(body, obj)) {
    return Error::decode("corrupt record at offset " +
                         std::to_string(slot.offset));
  }
  return obj;
}

Status LogStore::put(const Object& obj) {
  if (!open_status_.ok()) return open_status_;
  auto& versions = index_[obj.key];
  const auto it = versions.find(obj.version);
  if (it != versions.end()) {
    // Idempotence / conflict check against the stored record.
    if (it->second.tombstone != obj.tombstone) {
      return Error::conflict("tombstone/value flip for existing version of '" +
                             obj.key + "'");
    }
    auto existing = read_record(it->second);
    if (!existing.ok()) return existing.error();
    if (existing.value().value != obj.value) {
      return Error::conflict("different value for existing version of key '" +
                             obj.key + "'");
    }
    return Status::ok_status();
  }
  if (!obj.tombstone && superseded_by_tombstone(versions, obj.version)) {
    // Superseded by our tombstone: discard (no resurrection) without even
    // appending a record, and report it so write acks stay honest.
    return Error::superseded("version " + std::to_string(obj.version) +
                             " of key '" + obj.key +
                             "' is below its tombstone");
  }

  Slot slot;
  if (Status s = append_record(obj, slot); !s.ok()) return s;
  index_insert(obj, slot);
  ++rev_;
  if (!digest_dirty_) digest_cache_.push_back(DigestEntry{obj.key, obj.version});
  return Status::ok_status();
}

Result<Object> LogStore::get(const Key& key,
                             std::optional<Version> version) const {
  const auto it = index_.find(key);
  if (it == index_.end() || it->second.empty()) {
    return Error::not_found("no such key: " + key);
  }
  const auto& versions = it->second;
  if (!version) return read_record(versions.rbegin()->second);
  const auto vit = versions.find(*version);
  if (vit == versions.end()) {
    return Error::not_found("no such version of key: " + key);
  }
  return read_record(vit->second);
}

bool LogStore::contains(const Key& key, Version version) const {
  const auto it = index_.find(key);
  return it != index_.end() && it->second.contains(version);
}

Version LogStore::tombstone_version(const Key& key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return 0;
  Version newest = 0;
  for (const auto& [version, slot] : it->second) {
    if (slot.tombstone) newest = version;  // map is ordered: last wins
  }
  return newest;
}

std::size_t LogStore::gc_tombstones(SimTime now, SimTime grace) {
  std::size_t removed = 0;
  for (auto it = index_.begin(); it != index_.end();) {
    auto& versions = it->second;
    for (auto vit = versions.begin(); vit != versions.end();) {
      if (vit->second.tombstone && vit->second.deleted_at + grace <= now) {
        --object_count_;
        vit = versions.erase(vit);
        ++removed;
      } else {
        ++vit;
      }
    }
    it = versions.empty() ? index_.erase(it) : std::next(it);
  }
  if (removed > 0) {
    digest_dirty_ = true;
    ++rev_;
  }
  // The log itself still holds the records; compact() reclaims the space.
  return removed;
}

const std::vector<DigestEntry>& LogStore::digest_entries() const {
  if (digest_dirty_) {
    digest_cache_.clear();
    digest_cache_.reserve(object_count_);
    for (const auto& [key, versions] : index_) {
      for (const auto& [version, _] : versions) {
        digest_cache_.push_back(DigestEntry{key, version});
      }
    }
    digest_dirty_ = false;
  }
  return digest_cache_;
}

std::vector<DigestEntry> LogStore::digest() const { return digest_entries(); }

void LogStore::for_each(const std::function<void(const Object&)>& fn) const {
  for (const auto& [key, versions] : index_) {
    for (const auto& [_, slot] : versions) {
      auto obj = read_record(slot);
      if (obj.ok()) fn(obj.value());
    }
  }
}

std::vector<Object> LogStore::all() const {
  std::vector<Object> out;
  out.reserve(object_count_);
  for_each([&out](const Object& obj) { out.push_back(obj); });
  return out;
}

std::size_t LogStore::remove_keys_where(
    const std::function<bool(const Key&)>& predicate) {
  std::size_t removed = 0;
  for (auto it = index_.begin(); it != index_.end();) {
    if (predicate(it->first)) {
      removed += it->second.size();
      object_count_ -= it->second.size();
      for (const auto& [_, slot] : it->second) {
        value_bytes_ -= value_length(it->first, slot);
      }
      it = index_.erase(it);
    } else {
      ++it;
    }
  }
  if (removed > 0) {
    digest_dirty_ = true;
    ++rev_;
  }
  // The log itself still holds the records; compact() reclaims the space.
  return removed;
}

ReapStats LogStore::reap(SimTime now, std::size_t max_bytes) {
  ReapStats stats;
  // Expiry: drop deadline-passed live versions from the index; the log
  // records linger until compact(), exactly like GC'd tombstones.
  for (auto it = index_.begin(); it != index_.end();) {
    auto& versions = it->second;
    for (auto vit = versions.begin(); vit != versions.end();) {
      const Slot& slot = vit->second;
      if (!slot.tombstone && slot.expires_at != 0 && slot.expires_at <= now) {
        --object_count_;
        value_bytes_ -= value_length(it->first, slot);
        vit = versions.erase(vit);
        ++stats.expired;
      } else {
        ++vit;
      }
    }
    it = versions.empty() ? index_.erase(it) : std::next(it);
  }

  // Eviction: whole tombstone-free keys in arbitrary order until live value
  // bytes fit the budget (same contract as MemStore::reap).
  if (max_bytes > 0 && value_bytes_ > max_bytes) {
    for (auto it = index_.begin();
         it != index_.end() && value_bytes_ > max_bytes;) {
      bool has_tombstone = false;
      for (const auto& [_, slot] : it->second) {
        if (slot.tombstone) {
          has_tombstone = true;
          break;
        }
      }
      if (has_tombstone) {
        ++it;
        continue;
      }
      object_count_ -= it->second.size();
      for (const auto& [_, slot] : it->second) {
        value_bytes_ -= value_length(it->first, slot);
      }
      it = index_.erase(it);
      ++stats.evicted;
    }
  }
  if (stats.expired > 0 || stats.evicted > 0) {
    digest_dirty_ = true;
    ++rev_;
  }
  return stats;
}

StoreBreakdown LogStore::breakdown() const {
  StoreBreakdown out;
  for (const auto& [key, versions] : index_) {
    for (const auto& [_, slot] : versions) {
      if (slot.tombstone) {
        ++out.tombstone_objects;
      } else {
        ++out.live_objects;
        out.live_bytes += value_length(key, slot);
      }
    }
  }
  return out;
}

Result<std::size_t> LogStore::compact() {
  if (!open_status_.ok()) return open_status_.error();
  const std::string tmp_path = path_ + ".compact";
  std::FILE* tmp = std::fopen(tmp_path.c_str(), "wb");
  if (tmp == nullptr) return Error::io("cannot open " + tmp_path);

  const std::size_t before = log_end_;
  std::unordered_map<Key, std::map<Version, Slot>> new_index;
  std::size_t new_end = 0;
  for (const auto& [key, versions] : index_) {
    for (const auto& [version, slot] : versions) {
      auto obj = read_record(slot);
      if (!obj.ok()) continue;  // skip unreadable (shouldn't happen)
      Writer w;
      encode_body(w, obj.value());
      const ByteView body = w.view();
      const std::uint32_t header[3] = {
          kMagic, crc32(body.data(), body.size()),
          static_cast<std::uint32_t>(body.size())};
      if (std::fwrite(header, sizeof header, 1, tmp) != 1 ||
          (!body.empty() &&
           std::fwrite(body.data(), body.size(), 1, tmp) != 1)) {
        std::fclose(tmp);
        std::remove(tmp_path.c_str());
        return Error::io("write failed during compaction");
      }
      new_index[key][version] =
          Slot{new_end + kHeaderSize, static_cast<std::uint32_t>(body.size()),
               slot.tombstone, slot.deleted_at, slot.expires_at};
      new_end += kHeaderSize + body.size();
    }
  }
  std::fclose(tmp);

  std::fclose(file_);
  file_ = nullptr;
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    // Try to reopen the original so the store stays usable.
    file_ = std::fopen(path_.c_str(), "a+b");
    return Error::io("rename failed during compaction");
  }
  file_ = std::fopen(path_.c_str(), "a+b");
  if (file_ == nullptr) {
    open_status_ = Error::io("cannot reopen after compaction: " + path_);
    return open_status_.error();
  }
  index_ = std::move(new_index);
  log_end_ = new_end;
  digest_dirty_ = true;
  return before > new_end ? before - new_end : std::size_t{0};
}

Status LogStore::sync() {
  if (!open_status_.ok()) return open_status_;
  if (std::fflush(file_) != 0) return Error::io("fflush failed on " + path_);
  return Status::ok_status();
}

}  // namespace dataflasks::store
