// Keyspace-partitioned Store for the shared-nothing multi-shard server.
//
// N inner stores, one per runtime shard, partitioned by a stable key hash.
// The hot path — a shard executor operating on its own partition — takes an
// uncontended per-partition mutex; the locks exist so the legacy protocol
// paths that still run whole-store operations on shard 0 (anti-entropy
// ingest, state transfer, handoff flushes, tombstone GC, slice-change
// evictions) stay correct against concurrent executors without rewriting
// every protocol component for shard awareness.
//
// The merged digest view (digest_entries) is what anti-entropy reads every
// round; it is rebuilt lazily behind an atomic dirty flag and only ever
// read on shard 0, where all anti-entropy work lives.
//
// Restart compatibility: a durable node restarted with a different --shards
// value recovers objects into partitions keyed by the OLD count; the
// constructor rebalances every misplaced object into its new home partition
// so partition-local execution stays exact.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/hash.hpp"
#include "store/store.hpp"

namespace dataflasks::store {

class ShardedStore final : public Store {
 public:
  /// Takes ownership of one inner store per partition (same count as the
  /// server's shards). Rebalances recovered objects whose key hashes to a
  /// different partition (durable restarts across a --shards change).
  explicit ShardedStore(std::vector<std::unique_ptr<Store>> partitions);

  /// Owning partition of `key` among `count` shards; the single definition
  /// shared by the store and the shard router so they can never disagree.
  [[nodiscard]] static std::size_t partition_of(const Key& key,
                                                std::size_t count) {
    return count <= 1 ? 0 : stable_key_hash(key) % count;
  }

  [[nodiscard]] std::size_t partition_count() const {
    return partitions_.size();
  }
  /// Objects migrated between partitions at construction (restart with a
  /// different shard count); exposed for tests and the boot log line.
  [[nodiscard]] std::size_t rebalanced() const { return rebalanced_; }

  Status put(const Object& obj) override;
  CasOutcome compare_and_put(const Object& obj, Version expected) override;
  [[nodiscard]] Result<Object> get(
      const Key& key, std::optional<Version> version) const override;
  [[nodiscard]] Version tombstone_version(const Key& key) const override;
  std::size_t gc_tombstones(SimTime now, SimTime grace) override;
  [[nodiscard]] bool contains(const Key& key, Version version) const override;
  [[nodiscard]] std::vector<DigestEntry> digest() const override;
  [[nodiscard]] const std::vector<DigestEntry>& digest_entries()
      const override;
  void for_each(const std::function<void(const Object&)>& fn) const override;
  [[nodiscard]] std::vector<Object> all() const override;
  std::size_t remove_keys_where(
      const std::function<bool(const Key&)>& predicate) override;
  [[nodiscard]] std::size_t object_count() const override;
  [[nodiscard]] std::size_t value_bytes() const override;
  /// Reaps every partition, splitting the byte budget evenly across them
  /// (each partition holds ~1/N of the keyspace by the stable hash).
  /// Marks the merged digest dirty when anything was removed — an expiry
  /// or eviction invisible to anti-entropy would advertise reaped keys.
  ReapStats reap(SimTime now, std::size_t max_bytes) override;
  Result<std::size_t> compact_storage() override;
  [[nodiscard]] std::uint64_t mutation_rev() const override {
    return rev_.load(std::memory_order_acquire);
  }
  [[nodiscard]] StoreBreakdown breakdown() const override;

 private:
  struct Partition {
    std::unique_ptr<Store> store;
    mutable std::mutex mutex;
  };

  [[nodiscard]] Partition& home_of(const Key& key) const {
    return *partitions_[partition_of(key, partitions_.size())];
  }
  void mark_dirty() const {
    digest_dirty_.store(true, std::memory_order_release);
    rev_.fetch_add(1, std::memory_order_acq_rel);
  }

  // unique_ptr per partition: Partition holds a mutex and must not move.
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::size_t rebalanced_ = 0;

  mutable std::atomic<bool> digest_dirty_{true};
  mutable std::atomic<std::uint64_t> rev_{0};
  mutable std::vector<DigestEntry> merged_digest_;  ///< shard-0 read only
};

}  // namespace dataflasks::store
