// The unit DataFlasks stores: a versioned key-value object. Versions are
// assigned by the upper layer (DataDroplets in STRATUS); DataFlasks never
// resolves conflicts itself — puts on the same key are totally ordered
// before they reach us (paper §III).
//
// Deletion is represented by tombstone objects: a delete stores an object
// with the tombstone flag, an empty value and a deletion stamp. Tombstones
// replicate and repair exactly like writes (spray, replicate push,
// anti-entropy digests), which is what makes delete safe under epidemic
// dissemination: a replica that missed the delete converges to the
// tombstone instead of resurrecting the value. A garbage collector drops
// tombstones once they are older than a configurable grace period.
#pragma once

#include <cstdint>

#include "common/payload.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace dataflasks::store {

struct Object {
  Key key;
  Version version = 0;
  /// Shared immutable value bytes: replication pushes, anti-entropy and
  /// state transfer hand the same buffer around instead of copying it, and
  /// decoding an object out of a frame keeps a view into that frame.
  Payload value;
  /// Deletion marker: this version records "the key was deleted here".
  /// Tombstones carry an empty value.
  bool tombstone = false;
  /// When the delete was accepted, stamped by the first storing replica's
  /// clock and propagated as-is. GC drops the tombstone once
  /// now - deleted_at exceeds the grace period (real deployments therefore
  /// want loosely synchronized clocks, as in other tombstone-based stores).
  SimTime deleted_at = 0;
  /// TTL deadline: the absolute instant this version stops being readable
  /// (0 = never expires). Stamped once by the first storing replica from the
  /// client's ttl_ms and propagated as-is — like deleted_at, every replica
  /// applies the SAME deadline, so expiry is deterministic cluster-wide and
  /// a copy revived through anti-entropy or state transfer is still expired
  /// (same loosely-synchronized-clock caveat as tombstone GC). Tombstones
  /// never carry a deadline.
  SimTime expires_at = 0;

  /// True when this is a live value whose TTL deadline has passed: readers
  /// treat it as an authoritative miss and the expiry reaper removes it.
  [[nodiscard]] bool expired(SimTime now) const {
    return !tombstone && expires_at != 0 && expires_at <= now;
  }

  [[nodiscard]] static Object make_tombstone(Key key, Version version,
                                             SimTime deleted_at) {
    Object obj;
    obj.key = std::move(key);
    obj.version = version;
    obj.tombstone = true;
    obj.deleted_at = deleted_at;
    return obj;
  }

  friend bool operator==(const Object&, const Object&) = default;
};

/// Compact identity of an object: what anti-entropy digests carry.
/// Tombstones appear in digests like any stored version, so anti-entropy
/// heals missed deletes the same way it heals missed writes.
struct DigestEntry {
  Key key;
  Version version = 0;

  friend bool operator==(const DigestEntry&, const DigestEntry&) = default;
  friend auto operator<=>(const DigestEntry&, const DigestEntry&) = default;
};

void encode(Writer& w, const Object& obj);
[[nodiscard]] Object decode_object(Reader& r);

void encode(Writer& w, const DigestEntry& entry);
[[nodiscard]] DigestEntry decode_digest_entry(Reader& r);

/// Exact wire sizes, so encoders can reserve once instead of regrowing.
[[nodiscard]] inline std::size_t encoded_size(const Object& obj) {
  return sizeof(std::uint32_t) + obj.key.size() + sizeof(Version) +
         /*flags*/ 1 + (obj.tombstone ? sizeof(std::int64_t) : 0) +
         (obj.expires_at != 0 ? sizeof(std::int64_t) : 0) +
         sizeof(std::uint32_t) + obj.value.size();
}
[[nodiscard]] inline std::size_t encoded_size(const DigestEntry& entry) {
  return sizeof(std::uint32_t) + entry.key.size() + sizeof(Version);
}

}  // namespace dataflasks::store
