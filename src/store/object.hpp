// The unit DataFlasks stores: a versioned key-value object. Versions are
// assigned by the upper layer (DataDroplets in STRATUS); DataFlasks never
// resolves conflicts itself — puts on the same key are totally ordered
// before they reach us (paper §III).
#pragma once

#include <cstdint>

#include "common/payload.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace dataflasks::store {

struct Object {
  Key key;
  Version version = 0;
  /// Shared immutable value bytes: replication pushes, anti-entropy and
  /// state transfer hand the same buffer around instead of copying it, and
  /// decoding an object out of a frame keeps a view into that frame.
  Payload value;

  friend bool operator==(const Object&, const Object&) = default;
};

/// Compact identity of an object: what anti-entropy digests carry.
struct DigestEntry {
  Key key;
  Version version = 0;

  friend bool operator==(const DigestEntry&, const DigestEntry&) = default;
  friend auto operator<=>(const DigestEntry&, const DigestEntry&) = default;
};

void encode(Writer& w, const Object& obj);
[[nodiscard]] Object decode_object(Reader& r);

void encode(Writer& w, const DigestEntry& entry);
[[nodiscard]] DigestEntry decode_digest_entry(Reader& r);

/// Exact wire sizes, so encoders can reserve once instead of regrowing.
[[nodiscard]] inline std::size_t encoded_size(const Object& obj) {
  return sizeof(std::uint32_t) + obj.key.size() + sizeof(Version) +
         sizeof(std::uint32_t) + obj.value.size();
}
[[nodiscard]] inline std::size_t encoded_size(const DigestEntry& entry) {
  return sizeof(std::uint32_t) + entry.key.size() + sizeof(Version);
}

}  // namespace dataflasks::store
