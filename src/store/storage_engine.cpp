#include "store/storage_engine.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/hash.hpp"
#include "common/serialize.hpp"

namespace dataflasks::store {

namespace fs = std::filesystem;

namespace {

// Journal records share LogStore's framing but carry their own magic (…07):
// pointing a LogStore at an engine journal (or vice versa) fails loudly at
// the first record instead of being misread as one long torn tail.
constexpr std::uint32_t kJournalMagic = 0xDF1A5C07;
constexpr std::size_t kJournalHeaderSize = 3 * sizeof(std::uint32_t);

constexpr std::uint32_t kSnapMagic = 0xDF54AB1E;
// u32 magic | u64 seq | u64 object_count | u64 body_len | u32 body_crc
constexpr std::size_t kSnapHeaderSize =
    sizeof(std::uint32_t) + 3 * sizeof(std::uint64_t) + sizeof(std::uint32_t);

/// Parses the numeric suffix of "<prefix><digits>"; nullopt when `name`
/// doesn't match. Rejects empty/overlong/non-digit suffixes.
std::optional<std::uint64_t> generation_suffix(const std::string& name,
                                               const std::string& prefix) {
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
    return std::nullopt;
  }
  const std::string digits = name.substr(prefix.size());
  if (digits.size() > 19) return std::nullopt;
  std::uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

std::size_t file_size_or_zero(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::size_t>(size);
}

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StorageEngine::StorageEngine(std::string base_path)
    : base_(std::move(base_path)) {
  last_checkpoint_us_.store(steady_now_us(), std::memory_order_relaxed);
  open_status_ = recover();
}

StorageEngine::~StorageEngine() {
  if (journal_ != nullptr) std::fclose(journal_);
}

std::string StorageEngine::snap_path(std::uint64_t seq) const {
  return base_ + ".snap." + std::to_string(seq);
}

std::string StorageEngine::journal_path(std::uint64_t seq) const {
  return base_ + ".journal." + std::to_string(seq);
}

Status StorageEngine::recover() {
  // Enumerate generations: every "<base>.snap.<seq>" / "<base>.journal.<seq>"
  // sitting next to the base path.
  const fs::path base(base_);
  fs::path dir = base.parent_path();
  if (dir.empty()) dir = ".";
  const std::string stem = base.filename().string();

  std::error_code ec;
  fs::create_directories(dir, ec);  // first boot of a fresh --store-path dir
  std::vector<std::uint64_t> snaps;
  std::vector<std::uint64_t> journals;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto s = generation_suffix(name, stem + ".snap.")) {
      snaps.push_back(*s);
    } else if (const auto j = generation_suffix(name, stem + ".journal.")) {
      journals.push_back(*j);
    }
  }
  if (ec) return Error::io("cannot scan " + dir.string() + ": " + ec.message());
  std::sort(snaps.begin(), snaps.end(), std::greater<>());
  std::sort(journals.begin(), journals.end());

  // Newest loadable snapshot wins; a corrupt one falls back a generation,
  // loudly. Snapshots on disk but none loadable is refusal, not an empty
  // store — silent emptiness would let a wounded replica rejoin and spread
  // its amnesia through anti-entropy.
  std::uint64_t loaded_seq = 0;
  for (const std::uint64_t seq : snaps) {
    auto loaded = load_snapshot(snap_path(seq), seq);
    if (loaded.ok()) {
      recovery_.loaded_snapshot = true;
      recovery_.snapshot_seq = seq;
      recovery_.snapshot_objects = loaded.value();
      loaded_seq = seq;
      break;
    }
    recovery_.warnings.push_back("snapshot " + snap_path(seq) +
                                 " unusable, falling back: " +
                                 loaded.error().message);
  }
  if (!snaps.empty() && !recovery_.loaded_snapshot) {
    return Error::io("no loadable snapshot under " + base_ +
                     " (refusing to recover empty; see warnings)");
  }

  // Replay every journal of the loaded generation or later, oldest first.
  // Journals older than the snapshot are already folded into it.
  std::uint64_t newest = loaded_seq;
  for (const std::uint64_t seq : journals) {
    if (recovery_.loaded_snapshot && seq < loaded_seq) continue;
    auto replayed = replay_journal(seq);
    if (!replayed.ok()) return replayed.error();
    recovery_.records_replayed += replayed.value();
    ++recovery_.journals_replayed;
    newest = std::max(newest, seq);
  }

  // Appends continue into the newest generation's journal (created fresh on
  // first boot: generation 1).
  seq_ = std::max<std::uint64_t>(newest, 1);
  return open_journal(seq_);
}

Result<std::size_t> StorageEngine::load_snapshot(const std::string& path,
                                                 std::uint64_t expected_seq) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Error::io("cannot open " + path);

  Bytes header(kSnapHeaderSize);
  if (std::fread(header.data(), header.size(), 1, f) != 1) {
    std::fclose(f);
    return Error::decode("truncated snapshot header");
  }
  Reader h(header);
  const std::uint32_t magic = h.u32();
  const std::uint64_t seq = h.u64();
  const std::uint64_t count = h.u64();
  const std::uint64_t body_len = h.u64();
  const std::uint32_t crc = h.u32();
  if (magic != kSnapMagic) {
    std::fclose(f);
    return Error::decode("bad snapshot magic");
  }
  if (seq != expected_seq) {
    std::fclose(f);
    return Error::decode("snapshot header seq " + std::to_string(seq) +
                         " does not match filename");
  }
  // Bound the body allocation by what is actually on disk: a bit-flipped
  // length field must fail here, not as a giant allocation.
  const std::size_t on_disk = file_size_or_zero(path);
  if (on_disk < kSnapHeaderSize || body_len != on_disk - kSnapHeaderSize) {
    std::fclose(f);
    return Error::decode("snapshot body length " + std::to_string(body_len) +
                         " does not match file size");
  }

  Bytes body(body_len);
  if (body_len > 0 && std::fread(body.data(), body.size(), 1, f) != 1) {
    std::fclose(f);
    return Error::decode("truncated snapshot body");
  }
  std::fclose(f);
  if (crc32(body.data(), body.size()) != crc) {
    return Error::decode("snapshot body CRC mismatch");
  }

  Reader r(body);
  std::size_t applied = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const Object obj = decode_object(r);
    if (!r.ok()) break;
    if (apply(obj).ok()) ++applied;
  }
  if (!r.at_end() || applied != count) {
    // CRC passed but the stream is inconsistent (writer bug, not bit rot):
    // discard the partial load so a fallback generation starts clean.
    inner_.clear();
    while (!expiry_wheel_.empty()) expiry_wheel_.pop();
    lru_list_.clear();
    lru_index_.clear();
    return Error::decode("snapshot object stream is malformed");
  }
  return applied;
}

Result<std::size_t> StorageEngine::replay_journal(std::uint64_t seq) {
  const std::string path = journal_path(seq);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Error::io("cannot open " + path);

  std::fseek(f, 0, SEEK_END);
  const long end_off = std::ftell(f);
  if (end_off < 0) {
    std::fclose(f);
    return Error::io("ftell failed on " + path);
  }
  const auto end = static_cast<std::size_t>(end_off);

  std::size_t pos = 0;
  std::size_t records = 0;
  std::fseek(f, 0, SEEK_SET);
  while (pos + kJournalHeaderSize <= end) {
    std::uint32_t header[3];
    std::fseek(f, static_cast<long>(pos), SEEK_SET);
    if (std::fread(header, sizeof header, 1, f) != 1) break;
    const std::uint32_t magic = header[0];
    const std::uint32_t crc = header[1];
    const std::uint32_t body_len = header[2];
    if (magic != kJournalMagic) break;
    if (pos + kJournalHeaderSize + body_len > end) break;  // torn write

    Bytes body(body_len);
    if (body_len > 0 && std::fread(body.data(), body_len, 1, f) != 1) break;
    if (crc32(body.data(), body.size()) != crc) break;  // corrupt record

    Reader r(body);
    const Object obj = decode_object(r);
    if (!r.finish().ok()) break;

    apply(obj);  // superseded/conflict replays are skips, not failures
    ++records;
    pos += kJournalHeaderSize + body_len;
  }
  std::fclose(f);

  if (pos < end) {
    // Torn or corrupt tail: cut it off so future appends land after a valid
    // record instead of behind garbage the next recovery cannot cross.
    recovery_.warnings.push_back(
        path + ": dropped " + std::to_string(end - pos) +
        " byte torn tail after " + std::to_string(records) + " records");
    if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
      return Error::io("cannot truncate torn tail of " + path);
    }
  }
  return records;
}

Status StorageEngine::open_journal(std::uint64_t seq) {
  if (journal_ != nullptr) {
    std::fclose(journal_);
    journal_ = nullptr;
  }
  const std::string path = journal_path(seq);
  journal_ = std::fopen(path.c_str(), "a+b");
  if (journal_ == nullptr) return Error::io("cannot open journal: " + path);
  std::fseek(journal_, 0, SEEK_END);
  const long at = std::ftell(journal_);
  if (at < 0) return Error::io("ftell failed on " + path);
  journal_end_.store(static_cast<std::size_t>(at),
                     std::memory_order_relaxed);
  return Status::ok_status();
}

Status StorageEngine::append_journal(const Object& obj) {
  Writer w(encoded_size(obj));
  encode(w, obj);
  const ByteView body = w.view();
  const std::uint32_t header[3] = {kJournalMagic,
                                   crc32(body.data(), body.size()),
                                   static_cast<std::uint32_t>(body.size())};
  if (std::fwrite(header, sizeof header, 1, journal_) != 1 ||
      (!body.empty() &&
       std::fwrite(body.data(), body.size(), 1, journal_) != 1)) {
    return Error::io("journal append failed on " + journal_path(seq_));
  }
  journal_end_.fetch_add(kJournalHeaderSize + body.size(),
                         std::memory_order_relaxed);
  return Status::ok_status();
}

Status StorageEngine::apply(const Object& obj) {
  Status s = inner_.put(obj);
  if (!s.ok()) return s;
  if (obj.tombstone) {
    // Deleted keys leave the eviction pool: dropping a tombstone early
    // would forget the delete before its grace period.
    lru_forget(obj.key);
  } else {
    lru_touch(obj.key);
    if (obj.expires_at != 0) {
      expiry_wheel_.push(ExpiryEntry{obj.expires_at, obj.key, obj.version});
    }
  }
  return s;
}

Status StorageEngine::put(const Object& obj) {
  if (!open_status_.ok()) return open_status_;
  const std::uint64_t before = inner_.mutation_rev();
  Status s = apply(obj);
  if (!s.ok()) return s;
  // Idempotent re-stores change nothing — skip the duplicate record.
  if (inner_.mutation_rev() == before) return s;
  return append_journal(obj);
}

Result<Object> StorageEngine::get(const Key& key,
                                  std::optional<Version> version) const {
  auto result = inner_.get(key, version);
  if (result.ok() && !result.value().tombstone) lru_touch(key);
  return result;
}

bool StorageEngine::contains(const Key& key, Version version) const {
  return inner_.contains(key, version);
}

Version StorageEngine::tombstone_version(const Key& key) const {
  return inner_.tombstone_version(key);
}

std::size_t StorageEngine::gc_tombstones(SimTime now, SimTime grace) {
  // Not journaled: replay resurrects the tombstone in memory and the next
  // GC pass re-drops it (deletion stamps are absolute). checkpoint() makes
  // the removal durable.
  return inner_.gc_tombstones(now, grace);
}

std::vector<DigestEntry> StorageEngine::digest() const {
  return inner_.digest();
}

const std::vector<DigestEntry>& StorageEngine::digest_entries() const {
  return inner_.digest_entries();
}

void StorageEngine::for_each(
    const std::function<void(const Object&)>& fn) const {
  inner_.for_each(fn);
}

std::vector<Object> StorageEngine::all() const { return inner_.all(); }

std::size_t StorageEngine::remove_keys_where(
    const std::function<bool(const Key&)>& predicate) {
  // Also not journaled (slice changes re-derive the predicate after
  // restart). The LRU list self-cleans: eviction skips vanished keys.
  return inner_.remove_keys_where(predicate);
}

ReapStats StorageEngine::reap(SimTime now, std::size_t max_bytes) {
  ReapStats stats;
  // Expiry: pop deadlines that have passed. Entries are validated lazily —
  // the version may be gone already (evicted, superseded by a tombstone,
  // sliced away), in which case the entry is just stale wheel residue.
  while (!expiry_wheel_.empty() && expiry_wheel_.top().expires_at <= now) {
    const ExpiryEntry entry = expiry_wheel_.top();
    expiry_wheel_.pop();
    const auto current = inner_.get(entry.key, entry.version);
    if (current.ok() && current.value().expired(now) &&
        inner_.erase_version(entry.key, entry.version)) {
      ++stats.expired;
      if (!inner_.get(entry.key, std::nullopt).ok()) lru_forget(entry.key);
    }
  }

  // Eviction: coldest keys first until the byte budget holds. Tombstoned
  // keys were already dropped from the list at delete time; keys removed
  // behind the list's back (slice changes) evaporate here without counting.
  if (max_bytes > 0) {
    while (inner_.value_bytes() > max_bytes && !lru_list_.empty()) {
      const Key victim = lru_list_.front();
      if (inner_.tombstone_version(victim) != 0) {
        lru_forget(victim);
        continue;
      }
      const std::size_t removed = inner_.erase_key(victim);
      lru_forget(victim);
      if (removed > 0) ++stats.evicted;
    }
    if (inner_.value_bytes() > max_bytes) {
      // LRU exhausted but still over budget (everything left is
      // tombstoned or untracked): fall back to the inner scan.
      const ReapStats rest = inner_.reap(now, max_bytes);
      stats.expired += rest.expired;
      stats.evicted += rest.evicted;
    }
  }
  return stats;
}

Result<std::size_t> StorageEngine::checkpoint() {
  if (!open_status_.ok()) return open_status_.error();

  // Serialize the live set (values and tombstones both — a snapshot that
  // dropped tombstones could resurrect deletes on the replay path).
  Writer body(inner_.value_bytes() + 64 * inner_.object_count());
  std::uint64_t count = 0;
  inner_.for_each([&body, &count](const Object& obj) {
    encode(body, obj);
    ++count;
  });
  const ByteView view = body.view();

  const std::uint64_t new_seq = seq_ + 1;
  Writer header(kSnapHeaderSize);
  header.u32(kSnapMagic);
  header.u64(new_seq);
  header.u64(count);
  header.u64(view.size());
  header.u32(crc32(view.data(), view.size()));

  // tmp + fsync + rename: the snapshot either exists whole or not at all.
  const std::string tmp_path = base_ + ".snap.tmp";
  std::FILE* tmp = std::fopen(tmp_path.c_str(), "wb");
  if (tmp == nullptr) return Error::io("cannot open " + tmp_path);
  const ByteView hview = header.view();
  if (std::fwrite(hview.data(), hview.size(), 1, tmp) != 1 ||
      (!view.empty() && std::fwrite(view.data(), view.size(), 1, tmp) != 1) ||
      std::fflush(tmp) != 0 || ::fsync(fileno(tmp)) != 0) {
    std::fclose(tmp);
    std::remove(tmp_path.c_str());
    return Error::io("snapshot write failed: " + tmp_path);
  }
  std::fclose(tmp);
  if (std::rename(tmp_path.c_str(), snap_path(new_seq).c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Error::io("snapshot rename failed: " + snap_path(new_seq));
  }

  // Roll the journal forward, then drop generations older than the previous
  // one — two stay on disk so a corrupt newest snapshot still has a parent
  // to fall back to.
  const std::uint64_t old_seq = seq_;
  if (Status s = open_journal(new_seq); !s.ok()) return s.error();
  seq_ = new_seq;
  last_checkpoint_us_.store(steady_now_us(), std::memory_order_relaxed);

  std::size_t reclaimed = 0;
  for (std::uint64_t seq = old_seq; seq-- > 0;) {
    const std::string snap = snap_path(seq);
    const std::string journal = journal_path(seq);
    const std::size_t bytes =
        file_size_or_zero(snap) + file_size_or_zero(journal);
    if (bytes == 0) break;  // generations below were already removed
    std::remove(snap.c_str());
    std::remove(journal.c_str());
    reclaimed += bytes;
  }
  return reclaimed;
}

Status StorageEngine::sync() {
  if (!open_status_.ok()) return open_status_;
  if (std::fflush(journal_) != 0) {
    return Error::io("fflush failed on " + journal_path(seq_));
  }
  return Status::ok_status();
}

double StorageEngine::snapshot_age_seconds() const {
  const std::int64_t last =
      last_checkpoint_us_.load(std::memory_order_relaxed);
  return static_cast<double>(steady_now_us() - last) / 1e6;
}

void StorageEngine::lru_touch(const Key& key) const {
  const auto it = lru_index_.find(key);
  if (it != lru_index_.end()) {
    lru_list_.splice(lru_list_.end(), lru_list_, it->second);
  } else {
    lru_index_[key] = lru_list_.insert(lru_list_.end(), key);
  }
}

void StorageEngine::lru_forget(const Key& key) const {
  const auto it = lru_index_.find(key);
  if (it == lru_index_.end()) return;
  lru_list_.erase(it->second);
  lru_index_.erase(it);
}

}  // namespace dataflasks::store
