#include "store/memstore.hpp"

#include <algorithm>

namespace dataflasks::store {

std::size_t MemStore::VersionedValues::find(Version version) const {
  const auto it =
      std::lower_bound(versions.begin(), versions.end(), version);
  if (it == versions.end() || *it != version) return npos;
  return static_cast<std::size_t>(it - versions.begin());
}

Object MemStore::object_at(const Key& key, const VersionedValues& slot,
                           std::size_t index) const {
  Object obj{key, slot.versions[index], slot.values[index]};
  obj.tombstone = slot.meta[index].tombstone;
  obj.deleted_at = slot.meta[index].deleted_at;
  obj.expires_at = slot.meta[index].expires_at;
  return obj;
}

void MemStore::erase_entry(VersionedValues& slot, std::size_t index) {
  value_bytes_ -= slot.values[index].size();
  --object_count_;
  const bool was_tombstone = slot.meta[index].tombstone;
  slot.versions.erase(slot.versions.begin() + static_cast<long>(index));
  slot.values.erase(slot.values.begin() + static_cast<long>(index));
  slot.meta.erase(slot.meta.begin() + static_cast<long>(index));
  if (was_tombstone) {
    slot.max_tombstone = 0;
    for (std::size_t i = 0; i < slot.meta.size(); ++i) {
      if (slot.meta[i].tombstone) {
        slot.max_tombstone = std::max(slot.max_tombstone, slot.versions[i]);
      }
    }
  }
  digest_dirty_ = true;
  ++rev_;
}

Status MemStore::put(const Object& obj) {
  VersionedValues& slot = data_[obj.key];
  const std::size_t existing = slot.find(obj.version);
  if (existing != VersionedValues::npos) {
    if (slot.meta[existing].tombstone != obj.tombstone ||
        slot.values[existing] != obj.value) {
      return Error::conflict("different value for existing version of key '" +
                             obj.key + "'");
    }
    return Status::ok_status();  // idempotent re-store
  }

  if (!obj.tombstone && obj.version <= slot.max_tombstone) {
    // A version the key's tombstone supersedes: discard so the deleted key
    // cannot be resurrected, and say so — callers that ack writes must not
    // report a discarded put as stored.
    return Error::superseded("version " + std::to_string(obj.version) +
                             " of key '" + obj.key +
                             "' is below its tombstone");
  }

  // Versions are assigned in increasing order upstream, so the common case
  // is an append; out-of-order arrivals (replication races) insert sorted.
  if (slot.versions.empty() || obj.version > slot.versions.back()) {
    slot.versions.push_back(obj.version);
    slot.values.push_back(obj.value);  // refcount bump, not a byte copy
    slot.meta.push_back(Meta{obj.tombstone, obj.deleted_at, obj.expires_at});
  } else {
    const auto pos = std::lower_bound(slot.versions.begin(),
                                      slot.versions.end(), obj.version);
    const auto index = pos - slot.versions.begin();
    slot.versions.insert(pos, obj.version);
    slot.values.insert(slot.values.begin() + index, obj.value);
    slot.meta.insert(slot.meta.begin() + index,
                     Meta{obj.tombstone, obj.deleted_at, obj.expires_at});
  }
  ++object_count_;
  value_bytes_ += obj.value.size();
  ++rev_;
  if (!digest_dirty_) digest_cache_.push_back(DigestEntry{obj.key, obj.version});

  if (obj.tombstone) {
    slot.max_tombstone = std::max(slot.max_tombstone, obj.version);
    // The delete supersedes every older version: drop them now instead of
    // waiting for GC (frees the value bytes immediately).
    std::size_t drop = 0;
    while (drop < slot.versions.size() && slot.versions[drop] < obj.version) {
      ++drop;
    }
    if (drop > 0) {
      for (std::size_t i = 0; i < drop; ++i) {
        value_bytes_ -= slot.values[i].size();
      }
      object_count_ -= drop;
      slot.versions.erase(slot.versions.begin(),
                          slot.versions.begin() + static_cast<long>(drop));
      slot.values.erase(slot.values.begin(),
                        slot.values.begin() + static_cast<long>(drop));
      slot.meta.erase(slot.meta.begin(),
                      slot.meta.begin() + static_cast<long>(drop));
      digest_dirty_ = true;
    }
  }
  return Status::ok_status();
}

Result<Object> MemStore::get(const Key& key,
                             std::optional<Version> version) const {
  const auto it = data_.find(key);
  if (it == data_.end() || it->second.versions.empty()) {
    return Error::not_found("no such key: " + key);
  }
  const VersionedValues& slot = it->second;
  if (!version) {
    return object_at(key, slot, slot.versions.size() - 1);
  }
  const std::size_t index = slot.find(*version);
  if (index == VersionedValues::npos) {
    return Error::not_found("no such version of key: " + key);
  }
  return object_at(key, slot, index);
}

bool MemStore::contains(const Key& key, Version version) const {
  const auto it = data_.find(key);
  return it != data_.end() &&
         it->second.find(version) != VersionedValues::npos;
}

Version MemStore::tombstone_version(const Key& key) const {
  const auto it = data_.find(key);
  return it == data_.end() ? 0 : it->second.max_tombstone;
}

std::size_t MemStore::gc_tombstones(SimTime now, SimTime grace) {
  std::size_t removed = 0;
  for (auto it = data_.begin(); it != data_.end();) {
    VersionedValues& slot = it->second;
    for (std::size_t i = 0; i < slot.versions.size();) {
      if (slot.meta[i].tombstone && slot.meta[i].deleted_at + grace <= now) {
        erase_entry(slot, i);
        ++removed;
      } else {
        ++i;
      }
    }
    it = slot.versions.empty() ? data_.erase(it) : std::next(it);
  }
  return removed;
}

const std::vector<DigestEntry>& MemStore::digest_entries() const {
  if (digest_dirty_) {
    digest_cache_.clear();
    digest_cache_.reserve(object_count_);
    for (const auto& [key, slot] : data_) {
      for (const Version version : slot.versions) {
        digest_cache_.push_back(DigestEntry{key, version});
      }
    }
    digest_dirty_ = false;
  }
  return digest_cache_;
}

std::vector<DigestEntry> MemStore::digest() const { return digest_entries(); }

void MemStore::for_each(const std::function<void(const Object&)>& fn) const {
  for (const auto& [key, slot] : data_) {
    for (std::size_t i = 0; i < slot.versions.size(); ++i) {
      fn(object_at(key, slot, i));
    }
  }
}

std::vector<Object> MemStore::all() const {
  std::vector<Object> out;
  out.reserve(object_count_);
  for_each([&out](const Object& obj) { out.push_back(obj); });
  return out;
}

std::size_t MemStore::remove_keys_where(
    const std::function<bool(const Key&)>& predicate) {
  std::size_t removed = 0;
  for (auto it = data_.begin(); it != data_.end();) {
    if (predicate(it->first)) {
      removed += it->second.versions.size();
      object_count_ -= it->second.versions.size();
      for (const Payload& value : it->second.values) {
        value_bytes_ -= value.size();
      }
      it = data_.erase(it);
    } else {
      ++it;
    }
  }
  if (removed > 0) {
    digest_dirty_ = true;
    ++rev_;
  }
  return removed;
}

ReapStats MemStore::reap(SimTime now, std::size_t max_bytes) {
  ReapStats stats;
  // Pass 1 — expiry: drop live versions whose deadline has passed. The
  // deadline was stamped once and propagated as-is, so every replica drops
  // the same versions (modulo clock skew) without coordinating.
  for (auto it = data_.begin(); it != data_.end();) {
    VersionedValues& slot = it->second;
    for (std::size_t i = 0; i < slot.versions.size();) {
      const Meta& meta = slot.meta[i];
      if (!meta.tombstone && meta.expires_at != 0 && meta.expires_at <= now) {
        erase_entry(slot, i);
        ++stats.expired;
      } else {
        ++i;
      }
    }
    it = slot.versions.empty() ? data_.erase(it) : std::next(it);
  }

  // Pass 2 — eviction: whole keys in hash-map (i.e. arbitrary) order until
  // the byte budget holds. Keys carrying a tombstone are immune: evicting
  // one would forget a delete before its grace period and risk
  // resurrection. The storage engine wraps this with a real LRU; bare
  // MemStore only promises the bound, not the policy.
  if (max_bytes > 0 && value_bytes_ > max_bytes) {
    for (auto it = data_.begin();
         it != data_.end() && value_bytes_ > max_bytes;) {
      if (it->second.max_tombstone != 0) {
        ++it;
        continue;
      }
      object_count_ -= it->second.versions.size();
      for (const Payload& value : it->second.values) {
        value_bytes_ -= value.size();
      }
      it = data_.erase(it);
      ++stats.evicted;
      digest_dirty_ = true;
      ++rev_;
    }
  }
  return stats;
}

bool MemStore::erase_version(const Key& key, Version version) {
  const auto it = data_.find(key);
  if (it == data_.end()) return false;
  const std::size_t index = it->second.find(version);
  if (index == VersionedValues::npos) return false;
  erase_entry(it->second, index);
  if (it->second.versions.empty()) data_.erase(it);
  return true;
}

std::size_t MemStore::erase_key(const Key& key) {
  const auto it = data_.find(key);
  if (it == data_.end()) return 0;
  const std::size_t removed = it->second.versions.size();
  object_count_ -= removed;
  for (const Payload& value : it->second.values) {
    value_bytes_ -= value.size();
  }
  data_.erase(it);
  if (removed > 0) {
    digest_dirty_ = true;
    ++rev_;
  }
  return removed;
}

void MemStore::clear() {
  data_.clear();
  object_count_ = 0;
  value_bytes_ = 0;
  digest_cache_.clear();
  digest_dirty_ = false;
  ++rev_;
}

}  // namespace dataflasks::store
