#include "store/memstore.hpp"

#include <algorithm>

namespace dataflasks::store {

std::size_t MemStore::VersionedValues::find(Version version) const {
  const auto it =
      std::lower_bound(versions.begin(), versions.end(), version);
  if (it == versions.end() || *it != version) return npos;
  return static_cast<std::size_t>(it - versions.begin());
}

Status MemStore::put(const Object& obj) {
  VersionedValues& slot = data_[obj.key];
  const std::size_t existing = slot.find(obj.version);
  if (existing != VersionedValues::npos) {
    if (slot.values[existing] != obj.value) {
      return Error::conflict("different value for existing version of key '" +
                             obj.key + "'");
    }
    return Status::ok_status();  // idempotent re-store
  }

  // Versions are assigned in increasing order upstream, so the common case
  // is an append; out-of-order arrivals (replication races) insert sorted.
  if (slot.versions.empty() || obj.version > slot.versions.back()) {
    slot.versions.push_back(obj.version);
    slot.values.push_back(obj.value);  // refcount bump, not a byte copy
  } else {
    const auto pos = std::lower_bound(slot.versions.begin(),
                                      slot.versions.end(), obj.version);
    const auto index = pos - slot.versions.begin();
    slot.versions.insert(pos, obj.version);
    slot.values.insert(slot.values.begin() + index, obj.value);
  }
  ++object_count_;
  value_bytes_ += obj.value.size();
  if (!digest_dirty_) digest_cache_.push_back(DigestEntry{obj.key, obj.version});
  return Status::ok_status();
}

Result<Object> MemStore::get(const Key& key,
                             std::optional<Version> version) const {
  const auto it = data_.find(key);
  if (it == data_.end() || it->second.versions.empty()) {
    return Error::not_found("no such key: " + key);
  }
  const VersionedValues& slot = it->second;
  if (!version) {
    return Object{key, slot.versions.back(), slot.values.back()};
  }
  const std::size_t index = slot.find(*version);
  if (index == VersionedValues::npos) {
    return Error::not_found("no such version of key: " + key);
  }
  return Object{key, slot.versions[index], slot.values[index]};
}

bool MemStore::contains(const Key& key, Version version) const {
  const auto it = data_.find(key);
  return it != data_.end() &&
         it->second.find(version) != VersionedValues::npos;
}

const std::vector<DigestEntry>& MemStore::digest_entries() const {
  if (digest_dirty_) {
    digest_cache_.clear();
    digest_cache_.reserve(object_count_);
    for (const auto& [key, slot] : data_) {
      for (const Version version : slot.versions) {
        digest_cache_.push_back(DigestEntry{key, version});
      }
    }
    digest_dirty_ = false;
  }
  return digest_cache_;
}

std::vector<DigestEntry> MemStore::digest() const { return digest_entries(); }

void MemStore::for_each(const std::function<void(const Object&)>& fn) const {
  for (const auto& [key, slot] : data_) {
    for (std::size_t i = 0; i < slot.versions.size(); ++i) {
      fn(Object{key, slot.versions[i], slot.values[i]});
    }
  }
}

std::vector<Object> MemStore::all() const {
  std::vector<Object> out;
  out.reserve(object_count_);
  for_each([&out](const Object& obj) { out.push_back(obj); });
  return out;
}

std::size_t MemStore::remove_keys_where(
    const std::function<bool(const Key&)>& predicate) {
  std::size_t removed = 0;
  for (auto it = data_.begin(); it != data_.end();) {
    if (predicate(it->first)) {
      removed += it->second.versions.size();
      object_count_ -= it->second.versions.size();
      for (const Payload& value : it->second.values) {
        value_bytes_ -= value.size();
      }
      it = data_.erase(it);
    } else {
      ++it;
    }
  }
  if (removed > 0) digest_dirty_ = true;
  return removed;
}

void MemStore::clear() {
  data_.clear();
  object_count_ = 0;
  value_bytes_ = 0;
  digest_cache_.clear();
  digest_dirty_ = false;
}

}  // namespace dataflasks::store
