#include "store/memstore.hpp"

namespace dataflasks::store {

Status MemStore::put(const Object& obj) {
  auto& versions = data_[obj.key];
  const auto it = versions.find(obj.version);
  if (it != versions.end()) {
    if (it->second != obj.value) {
      return Error::conflict("different value for existing version of key '" +
                             obj.key + "'");
    }
    return Status::ok_status();  // idempotent re-store
  }
  versions.emplace(obj.version, obj.value);
  ++object_count_;
  value_bytes_ += obj.value.size();
  return Status::ok_status();
}

Result<Object> MemStore::get(const Key& key,
                             std::optional<Version> version) const {
  const auto it = data_.find(key);
  if (it == data_.end() || it->second.empty()) {
    return Error::not_found("no such key: " + key);
  }
  const auto& versions = it->second;
  if (!version) {
    const auto& [v, value] = *versions.rbegin();
    return Object{key, v, value};
  }
  const auto vit = versions.find(*version);
  if (vit == versions.end()) {
    return Error::not_found("no such version of key: " + key);
  }
  return Object{key, vit->first, vit->second};
}

bool MemStore::contains(const Key& key, Version version) const {
  const auto it = data_.find(key);
  return it != data_.end() && it->second.contains(version);
}

std::vector<DigestEntry> MemStore::digest() const {
  std::vector<DigestEntry> out;
  out.reserve(object_count_);
  for (const auto& [key, versions] : data_) {
    for (const auto& [version, _] : versions) {
      out.push_back(DigestEntry{key, version});
    }
  }
  return out;
}

std::vector<Object> MemStore::all() const {
  std::vector<Object> out;
  out.reserve(object_count_);
  for (const auto& [key, versions] : data_) {
    for (const auto& [version, value] : versions) {
      out.push_back(Object{key, version, value});
    }
  }
  return out;
}

std::size_t MemStore::remove_keys_where(
    const std::function<bool(const Key&)>& predicate) {
  std::size_t removed = 0;
  for (auto it = data_.begin(); it != data_.end();) {
    if (predicate(it->first)) {
      removed += it->second.size();
      object_count_ -= it->second.size();
      for (const auto& [_, value] : it->second) {
        value_bytes_ -= value.size();
      }
      it = data_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

void MemStore::clear() {
  data_.clear();
  object_count_ = 0;
  value_bytes_ = 0;
}

}  // namespace dataflasks::store
