#include "store/sharded_store.hpp"

#include <algorithm>
#include <utility>

#include "common/ensure.hpp"

namespace dataflasks::store {

ShardedStore::ShardedStore(std::vector<std::unique_ptr<Store>> partitions) {
  ensure(!partitions.empty(), "ShardedStore: needs at least one partition");
  partitions_.reserve(partitions.size());
  for (auto& store : partitions) {
    ensure(store != nullptr, "ShardedStore: null partition");
    auto p = std::make_unique<Partition>();
    p->store = std::move(store);
    partitions_.push_back(std::move(p));
  }

  // Constructor runs before any shard thread exists, so the rebalance needs
  // no locks: collect every recovered object living in the wrong partition
  // (durable restart across a --shards change), re-home it, then drop it
  // from where it was. Tombstones migrate like values, so a delete still
  // supersedes a late replica copy after the move.
  if (partitions_.size() > 1) {
    for (std::size_t i = 0; i < partitions_.size(); ++i) {
      std::vector<Object> misplaced;
      partitions_[i]->store->for_each([&](const Object& obj) {
        if (partition_of(obj.key, partitions_.size()) != i) {
          misplaced.push_back(obj);
        }
      });
      if (misplaced.empty()) continue;
      for (const Object& obj : misplaced) {
        home_of(obj.key).store->put(obj);
      }
      partitions_[i]->store->remove_keys_where([&](const Key& key) {
        return partition_of(key, partitions_.size()) != i;
      });
      rebalanced_ += misplaced.size();
    }
  }
}

Status ShardedStore::put(const Object& obj) {
  Partition& p = home_of(obj.key);
  std::lock_guard<std::mutex> lock(p.mutex);
  Status s = p.store->put(obj);
  if (s.ok()) mark_dirty();
  return s;
}

CasOutcome ShardedStore::compare_and_put(const Object& obj,
                                         Version expected) {
  Partition& p = home_of(obj.key);
  std::lock_guard<std::mutex> lock(p.mutex);
  // Delegating under the partition lock makes the inner read-compare-write
  // atomic against every other accessor of this partition.
  CasOutcome out = p.store->compare_and_put(obj, expected);
  if (out.status == CasOutcome::Status::kStored) mark_dirty();
  return out;
}

Result<Object> ShardedStore::get(const Key& key,
                                 std::optional<Version> version) const {
  Partition& p = home_of(key);
  std::lock_guard<std::mutex> lock(p.mutex);
  return p.store->get(key, version);
}

Version ShardedStore::tombstone_version(const Key& key) const {
  Partition& p = home_of(key);
  std::lock_guard<std::mutex> lock(p.mutex);
  return p.store->tombstone_version(key);
}

std::size_t ShardedStore::gc_tombstones(SimTime now, SimTime grace) {
  std::size_t removed = 0;
  for (auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mutex);
    removed += p->store->gc_tombstones(now, grace);
  }
  if (removed > 0) mark_dirty();
  return removed;
}

bool ShardedStore::contains(const Key& key, Version version) const {
  Partition& p = home_of(key);
  std::lock_guard<std::mutex> lock(p.mutex);
  return p.store->contains(key, version);
}

std::vector<DigestEntry> ShardedStore::digest() const {
  std::vector<DigestEntry> out;
  for (const auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mutex);
    const std::vector<DigestEntry> part = p->store->digest();
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

const std::vector<DigestEntry>& ShardedStore::digest_entries() const {
  // Shard-0-only by contract (anti-entropy and state transfer both live
  // there), so the merged vector needs no lock of its own — only the
  // per-partition locks while copying entries out.
  if (digest_dirty_.exchange(false, std::memory_order_acq_rel)) {
    merged_digest_.clear();
    for (const auto& p : partitions_) {
      std::lock_guard<std::mutex> lock(p->mutex);
      const std::vector<DigestEntry>& part = p->store->digest_entries();
      merged_digest_.insert(merged_digest_.end(), part.begin(), part.end());
    }
  }
  return merged_digest_;
}

void ShardedStore::for_each(
    const std::function<void(const Object&)>& fn) const {
  for (const auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mutex);
    p->store->for_each(fn);
  }
}

std::vector<Object> ShardedStore::all() const {
  std::vector<Object> out;
  for (const auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mutex);
    std::vector<Object> part = p->store->all();
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

std::size_t ShardedStore::remove_keys_where(
    const std::function<bool(const Key&)>& predicate) {
  std::size_t removed = 0;
  for (auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mutex);
    removed += p->store->remove_keys_where(predicate);
  }
  if (removed > 0) mark_dirty();
  return removed;
}

std::size_t ShardedStore::object_count() const {
  std::size_t count = 0;
  for (const auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mutex);
    count += p->store->object_count();
  }
  return count;
}

std::size_t ShardedStore::value_bytes() const {
  std::size_t bytes = 0;
  for (const auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mutex);
    bytes += p->store->value_bytes();
  }
  return bytes;
}

ReapStats ShardedStore::reap(SimTime now, std::size_t max_bytes) {
  // The satellite bugfix lives here: before this, only put/delete paths
  // marked the merged digest dirty, so a reap could leave anti-entropy
  // advertising keys the expiry wheel had already removed — and a peer pull
  // for such a key would come back empty every round, forever.
  const std::size_t per_partition =
      max_bytes == 0 ? 0
                     : std::max<std::size_t>(max_bytes / partitions_.size(), 1);
  ReapStats stats;
  for (auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mutex);
    const ReapStats part = p->store->reap(now, per_partition);
    stats.expired += part.expired;
    stats.evicted += part.evicted;
  }
  if (stats.expired > 0 || stats.evicted > 0) mark_dirty();
  return stats;
}

Result<std::size_t> ShardedStore::compact_storage() {
  std::size_t reclaimed = 0;
  for (auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mutex);
    auto part = p->store->compact_storage();
    if (!part.ok()) return part.error();
    reclaimed += part.value();
  }
  return reclaimed;
}

StoreBreakdown ShardedStore::breakdown() const {
  StoreBreakdown out;
  for (const auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mutex);
    const StoreBreakdown part = p->store->breakdown();
    out.live_objects += part.live_objects;
    out.live_bytes += part.live_bytes;
    out.tombstone_objects += part.tombstone_objects;
  }
  return out;
}

}  // namespace dataflasks::store
