// Data Store abstraction (paper §V): "an abstraction of the actual storing
// mechanism which can be the node hard disk or other persistence mechanism".
// DataFlasks keeps every version it receives; gets address a specific
// version or the latest known one.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/result.hpp"
#include "store/object.hpp"

namespace dataflasks::store {

/// What one reap pass removed: versions whose TTL deadline passed, and
/// live keys evicted to honor a byte budget.
struct ReapStats {
  std::size_t expired = 0;
  std::size_t evicted = 0;
};

/// Object/byte composition of a store, for observability: live values vs
/// tombstones, counted without materializing a snapshot.
struct StoreBreakdown {
  std::size_t live_objects = 0;
  std::size_t live_bytes = 0;
  std::size_t tombstone_objects = 0;
};

/// Outcome of a compare_and_put. `current` is what the key looked like when
/// the comparison ran: the stored version on success, the latest live
/// version on a mismatch (0 = key absent), the tombstone's version when the
/// key is deleted, or the version the new stamp failed to outrank on a
/// conflict.
struct CasOutcome {
  enum class Status : std::uint8_t {
    kStored,    ///< expected matched; the object is stored
    kMismatch,  ///< key's latest live version differs from expected
    kDeleted,   ///< key is tombstoned: CAS fails cleanly, never resurrects
    kConflict,  ///< new version does not advance past the current one
  };
  Status status = Status::kMismatch;
  Version current = 0;
};

class Store {
 public:
  virtual ~Store() = default;

  /// Stores an object. Re-storing the same (key, version) is idempotent;
  /// a different value for an existing (key, version) is a conflict (the
  /// upper layer guarantees this never happens, so we surface it loudly).
  ///
  /// Tombstone semantics: storing a tombstone at version v drops every
  /// version < v of the key (the delete supersedes them); storing a value
  /// at a version <= the key's newest tombstone is discarded and reported
  /// as Error::Code::kSuperseded (a late replica copy must not resurrect a
  /// deleted key, and a write ack must not claim a discarded put was
  /// stored). A value above the tombstone legitimately recreates the key.
  virtual Status put(const Object& obj) = 0;

  /// Conditional write: stores `obj` only if the key's latest live version
  /// equals `expected` (0 = "key must not exist") and obj.version advances
  /// past it. A visible tombstone always fails the CAS (kDeleted) — a
  /// conditional write must not resurrect a deleted key; recreating one is
  /// a plain put above the tombstone. The default implementation is
  /// read-compare-write, atomic because stores run on one runtime loop;
  /// stores with internal concurrency must override.
  virtual CasOutcome compare_and_put(const Object& obj, Version expected);

  /// `version == nullopt` means "latest stored version". Tombstones are
  /// returned like any stored version (check Object::tombstone); callers
  /// that serve reads translate a tombstone into an authoritative miss.
  [[nodiscard]] virtual Result<Object> get(
      const Key& key, std::optional<Version> version) const = 0;

  /// Newest tombstone version stored for `key`, or 0 when none. Used by
  /// anti-entropy to skip pulling versions our own tombstone supersedes,
  /// and by read paths to answer "deleted" authoritatively.
  [[nodiscard]] virtual Version tombstone_version(const Key& key) const = 0;

  /// Drops tombstones whose deletion stamp is older than `now - grace`
  /// (a tombstone must outlive the anti-entropy convergence window, or a
  /// lagging replica could resurrect the value). Returns removed count.
  virtual std::size_t gc_tombstones(SimTime now, SimTime grace) = 0;

  [[nodiscard]] virtual bool contains(const Key& key,
                                      Version version) const = 0;

  /// Every (key, version) held; the anti-entropy digest source.
  [[nodiscard]] virtual std::vector<DigestEntry> digest() const = 0;

  /// Cached view of digest(): a reference to an incrementally maintained
  /// entry list, valid until the next mutation. Anti-entropy and state
  /// transfer read this every round; the cache makes that O(1) instead of
  /// rebuilding the full (key, version) list per call.
  [[nodiscard]] virtual const std::vector<DigestEntry>& digest_entries()
      const = 0;

  /// Visits every stored object without materializing a snapshot vector.
  virtual void for_each(
      const std::function<void(const Object&)>& fn) const = 0;

  /// All stored objects in unspecified order (state transfer snapshots).
  [[nodiscard]] virtual std::vector<Object> all() const = 0;

  /// Removes objects for which `predicate(key)` is true (e.g. dropping data
  /// outside the node's slice after a slice change). Returns removed count.
  virtual std::size_t remove_keys_where(
      const std::function<bool(const Key&)>& predicate) = 0;

  [[nodiscard]] virtual std::size_t object_count() const = 0;
  [[nodiscard]] virtual std::size_t value_bytes() const = 0;

  /// Removes versions whose TTL deadline (`Object::expires_at`) is at or
  /// before `now`, then — when `max_bytes > 0` and the store still holds
  /// more than `max_bytes` of value bytes — evicts live keys until it fits.
  /// Eviction never touches tombstoned keys (dropping a tombstone early
  /// could resurrect the delete) and removes whole keys, not single
  /// versions, so a key never ends up with a hole in its history.
  virtual ReapStats reap(SimTime now, std::size_t max_bytes) = 0;

  /// Rewrites persistent storage down to its live footprint (log/journal
  /// compaction, snapshot checkpoint). Returns bytes reclaimed; purely
  /// in-memory stores reclaim nothing and return 0.
  virtual Result<std::size_t> compact_storage() { return 0; }

  /// Monotone mutation counter: bumped on every put / removal / reap, so
  /// callers (anti-entropy summary caches) can detect "nothing changed"
  /// without hashing the digest. Never goes backward within a process.
  [[nodiscard]] virtual std::uint64_t mutation_rev() const = 0;

  /// Live-vs-tombstone composition for /metrics. The default walks
  /// for_each; stores with an index override to avoid touching values.
  [[nodiscard]] virtual StoreBreakdown breakdown() const {
    StoreBreakdown out;
    for_each([&out](const Object& obj) {
      if (obj.tombstone) {
        ++out.tombstone_objects;
      } else {
        ++out.live_objects;
        out.live_bytes += obj.value.size();
      }
    });
    return out;
  }
};

inline CasOutcome Store::compare_and_put(const Object& obj,
                                         Version expected) {
  const auto latest = get(obj.key, std::nullopt);
  if (latest.ok() && latest.value().tombstone) {
    return {CasOutcome::Status::kDeleted, latest.value().version};
  }
  const Version current = latest.ok() ? latest.value().version : 0;
  if (current != expected) return {CasOutcome::Status::kMismatch, current};
  if (obj.version <= current) return {CasOutcome::Status::kConflict, current};
  if (!put(obj).ok()) {
    // Unreachable for well-behaved single-threaded stores (the checks above
    // rule out supersession and version reuse); surfaced as a conflict so a
    // defensive override's failure is never acked as stored.
    return {CasOutcome::Status::kConflict, current};
  }
  return {CasOutcome::Status::kStored, obj.version};
}

}  // namespace dataflasks::store
