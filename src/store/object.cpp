#include "store/object.hpp"

namespace dataflasks::store {

namespace {
constexpr std::uint8_t kFlagTombstone = 0x01;
// TTL deadline present (flag-gated i64 after the tombstone stamp): objects
// without a TTL encode byte-for-byte as they always did, so pre-TTL frames
// and log records decode unchanged.
constexpr std::uint8_t kFlagExpires = 0x02;
}  // namespace

void encode(Writer& w, const Object& obj) {
  w.str(obj.key);
  w.u64(obj.version);
  w.u8((obj.tombstone ? kFlagTombstone : 0) |
       (obj.expires_at != 0 ? kFlagExpires : 0));
  if (obj.tombstone) w.i64(obj.deleted_at);
  if (obj.expires_at != 0) w.i64(obj.expires_at);
  w.bytes(obj.value);
}

Object decode_object(Reader& r) {
  Object obj;
  obj.key = r.str();
  obj.version = r.u64();
  const std::uint8_t flags = r.u8();
  if ((flags & ~(kFlagTombstone | kFlagExpires)) != 0) {
    r.invalidate();  // unknown flag bits: malformed, not "v-next"
    return obj;
  }
  obj.tombstone = (flags & kFlagTombstone) != 0;
  if (obj.tombstone) obj.deleted_at = r.i64();
  if ((flags & kFlagExpires) != 0) obj.expires_at = r.i64();
  // Zero-copy when the Reader wraps a Payload: the value stays a view into
  // the network frame it arrived in.
  obj.value = r.payload();
  return obj;
}

void encode(Writer& w, const DigestEntry& entry) {
  w.str(entry.key);
  w.u64(entry.version);
}

DigestEntry decode_digest_entry(Reader& r) {
  DigestEntry entry;
  entry.key = r.str();
  entry.version = r.u64();
  return entry;
}

}  // namespace dataflasks::store
