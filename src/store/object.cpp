#include "store/object.hpp"

namespace dataflasks::store {

namespace {
constexpr std::uint8_t kFlagTombstone = 0x01;
}  // namespace

void encode(Writer& w, const Object& obj) {
  w.str(obj.key);
  w.u64(obj.version);
  w.u8(obj.tombstone ? kFlagTombstone : 0);
  if (obj.tombstone) w.i64(obj.deleted_at);
  w.bytes(obj.value);
}

Object decode_object(Reader& r) {
  Object obj;
  obj.key = r.str();
  obj.version = r.u64();
  const std::uint8_t flags = r.u8();
  obj.tombstone = (flags & kFlagTombstone) != 0;
  if (obj.tombstone) obj.deleted_at = r.i64();
  // Zero-copy when the Reader wraps a Payload: the value stays a view into
  // the network frame it arrived in.
  obj.value = r.payload();
  return obj;
}

void encode(Writer& w, const DigestEntry& entry) {
  w.str(entry.key);
  w.u64(entry.version);
}

DigestEntry decode_digest_entry(Reader& r) {
  DigestEntry entry;
  entry.key = r.str();
  entry.version = r.u64();
  return entry;
}

}  // namespace dataflasks::store
