// DataFlasks client library (paper §V): one component implements the
// operation API by contacting a node from the Load Balancer; the other
// deals with reply messages — "it must know how to handle multiple replies
// for the same request", which epidemic dissemination naturally produces,
// by deduplicating on the request identifier.
//
// The client speaks the versioned operation API: every request — a single
// put, get or delete, or an explicit batch — is one OpEnvelope datagram,
// and replicas answer with OpReplyBatch messages. Batches resolve per
// operation; timeouts retry only the operations still unresolved.
//
// The client also stamps versions for puts and deletes (standing in for
// DataDroplets, which the paper says totally orders operations before they
// reach DataFlasks): a monotonic per-key counter.
//
// This is the callback core; client/session.hpp layers a futures-based
// surface (Session::put/get/del/put_batch/get_many) on top of it.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/load_balancer.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/messages.hpp"
#include "net/transport.hpp"
#include "runtime/runtime.hpp"
#include "store/object.hpp"

namespace dataflasks::client {

struct ClientOptions {
  SimTime request_timeout = 2 * kSeconds;
  std::uint32_t max_attempts = 4;  ///< total tries (1 initial + retries)
  /// When set, the client maps keys to slices itself (enables slice-aware
  /// load balancing). Must match the cluster's slice count; zero disables.
  std::uint32_t slice_count_hint = 0;
  /// Hedged reads: when > 0, a read-only request with unanswered gets is
  /// re-sent to a *second* contact after this delay (without consuming a
  /// retry attempt). Cuts tail latency when the first contact is slow or
  /// dead, at the cost of occasional duplicate work — which the reply
  /// dedup absorbs anyway.
  SimTime get_hedge_delay = 0;
  /// Operation-API protocol to open with. A server answering with
  /// kVersionMismatch renegotiates the client down (or the request fails
  /// as unsupported when the ops cannot be expressed at the server's
  /// version). Clamped to [kOpProtocolMin, kOpProtocolVersion].
  std::uint8_t protocol_version = core::kOpProtocolVersion;
  /// Absolute per-request budget: once this much time has passed since
  /// execute(), unresolved ops fail definitively as deadline_exceeded —
  /// no further retries, no unbounded backoff waits. Zero means no
  /// deadline (legacy behavior: max_attempts alone bounds the request).
  SimTime op_deadline = 0;
  /// Backoff after an explicit kOverloaded shed: the retry waits
  /// max(server retry-after hint, backoff_base << (attempts-1)) capped at
  /// backoff_max, jittered ±50% to decorrelate a thundering herd.
  SimTime backoff_base = 50 * kMillis;
  SimTime backoff_max = 2 * kSeconds;
};

/// Unified per-operation outcome for batch requests.
struct OpResult {
  bool ok = false;
  core::OpType type = core::OpType::kGet;
  /// Get only: the key is authoritatively deleted (a replica holds its
  /// tombstone). `ok` is false; this is a definitive miss, not a timeout.
  bool deleted = false;
  /// Put only: the store discarded the write because the key's tombstone
  /// outranks its version. `ok` is false; definitive, not a timeout.
  bool superseded = false;
  /// CompareAndPut only: the precondition failed — the key's current
  /// version (in `version`; a tombstone's for a deleted key) differs from
  /// the expected one. `ok` is false; definitive, not a timeout.
  bool cas_failed = false;
  /// The op cannot be expressed at the protocol version the contacted
  /// server speaks (e.g. CompareAndPut against a v1-only cluster). `ok` is
  /// false; definitive, not a timeout.
  bool unsupported = false;
  /// Every contacted node shed the op under admission control and the
  /// retry/backoff budget ran out. `ok` is false; definitive backpressure,
  /// not a timeout — the caller should slow down before resubmitting.
  bool overloaded = false;
  /// The request's op_deadline passed before the op resolved. `ok` is
  /// false; definitive for this request (the op may still land server-side
  /// — same at-most-once caveat as a timeout).
  bool deadline_exceeded = false;
  store::Object object;  ///< get hit: the full object
  Key key;
  Version version = 0;
  NodeId replica;  ///< first replica that answered this op
  std::uint32_t attempts = 0;
  SimTime latency = 0;
};

struct PutResult {
  bool ok = false;
  /// The write lost to the key's tombstone (deleted at a higher version):
  /// a definitive rejection, not a timeout.
  bool superseded = false;
  /// The contacted cluster's protocol cannot express this put (a TTL'd put
  /// against a pre-v3 cluster). Definitive, not a timeout.
  bool unsupported = false;
  Key key;
  Version version = 0;
  NodeId replica;           ///< first acknowledging replica
  std::uint32_t attempts = 0;
  SimTime latency = 0;
};

struct GetResult {
  bool ok = false;
  /// Authoritative tombstone answer: the key was deleted (ok == false).
  bool deleted = false;
  store::Object object;
  NodeId replica;
  std::uint32_t attempts = 0;
  SimTime latency = 0;
};

struct DelResult {
  bool ok = false;
  Key key;
  Version version = 0;
  NodeId replica;
  std::uint32_t attempts = 0;
  SimTime latency = 0;
};

struct CasResult {
  bool ok = false;
  /// Precondition failed: `version` is the key's actual current version
  /// (the tombstone's when the key is deleted). Definitive, not a timeout.
  bool cas_failed = false;
  /// The contacted cluster's protocol cannot express compare-and-put.
  bool unsupported = false;
  Key key;
  Version version = 0;  ///< stored version on ok; current version on failure
  NodeId replica;
  std::uint32_t attempts = 0;
  SimTime latency = 0;
};

struct StatsResult {
  bool ok = false;
  bool unsupported = false;
  std::string text;  ///< the contact node's stats snapshot (Prometheus text)
  NodeId replica;
  std::uint32_t attempts = 0;
  SimTime latency = 0;
};

class Client {
 public:
  using PutCallback = std::function<void(const PutResult&)>;
  using GetCallback = std::function<void(const GetResult&)>;
  using DelCallback = std::function<void(const DelResult&)>;
  using CasCallback = std::function<void(const CasResult&)>;
  using StatsCallback = std::function<void(const StatsResult&)>;
  /// Fires exactly once per execute(): when every op has resolved (served,
  /// authoritatively deleted, or failed after the retry budget). Results
  /// are in the submitted op order.
  using BatchCallback = std::function<void(const std::vector<OpResult>&)>;

  Client(NodeId id, net::Transport& transport, runtime::Runtime& rt,
         LoadBalancer& balancer, Rng rng, ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Submits a batch of operations as one OpEnvelope (pipelining: N ops,
  /// one round-trip). Ops may mix puts, gets and deletes across keys.
  void execute(std::vector<core::Operation> ops, BatchCallback done);

  /// Writes `value` under `key` with an explicit version (upper layers that
  /// order operations themselves use this form). Payload converts
  /// implicitly from `Bytes`; the value buffer is shared, not copied, all
  /// the way to the replicas' stores.
  void put(Key key, Payload value, Version version, PutCallback done);

  /// Put with a time-to-live: replicas stamp an absolute expiry deadline
  /// `ttl_ms` from now and the object expires cluster-wide (reaped, and
  /// answered as deleted if read first). Requires protocol v3 — against an
  /// older cluster the op fails with `unsupported` set. `ttl_ms == 0`
  /// means no expiry (identical to the plain overload).
  void put(Key key, Payload value, Version version, std::uint32_t ttl_ms,
           PutCallback done);

  /// Writes with an auto-stamped version (monotonic per key, this client).
  Version put_auto(Key key, Payload value, PutCallback done);

  /// Reads `key`; `version == nullopt` asks for the latest.
  void get(Key key, std::optional<Version> version, GetCallback done);

  /// Deletes `key` at an explicit version: replicas store a tombstone that
  /// replicates like a write and supersedes every older version.
  void del(Key key, Version version, DelCallback done);

  /// Deletes with an auto-stamped version (above this client's last write).
  Version del_auto(Key key, DelCallback done);

  /// Conditional write: stores `value` only if the key's current version
  /// equals `expected` (0 = "create only"). The new version is auto-stamped
  /// above `expected`, so a CAS chained off a get always advances. Returns
  /// the stamped version.
  Version cas(Key key, Version expected, Payload value, CasCallback done);

  /// CAS with an explicit new version (callers that order writes
  /// themselves). `version` must exceed `expected` or replicas reject it.
  void cas_at(Key key, Version expected, Version version, Payload value,
              CasCallback done);

  /// Admin op: asks the contact node for its stats snapshot (Prometheus
  /// text — the same bytes its /metrics endpoint serves).
  void stats(StatsCallback done);

  /// Next auto version for `key` (monotonic per key, disjoint across
  /// clients). put_auto/del_auto use this; batch builders call it to stamp
  /// each entry before packing the envelope.
  [[nodiscard]] Version stamp_version(const Key& key);

  /// Like stamp_version, but guaranteed to stamp strictly above `floor`
  /// (e.g. a version read from another client's write, for CAS chaining).
  [[nodiscard]] Version stamp_version_above(const Key& key, Version floor);

  [[nodiscard]] NodeId id() const { return id_; }
  /// Operation-API protocol currently spoken (moves down when a server
  /// answers kVersionMismatch).
  [[nodiscard]] std::uint8_t active_protocol() const {
    return active_protocol_;
  }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  /// Operations (not batches) currently awaiting resolution.
  [[nodiscard]] std::size_t inflight() const { return rid_index_.size(); }

 private:
  struct PendingBatch {
    std::vector<core::Operation> ops;
    std::vector<OpResult> results;   ///< parallel to `ops`
    std::vector<bool> resolved;      ///< parallel to `ops`
    std::size_t unresolved = 0;
    BatchCallback done;
    std::uint64_t base_seq = 0;      ///< ops[i] has rid.seq == base_seq + i
    bool read_only = true;           ///< all gets: eligible for hedging
    std::uint32_t attempts = 0;
    /// Protocol this batch was last re-sent at after a kVersionMismatch
    /// (0 = never). One resend per adopted version: a mismatch arriving
    /// per envelope chunk must not multiply resends.
    std::uint8_t negotiated = 0;
    SimTime started = 0;
    /// Absolute resolve-by time (0 = none); set from options.op_deadline.
    SimTime deadline = 0;
    /// The current attempt's contact answered *something* (a reply batch,
    /// a version mismatch, an overload shed). Distinguishes an explicit
    /// negative from silence: only silence marks the contact unreachable.
    bool got_reply = false;
    NodeId contact;
    runtime::TimerHandle timer;
    runtime::TimerHandle hedge_timer;
    /// Pending backoff wait after a kOverloaded shed (also the dedup guard:
    /// extra shed frames for the same attempt must not multiply retries).
    runtime::TimerHandle retry_timer;
  };

  void dispatch(const net::Message& msg);
  void handle_version_mismatch(const core::VersionMismatch& mismatch);
  void handle_overloaded(NodeId from, const core::OverloadReply& shed);
  void send_batch(PendingBatch& batch);
  void send_envelopes(const PendingBatch& batch, NodeId contact);
  void on_timeout(std::uint64_t base_seq);
  /// Fails every unresolved op (`mark` sets the definitive flag on each
  /// result) and fires the batch callback.
  template <typename Mark>
  void fail_unresolved(PendingBatch& batch, const char* counter, Mark mark);
  void complete(PendingBatch& batch);
  /// The unresolved ops re-encoded as one or more envelopes, split against
  /// the per-datagram budget (an oversized frame would be dropped by UDP).
  [[nodiscard]] std::vector<Payload> encode_unresolved(
      const PendingBatch& batch) const;
  [[nodiscard]] std::optional<SliceId> slice_hint(
      const PendingBatch& batch) const;

  NodeId id_;
  net::Transport& transport_;
  runtime::Runtime& runtime_;
  LoadBalancer& balancer_;
  Rng rng_;
  ClientOptions options_;
  MetricsRegistry metrics_;
  std::uint8_t active_protocol_;
  std::uint64_t next_seq_ = 1;
  std::unordered_map<Key, Version> version_counters_;
  /// Batches keyed by their base sequence number.
  std::unordered_map<std::uint64_t, PendingBatch> pending_;
  /// Every unresolved op's seq -> owning batch base_seq (reply routing).
  std::unordered_map<std::uint64_t, std::uint64_t> rid_index_;
};

}  // namespace dataflasks::client
