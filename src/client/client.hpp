// DataFlasks client library (paper §V): one component implements the
// put/get API by contacting a node from the Load Balancer; the other deals
// with reply messages — "it must know how to handle multiple replies for
// the same request", which epidemic dissemination naturally produces, by
// deduplicating on the request identifier.
//
// The client also stamps versions for puts (standing in for DataDroplets,
// which the paper says totally orders operations before they reach
// DataFlasks): a monotonic per-key counter.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "client/load_balancer.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/messages.hpp"
#include "net/transport.hpp"
#include "runtime/runtime.hpp"
#include "store/object.hpp"

namespace dataflasks::client {

struct ClientOptions {
  SimTime request_timeout = 2 * kSeconds;
  std::uint32_t max_attempts = 4;  ///< total tries (1 initial + retries)
  /// When set, the client maps keys to slices itself (enables slice-aware
  /// load balancing). Must match the cluster's slice count; zero disables.
  std::uint32_t slice_count_hint = 0;
  /// Hedged reads: when > 0, an unanswered get is re-sent to a *second*
  /// contact after this delay (without consuming a retry attempt). Cuts
  /// tail latency when the first contact is slow or dead, at the cost of
  /// occasional duplicate work — which the reply dedup absorbs anyway.
  SimTime get_hedge_delay = 0;
};

struct PutResult {
  bool ok = false;
  Key key;
  Version version = 0;
  NodeId replica;           ///< first acknowledging replica
  std::uint32_t attempts = 0;
  SimTime latency = 0;
};

struct GetResult {
  bool ok = false;
  store::Object object;
  NodeId replica;
  std::uint32_t attempts = 0;
  SimTime latency = 0;
};

class Client {
 public:
  using PutCallback = std::function<void(const PutResult&)>;
  using GetCallback = std::function<void(const GetResult&)>;

  Client(NodeId id, net::Transport& transport, runtime::Runtime& rt,
         LoadBalancer& balancer, Rng rng, ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Writes `value` under `key` with an explicit version (upper layers that
  /// order operations themselves use this form). Payload converts
  /// implicitly from `Bytes`; the value buffer is shared, not copied, all
  /// the way to the replicas' stores.
  void put(Key key, Payload value, Version version, PutCallback done);

  /// Writes with an auto-stamped version (monotonic per key, this client).
  Version put_auto(Key key, Payload value, PutCallback done);

  /// Reads `key`; `version == nullopt` asks for the latest.
  void get(Key key, std::optional<Version> version, GetCallback done);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] std::size_t inflight() const {
    return pending_puts_.size() + pending_gets_.size();
  }

 private:
  struct PendingPut {
    core::PutRequest request;
    PutCallback done;
    std::uint32_t attempts = 0;
    SimTime started = 0;
    NodeId contact;
    runtime::TimerHandle timer;
  };
  struct PendingGet {
    core::GetRequest request;
    GetCallback done;
    std::uint32_t attempts = 0;
    SimTime started = 0;
    NodeId contact;
    runtime::TimerHandle timer;
    runtime::TimerHandle hedge_timer;
  };

  void dispatch(const net::Message& msg);
  void send_put(PendingPut& pending);
  void send_get(PendingGet& pending);
  void on_put_timeout(RequestId rid);
  void on_get_timeout(RequestId rid);
  [[nodiscard]] std::optional<SliceId> slice_of(const Key& key) const;
  [[nodiscard]] RequestId next_request_id();

  NodeId id_;
  net::Transport& transport_;
  runtime::Runtime& runtime_;
  LoadBalancer& balancer_;
  Rng rng_;
  ClientOptions options_;
  MetricsRegistry metrics_;
  std::uint64_t next_seq_ = 1;
  std::unordered_map<Key, Version> version_counters_;
  std::unordered_map<RequestId, PendingPut> pending_puts_;
  std::unordered_map<RequestId, PendingGet> pending_gets_;
};

}  // namespace dataflasks::client
