// Load Balancer (paper §V): "provides the Client Library with references to
// nodes that can answer client requests. ... For now, the Load Balancer
// provides the client with a random contact node."
//
// Two policies are provided: the paper's random policy and the §VII
// optimization direction — a slice cache that remembers which node answered
// for each slice and contacts it directly next time.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace dataflasks::client {

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  /// Picks a contact node for a request targeting `slice` (nullopt when the
  /// client cannot compute the slice, e.g. unknown slice count). `now` is
  /// the caller's clock, used to expire per-contact overload avoidance
  /// (callers without a clock may pass 0: avoidance then never expires on
  /// its own, only through observe_replica feedback).
  [[nodiscard]] virtual NodeId pick_contact(std::optional<SliceId> slice,
                                            SimTime now = 0) = 0;

  /// Feedback: `node` (a member of `slice`) answered a request.
  virtual void observe_replica(NodeId /*node*/, SliceId /*slice*/) {}

  /// Feedback: `node` failed to answer before the timeout.
  virtual void node_unreachable(NodeId /*node*/) {}

  /// Feedback: `node` answered with an explicit overload shed; prefer
  /// other contacts until `until` (same clock domain as pick_contact's
  /// `now`). Distinct from node_unreachable — an overloaded node is alive.
  virtual void node_overloaded(NodeId /*node*/, SimTime /*until*/) {}
};

/// The paper's policy: a uniformly random node from the bootstrap list —
/// refined with timeout feedback: contacts that recently failed to answer
/// are avoided, so a retry does not burn another full client timeout on a
/// node already known to be dead.
class RandomLoadBalancer : public LoadBalancer {
 public:
  RandomLoadBalancer(std::vector<NodeId> nodes, Rng rng);

  [[nodiscard]] NodeId pick_contact(std::optional<SliceId> slice,
                                    SimTime now = 0) override;
  void observe_replica(NodeId node, SliceId slice) override;
  void node_unreachable(NodeId node) override;
  void node_overloaded(NodeId node, SimTime until) override;

  void set_nodes(std::vector<NodeId> nodes) {
    nodes_ = std::move(nodes);
    // Stale blacklist entries for nodes no longer in the pool would pin the
    // bounded budget and never be re-admitted; start fresh.
    unreachable_.clear();
    overloaded_until_.clear();
  }
  [[nodiscard]] const std::vector<NodeId>& nodes() const { return nodes_; }
  /// Contacts currently under overload avoidance (expired entries are
  /// only purged lazily by pick_contact).
  [[nodiscard]] std::size_t overloaded_count() const {
    return overloaded_until_.size();
  }

 protected:
  /// True while `node` is under overload avoidance; purges expired entries.
  [[nodiscard]] bool avoid_overloaded(NodeId node, SimTime now);

  std::vector<NodeId> nodes_;
  Rng rng_;

 private:
  std::unordered_set<NodeId> unreachable_;
  std::unordered_map<NodeId, SimTime> overloaded_until_;
};

/// §VII optimization: remembers one known replica per slice (learned from
/// acks/replies) and contacts it directly, falling back to random. Entries
/// are dropped on timeout feedback, so churn self-heals the cache.
class SliceCacheLoadBalancer final : public RandomLoadBalancer {
 public:
  SliceCacheLoadBalancer(std::vector<NodeId> nodes, Rng rng);

  [[nodiscard]] NodeId pick_contact(std::optional<SliceId> slice,
                                    SimTime now = 0) override;
  void observe_replica(NodeId node, SliceId slice) override;
  void node_unreachable(NodeId node) override;

  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] std::uint64_t cache_hits() const { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return misses_; }

 private:
  std::unordered_map<SliceId, NodeId> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dataflasks::client
