// Load Balancer (paper §V): "provides the Client Library with references to
// nodes that can answer client requests. ... For now, the Load Balancer
// provides the client with a random contact node."
//
// Two policies are provided: the paper's random policy and the §VII
// optimization direction — a slice cache that remembers which node answered
// for each slice and contacts it directly next time.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace dataflasks::client {

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  /// Picks a contact node for a request targeting `slice` (nullopt when the
  /// client cannot compute the slice, e.g. unknown slice count).
  [[nodiscard]] virtual NodeId pick_contact(std::optional<SliceId> slice) = 0;

  /// Feedback: `node` (a member of `slice`) answered a request.
  virtual void observe_replica(NodeId /*node*/, SliceId /*slice*/) {}

  /// Feedback: `node` failed to answer before the timeout.
  virtual void node_unreachable(NodeId /*node*/) {}
};

/// The paper's policy: a uniformly random node from the bootstrap list —
/// refined with timeout feedback: contacts that recently failed to answer
/// are avoided, so a retry does not burn another full client timeout on a
/// node already known to be dead.
class RandomLoadBalancer : public LoadBalancer {
 public:
  RandomLoadBalancer(std::vector<NodeId> nodes, Rng rng);

  [[nodiscard]] NodeId pick_contact(std::optional<SliceId> slice) override;
  void observe_replica(NodeId node, SliceId slice) override;
  void node_unreachable(NodeId node) override;

  void set_nodes(std::vector<NodeId> nodes) {
    nodes_ = std::move(nodes);
    // Stale blacklist entries for nodes no longer in the pool would pin the
    // bounded budget and never be re-admitted; start fresh.
    unreachable_.clear();
  }
  [[nodiscard]] const std::vector<NodeId>& nodes() const { return nodes_; }

 protected:
  std::vector<NodeId> nodes_;
  Rng rng_;

 private:
  std::unordered_set<NodeId> unreachable_;
};

/// §VII optimization: remembers one known replica per slice (learned from
/// acks/replies) and contacts it directly, falling back to random. Entries
/// are dropped on timeout feedback, so churn self-heals the cache.
class SliceCacheLoadBalancer final : public RandomLoadBalancer {
 public:
  SliceCacheLoadBalancer(std::vector<NodeId> nodes, Rng rng);

  [[nodiscard]] NodeId pick_contact(std::optional<SliceId> slice) override;
  void observe_replica(NodeId node, SliceId slice) override;
  void node_unreachable(NodeId node) override;

  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] std::uint64_t cache_hits() const { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return misses_; }

 private:
  std::unordered_map<SliceId, NodeId> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dataflasks::client
