// Futures-based client surface over the callback core: a Session wraps a
// Client and returns lightweight single-threaded futures instead of taking
// callbacks. "Lightweight" means: no threads, no locks, no blocking —
// a Future is a shared completion slot filled by the client's reply
// dispatch on the runtime loop; consumers either poll ready() between
// runtime steps or chain continuations with then() (which also fire on the
// runtime loop). This is the surface new code should use; the callback
// core remains underneath for closed-loop harnesses.
//
//   Session s(client);
//   auto fut = s.put("k", value);          // auto-stamped version
//   auto got = s.get("k");
//   auto gone = s.del("k");
//   auto batch = s.put_batch({{"a", va}, {"b", vb}});   // one envelope
//   auto many = s.get_many({"a", "b"});                  // one envelope
//   fut.then([](const PutResult& r) { ... });
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "client/client.hpp"

namespace dataflasks::client {

/// Single-threaded future: a shared slot the Session's adapter callback
/// fills exactly once. Copyable (shares the slot); safe to outlive the
/// Session (completion callbacks hold the slot alive, not the Session).
template <typename T>
class Future {
 public:
  Future() : state_(std::make_shared<State>()) {}

  [[nodiscard]] bool ready() const { return state_->value.has_value(); }

  /// The completed value. ensure()-fails when not ready; check ready() or
  /// use then().
  [[nodiscard]] const T& value() const {
    ensure(state_->value.has_value(), "Future::value before completion");
    return *state_->value;
  }

  /// Chains a continuation: runs immediately if already completed, else on
  /// the runtime loop when the reply arrives.
  void then(std::function<void(const T&)> fn) {
    if (state_->value.has_value()) {
      fn(*state_->value);
      return;
    }
    state_->waiters.push_back(std::move(fn));
  }

  /// Completes the future (Session internal; exposed so custom adapters
  /// can bridge other callback APIs).
  void fulfill(T value) {
    ensure(!state_->value.has_value(), "Future fulfilled twice");
    state_->value = std::move(value);
    // Waiters may add more waiters; a plain index walk handles that.
    for (std::size_t i = 0; i < state_->waiters.size(); ++i) {
      auto fn = std::move(state_->waiters[i]);
      fn(*state_->value);
    }
    state_->waiters.clear();
  }

 private:
  struct State {
    std::optional<T> value;
    std::vector<std::function<void(const T&)>> waiters;
  };
  std::shared_ptr<State> state_;
};

/// Outcome of a homogeneous put batch.
struct BatchPutResult {
  std::size_t ok_count = 0;
  std::vector<PutResult> puts;  ///< submitted order
  [[nodiscard]] bool all_ok() const { return ok_count == puts.size(); }
};

class Session {
 public:
  explicit Session(Client& client) : client_(client) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Auto-stamped write (version from the client's per-key counter).
  Future<PutResult> put(Key key, Payload value);
  /// Explicitly versioned write (upper layers that order operations).
  Future<PutResult> put(Key key, Payload value, Version version);
  /// Auto-stamped write with a time-to-live: the object expires
  /// cluster-wide `ttl_ms` after the first replica stores it. Resolves
  /// with unsupported=true against a pre-v3 cluster (ttl_ms == 0 never
  /// does — it is a plain put).
  Future<PutResult> put_ttl(Key key, Payload value, std::uint32_t ttl_ms);

  Future<GetResult> get(Key key,
                        std::optional<Version> version = std::nullopt);

  /// Auto-stamped delete: replicas store a tombstone superseding every
  /// older version; the future resolves on the first replica ack.
  Future<DelResult> del(Key key);
  Future<DelResult> del(Key key, Version version);

  /// Conditional write: stores `value` only if the key's current version
  /// equals `expected` (0 = "create only"); the new version is stamped
  /// above `expected`. A failed precondition resolves with
  /// cas_failed=true and the key's actual current version — definitive,
  /// not a timeout. Fails cleanly (never resurrects) against a deleted key.
  Future<CasResult> cas(Key key, Version expected, Payload value);
  /// CAS with an explicit new version (must exceed `expected`).
  Future<CasResult> cas(Key key, Version expected, Version version,
                        Payload value);

  /// Admin: the contact node's stats snapshot (Prometheus text).
  Future<StatsResult> stats();

  /// Pipelined writes: every entry auto-stamped and packed into one
  /// OpEnvelope (one round-trip for the whole batch).
  Future<BatchPutResult> put_batch(
      std::vector<std::pair<Key, Payload>> entries);

  /// Pipelined reads: one envelope, results in key order. Keys that are
  /// deleted resolve with deleted=true; keys nobody holds time out as
  /// individual failures without blocking the rest of the batch.
  Future<std::vector<GetResult>> get_many(std::vector<Key> keys);

  /// Raw batch: mix puts, gets and deletes freely.
  Future<std::vector<OpResult>> execute(std::vector<core::Operation> ops);

  [[nodiscard]] Client& client() { return client_; }

 private:
  Client& client_;
};

}  // namespace dataflasks::client
