#include "client/session.hpp"

namespace dataflasks::client {

namespace {

PutResult to_put_result(const OpResult& r) {
  PutResult out;
  out.ok = r.ok;
  out.superseded = r.superseded;
  out.unsupported = r.unsupported;
  out.key = r.key;
  out.version = r.version;
  out.replica = r.replica;
  out.attempts = r.attempts;
  out.latency = r.latency;
  return out;
}

GetResult to_get_result(const OpResult& r) {
  GetResult out;
  out.ok = r.ok;
  out.deleted = r.deleted;
  out.object = r.object;
  out.replica = r.replica;
  out.attempts = r.attempts;
  out.latency = r.latency;
  return out;
}

}  // namespace

Future<PutResult> Session::put(Key key, Payload value) {
  Future<PutResult> future;
  client_.put_auto(std::move(key), std::move(value),
                   [future](const PutResult& r) mutable { future.fulfill(r); });
  return future;
}

Future<PutResult> Session::put(Key key, Payload value, Version version) {
  Future<PutResult> future;
  client_.put(std::move(key), std::move(value), version,
              [future](const PutResult& r) mutable { future.fulfill(r); });
  return future;
}

Future<PutResult> Session::put_ttl(Key key, Payload value,
                                   std::uint32_t ttl_ms) {
  Future<PutResult> future;
  const Version version = client_.stamp_version(key);
  client_.put(std::move(key), std::move(value), version, ttl_ms,
              [future](const PutResult& r) mutable { future.fulfill(r); });
  return future;
}

Future<GetResult> Session::get(Key key, std::optional<Version> version) {
  Future<GetResult> future;
  client_.get(std::move(key), version,
              [future](const GetResult& r) mutable { future.fulfill(r); });
  return future;
}

Future<DelResult> Session::del(Key key) {
  Future<DelResult> future;
  client_.del_auto(std::move(key),
                   [future](const DelResult& r) mutable { future.fulfill(r); });
  return future;
}

Future<DelResult> Session::del(Key key, Version version) {
  Future<DelResult> future;
  client_.del(std::move(key), version,
              [future](const DelResult& r) mutable { future.fulfill(r); });
  return future;
}

Future<CasResult> Session::cas(Key key, Version expected, Payload value) {
  Future<CasResult> future;
  client_.cas(std::move(key), expected, std::move(value),
              [future](const CasResult& r) mutable { future.fulfill(r); });
  return future;
}

Future<CasResult> Session::cas(Key key, Version expected, Version version,
                               Payload value) {
  Future<CasResult> future;
  client_.cas_at(std::move(key), expected, version, std::move(value),
                 [future](const CasResult& r) mutable { future.fulfill(r); });
  return future;
}

Future<StatsResult> Session::stats() {
  Future<StatsResult> future;
  client_.stats(
      [future](const StatsResult& r) mutable { future.fulfill(r); });
  return future;
}

Future<BatchPutResult> Session::put_batch(
    std::vector<std::pair<Key, Payload>> entries) {
  Future<BatchPutResult> future;
  if (entries.empty()) {  // empty batch: trivially complete, nothing to send
    future.fulfill(BatchPutResult{});
    return future;
  }
  std::vector<core::Operation> ops;
  ops.reserve(entries.size());
  for (auto& [key, value] : entries) {
    // Auto-stamp through the client's counter so batch writes and single
    // writes share one version sequence per key.
    const Version version = client_.stamp_version(key);
    ops.push_back(
        core::Operation::put(std::move(key), version, std::move(value)));
  }
  client_.execute(std::move(ops),
                  [future](const std::vector<OpResult>& results) mutable {
                    BatchPutResult out;
                    out.puts.reserve(results.size());
                    for (const OpResult& r : results) {
                      out.puts.push_back(to_put_result(r));
                      if (r.ok) ++out.ok_count;
                    }
                    future.fulfill(std::move(out));
                  });
  return future;
}

Future<std::vector<GetResult>> Session::get_many(std::vector<Key> keys) {
  Future<std::vector<GetResult>> future;
  if (keys.empty()) {
    future.fulfill({});
    return future;
  }
  std::vector<core::Operation> ops;
  ops.reserve(keys.size());
  for (Key& key : keys) {
    ops.push_back(core::Operation::get(std::move(key)));
  }
  client_.execute(std::move(ops),
                  [future](const std::vector<OpResult>& results) mutable {
                    std::vector<GetResult> out;
                    out.reserve(results.size());
                    for (const OpResult& r : results) {
                      out.push_back(to_get_result(r));
                    }
                    future.fulfill(std::move(out));
                  });
  return future;
}

Future<std::vector<OpResult>> Session::execute(
    std::vector<core::Operation> ops) {
  Future<std::vector<OpResult>> future;
  if (ops.empty()) {
    future.fulfill({});
    return future;
  }
  client_.execute(std::move(ops),
                  [future](const std::vector<OpResult>& results) mutable {
                    future.fulfill(results);
                  });
  return future;
}

}  // namespace dataflasks::client
