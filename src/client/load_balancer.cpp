#include "client/load_balancer.hpp"

#include "common/ensure.hpp"

namespace dataflasks::client {

RandomLoadBalancer::RandomLoadBalancer(std::vector<NodeId> nodes, Rng rng)
    : nodes_(std::move(nodes)), rng_(rng) {
  ensure(!nodes_.empty(), "RandomLoadBalancer: empty node list");
}

NodeId RandomLoadBalancer::pick_contact(std::optional<SliceId> /*slice*/) {
  return rng_.pick(nodes_);
}

SliceCacheLoadBalancer::SliceCacheLoadBalancer(std::vector<NodeId> nodes,
                                               Rng rng)
    : RandomLoadBalancer(std::move(nodes), rng) {}

NodeId SliceCacheLoadBalancer::pick_contact(std::optional<SliceId> slice) {
  if (slice) {
    const auto it = cache_.find(*slice);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  ++misses_;
  return RandomLoadBalancer::pick_contact(slice);
}

void SliceCacheLoadBalancer::observe_replica(NodeId node, SliceId slice) {
  cache_[slice] = node;
}

void SliceCacheLoadBalancer::node_unreachable(NodeId node) {
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second == node) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dataflasks::client
