#include "client/load_balancer.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace dataflasks::client {

RandomLoadBalancer::RandomLoadBalancer(std::vector<NodeId> nodes, Rng rng)
    : nodes_(std::move(nodes)), rng_(rng) {
  ensure(!nodes_.empty(), "RandomLoadBalancer: empty node list");
}

NodeId RandomLoadBalancer::pick_contact(std::optional<SliceId> /*slice*/,
                                        SimTime now) {
  // Retry a few draws to dodge contacts that recently timed out or shed us
  // for overload. The last draw is returned unconditionally: it bounds the
  // work and doubles as an occasional liveness probe, so a restarted (or
  // recovered) node re-admits itself even without success feedback.
  NodeId candidate = rng_.pick(nodes_);
  for (int redraw = 0;
       redraw < 8 &&
       (unreachable_.contains(candidate) || avoid_overloaded(candidate, now));
       ++redraw) {
    candidate = rng_.pick(nodes_);
  }
  return candidate;
}

bool RandomLoadBalancer::avoid_overloaded(NodeId node, SimTime now) {
  const auto it = overloaded_until_.find(node);
  if (it == overloaded_until_.end()) return false;
  if (now != 0 && now >= it->second) {
    overloaded_until_.erase(it);
    return false;
  }
  return true;
}

void RandomLoadBalancer::observe_replica(NodeId node, SliceId /*slice*/) {
  unreachable_.erase(node);
  overloaded_until_.erase(node);
}

void RandomLoadBalancer::node_unreachable(NodeId node) {
  // Bound: never blacklist more than half the population, or a partitioned
  // client would mark everyone unreachable and neuter the avoidance.
  if (unreachable_.size() >= std::max<std::size_t>(1, nodes_.size() / 2)) {
    unreachable_.clear();
  }
  unreachable_.insert(node);
}

void RandomLoadBalancer::node_overloaded(NodeId node, SimTime until) {
  // An overloaded node answered, so it is definitely reachable.
  unreachable_.erase(node);
  // Same half-population bound as node_unreachable: when the whole fleet is
  // saturated, avoidance cannot help and must not block every pick.
  if (overloaded_until_.size() >= std::max<std::size_t>(1, nodes_.size() / 2) &&
      !overloaded_until_.contains(node)) {
    overloaded_until_.clear();
  }
  SimTime& entry = overloaded_until_[node];
  entry = std::max(entry, until);
}

SliceCacheLoadBalancer::SliceCacheLoadBalancer(std::vector<NodeId> nodes,
                                               Rng rng)
    : RandomLoadBalancer(std::move(nodes), rng) {}

NodeId SliceCacheLoadBalancer::pick_contact(std::optional<SliceId> slice,
                                            SimTime now) {
  if (slice) {
    const auto it = cache_.find(*slice);
    // A cached replica under overload avoidance is skipped (not evicted:
    // it still holds the data and is re-used once the avoidance expires).
    if (it != cache_.end() && !avoid_overloaded(it->second, now)) {
      ++hits_;
      return it->second;
    }
  }
  ++misses_;
  return RandomLoadBalancer::pick_contact(slice, now);
}

void SliceCacheLoadBalancer::observe_replica(NodeId node, SliceId slice) {
  RandomLoadBalancer::observe_replica(node, slice);
  cache_[slice] = node;
}

void SliceCacheLoadBalancer::node_unreachable(NodeId node) {
  RandomLoadBalancer::node_unreachable(node);
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second == node) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dataflasks::client
