#include "client/load_balancer.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace dataflasks::client {

RandomLoadBalancer::RandomLoadBalancer(std::vector<NodeId> nodes, Rng rng)
    : nodes_(std::move(nodes)), rng_(rng) {
  ensure(!nodes_.empty(), "RandomLoadBalancer: empty node list");
}

NodeId RandomLoadBalancer::pick_contact(std::optional<SliceId> /*slice*/) {
  // Retry a few draws to dodge contacts that recently timed out. The last
  // draw is returned unconditionally: it bounds the work and doubles as an
  // occasional liveness probe, so a restarted node re-admits itself even
  // without success feedback.
  NodeId candidate = rng_.pick(nodes_);
  for (int redraw = 0; redraw < 8 && unreachable_.contains(candidate);
       ++redraw) {
    candidate = rng_.pick(nodes_);
  }
  return candidate;
}

void RandomLoadBalancer::observe_replica(NodeId node, SliceId /*slice*/) {
  unreachable_.erase(node);
}

void RandomLoadBalancer::node_unreachable(NodeId node) {
  // Bound: never blacklist more than half the population, or a partitioned
  // client would mark everyone unreachable and neuter the avoidance.
  if (unreachable_.size() >= std::max<std::size_t>(1, nodes_.size() / 2)) {
    unreachable_.clear();
  }
  unreachable_.insert(node);
}

SliceCacheLoadBalancer::SliceCacheLoadBalancer(std::vector<NodeId> nodes,
                                               Rng rng)
    : RandomLoadBalancer(std::move(nodes), rng) {}

NodeId SliceCacheLoadBalancer::pick_contact(std::optional<SliceId> slice) {
  if (slice) {
    const auto it = cache_.find(*slice);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  ++misses_;
  return RandomLoadBalancer::pick_contact(slice);
}

void SliceCacheLoadBalancer::observe_replica(NodeId node, SliceId slice) {
  RandomLoadBalancer::observe_replica(node, slice);
  cache_[slice] = node;
}

void SliceCacheLoadBalancer::node_unreachable(NodeId node) {
  RandomLoadBalancer::node_unreachable(node);
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second == node) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dataflasks::client
