#include "client/client.hpp"

#include <algorithm>

#include "slicing/slice_map.hpp"

namespace dataflasks::client {

namespace {

// Constant counter names (no per-op string assembly on the hot path; all
// under SSO size anyway).
const char* issued_counter(core::OpType type) {
  switch (type) {
    case core::OpType::kPut: return "client.puts";
    case core::OpType::kGet: return "client.gets";
    case core::OpType::kDelete: return "client.dels";
    case core::OpType::kCompareAndPut: return "client.cas";
    case core::OpType::kStats: return "client.stats";
  }
  return "client.ops";
}

const char* retries_counter(core::OpType type) {
  switch (type) {
    case core::OpType::kPut: return "client.put_retries";
    case core::OpType::kGet: return "client.get_retries";
    case core::OpType::kDelete: return "client.del_retries";
    case core::OpType::kCompareAndPut: return "client.cas_retries";
    case core::OpType::kStats: return "client.stats_retries";
  }
  return "client.op_retries";
}

const char* failures_counter(core::OpType type) {
  switch (type) {
    case core::OpType::kPut: return "client.put_failures";
    case core::OpType::kGet: return "client.get_failures";
    case core::OpType::kDelete: return "client.del_failures";
    case core::OpType::kCompareAndPut: return "client.cas_failures";
    case core::OpType::kStats: return "client.stats_failures";
  }
  return "client.op_failures";
}

const char* successes_counter(core::OpType type) {
  switch (type) {
    case core::OpType::kPut: return "client.put_successes";
    case core::OpType::kGet: return "client.get_successes";
    case core::OpType::kDelete: return "client.del_successes";
    case core::OpType::kCompareAndPut: return "client.cas_successes";
    case core::OpType::kStats: return "client.stats_successes";
  }
  return "client.op_successes";
}

}  // namespace

Client::Client(NodeId id, net::Transport& transport,
               runtime::Runtime& rt, LoadBalancer& balancer, Rng rng,
               ClientOptions options)
    : id_(id),
      transport_(transport),
      runtime_(rt),
      balancer_(balancer),
      rng_(rng),
      options_(options),
      active_protocol_(std::clamp(options.protocol_version,
                                  core::kOpProtocolMin,
                                  core::kOpProtocolVersion)) {
  transport_.register_handler(
      id_, [this](const net::Message& msg) { dispatch(msg); });
}

Client::~Client() {
  transport_.unregister_handler(id_);
  for (auto& [_, batch] : pending_) {
    batch.timer.cancel();
    batch.hedge_timer.cancel();
    batch.retry_timer.cancel();
  }
}

Version Client::stamp_version(const Key& key) {
  // Versions must be unique system-wide for a (key, value) pair: replicas
  // reject a version re-stamped with different bytes (the upper layer owns
  // ordering, paper §III). Counter in the high bits keeps per-client
  // monotonicity; the client id in the low 24 bits keeps concurrent
  // clients' stamps disjoint.
  return (++version_counters_[key] << 24) | (id_.value & 0xFFFFFF);
}

Version Client::stamp_version_above(const Key& key, Version floor) {
  // Lifting the counter to floor's counter part makes the next stamp's
  // counter strictly greater, so the stamp exceeds `floor` regardless of
  // which client id sits in the low bits.
  Version& counter = version_counters_[key];
  counter = std::max(counter, floor >> 24);
  return stamp_version(key);
}

std::optional<SliceId> Client::slice_hint(const PendingBatch& batch) const {
  if (options_.slice_count_hint == 0) return std::nullopt;
  // Hint by the first unresolved op: exact for single-op requests and for
  // batches that happen to target one slice; a plain guess otherwise (any
  // contact can fan a mixed batch out to its slices).
  for (std::size_t i = 0; i < batch.ops.size(); ++i) {
    if (!batch.resolved[i]) {
      return slicing::key_to_slice(batch.ops[i].key,
                                   options_.slice_count_hint);
    }
  }
  return std::nullopt;
}

void Client::execute(std::vector<core::Operation> ops, BatchCallback done) {
  ensure(!ops.empty(), "Client::execute on an empty batch");
  const std::uint64_t base_seq = next_seq_;
  next_seq_ += ops.size();

  PendingBatch batch;
  batch.base_seq = base_seq;
  batch.done = std::move(done);
  batch.started = runtime_.now();
  if (options_.op_deadline > 0) {
    batch.deadline = batch.started + options_.op_deadline;
  }
  batch.unresolved = ops.size();
  batch.resolved.assign(ops.size(), false);
  batch.results.resize(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    OpResult& result = batch.results[i];
    result.type = ops[i].type;
    result.key = ops[i].key;
    result.version = ops[i].version.value_or(0);
    batch.read_only =
        batch.read_only && ops[i].type == core::OpType::kGet;
    rid_index_.emplace(base_seq + i, base_seq);
    metrics_.counter(issued_counter(ops[i].type)).add();
  }
  batch.ops = std::move(ops);

  auto [it, inserted] = pending_.emplace(base_seq, std::move(batch));
  ensure(inserted, "duplicate batch base sequence");
  metrics_.counter("client.batches").add();
  send_batch(it->second);
}

std::vector<Payload> Client::encode_unresolved(
    const PendingBatch& batch) const {
  // A batch over the per-datagram budget goes out as several envelopes —
  // the UDP transport silently drops oversized frames, so the split must
  // happen here. Replies route by rid, so the batch bookkeeping does not
  // care how many datagrams carried it.
  // Envelope protocol: the negotiated version, lifted to whatever the
  // batch's ops require. Ops above the negotiated version still go out at
  // their own minimum — the server either serves them or answers with a
  // kVersionMismatch that fails them as unsupported; silently not sending
  // would turn "server can't do this" into a timeout.
  std::uint8_t protocol = active_protocol_;
  std::vector<core::RoutedOp> unresolved;
  for (std::size_t i = 0; i < batch.ops.size(); ++i) {
    if (batch.resolved[i]) continue;
    protocol = std::max(protocol, core::min_protocol_for(batch.ops[i]));
    unresolved.push_back(core::RoutedOp{
        RequestId{id_.value, batch.base_seq + i}, batch.ops[i]});
  }
  std::vector<Payload> encoded;
  core::chunk_by_budget(
      unresolved,
      [](const core::RoutedOp& routed) { return core::encoded_size(routed); },
      [&encoded, protocol](std::vector<core::RoutedOp>& chunk) {
        encoded.push_back(
            core::encode(core::OpEnvelope{protocol, std::move(chunk)}));
      });
  return encoded;
}

void Client::send_envelopes(const PendingBatch& batch, NodeId contact) {
  for (Payload& payload : encode_unresolved(batch)) {
    transport_.send(net::Message{id_, contact, core::kOpEnvelope,
                                 std::move(payload)});
    metrics_.counter("client.envelopes_sent").add();
  }
}

void Client::send_batch(PendingBatch& batch) {
  ++batch.attempts;
  batch.got_reply = false;
  batch.contact = balancer_.pick_contact(slice_hint(batch), runtime_.now());
  send_envelopes(batch, batch.contact);

  // The attempt timer never outlives the deadline: a request with 100ms of
  // budget left must resolve (one way or the other) within 100ms, not after
  // a full request_timeout.
  SimTime timeout = options_.request_timeout;
  if (batch.deadline > 0) {
    const SimTime now = runtime_.now();
    const SimTime remaining = batch.deadline > now ? batch.deadline - now : 1;
    timeout = std::min(timeout, remaining);
  }

  const std::uint64_t base_seq = batch.base_seq;
  batch.timer = runtime_.schedule_after(
      timeout, [this, base_seq]() { on_timeout(base_seq); });

  if (options_.get_hedge_delay > 0 && batch.read_only) {
    batch.hedge_timer = runtime_.schedule_after(
        options_.get_hedge_delay, [this, base_seq]() {
          const auto it = pending_.find(base_seq);
          if (it == pending_.end()) return;  // already answered
          // Second contact, same request ids: whichever replica answers
          // first wins and the duplicate replies are absorbed by rid dedup.
          const NodeId hedge_contact =
              balancer_.pick_contact(slice_hint(it->second), runtime_.now());
          send_envelopes(it->second, hedge_contact);
          metrics_.counter("client.get_hedges").add();
        });
  }
}

template <typename Mark>
void Client::fail_unresolved(PendingBatch& batch, const char* counter,
                             Mark mark) {
  for (std::size_t i = 0; i < batch.ops.size(); ++i) {
    if (batch.resolved[i]) continue;
    batch.resolved[i] = true;
    rid_index_.erase(batch.base_seq + i);
    OpResult& result = batch.results[i];
    result.ok = false;
    result.attempts = batch.attempts;
    result.latency = runtime_.now() - batch.started;
    mark(result);
    metrics_.counter(failures_counter(batch.ops[i].type)).add();
    if (counter != nullptr) metrics_.counter(counter).add();
  }
  batch.unresolved = 0;
  complete(batch);
}

void Client::on_timeout(std::uint64_t base_seq) {
  const auto it = pending_.find(base_seq);
  if (it == pending_.end()) return;  // completed meanwhile
  PendingBatch& batch = it->second;
  batch.hedge_timer.cancel();
  // Silence is the only evidence of a dead contact. A contact that answered
  // this attempt — even with a negative (version mismatch, overload shed) —
  // is alive; blacklisting it would punish honesty and steer the balancer
  // with noise.
  if (!batch.got_reply) balancer_.node_unreachable(batch.contact);
  const SimTime now = runtime_.now();
  if (batch.deadline > 0 && now >= batch.deadline) {
    fail_unresolved(batch, "client.ops_deadline_exceeded",
                    [](OpResult& r) { r.deadline_exceeded = true; });
    return;
  }
  if (batch.attempts < options_.max_attempts) {
    for (std::size_t i = 0; i < batch.ops.size(); ++i) {
      if (batch.resolved[i]) continue;
      metrics_.counter(retries_counter(batch.ops[i].type)).add();
    }
    send_batch(batch);
    return;
  }
  // Out of attempts: everything still unresolved fails.
  fail_unresolved(batch, nullptr, [](OpResult&) {});
}

void Client::handle_overloaded(NodeId from, const core::OverloadReply& shed) {
  if (shed.rid.client != id_.value) return;  // not ours (misroute)
  const auto idx_it = rid_index_.find(shed.rid.seq);
  if (idx_it == rid_index_.end()) {
    metrics_.counter("client.duplicate_replies").add();
    return;
  }
  const auto batch_it = pending_.find(idx_it->second);
  ensure(batch_it != pending_.end(), "rid index points at a dead batch");
  PendingBatch& batch = batch_it->second;
  metrics_.counter("client.overload_replies").add();
  batch.got_reply = true;

  const SimTime now = runtime_.now();
  // Route future picks around the hot node for the server-suggested window.
  const SimTime hint = SimTime{shed.retry_after_ms} * kMillis;
  balancer_.node_overloaded(from, now + std::max<SimTime>(hint, kMillis));

  // One backoff per attempt: a shed arrives per envelope chunk (and per
  // hedged contact), and one overload signal must not multiply retries.
  if (batch.retry_timer.active()) return;

  // Capped exponential backoff seeded by the server's retry-after hint,
  // jittered to 50–150% so a shed thundering herd does not re-arrive as a
  // synchronized wave.
  SimTime delay = batch.attempts < 20
                      ? options_.backoff_base << (batch.attempts - 1)
                      : options_.backoff_max;
  delay = std::clamp(std::max(delay, hint), SimTime{1}, options_.backoff_max);
  delay = delay / 2 + rng_.next_in(0, delay);

  const bool deadline_blown =
      batch.deadline > 0 && now + delay >= batch.deadline;
  if (batch.attempts >= options_.max_attempts || deadline_blown) {
    // The backoff wait cannot fit the budget: fail definitively now, as
    // overloaded — the caller learns to slow down instead of seeing an
    // indistinguishable timeout.
    batch.timer.cancel();
    batch.hedge_timer.cancel();
    fail_unresolved(batch, "client.ops_overloaded",
                    [](OpResult& r) { r.overloaded = true; });
    return;
  }

  batch.timer.cancel();
  batch.hedge_timer.cancel();
  const std::uint64_t base_seq = batch.base_seq;
  batch.retry_timer = runtime_.schedule_after(delay, [this, base_seq]() {
    const auto it = pending_.find(base_seq);
    if (it == pending_.end()) return;
    // Explicitly deactivate the handle: the alive flag is checked at fire
    // time, not flipped by it, and a stale-active handle would dedup away
    // every future shed for this batch.
    it->second.retry_timer.cancel();
    metrics_.counter("client.overload_retries").add();
    send_batch(it->second);
  });
}

void Client::handle_version_mismatch(const core::VersionMismatch& mismatch) {
  if (mismatch.rid.client != id_.value) return;  // not ours (misroute)
  const auto idx_it = rid_index_.find(mismatch.rid.seq);
  if (idx_it == rid_index_.end()) {
    metrics_.counter("client.duplicate_replies").add();
    return;
  }
  const auto batch_it = pending_.find(idx_it->second);
  ensure(batch_it != pending_.end(), "rid index points at a dead batch");
  PendingBatch& batch = batch_it->second;
  metrics_.counter("client.version_mismatches").add();
  batch.got_reply = true;

  // Adopt the server's version when we can speak it. Sticky across
  // requests: one mixed-version cluster member teaches us, the rest of the
  // session skips the extra round-trip.
  const std::uint8_t offered = mismatch.supported;
  const bool adoptable = offered >= core::kOpProtocolMin &&
                         offered <= core::kOpProtocolVersion;
  if (adoptable && active_protocol_ != offered) {
    active_protocol_ = offered;
    metrics_.counter("client.protocol_negotiations").add();
  }

  // Ops the negotiated protocol cannot express fail now — "this cluster
  // can't do that" is a definitive answer, not a timeout.
  for (std::size_t i = 0; i < batch.ops.size(); ++i) {
    if (batch.resolved[i]) continue;
    if (adoptable &&
        core::min_protocol_for(batch.ops[i]) <= active_protocol_) {
      continue;
    }
    batch.resolved[i] = true;
    rid_index_.erase(batch.base_seq + i);
    --batch.unresolved;
    OpResult& result = batch.results[i];
    result.ok = false;
    result.unsupported = true;
    result.attempts = batch.attempts;
    result.latency = runtime_.now() - batch.started;
    metrics_.counter("client.ops_unsupported").add();
  }
  if (batch.unresolved == 0) {
    complete(batch);
    return;
  }
  // Re-send the remainder at the adopted version, to the same contact,
  // without burning a retry attempt — the server answered; it is not
  // unreachable. Guarded per version: a mismatch reply arrives per
  // envelope chunk, and one renegotiation must not multiply resends.
  if (batch.negotiated != active_protocol_) {
    batch.negotiated = active_protocol_;
    send_envelopes(batch, batch.contact);
  }
}

void Client::complete(PendingBatch& batch) {
  batch.timer.cancel();
  batch.hedge_timer.cancel();
  batch.retry_timer.cancel();
  auto done = std::move(batch.done);
  auto results = std::move(batch.results);
  pending_.erase(batch.base_seq);
  if (done) done(results);
}

void Client::dispatch(const net::Message& msg) {
  if (msg.type == core::kVersionMismatch) {
    const auto mismatch = core::decode_version_mismatch(msg.payload);
    if (mismatch) handle_version_mismatch(*mismatch);
    return;
  }
  if (msg.type == core::kOverloaded) {
    const auto shed = core::decode_overload_reply(msg.payload);
    if (shed) handle_overloaded(msg.src, *shed);
    return;
  }
  if (msg.type != core::kOpReplyBatch) {
    metrics_.counter("client.unhandled_messages").add();
    return;
  }
  const auto reply_batch = core::decode_op_reply_batch(msg.payload);
  if (!reply_batch) return;

  for (const core::OpReply& reply : reply_batch->replies) {
    if (reply.rid.client != id_.value) continue;  // not ours (misroute)
    const auto idx_it = rid_index_.find(reply.rid.seq);
    if (idx_it == rid_index_.end()) {
      // Duplicate reply for an already-resolved op: the epidemic normal
      // case the client library exists to absorb (paper §V).
      metrics_.counter("client.duplicate_replies").add();
      continue;
    }
    const auto batch_it = pending_.find(idx_it->second);
    ensure(batch_it != pending_.end(), "rid index points at a dead batch");
    PendingBatch& batch = batch_it->second;
    const std::size_t index =
        static_cast<std::size_t>(reply.rid.seq - batch.base_seq);
    ensure(index < batch.ops.size(), "reply seq outside its batch");

    balancer_.observe_replica(reply_batch->replica, reply_batch->slice);
    batch.got_reply = true;
    batch.resolved[index] = true;
    rid_index_.erase(idx_it);
    --batch.unresolved;

    OpResult& result = batch.results[index];
    result.attempts = batch.attempts;
    result.latency = runtime_.now() - batch.started;
    result.replica = reply_batch->replica;
    switch (reply.status) {
      case core::OpStatus::kOk:
        result.ok = true;
        result.version = reply.object.version;
        // Gets carry the stored object; stats carry the snapshot text in
        // the object's value.
        if (reply.type == core::OpType::kGet ||
            reply.type == core::OpType::kStats) {
          result.object = reply.object;
        }
        metrics_.counter(successes_counter(reply.type)).add();
        break;
      case core::OpStatus::kDeleted:
        // Authoritative miss: a replica holds the key's tombstone. The op
        // completes now (ok = false) instead of timing out. The reply
        // object carries the tombstone's key/version (empty value).
        result.ok = false;
        result.deleted = true;
        result.version = reply.object.version;
        result.object = reply.object;
        metrics_.counter("client.gets_deleted").add();
        break;
      case core::OpStatus::kSuperseded:
        // Definitive rejection: the key's tombstone outranks this write's
        // version; the store discarded it.
        result.ok = false;
        result.superseded = true;
        result.version = reply.object.version;
        metrics_.counter("client.puts_superseded").add();
        break;
      case core::OpStatus::kCasFailed:
        // Definitive precondition failure: `version` is the key's actual
        // current version (the tombstone's when the key is deleted), so
        // the caller can re-read and decide instead of retrying blind.
        result.ok = false;
        result.cas_failed = true;
        result.version = reply.object.version;
        metrics_.counter("client.cas_precondition_failures").add();
        break;
      case core::OpStatus::kOverloaded:
        // Per-op refusal under admission control (whole-envelope shedding
        // uses the cheaper kOverloaded frame, which retries with backoff;
        // a per-op status inside an otherwise-served batch is definitive).
        result.ok = false;
        result.overloaded = true;
        metrics_.counter("client.ops_overloaded").add();
        break;
    }
    if (batch.unresolved == 0) {
      complete(batch);
      // `batch` is gone; later replies in this message hit the duplicate
      // path above.
    }
  }
}

// ---- single-op convenience surface ------------------------------------------

void Client::put(Key key, Payload value, Version version, PutCallback done) {
  put(std::move(key), std::move(value), version, /*ttl_ms=*/0,
      std::move(done));
}

void Client::put(Key key, Payload value, Version version,
                 std::uint32_t ttl_ms, PutCallback done) {
  execute({core::Operation::put(std::move(key), version, std::move(value),
                                ttl_ms)},
          [done = std::move(done)](const std::vector<OpResult>& results) {
            if (!done) return;
            const OpResult& r = results.front();
            PutResult out;
            out.ok = r.ok;
            out.superseded = r.superseded;
            out.unsupported = r.unsupported;
            out.key = r.key;
            out.version = r.version;
            out.replica = r.replica;
            out.attempts = r.attempts;
            out.latency = r.latency;
            done(out);
          });
}

Version Client::put_auto(Key key, Payload value, PutCallback done) {
  const Version version = stamp_version(key);
  put(std::move(key), std::move(value), version, std::move(done));
  return version;
}

void Client::get(Key key, std::optional<Version> version, GetCallback done) {
  execute({core::Operation::get(std::move(key), version)},
          [done = std::move(done)](const std::vector<OpResult>& results) {
            if (!done) return;
            const OpResult& r = results.front();
            GetResult out;
            out.ok = r.ok;
            out.deleted = r.deleted;
            out.object = r.object;
            out.replica = r.replica;
            out.attempts = r.attempts;
            out.latency = r.latency;
            done(out);
          });
}

void Client::del(Key key, Version version, DelCallback done) {
  execute({core::Operation::del(std::move(key), version)},
          [done = std::move(done)](const std::vector<OpResult>& results) {
            if (!done) return;
            const OpResult& r = results.front();
            DelResult out;
            out.ok = r.ok;
            out.key = r.key;
            out.version = r.version;
            out.replica = r.replica;
            out.attempts = r.attempts;
            out.latency = r.latency;
            done(out);
          });
}

Version Client::del_auto(Key key, DelCallback done) {
  // Stamped from the same per-key counter as put_auto, so the tombstone
  // supersedes every version this client has written.
  const Version version = stamp_version(key);
  del(std::move(key), version, std::move(done));
  return version;
}

Version Client::cas(Key key, Version expected, Payload value,
                    CasCallback done) {
  // Stamp above `expected`, not just above this client's counter: the
  // expected version usually came from a get of another client's write.
  const Version version = stamp_version_above(key, expected);
  cas_at(std::move(key), expected, version, std::move(value),
         std::move(done));
  return version;
}

void Client::cas_at(Key key, Version expected, Version version, Payload value,
                    CasCallback done) {
  execute({core::Operation::cas(std::move(key), expected, version,
                                std::move(value))},
          [done = std::move(done)](const std::vector<OpResult>& results) {
            if (!done) return;
            const OpResult& r = results.front();
            CasResult out;
            out.ok = r.ok;
            out.cas_failed = r.cas_failed;
            out.unsupported = r.unsupported;
            out.key = r.key;
            out.version = r.version;
            out.replica = r.replica;
            out.attempts = r.attempts;
            out.latency = r.latency;
            done(out);
          });
}

void Client::stats(StatsCallback done) {
  execute({core::Operation::stats()},
          [done = std::move(done)](const std::vector<OpResult>& results) {
            if (!done) return;
            const OpResult& r = results.front();
            StatsResult out;
            out.ok = r.ok;
            out.unsupported = r.unsupported;
            const ByteView view = r.object.value.view();
            if (view.len > 0) {
              out.text.assign(reinterpret_cast<const char*>(view.ptr),
                              view.len);
            }
            out.replica = r.replica;
            out.attempts = r.attempts;
            out.latency = r.latency;
            done(out);
          });
}

}  // namespace dataflasks::client
