#include "client/client.hpp"

#include "slicing/slice_map.hpp"

namespace dataflasks::client {

Client::Client(NodeId id, net::Transport& transport,
               runtime::Runtime& rt, LoadBalancer& balancer, Rng rng,
               ClientOptions options)
    : id_(id),
      transport_(transport),
      runtime_(rt),
      balancer_(balancer),
      rng_(rng),
      options_(options) {
  transport_.register_handler(
      id_, [this](const net::Message& msg) { dispatch(msg); });
}

Client::~Client() {
  transport_.unregister_handler(id_);
  for (auto& [_, pending] : pending_puts_) pending.timer.cancel();
  for (auto& [_, pending] : pending_gets_) {
    pending.timer.cancel();
    pending.hedge_timer.cancel();
  }
}

RequestId Client::next_request_id() {
  return RequestId{id_.value, next_seq_++};
}

std::optional<SliceId> Client::slice_of(const Key& key) const {
  if (options_.slice_count_hint == 0) return std::nullopt;
  return slicing::key_to_slice(key, options_.slice_count_hint);
}

void Client::put(Key key, Payload value, Version version, PutCallback done) {
  const RequestId rid = next_request_id();
  PendingPut pending;
  pending.request =
      core::PutRequest{rid, id_, store::Object{std::move(key),
                                               version, std::move(value)}};
  pending.done = std::move(done);
  pending.started = runtime_.now();
  auto [it, inserted] = pending_puts_.emplace(rid, std::move(pending));
  ensure(inserted, "duplicate put request id");
  metrics_.counter("client.puts").add();
  send_put(it->second);
}

Version Client::put_auto(Key key, Payload value, PutCallback done) {
  // Versions must be unique system-wide for a (key, value) pair: replicas
  // reject a version re-stamped with different bytes (the upper layer owns
  // ordering, paper §III). Counter in the high bits keeps per-client
  // monotonicity; the client id in the low 24 bits keeps concurrent
  // clients' stamps disjoint.
  const Version version =
      (++version_counters_[key] << 24) | (id_.value & 0xFFFFFF);
  put(std::move(key), std::move(value), version, std::move(done));
  return version;
}

void Client::get(Key key, std::optional<Version> version, GetCallback done) {
  const RequestId rid = next_request_id();
  PendingGet pending;
  pending.request = core::GetRequest{rid, id_, std::move(key), version};
  pending.done = std::move(done);
  pending.started = runtime_.now();
  auto [it, inserted] = pending_gets_.emplace(rid, std::move(pending));
  ensure(inserted, "duplicate get request id");
  metrics_.counter("client.gets").add();
  send_get(it->second);
}

void Client::send_put(PendingPut& pending) {
  ++pending.attempts;
  pending.contact =
      balancer_.pick_contact(slice_of(pending.request.object.key));
  transport_.send(net::Message{id_, pending.contact, core::kClientPut,
                               core::encode_inner(pending.request)});
  const RequestId rid = pending.request.rid;
  pending.timer = runtime_.schedule_after(
      options_.request_timeout, [this, rid]() { on_put_timeout(rid); });
}

void Client::send_get(PendingGet& pending) {
  ++pending.attempts;
  pending.contact = balancer_.pick_contact(slice_of(pending.request.key));
  transport_.send(net::Message{id_, pending.contact, core::kClientGet,
                               core::encode_inner(pending.request)});
  const RequestId rid = pending.request.rid;
  pending.timer = runtime_.schedule_after(
      options_.request_timeout, [this, rid]() { on_get_timeout(rid); });

  if (options_.get_hedge_delay > 0) {
    pending.hedge_timer = runtime_.schedule_after(
        options_.get_hedge_delay, [this, rid]() {
          const auto it = pending_gets_.find(rid);
          if (it == pending_gets_.end()) return;  // already answered
          // Second contact, same request id: whichever replica answers
          // first wins and the duplicate reply is absorbed by rid dedup.
          const NodeId hedge_contact =
              balancer_.pick_contact(slice_of(it->second.request.key));
          transport_.send(
              net::Message{id_, hedge_contact, core::kClientGet,
                           core::encode_inner(it->second.request)});
          metrics_.counter("client.get_hedges").add();
        });
  }
}

void Client::on_put_timeout(RequestId rid) {
  const auto it = pending_puts_.find(rid);
  if (it == pending_puts_.end()) return;  // completed meanwhile
  PendingPut& pending = it->second;
  balancer_.node_unreachable(pending.contact);
  if (pending.attempts < options_.max_attempts) {
    metrics_.counter("client.put_retries").add();
    send_put(pending);
    return;
  }
  metrics_.counter("client.put_failures").add();
  PutResult result;
  result.ok = false;
  result.key = pending.request.object.key;
  result.version = pending.request.object.version;
  result.attempts = pending.attempts;
  result.latency = runtime_.now() - pending.started;
  auto done = std::move(pending.done);
  pending_puts_.erase(it);
  if (done) done(result);
}

void Client::on_get_timeout(RequestId rid) {
  const auto it = pending_gets_.find(rid);
  if (it == pending_gets_.end()) return;
  PendingGet& pending = it->second;
  pending.hedge_timer.cancel();
  balancer_.node_unreachable(pending.contact);
  if (pending.attempts < options_.max_attempts) {
    metrics_.counter("client.get_retries").add();
    send_get(pending);
    return;
  }
  metrics_.counter("client.get_failures").add();
  GetResult result;
  result.ok = false;
  result.attempts = pending.attempts;
  result.latency = runtime_.now() - pending.started;
  auto done = std::move(pending.done);
  pending_gets_.erase(it);
  if (done) done(result);
}

void Client::dispatch(const net::Message& msg) {
  switch (msg.type) {
    case core::kPutAck: {
      const auto ack = core::decode_put_ack(msg.payload);
      if (!ack) return;
      const auto it = pending_puts_.find(ack->rid);
      if (it == pending_puts_.end()) {
        // Duplicate ack for an already-completed request: the epidemic
        // normal case the client library exists to absorb (paper §V).
        metrics_.counter("client.duplicate_acks").add();
        return;
      }
      balancer_.observe_replica(ack->replica, ack->slice);
      PendingPut& pending = it->second;
      pending.timer.cancel();
      PutResult result;
      result.ok = true;
      result.key = ack->key;
      result.version = ack->version;
      result.replica = ack->replica;
      result.attempts = pending.attempts;
      result.latency = runtime_.now() - pending.started;
      auto done = std::move(pending.done);
      pending_puts_.erase(it);
      metrics_.counter("client.put_successes").add();
      if (done) done(result);
      return;
    }
    case core::kGetReply: {
      const auto reply = core::decode_get_reply(msg.payload);
      if (!reply) return;
      const auto it = pending_gets_.find(reply->rid);
      if (it == pending_gets_.end()) {
        metrics_.counter("client.duplicate_replies").add();
        return;
      }
      if (!reply->found) return;  // authoritative misses don't complete; wait
      balancer_.observe_replica(reply->replica, reply->slice);
      PendingGet& pending = it->second;
      pending.timer.cancel();
      pending.hedge_timer.cancel();
      GetResult result;
      result.ok = true;
      result.object = reply->object;
      result.replica = reply->replica;
      result.attempts = pending.attempts;
      result.latency = runtime_.now() - pending.started;
      auto done = std::move(pending.done);
      pending_gets_.erase(it);
      metrics_.counter("client.get_successes").add();
      if (done) done(result);
      return;
    }
    default:
      metrics_.counter("client.unhandled_messages").add();
  }
}

}  // namespace dataflasks::client
