// Runtime abstraction: the execution surface every protocol component
// schedules against — a clock, one-shot and periodic timers, and a master
// RNG to fork per-component streams from. Exactly the surface the
// discrete-event Simulator always exposed, now split out so the same
// unmodified protocol code runs either over virtual time (sim::Simulator,
// thousands of nodes in one process) or over the wall clock
// (runtime::RealTimeRuntime, one real process per node on a UDP transport).
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/unique_function.hpp"

namespace dataflasks::runtime {

/// Read-only clock interface handed to protocol components so they can
/// timestamp without being able to schedule arbitrary events.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since runtime start (virtual time in the simulator,
  /// steady-clock wall time in the real runtime).
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Microseconds on a clock that is comparable ACROSS processes: Unix
  /// epoch time in the real runtime, virtual time in the simulator (where
  /// every node shares one clock anyway). TTL deadlines and other stamps
  /// that replicate between nodes must use this, never now() — now() is
  /// time-since-*this*-process-start, which differs per process. Same
  /// loosely-synchronized-clocks caveat as tombstone deletion stamps.
  [[nodiscard]] virtual SimTime wall_now() const { return now(); }
};

/// Cancellable handle for a scheduled event. Destroying the handle does NOT
/// cancel (fire-and-forget is the common case); call cancel() explicitly.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Wraps a shared liveness flag; runtimes check it at fire time.
  explicit TimerHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}

  void cancel() {
    if (alive_) *alive_ = false;
  }
  [[nodiscard]] bool active() const { return alive_ && *alive_; }

 private:
  std::shared_ptr<bool> alive_;
};

class Runtime : public Clock {
 public:
  /// Master RNG; components should fork() their own streams from it.
  [[nodiscard]] virtual Rng& rng() = 0;

  /// Schedules `fn` to run at absolute time `at`. A time not in the future
  /// fires as soon as the runtime regains control.
  virtual TimerHandle schedule_at(SimTime at, UniqueFunction fn) = 0;

  /// Schedules `fn` after a relative delay (>= 0).
  TimerHandle schedule_after(SimTime delay, UniqueFunction fn);

  /// Fire-and-forget variants: no cancellation handle, so no cancellation
  /// flag is allocated. The hot path for in-flight messages — a small
  /// closure goes straight into the event-queue slot, allocation-free.
  virtual void post_at(SimTime at, UniqueFunction fn) = 0;
  void post_after(SimTime delay, UniqueFunction fn);

  /// Schedules `fn` every `period` starting at now + initial_delay, until
  /// the returned handle is cancelled. Implemented generically on top of
  /// post_after, so every runtime shares the same re-arming discipline.
  TimerHandle schedule_periodic(SimTime initial_delay, SimTime period,
                                UniqueFunction fn);

  /// The cross-shard door: enqueues `fn` to run on this runtime's thread,
  /// callable from ANY thread. Every other method on this interface is
  /// owner-thread-only. The default forwards to post_at(now()) — correct
  /// for single-threaded runtimes (the simulator); RealTimeRuntime
  /// overrides it with a lock-free mailbox plus an eventfd wake-up.
  virtual void post_from_any_thread(UniqueFunction fn) {
    post_at(now(), std::move(fn));
  }
};

}  // namespace dataflasks::runtime
