// Lock-free cross-shard mailbox: the only channel work may travel between
// runtime shards in the shared-nothing server.
//
// Shape: an intrusive MPSC queue (Vyukov's non-blocking variant). Any thread
// pushes a heap-allocated node holding a move-only closure with one atomic
// exchange; the single consumer — the owning shard's poll loop — drains with
// plain loads plus one consume-side atomic per node. No locks, no CAS loops
// on the producer side, no ABA (nodes are only reused after the consumer has
// fully detached them).
//
// The closure type is the same `UniqueFunction` the event queue runs, so a
// drained mailbox entry executes exactly like a locally posted event: code
// that runs on a shard never observes whether it was scheduled locally or
// mailed from another thread.
//
// Progress note: a producer that is preempted between the exchange and the
// `next` store leaves the chain momentarily broken; the consumer then stops
// early and retries on the next drain. `pop_all` therefore returns what is
// reachable, not necessarily everything exchanged — the eventfd wake-up the
// runtime pairs with this queue guarantees another drain follows.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/unique_function.hpp"

namespace dataflasks::runtime {

class Mailbox {
 public:
  Mailbox() : head_(&stub_), tail_(&stub_) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  ~Mailbox() {
    // Single-threaded by the time a runtime is destroyed: drop whatever
    // closures were never drained (their captures release normally).
    Node* node = tail_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      if (node != &stub_) delete node;
      node = next;
    }
  }

  /// Enqueues `fn` from any thread. Wait-free: one allocation plus one
  /// atomic exchange. Callers pair every push with a wake-up signal; the
  /// queue deliberately offers no "was empty" answer, because producing one
  /// would require producers to peek at consumer-owned state.
  void push(UniqueFunction fn) { push_node(new Node(std::move(fn))); }

  /// Drains every reachable entry into the consumer's care, invoking
  /// `consume` on each closure in FIFO order. Single-consumer only.
  /// Returns the number of closures run.
  template <typename Consume>
  std::size_t drain(Consume&& consume) {
    std::size_t drained = 0;
    while (Node* node = pop()) {
      UniqueFunction fn = std::move(node->fn);
      if (node != &stub_) delete node;
      consume(std::move(fn));
      ++drained;
    }
    return drained;
  }

  /// True when a producer has published at least one reachable entry.
  /// Consumer-side heuristic (used to size poll timeouts), not a guarantee.
  [[nodiscard]] bool likely_nonempty() const {
    Node* tail = tail_;
    return tail->next.load(std::memory_order_acquire) != nullptr ||
           tail != head_.load(std::memory_order_acquire);
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(UniqueFunction f) : fn(std::move(f)) {}
    std::atomic<Node*> next{nullptr};
    UniqueFunction fn;
  };

  void push_node(Node* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    // The exchange makes this node the new head; linking the predecessor is
    // the second, momentarily-lagging store the consumer tolerates.
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Single-consumer pop of the oldest reachable node; nullptr when empty
  /// (or when a producer's link store is still in flight — see file header).
  Node* pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) return nullptr;  // empty (or link in flight)
      tail_ = next;  // skip the stub; it is re-pushed when drained dry
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    // `tail` is the last linked node. If a push has raced past it, its link
    // store is in flight; report empty and let the wake-up retry. Otherwise
    // recycle the stub so the final node becomes poppable.
    if (tail != head_.load(std::memory_order_acquire)) return nullptr;
    push_node(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return nullptr;
    tail_ = next;
    return tail;
  }

  std::atomic<Node*> head_;  ///< producers exchange onto this end
  Node* tail_;               ///< consumer-owned: oldest undrained node
  Node stub_;                ///< sentinel so producers never see nullptr
};

}  // namespace dataflasks::runtime
