// Real-clock Runtime: the deployment counterpart of sim::Simulator. Runs the
// same EventQueue of UniqueFunction timers, but `now()` is the monotonic
// wall clock and the loop sleeps in poll(2) until the next timer is due or a
// watched file descriptor becomes readable (the UDP transport's socket).
//
// Single-threaded by design, like the simulator: every timer and I/O
// callback runs on the thread inside run()/run_until(), so protocol code
// needs no locking in either runtime. Two cross-thread entry points exist:
// stop() (atomic flag + wake signal; also async-signal-safe) and
// post_from_any_thread() (lock-free mailbox + wake signal) — the door the
// sharded server's cross-shard traffic travels through. The wake signal is
// an eventfd (self-pipe elsewhere) watched by the poll loop, so a sleeping
// shard reacts to mailed work immediately instead of at the idle-poll cap.
#pragma once

#include <poll.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "common/rng.hpp"
#include "common/unique_function.hpp"
#include "runtime/event_queue.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/runtime.hpp"

namespace dataflasks::runtime {

class RealTimeRuntime final : public Runtime {
 public:
  using FdHandler = MoveOnlyFunction<void()>;

  explicit RealTimeRuntime(std::uint64_t seed);
  ~RealTimeRuntime() override;

  /// Microseconds of steady-clock time since construction. Monotonic, so
  /// SimTime arithmetic written against the simulator behaves identically.
  [[nodiscard]] SimTime now() const override;

  /// Microseconds since the Unix epoch: comparable across processes, for
  /// stamps that replicate (TTL deadlines). Not monotonic under NTP steps.
  [[nodiscard]] SimTime wall_now() const override;

  [[nodiscard]] Rng& rng() override { return rng_; }

  TimerHandle schedule_at(SimTime at, UniqueFunction fn) override;
  void post_at(SimTime at, UniqueFunction fn) override;

  /// Cross-thread work submission: pushes `fn` onto the lock-free mailbox
  /// and wakes the poll loop. The closure runs on this runtime's thread,
  /// interleaved with timers exactly like a locally posted event. Safe from
  /// any thread, including while run() is sleeping in poll(2).
  void post_from_any_thread(UniqueFunction fn) override;

  /// Watches `fd` for readability; `on_readable` runs on the loop thread
  /// every time poll reports POLLIN/POLLERR/POLLHUP. Level-triggered: the
  /// handler must drain the descriptor. Replaces any previous handler.
  void watch_fd(int fd, FdHandler on_readable);
  void unwatch_fd(int fd);

  /// Watches `fd` for writability; `on_writable` runs on the loop thread
  /// every time poll reports POLLOUT/POLLERR/POLLHUP. Level-triggered, so
  /// callers unwatch once their egress queue drains (or the nonblocking
  /// connect resolves) — a permanently-writable socket would otherwise spin
  /// the loop. Independent of the read watch on the same fd: an fd may hold
  /// one of each. Replaces any previous writable handler.
  void watch_fd_writable(int fd, FdHandler on_writable);
  void unwatch_fd_writable(int fd);

  /// Runs timers and I/O until stop() is called. Returns events executed
  /// (timer firings + I/O handler invocations).
  std::uint64_t run();

  /// Runs until the wall clock reaches `deadline` (in now() coordinates) or
  /// stop() is called, whichever is first.
  std::uint64_t run_until(SimTime deadline);

  /// Convenience: run_until(now() + duration).
  std::uint64_t run_for(SimTime duration);

  /// Makes run()/run_until() return after the current callback completes.
  /// Async-signal-safe and callable from other threads; the wake signal
  /// means a shard sleeping in poll(2) stops promptly, not at the idle cap.
  void stop();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  /// User-watched descriptors (the internal wake descriptor is excluded).
  [[nodiscard]] std::size_t watched_fds() const { return fds_.size() - 1; }
  /// Closures executed off the cross-thread mailbox (tests/metrics).
  [[nodiscard]] std::uint64_t mailbox_drained() const {
    return mailbox_drained_.load(std::memory_order_relaxed);
  }

 private:
  struct Watch {
    int fd;
    FdHandler handler;
  };

  /// Watch-list mutation requested from inside an fd handler: applied after
  /// the dispatch loop so the executing closure is never reallocated or
  /// destroyed out from under itself.
  struct DeferredOp {
    enum Kind { kWatchRead, kUnwatchRead, kWatchWrite, kUnwatchWrite };
    Kind kind;
    int fd;
    FdHandler handler;
  };

  /// Sleeps in poll(2) for at most `timeout` and dispatches ready fds.
  /// Returns the number of handler invocations.
  std::uint64_t poll_io(SimTime timeout);

  /// True when a deferred op leaves (fd, direction) unwatched, so a handler
  /// that unwatched a peer mid-round is not invoked for it afterwards.
  [[nodiscard]] bool deferred_removes(int fd, bool writable) const;
  void apply_deferred();

  /// Writes one token to the wake descriptor (async-signal-safe).
  void signal_wake();
  /// Drains the wake descriptor and runs every mailed closure. Returns the
  /// number of closures executed.
  std::uint64_t drain_mailbox();

  /// Caps idle sleeps so a cross-thread stop() is honoured promptly even
  /// when no timer is due and no fd turns readable.
  static constexpr SimTime kMaxPollWait = 50 * kMillis;

  std::chrono::steady_clock::time_point origin_;
  EventQueue queue_;
  Rng rng_;
  std::vector<Watch> fds_;
  /// Writable watches, disjoint from fds_: stream connections add one while
  /// a nonblocking connect is in flight or their egress queue is non-empty,
  /// and remove it the moment the socket drains.
  std::vector<Watch> write_fds_;
  /// poll(2) argument array, rebuilt lazily after watch/unwatch — the loop
  /// itself stays allocation-free per wakeup (the watch set is effectively
  /// static: one socket per transport).
  std::vector<pollfd> pollfds_;
  bool pollfds_stale_ = true;
  /// (fd, revents) pairs collected before dispatch; handlers may mutate the
  /// watch lists, so iteration never touches pollfds_/fds_ directly.
  std::vector<pollfd> ready_scratch_;
  bool dispatching_ = false;
  std::vector<DeferredOp> deferred_;
  std::atomic<bool> stop_{false};

  // Cross-thread wake-up plumbing: wake_rx_ is watched by the poll loop;
  // wake_tx_ is what producers (and stop()) write to. With eventfd both are
  // the same descriptor; the pipe fallback uses two.
  Mailbox mailbox_;
  int wake_rx_ = -1;
  int wake_tx_ = -1;
  std::atomic<std::uint64_t> mailbox_drained_{0};
};

}  // namespace dataflasks::runtime
