#include "runtime/runtime.hpp"

#include <utility>

#include "common/ensure.hpp"

namespace dataflasks::runtime {

TimerHandle Runtime::schedule_after(SimTime delay, UniqueFunction fn) {
  ensure(delay >= 0, "Runtime::schedule_after negative delay");
  return schedule_at(now() + delay, std::move(fn));
}

void Runtime::post_after(SimTime delay, UniqueFunction fn) {
  ensure(delay >= 0, "Runtime::post_after negative delay");
  post_at(now() + delay, std::move(fn));
}

TimerHandle Runtime::schedule_periodic(SimTime initial_delay, SimTime period,
                                       UniqueFunction fn) {
  ensure(period > 0, "Runtime::schedule_periodic non-positive period");
  auto alive = std::make_shared<bool>(true);

  // Each firing re-schedules the next occurrence while the handle is alive.
  // The tick callable holds only a weak reference to itself — the strong
  // references live in the queued events — so cancelled/drained timers are
  // reclaimed instead of leaking through a shared_ptr cycle. The per-firing
  // closure is a single shared_ptr, which lives inline in the queue slot.
  auto tick = std::make_shared<UniqueFunction>();
  std::weak_ptr<UniqueFunction> weak_tick = tick;
  *tick = [this, alive, period, fn = std::move(fn), weak_tick]() mutable {
    if (!*alive) return;
    fn();
    if (*alive) {
      if (auto next = weak_tick.lock()) {
        post_after(period, [next]() { (*next)(); });
      }
    }
  };
  post_after(initial_delay, [tick]() { (*tick)(); });
  return TimerHandle(std::move(alive));
}

}  // namespace dataflasks::runtime
