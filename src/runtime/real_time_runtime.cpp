#include "runtime/real_time_runtime.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <limits>
#include <utility>

#if defined(__linux__)
#include <sys/eventfd.h>
#endif

#include "common/ensure.hpp"

namespace dataflasks::runtime {

RealTimeRuntime::RealTimeRuntime(std::uint64_t seed)
    : origin_(std::chrono::steady_clock::now()), rng_(seed) {
#if defined(__linux__)
  wake_rx_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  ensure(wake_rx_ >= 0, "RealTimeRuntime: eventfd failed");
  wake_tx_ = wake_rx_;
#else
  int fds[2];
  ensure(::pipe(fds) == 0, "RealTimeRuntime: pipe failed");
  for (int fd : fds) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  wake_rx_ = fds[0];
  wake_tx_ = fds[1];
#endif
  // The wake descriptor rides the ordinary watch list: readable means
  // "mailed work (or a stop) is pending", and the handler drains both the
  // descriptor and the mailbox on the loop thread.
  watch_fd(wake_rx_, [this] { drain_mailbox(); });
}

RealTimeRuntime::~RealTimeRuntime() {
  if (wake_tx_ >= 0 && wake_tx_ != wake_rx_) ::close(wake_tx_);
  if (wake_rx_ >= 0) ::close(wake_rx_);
}

SimTime RealTimeRuntime::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

SimTime RealTimeRuntime::wall_now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

TimerHandle RealTimeRuntime::schedule_at(SimTime at, UniqueFunction fn) {
  // Unlike the simulator there is no "scheduling in the past" invariant:
  // wall time advances between the caller reading now() and us enqueueing,
  // so an overdue event simply fires on the next loop iteration.
  auto alive = std::make_shared<bool>(true);
  queue_.push(at, std::move(fn), alive);
  return TimerHandle(std::move(alive));
}

void RealTimeRuntime::post_at(SimTime at, UniqueFunction fn) {
  queue_.push(at, std::move(fn));
}

void RealTimeRuntime::post_from_any_thread(UniqueFunction fn) {
  mailbox_.push(std::move(fn));
  signal_wake();
}

void RealTimeRuntime::stop() {
  stop_.store(true, std::memory_order_relaxed);
  signal_wake();
}

void RealTimeRuntime::signal_wake() {
  // Only async-signal-safe calls here: stop() runs from SIGINT/SIGTERM.
  const std::uint64_t one = 1;
#if defined(__linux__)
  [[maybe_unused]] ssize_t n = ::write(wake_tx_, &one, sizeof(one));
#else
  const char token = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_tx_, &token, 1);
#endif
  // A full pipe/counter means a wake-up is already pending; nothing to do.
}

std::uint64_t RealTimeRuntime::drain_mailbox() {
  // Reset the wake signal first: a push that lands after this read re-arms
  // it, so its closure is seen either by this drain or the next poll pass.
#if defined(__linux__)
  std::uint64_t counter = 0;
  while (::read(wake_rx_, &counter, sizeof(counter)) > 0) {
  }
#else
  char buf[256];
  while (::read(wake_rx_, buf, sizeof(buf)) > 0) {
  }
#endif
  std::uint64_t drained = 0;
  drained = mailbox_.drain([](UniqueFunction fn) { fn(); });
  mailbox_drained_.fetch_add(drained, std::memory_order_relaxed);
  return drained;
}

void RealTimeRuntime::watch_fd(int fd, FdHandler on_readable) {
  ensure(fd >= 0, "RealTimeRuntime::watch_fd negative fd");
  // Mutating the watch lists while poll_io is dispatching would reallocate
  // or destroy the very closure that is executing (a listener's read
  // handler accepts and watches a new fd; a connection unwatches itself on
  // close), so mid-dispatch mutations are queued and applied afterwards.
  if (dispatching_) {
    deferred_.push_back(DeferredOp{DeferredOp::kWatchRead, fd,
                                   std::move(on_readable)});
    return;
  }
  for (Watch& w : fds_) {
    if (w.fd == fd) {
      w.handler = std::move(on_readable);
      return;
    }
  }
  fds_.push_back(Watch{fd, std::move(on_readable)});
  pollfds_stale_ = true;
}

void RealTimeRuntime::unwatch_fd(int fd) {
  if (dispatching_) {
    deferred_.push_back(DeferredOp{DeferredOp::kUnwatchRead, fd, nullptr});
    return;
  }
  if (std::erase_if(fds_, [fd](const Watch& w) { return w.fd == fd; }) > 0) {
    pollfds_stale_ = true;
  }
}

void RealTimeRuntime::watch_fd_writable(int fd, FdHandler on_writable) {
  ensure(fd >= 0, "RealTimeRuntime::watch_fd_writable negative fd");
  if (dispatching_) {
    deferred_.push_back(DeferredOp{DeferredOp::kWatchWrite, fd,
                                   std::move(on_writable)});
    return;
  }
  for (Watch& w : write_fds_) {
    if (w.fd == fd) {
      w.handler = std::move(on_writable);
      return;
    }
  }
  write_fds_.push_back(Watch{fd, std::move(on_writable)});
  pollfds_stale_ = true;
}

void RealTimeRuntime::unwatch_fd_writable(int fd) {
  if (dispatching_) {
    deferred_.push_back(DeferredOp{DeferredOp::kUnwatchWrite, fd, nullptr});
    return;
  }
  if (std::erase_if(write_fds_,
                    [fd](const Watch& w) { return w.fd == fd; }) > 0) {
    pollfds_stale_ = true;
  }
}

bool RealTimeRuntime::deferred_removes(int fd, bool writable) const {
  // The last queued op for (fd, direction) decides: an unwatch followed by
  // a fresh watch (fd number reused within one dispatch round) keeps the
  // new watch live.
  const DeferredOp::Kind unwatch =
      writable ? DeferredOp::kUnwatchWrite : DeferredOp::kUnwatchRead;
  const DeferredOp::Kind watch =
      writable ? DeferredOp::kWatchWrite : DeferredOp::kWatchRead;
  bool removed = false;
  for (const DeferredOp& op : deferred_) {
    if (op.fd != fd) continue;
    if (op.kind == unwatch) removed = true;
    if (op.kind == watch) removed = false;
  }
  return removed;
}

void RealTimeRuntime::apply_deferred() {
  // Ops re-enter watch_fd/unwatch_fd with dispatching_ cleared; applying in
  // queue order preserves unwatch-then-rewatch sequences for reused fds.
  std::vector<DeferredOp> ops = std::move(deferred_);
  deferred_.clear();
  for (DeferredOp& op : ops) {
    switch (op.kind) {
      case DeferredOp::kWatchRead:
        watch_fd(op.fd, std::move(op.handler));
        break;
      case DeferredOp::kUnwatchRead:
        unwatch_fd(op.fd);
        break;
      case DeferredOp::kWatchWrite:
        watch_fd_writable(op.fd, std::move(op.handler));
        break;
      case DeferredOp::kUnwatchWrite:
        unwatch_fd_writable(op.fd);
        break;
    }
  }
}

std::uint64_t RealTimeRuntime::poll_io(SimTime timeout) {
  if (pollfds_stale_) {
    pollfds_.clear();
    pollfds_.reserve(fds_.size() + write_fds_.size());
    for (const Watch& w : fds_) {
      pollfds_.push_back(pollfd{w.fd, POLLIN, 0});
    }
    // An fd watched both ways gets one pollfd with both events set, so poll
    // never sees the same descriptor twice.
    for (const Watch& w : write_fds_) {
      const auto it =
          std::find_if(pollfds_.begin(), pollfds_.end(),
                       [&w](const pollfd& p) { return p.fd == w.fd; });
      if (it != pollfds_.end()) {
        it->events |= POLLOUT;
      } else {
        pollfds_.push_back(pollfd{w.fd, POLLOUT, 0});
      }
    }
    pollfds_stale_ = false;
  }
  // Round the timeout up to whole milliseconds so a timer due in 300us does
  // not busy-spin through zero-timeout polls.
  const SimTime capped = std::clamp<SimTime>(timeout, 0, kMaxPollWait);
  const int timeout_ms =
      static_cast<int>((capped + kMillis - 1) / kMillis);
  const int ready = ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
  if (ready <= 0) return 0;  // timeout, or EINTR (stop_ is re-checked)

  // Collect ready descriptors first: a handler may watch/unwatch fds, which
  // would invalidate iteration over fds_/pollfds_ themselves.
  ready_scratch_.clear();
  for (const pollfd& p : pollfds_) {
    if ((p.revents & (POLLIN | POLLOUT | POLLERR | POLLHUP)) != 0) {
      ready_scratch_.push_back(p);
    }
  }
  std::uint64_t dispatched = 0;
  dispatching_ = true;
  for (std::size_t i = 0; i < ready_scratch_.size(); ++i) {
    const int fd = ready_scratch_[i].fd;
    const short revents = ready_scratch_[i].revents;
    if (stop_.load(std::memory_order_relaxed)) break;
    // Errors and hangups wake both directions: a reader learns about the
    // close, and a connection mid-connect learns about the failure.
    if ((revents & (POLLIN | POLLERR | POLLHUP)) != 0 &&
        !deferred_removes(fd, /*writable=*/false)) {
      const auto it =
          std::find_if(fds_.begin(), fds_.end(),
                       [fd](const Watch& w) { return w.fd == fd; });
      if (it != fds_.end()) {
        it->handler();
        ++dispatched;
      }
    }
    if ((revents & (POLLOUT | POLLERR | POLLHUP)) != 0 &&
        !deferred_removes(fd, /*writable=*/true)) {
      const auto it =
          std::find_if(write_fds_.begin(), write_fds_.end(),
                       [fd](const Watch& w) { return w.fd == fd; });
      if (it != write_fds_.end()) {
        it->handler();
        ++dispatched;
      }
    }
  }
  dispatching_ = false;
  apply_deferred();
  return dispatched;
}

std::uint64_t RealTimeRuntime::run_until(SimTime deadline) {
  stop_.store(false, std::memory_order_relaxed);
  std::uint64_t executed = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    // Fire everything due by the current wall clock.
    const SimTime wall = now();
    while (!queue_.empty() && queue_.next_time() <= wall &&
           !stop_.load(std::memory_order_relaxed)) {
      EventQueue::Event event = queue_.pop();
      if (event.runnable()) {
        event.fn();
        ++executed;
      }
    }
    if (stop_.load(std::memory_order_relaxed)) break;

    const SimTime after = now();
    if (after >= deadline) break;
    SimTime wait = deadline - after;
    if (!queue_.empty()) {
      wait = std::min(wait, std::max<SimTime>(queue_.next_time() - after, 0));
    }
    executed += poll_io(wait);
  }
  return executed;
}

std::uint64_t RealTimeRuntime::run() {
  return run_until(std::numeric_limits<SimTime>::max());
}

std::uint64_t RealTimeRuntime::run_for(SimTime duration) {
  ensure(duration >= 0, "RealTimeRuntime::run_for negative duration");
  return run_until(now() + duration);
}

}  // namespace dataflasks::runtime
