#include "runtime/real_time_runtime.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <limits>
#include <utility>

#if defined(__linux__)
#include <sys/eventfd.h>
#endif

#include "common/ensure.hpp"

namespace dataflasks::runtime {

RealTimeRuntime::RealTimeRuntime(std::uint64_t seed)
    : origin_(std::chrono::steady_clock::now()), rng_(seed) {
#if defined(__linux__)
  wake_rx_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  ensure(wake_rx_ >= 0, "RealTimeRuntime: eventfd failed");
  wake_tx_ = wake_rx_;
#else
  int fds[2];
  ensure(::pipe(fds) == 0, "RealTimeRuntime: pipe failed");
  for (int fd : fds) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  wake_rx_ = fds[0];
  wake_tx_ = fds[1];
#endif
  // The wake descriptor rides the ordinary watch list: readable means
  // "mailed work (or a stop) is pending", and the handler drains both the
  // descriptor and the mailbox on the loop thread.
  watch_fd(wake_rx_, [this] { drain_mailbox(); });
}

RealTimeRuntime::~RealTimeRuntime() {
  if (wake_tx_ >= 0 && wake_tx_ != wake_rx_) ::close(wake_tx_);
  if (wake_rx_ >= 0) ::close(wake_rx_);
}

SimTime RealTimeRuntime::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

TimerHandle RealTimeRuntime::schedule_at(SimTime at, UniqueFunction fn) {
  // Unlike the simulator there is no "scheduling in the past" invariant:
  // wall time advances between the caller reading now() and us enqueueing,
  // so an overdue event simply fires on the next loop iteration.
  auto alive = std::make_shared<bool>(true);
  queue_.push(at, std::move(fn), alive);
  return TimerHandle(std::move(alive));
}

void RealTimeRuntime::post_at(SimTime at, UniqueFunction fn) {
  queue_.push(at, std::move(fn));
}

void RealTimeRuntime::post_from_any_thread(UniqueFunction fn) {
  mailbox_.push(std::move(fn));
  signal_wake();
}

void RealTimeRuntime::stop() {
  stop_.store(true, std::memory_order_relaxed);
  signal_wake();
}

void RealTimeRuntime::signal_wake() {
  // Only async-signal-safe calls here: stop() runs from SIGINT/SIGTERM.
  const std::uint64_t one = 1;
#if defined(__linux__)
  [[maybe_unused]] ssize_t n = ::write(wake_tx_, &one, sizeof(one));
#else
  const char token = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_tx_, &token, 1);
#endif
  // A full pipe/counter means a wake-up is already pending; nothing to do.
}

std::uint64_t RealTimeRuntime::drain_mailbox() {
  // Reset the wake signal first: a push that lands after this read re-arms
  // it, so its closure is seen either by this drain or the next poll pass.
#if defined(__linux__)
  std::uint64_t counter = 0;
  while (::read(wake_rx_, &counter, sizeof(counter)) > 0) {
  }
#else
  char buf[256];
  while (::read(wake_rx_, buf, sizeof(buf)) > 0) {
  }
#endif
  std::uint64_t drained = 0;
  drained = mailbox_.drain([](UniqueFunction fn) { fn(); });
  mailbox_drained_.fetch_add(drained, std::memory_order_relaxed);
  return drained;
}

void RealTimeRuntime::watch_fd(int fd, FdHandler on_readable) {
  ensure(fd >= 0, "RealTimeRuntime::watch_fd negative fd");
  for (Watch& w : fds_) {
    if (w.fd == fd) {
      w.handler = std::move(on_readable);
      return;
    }
  }
  fds_.push_back(Watch{fd, std::move(on_readable)});
  pollfds_stale_ = true;
}

void RealTimeRuntime::unwatch_fd(int fd) {
  if (std::erase_if(fds_, [fd](const Watch& w) { return w.fd == fd; }) > 0) {
    pollfds_stale_ = true;
  }
}

std::uint64_t RealTimeRuntime::poll_io(SimTime timeout) {
  if (pollfds_stale_) {
    pollfds_.clear();
    pollfds_.reserve(fds_.size());
    for (const Watch& w : fds_) {
      pollfds_.push_back(pollfd{w.fd, POLLIN, 0});
    }
    pollfds_stale_ = false;
  }
  // Round the timeout up to whole milliseconds so a timer due in 300us does
  // not busy-spin through zero-timeout polls.
  const SimTime capped = std::clamp<SimTime>(timeout, 0, kMaxPollWait);
  const int timeout_ms =
      static_cast<int>((capped + kMillis - 1) / kMillis);
  const int ready = ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
  if (ready <= 0) return 0;  // timeout, or EINTR (stop_ is re-checked)

  // Collect ready descriptors first: a handler may watch/unwatch fds, which
  // would invalidate iteration over fds_/pollfds_ themselves.
  ready_scratch_.clear();
  for (const pollfd& p : pollfds_) {
    if ((p.revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      ready_scratch_.push_back(p.fd);
    }
  }
  std::uint64_t dispatched = 0;
  for (std::size_t i = 0; i < ready_scratch_.size(); ++i) {
    const int fd = ready_scratch_[i];
    if (stop_.load(std::memory_order_relaxed)) break;
    const auto it = std::find_if(fds_.begin(), fds_.end(),
                                 [fd](const Watch& w) { return w.fd == fd; });
    if (it == fds_.end()) continue;  // unwatched by a previous handler
    it->handler();
    ++dispatched;
  }
  return dispatched;
}

std::uint64_t RealTimeRuntime::run_until(SimTime deadline) {
  stop_.store(false, std::memory_order_relaxed);
  std::uint64_t executed = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    // Fire everything due by the current wall clock.
    const SimTime wall = now();
    while (!queue_.empty() && queue_.next_time() <= wall &&
           !stop_.load(std::memory_order_relaxed)) {
      EventQueue::Event event = queue_.pop();
      if (event.runnable()) {
        event.fn();
        ++executed;
      }
    }
    if (stop_.load(std::memory_order_relaxed)) break;

    const SimTime after = now();
    if (after >= deadline) break;
    SimTime wait = deadline - after;
    if (!queue_.empty()) {
      wait = std::min(wait, std::max<SimTime>(queue_.next_time() - after, 0));
    }
    executed += poll_io(wait);
  }
  return executed;
}

std::uint64_t RealTimeRuntime::run() {
  return run_until(std::numeric_limits<SimTime>::max());
}

std::uint64_t RealTimeRuntime::run_for(SimTime duration) {
  ensure(duration >= 0, "RealTimeRuntime::run_for negative duration");
  return run_until(now() + duration);
}

}  // namespace dataflasks::runtime
