#include "runtime/real_time_runtime.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <limits>
#include <utility>

#include "common/ensure.hpp"

namespace dataflasks::runtime {

RealTimeRuntime::RealTimeRuntime(std::uint64_t seed)
    : origin_(std::chrono::steady_clock::now()), rng_(seed) {}

SimTime RealTimeRuntime::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

TimerHandle RealTimeRuntime::schedule_at(SimTime at, UniqueFunction fn) {
  // Unlike the simulator there is no "scheduling in the past" invariant:
  // wall time advances between the caller reading now() and us enqueueing,
  // so an overdue event simply fires on the next loop iteration.
  auto alive = std::make_shared<bool>(true);
  queue_.push(at, std::move(fn), alive);
  return TimerHandle(std::move(alive));
}

void RealTimeRuntime::post_at(SimTime at, UniqueFunction fn) {
  queue_.push(at, std::move(fn));
}

void RealTimeRuntime::watch_fd(int fd, FdHandler on_readable) {
  ensure(fd >= 0, "RealTimeRuntime::watch_fd negative fd");
  for (Watch& w : fds_) {
    if (w.fd == fd) {
      w.handler = std::move(on_readable);
      return;
    }
  }
  fds_.push_back(Watch{fd, std::move(on_readable)});
  pollfds_stale_ = true;
}

void RealTimeRuntime::unwatch_fd(int fd) {
  if (std::erase_if(fds_, [fd](const Watch& w) { return w.fd == fd; }) > 0) {
    pollfds_stale_ = true;
  }
}

std::uint64_t RealTimeRuntime::poll_io(SimTime timeout) {
  if (pollfds_stale_) {
    pollfds_.clear();
    pollfds_.reserve(fds_.size());
    for (const Watch& w : fds_) {
      pollfds_.push_back(pollfd{w.fd, POLLIN, 0});
    }
    pollfds_stale_ = false;
  }
  // Round the timeout up to whole milliseconds so a timer due in 300us does
  // not busy-spin through zero-timeout polls.
  const SimTime capped = std::clamp<SimTime>(timeout, 0, kMaxPollWait);
  const int timeout_ms =
      static_cast<int>((capped + kMillis - 1) / kMillis);
  const int ready = ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
  if (ready <= 0) return 0;  // timeout, or EINTR (stop_ is re-checked)

  // Collect ready descriptors first: a handler may watch/unwatch fds, which
  // would invalidate iteration over fds_/pollfds_ themselves.
  ready_scratch_.clear();
  for (const pollfd& p : pollfds_) {
    if ((p.revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      ready_scratch_.push_back(p.fd);
    }
  }
  std::uint64_t dispatched = 0;
  for (std::size_t i = 0; i < ready_scratch_.size(); ++i) {
    const int fd = ready_scratch_[i];
    if (stop_.load(std::memory_order_relaxed)) break;
    const auto it = std::find_if(fds_.begin(), fds_.end(),
                                 [fd](const Watch& w) { return w.fd == fd; });
    if (it == fds_.end()) continue;  // unwatched by a previous handler
    it->handler();
    ++dispatched;
  }
  return dispatched;
}

std::uint64_t RealTimeRuntime::run_until(SimTime deadline) {
  stop_.store(false, std::memory_order_relaxed);
  std::uint64_t executed = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    // Fire everything due by the current wall clock.
    const SimTime wall = now();
    while (!queue_.empty() && queue_.next_time() <= wall &&
           !stop_.load(std::memory_order_relaxed)) {
      EventQueue::Event event = queue_.pop();
      if (event.runnable()) {
        event.fn();
        ++executed;
      }
    }
    if (stop_.load(std::memory_order_relaxed)) break;

    const SimTime after = now();
    if (after >= deadline) break;
    SimTime wait = deadline - after;
    if (!queue_.empty()) {
      wait = std::min(wait, std::max<SimTime>(queue_.next_time() - after, 0));
    }
    executed += poll_io(wait);
  }
  return executed;
}

std::uint64_t RealTimeRuntime::run() {
  return run_until(std::numeric_limits<SimTime>::max());
}

std::uint64_t RealTimeRuntime::run_for(SimTime duration) {
  ensure(duration >= 0, "RealTimeRuntime::run_for negative duration");
  return run_until(now() + duration);
}

}  // namespace dataflasks::runtime
