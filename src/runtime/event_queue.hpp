// Priority queue of timestamped events. Ties are broken by insertion
// sequence so simulation runs are fully deterministic.
//
// Hot-path discipline:
//  - Callbacks are move-only UniqueFunctions; closures up to 64 bytes are
//    stored inline (no per-event allocation) and are moved, never copied.
//  - The heap itself is a 4-ary min-heap over 24-byte POD entries (time,
//    seq, slot index); the callables live in a stable slot pool recycled
//    through a free list. Sift operations shuffle small PODs — never
//    relocate closures — and the 4-ary layout halves the levels touched
//    per pop, which dominates in large simulations.
//  - Cancellation is a flag carried in the slot rather than a wrapper
//    closure, so cancellable timers cost no extra indirection.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "common/unique_function.hpp"

namespace dataflasks::runtime {

class EventQueue {
 public:
  using Callback = UniqueFunction;

  /// What pop() hands back: the event's time and callback together, so the
  /// run loop does not need a second heap peek per step.
  struct Event {
    SimTime at = 0;
    Callback fn;
    std::shared_ptr<bool> alive;  ///< optional cancellation flag; null = run

    /// False only when the event was cancelled through its TimerHandle.
    [[nodiscard]] bool runnable() const { return alive == nullptr || *alive; }
  };

  /// Schedules `fn` at absolute time `at`. Events scheduled for the same
  /// time fire in insertion order. `alive`, when provided, lets the owner
  /// cancel the event after it is queued (see Simulator::TimerHandle).
  void push(SimTime at, Callback fn, std::shared_ptr<bool> alive = nullptr);

  /// True when no events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest event. Requires !empty().
  [[nodiscard]] Event pop();

  void clear();

 private:
  struct Slot {
    Callback fn;
    std::shared_ptr<bool> alive;
  };

  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  // Min-heap by (at, seq).
  [[nodiscard]] static bool later(const Entry& a, const Entry& b) {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dataflasks::runtime
