#include "runtime/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/ensure.hpp"

namespace dataflasks::runtime {

void EventQueue::push(SimTime at, Callback fn, std::shared_ptr<bool> alive) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].fn = std::move(fn);
    slots_[slot].alive = std::move(alive);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{std::move(fn), std::move(alive)});
  }
  heap_.push_back(Entry{at, next_seq_++, slot});
  sift_up(heap_.size() - 1);
}

SimTime EventQueue::next_time() const {
  ensure(!heap_.empty(), "EventQueue::next_time on empty queue");
  return heap_.front().at;
}

EventQueue::Event EventQueue::pop() {
  ensure(!heap_.empty(), "EventQueue::pop on empty queue");
  const Entry top = heap_.front();
  Slot& slot = slots_[top.slot];
  Event out{top.at, std::move(slot.fn), std::move(slot.alive)};
  free_slots_.push_back(top.slot);
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return out;
}

void EventQueue::clear() {
  heap_.clear();
  slots_.clear();
  free_slots_.clear();
  next_seq_ = 0;
}

void EventQueue::sift_up(std::size_t i) {
  const Entry item = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!later(heap_[parent], item)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = item;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const Entry item = heap_[i];
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t smallest = i;
    const Entry* best = &item;
    for (std::size_t c = first_child; c < last_child; ++c) {
      if (later(*best, heap_[c])) {
        smallest = c;
        best = &heap_[c];
      }
    }
    if (smallest == i) break;
    heap_[i] = heap_[smallest];
    i = smallest;
  }
  heap_[i] = item;
}

}  // namespace dataflasks::runtime
