// Lightweight metrics: named counters and gauges grouped in a registry.
// Benches read these to report exactly what crossed the simulated wire.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dataflasks {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Registry of counters/gauges, keyed by name. Single-threaded by design
/// (the simulator is single-threaded); nodes each own a registry.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }

  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  all_counters() const {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
    return out;
  }

  void reset_counters() {
    for (auto& [_, c] : counters_) c.reset();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
};

}  // namespace dataflasks
