#include "common/logging.hpp"

#include <cstdio>

namespace dataflasks {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_global_log_level(LogLevel level) { g_level = level; }
LogLevel global_log_level() { return g_level; }

void Logger::emit(LogLevel level, const std::string& line) const {
  if (sink_) {
    sink_(level, line);
    return;
  }
  std::fprintf(stderr, "%-5s %s\n", to_string(level), line.c_str());
}

}  // namespace dataflasks
