#include "common/logging.hpp"

#include <cstdio>

namespace dataflasks {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> log_level_from_string(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                         : c);
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

void set_global_log_level(LogLevel level) { g_level = level; }
LogLevel global_log_level() { return g_level; }

void Logger::emit(LogLevel level, const std::string& line) const {
  if (sink_) {
    sink_(level, line);
    return;
  }
  std::fprintf(stderr, "%-5s %s\n", to_string(level), line.c_str());
}

}  // namespace dataflasks
