// Minimal leveled logger. Protocol code logs through a per-node Logger so
// simulated output can be prefixed with node id and virtual time. Disabled
// levels cost one branch.
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>

namespace dataflasks {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] const char* to_string(LogLevel level);

/// Parses "trace" / "debug" / "info" / "warn" / "error" / "off"
/// (case-insensitive). nullopt on anything else — what --log-level flags
/// feed through.
[[nodiscard]] std::optional<LogLevel> log_level_from_string(
    const std::string& name);

/// Global minimum level; tests set kOff or kError to keep output clean.
void set_global_log_level(LogLevel level);
[[nodiscard]] LogLevel global_log_level();

class Logger {
 public:
  /// Sink receives fully formatted lines. Defaults to stderr.
  using Sink = std::function<void(LogLevel, const std::string&)>;

  Logger() = default;
  explicit Logger(std::string prefix) : prefix_(std::move(prefix)) {}

  void set_prefix(std::string prefix) { prefix_ = std::move(prefix); }
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= global_log_level();
  }

  template <typename... Args>
  void log(LogLevel level, const Args&... args) const {
    if (!enabled(level)) return;
    std::ostringstream oss;
    if (!prefix_.empty()) oss << "[" << prefix_ << "] ";
    (oss << ... << args);
    emit(level, oss.str());
  }

  template <typename... Args>
  void trace(const Args&... args) const {
    log(LogLevel::kTrace, args...);
  }
  template <typename... Args>
  void debug(const Args&... args) const {
    log(LogLevel::kDebug, args...);
  }
  template <typename... Args>
  void info(const Args&... args) const {
    log(LogLevel::kInfo, args...);
  }
  template <typename... Args>
  void warn(const Args&... args) const {
    log(LogLevel::kWarn, args...);
  }
  template <typename... Args>
  void error(const Args&... args) const {
    log(LogLevel::kError, args...);
  }

 private:
  void emit(LogLevel level, const std::string& line) const;

  std::string prefix_;
  Sink sink_;
};

}  // namespace dataflasks
