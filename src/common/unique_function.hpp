// Move-only callable with small-buffer optimization, replacing std::function
// on every hot path. std::function requires copyability (so closures
// capturing a Message were copied into the queue) and heap-allocates for
// captures beyond a couple of words. MoveOnlyFunction moves its target and
// stores callables up to kInlineSize bytes inline, so scheduling a timer, an
// in-flight message, or registering a capture-heavy transport handler does
// not touch the allocator.
//
// `MoveOnlyFunction<Sig>` carries an arbitrary signature (e.g. the
// transport's `void(const net::Message&)` handlers); `UniqueFunction` is the
// `void()` instantiation the event queue and runtimes schedule.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dataflasks {

template <typename Sig>
class MoveOnlyFunction;  // undefined: only function signatures are valid

template <typename R, typename... Args>
class MoveOnlyFunction<R(Args...)> {
 public:
  /// Inline capture budget. 64 bytes covers `this` plus a whole Message
  /// (two NodeIds, a type tag and a shared Payload view) — the transport's
  /// delivery closure, the largest hot-path capture in the system.
  static constexpr std::size_t kInlineSize = 64;

  MoveOnlyFunction() = default;
  MoveOnlyFunction(std::nullptr_t) {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, MoveOnlyFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  MoveOnlyFunction(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vtable_ = inline_vtable<Fn>();
    } else {
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(f)));
      vtable_ = heap_vtable<Fn>();
    }
  }

  MoveOnlyFunction(MoveOnlyFunction&& other) noexcept { move_from(other); }
  MoveOnlyFunction& operator=(MoveOnlyFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  MoveOnlyFunction(const MoveOnlyFunction&) = delete;
  MoveOnlyFunction& operator=(const MoveOnlyFunction&) = delete;
  ~MoveOnlyFunction() { reset(); }

  /// Invokes the target. Requires a non-empty function.
  R operator()(Args... args) {
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const { return vtable_ != nullptr; }

  /// True when the target lives in the inline buffer (no heap allocation);
  /// exposed so tests can pin down the SBO boundary.
  [[nodiscard]] bool is_inline() const {
    return vtable_ != nullptr && vtable_->inline_stored;
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    /// Move-constructs the target into `dst` and destroys it in `src`.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
    bool inline_stored;
  };

  template <typename Fn>
  static Fn* as_inline(void* s) {
    return std::launder(reinterpret_cast<Fn*>(s));
  }
  template <typename Fn>
  static Fn* as_heap(void* s) {
    return *std::launder(reinterpret_cast<Fn**>(s));
  }

  template <typename Fn>
  static const VTable* inline_vtable() {
    static constexpr VTable vt = {
        [](void* s, Args&&... args) -> R {
          return (*as_inline<Fn>(s))(std::forward<Args>(args)...);
        },
        [](void* src, void* dst) {
          Fn* f = as_inline<Fn>(src);
          ::new (dst) Fn(std::move(*f));
          f->~Fn();
        },
        [](void* s) { as_inline<Fn>(s)->~Fn(); },
        /*inline_stored=*/true};
    return &vt;
  }

  template <typename Fn>
  static const VTable* heap_vtable() {
    static constexpr VTable vt = {
        [](void* s, Args&&... args) -> R {
          return (*as_heap<Fn>(s))(std::forward<Args>(args)...);
        },
        [](void* src, void* dst) {
          // Relocating a heap target just moves the pointer.
          ::new (dst) Fn*(as_heap<Fn>(src));
        },
        [](void* s) { delete as_heap<Fn>(s); },
        /*inline_stored=*/false};
    return &vt;
  }

  void move_from(MoveOnlyFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(other.storage_, storage_);
      other.vtable_ = nullptr;
    }
  }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

/// The `void()` instantiation scheduled by the event queue and runtimes.
using UniqueFunction = MoveOnlyFunction<void()>;

}  // namespace dataflasks
