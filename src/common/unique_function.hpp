// Move-only `void()` callable with small-buffer optimization, replacing
// std::function on the simulator's event hot path. std::function requires
// copyability (so closures capturing a Message were copied into the queue)
// and heap-allocates for captures beyond a couple of words. UniqueFunction
// moves its target and stores callables up to kInlineSize bytes inline in
// the event-queue slot, so scheduling a timer or an in-flight message does
// not touch the allocator.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dataflasks {

class UniqueFunction {
 public:
  /// Inline capture budget. 64 bytes covers `this` plus a whole Message
  /// (two NodeIds, a type tag and a shared Payload view) — the transport's
  /// delivery closure, the largest hot-path capture in the system.
  static constexpr std::size_t kInlineSize = 64;

  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vtable_ = inline_vtable<Fn>();
    } else {
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(f)));
      vtable_ = heap_vtable<Fn>();
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }
  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;
  ~UniqueFunction() { reset(); }

  /// Invokes the target. Requires a non-empty function.
  void operator()() { vtable_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return vtable_ != nullptr; }

  /// True when the target lives in the inline buffer (no heap allocation);
  /// exposed so tests can pin down the SBO boundary.
  [[nodiscard]] bool is_inline() const {
    return vtable_ != nullptr && vtable_->inline_stored;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs the target into `dst` and destroys it in `src`.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
    bool inline_stored;
  };

  template <typename Fn>
  static Fn* as_inline(void* s) {
    return std::launder(reinterpret_cast<Fn*>(s));
  }
  template <typename Fn>
  static Fn* as_heap(void* s) {
    return *std::launder(reinterpret_cast<Fn**>(s));
  }

  template <typename Fn>
  static const VTable* inline_vtable() {
    static constexpr VTable vt = {
        [](void* s) { (*as_inline<Fn>(s))(); },
        [](void* src, void* dst) {
          Fn* f = as_inline<Fn>(src);
          ::new (dst) Fn(std::move(*f));
          f->~Fn();
        },
        [](void* s) { as_inline<Fn>(s)->~Fn(); },
        /*inline_stored=*/true};
    return &vt;
  }

  template <typename Fn>
  static const VTable* heap_vtable() {
    static constexpr VTable vt = {
        [](void* s) { (*as_heap<Fn>(s))(); },
        [](void* src, void* dst) {
          // Relocating a heap target just moves the pointer.
          ::new (dst) Fn*(as_heap<Fn>(src));
        },
        [](void* s) { delete as_heap<Fn>(s); },
        /*inline_stored=*/false};
    return &vt;
  }

  void move_from(UniqueFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(other.storage_, storage_);
      other.vtable_ = nullptr;
    }
  }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace dataflasks
