// Minimal expected-like result type. Used for operations whose failure is a
// normal outcome (lookup miss, decode error, I/O failure) rather than a bug.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/ensure.hpp"

namespace dataflasks {

/// Error payload: machine-readable code plus human-readable context.
struct Error {
  enum class Code {
    kNotFound,
    kDecode,
    kIo,
    kTimeout,
    kUnavailable,
    kInvalidArgument,
    kConflict,
    kSuperseded,  ///< accepted but discarded: a tombstone outranks it
  };

  Code code = Code::kInvalidArgument;
  std::string message;

  [[nodiscard]] static Error not_found(std::string msg) {
    return {Code::kNotFound, std::move(msg)};
  }
  [[nodiscard]] static Error decode(std::string msg) {
    return {Code::kDecode, std::move(msg)};
  }
  [[nodiscard]] static Error io(std::string msg) {
    return {Code::kIo, std::move(msg)};
  }
  [[nodiscard]] static Error timeout(std::string msg) {
    return {Code::kTimeout, std::move(msg)};
  }
  [[nodiscard]] static Error unavailable(std::string msg) {
    return {Code::kUnavailable, std::move(msg)};
  }
  [[nodiscard]] static Error invalid_argument(std::string msg) {
    return {Code::kInvalidArgument, std::move(msg)};
  }
  [[nodiscard]] static Error conflict(std::string msg) {
    return {Code::kConflict, std::move(msg)};
  }
  [[nodiscard]] static Error superseded(std::string msg) {
    return {Code::kSuperseded, std::move(msg)};
  }
};

[[nodiscard]] constexpr const char* to_string(Error::Code c) {
  switch (c) {
    case Error::Code::kNotFound: return "not_found";
    case Error::Code::kDecode: return "decode";
    case Error::Code::kIo: return "io";
    case Error::Code::kTimeout: return "timeout";
    case Error::Code::kUnavailable: return "unavailable";
    case Error::Code::kInvalidArgument: return "invalid_argument";
    case Error::Code::kConflict: return "conflict";
    case Error::Code::kSuperseded: return "superseded";
  }
  return "unknown";
}

template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : state_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & {
    ensure(ok(), "Result::value() on error: " + error_message());
    return std::get<T>(state_);
  }
  [[nodiscard]] const T& value() const& {
    ensure(ok(), "Result::value() on error: " + error_message());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    ensure(ok(), "Result::value() on error: " + error_message());
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] const Error& error() const {
    ensure(!ok(), "Result::error() on success");
    return std::get<Error>(state_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  [[nodiscard]] std::string error_message() const {
    return ok() ? std::string() : std::get<Error>(state_).message;
  }

  std::variant<T, Error> state_;
};

/// Result for operations with no payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Status ok_status() { return {}; }

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    ensure(failed_, "Status::error() on success");
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace dataflasks
