// Deterministic random number generation. All randomness in the system flows
// from explicitly seeded Rng instances so that every simulation, test and
// bench run is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ensure.hpp"

namespace dataflasks {

/// xoshiro256** by Blackman & Vigna, seeded through SplitMix64.
/// Fast, high-quality, and trivially copyable (protocol components keep a
/// private stream derived from the simulation master seed).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). Requires bound > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi). Requires lo < hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p (clamped to [0,1]).
  bool next_bernoulli(double p);

  /// Exponentially distributed with the given mean (> 0).
  double next_exponential(double mean);

  /// Fork a child stream that is statistically independent of this one.
  /// `salt` distinguishes children forked at the same state.
  [[nodiscard]] Rng fork(std::uint64_t salt);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[next_below(i)]);
    }
  }

  /// Sample up to `count` distinct elements, preserving no particular order.
  template <typename T>
  [[nodiscard]] std::vector<T> sample(const std::vector<T>& items,
                                      std::size_t count) {
    std::vector<T> pool = items;
    if (count >= pool.size()) return pool;
    // Partial Fisher-Yates: the first `count` slots become the sample.
    for (std::size_t i = 0; i < count; ++i) {
      using std::swap;
      swap(pool[i], pool[i + next_below(pool.size() - i)]);
    }
    pool.resize(count);
    return pool;
  }

  /// Pick one element uniformly. Requires non-empty input.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) {
    ensure(!items.empty(), "Rng::pick on empty vector");
    return items[next_below(items.size())];
  }

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 step; exposed for seeding and hashing helpers.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace dataflasks
