// Deterministic random number generation. All randomness in the system flows
// from explicitly seeded Rng instances so that every simulation, test and
// bench run is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/ensure.hpp"

namespace dataflasks {

/// xoshiro256** by Blackman & Vigna, seeded through SplitMix64.
/// Fast, high-quality, and trivially copyable (protocol components keep a
/// private stream derived from the simulation master seed).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). Requires bound > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi). Requires lo < hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p (clamped to [0,1]).
  bool next_bernoulli(double p);

  /// Exponentially distributed with the given mean (> 0).
  double next_exponential(double mean);

  /// Fork a child stream that is statistically independent of this one.
  /// `salt` distinguishes children forked at the same state.
  [[nodiscard]] Rng fork(std::uint64_t salt);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[next_below(i)]);
    }
  }

  /// Sample up to `count` distinct elements, preserving no particular order.
  template <typename T>
  [[nodiscard]] std::vector<T> sample(const std::vector<T>& items,
                                      std::size_t count) {
    return sample_transform(items, count, [](const T& t) { return t; });
  }

  /// sample() fused with a per-element projection: `sample_transform(v, n,
  /// [](const Desc& d) { return d.id; })` avoids materializing the sampled
  /// descriptors just to throw them away. Draws exactly as sample() always
  /// has, so substituting one for the other keeps runs bit-identical.
  template <typename T, typename Fn>
  [[nodiscard]] auto sample_transform(const std::vector<T>& items,
                                      std::size_t count, Fn&& project)
      -> std::vector<std::decay_t<decltype(project(items[0]))>> {
    using Out = std::decay_t<decltype(project(items[0]))>;
    if (count >= items.size()) {
      if constexpr (std::is_same_v<Out, T>) {
        return items;
      } else {
        std::vector<Out> all;
        all.reserve(items.size());
        for (const T& item : items) all.push_back(project(item));
        return all;
      }
    }
    // Small sample of a larger pool — the peer-sampling hot path. A virtual
    // partial Fisher-Yates tracks only the touched slots, avoiding the full
    // pool copy while drawing and returning *exactly* what the pool-copying
    // version below would (simulation trajectories stay bit-identical).
    constexpr std::size_t kMaxInlineSample = 16;
    if (count <= kMaxInlineSample) {
      std::size_t slot_pos[kMaxInlineSample * 2];
      std::size_t slot_val[kMaxInlineSample * 2];
      std::size_t slots = 0;
      const auto read = [&](std::size_t pos) {
        for (std::size_t k = 0; k < slots; ++k) {
          if (slot_pos[k] == pos) return slot_val[k];
        }
        return pos;
      };
      const auto write = [&](std::size_t pos, std::size_t val) {
        for (std::size_t k = 0; k < slots; ++k) {
          if (slot_pos[k] == pos) {
            slot_val[k] = val;
            return;
          }
        }
        slot_pos[slots] = pos;
        slot_val[slots] = val;
        ++slots;
      };
      std::vector<Out> out;
      out.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t j = i + next_below(items.size() - i);
        const std::size_t vi = read(i);
        const std::size_t vj = read(j);
        write(i, vj);
        write(j, vi);
        out.push_back(project(items[vj]));
      }
      return out;
    }
    std::vector<T> pool = items;
    // Partial Fisher-Yates: the first `count` slots become the sample.
    for (std::size_t i = 0; i < count; ++i) {
      using std::swap;
      swap(pool[i], pool[i + next_below(pool.size() - i)]);
    }
    if constexpr (std::is_same_v<Out, T>) {
      pool.resize(count);
      return pool;
    } else {
      std::vector<Out> out;
      out.reserve(count);
      for (std::size_t i = 0; i < count; ++i) out.push_back(project(pool[i]));
      return out;
    }
  }

  /// Pick one element uniformly. Requires non-empty input.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) {
    ensure(!items.empty(), "Rng::pick on empty vector");
    return items[next_below(items.size())];
  }

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 step; exposed for seeding and hashing helpers.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace dataflasks
