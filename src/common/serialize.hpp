// Byte-level serialization for protocol messages. Everything that crosses
// the (simulated) wire is encoded through these, so message sizes reported
// by benches are real and decode failures are exercised by tests.
//
// Encoding: little-endian fixed-width integers, length-prefixed strings and
// vectors (u32 length). No alignment requirements, no padding.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/payload.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace dataflasks {

/// Builds encodings directly inside a Payload's refcounted buffer, so
/// take_payload() is a pointer hand-off: one allocation per encoded message
/// (exactly one when the encoder reserves its size up front), zero copies.
class Writer {
 public:
  Writer() = default;

  /// Pre-sizes the buffer: encoders that know their message size do one
  /// allocation instead of log(n) regrows.
  explicit Writer(std::size_t reserve_hint) { reserve(reserve_hint); }

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;
  ~Writer() {
    if (buf_ != nullptr) Payload::deallocate(buf_);
  }

  void reserve(std::size_t n) {
    if (buf_ == nullptr || buf_->capacity < n) grow(n);
  }

  void u8(std::uint8_t v) { append(&v, 1); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { append(&v, sizeof v); }
  void f64(double v) { append(&v, sizeof v); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void node_id(NodeId id) { u64(id.value); }
  void request_id(RequestId r) {
    u64(r.client);
    u64(r.seq);
  }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
  }

  /// Length-prefixed byte block. ByteView converts implicitly from both
  /// `Bytes` and `Payload`, so either can be embedded without copying first.
  void bytes(ByteView b) {
    u32(static_cast<std::uint32_t>(b.size()));
    append(b.data(), b.size());
  }

  /// Raw bytes with no length prefix: for framing layers that have already
  /// written an explicit length field of their own.
  void raw(ByteView b) { append(b.data(), b.size()); }

  /// Encodes a vector via a per-element callback: `vec(v, [&](const T& t){...})`.
  template <typename T, typename Fn>
  void vec(const std::vector<T>& items, Fn&& encode_one) {
    u32(static_cast<std::uint32_t>(items.size()));
    for (const T& item : items) encode_one(item);
  }

  /// The bytes encoded so far; valid until the next mutation or take.
  [[nodiscard]] ByteView view() const {
    return ByteView(buf_ != nullptr ? buf_->data() : nullptr, size_);
  }

  /// Copies the encoded bytes out as a mutable vector (cold paths: disk
  /// records, fuzz fixtures). Hot paths use take_payload() instead.
  [[nodiscard]] Bytes take() {
    Bytes out(view().begin(), view().end());
    size_ = 0;
    return out;
  }

  /// Hands the encoded buffer to an immutable shared Payload — no copy, and
  /// the buffer is shared across any fan-out afterwards.
  [[nodiscard]] Payload take_payload() {
    if (buf_ == nullptr || size_ == 0) {
      size_ = 0;
      return Payload();
    }
    Payload out(buf_, size_);
    buf_ = nullptr;
    size_ = 0;
    return out;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  void append(const void* data, std::size_t n) {
    if (n == 0) return;
    if (buf_ == nullptr || buf_->capacity - size_ < n) grow(size_ + n);
    std::memcpy(buf_->data() + size_, data, n);
    size_ += static_cast<std::uint32_t>(n);
  }

  void grow(std::size_t min_capacity) {
    std::size_t capacity = buf_ != nullptr ? buf_->capacity : 0;
    capacity = std::max<std::size_t>({min_capacity, 2 * capacity, 64});
    Payload::Ctrl* bigger = Payload::allocate(capacity);
    if (buf_ != nullptr) {
      std::memcpy(bigger->data(), buf_->data(), size_);
      Payload::deallocate(buf_);
    }
    buf_ = bigger;
  }

  Payload::Ctrl* buf_ = nullptr;
  std::uint32_t size_ = 0;
};

/// Reader tracks a failure flag instead of throwing: malformed input from
/// the network is a normal (tested) condition, not a bug. Callers check
/// `ok()` once after decoding a whole message.
class Reader {
 public:
  explicit Reader(ByteView buf) : data_(buf.data()), size_(buf.size()) {}
  // Exact-match overload: keeps `Reader r(bytes)` unambiguous now that
  // Bytes converts to both ByteView and Payload.
  explicit Reader(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  /// Owner-aware reader: `payload()` hands out zero-copy sub-views of the
  /// underlying shared buffer instead of copying embedded byte blocks.
  explicit Reader(const Payload& p)
      : data_(p.data()), size_(p.size()), owner_(p) {}

  std::uint8_t u8() { return read_scalar<std::uint8_t>(); }
  std::uint16_t u16() { return read_scalar<std::uint16_t>(); }
  std::uint32_t u32() { return read_scalar<std::uint32_t>(); }
  std::uint64_t u64() { return read_scalar<std::uint64_t>(); }
  std::int64_t i64() { return read_scalar<std::int64_t>(); }
  double f64() { return read_scalar<double>(); }
  bool boolean() { return u8() != 0; }

  NodeId node_id() { return NodeId(u64()); }
  RequestId request_id() {
    RequestId r;
    r.client = u64();
    r.seq = u64();
    return r;
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (!check(n)) return {};
    std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return out;
  }

  Bytes bytes() {
    const std::uint32_t n = u32();
    if (!check(n)) return {};
    Bytes out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }

  /// Length-prefixed byte block as a Payload. Zero-copy (a sub-view of the
  /// shared buffer) when this Reader was constructed from a Payload; falls
  /// back to copying otherwise.
  Payload payload() {
    const std::uint32_t n = u32();
    if (!check(n)) return {};
    Payload out = owner_.data() != nullptr
                      ? owner_.subview(pos_, n)
                      : Payload::copy_of(ByteView(data_ + pos_, n));
    pos_ += n;
    return out;
  }

  /// Decodes a vector via a per-element callback returning T.
  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& decode_one) {
    const std::uint32_t n = u32();
    // Guard: each element needs >= 1 byte, so n can never exceed what's left.
    if (n > remaining()) {
      fail();
      return {};
    }
    std::vector<T> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n && ok(); ++i) out.push_back(decode_one());
    return out;
  }

  /// Marks the input malformed. For decoders that meet an invalid tag or
  /// out-of-range field rather than a short read.
  void invalidate() { fail(); }

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] bool at_end() const { return ok() && pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  /// Convenience: converts decode state into a Status.
  [[nodiscard]] Status finish() const {
    if (!ok()) return Error::decode("truncated or malformed message");
    if (pos_ != size_) return Error::decode("trailing bytes after message");
    return Status::ok_status();
  }

 private:
  template <typename T>
  T read_scalar() {
    if (!check(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  bool check(std::size_t n) {
    if (failed_ || size_ - pos_ < n) {
      fail();
      return false;
    }
    return true;
  }

  void fail() { failed_ = true; }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  Payload owner_;  ///< set when reading from a Payload (zero-copy sub-views)
};

// ---- Endpoint codec ---------------------------------------------------------
// Shared by every message that carries a gossiped address (PSS descriptors,
// slice adverts, transport discovery probes), so the wire layout of an
// endpoint is defined exactly once.

inline void encode_endpoint(Writer& w, const Endpoint& e) {
  w.u32(e.ip);
  w.u16(e.port);
  w.u64(e.stamp);
}

[[nodiscard]] inline Endpoint decode_endpoint(Reader& r) {
  Endpoint e;
  e.ip = r.u32();
  e.port = r.u16();
  e.stamp = r.u64();
  return e;
}

/// Optional endpoint: a tag byte, then the fields. Simulated nodes have no
/// endpoint to advertise, so absence is the common sim-path case.
///
/// Tags: 0 = absent; 1 = UDP-only endpoint (the pre-stream layout, still
/// emitted whenever stream_port == 0 so old decoders keep working); 2 = the
/// same fields followed by a u16 stream port. Unknown tags fail the decode —
/// they are malformed input, not "v-next with extra fields".
inline void encode_endpoint_opt(Writer& w, const std::optional<Endpoint>& e) {
  if (!e.has_value()) {
    w.u8(0);
    return;
  }
  w.u8(e->stream_port != 0 ? 2 : 1);
  encode_endpoint(w, *e);
  if (e->stream_port != 0) w.u16(e->stream_port);
}

[[nodiscard]] inline std::optional<Endpoint> decode_endpoint_opt(Reader& r) {
  const std::uint8_t tag = r.u8();
  if (tag == 0) return std::nullopt;
  if (tag != 1 && tag != 2) {
    r.invalidate();
    return std::nullopt;
  }
  Endpoint e = decode_endpoint(r);
  if (tag == 2) e.stream_port = r.u16();
  if (!r.ok()) return std::nullopt;
  return e;
}

[[nodiscard]] constexpr std::size_t encoded_size_endpoint_opt(
    const std::optional<Endpoint>& e) {
  if (!e.has_value()) return 1;
  return 1 + sizeof(std::uint32_t) + sizeof(std::uint16_t) +
         sizeof(std::uint64_t) +
         (e->stream_port != 0 ? sizeof(std::uint16_t) : 0);
}

}  // namespace dataflasks
