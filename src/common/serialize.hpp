// Byte-level serialization for protocol messages. Everything that crosses
// the (simulated) wire is encoded through these, so message sizes reported
// by benches are real and decode failures are exercised by tests.
//
// Encoding: little-endian fixed-width integers, length-prefixed strings and
// vectors (u32 length). No alignment requirements, no padding.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace dataflasks {

using Bytes = std::vector<std::uint8_t>;

class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { append(&v, sizeof v); }
  void f64(double v) { append(&v, sizeof v); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void node_id(NodeId id) { u64(id.value); }
  void request_id(RequestId r) {
    u64(r.client);
    u64(r.seq);
  }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
  }

  void bytes(const Bytes& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    append(b.data(), b.size());
  }

  /// Encodes a vector via a per-element callback: `vec(v, [&](const T& t){...})`.
  template <typename T, typename Fn>
  void vec(const std::vector<T>& items, Fn&& encode_one) {
    u32(static_cast<std::uint32_t>(items.size()));
    for (const T& item : items) encode_one(item);
  }

  [[nodiscard]] const Bytes& buffer() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  void append(const void* data, std::size_t n) {
    // resize + memcpy rather than insert(iter, iter): byte-range insert trips
    // GCC 12's -Wstringop-overflow false positive at -O2, and the n == 0
    // guard keeps memcpy away from the null data() of an empty string/vector.
    if (n == 0) return;
    const std::size_t old_size = buf_.size();
    buf_.resize(old_size + n);
    std::memcpy(buf_.data() + old_size, data, n);
  }

  Bytes buf_;
};

/// Reader tracks a failure flag instead of throwing: malformed input from
/// the network is a normal (tested) condition, not a bug. Callers check
/// `ok()` once after decoding a whole message.
class Reader {
 public:
  explicit Reader(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return read_scalar<std::uint8_t>(); }
  std::uint16_t u16() { return read_scalar<std::uint16_t>(); }
  std::uint32_t u32() { return read_scalar<std::uint32_t>(); }
  std::uint64_t u64() { return read_scalar<std::uint64_t>(); }
  std::int64_t i64() { return read_scalar<std::int64_t>(); }
  double f64() { return read_scalar<double>(); }
  bool boolean() { return u8() != 0; }

  NodeId node_id() { return NodeId(u64()); }
  RequestId request_id() {
    RequestId r;
    r.client = u64();
    r.seq = u64();
    return r;
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (!check(n)) return {};
    std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return out;
  }

  Bytes bytes() {
    const std::uint32_t n = u32();
    if (!check(n)) return {};
    Bytes out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }

  /// Decodes a vector via a per-element callback returning T.
  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& decode_one) {
    const std::uint32_t n = u32();
    // Guard: each element needs >= 1 byte, so n can never exceed what's left.
    if (n > remaining()) {
      fail();
      return {};
    }
    std::vector<T> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n && ok(); ++i) out.push_back(decode_one());
    return out;
  }

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] bool at_end() const { return ok() && pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  /// Convenience: converts decode state into a Status.
  [[nodiscard]] Status finish() const {
    if (!ok()) return Error::decode("truncated or malformed message");
    if (pos_ != size_) return Error::decode("trailing bytes after message");
    return Status::ok_status();
  }

 private:
  template <typename T>
  T read_scalar() {
    if (!check(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  bool check(std::size_t n) {
    if (failed_ || size_ - pos_ < n) {
      fail();
      return false;
    }
    return true;
  }

  void fail() { failed_ = true; }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace dataflasks
