// Typed key=value configuration with defaults. Benches and examples accept
// overrides on the command line ("key=value" arguments) so sweeps don't
// require recompilation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace dataflasks {

class Config {
 public:
  Config() = default;

  /// Parses "a=1 b=2.5 name=x" style text (whitespace/newline separated).
  /// Lines starting with '#' are comments.
  [[nodiscard]] static Result<Config> parse(const std::string& text);

  /// Builds from argv-style "key=value" tokens; unknown tokens are an error.
  [[nodiscard]] static Result<Config> from_args(
      const std::vector<std::string>& args);

  void set(const std::string& key, std::string value);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Merge `other` on top of this config (other wins).
  void merge(const Config& other);

  [[nodiscard]] std::vector<std::pair<std::string, std::string>> items() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace dataflasks
