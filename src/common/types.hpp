// Fundamental identifier and time types shared by every DataFlasks module.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace dataflasks {

/// Raw byte buffer: what codecs produce and the (simulated) wire carries.
using Bytes = std::vector<std::uint8_t>;

/// Identifies a node (process) in the system. Dense small integers in the
/// simulator; opaque to every protocol (protocols never do arithmetic on it).
struct NodeId {
  std::uint64_t value = kInvalid;

  static constexpr std::uint64_t kInvalid =
      std::numeric_limits<std::uint64_t>::max();

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint64_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

/// Object key. DataFlasks keys are arbitrary strings; routing uses their hash.
using Key = std::string;

/// Version stamp attached to every object by the upper layer (DataDroplets in
/// STRATUS). Puts on the same key are totally ordered by version.
using Version = std::uint64_t;

/// Index of a slice in [0, k). Slices partition both nodes and the key space.
using SliceId = std::uint32_t;

/// Simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kMicros = 1;
constexpr SimTime kMillis = 1000 * kMicros;
constexpr SimTime kSeconds = 1000 * kMillis;

/// A node's reachable transport address: IPv4 + UDP port, versioned by a
/// freshness stamp the owning node assigns at boot (wall-clock derived, so
/// a restart always outranks the previous incarnation). Endpoints ride on
/// PSS descriptors and slice adverts, which is how the real-cluster address
/// table heals under churn the same way membership does. Simulated
/// transports carry no endpoints (the simulator routes by NodeId).
struct Endpoint {
  std::uint32_t ip = 0;     ///< IPv4 address, host byte order
  std::uint16_t port = 0;   ///< UDP port, host byte order
  std::uint64_t stamp = 0;  ///< freshness: strictly larger = newer address

  /// TCP stream port the node accepts length-prefixed connections on, or 0
  /// when the node is UDP-only. Gossiped alongside the UDP address so peers
  /// can negotiate streams without an extra handshake round.
  std::uint16_t stream_port = 0;

  [[nodiscard]] constexpr bool valid() const { return port != 0; }
  friend constexpr bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Unique id for a client request; used to deduplicate the multiple replies
/// that epidemic dissemination naturally produces (paper §V).
struct RequestId {
  std::uint64_t client = 0;  ///< issuing client id
  std::uint64_t seq = 0;     ///< per-client sequence number

  friend constexpr auto operator<=>(RequestId, RequestId) = default;
};

[[nodiscard]] inline std::string to_string(NodeId id) {
  return id.valid() ? "n" + std::to_string(id.value) : "n<invalid>";
}

[[nodiscard]] inline std::string to_string(RequestId r) {
  return "req:" + std::to_string(r.client) + ":" + std::to_string(r.seq);
}

[[nodiscard]] inline std::string to_string(const Endpoint& e) {
  return std::to_string((e.ip >> 24) & 0xFF) + "." +
         std::to_string((e.ip >> 16) & 0xFF) + "." +
         std::to_string((e.ip >> 8) & 0xFF) + "." +
         std::to_string(e.ip & 0xFF) + ":" + std::to_string(e.port);
}

}  // namespace dataflasks

template <>
struct std::hash<dataflasks::NodeId> {
  std::size_t operator()(dataflasks::NodeId id) const noexcept {
    // SplitMix64 finalizer: NodeIds are dense integers, so spread them.
    std::uint64_t x = id.value + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

template <>
struct std::hash<dataflasks::RequestId> {
  std::size_t operator()(dataflasks::RequestId r) const noexcept {
    std::uint64_t x = r.client * 0x9e3779b97f4a7c15ULL + r.seq;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
