#include "common/metrics.hpp"

// Header-only today; TU kept so the component participates in the build
// graph and future non-inline additions have a home.
