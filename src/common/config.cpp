#include "common/config.hpp"

#include <charconv>
#include <sstream>

namespace dataflasks {

namespace {

std::optional<std::pair<std::string, std::string>> split_kv(
    const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) return std::nullopt;
  return std::make_pair(token.substr(0, eq), token.substr(eq + 1));
}

}  // namespace

Result<Config> Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) {
      if (token.front() == '#') break;  // rest of line is a comment
      auto kv = split_kv(token);
      if (!kv) {
        return Error::invalid_argument("config token not key=value: " + token);
      }
      cfg.values_[kv->first] = kv->second;
    }
  }
  return cfg;
}

Result<Config> Config::from_args(const std::vector<std::string>& args) {
  Config cfg;
  for (const auto& token : args) {
    auto kv = split_kv(token);
    if (!kv) {
      return Error::invalid_argument("argument not key=value: " + token);
    }
    cfg.values_[kv->first] = kv->second;
  }
  return cfg;
}

void Config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

bool Config::has(const std::string& key) const {
  return values_.contains(key);
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::int64_t out = 0;
  const auto& s = it->second;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc() || ptr != s.data() + s.size()) return fallback;
  return out;
}

double Config::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double v = std::stod(it->second, &consumed);
    return consumed == it->second.size() ? v : fallback;
  } catch (const std::exception&) {
    return fallback;
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const auto& s = it->second;
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  return fallback;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

std::vector<std::pair<std::string, std::string>> Config::items() const {
  return {values_.begin(), values_.end()};
}

}  // namespace dataflasks
