// Stable hashing used for key -> slice mapping and DHT identifiers.
// Stability matters: hashes are part of the protocol (all nodes must agree
// on where a key lives), so std::hash (implementation-defined) is not usable.
#pragma once

#include <cstdint>
#include <string_view>

namespace dataflasks {

/// FNV-1a 64-bit over bytes; fast and good enough for key spreading.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// Final avalanche mix (SplitMix64 finalizer) applied on top of FNV-1a so
/// that near-identical keys land far apart in the hash space.
[[nodiscard]] std::uint64_t stable_key_hash(std::string_view key);

/// Combine two hashes (boost::hash_combine recipe, 64-bit variant).
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// Maps a 64-bit hash uniformly onto [0, buckets). Requires buckets > 0.
/// Uses the multiply-shift trick so distribution quality matches the hash.
[[nodiscard]] std::uint32_t hash_to_bucket(std::uint64_t hash,
                                           std::uint32_t buckets);

/// CRC-32 (IEEE 802.3 polynomial). Used by the log-structured store to
/// detect torn/corrupt records during recovery.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size);

}  // namespace dataflasks
