// serialize.hpp is header-only; this TU exists so the build exposes a
// df_common object for it and catches ODR/include mistakes early.
#include "common/serialize.hpp"

namespace dataflasks {

static_assert(sizeof(double) == 8, "serialization assumes 64-bit IEEE doubles");

}  // namespace dataflasks
