#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"

namespace dataflasks {

Histogram::Histogram(std::size_t reservoir_capacity, std::uint64_t seed)
    : capacity_(reservoir_capacity), rng_(seed) {
  ensure(capacity_ > 0, "Histogram: zero capacity");
  samples_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void Histogram::record(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;

  if (samples_.size() < capacity_) {
    samples_.push_back(value);
  } else {
    // Vitter's Algorithm R: element i replaces a slot with prob capacity/i.
    const std::uint64_t j = rng_.next_below(count_);
    if (j < capacity_) samples_[static_cast<std::size_t>(j)] = value;
  }
}

double Histogram::min() const { return count_ ? min_ : 0.0; }
double Histogram::max() const { return count_ ? max_ : 0.0; }

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

double Histogram::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void Histogram::reset() {
  samples_.clear();
  count_ = 0;
  sum_ = sum_sq_ = min_ = max_ = 0.0;
}

}  // namespace dataflasks
