// Streaming histogram with exact storage of samples up to a cap, then
// reservoir sampling. Good enough for bench percentile reporting without
// pulling in a sketch library.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace dataflasks {

class Histogram {
 public:
  explicit Histogram(std::size_t reservoir_capacity = 65536,
                     std::uint64_t seed = 0x5eed);

  void record(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;

  /// Quantile in [0,1]; exact while under capacity, approximate afterwards.
  [[nodiscard]] double quantile(double q) const;

  void reset();

 private:
  std::size_t capacity_;
  Rng rng_;
  std::vector<double> samples_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dataflasks
